#!/usr/bin/env python3
"""Compare the whole-kernel gadget census against the committed baseline.

Usage: check_lint_baseline.py BASELINE.json CENSUS_DIR

CENSUS_DIR holds <config>.census.json (from `camouflage lint --gadgets
--json`) and <config>.diags.json (from `camouflage lint --json`) for
every configuration named in the baseline. Any drift fails: more gadget
pairs or errors is a regression, fewer means the baseline must be
re-pinned deliberately in the same commit.
"""
import json
import sys

def main(baseline_path, census_dir):
    with open(baseline_path) as f:
        baseline = json.load(f)
    failures = []
    for config, want in baseline.items():
        if config.startswith("_"):
            continue
        with open(f"{census_dir}/{config}.census.json") as f:
            census = json.load(f)
        with open(f"{census_dir}/{config}.diags.json") as f:
            diags = json.load(f)
        got = {
            "errors": sum(1 for d in diags if d.get("severity") == "error"),
            "collision_classes": census["collision_classes"],
            "gadget_pairs": census["gadget_pairs"],
        }
        for key, expect in want.items():
            if got[key] != expect:
                failures.append(
                    f"{config}: {key} = {got[key]}, baseline pins {expect}"
                )
    if failures:
        print("lint baseline drift:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)
    print(f"lint baseline holds for {sum(1 for k in baseline if not k.startswith('_'))} configurations")

if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1], sys.argv[2])
