#!/usr/bin/env python3
"""Assert span-histogram JSON is byte-identical across worker counts.

Usage: check_hist_determinism.py HIST1.json HIST2.json [HIST3.json ...]

Each file is the merged span-latency histogram object written by
`camouflage faults --hist-json` (or embedded in a sweep/serve report).
All files must be byte-identical — the exact-merge monoid folded in
trial-index order cannot see the work-stealing schedule — and the
first file must be structurally sane: every span kind present, each
histogram's bucket counts summing to its `count`, percentiles ordered
and bounded by min/max.
"""
import json
import sys

KINDS = ["syscall", "context-switch", "ipi", "key-domain"]


def check_shape(path):
    with open(path) as f:
        doc = json.load(f)
    problems = []
    for kind in KINDS:
        if kind not in doc:
            problems.append(f"kind {kind!r} missing")
            continue
        h = doc[kind]
        for field in ("count", "sum", "min", "max", "p50", "p90", "p99",
                      "p999", "buckets"):
            if field not in h:
                problems.append(f"{kind}: field {field!r} missing")
        if problems:
            continue
        bucket_total = sum(c for _, c in h["buckets"])
        if bucket_total != h["count"]:
            problems.append(
                f"{kind}: bucket counts sum to {bucket_total}, "
                f"count says {h['count']}"
            )
        if h["count"] == 0:
            if h["buckets"]:
                problems.append(f"{kind}: empty histogram carries buckets")
        else:
            ps = [h["p50"], h["p90"], h["p99"], h["p999"]]
            if ps != sorted(ps):
                problems.append(f"{kind}: percentiles out of order: {ps}")
            if not (h["min"] <= h["p50"] and h["p999"] <= h["max"]):
                problems.append(
                    f"{kind}: percentiles escape [min, max] = "
                    f"[{h['min']}, {h['max']}]"
                )
            indices = [i for i, _ in h["buckets"]]
            if indices != sorted(indices):
                problems.append(f"{kind}: bucket indices not sorted")
    return problems


def main(paths):
    if len(paths) < 2:
        print("need at least two histogram files to compare", file=sys.stderr)
        sys.exit(2)
    blobs = {}
    for path in paths:
        with open(path, "rb") as f:
            blobs[path] = f.read()
    first = paths[0]
    diverged = [p for p in paths[1:] if blobs[p] != blobs[first]]
    problems = check_shape(first)
    if diverged or problems:
        if diverged:
            print("histogram JSON diverged across worker counts:",
                  file=sys.stderr)
            for p in diverged:
                print(f"  {p} != {first}", file=sys.stderr)
        for line in problems:
            print(f"shape: {line}", file=sys.stderr)
        sys.exit(1)
    kinds = json.loads(blobs[first])
    total = sum(kinds[k]["count"] for k in KINDS)
    print(f"{len(paths)} files byte-identical; {total} spans across "
          f"{len(KINDS)} kinds")


if __name__ == "__main__":
    main(sys.argv[1:])
