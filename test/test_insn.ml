(* Per-constructor coverage of the Insn metadata that paclint leans on:
   [defs_uses] over every one of the 48 instruction forms, and the
   [is_pauth] / [reads_sysreg] / [writes_sysreg] partitions. A new
   constructor that forgets its metadata shows up here as a count
   mismatch before it silently mis-analyzes. *)

open Aarch64

let x n = Insn.R n

let reg_list =
  Alcotest.testable
    (fun fmt rs ->
      Format.pp_print_string fmt
        (String.concat " " (List.map Insn.reg_name rs)))
    ( = )

let sort = List.sort compare

(* One representative per constructor, with the expected (defs, uses).
   Addressing modes use Pre/Post where it matters so writeback registers
   are exercised. *)
let table =
  let open Insn in
  [
    (Movz (x 1, 7, 0), [ x 1 ], []);
    (Movk (x 1, 7, 16), [ x 1 ], [ x 1 ]);
    (Mov (x 1, x 2), [ x 1 ], [ x 2 ]);
    (Add_imm (x 1, x 2, 8), [ x 1 ], [ x 2 ]);
    (Sub_imm (x 1, x 2, 8), [ x 1 ], [ x 2 ]);
    (Add_reg (x 1, x 2, x 3), [ x 1 ], [ x 2; x 3 ]);
    (Sub_reg (x 1, x 2, x 3), [ x 1 ], [ x 2; x 3 ]);
    (Subs_reg (x 1, x 2, x 3), [ x 1 ], [ x 2; x 3 ]);
    (Subs_imm (x 1, x 2, 8), [ x 1 ], [ x 2 ]);
    (And_reg (x 1, x 2, x 3), [ x 1 ], [ x 2; x 3 ]);
    (Orr_reg (x 1, x 2, x 3), [ x 1 ], [ x 2; x 3 ]);
    (Eor_reg (x 1, x 2, x 3), [ x 1 ], [ x 2; x 3 ]);
    (Lsl_imm (x 1, x 2, 3), [ x 1 ], [ x 2 ]);
    (Lsr_imm (x 1, x 2, 3), [ x 1 ], [ x 2 ]);
    (Bfi (x 1, x 2, 0, 16), [ x 1 ], [ x 1; x 2 ]);
    (Ubfx (x 1, x 2, 0, 16), [ x 1 ], [ x 2 ]);
    (Adr (x 1, 0x1000L), [ x 1 ], []);
    (Ldr (x 1, Off (x 2, 8)), [ x 1 ], [ x 2 ]);
    (Str (x 1, Pre (x 2, -8)), [ x 2 ], [ x 1; x 2 ]);
    (Ldrb (x 1, Post (x 2, 1)), [ x 1; x 2 ], [ x 2 ]);
    (Strb (x 1, Off (x 2, 0)), [], [ x 1; x 2 ]);
    (Ldp (x 1, x 2, Post (Insn.SP, 16)), [ x 1; x 2; Insn.SP ], [ Insn.SP ]);
    (Stp (x 1, x 2, Pre (Insn.SP, -16)), [ Insn.SP ], [ x 1; x 2; Insn.SP ]);
    (B 0x1000L, [], []);
    (Bl 0x1000L, [ Insn.lr ], []);
    (Br (x 1), [], [ x 1 ]);
    (Blr (x 1), [ Insn.lr ], [ x 1 ]);
    (Ret, [], [ Insn.lr ]);
    (Cbz (x 1, 0x1000L), [], [ x 1 ]);
    (Cbnz (x 1, 0x1000L), [], [ x 1 ]);
    (Bcond (Eq, 0x1000L), [], []);
    (Pac (Sysreg.IB, x 1, x 2), [ x 1 ], [ x 1; x 2 ]);
    (Aut (Sysreg.IB, x 1, x 2), [ x 1 ], [ x 1; x 2 ]);
    (Pac1716 Sysreg.IB, [ Insn.ip1 ], [ Insn.ip1; Insn.ip0 ]);
    (Aut1716 Sysreg.IB, [ Insn.ip1 ], [ Insn.ip1; Insn.ip0 ]);
    (Xpac (x 1), [ x 1 ], [ x 1 ]);
    (Pacga (x 1, x 2, x 3), [ x 1 ], [ x 2; x 3 ]);
    (Blra (Sysreg.IA, x 1, x 2), [ Insn.lr ], [ x 1; x 2 ]);
    (Bra (Sysreg.IA, x 1, x 2), [], [ x 1; x 2 ]);
    (Reta Sysreg.IB, [], [ Insn.lr; Insn.SP ]);
    (Mrs (x 1, Sysreg.TTBR0_EL1), [ x 1 ], []);
    (Msr (Sysreg.TTBR0_EL1, x 1), [], [ x 1 ]);
    (Svc 0, [], []);
    (Eret, [], []);
    (Isb, [], []);
    (Nop, [], []);
    (Brk 1, [], []);
    (Hlt 1, [], []);
  ]

let test_defs_uses_table () =
  Alcotest.(check int) "one representative per constructor" 48 (List.length table);
  List.iter
    (fun (insn, want_defs, want_uses) ->
      let defs, uses = Insn.defs_uses insn in
      let label what = Printf.sprintf "%s of %s" what (Insn.to_string insn) in
      Alcotest.check reg_list (label "defs") (sort want_defs) (sort defs);
      Alcotest.check reg_list (label "uses") (sort want_uses) (sort uses))
    table

let test_is_pauth_partition () =
  let expected insn =
    match insn with
    | Insn.Pac _ | Insn.Aut _ | Insn.Pac1716 _ | Insn.Aut1716 _ | Insn.Xpac _
    | Insn.Pacga _ | Insn.Blra _ | Insn.Bra _ | Insn.Reta _ ->
        true
    | _ -> false
  in
  let pauth_count = ref 0 in
  List.iter
    (fun (insn, _, _) ->
      if expected insn then incr pauth_count;
      Alcotest.(check bool)
        (Printf.sprintf "is_pauth %s" (Insn.to_string insn))
        (expected insn) (Insn.is_pauth insn))
    table;
  Alcotest.(check int) "nine PAuth forms" 9 !pauth_count

let test_sysreg_accessors () =
  List.iter
    (fun (insn, _, _) ->
      match insn with
      | Insn.Mrs (_, sr) ->
          Alcotest.(check bool) "mrs reads its sysreg" true
            (Insn.reads_sysreg insn = Some sr);
          Alcotest.(check bool) "mrs writes none" true (Insn.writes_sysreg insn = None)
      | Insn.Msr (sr, _) ->
          Alcotest.(check bool) "msr writes its sysreg" true
            (Insn.writes_sysreg insn = Some sr);
          Alcotest.(check bool) "msr reads none" true (Insn.reads_sysreg insn = None)
      | _ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s reads no sysreg" (Insn.to_string insn))
            true
            (Insn.reads_sysreg insn = None);
          Alcotest.(check bool)
            (Printf.sprintf "%s writes no sysreg" (Insn.to_string insn))
            true
            (Insn.writes_sysreg insn = None))
    table;
  (* every system register round-trips through both accessors *)
  List.iter
    (fun sr ->
      Alcotest.(check bool) (Sysreg.name sr ^ " mrs") true
        (Insn.reads_sysreg (Insn.Mrs (x 0, sr)) = Some sr);
      Alcotest.(check bool) (Sysreg.name sr ^ " msr") true
        (Insn.writes_sysreg (Insn.Msr (sr, x 0)) = Some sr))
    Sysreg.all

let test_defs_never_use_only () =
  (* sanity over the whole table: defs and uses never contain XZR writes
     that matter, and every register mentioned is well-formed *)
  List.iter
    (fun (insn, _, _) ->
      let defs, uses = Insn.defs_uses insn in
      List.iter
        (fun r -> ignore (Insn.reg_name r))
        (defs @ uses))
    table

let suite =
  [
    Alcotest.test_case "defs_uses per constructor" `Quick test_defs_uses_table;
    Alcotest.test_case "is_pauth partition" `Quick test_is_pauth_partition;
    Alcotest.test_case "sysreg accessors" `Quick test_sysreg_accessors;
    Alcotest.test_case "reg_name total" `Quick test_defs_never_use_only;
  ]
