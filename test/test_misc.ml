(* Coverage for the small supporting surfaces: cost conversion,
   disassembly text, exception-level naming, insn classification, the
   trace ring, and the hypervisor lockdown predicate. *)

open Aarch64

let test_cost_ns () =
  let p = Cost.cortex_a53 in
  Alcotest.(check (float 1e-9)) "1.4 GHz: 14 cycles = 10ns" 10.0 (Cost.ns_of_cycles p 14L);
  Alcotest.(check bool) "armv83 shares the estimate" true
    (Cost.armv83.Cost.pauth = p.Cost.pauth)

let test_el_names () =
  Alcotest.(check string) "el0" "EL0" (El.name El.El0);
  Alcotest.(check string) "el1" "EL1" (El.name El.El1);
  Alcotest.(check string) "el2" "EL2" (El.name El.El2)

let test_insn_classification () =
  Alcotest.(check bool) "pacia is pauth" true
    (Insn.is_pauth (Insn.Pac (Sysreg.IA, Insn.lr, Insn.SP)));
  Alcotest.(check bool) "retab is pauth" true (Insn.is_pauth (Insn.Reta Sysreg.IB));
  Alcotest.(check bool) "add is not" false
    (Insn.is_pauth (Insn.Add_imm (Insn.R 0, Insn.R 1, 4)));
  (match Insn.reads_sysreg (Insn.Mrs (Insn.R 0, Sysreg.APIAKeyLo_EL1)) with
  | Some Sysreg.APIAKeyLo_EL1 -> ()
  | Some _ | None -> Alcotest.fail "mrs reads");
  match Insn.writes_sysreg (Insn.Msr (Sysreg.SCTLR_EL1, Insn.R 0)) with
  | Some Sysreg.SCTLR_EL1 -> ()
  | Some _ | None -> Alcotest.fail "msr writes"

let test_insn_rendering () =
  let check insn expected = Alcotest.(check string) expected expected (Insn.to_string insn) in
  check (Insn.Pac (Sysreg.IB, Insn.lr, Insn.SP)) "pacib lr, sp";
  check (Insn.Aut (Sysreg.DB, Insn.R 8, Insn.R 9)) "autdb x8, x9";
  check (Insn.Stp (Insn.fp, Insn.lr, Insn.Pre (Insn.SP, -16))) "stp fp, lr, [sp, #-16]!";
  check (Insn.Ldp (Insn.fp, Insn.lr, Insn.Post (Insn.SP, 16))) "ldp fp, lr, [sp], #16";
  check (Insn.Bfi (Insn.R 16, Insn.R 17, 32, 32)) "bfi x16, x17, #32, #32";
  check (Insn.Blra (Sysreg.IA, Insn.R 8, Insn.R 9)) "blraia x8, x9";
  check Insn.Ret "ret";
  check (Insn.Svc 3) "svc #3"

let test_sysreg_ids () =
  List.iter
    (fun sr ->
      match Sysreg.of_id (Sysreg.to_id sr) with
      | Some sr' -> Alcotest.(check string) "id roundtrip" (Sysreg.name sr) (Sysreg.name sr')
      | None -> Alcotest.failf "no id for %s" (Sysreg.name sr))
    Sysreg.all;
  Alcotest.(check bool) "invalid id" true (Sysreg.of_id 999 = None);
  Alcotest.(check int) "ten key halves" 10
    (List.length (List.filter Sysreg.is_pauth_key Sysreg.all))

let test_trace_ring () =
  let cpu = Bare.machine () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"f"
    (List.init 40 (fun _ -> Asm.ins Insn.Nop) @ [ Asm.ins Insn.Ret ]);
  let layout = Bare.load cpu prog in
  (match Bare.call cpu layout "f" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "trace run: %s" (Cpu.stop_to_string other));
  let trace = Cpu.recent_trace ~limit:8 cpu in
  Alcotest.(check int) "limited depth" 8 (List.length trace);
  (* newest entry is the ret *)
  (match List.rev trace with
  | (_, Insn.Ret) :: _ -> ()
  | _ -> Alcotest.fail "last retired should be ret");
  (* entries are consecutive pcs *)
  let pcs = List.map fst trace in
  let rec consecutive = function
    | a :: (b :: _ as rest) -> Int64.add a 4L = b && consecutive rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "consecutive straight-line pcs" true (consecutive pcs)

(* The retention depth is a [Cpu.create] parameter: a deep ring keeps
   more history than the default 32, a shallow one forgets sooner, and
   a non-positive depth is rejected. *)
let test_trace_depth_configurable () =
  let run depth =
    let cpu = Bare.machine ~trace_depth:depth () in
    let prog = Asm.create () in
    Asm.add_function prog ~name:"f"
      (List.init 60 (fun _ -> Asm.ins Insn.Nop) @ [ Asm.ins Insn.Ret ]);
    let layout = Bare.load cpu prog in
    (match Bare.call cpu layout "f" with
    | Cpu.Sentinel_return -> ()
    | other -> Alcotest.failf "trace run: %s" (Cpu.stop_to_string other));
    List.length (Cpu.recent_trace ~limit:1000 cpu)
  in
  Alcotest.(check int) "deep ring keeps full history" 61 (run 128);
  Alcotest.(check int) "shallow ring forgets" 4 (run 4);
  Alcotest.(check int) "default depth is 32" 32
    (List.length
       (let cpu = Bare.machine () in
        let prog = Asm.create () in
        Asm.add_function prog ~name:"f"
          (List.init 60 (fun _ -> Asm.ins Insn.Nop) @ [ Asm.ins Insn.Ret ]);
        let layout = Bare.load cpu prog in
        ignore (Bare.call cpu layout "f");
        Cpu.recent_trace ~limit:1000 cpu));
  Alcotest.check_raises "depth must be positive"
    (Invalid_argument "Cpu.create: trace_depth") (fun () ->
      ignore (Cpu.create ~trace_depth:0 ()))

let test_hypervisor_lock_predicate () =
  let cpu = Cpu.create () in
  let hyp = Kernel.Hypervisor.install cpu in
  Alcotest.(check bool) "sctlr locked" true
    (Kernel.Hypervisor.is_locked_register hyp Sysreg.SCTLR_EL1);
  Alcotest.(check bool) "ttbr1 locked" true
    (Kernel.Hypervisor.is_locked_register hyp Sysreg.TTBR1_EL1);
  Alcotest.(check bool) "key regs not MMU-locked (verifier's job)" false
    (Kernel.Hypervisor.is_locked_register hyp Sysreg.APIBKeyLo_EL1)

let test_keys_allocation () =
  let module CK = Camouflage.Keys in
  Alcotest.(check int) "v8.3 uses 3 keys" 3 (List.length (CK.keys_in_use CK.Armv83));
  Alcotest.(check int) "compat uses 1 key" 1 (List.length (CK.keys_in_use CK.Compat));
  Alcotest.(check bool) "backward != forward on v8.3" true
    (CK.key_for CK.Armv83 CK.Backward <> CK.key_for CK.Armv83 CK.Forward);
  Alcotest.(check bool) "compat shares one key" true
    (CK.key_for CK.Compat CK.Backward = CK.key_for CK.Compat CK.Data)

let test_cntvct_reads_cycles () =
  let cpu = Bare.machine () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"readclk"
    [
      Asm.ins (Insn.Mrs (Insn.R 0, Sysreg.CNTVCT_EL0));
      Asm.ins (Insn.Mrs (Insn.R 1, Sysreg.CNTVCT_EL0));
      Asm.ins Insn.Ret;
    ];
  let layout = Bare.load cpu prog in
  (match Bare.call cpu layout "readclk" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "clk: %s" (Cpu.stop_to_string other));
  Alcotest.(check bool) "virtual counter advances" true
    (Cpu.reg cpu (Insn.R 1) > Cpu.reg cpu (Insn.R 0))

let suite =
  [
    Alcotest.test_case "cost conversions" `Quick test_cost_ns;
    Alcotest.test_case "exception-level names" `Quick test_el_names;
    Alcotest.test_case "instruction classification" `Quick test_insn_classification;
    Alcotest.test_case "instruction rendering" `Quick test_insn_rendering;
    Alcotest.test_case "sysreg id roundtrip" `Quick test_sysreg_ids;
    Alcotest.test_case "cpu trace ring" `Quick test_trace_ring;
    Alcotest.test_case "trace ring depth is configurable" `Quick
      test_trace_depth_configurable;
    Alcotest.test_case "hypervisor lock predicate" `Quick test_hypervisor_lock_predicate;
    Alcotest.test_case "key allocation (Section 4.5)" `Quick test_keys_allocation;
    Alcotest.test_case "CNTVCT virtual counter" `Quick test_cntvct_reads_cycles;
  ]
