(* Differential verification of the decoded-instruction cache and
   micro-TLB (Icache). The cache is a host-speed optimization and must
   be architecturally invisible: cached and uncached execution have to
   be bit-identical — same final registers, memory, stop reasons, cycle
   and retirement totals, telemetry — while every invalidation source
   (stores over code, stage-2 permission flips, MMU-control register
   writes, module unload/reload, injected faults) keeps it coherent. *)

open Aarch64
module C = Camouflage
module K = Kernel
module O = Kelf.Object_file
module I = Faultinj.Injector

(* ---------- helpers ---------- *)

let mov_abs r v =
  let chunk i =
    Int64.to_int (Int64.logand (Int64.shift_right_logical v (16 * i)) 0xffffL)
  in
  Asm.ins (Insn.Movz (r, chunk 0, 0))
  :: List.map (fun i -> Asm.ins (Insn.Movk (r, chunk i, 16 * i))) [ 1; 2; 3 ]

(* Full architectural state (registers, SP, flags, cycle and retirement
   counts, trace ring) plus optionally probed memory words. *)
let fingerprint ?(probe = []) cpu =
  let b = Buffer.create 512 in
  Buffer.add_string b (Cpu.dump_state ~trace_limit:16 cpu);
  List.iter
    (fun va ->
      Buffer.add_string b (Printf.sprintf "[%Lx]=%Lx " va (Bare.read64 cpu va)))
    probe;
  Buffer.contents b

let check_cache_was_used cpu =
  let s = Icache.stats (Cpu.icache cpu) in
  Alcotest.(check bool) "cached run actually hit the cache" true
    (s.Icache.fetch_hits > 0)

(* ---------- differential: call-heavy bare workload (E2 probe) ---------- *)

let run_calls config ~icache =
  let cpu = Bare.machine ~seed:9L ~icache () in
  let obj = Workloads.Calls.calls_object config ~calls:400 in
  let prog = Asm.create () in
  List.iter
    (fun (name, items) -> Asm.add_function prog ~name items)
    obj.O.functions;
  let layout = Bare.load cpu prog in
  (match Bare.call ~max_insns:1_000_000 cpu layout "caller" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "calls workload stopped: %s" (Cpu.stop_to_string other));
  cpu

let test_diff_call_workload () =
  List.iter
    (fun config ->
      let on = run_calls config ~icache:true in
      let off = run_calls config ~icache:false in
      check_cache_was_used on;
      Alcotest.(check string)
        (C.Config.name config ^ ": cached state = uncached state")
        (fingerprint off) (fingerprint on))
    [ C.Config.none; C.Config.backward_only ]

(* ---------- differential: load/store-heavy bare workload ---------- *)

let memory_prog () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"memloop"
    (mov_abs (Insn.R 10) Bare.data_base
    @ [
        Asm.ins (Insn.Movz (Insn.R 11, 64, 0));
        Asm.ins (Insn.Movz (Insn.R 12, 0, 0));
        Asm.label "mloop";
        Asm.ins (Insn.Str (Insn.R 11, Insn.Off (Insn.R 10, 0)));
        Asm.ins (Insn.Ldr (Insn.R 13, Insn.Off (Insn.R 10, 0)));
        Asm.ins (Insn.Add_reg (Insn.R 12, Insn.R 12, Insn.R 13));
        Asm.ins (Insn.Stp (Insn.R 12, Insn.R 13, Insn.Pre (Insn.SP, -16)));
        Asm.ins (Insn.Ldp (Insn.R 12, Insn.R 13, Insn.Post (Insn.SP, 16)));
        Asm.ins (Insn.Str (Insn.R 12, Insn.Off (Insn.R 10, 8)));
        Asm.ins (Insn.Sub_imm (Insn.R 11, Insn.R 11, 1));
        Asm.cbnz_to (Insn.R 11) "mloop";
        Asm.ins (Insn.Mov (Insn.R 0, Insn.R 12));
        Asm.ins Insn.Ret;
      ]);
  prog

let run_memloop ~icache =
  let cpu = Bare.machine ~seed:9L ~icache () in
  let layout = Bare.load cpu (memory_prog ()) in
  (match Bare.call cpu layout "memloop" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "memloop stopped: %s" (Cpu.stop_to_string other));
  fingerprint ~probe:[ Bare.data_base; Int64.add Bare.data_base 8L ] cpu

let test_diff_memory_workload () =
  Alcotest.(check string) "cached state = uncached state"
    (run_memloop ~icache:false) (run_memloop ~icache:true)

(* ---------- differential: SMP schedule + telemetry fingerprint ---------- *)

let smp_fingerprint sys (stats : K.System.smp_stats) =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "slices=%d preemptions=%d migrations=%d ipis=%d makespan=%Ld offlined=%s\n"
    stats.K.System.smp_slices stats.K.System.smp_preemptions
    stats.K.System.smp_migrations stats.K.System.smp_ipis
    stats.K.System.makespan
    (String.concat "," (List.map string_of_int stats.K.System.smp_offlined));
  Array.iteri
    (fun i c -> Printf.bprintf b "cpu%d=%Ld " i c)
    stats.K.System.per_cpu_cycles;
  List.iter
    (fun (cpu, pid, e) ->
      Printf.bprintf b "\nexit cpu%d pid%d %s" cpu pid
        (K.System.user_exit_to_string e))
    stats.K.System.smp_exits;
  List.iter (fun l -> Printf.bprintf b "\n%s" l) (K.System.log sys);
  (match K.System.telemetry sys with
  | Some hub ->
      Printf.bprintf b "\n%s"
        (Telemetry.Counters.to_json (Telemetry.Hub.counters hub))
  | None -> ());
  Buffer.contents b

let run_smp_workload ~icache =
  let sys =
    K.System.boot ~config:C.Config.full ~seed:23L ~cpus:3 ~icache
      ~telemetry:true ()
  in
  let layout =
    K.System.map_user_program sys (Workloads.Smp.throughput_program ~rounds:6)
  in
  let entry = Asm.symbol layout "throughput" in
  let tasks = List.init 6 (fun _ -> K.System.spawn_user_task sys ~entry) in
  let stats = K.System.run_smp ~quantum:400 sys ~tasks in
  smp_fingerprint sys stats

let test_diff_smp_schedule () =
  Alcotest.(check string)
    "SMP schedule, exits, per-core cycles and counters match"
    (run_smp_workload ~icache:false)
    (run_smp_workload ~icache:true)

(* ---------- self-modifying code: store-hook invalidation ---------- *)

(* The program patches two of its own instruction slots mid-run and
   loops back over them: pass 1 executes the originals and performs the
   store, pass 2 must execute the replacements. A stale cached decode
   would replay the originals — caught against the uncached run. *)

type selfmod_case = {
  before : Insn.t list;  (* odd length keeps the victim slot 8-aligned *)
  originals : Insn.t * Insn.t;
  replacements : Insn.t * Insn.t;
  after : Insn.t list;
}

let selfmod_prog case ~word =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"selfmod"
    (Asm.mov_addr (Insn.R 10) "victim"
    @ mov_abs (Insn.R 11) word
    @ [ Asm.ins (Insn.Movz (Insn.R 12, 1, 0)); Asm.label "top" ]
    @ List.map Asm.ins case.before
    @ [
        Asm.label "victim";
        Asm.ins (fst case.originals);
        Asm.ins (snd case.originals);
      ]
    @ List.map Asm.ins case.after
    @ [
        Asm.cbz_to (Insn.R 12) "done";
        Asm.ins (Insn.Movz (Insn.R 12, 0, 0));
        Asm.ins (Insn.Str (Insn.R 11, Insn.Off (Insn.R 10, 0)));
        Asm.b_to "top";
        Asm.label "done";
        Asm.ins Insn.Ret;
      ]);
  prog

let run_selfmod case ~icache =
  (* The victim address is known before assembly: the function sits at
     [code_base] and the prefix ahead of the "victim" label is always
     mov_addr (4) + mov_abs (4) + one Movz + the filler. *)
  let victim =
    Int64.add Bare.code_base (Int64.of_int (4 * (9 + List.length case.before)))
  in
  assert (Int64.rem victim 8L = 0L);
  let enc pc insn =
    Int64.logand (Int64.of_int32 (Encode.encode ~pc insn)) 0xffffffffL
  in
  let word =
    Int64.logor
      (enc victim (fst case.replacements))
      (Int64.shift_left (enc (Int64.add victim 4L) (snd case.replacements)) 32)
  in
  let cpu = Bare.machine ~seed:3L ~icache () in
  (* the program patches itself, so its code pages must be writable *)
  Bare.map_region cpu ~base:Bare.code_base ~pages:16 Mmu.rwx;
  let layout = Bare.load cpu (selfmod_prog case ~word) in
  assert (Asm.symbol layout "selfmod" = Bare.code_base);
  let stop = Bare.call ~max_insns:100_000 cpu layout "selfmod" in
  (Cpu.stop_to_string stop, cpu)

let test_selfmod_patch_takes_effect () =
  let case =
    {
      before = [ Insn.Nop ];
      originals = (Insn.Movz (Insn.R 0, 1, 0), Insn.Nop);
      replacements = (Insn.Movz (Insn.R 0, 2, 0), Insn.Nop);
      after = [];
    }
  in
  let stop, cpu = run_selfmod case ~icache:true in
  Alcotest.(check string) "returned" "sentinel return" stop;
  let s = Icache.stats (Cpu.icache cpu) in
  Alcotest.(check bool) "the store dropped cached decodes" true
    (s.Icache.invalidations > 0);
  Alcotest.(check int64) "pass 2 executed the patched instruction" 2L
    (Cpu.reg cpu (Insn.R 0));
  let _, cpu_off = run_selfmod case ~icache:false in
  Alcotest.(check string) "cached = uncached" (fingerprint cpu_off)
    (fingerprint cpu)

let gen_simple =
  QCheck2.Gen.(
    let reg = map (fun n -> Insn.R n) (int_range 0 5) in
    let imm12 = int_range 0 4095 in
    oneof
      [
        map2 (fun r v -> Insn.Movz (r, v, 0)) reg (int_range 0 0xffff);
        map3 (fun d n v -> Insn.Add_imm (d, n, v)) reg reg imm12;
        map3 (fun d n v -> Insn.Sub_imm (d, n, v)) reg reg imm12;
        map3 (fun d n m -> Insn.Add_reg (d, n, m)) reg reg reg;
        map3 (fun d n m -> Insn.Eor_reg (d, n, m)) reg reg reg;
        map3 (fun d n m -> Insn.Orr_reg (d, n, m)) reg reg reg;
        map2 (fun d n -> Insn.Lsl_imm (d, n, 3)) reg reg;
        return Insn.Nop;
      ])

let gen_selfmod =
  QCheck2.Gen.(
    map (fun n -> (2 * n) + 1) (int_range 0 4) >>= fun k ->
    list_size (return k) gen_simple >>= fun before ->
    gen_simple >>= fun o1 ->
    gen_simple >>= fun o2 ->
    gen_simple >>= fun r1 ->
    gen_simple >>= fun r2 ->
    list_size (int_range 0 8) gen_simple >>= fun after ->
    return { before; originals = (o1, o2); replacements = (r1, r2); after })

let print_selfmod case =
  Printf.sprintf "before=[%s] originals=[%s; %s] replacements=[%s; %s] after=[%s]"
    (String.concat "; " (List.map Insn.to_string case.before))
    (Insn.to_string (fst case.originals))
    (Insn.to_string (snd case.originals))
    (Insn.to_string (fst case.replacements))
    (Insn.to_string (snd case.replacements))
    (String.concat "; " (List.map Insn.to_string case.after))

let prop_selfmod =
  QCheck2.Test.make ~count:40
    ~name:"random self-patching programs: cached = uncached"
    ~print:print_selfmod gen_selfmod (fun case ->
      let stop_on, cpu_on = run_selfmod case ~icache:true in
      let stop_off, cpu_off = run_selfmod case ~icache:false in
      stop_on = stop_off && fingerprint cpu_on = fingerprint cpu_off)

(* ---------- module unload/reload at the same address ---------- *)

let load_work_module sys name ret =
  let config = K.System.config sys in
  let h =
    C.Instrument.wrap config ~name:"h" [ Asm.ins (Insn.Movz (Insn.R 0, ret, 0)) ]
  in
  let obj =
    O.empty name
    |> fun o ->
    O.add_function o ~name:"h" h.C.Instrument.items
    |> fun o ->
    O.add_data o { O.blob_name = "w"; words = [ O.Lit 0L; O.Sym "h" ] }
    |> fun o ->
    O.add_static_sign o
      {
        O.sign_blob = "w";
        word_index = 1;
        type_name = "work_struct";
        member_name = "func";
      }
  in
  match K.System.load_module sys obj with
  | Result.Error e -> Alcotest.failf "load %s: %s" name (Kelf.Loader.error_to_string e)
  | Result.Ok placed -> placed

let dispatch sys placed =
  match K.System.run_work sys ~work_va:(Kelf.Loader.symbol placed "w") with
  | K.System.Ok v -> v
  | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "dispatch: %s" m

let run_reload ~icache =
  let sys = K.System.boot ~config:C.Config.full ~seed:3L ~icache () in
  let a = load_work_module sys "mod_a" 1 in
  let va = dispatch sys a in
  K.System.unload_module sys a;
  let b = load_work_module sys "mod_b" 2 in
  Alcotest.(check int64) "reload reuses the module area"
    a.Kelf.Loader.text_base b.Kelf.Loader.text_base;
  (va, dispatch sys b)

let test_unload_reload_invalidates () =
  let on = run_reload ~icache:true in
  let off = run_reload ~icache:false in
  Alcotest.(check (pair int64 int64))
    "second handler's code executes, not a stale decode" (1L, 2L) on;
  Alcotest.(check (pair int64 int64)) "cached = uncached" off on

(* ---------- stage-2 (XOM-style) permission flip ---------- *)

let run_stage2_flip ~icache =
  let cpu = Bare.machine ~seed:5L ~icache () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"f"
    [ Asm.ins (Insn.Movz (Insn.R 0, 7, 0)); Asm.ins Insn.Ret ];
  let layout = Bare.load cpu prog in
  let pa_page = Vaddr.page_of (Bare.pa_of_va (Asm.symbol layout "f")) in
  let mmu = Cpu.mmu cpu in
  let s1 = Bare.call cpu layout "f" in
  Mmu.stage2_protect mmu ~pa_page Mmu.rw;
  let s2 = Bare.call cpu layout "f" in
  Mmu.stage2_protect mmu ~pa_page Mmu.rx;
  let s3 = Bare.call cpu layout "f" in
  (List.map Cpu.stop_to_string [ s1; s2; s3 ], Cpu.reg cpu (Insn.R 0))

let test_stage2_flip_invalidates () =
  let (stops_on, r_on) = run_stage2_flip ~icache:true in
  let (stops_off, r_off) = run_stage2_flip ~icache:false in
  (match stops_on with
  | [ first; revoked; restored ] ->
      Alcotest.(check string) "first call returns" first restored;
      Alcotest.(check bool) "revoked execute permission faults" true
        (revoked <> first)
  | _ -> Alcotest.fail "expected three stops");
  Alcotest.(check (list string)) "cached = uncached stops" stops_off stops_on;
  Alcotest.(check int64) "cached = uncached result" r_off r_on

(* ---------- executed-MSR flush matrix ---------- *)

let test_msr_flush_matrix () =
  let cpu = Bare.machine ~seed:4L () in
  let _, da_lo = Sysreg.key_halves Sysreg.DA in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"touch"
    [ Asm.ins (Insn.Movz (Insn.R 0, 9, 0)); Asm.ins Insn.Ret ];
  Asm.add_function prog ~name:"ttbr"
    [
      Asm.ins (Insn.Mrs (Insn.R 1, Sysreg.TTBR0_EL1));
      Asm.ins (Insn.Msr (Sysreg.TTBR0_EL1, Insn.R 1));
      Asm.ins Insn.Ret;
    ];
  Asm.add_function prog ~name:"asid"
    [
      Asm.ins (Insn.Mrs (Insn.R 1, Sysreg.CONTEXTIDR_EL1));
      Asm.ins (Insn.Msr (Sysreg.CONTEXTIDR_EL1, Insn.R 1));
      Asm.ins Insn.Ret;
    ];
  Asm.add_function prog ~name:"keywr"
    [
      Asm.ins (Insn.Movz (Insn.R 1, 0x51ED, 0));
      Asm.ins (Insn.Msr (da_lo, Insn.R 1));
      Asm.ins Insn.Ret;
    ];
  let layout = Bare.load cpu prog in
  let flushes () = (Icache.stats (Cpu.icache cpu)).Icache.flushes in
  let expect name delta =
    let before = flushes () in
    (match Bare.call cpu layout name with
    | Cpu.Sentinel_return -> ()
    | s -> Alcotest.failf "%s stopped: %s" name (Cpu.stop_to_string s));
    Alcotest.(check int) (name ^ ": flush delta") delta (flushes () - before)
  in
  (* warm-up: the first fetch after boot syncs with the MMU generation
     counter (the boot-time mappings), which counts as one flush *)
  (match Bare.call cpu layout "touch" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "warm-up stopped: %s" (Cpu.stop_to_string s));
  expect "touch" 0;
  expect "ttbr" 1;
  (* the flushed cache refills and execution stays correct *)
  expect "touch" 0;
  Alcotest.(check int64) "refilled run result" 9L (Cpu.reg cpu (Insn.R 0));
  expect "asid" 1;
  (* PAuth key writes are exempt: keys affect execution, not decode *)
  expect "keywr" 0

(* ---------- fault injector: stuck-at flip on cached code ---------- *)

let faultinj_prog () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"victim"
    [ Asm.ins (Insn.Movz (Insn.R 0, 1, 0)); Asm.ins Insn.Ret ];
  Asm.add_function prog ~name:"caller"
    [
      Asm.ins (Insn.Movz (Insn.R 19, 0, 0));
      Asm.ins (Insn.Movz (Insn.R 20, 6, 0));
      Asm.label "loop";
      Asm.ins (Insn.Stp (Insn.lr, Insn.R 20, Insn.Pre (Insn.SP, -16)));
      Asm.bl_to "victim";
      Asm.ins (Insn.Ldp (Insn.lr, Insn.R 20, Insn.Post (Insn.SP, 16)));
      Asm.ins (Insn.Add_reg (Insn.R 19, Insn.R 19, Insn.R 0));
      Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
      Asm.cbnz_to (Insn.R 20) "loop";
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 19));
      Asm.ins Insn.Ret;
    ];
  prog

let run_stuck_fault ~icache =
  let cpu = Bare.machine ~seed:8L ~icache () in
  let layout = Bare.load cpu (faultinj_prog ()) in
  let victim = Asm.symbol layout "victim" in
  let inj =
    I.create
      {
        I.trigger = I.After_steps 12;
        model = I.Mem_flip { va = victim; bits = [ 1; 5 ] };
        persistence = I.Stuck;
      }
  in
  I.arm inj cpu;
  let stop = Bare.call ~max_insns:10_000 cpu layout "caller" in
  Alcotest.(check bool) "fault fired" true (I.fired inj);
  I.disarm cpu;
  (Cpu.stop_to_string stop, fingerprint cpu)

let test_stuck_fault_on_cached_code () =
  let on = run_stuck_fault ~icache:true in
  let off = run_stuck_fault ~icache:false in
  Alcotest.(check string) "cached = uncached stop" (fst off) (fst on);
  Alcotest.(check string) "cached = uncached state" (snd off) (snd on)

(* ---------- fast path engagement ---------- *)

let test_fast_path_without_hooks () =
  let cpu = Bare.machine () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"f"
    [ Asm.ins (Insn.Movz (Insn.R 0, 1, 0)); Asm.ins Insn.Ret ];
  let layout = Bare.load cpu prog in
  (match Bare.call cpu layout "f" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "f stopped: %s" (Cpu.stop_to_string s));
  Alcotest.(check bool) "hook-free run takes the fast loop" true
    (Cpu.last_run_fast cpu);
  Cpu.set_step_hook cpu (Some (fun _ ~pc:_ _ -> Cpu.Exec));
  (match Bare.call cpu layout "f" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "hooked f stopped: %s" (Cpu.stop_to_string s));
  Alcotest.(check bool) "a step hook forces the slow loop" false
    (Cpu.last_run_fast cpu);
  Cpu.set_step_hook cpu None;
  (match Bare.call cpu layout "f" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "unhooked f stopped: %s" (Cpu.stop_to_string s));
  Alcotest.(check bool) "removing the hook restores the fast loop" true
    (Cpu.last_run_fast cpu)

(* ---------- stats, toggling, sharing ---------- *)

let test_stats_and_toggle () =
  let cpu = Bare.machine ~seed:2L () in
  let layout = Bare.load cpu (memory_prog ()) in
  (match Bare.call cpu layout "memloop" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "memloop stopped: %s" (Cpu.stop_to_string s));
  let ic = Cpu.icache cpu in
  let s = Icache.stats ic in
  Alcotest.(check bool) "hits observed" true (s.Icache.fetch_hits > 0);
  Alcotest.(check bool) "fills observed" true (s.Icache.fills > 0);
  Alcotest.(check bool) "enabled" true (Icache.enabled ic);
  Icache.set_enabled ic false;
  let s2 = Icache.stats ic in
  Alcotest.(check int) "disabling flushes" (s.Icache.flushes + 1) s2.Icache.flushes;
  (match Bare.call cpu layout "memloop" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "disabled memloop stopped: %s" (Cpu.stop_to_string s));
  let s3 = Icache.stats ic in
  Alcotest.(check int) "disabled runs bypass the counters"
    s2.Icache.fetch_hits s3.Icache.fetch_hits;
  Icache.set_enabled ic true;
  Alcotest.(check int) "re-enabling flushes again" (s3.Icache.flushes + 1)
    (Icache.stats ic).Icache.flushes

let test_disabled_machine_never_counts () =
  let cpu = Bare.machine ~icache:false () in
  let layout = Bare.load cpu (memory_prog ()) in
  (match Bare.call cpu layout "memloop" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "memloop stopped: %s" (Cpu.stop_to_string s));
  let s = Icache.stats (Cpu.icache cpu) in
  Alcotest.(check int) "no hits" 0 s.Icache.fetch_hits;
  Alcotest.(check int) "no fills" 0 s.Icache.fills

let test_machine_shares_one_cache () =
  let m = Machine.create ~cpus:2 () in
  Alcotest.(check bool) "both cores use the machine cache" true
    (Cpu.icache (Machine.core m 0) == Cpu.icache (Machine.core m 1))

let suite =
  [
    Alcotest.test_case "differential: call-heavy workload" `Quick
      test_diff_call_workload;
    Alcotest.test_case "differential: load/store workload" `Quick
      test_diff_memory_workload;
    Alcotest.test_case "differential: SMP schedule + telemetry" `Quick
      test_diff_smp_schedule;
    Alcotest.test_case "self-patching code takes effect" `Quick
      test_selfmod_patch_takes_effect;
    QCheck_alcotest.to_alcotest prop_selfmod;
    Alcotest.test_case "module unload/reload at same address" `Quick
      test_unload_reload_invalidates;
    Alcotest.test_case "stage-2 permission flip" `Quick
      test_stage2_flip_invalidates;
    Alcotest.test_case "MSR flush matrix (TTBR/ASID yes, keys no)" `Quick
      test_msr_flush_matrix;
    Alcotest.test_case "stuck-at fault on cached code" `Quick
      test_stuck_fault_on_cached_code;
    Alcotest.test_case "hook-free runs take the fast path" `Quick
      test_fast_path_without_hooks;
    Alcotest.test_case "stats and enable/disable toggling" `Quick
      test_stats_and_toggle;
    Alcotest.test_case "disabled machine bypasses entirely" `Quick
      test_disabled_machine_never_counts;
    Alcotest.test_case "SMP machine shares one cache" `Quick
      test_machine_shares_one_cache;
  ]
