(* Tier-matrix verification of the superblock trace compiler (Traces).
   Compiled traces are a host-speed structure and must be
   architecturally invisible: every workload has to be bit-identical
   across the three execution tiers (interp / icache / traces) — same
   final registers, memory, stop reasons, cycle and retirement totals —
   while every invalidation channel (self-patching stores inside an
   active superblock, module unload/reload, executed MSR flushes,
   stage-2 permission flips, snapshot restores) keeps the trace cache
   coherent. The random-program side of this lives in [test_fuzz.ml];
   here are the hand-built edge cases. *)

open Aarch64
module C = Camouflage
module K = Kernel
module O = Kelf.Object_file

let all_tiers = Cpu.all_tiers

let tier_testable =
  Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (Cpu.tier_name t)) ( = )

let mov_abs r v =
  let chunk i =
    Int64.to_int (Int64.logand (Int64.shift_right_logical v (16 * i)) 0xffffL)
  in
  Asm.ins (Insn.Movz (r, chunk 0, 0))
  :: List.map (fun i -> Asm.ins (Insn.Movk (r, chunk i, 16 * i))) [ 1; 2; 3 ]

let fingerprint ?(probe = []) cpu =
  let b = Buffer.create 512 in
  Buffer.add_string b (Cpu.dump_state ~trace_limit:16 cpu);
  List.iter
    (fun va ->
      Buffer.add_string b (Printf.sprintf "[%Lx]=%Lx " va (Bare.read64 cpu va)))
    probe;
  Buffer.contents b

let tstats cpu =
  match Cpu.trace_stats cpu with
  | Some s -> s
  | None -> Alcotest.fail "traces-tier core carries no trace cache"

let check_traces_engaged cpu =
  let s = tstats cpu in
  Alcotest.(check bool) "superblocks were compiled" true (s.Traces.compiled > 0);
  Alcotest.(check bool) "superblocks were dispatched" true (s.Traces.executed > 0);
  Alcotest.(check bool) "instructions retired inside blocks" true
    (s.Traces.block_insns > 0)

(* ---------- differential: hot loop across all three tiers ---------- *)

(* 64 iterations — far past the hot threshold (16), so the traces tier
   compiles and runs the body as a superblock. *)
let hot_loop_prog () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"hot"
    (mov_abs (Insn.R 10) Bare.data_base
    @ [
        Asm.ins (Insn.Movz (Insn.R 11, 64, 0));
        Asm.ins (Insn.Movz (Insn.R 12, 0, 0));
        Asm.label "loop";
        Asm.ins (Insn.Add_imm (Insn.R 12, Insn.R 12, 3));
        Asm.ins (Insn.Str (Insn.R 12, Insn.Off (Insn.R 10, 0)));
        Asm.ins (Insn.Ldr (Insn.R 13, Insn.Off (Insn.R 10, 0)));
        Asm.ins (Insn.Eor_reg (Insn.R 12, Insn.R 12, Insn.R 13));
        Asm.ins (Insn.Add_reg (Insn.R 12, Insn.R 12, Insn.R 13));
        Asm.ins (Insn.Sub_imm (Insn.R 11, Insn.R 11, 1));
        Asm.cbnz_to (Insn.R 11) "loop";
        Asm.ins (Insn.Mov (Insn.R 0, Insn.R 12));
        Asm.ins Insn.Ret;
      ]);
  prog

let run_hot_loop ~tier =
  let cpu = Bare.machine ~seed:7L ~tier () in
  let layout = Bare.load cpu (hot_loop_prog ()) in
  (match Bare.call cpu layout "hot" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "hot loop stopped: %s" (Cpu.stop_to_string s));
  cpu

let test_diff_hot_loop () =
  let base = fingerprint ~probe:[ Bare.data_base ] (run_hot_loop ~tier:Cpu.Interp) in
  List.iter
    (fun tier ->
      let cpu = run_hot_loop ~tier in
      Alcotest.(check string)
        (Cpu.tier_name tier ^ " state = interp state")
        base
        (fingerprint ~probe:[ Bare.data_base ] cpu);
      if tier = Cpu.Traces then check_traces_engaged cpu)
    all_tiers

(* ---------- differential: call-heavy instrumented workload ---------- *)

let run_calls config ~tier =
  let cpu = Bare.machine ~seed:9L ~tier () in
  let obj = Workloads.Calls.calls_object config ~calls:400 in
  let prog = Asm.create () in
  List.iter
    (fun (name, items) -> Asm.add_function prog ~name items)
    obj.O.functions;
  let layout = Bare.load cpu prog in
  (match Bare.call ~max_insns:1_000_000 cpu layout "caller" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "calls workload stopped: %s" (Cpu.stop_to_string s));
  cpu

let test_diff_call_workload () =
  List.iter
    (fun config ->
      let base = fingerprint (run_calls config ~tier:Cpu.Interp) in
      List.iter
        (fun tier ->
          let cpu = run_calls config ~tier in
          Alcotest.(check string)
            (C.Config.name config ^ ": " ^ Cpu.tier_name tier ^ " = interp")
            base (fingerprint cpu);
          if tier = Cpu.Traces then check_traces_engaged cpu)
        all_tiers)
    [ C.Config.none; C.Config.backward_only ]

(* ---------- self-patching store inside an active superblock ---------- *)

(* The straight-line loop body contains both the patching store and the
   victim pair it overwrites, so the store fires while its own
   superblock is mid-dispatch: the driver must abort the dead block
   after the store and single-step the freshly patched victim. The
   store repeats every iteration, killing and recompiling the block
   each time — the hardest case for in-place invalidation. *)
let selfmod_prog ~word =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"selfmod"
    (Asm.mov_addr (Insn.R 10) "victim"
    @ mov_abs (Insn.R 11) word
    @ [
        Asm.ins (Insn.Movz (Insn.R 12, 40, 0));
        Asm.ins (Insn.Movz (Insn.R 13, 0, 0));
        Asm.label "top";
        Asm.ins (Insn.Str (Insn.R 11, Insn.Off (Insn.R 10, 0)));
        Asm.ins Insn.Nop;
        Asm.label "victim";
        Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
        Asm.ins Insn.Nop;
        Asm.ins (Insn.Add_reg (Insn.R 13, Insn.R 13, Insn.R 0));
        Asm.ins (Insn.Sub_imm (Insn.R 12, Insn.R 12, 1));
        Asm.cbnz_to (Insn.R 12) "top";
        Asm.ins (Insn.Mov (Insn.R 0, Insn.R 13));
        Asm.ins Insn.Ret;
      ]);
  prog

let run_selfmod ~tier =
  (* victim = code_base + 4 * (mov_addr 4 + mov_abs 4 + 2 movz + str + nop) *)
  let victim = Int64.add Bare.code_base (Int64.of_int (4 * 12)) in
  assert (Int64.rem victim 8L = 0L);
  let enc pc insn =
    Int64.logand (Int64.of_int32 (Encode.encode ~pc insn)) 0xffffffffL
  in
  let word =
    Int64.logor
      (enc victim (Insn.Movz (Insn.R 0, 2, 0)))
      (Int64.shift_left (enc (Int64.add victim 4L) Insn.Nop) 32)
  in
  let cpu = Bare.machine ~seed:3L ~tier () in
  Bare.map_region cpu ~base:Bare.code_base ~pages:16 Mmu.rwx;
  let layout = Bare.load cpu (selfmod_prog ~word) in
  assert (Asm.symbol layout "selfmod" = Bare.code_base);
  let stop = Bare.call ~max_insns:100_000 cpu layout "selfmod" in
  (Cpu.stop_to_string stop, cpu)

let test_selfmod_active_superblock () =
  let stop_tr, cpu_tr = run_selfmod ~tier:Cpu.Traces in
  Alcotest.(check string) "returned" "sentinel return" stop_tr;
  (* every iteration executes the patched movz: 40 * 2 *)
  Alcotest.(check int64) "patched instruction executed each pass" 80L
    (Cpu.reg cpu_tr (Insn.R 0));
  let s = tstats cpu_tr in
  Alcotest.(check bool) "the store killed compiled blocks" true
    (s.Traces.invalidations > 0);
  List.iter
    (fun tier ->
      let stop, cpu = run_selfmod ~tier in
      Alcotest.(check string)
        (Cpu.tier_name tier ^ " stop = traces stop") stop_tr stop;
      Alcotest.(check string)
        (Cpu.tier_name tier ^ " state = traces state")
        (fingerprint cpu_tr) (fingerprint cpu))
    [ Cpu.Interp; Cpu.Icache ]

(* ---------- module unload/reload mid-trace ---------- *)

let load_work_module sys name ret =
  let config = K.System.config sys in
  let h =
    C.Instrument.wrap config ~name:"h" [ Asm.ins (Insn.Movz (Insn.R 0, ret, 0)) ]
  in
  let obj =
    O.empty name
    |> fun o ->
    O.add_function o ~name:"h" h.C.Instrument.items
    |> fun o ->
    O.add_data o { O.blob_name = "w"; words = [ O.Lit 0L; O.Sym "h" ] }
    |> fun o ->
    O.add_static_sign o
      {
        O.sign_blob = "w";
        word_index = 1;
        type_name = "work_struct";
        member_name = "func";
      }
  in
  match K.System.load_module sys obj with
  | Result.Error e -> Alcotest.failf "load %s: %s" name (Kelf.Loader.error_to_string e)
  | Result.Ok placed -> placed

let dispatch sys placed =
  match K.System.run_work sys ~work_va:(Kelf.Loader.symbol placed "w") with
  | K.System.Ok v -> v
  | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "dispatch: %s" m

let run_reload ~tier =
  let sys = K.System.boot ~config:C.Config.full ~seed:3L ~tier () in
  let a = load_work_module sys "mod_a" 1 in
  (* dispatch the first handler past the hot threshold so its text is
     sitting in compiled superblocks when the module goes away *)
  let va = ref 0L in
  for _ = 1 to 24 do
    va := dispatch sys a
  done;
  K.System.unload_module sys a;
  let b = load_work_module sys "mod_b" 2 in
  Alcotest.(check int64) "reload reuses the module area"
    a.Kelf.Loader.text_base b.Kelf.Loader.text_base;
  (!va, dispatch sys b)

let test_unload_reload_mid_trace () =
  let tr = run_reload ~tier:Cpu.Traces in
  Alcotest.(check (pair int64 int64))
    "second handler's code executes, not a stale trace" (1L, 2L) tr;
  List.iter
    (fun tier ->
      Alcotest.(check (pair int64 int64))
        (Cpu.tier_name tier ^ " = traces") tr (run_reload ~tier))
    [ Cpu.Interp; Cpu.Icache ]

(* ---------- executed-MSR flush matrix ---------- *)

let test_msr_flush_matrix () =
  let cpu = Bare.machine ~seed:4L ~tier:Cpu.Traces () in
  let _, da_lo = Sysreg.key_halves Sysreg.DA in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"touch"
    [ Asm.ins (Insn.Movz (Insn.R 0, 9, 0)); Asm.ins Insn.Ret ];
  Asm.add_function prog ~name:"ttbr"
    [
      Asm.ins (Insn.Mrs (Insn.R 1, Sysreg.TTBR0_EL1));
      Asm.ins (Insn.Msr (Sysreg.TTBR0_EL1, Insn.R 1));
      Asm.ins Insn.Ret;
    ];
  Asm.add_function prog ~name:"sctlr"
    [
      Asm.ins (Insn.Mrs (Insn.R 1, Sysreg.SCTLR_EL1));
      Asm.ins (Insn.Msr (Sysreg.SCTLR_EL1, Insn.R 1));
      Asm.ins Insn.Ret;
    ];
  Asm.add_function prog ~name:"asid"
    [
      Asm.ins (Insn.Mrs (Insn.R 1, Sysreg.CONTEXTIDR_EL1));
      Asm.ins (Insn.Msr (Sysreg.CONTEXTIDR_EL1, Insn.R 1));
      Asm.ins Insn.Ret;
    ];
  Asm.add_function prog ~name:"keywr"
    [
      Asm.ins (Insn.Movz (Insn.R 1, 0x51ED, 0));
      Asm.ins (Insn.Msr (da_lo, Insn.R 1));
      Asm.ins Insn.Ret;
    ];
  let layout = Bare.load cpu prog in
  let flushes () = (tstats cpu).Traces.flushes in
  let expect name delta =
    let before = flushes () in
    (match Bare.call cpu layout name with
    | Cpu.Sentinel_return -> ()
    | s -> Alcotest.failf "%s stopped: %s" name (Cpu.stop_to_string s));
    Alcotest.(check int) (name ^ ": trace flush delta") delta (flushes () - before)
  in
  (* warm-up: the first dispatch syncs with the MMU generation counter
     (the boot-time mappings), which counts as one flush *)
  (match Bare.call cpu layout "touch" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "warm-up stopped: %s" (Cpu.stop_to_string s));
  expect "touch" 0;
  expect "ttbr" 1;
  expect "touch" 0;
  Alcotest.(check int64) "refilled run result" 9L (Cpu.reg cpu (Insn.R 0));
  expect "sctlr" 1;
  expect "asid" 1;
  (* PAuth key writes are exempt: keys affect execution, not decode *)
  expect "keywr" 0

(* ---------- stage-2 permission flip ---------- *)

let run_stage2_flip ~tier =
  let cpu = Bare.machine ~seed:5L ~tier () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"f"
    [ Asm.ins (Insn.Movz (Insn.R 0, 7, 0)); Asm.ins Insn.Ret ];
  let layout = Bare.load cpu prog in
  let pa_page = Vaddr.page_of (Bare.pa_of_va (Asm.symbol layout "f")) in
  let mmu = Cpu.mmu cpu in
  (* heat the function so the traces tier compiles it before the flip *)
  for _ = 1 to 24 do
    match Bare.call cpu layout "f" with
    | Cpu.Sentinel_return -> ()
    | s -> Alcotest.failf "warm f stopped: %s" (Cpu.stop_to_string s)
  done;
  Mmu.stage2_protect mmu ~pa_page Mmu.rw;
  let revoked = Bare.call cpu layout "f" in
  Mmu.stage2_protect mmu ~pa_page Mmu.rx;
  let restored = Bare.call cpu layout "f" in
  (List.map Cpu.stop_to_string [ revoked; restored ], Cpu.reg cpu (Insn.R 0))

let test_stage2_flip () =
  let stops_tr, r_tr = run_stage2_flip ~tier:Cpu.Traces in
  (match stops_tr with
  | [ revoked; restored ] ->
      Alcotest.(check string) "restored execute permission returns"
        "sentinel return" restored;
      Alcotest.(check bool) "revoked execute permission faults" true
        (revoked <> restored)
  | _ -> Alcotest.fail "expected two stops");
  List.iter
    (fun tier ->
      let stops, r = run_stage2_flip ~tier in
      Alcotest.(check (list string))
        (Cpu.tier_name tier ^ " stops = traces stops") stops_tr stops;
      Alcotest.(check int64)
        (Cpu.tier_name tier ^ " result = traces result") r_tr r)
    [ Cpu.Interp; Cpu.Icache ]

(* ---------- snapshot/restore across compiled traces ---------- *)

let test_snapshot_restore () =
  let run_twice m cpu layout =
    for _ = 1 to 2 do
      match Bare.call cpu layout "hot" with
      | Cpu.Sentinel_return -> ()
      | s -> Alcotest.failf "hot stopped: %s" (Cpu.stop_to_string s)
    done;
    Snapshot.Fingerprint.of_machine m
  in
  let m = Bare.smp ~seed:7L ~tier:Cpu.Traces () in
  let cpu = Machine.boot_core m in
  let layout = Bare.load cpu (hot_loop_prog ()) in
  (* heat + compile before the capture *)
  (match Bare.call cpu layout "hot" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "pre-snapshot hot stopped: %s" (Cpu.stop_to_string s));
  check_traces_engaged cpu;
  let snap = Machine.snapshot m in
  let first = run_twice m cpu layout in
  Machine.restore m snap;
  let second = run_twice m cpu layout in
  Alcotest.(check string) "restored rerun is bit-identical" first second;
  (* and the whole sequence matches the icache tier *)
  let m2 = Bare.smp ~seed:7L ~tier:Cpu.Icache () in
  let cpu2 = Machine.boot_core m2 in
  let layout2 = Bare.load cpu2 (hot_loop_prog ()) in
  (match Bare.call cpu2 layout2 "hot" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "icache hot stopped: %s" (Cpu.stop_to_string s));
  let snap2 = Machine.snapshot m2 in
  let first2 = run_twice m2 cpu2 layout2 in
  Machine.restore m2 snap2;
  ignore (run_twice m2 cpu2 layout2 : string);
  Alcotest.(check string) "traces fingerprint = icache fingerprint" first2 first

(* ---------- insn budget lands mid-block ---------- *)

let test_insn_limit_mid_block () =
  let run ~tier ~max_insns =
    let cpu = Bare.machine ~seed:7L ~tier () in
    let layout = Bare.load cpu (hot_loop_prog ()) in
    (* heat first so the budgeted run enters compiled blocks *)
    (match Bare.call cpu layout "hot" with
    | Cpu.Sentinel_return -> ()
    | s -> Alcotest.failf "warm hot stopped: %s" (Cpu.stop_to_string s));
    let stop = Bare.call ~max_insns cpu layout "hot" in
    (Cpu.stop_to_string stop, Cpu.insns_retired cpu, Cpu.pc cpu, Cpu.cycles cpu)
  in
  (* budgets chosen to land at every offset inside the 7-insn loop body *)
  List.iter
    (fun max_insns ->
      let base = run ~tier:Cpu.Interp ~max_insns in
      List.iter
        (fun tier ->
          let got = run ~tier ~max_insns in
          Alcotest.(check (pair string (pair int64 (pair int64 int64))))
            (Printf.sprintf "%s budget=%d" (Cpu.tier_name tier) max_insns)
            (let s, a, b, c = base in (s, (a, (b, c))))
            (let s, a, b, c = got in (s, (a, (b, c)))))
        all_tiers)
    [ 10; 11; 12; 13; 14; 15; 16; 17; 50 ]

(* ---------- block-to-block chaining ---------- *)

(* Chaining now shows at {e indirect} block boundaries: direct branches
   and predictable returns are inlined into the superblock itself, so
   the block-to-block edges that remain are the ones the compiler
   cannot follow statically — an indirect call (BLR) and its matching
   return. The hot loop below settles into two blocks (caller tail
   ending in BLR, helper body ending in RET) that chain to each other
   on every iteration. *)
let test_chaining () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"two_blocks"
    [
      Asm.ins (Insn.Movz (Insn.R 11, 200, 0));
      Asm.ins (Insn.Movz (Insn.R 12, 0, 0));
      Asm.ins (Insn.Mov (Insn.R 10, Insn.lr));
      Asm.adr_of (Insn.R 9) "helper";
      Asm.label "loop";
      Asm.ins (Insn.Blr (Insn.R 9));
      Asm.ins (Insn.Sub_imm (Insn.R 11, Insn.R 11, 1));
      Asm.cbnz_to (Insn.R 11) "loop";
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 12));
      Asm.ins (Insn.Mov (Insn.lr, Insn.R 10));
      Asm.ins Insn.Ret;
      Asm.label "helper";
      Asm.ins (Insn.Add_imm (Insn.R 12, Insn.R 12, 3));
      Asm.ins Insn.Ret;
    ];
  let cpu = Bare.machine ~seed:2L ~tier:Cpu.Traces () in
  let layout = Bare.load cpu prog in
  (match Bare.call cpu layout "two_blocks" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "two_blocks stopped: %s" (Cpu.stop_to_string s));
  Alcotest.(check int64) "loop result" 600L (Cpu.reg cpu (Insn.R 0));
  let s = tstats cpu in
  Alcotest.(check bool) "chain edges recorded" true (s.Traces.chain_links > 0);
  Alcotest.(check bool) "chain edges followed" true (s.Traces.chain_follows > 0)

(* ---------- last_run_tier reporting ---------- *)

let trivial_layout cpu =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"f"
    [ Asm.ins (Insn.Movz (Insn.R 0, 1, 0)); Asm.ins Insn.Ret ];
  Bare.load cpu prog

let call_f cpu layout =
  match Bare.call cpu layout "f" with
  | Cpu.Sentinel_return -> ()
  | s -> Alcotest.failf "f stopped: %s" (Cpu.stop_to_string s)

let test_last_run_tier () =
  List.iter
    (fun tier ->
      let cpu = Bare.machine ~tier () in
      Alcotest.(check tier_testable) "created tier" tier (Cpu.tier cpu);
      let layout = trivial_layout cpu in
      call_f cpu layout;
      Alcotest.(check tier_testable)
        (Cpu.tier_name tier ^ ": hook-free run reports its tier") tier
        (Cpu.last_run_tier cpu);
      Cpu.set_step_hook cpu (Some (fun _ ~pc:_ _ -> Cpu.Exec));
      call_f cpu layout;
      (* a hooked run cannot use compiled traces: a traces core drops to
         the icache tier, the others stay put *)
      let expected = if tier = Cpu.Traces then Cpu.Icache else tier in
      Alcotest.(check tier_testable)
        (Cpu.tier_name tier ^ ": hooked run reports the stepping tier")
        expected (Cpu.last_run_tier cpu);
      Cpu.set_step_hook cpu None;
      call_f cpu layout;
      Alcotest.(check tier_testable)
        (Cpu.tier_name tier ^ ": unhooking restores the tier") tier
        (Cpu.last_run_tier cpu))
    all_tiers;
  (* legacy spellings still resolve *)
  Alcotest.(check tier_testable) "default machine runs the icache tier"
    Cpu.Icache
    (Cpu.tier (Bare.machine ()));
  Alcotest.(check tier_testable) "icache:false still means interp" Cpu.Interp
    (Cpu.tier (Bare.machine ~icache:false ()))

let test_tier_of_string () =
  List.iter
    (fun tier ->
      match Cpu.tier_of_string (Cpu.tier_name tier) with
      | Some t -> Alcotest.(check tier_testable) "round-trips" tier t
      | None -> Alcotest.failf "%s does not parse" (Cpu.tier_name tier))
    all_tiers;
  Alcotest.(check bool) "junk rejected" true (Cpu.tier_of_string "jit" = None)

let suite =
  [
    Alcotest.test_case "differential: hot loop across tiers" `Quick
      test_diff_hot_loop;
    Alcotest.test_case "differential: call-heavy workload across tiers" `Quick
      test_diff_call_workload;
    Alcotest.test_case "self-patching store inside an active superblock" `Quick
      test_selfmod_active_superblock;
    Alcotest.test_case "module unload/reload mid-trace" `Quick
      test_unload_reload_mid_trace;
    Alcotest.test_case "executed-MSR flush matrix (TTBR/SCTLR/ASID yes, keys no)"
      `Quick test_msr_flush_matrix;
    Alcotest.test_case "stage-2 permission flip kills hot traces" `Quick
      test_stage2_flip;
    Alcotest.test_case "snapshot/restore across compiled traces" `Quick
      test_snapshot_restore;
    Alcotest.test_case "insn budget landing mid-block" `Quick
      test_insn_limit_mid_block;
    Alcotest.test_case "block-to-block chaining" `Quick test_chaining;
    Alcotest.test_case "last_run_tier reporting" `Quick test_last_run_tier;
    Alcotest.test_case "tier_of_string round-trip" `Quick test_tier_of_string;
  ]
