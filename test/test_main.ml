let () =
  Alcotest.run "camouflage"
    [
      ("util", Test_util.suite);
      ("qarma", Test_qarma.suite);
      ("mem-mmu", Test_mem_mmu.suite);
      ("asm", Test_asm.suite);
      ("vaddr", Test_vaddr.suite);
      ("encode", Test_encode.suite);
      ("insn", Test_insn.suite);
      ("paclint", Test_paclint.suite);
      ("cpu", Test_cpu.suite);
      ("icache", Test_icache.suite);
      ("traces", Test_traces.suite);
      ("camouflage", Test_camouflage.suite);
      ("kernel", Test_kernel.suite);
      ("sched", Test_sched.suite);
      ("smp", Test_smp.suite);
      ("xom", Test_xom.suite);
      ("loader", Test_loader.suite);
      ("attacks", Test_attacks.suite);
      ("workloads", Test_workloads.suite);
      ("sempatch", Test_sempatch.suite);
      ("properties", Test_properties.suite);
      ("fuzz", Test_fuzz.suite);
      ("faultinj", Test_faultinj.suite);
      ("telemetry", Test_telemetry.suite);
      ("fleet", Test_fleet.suite);
      ("snapshot", Test_snapshot.suite);
      ("misc", Test_misc.suite);
    ]
