(* PR 4: the telemetry subsystem. Counter-file invariants (per-class
   sums, same-seed reproducibility), event-trace determinism under
   run_smp, Chrome trace-event validation, and a QCheck property that
   attaching a sink never changes architectural state or cycle
   totals — observation must be pure. *)

open Aarch64
module C = Camouflage
module K = Kernel
module T = Telemetry

let user_entry sys ~rounds =
  let layout =
    K.System.map_user_program sys (Workloads.Smp.throughput_program ~rounds)
  in
  Asm.symbol layout "throughput"

(* Boot, run an 8-task SMP workload, hand back the system. *)
let smp_run ~seed ~cpus =
  let sys = K.System.boot ~seed ~cpus ~telemetry:true () in
  let entry = user_entry sys ~rounds:15 in
  let tasks = List.init 8 (fun _ -> K.System.spawn_user_task sys ~entry) in
  let stats = K.System.run_smp ~quantum:500 sys ~tasks in
  (sys, stats)

let hub sys =
  match K.System.telemetry sys with
  | Some h -> h
  | None -> Alcotest.fail "telemetry boot carries no hub"

(* --- counter invariants ------------------------------------------- *)

let test_class_sums_equal_retired () =
  let sys, _ = smp_run ~seed:7L ~cpus:4 in
  let h = hub sys in
  Array.iteri
    (fun cid snap ->
      let by_class = Array.fold_left Int64.add 0L snap.T.Counters.classes in
      Alcotest.(check int64)
        (Printf.sprintf "cpu%d: per-class counts sum to retired" cid)
        snap.T.Counters.retired by_class)
    (T.Hub.per_cpu h);
  let merged = T.Hub.counters h in
  Alcotest.(check bool) "work retired" true
    (Int64.compare merged.T.Counters.retired 0L > 0);
  Alcotest.(check bool) "cycles >= retired (every insn costs >= 1)" true
    (Int64.compare merged.T.Counters.cycles merged.T.Counters.retired >= 0)

let test_discrete_counters_move () =
  let sys, _ = smp_run ~seed:7L ~cpus:4 in
  let merged = T.Hub.counters (hub sys) in
  Alcotest.(check bool) "key installs observed" true
    (Int64.compare merged.T.Counters.key_installs 0L > 0);
  Alcotest.(check bool) "exception entries observed" true
    (Int64.compare merged.T.Counters.exception_entries 0L > 0);
  Alcotest.(check bool) "mmu walks observed" true
    (Int64.compare merged.T.Counters.mmu_walks 0L > 0);
  Alcotest.(check bool) "pauth signing observed" true
    (Int64.compare (T.Counters.pac_ops merged) 0L > 0);
  Alcotest.(check bool) "pauth authentication observed" true
    (Int64.compare (T.Counters.aut_ops merged) 0L > 0)

let test_same_seed_counters_identical () =
  let snap_of () =
    let sys, _ = smp_run ~seed:11L ~cpus:4 in
    (T.Hub.counters (hub sys), T.Hub.per_cpu (hub sys))
  in
  let a = snap_of () and b = snap_of () in
  Alcotest.(check bool) "same seed: identical counter files" true (a = b)

let test_diff_and_merge () =
  let c = T.Counters.create () in
  T.Counters.retire c ~cls:T.Counters.Alu ~cycles:3;
  T.Counters.retire c ~cls:T.Counters.Load ~cycles:2;
  let mid = T.Counters.snapshot c in
  T.Counters.retire c ~cls:T.Counters.Pac ~cycles:4;
  T.Counters.count_key_install c;
  let after = T.Counters.snapshot c in
  let d = T.Counters.diff ~after ~before:mid in
  Alcotest.(check int64) "diff retired" 1L d.T.Counters.retired;
  Alcotest.(check int64) "diff cycles" 4L d.T.Counters.cycles;
  Alcotest.(check int64) "diff key installs" 1L d.T.Counters.key_installs;
  let m = T.Counters.merge mid d in
  Alcotest.(check bool) "merge(before, diff) = after" true (m = after)

(* --- trace determinism and the event ring ------------------------- *)

let test_run_smp_trace_deterministic () =
  let events () =
    let sys, _ = smp_run ~seed:11L ~cpus:4 in
    T.Hub.events (hub sys)
  in
  let a = events () and b = events () in
  Alcotest.(check int) "same event count" (List.length a) (List.length b);
  Alcotest.(check bool) "same seed: byte-identical event streams" true (a = b);
  Alcotest.(check bool) "trace is non-trivial" true (List.length a > 50)

let test_trace_covers_event_kinds () =
  let sys, _ = smp_run ~seed:7L ~cpus:4 in
  let kinds =
    List.sort_uniq compare
      (List.map (fun e -> T.Event.kind e.T.Event.payload) (T.Hub.events (hub sys)))
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "%s events present" k) true
        (List.mem k kinds))
    [ "syscall-enter"; "syscall-exit"; "context-switch"; "key-switch" ]

let test_ring_bounds () =
  let r = T.Ring.create ~depth:4 in
  for i = 1 to 10 do
    T.Ring.push r
      { T.Event.ts = Int64.of_int i; cpu = 0; payload = T.Event.Log { line = "x" } }
  done;
  Alcotest.(check int) "length capped at depth" 4 (T.Ring.length r);
  Alcotest.(check int) "pushed counts all" 10 (T.Ring.pushed r);
  Alcotest.(check int) "dropped = pushed - depth" 6 (T.Ring.dropped r);
  (match T.Ring.to_list r with
  | { T.Event.ts = 7L; _ } :: _ -> ()
  | e :: _ -> Alcotest.failf "oldest survivor has ts %Ld, want 7" e.T.Event.ts
  | [] -> Alcotest.fail "ring empty");
  Alcotest.check_raises "depth must be positive"
    (Invalid_argument "Ring.create: depth") (fun () ->
      ignore (T.Ring.create ~depth:0))

(* --- pure observation: telemetry never perturbs the machine ------- *)

let gen_insn =
  QCheck2.Gen.(
    let open Insn in
    let reg = map (fun n -> R n) (int_range 0 15) in
    let imm16 = int_range 0 0xffff in
    let imm12 = int_range 0 4095 in
    oneof
      [
        return Nop;
        map3 (fun r v s -> Movz (r, v, s)) reg imm16
          (map (fun s -> 16 * s) (int_range 0 3));
        map2 (fun a b -> Mov (a, b)) reg reg;
        map3 (fun a b v -> Add_imm (a, b, v)) reg reg imm12;
        map3 (fun a b v -> Sub_imm (a, b, v)) reg reg imm12;
        map3 (fun a b c -> Add_reg (a, b, c)) reg reg reg;
        map2 (fun k r -> Pac (k, r, SP)) (oneofl Sysreg.[ IA; IB ]) reg;
        map (fun r -> Xpac r) reg;
      ])

let gen_body = QCheck2.Gen.(list_size (int_range 1 40) gen_insn)

let run_body ~telemetry body =
  let cpu = Bare.machine ~seed:42L () in
  if telemetry then Cpu.attach_telemetry cpu (T.Sink.create ~cpu:0 ());
  let prog = Asm.create () in
  Asm.add_function prog ~name:"f" (List.map Asm.ins body @ [ Asm.ins Insn.Ret ]);
  let layout = Bare.load cpu prog in
  for idx = 0 to 15 do
    Cpu.set_reg cpu (Insn.R idx) (Int64.of_int ((idx * 7919) + 13))
  done;
  match Bare.call cpu layout "f" with
  | Cpu.Sentinel_return ->
      (List.init 16 (fun i -> Cpu.reg cpu (Insn.R i)), Cpu.cycles cpu)
  | other -> Alcotest.failf "probe run: %s" (Cpu.stop_to_string other)

let prop_telemetry_is_pure =
  QCheck2.Test.make
    ~name:"attaching telemetry never changes architectural state or cycles"
    ~count:100 gen_body (fun body ->
      run_body ~telemetry:false body = run_body ~telemetry:true body)

let test_boot_identical_with_telemetry () =
  let fingerprint ~telemetry =
    let sys = K.System.boot ~seed:7L ~cpus:4 ~telemetry () in
    let entry = user_entry sys ~rounds:15 in
    let tasks = List.init 8 (fun _ -> K.System.spawn_user_task sys ~entry) in
    let stats = K.System.run_smp ~quantum:500 sys ~tasks in
    ( List.map (fun (c, p, _) -> (c, p)) stats.K.System.smp_exits,
      stats.K.System.makespan,
      Array.to_list stats.K.System.per_cpu_cycles,
      K.System.console_output sys )
  in
  Alcotest.(check bool)
    "telemetry-enabled run is architecturally identical to disabled" true
    (fingerprint ~telemetry:false = fingerprint ~telemetry:true)

(* --- PMU sysregs -------------------------------------------------- *)

let test_pmu_regs_el0_readable () =
  List.iter
    (fun sr ->
      Alcotest.(check bool)
        (Sysreg.name sr ^ " is EL0-readable")
        true (Sysreg.el0_readable sr))
    Sysreg.
      [ PMCCNTR_EL0; PMICNTR_EL0; PMEVCNTR0_EL0; PMEVCNTR1_EL0; PMEVCNTR2_EL0 ];
  Alcotest.(check bool) "SCTLR stays privileged" false
    (Sysreg.el0_readable Sysreg.SCTLR_EL1);
  Alcotest.(check bool) "key halves stay privileged" false
    (Sysreg.el0_readable Sysreg.APIAKeyLo_EL1);
  Alcotest.(check bool) "PMU regs are not pauth keys" true
    (List.for_all (fun sr -> not (Sysreg.is_pauth_key sr))
       [ Sysreg.PMCCNTR_EL0; Sysreg.PMEVCNTR0_EL0 ])

let pmu_probe ~telemetry =
  let cpu = Bare.machine ~seed:42L () in
  if telemetry then Cpu.attach_telemetry cpu (T.Sink.create ~cpu:0 ());
  let prog = Asm.create () in
  Asm.add_function prog ~name:"probe"
    [
      Asm.ins (Insn.Pac (Sysreg.IA, Insn.R 0, Insn.SP));
      Asm.ins (Insn.Pac (Sysreg.IB, Insn.R 1, Insn.SP));
      Asm.ins (Insn.Aut (Sysreg.IA, Insn.R 0, Insn.SP));
      Asm.ins (Insn.Mrs (Insn.R 2, Sysreg.PMEVCNTR0_EL0));
      Asm.ins (Insn.Mrs (Insn.R 3, Sysreg.PMEVCNTR1_EL0));
      Asm.ins (Insn.Mrs (Insn.R 4, Sysreg.PMCCNTR_EL0));
      Asm.ins (Insn.Mrs (Insn.R 5, Sysreg.PMICNTR_EL0));
      Asm.ins Insn.Ret;
    ];
  let layout = Bare.load cpu prog in
  (match Bare.call cpu layout "probe" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "pmu probe: %s" (Cpu.stop_to_string other));
  cpu

let test_pmu_mrs_reads_live_counters () =
  let cpu = pmu_probe ~telemetry:true in
  Alcotest.(check int64) "PMEVCNTR0 = pac ops so far" 2L (Cpu.reg cpu (Insn.R 2));
  Alcotest.(check int64) "PMEVCNTR1 = aut ops so far" 1L (Cpu.reg cpu (Insn.R 3));
  Alcotest.(check bool) "PMCCNTR tracks the cycle counter" true
    (Cpu.reg cpu (Insn.R 4) > 0L && Cpu.reg cpu (Insn.R 4) <= Cpu.cycles cpu);
  Alcotest.(check bool) "PMICNTR counts retirements" true
    (Cpu.reg cpu (Insn.R 5) >= 4L)

let test_pmu_mrs_reads_zero_without_sink () =
  let cpu = pmu_probe ~telemetry:false in
  Alcotest.(check int64) "PMEVCNTR0 reads 0 unmonitored" 0L (Cpu.reg cpu (Insn.R 2));
  Alcotest.(check int64) "PMEVCNTR1 reads 0 unmonitored" 0L (Cpu.reg cpu (Insn.R 3))

(* --- dump_state --------------------------------------------------- *)

let test_dump_state_counters () =
  let with_sink = Cpu.dump_state (pmu_probe ~telemetry:true) in
  let without = Cpu.dump_state (pmu_probe ~telemetry:false) in
  let has_counters s =
    let needle = "counters:" in
    let n = String.length needle and len = String.length s in
    let rec scan i = i + n <= len && (String.sub s i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "sink attached: dump carries counters" true
    (has_counters with_sink);
  Alcotest.(check bool) "no sink: no counters line" false (has_counters without)

let test_dump_state_full_trace_default () =
  let cpu = Bare.machine ~seed:42L ~trace_depth:64 () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"f"
    (List.init 60 (fun _ -> Asm.ins Insn.Nop) @ [ Asm.ins Insn.Ret ]);
  let layout = Bare.load cpu prog in
  ignore (Bare.call cpu layout "f");
  let count_lines needle s =
    let n = ref 0 in
    String.iteri
      (fun i c ->
        if c = needle.[0] && i + String.length needle <= String.length s
           && String.sub s i (String.length needle) = needle
        then incr n)
      s;
    !n
  in
  let dump = Cpu.dump_state cpu in
  let limited = Cpu.dump_state ~trace_limit:8 cpu in
  Alcotest.(check int) "default dump shows the whole ring" 61
    (count_lines "\n    " dump);
  Alcotest.(check int) "explicit limit still honoured" 8
    (count_lines "\n    " limited)

(* --- Chrome trace-event output ------------------------------------ *)

let test_chrome_serialization_validates () =
  let sys, _ = smp_run ~seed:7L ~cpus:4 in
  let doc = T.Chrome.serialize (hub sys) in
  (match T.Chrome.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "serialized trace rejected: %s" e);
  (match T.Json.parse doc with
  | Ok (T.Json.Obj kvs) -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (T.Json.List evs) ->
          Alcotest.(check bool) "trace has events" true (List.length evs > 50)
      | _ -> Alcotest.fail "no traceEvents array")
  | Ok _ -> Alcotest.fail "top level is not an object"
  | Error e -> Alcotest.failf "unparsable: %s" e);
  let text = T.Chrome.text ~limit:20 (hub sys) in
  Alcotest.(check bool) "text dump mentions dropped prefix" true
    (String.length text > 0)

let test_chrome_validate_rejects_bad_traces () =
  let reject doc what =
    match T.Chrome.validate doc with
    | Ok () -> Alcotest.failf "accepted %s" what
    | Error _ -> ()
  in
  reject "{" "truncated JSON";
  reject {|{"traceEvents": 3}|} "non-array traceEvents";
  reject
    {|{"traceEvents": [{"name":"a","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"},
                       {"name":"b","ph":"i","ts":4,"pid":0,"tid":0,"s":"t"}]}|}
    "non-monotone ts within a track";
  reject
    {|{"traceEvents": [{"ph":"i","ts":5,"pid":0,"tid":0}]}|}
    "event without a name";
  match
    T.Chrome.validate
      {|{"traceEvents": [{"name":"a","ph":"i","ts":4,"pid":0,"tid":1,"s":"t"},
                         {"name":"b","ph":"i","ts":2,"pid":0,"tid":2,"s":"t"}]}|}
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "distinct tracks wrongly coupled: %s" e

(* --- kernel integration ------------------------------------------- *)

let test_log_events_cycle_stamped () =
  let sys = K.System.boot ~seed:7L () in
  let events = K.System.log_events sys in
  Alcotest.(check bool) "boot produced log entries" true (List.length events > 0);
  let rec monotone = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        Int64.compare a b <= 0 && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "log timestamps are monotone cycle counts" true
    (monotone events);
  Alcotest.(check bool) "timestamps are non-negative" true
    (List.for_all (fun (ts, _) -> Int64.compare ts 0L >= 0) events);
  Alcotest.(check (list string)) "log lines unchanged by stamping"
    (List.map snd events) (K.System.log sys)

let test_syscall_names () =
  Alcotest.(check string) "exit" "sys_exit" (K.Kbuild.syscall_name K.Kbuild.sys_exit);
  Alcotest.(check string) "getpid" "sys_getpid"
    (K.Kbuild.syscall_name K.Kbuild.sys_getpid);
  Alcotest.(check string) "out of range" "sys_99" (K.Kbuild.syscall_name 99)

(* --- attribution -------------------------------------------------- *)

let test_attribution_accounts_for_overhead () =
  let rows = Workloads.Calls.attribute ~calls:2000 () in
  Alcotest.(check int) "one row per scheme" 4 (List.length rows);
  let baseline = List.hd rows in
  Alcotest.(check (float 1e-9)) "baseline adds nothing" 0.0
    baseline.Workloads.Calls.attr_added_per_call;
  List.iteri
    (fun i row ->
      if i > 0 then begin
        Alcotest.(check bool)
          (row.Workloads.Calls.attr_label ^ ": instrumentation adds cycles")
          true
          (Int64.compare row.Workloads.Calls.attr_added_cycles 0L > 0);
        Alcotest.(check bool)
          (Printf.sprintf "%s: >= 95%% of added cycles attributed (got %.1f%%)"
             row.Workloads.Calls.attr_label
             (100. *. row.Workloads.Calls.attr_fraction))
          true
          (row.Workloads.Calls.attr_fraction >= 0.95)
      end)
    rows;
  let camo = List.nth rows 3 in
  Alcotest.(check bool) "flat profile names the victim" true
    (List.exists
       (fun l -> l.T.Profile.line_symbol = "victim")
       camo.Workloads.Calls.attr_flat);
  Alcotest.(check bool) "folded stacks carry origins" true
    (String.length camo.Workloads.Calls.attr_folded > 0)

(* --- merge is a commutative monoid (PR 6 satellite) ----------------
   The fleet engine folds per-job counter files in index order and
   relies on any other fold order being equivalent; that is exactly the
   commutative-monoid law for [merge] with [zero] as identity. *)

let snapshot_gen =
  let open QCheck2.Gen in
  let i64 = map Int64.of_int (int_range 0 1_000_000) in
  map
    (fun (f, classes) ->
      {
        T.Counters.retired = f.(0);
        cycles = f.(1);
        classes;
        auth_failures = f.(2);
        key_installs = f.(3);
        exception_entries = f.(4);
        exception_returns = f.(5);
        mmu_walks = f.(6);
        ipis_sent = f.(7);
        ipis_received = f.(8);
      })
    (pair
       (array_size (return 9) i64)
       (array_size (return T.Counters.class_count) i64))

let prop_merge_monoid =
  QCheck2.Test.make ~name:"Counters.merge: commutative monoid with zero"
    ~count:200
    QCheck2.Gen.(triple snapshot_gen snapshot_gen snapshot_gen)
    (fun (a, b, c) ->
      T.Counters.merge a b = T.Counters.merge b a
      && T.Counters.merge (T.Counters.merge a b) c
         = T.Counters.merge a (T.Counters.merge b c)
      && T.Counters.merge T.Counters.zero a = a
      && T.Counters.merge a T.Counters.zero = a)

(* --- HDR histograms (PR 9 tentpole) --------------------------------
   The percentile contract: the histogram reports the lower bound of
   exactly the bucket holding the rank-th smallest sample, which bounds
   the true sorted-sample percentile within one sub-bucket (1/32
   relative error). Merge must be the same commutative monoid the fleet
   fold relies on for Counters. *)

let sample_gen =
  QCheck2.Gen.(
    list_size (int_range 1 300)
      (oneof [ int_range 0 40; int_range 0 100_000; int_range 0 200_000_000 ]))

let hist_of values =
  let h = T.Hist.create () in
  List.iter (fun v -> T.Hist.record h (Int64.of_int v)) values;
  h

let exact_percentile sorted q =
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  List.nth sorted (rank - 1)

let prop_hist_percentile_accuracy =
  QCheck2.Test.make
    ~name:"Hist percentiles: exact bucket of the sorted-sample rank" ~count:200
    sample_gen
    (fun values ->
      let h = hist_of values in
      let sorted = List.sort compare values in
      List.for_all
        (fun q ->
          let exact = exact_percentile sorted q in
          let p = T.Hist.percentile h q in
          (* the reported value is the lower bound of the exact
             percentile's own bucket... *)
          p = T.Hist.bucket_low (T.Hist.index_of exact)
          (* ...so it never exceeds the exact value and trails it by
             less than one sub-bucket (width <= low/32, or 1 below 32) *)
          && Int64.compare p (Int64.of_int exact) <= 0
          && Int64.compare (Int64.of_int exact)
               (Int64.add p (Int64.add (Int64.div p 32L) 1L))
             < 0)
        [ 0.5; 0.9; 0.99; 0.999 ])

let prop_hist_merge_monoid =
  QCheck2.Test.make ~name:"Hist.merge: commutative monoid with empty"
    ~count:200
    QCheck2.Gen.(triple sample_gen sample_gen sample_gen)
    (fun (a, b, c) ->
      let ha = hist_of a and hb = hist_of b and hc = hist_of c in
      T.Hist.equal (T.Hist.merge ha hb) (T.Hist.merge hb ha)
      && T.Hist.equal
           (T.Hist.merge (T.Hist.merge ha hb) hc)
           (T.Hist.merge ha (T.Hist.merge hb hc))
      && T.Hist.equal (T.Hist.merge T.Hist.empty ha) ha
      && T.Hist.equal (T.Hist.merge ha T.Hist.empty) ha
      && T.Hist.count (T.Hist.merge ha hb)
         = Int64.add (T.Hist.count ha) (T.Hist.count hb)
      && T.Hist.sum (T.Hist.merge ha hb)
         = Int64.add (T.Hist.sum ha) (T.Hist.sum hb))

let test_hist_empty_edges () =
  let h = T.Hist.create () in
  Alcotest.(check bool) "fresh histogram is empty" true (T.Hist.is_empty h);
  Alcotest.(check int64) "count 0" 0L (T.Hist.count h);
  Alcotest.(check int64) "empty percentile is 0" 0L (T.Hist.p99 h);
  Alcotest.(check int64) "empty min is 0" 0L (T.Hist.min_value h);
  Alcotest.(check int64) "empty max is 0" 0L (T.Hist.max_value h);
  Alcotest.(check string) "empty summary" "n=0" (T.Hist.to_string h);
  Alcotest.(check bool) "empty equals the identity" true
    (T.Hist.equal h T.Hist.empty);
  Alcotest.(check bool) "merge of empties stays empty" true
    (T.Hist.is_empty (T.Hist.merge h T.Hist.empty));
  T.Hist.record h (-5L);
  Alcotest.(check int64) "negative samples clamp to 0" 0L (T.Hist.min_value h);
  Alcotest.(check int64) "clamped sample still counts" 1L (T.Hist.count h);
  T.Hist.record h 1_000_000_000_000L;
  Alcotest.(check int64) "huge values keep an exact max" 1_000_000_000_000L
    (T.Hist.max_value h);
  match T.Json.parse (T.Hist.to_json h) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "to_json unparsable: %s" e

(* --- span derivation ----------------------------------------------- *)

let ev ts cpu payload = { T.Event.ts; cpu; payload }

let test_span_pairing () =
  let events =
    [
      ev 100L 0 (T.Event.Syscall_enter { nr = 1; name = "sys_a"; pid = 7 });
      (* same (cpu, nr, pid) nested again: FIFO pairing *)
      ev 110L 1 (T.Event.Syscall_enter { nr = 1; name = "sys_a"; pid = 8 });
      ev 150L 0 (T.Event.Syscall_exit { nr = 1; name = "sys_a"; pid = 7; result = 0L });
      ev 180L 1 (T.Event.Syscall_exit { nr = 1; name = "sys_a"; pid = 8; result = 0L });
      ev 200L 0 (T.Event.Context_switch { from_pid = 7; to_pid = 9 });
      ev 224L 0 (T.Event.Switch_done { from_pid = 7; to_pid = 9 });
      (* unmatched begin markers: no span *)
      ev 300L 1 (T.Event.Syscall_enter { nr = 2; name = "sys_b"; pid = 8 });
      ev 310L 1 (T.Event.Context_switch { from_pid = 8; to_pid = 3 });
    ]
  in
  let spans = T.Span.of_events events in
  let durs k =
    List.filter_map
      (fun s -> if s.T.Span.sp_kind = k then Some s.T.Span.sp_dur else None)
      spans
  in
  Alcotest.(check (list int64)) "syscall durations, end order" [ 50L; 70L ]
    (durs T.Span.Syscall);
  Alcotest.(check (list int64)) "switch duration" [ 24L ]
    (durs T.Span.Context_switch);
  Alcotest.(check int) "unmatched begins produce no span" 3 (List.length spans)

let test_span_ipi_cross_clock () =
  (* the receive's core-local clock is BEHIND the sender's: the span
     must live on the sender's clock and never go negative *)
  let events =
    [
      ev 1000L 0 (T.Event.Ipi_send { dst = 1; kind = "reschedule" });
      ev 40L 1 (T.Event.Ipi_receive { srcs = [ 0 ]; kind = "reschedule" });
      ev 1100L 0 (T.Event.Ipi_send { dst = 1; kind = "reschedule" });
      ev 1150L 1 (T.Event.Ipi_receive { srcs = [ 0 ]; kind = "reschedule" });
    ]
  in
  let spans = T.Span.of_events events in
  let ipis = List.filter (fun s -> s.T.Span.sp_kind = T.Span.Ipi) spans in
  Alcotest.(check int) "early receive cannot close a later send" 1
    (List.length ipis);
  List.iter
    (fun s ->
      Alcotest.(check bool) "non-negative duration" true
        (Int64.compare s.T.Span.sp_dur 0L >= 0);
      Alcotest.(check int) "span lives on the sender's core" 0 s.T.Span.sp_cpu)
    ipis

let test_span_histograms_deterministic () =
  let hists () =
    let sys, _ = smp_run ~seed:11L ~cpus:4 in
    T.Hub.histograms (hub sys)
  in
  let a = hists () and b = hists () in
  List.iter2
    (fun (ka, ha) (kb, hb) ->
      Alcotest.(check string) "kind order fixed" (T.Span.kind_name ka)
        (T.Span.kind_name kb);
      Alcotest.(check bool)
        (T.Span.kind_name ka ^ ": same seed, equal histograms")
        true (T.Hist.equal ha hb))
    a b;
  Alcotest.(check string) "same seed: byte-identical histogram JSON"
    (T.Span.histograms_to_json a)
    (T.Span.histograms_to_json b);
  let syscalls = List.assoc T.Span.Syscall a in
  Alcotest.(check bool) "workload produced syscall spans" true
    (Int64.compare (T.Hist.count syscalls) 0L > 0);
  let switches = List.assoc T.Span.Context_switch a in
  Alcotest.(check bool) "workload produced switch spans" true
    (Int64.compare (T.Hist.count switches) 0L > 0)

let test_chrome_has_duration_events () =
  let sys, _ = smp_run ~seed:7L ~cpus:4 in
  let doc = T.Chrome.serialize (hub sys) in
  (match T.Chrome.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace with X events rejected: %s" e);
  match T.Json.parse doc with
  | Ok (T.Json.Obj kvs) -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (T.Json.List evs) ->
          let durations =
            List.filter
              (fun e ->
                match T.Json.member "ph" e with
                | Some (T.Json.Str "X") -> true
                | _ -> false)
              evs
          in
          Alcotest.(check bool) "trace carries X duration events" true
            (List.length durations > 0);
          List.iter
            (fun e ->
              match T.Json.member "dur" e with
              | Some (T.Json.Num d) ->
                  Alcotest.(check bool) "dur >= 0" true (d >= 0.0)
              | _ -> Alcotest.fail "X event without dur")
            durations
      | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "unparsable trace"

(* --- validator: position-carrying rejections ----------------------- *)

let test_chrome_validate_positions () =
  let reject_with doc what needle =
    match T.Chrome.validate doc with
    | Ok () -> Alcotest.failf "accepted %s" what
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: error %S names a position" what e)
          true
          (let has s sub =
             let n = String.length sub in
             let rec go i =
               i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
             in
             go 0
           in
           has e needle && has e "line ")
  in
  reject_with
    {|{"traceEvents": [{"name":"a","ph":"X","ts":5,"dur":-2,"pid":0,"tid":0}]}|}
    "negative dur" "negative dur";
  reject_with
    {|{"traceEvents": [{"name":"a","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"},
                       {"name":"b","ph":"i","ts":4,"pid":0,"tid":0,"s":"t"}]}|}
    "non-monotone ts" "before";
  match T.Json.parse_located "{\"a\": tru}" with
  | Ok _ -> Alcotest.fail "parser accepted a bad literal"
  | Error e ->
      Alcotest.(check bool) "parse error carries line/column" true
        (String.length e > 0
        &&
        let has sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length e && (String.sub e i n = sub || go (i + 1))
          in
          go 0
        in
        has "line 1" && has "column")

let suite =
  [
    Alcotest.test_case "per-class counts sum to retired" `Quick
      test_class_sums_equal_retired;
    Alcotest.test_case "discrete event counters move" `Quick
      test_discrete_counters_move;
    Alcotest.test_case "same seed: identical counters" `Quick
      test_same_seed_counters_identical;
    Alcotest.test_case "snapshot diff and merge" `Quick test_diff_and_merge;
    QCheck_alcotest.to_alcotest prop_merge_monoid;
    Alcotest.test_case "run_smp trace is deterministic" `Quick
      test_run_smp_trace_deterministic;
    Alcotest.test_case "trace covers the event taxonomy" `Quick
      test_trace_covers_event_kinds;
    Alcotest.test_case "event ring is bounded and counts drops" `Quick
      test_ring_bounds;
    QCheck_alcotest.to_alcotest prop_telemetry_is_pure;
    Alcotest.test_case "telemetry boot is architecturally identical" `Quick
      test_boot_identical_with_telemetry;
    Alcotest.test_case "PMU sysregs are EL0-readable" `Quick
      test_pmu_regs_el0_readable;
    Alcotest.test_case "MRS reads live PMU counters" `Quick
      test_pmu_mrs_reads_live_counters;
    Alcotest.test_case "PMU counters read 0 unmonitored" `Quick
      test_pmu_mrs_reads_zero_without_sink;
    Alcotest.test_case "dump_state includes the counter file" `Quick
      test_dump_state_counters;
    Alcotest.test_case "dump_state defaults to the full trace ring" `Quick
      test_dump_state_full_trace_default;
    Alcotest.test_case "Chrome trace serializes and validates" `Quick
      test_chrome_serialization_validates;
    Alcotest.test_case "Chrome validator rejects malformed traces" `Quick
      test_chrome_validate_rejects_bad_traces;
    Alcotest.test_case "kernel log entries are cycle-stamped" `Quick
      test_log_events_cycle_stamped;
    Alcotest.test_case "syscall numbers have names" `Quick test_syscall_names;
    Alcotest.test_case "profiler attributes the CFI overhead" `Quick
      test_attribution_accounts_for_overhead;
    QCheck_alcotest.to_alcotest prop_hist_percentile_accuracy;
    QCheck_alcotest.to_alcotest prop_hist_merge_monoid;
    Alcotest.test_case "Hist: empty and clamping edge cases" `Quick
      test_hist_empty_edges;
    Alcotest.test_case "Span: FIFO pairing per (core, key)" `Quick
      test_span_pairing;
    Alcotest.test_case "Span: IPIs cross clock domains safely" `Quick
      test_span_ipi_cross_clock;
    Alcotest.test_case "Span histograms are deterministic" `Quick
      test_span_histograms_deterministic;
    Alcotest.test_case "Chrome trace carries X duration events" `Quick
      test_chrome_has_duration_events;
    Alcotest.test_case "validator errors carry positions" `Quick
      test_chrome_validate_positions;
  ]
