(* Fault injection: the injector's trigger/model/persistence semantics,
   one deterministic campaign trial per fault-model/outcome pairing, the
   reproducibility of whole campaigns, the zero-fault equivalence
   property, and the per-CPU quarantine demonstration. *)

open Aarch64
module C = Camouflage
module K = Kernel
module FI = Faultinj

let boot ?(config = C.Config.full) ?(cpus = 1) () =
  K.System.boot ~config ~seed:42L ~cpus ()

let exit_str = K.System.user_exit_to_string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let expect_exit label expected = function
  | K.System.Exited v -> Alcotest.(check int64) label expected v
  | other -> Alcotest.failf "%s: %s" label (exit_str other)

(* Injector unit semantics. *)

let test_gpr_flip_transient () =
  let sys = boot () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    [
      Asm.ins (Insn.Movz (Insn.R 5, 1234, 0));
      Asm.ins (Insn.Add_imm (Insn.R 6, Insn.R 6, 1));
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 5));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  let layout = K.System.map_user_program sys prog in
  let entry = Asm.symbol layout "main" in
  let mov_pc = Int64.add entry 8L in
  let inj =
    FI.Injector.create
      {
        FI.Injector.trigger = FI.Injector.In_pc_range { lo = mov_pc; hi = mov_pc };
        model = FI.Injector.Gpr_flip { reg = 5; bits = [ 3 ] };
        persistence = FI.Injector.Transient;
      }
  in
  FI.Injector.arm inj (K.System.cpu sys);
  expect_exit "bit 3 of x5 flipped before the mov"
    (Int64.logxor 1234L 8L)
    (K.System.run_user sys ~entry);
  Alcotest.(check bool) "fired" true (FI.Injector.fired inj);
  Alcotest.(check int) "one injection" 1 (FI.Injector.injections inj);
  (match FI.Injector.first_strike inj with
  | Some (cpu, pc) ->
      Alcotest.(check int) "struck cpu 0" 0 cpu;
      Alcotest.(check int64) "struck at the mov" mov_pc pc
  | None -> Alcotest.fail "no strike recorded");
  FI.Injector.disarm (K.System.cpu sys)

let store_load_program () =
  let data_lo = Int64.to_int (Int64.logand K.Layout.user_data_base 0xffffL) in
  let data_hi =
    Int64.to_int (Int64.shift_right_logical K.Layout.user_data_base 16) land 0xffff
  in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    [
      Asm.ins (Insn.Movz (Insn.R 9, 4, 0));
      Asm.ins (Insn.Movz (Insn.R 1, data_lo, 0));
      Asm.ins (Insn.Movk (Insn.R 1, data_hi, 16));
      Asm.ins (Insn.Str (Insn.R 9, Insn.Off (Insn.R 1, 0)));
      Asm.ins (Insn.Ldr (Insn.R 0, Insn.Off (Insn.R 1, 0)));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  prog

(* A transient memory flip is overwritten by a later store; a stuck-at
   flip survives the rewrite because the defect keeps forcing the bit. *)
let test_mem_flip_transient_overwritten () =
  let sys = boot () in
  let layout = K.System.map_user_program sys (store_load_program ()) in
  let inj =
    FI.Injector.create
      {
        FI.Injector.trigger = FI.Injector.Always;
        model = FI.Injector.Mem_flip { va = K.Layout.user_data_base; bits = [ 0 ] };
        persistence = FI.Injector.Transient;
      }
  in
  FI.Injector.arm inj (K.System.cpu sys);
  expect_exit "store heals the transient flip" 4L
    (K.System.run_user sys ~entry:(Asm.symbol layout "main"));
  FI.Injector.disarm (K.System.cpu sys)

let test_mem_flip_stuck_survives_store () =
  let sys = boot () in
  let layout = K.System.map_user_program sys (store_load_program ()) in
  let inj =
    FI.Injector.create
      {
        FI.Injector.trigger = FI.Injector.Always;
        model = FI.Injector.Mem_flip { va = K.Layout.user_data_base; bits = [ 0 ] };
        persistence = FI.Injector.Stuck;
      }
  in
  FI.Injector.arm inj (K.System.cpu sys);
  expect_exit "bit 0 stuck at 1 through the store" 5L
    (K.System.run_user sys ~entry:(Asm.symbol layout "main"));
  Alcotest.(check bool) "many forcings" true (FI.Injector.injections inj >= 1);
  FI.Injector.disarm (K.System.cpu sys)

let test_skip_insn () =
  let sys = boot () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 7, 0));
      Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 1));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  let layout = K.System.map_user_program sys prog in
  let entry = Asm.symbol layout "main" in
  let add_pc = Int64.add entry 4L in
  let inj =
    FI.Injector.create
      {
        FI.Injector.trigger = FI.Injector.In_pc_range { lo = add_pc; hi = add_pc };
        model = FI.Injector.Skip_insn;
        persistence = FI.Injector.Transient;
      }
  in
  FI.Injector.arm inj (K.System.cpu sys);
  expect_exit "the add was suppressed" 7L (K.System.run_user sys ~entry);
  FI.Injector.disarm (K.System.cpu sys)

(* Key-register faults: a transient flip is healed by the XOM setter on
   the next kernel entry; a stuck-at flip defeats it, and the next
   data-key authentication (the console file's signed f_ops) fails. *)
let data_key () = C.Keys.key_for C.Config.full.C.Config.mode C.Keys.Data

let write_args sys =
  let ubuf = K.Layout.user_data_base in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:ubuf ~bytes:4096 Mmu.rw;
  [ 1L; ubuf; 8L ]

let test_key_flip_transient_heals () =
  let sys = boot () in
  let args = write_args sys in
  let inj =
    FI.Injector.create
      {
        FI.Injector.trigger = FI.Injector.Always;
        model = FI.Injector.Key_flip { key = data_key (); high_half = false; bit = 7 };
        persistence = FI.Injector.Transient;
      }
  in
  FI.Injector.arm inj (K.System.cpu sys);
  (* the flip lands during this syscall's handler... *)
  (match K.System.syscall sys ~nr:K.Kbuild.sys_getpid ~args:[] with
  | K.System.Ok _ -> ()
  | o -> Alcotest.failf "getpid: %s" (match o with K.System.Killed m | K.System.Panicked m -> m | _ -> ""));
  Alcotest.(check bool) "struck" true (FI.Injector.fired inj);
  (* ...and the next entry's key install heals it: authenticated write path works *)
  (match K.System.syscall sys ~nr:K.Kbuild.sys_write ~args with
  | K.System.Ok _ -> ()
  | K.System.Killed m | K.System.Panicked m ->
      Alcotest.failf "write after transient key flip: %s" m);
  FI.Injector.disarm (K.System.cpu sys)

let test_key_flip_stuck_detected_by_pac () =
  let sys = boot () in
  let args = write_args sys in
  let inj =
    FI.Injector.create
      {
        FI.Injector.trigger = FI.Injector.Always;
        model = FI.Injector.Key_flip { key = data_key (); high_half = false; bit = 7 };
        persistence = FI.Injector.Stuck;
      }
  in
  FI.Injector.arm inj (K.System.cpu sys);
  (match K.System.syscall sys ~nr:K.Kbuild.sys_write ~args with
  | K.System.Killed m ->
      Alcotest.(check bool) "killed on the PAC path" true (contains ~sub:"PAC" m)
  | K.System.Ok v -> Alcotest.failf "write succeeded (%Ld) under a stuck key fault" v
  | K.System.Panicked m -> Alcotest.failf "panicked: %s" m);
  FI.Injector.disarm (K.System.cpu sys)

(* A PAC-field flip must stay inside the PAC field: the stripped
   (unauthenticated) pointer bits are untouched. *)
let test_pac_field_flip_stays_in_field () =
  let sys = boot () in
  let cpu = K.System.cpu sys in
  let sites = Attacks.Primitives.signed_pointer_sites sys in
  let _, va =
    match List.find_opt (fun (l, _) -> contains ~sub:"kernel_sp" l) sites with
    | Some s -> s
    | None -> Alcotest.fail "no kernel_sp site"
  in
  let before = K.Kmem.read64 cpu va in
  let inj =
    FI.Injector.create
      {
        FI.Injector.trigger = FI.Injector.Always;
        model = FI.Injector.Pac_field_flip { va; rank = 5 };
        persistence = FI.Injector.Transient;
      }
  in
  FI.Injector.arm inj cpu;
  ignore (K.System.syscall sys ~nr:K.Kbuild.sys_getpid ~args:[]);
  FI.Injector.disarm cpu;
  let after = K.Kmem.read64 cpu va in
  let diff = Int64.logxor before after in
  Alcotest.(check bool) "exactly one bit flipped" true
    (diff <> 0L && Int64.logand diff (Int64.sub diff 1L) = 0L);
  let cfg = Cpu.pointer_cfg cpu before in
  let in_pac =
    List.exists
      (fun (lo, width) ->
        List.exists
          (fun i -> Int64.logand diff (Int64.shift_left 1L (lo + i)) <> 0L)
          (List.init width Fun.id))
      (Vaddr.pac_field cfg)
  in
  Alcotest.(check bool) "the flipped bit lies in the PAC field" true in_pac

(* Deterministic campaign trials: one per fault-model / outcome class. *)

let site_of_task label_suffix sys (spawned : K.System.task list) =
  let task = List.hd spawned in
  let label = Printf.sprintf "task%d.%s" task.K.System.pid label_suffix in
  match
    List.find_opt (fun (l, _) -> l = label) (Attacks.Primitives.signed_pointer_sites sys)
  with
  | Some (_, va) -> va
  | None -> Alcotest.failf "site %s not found" label

let test_trial_pac_field_flip_detected_by_pac () =
  let trial =
    FI.Campaign.run_trial ~seed:42L
      ~spec:(fun sys _layout spawned ->
        {
          FI.Injector.trigger = FI.Injector.Always;
          model =
            FI.Injector.Pac_field_flip
              { va = site_of_task "kernel_sp" sys spawned; rank = 3 };
          persistence = FI.Injector.Transient;
        })
      ()
  in
  Alcotest.(check string) "detected by PAC" "detected-by-pac"
    (FI.Campaign.outcome_name trial.FI.Campaign.outcome);
  Alcotest.(check bool) "fired" true trial.FI.Campaign.fired

let test_trial_saved_pc_flip_detected_by_mmu () =
  let trial =
    FI.Campaign.run_trial ~seed:42L
      ~spec:(fun _sys _layout spawned ->
        let task = List.hd spawned in
        {
          FI.Injector.trigger = FI.Injector.Always;
          model =
            FI.Injector.Mem_flip
              {
                va =
                  Int64.add task.K.System.va
                    (Int64.of_int K.Kobject.Task.off_saved_pc);
                bits = [ 40 ];
              };
          persistence = FI.Injector.Transient;
        })
      ()
  in
  Alcotest.(check string) "wild resume PC caught by the MMU" "detected-by-mmu"
    (FI.Campaign.outcome_name trial.FI.Campaign.outcome)

let test_trial_threshold_one_panics () =
  let config = { C.Config.full with C.Config.bruteforce_threshold = 1 } in
  let trial =
    FI.Campaign.run_trial ~config ~seed:42L
      ~spec:(fun sys _layout spawned ->
        {
          FI.Injector.trigger = FI.Injector.Always;
          model =
            FI.Injector.Pac_field_flip
              { va = site_of_task "kernel_sp" sys spawned; rank = 3 };
          persistence = FI.Injector.Transient;
        })
      ()
  in
  Alcotest.(check string) "threshold 1: first PAC failure halts" "panicked"
    (FI.Campaign.outcome_name trial.FI.Campaign.outcome)

(* Rewrite the workload's round-counter increment into a BRK: the task
   traps, the kernel kills it — a policed death outside the PAC/MMU
   paths. *)
let test_trial_brk_rewrite_task_killed () =
  let trial =
    FI.Campaign.run_trial ~seed:42L
      ~spec:(fun _sys layout _spawned ->
        let add_pc, add_insn =
          match
            Array.to_list layout.Asm.code
            |> List.find_opt (fun (_, i) ->
                   match i with Insn.Add_imm (Insn.R 21, Insn.R 21, 1) -> true | _ -> false)
          with
          | Some ai -> ai
          | None -> Alcotest.fail "workload has no r21 increment"
        in
        let cur = Encode.encode ~pc:add_pc add_insn in
        let brk = Encode.encode ~pc:add_pc (Insn.Brk 1) in
        let diff = Int32.logxor cur brk in
        let bits =
          List.filter
            (fun b -> Int32.logand diff (Int32.shift_left 1l b) <> 0l)
            (List.init 32 Fun.id)
        in
        let word_aligned = Int64.logand add_pc (Int64.lognot 7L) in
        let bits =
          if word_aligned = add_pc then bits else List.map (fun b -> b + 32) bits
        in
        {
          FI.Injector.trigger = FI.Injector.Always;
          model = FI.Injector.Mem_flip { va = word_aligned; bits };
          persistence = FI.Injector.Transient;
        })
      ()
  in
  Alcotest.(check string) "BRK trap kills the task" "task-killed"
    (FI.Campaign.outcome_name trial.FI.Campaign.outcome)

let test_trial_skip_increment_silent_corruption () =
  let trial =
    FI.Campaign.run_trial ~seed:42L
      ~spec:(fun _sys layout _spawned ->
        let add_pc =
          match
            Array.to_list layout.Asm.code
            |> List.find_opt (fun (_, i) ->
                   match i with Insn.Add_imm (Insn.R 21, Insn.R 21, 1) -> true | _ -> false)
          with
          | Some (pc, _) -> pc
          | None -> Alcotest.fail "workload has no r21 increment"
        in
        {
          FI.Injector.trigger = FI.Injector.In_pc_range { lo = add_pc; hi = add_pc };
          model = FI.Injector.Skip_insn;
          persistence = FI.Injector.Transient;
        })
      ()
  in
  Alcotest.(check string) "one lost increment goes undetected" "silent-corruption"
    (FI.Campaign.outcome_name trial.FI.Campaign.outcome)

let test_trial_unused_word_benign () =
  let trial =
    FI.Campaign.run_trial ~seed:42L
      ~spec:(fun _sys _layout _spawned ->
        {
          FI.Injector.trigger = FI.Injector.Always;
          model =
            FI.Injector.Mem_flip
              { va = Int64.add K.Layout.user_data_base 0x800L; bits = [ 13 ] };
          persistence = FI.Injector.Transient;
        })
      ()
  in
  Alcotest.(check string) "flip in unused memory is benign" "benign"
    (FI.Campaign.outcome_name trial.FI.Campaign.outcome);
  Alcotest.(check bool) "still fired" true trial.FI.Campaign.fired

(* Campaign reproducibility: same seed, byte-identical JSON. *)
let test_campaign_reproducible () =
  let r1 = FI.Campaign.run ~seed:5L ~trials:6 () in
  let r2 = FI.Campaign.run ~seed:5L ~trials:6 () in
  Alcotest.(check string) "same seed, same bytes"
    (FI.Campaign.report_to_json r1)
    (FI.Campaign.report_to_json r2);
  let r3 = FI.Campaign.run ~seed:6L ~trials:6 () in
  Alcotest.(check bool) "different seed, different trials" true
    (FI.Campaign.report_to_json r1 <> FI.Campaign.report_to_json r3)

(* Zero-fault equivalence: an armed injector whose trigger never fires
   leaves the run cycle-for-cycle identical to an uninstrumented one. *)
let fingerprint ~armed seed =
  let sys = K.System.boot ~config:C.Config.full ~seed ~cpus:2 () in
  let layout = K.System.map_user_program sys (FI.Campaign.workload_program ~rounds:4) in
  let entry = Asm.symbol layout "main" in
  let tasks = List.init 2 (fun _ -> K.System.spawn_user_task sys ~entry) in
  if armed then begin
    let inj =
      FI.Injector.create
        {
          FI.Injector.trigger = FI.Injector.After_steps max_int;
          model = FI.Injector.Skip_insn;
          persistence = FI.Injector.Transient;
        }
    in
    FI.Injector.arm_all inj (K.System.machine sys)
  end;
  let stats = K.System.run_smp ~quantum:300 sys ~tasks in
  ( stats.K.System.makespan,
    Array.to_list stats.K.System.per_cpu_cycles,
    List.map (fun (c, p, e) -> (c, p, exit_str e)) stats.K.System.smp_exits,
    K.System.console_output sys )

let prop_zero_fault_campaign_is_identity =
  QCheck2.Test.make ~name:"armed but never-firing injector changes nothing" ~count:6
    QCheck2.Gen.(int_range 1 1000)
    (fun s ->
      let seed = Int64.of_int s in
      fingerprint ~armed:false seed = fingerprint ~armed:true seed)

(* Graceful degradation: quarantine keeps the machine alive where the
   baseline crosses the brute-force threshold and halts. *)
let test_quarantine_demo () =
  let d = FI.Campaign.quarantine_demo ~seed:42L () in
  Alcotest.(check bool) "baseline panics" true d.FI.Campaign.baseline_panicked;
  Alcotest.(check bool) "quarantined system survives" false
    d.FI.Campaign.quarantine_panicked;
  Alcotest.(check (list int)) "core 1 offlined" [ 1 ] d.FI.Campaign.quarantine_offlined;
  Alcotest.(check int) "six tasks complete on the healthy core" 6
    d.FI.Campaign.quarantine_completed;
  Alcotest.(check int) "two tasks died before the offlining" 2
    d.FI.Campaign.quarantine_killed;
  Alcotest.(check bool) "quarantine saves work" true
    (d.FI.Campaign.quarantine_completed > d.FI.Campaign.baseline_completed)

let suite =
  [
    Alcotest.test_case "injector: transient GPR flip at a PC" `Quick
      test_gpr_flip_transient;
    Alcotest.test_case "injector: transient memory flip overwritten" `Quick
      test_mem_flip_transient_overwritten;
    Alcotest.test_case "injector: stuck memory flip survives stores" `Quick
      test_mem_flip_stuck_survives_store;
    Alcotest.test_case "injector: instruction skip" `Quick test_skip_insn;
    Alcotest.test_case "injector: transient key flip heals at next entry" `Quick
      test_key_flip_transient_heals;
    Alcotest.test_case "injector: stuck key flip caught by PAC" `Quick
      test_key_flip_stuck_detected_by_pac;
    Alcotest.test_case "injector: PAC-field flip stays in the PAC field" `Quick
      test_pac_field_flip_stays_in_field;
    Alcotest.test_case "trial: PAC-field flip -> detected-by-pac" `Quick
      test_trial_pac_field_flip_detected_by_pac;
    Alcotest.test_case "trial: saved-PC flip -> detected-by-mmu" `Quick
      test_trial_saved_pc_flip_detected_by_mmu;
    Alcotest.test_case "trial: threshold 1 -> panicked" `Quick
      test_trial_threshold_one_panics;
    Alcotest.test_case "trial: BRK rewrite -> task-killed" `Quick
      test_trial_brk_rewrite_task_killed;
    Alcotest.test_case "trial: skipped increment -> silent-corruption" `Quick
      test_trial_skip_increment_silent_corruption;
    Alcotest.test_case "trial: unused-word flip -> benign" `Quick
      test_trial_unused_word_benign;
    Alcotest.test_case "campaign: same seed is byte-identical" `Quick
      test_campaign_reproducible;
    QCheck_alcotest.to_alcotest prop_zero_fault_campaign_is_identity;
    Alcotest.test_case "quarantine demo: baseline panics, quarantine survives" `Quick
      test_quarantine_demo;
  ]
