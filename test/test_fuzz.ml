(* Syscall-sequence fuzzing.

   Random sequences of benign syscalls drive two strong properties:

   - transparency: the fully protected kernel returns exactly the same
     values as the unprotected kernel for every benign sequence (the
     protection must never change semantics, R3/R5);
   - determinism: the same seed yields the same cycle count;
   - resilience: no benign sequence can panic the kernel, and the
     system survives garbage arguments with error returns or process
     kills, never host exceptions. *)

module C = Camouflage
module K = Kernel

type op =
  | Getpid
  | Getuid
  | Open
  | Close of int
  | Read of int * int
  | Write of int * int
  | Stat
  | Fstat of int
  | Notifier_register of int * int
  | Notifier_call of int
  | Pipe_write of int
  | Pipe_read of int
  | Socketpair
  | Poll of int
  | Timer_set of int * int
  | Run_timers
  | Run_static_work

let gen_op =
  QCheck2.Gen.(
    let fd = int_range 0 17 in
    oneof
      [
        return Getpid;
        return Getuid;
        return Open;
        map (fun v -> Close v) fd;
        map2 (fun a b -> Read (a, b)) fd (int_range 0 256);
        map2 (fun a b -> Write (a, b)) fd (int_range 0 256);
        return Stat;
        map (fun v -> Fstat v) fd;
        map2 (fun a b -> Notifier_register (a, b)) (int_range 0 9) (int_range 0 5);
        map (fun v -> Notifier_call v) (int_range 0 9);
        map (fun v -> Pipe_write v) (int_range 0 200);
        map (fun v -> Pipe_read v) (int_range 0 200);
        return Socketpair;
        map (fun v -> Poll v) (int_range 0 4);
        map2 (fun a b -> Timer_set (a, b)) (int_range 0 9) (int_range 0 3);
        return Run_timers;
        return Run_static_work;
      ])

let gen_sequence = QCheck2.Gen.(list_size (int_range 1 40) gen_op)

(* Execute one op; the observable is (tag, return value or outcome). *)
let execute sys op =
  let buf = K.Layout.user_data_base in
  let sc nr args =
    match K.System.syscall sys ~nr ~args with
    | K.System.Ok v -> ("ok", v)
    | K.System.Killed m -> ("killed:" ^ m, 0L)
    | K.System.Panicked m -> ("panicked:" ^ m, 0L)
  in
  match op with
  | Getpid -> sc K.Kbuild.sys_getpid []
  | Getuid -> sc K.Kbuild.sys_getuid []
  | Open -> sc K.Kbuild.sys_open [ 1L ]
  | Close fd -> sc K.Kbuild.sys_close [ Int64.of_int fd ]
  | Read (fd, len) -> sc K.Kbuild.sys_read [ Int64.of_int fd; buf; Int64.of_int len ]
  | Write (fd, len) -> sc K.Kbuild.sys_write [ Int64.of_int fd; buf; Int64.of_int len ]
  | Stat -> sc K.Kbuild.sys_stat [ 3L; buf ]
  | Fstat fd -> sc K.Kbuild.sys_fstat [ Int64.of_int fd; buf ]
  | Notifier_register (slot, id) ->
      sc K.Kbuild.sys_notifier_register [ Int64.of_int slot; Int64.of_int id ]
  | Notifier_call slot -> sc K.Kbuild.sys_notifier_call [ Int64.of_int slot ]
  | Pipe_write len -> sc K.Kbuild.sys_pipe_write [ buf; Int64.of_int len ]
  | Pipe_read len -> sc K.Kbuild.sys_pipe_read [ buf; Int64.of_int len ]
  | Socketpair -> sc K.Kbuild.sys_socketpair []
  | Poll n ->
      (* descriptor array: fds 3..3+n-1 *)
      List.iteri
        (fun idx fd ->
          K.Kmem.write64 (K.System.cpu sys)
            (Int64.add (Int64.add buf 2048L) (Int64.of_int (8 * idx)))
            (Int64.of_int fd))
        (List.init n (fun i -> 3 + i));
      sc K.Kbuild.sys_poll [ Int64.add buf 2048L; Int64.of_int n ]
  | Timer_set (slot, id) ->
      sc K.Kbuild.sys_timer_set [ Int64.of_int slot; 0L; Int64.of_int id ]
  | Run_timers -> (
      match K.System.run_timers sys with
      | K.System.Ok v -> ("ok", v)
      | K.System.Killed m -> ("killed:" ^ m, 0L)
      | K.System.Panicked m -> ("panicked:" ^ m, 0L))
  | Run_static_work -> (
      match K.System.run_work sys ~work_va:(K.System.kernel_symbol sys "static_work") with
      | K.System.Ok v -> ("ok", v)
      | K.System.Killed m -> ("killed:" ^ m, 0L)
      | K.System.Panicked m -> ("panicked:" ^ m, 0L))

let run_sequence config seq =
  let sys = K.System.boot ~config ~seed:99L () in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base ~bytes:0x4000
    Aarch64.Mmu.rw;
  let observations = List.map (execute sys) seq in
  (observations, K.System.panicked sys, Aarch64.Cpu.cycles (K.System.cpu sys))

let prop_transparency =
  QCheck2.Test.make ~name:"full protection is semantically transparent" ~count:40
    gen_sequence (fun seq ->
      let obs_full, panicked_full, _ = run_sequence C.Config.full seq in
      let obs_none, panicked_none, _ = run_sequence C.Config.none seq in
      obs_full = obs_none && (not panicked_full) && not panicked_none)

let prop_determinism =
  QCheck2.Test.make ~name:"same sequence, same cycle count" ~count:20 gen_sequence
    (fun seq ->
      let _, _, c1 = run_sequence C.Config.full seq in
      let _, _, c2 = run_sequence C.Config.full seq in
      c1 = c2)

let prop_no_benign_panic =
  QCheck2.Test.make ~name:"benign sequences never panic any build" ~count:30 gen_sequence
    (fun seq ->
      List.for_all
        (fun config ->
          let _, panicked, _ = run_sequence config seq in
          not panicked)
        [ C.Config.full; C.Config.backward_only; C.Config.compat; C.Config.none ])

(* ---------- three-tier differential conformance fuzzer ----------

   Random bare-metal programs — arithmetic, bounded loads/stores,
   forward conditional skips, PAC/AUT round trips, stack push/pop pairs
   and (optionally) a self-patching store — wrapped in a loop hot
   enough to cross the trace compiler's threshold, executed under all
   three tiers. The observable is the stop reason plus the whole-machine
   state fingerprint ({!Snapshot.Fingerprint.of_machine}: registers,
   flags, cycle and retirement totals, system registers, every non-zero
   memory frame, both translation stages), so any divergence the trace
   compiler could introduce — wrong retirement count, stale code after
   a self-patch, a mis-costed instruction — fails the property.

   Register discipline keeps random programs well-defined: R0-R5 are
   arithmetic scratch, R8/R9 carry the self-patch word and victim
   address, R10 points at the data region, R11 is the loop counter,
   R12/R13 are PAC scratch. *)

open Aarch64

type fitem =
  | Arith of Insn.t
  | Store_load of int * int * int  (* rs, rd, 8-byte slot in the data page *)
  | Push_pop of int * int * int * int
  | Skip_z of int * Insn.t list  (* cbz R(n) over the protected run *)
  | Skip_nz of int * Insn.t list
  | Skip_cond of Insn.cond * Insn.t list
  | Pac_pair of Sysreg.pauth_key  (* sign + authenticate, result folded in *)
  | Pacga_mix
  | Patch  (* store R8 over the victim pair (selfmod programs only) *)

type fprog = {
  seeds : int list;  (* initial R0..R5 *)
  iters : int;  (* loop trips: past the hot threshold of 16 *)
  body : fitem list;
  selfmod : bool;
}

let gen_arith =
  QCheck2.Gen.(
    let reg = map (fun n -> Insn.R n) (int_range 0 5) in
    let imm12 = int_range 0 4095 in
    oneof
      [
        map2 (fun r v -> Insn.Movz (r, v, 0)) reg (int_range 0 0xffff);
        map3 (fun d n v -> Insn.Add_imm (d, n, v)) reg reg imm12;
        map3 (fun d n v -> Insn.Sub_imm (d, n, v)) reg reg imm12;
        map3 (fun d n m -> Insn.Add_reg (d, n, m)) reg reg reg;
        map3 (fun d n m -> Insn.Sub_reg (d, n, m)) reg reg reg;
        map3 (fun d n m -> Insn.And_reg (d, n, m)) reg reg reg;
        map3 (fun d n m -> Insn.Orr_reg (d, n, m)) reg reg reg;
        map3 (fun d n m -> Insn.Eor_reg (d, n, m)) reg reg reg;
        map3 (fun d n m -> Insn.Subs_reg (d, n, m)) reg reg reg;
        map3 (fun d n v -> Insn.Subs_imm (d, n, v)) reg reg imm12;
        map3 (fun d n s -> Insn.Lsl_imm (d, n, s)) reg reg (int_range 0 15);
        map3 (fun d n s -> Insn.Lsr_imm (d, n, s)) reg reg (int_range 0 15);
        map2 (fun d n -> Insn.Mov (d, n)) reg reg;
        return Insn.Nop;
      ])

let gen_fitem =
  QCheck2.Gen.(
    let r5 = int_range 0 5 in
    let protected_run = list_size (int_range 1 3) gen_arith in
    frequency
      [
        (5, map (fun i -> Arith i) gen_arith);
        (2, map3 (fun s d k -> Store_load (s, d, k)) r5 r5 (int_range 0 7));
        ( 1,
          map3 (fun a b c -> (a, b, c)) r5 r5 r5 >>= fun (a, b, c) ->
          map (fun d -> Push_pop (a, b, c, d)) r5 );
        (1, map2 (fun r is -> Skip_z (r, is)) r5 protected_run);
        (1, map2 (fun r is -> Skip_nz (r, is)) r5 protected_run);
        ( 1,
          map2
            (fun c is -> Skip_cond (c, is))
            (oneofl Insn.[ Eq; Ne; Lt; Ge; Gt; Le ])
            protected_run );
        (1, map (fun k -> Pac_pair k) (oneofl Sysreg.[ IA; IB; DA; DB ]));
        (1, return Pacga_mix);
      ])

let gen_fprog =
  QCheck2.Gen.(
    list_size (return 6) (int_range 0 0xffff) >>= fun seeds ->
    int_range 20 60 >>= fun iters ->
    list_size (int_range 2 12) gen_fitem >>= fun body ->
    bool >>= fun selfmod ->
    (if selfmod then
       int_range 0 (List.length body) >>= fun at ->
       let rec ins i = function
         | rest when i = 0 -> Patch :: rest
         | [] -> [ Patch ]
         | x :: rest -> x :: ins (i - 1) rest
       in
       return (ins at body)
     else return body)
    >>= fun body -> return { seeds; iters; body; selfmod })

let fitem_to_string = function
  | Arith i -> Insn.to_string i
  | Store_load (s, d, k) -> Printf.sprintf "st/ld r%d->r%d @%d" s d k
  | Push_pop (a, b, c, d) -> Printf.sprintf "push/pop %d,%d->%d,%d" a b c d
  | Skip_z (r, is) ->
      Printf.sprintf "skip-z r%d [%s]" r
        (String.concat "; " (List.map Insn.to_string is))
  | Skip_nz (r, is) ->
      Printf.sprintf "skip-nz r%d [%s]" r
        (String.concat "; " (List.map Insn.to_string is))
  | Skip_cond (_, is) ->
      Printf.sprintf "skip-cond [%s]"
        (String.concat "; " (List.map Insn.to_string is))
  | Pac_pair k -> "pac/aut " ^ Sysreg.name (fst (Sysreg.key_halves k))
  | Pacga_mix -> "pacga"
  | Patch -> "self-patch"

let print_fprog p =
  Printf.sprintf "iters=%d selfmod=%b seeds=[%s] body=[%s]" p.iters p.selfmod
    (String.concat "," (List.map string_of_int p.seeds))
    (String.concat " | " (List.map fitem_to_string p.body))

(* Emit one body item; returns the Asm items and the instruction count
   (labels are free), so the victim pair can be 8-aligned. *)
let emit_fitem fresh = function
  | Arith i -> ([ Asm.ins i ], 1)
  | Store_load (s, d, k) ->
      ( [
          Asm.ins (Insn.Str (Insn.R s, Insn.Off (Insn.R 10, 8 * k)));
          Asm.ins (Insn.Ldr (Insn.R d, Insn.Off (Insn.R 10, 8 * k)));
        ],
        2 )
  | Push_pop (a, b, c, d) ->
      ( [
          Asm.ins (Insn.Stp (Insn.R a, Insn.R b, Insn.Pre (Insn.SP, -16)));
          Asm.ins (Insn.Ldp (Insn.R c, Insn.R d, Insn.Post (Insn.SP, 16)));
        ],
        2 )
  | Skip_z (r, is) ->
      let l = fresh () in
      ( (Asm.cbz_to (Insn.R r) l :: List.map Asm.ins is) @ [ Asm.label l ],
        1 + List.length is )
  | Skip_nz (r, is) ->
      let l = fresh () in
      ( (Asm.cbnz_to (Insn.R r) l :: List.map Asm.ins is) @ [ Asm.label l ],
        1 + List.length is )
  | Skip_cond (c, is) ->
      let l = fresh () in
      ( (Asm.bcond_to c l :: List.map Asm.ins is) @ [ Asm.label l ],
        1 + List.length is )
  | Pac_pair k ->
      (* sign the data pointer under the loop counter, authenticate it
         back (guaranteed to succeed) and fold the result into R1 *)
      ( [
          Asm.ins (Insn.Mov (Insn.R 12, Insn.R 10));
          Asm.ins (Insn.Mov (Insn.R 13, Insn.R 11));
          Asm.ins (Insn.Pac (k, Insn.R 12, Insn.R 13));
          Asm.ins (Insn.Aut (k, Insn.R 12, Insn.R 13));
          Asm.ins (Insn.Add_reg (Insn.R 1, Insn.R 1, Insn.R 12));
        ],
        5 )
  | Pacga_mix ->
      ( [
          Asm.ins (Insn.Pacga (Insn.R 13, Insn.R 0, Insn.R 1));
          Asm.ins (Insn.Eor_reg (Insn.R 2, Insn.R 2, Insn.R 13));
        ],
        2 )
  | Patch -> ([ Asm.ins (Insn.Str (Insn.R 8, Insn.Off (Insn.R 9, 0))) ], 1)

let emit_fprog p =
  let fresh =
    let c = ref 0 in
    fun () ->
      incr c;
      Printf.sprintf "skip%d" !c
  in
  let body_items, body_insns =
    List.fold_left
      (fun (items, n) it ->
        let is, k = emit_fitem fresh it in
        (items @ is, n + k))
      ([], 0) p.body
  in
  (* The self-patch replacement word: both halves are PC-independent
     encodings, so they can be computed before assembly. *)
  let enc insn =
    Int64.logand (Int64.of_int32 (Encode.encode ~pc:0L insn)) 0xffffffffL
  in
  let word =
    Int64.logor
      (enc (Insn.Movz (Insn.R 4, 9, 0)))
      (Int64.shift_left (enc Insn.Nop) 32)
  in
  let mov_abs r v =
    let chunk i =
      Int64.to_int (Int64.logand (Int64.shift_right_logical v (16 * i)) 0xffffL)
    in
    Asm.ins (Insn.Movz (r, chunk 0, 0))
    :: List.map (fun i -> Asm.ins (Insn.Movk (r, chunk i, 16 * i))) [ 1; 2; 3 ]
  in
  let prologue =
    mov_abs (Insn.R 10) Bare.data_base
    @ (if p.selfmod then Asm.mov_addr (Insn.R 9) "victim" @ mov_abs (Insn.R 8) word
       else [])
    @ List.mapi (fun i v -> Asm.ins (Insn.Movz (Insn.R i, v, 0))) p.seeds
    @ [ Asm.ins (Insn.Movz (Insn.R 11, p.iters, 0)) ]
  in
  let prologue_insns = 4 + (if p.selfmod then 8 else 0) + 6 + 1 in
  (* keep the 8-byte victim pair aligned for the single patching store *)
  let pad =
    if (prologue_insns + body_insns) mod 2 = 1 then [ Asm.ins Insn.Nop ] else []
  in
  let victim =
    if p.selfmod then
      [
        Asm.label "victim";
        Asm.ins (Insn.Movz (Insn.R 4, 7, 0));
        Asm.ins Insn.Nop;
      ]
    else []
  in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"fuzz"
    (prologue
    @ [ Asm.label "loop" ]
    @ body_items @ pad @ victim
    @ [
        Asm.ins (Insn.Sub_imm (Insn.R 11, Insn.R 11, 1));
        Asm.cbnz_to (Insn.R 11) "loop";
        Asm.ins Insn.Ret;
      ]);
  prog

let run_fprog ~tier p =
  let m = Bare.smp ~seed:11L ~tier () in
  let cpu = Machine.boot_core m in
  if p.selfmod then
    Bare.map_region cpu ~base:Bare.code_base ~pages:16 Mmu.rwx;
  let layout = Bare.load cpu (emit_fprog p) in
  let stop = Bare.call ~max_insns:200_000 cpu layout "fuzz" in
  (Cpu.stop_to_string stop, Snapshot.Fingerprint.of_machine m)

let prop_three_tier =
  QCheck2.Test.make
    ~name:"random programs: interp = icache = traces (stop + fingerprint)"
    ~count:200 ~print:print_fprog gen_fprog (fun p ->
      let stop_i, fp_i = run_fprog ~tier:Cpu.Interp p in
      let stop_c, fp_c = run_fprog ~tier:Cpu.Icache p in
      let stop_t, fp_t = run_fprog ~tier:Cpu.Traces p in
      stop_i = stop_c && stop_c = stop_t && fp_i = fp_c && fp_c = fp_t)

(* Telemetry is pure observation in every tier: booting the kernel with
   counters on and running a random syscall sequence must produce the
   identical counter file whichever tier executes it. *)
let run_sequence_tier config ~tier seq =
  let sys = K.System.boot ~config ~seed:99L ~telemetry:true ~tier () in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base
    ~bytes:0x4000 Aarch64.Mmu.rw;
  let observations = List.map (execute sys) seq in
  let counters =
    match K.System.telemetry sys with
    | Some hub -> Telemetry.Counters.to_json (Telemetry.Hub.counters hub)
    | None -> Alcotest.fail "telemetry boot carries no hub"
  in
  (observations, counters, Aarch64.Cpu.cycles (K.System.cpu sys))

let prop_tier_telemetry =
  QCheck2.Test.make
    ~name:"syscall sequences: telemetry counters identical across tiers"
    ~count:15 gen_sequence (fun seq ->
      let base = run_sequence_tier C.Config.full ~tier:Cpu.Interp seq in
      List.for_all
        (fun tier -> run_sequence_tier C.Config.full ~tier seq = base)
        [ Cpu.Icache; Cpu.Traces ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_transparency;
    QCheck_alcotest.to_alcotest prop_determinism;
    QCheck_alcotest.to_alcotest prop_no_benign_panic;
    QCheck_alcotest.to_alcotest prop_three_tier;
    QCheck_alcotest.to_alcotest prop_tier_telemetry;
  ]
