(* The PAC-state static analyzer:
   - instrumented output is diagnostic-free under every (mode x scheme);
   - each oracle class is detected;
   - the built kernel image lints clean under every shipped config;
   - the loader gate rejects on error diagnostics and surfaces warnings;
   - Core.Verifier's wrapper is observationally the old linear scan. *)

open Aarch64
module C = Camouflage
module K = Kernel
module L = Paclint.Lint
module D = Paclint.Diag

let x n = Insn.R n
let base = 0xffff000000300000L

let strict_policy =
  {
    L.protect_return = true;
    protect_pointers = true;
    sp_modifier = true;
    allowed_key_writer = (fun _ -> false);
  }

(* ----- instrumented functions lint clean, all modes x schemes ----- *)

let schemes =
  [
    ("no-cfi", C.Modifier.No_cfi);
    ("sp-only", C.Modifier.Sp_only);
    ("parts", C.Modifier.Parts 0x7357L);
    ("camouflage", C.Modifier.Camouflage);
    ("chained", C.Modifier.Chained);
  ]

let modes = [ ("v8.3", C.Keys.Armv83); ("compat", C.Keys.Compat) ]

let body =
  [
    Asm.ins (Insn.Movz (x 0, 40, 0));
    Asm.ins (Insn.Add_imm (x 0, x 0, 2));
    Asm.ins (Insn.Sub_imm (Insn.SP, Insn.SP, 16));
    Asm.ins (Insn.Str (x 0, Insn.Off (Insn.SP, 0)));
    Asm.ins (Insn.Ldr (x 1, Insn.Off (Insn.SP, 0)));
    Asm.ins (Insn.Add_imm (Insn.SP, Insn.SP, 16));
  ]

let test_wrapped_clean () =
  List.iter
    (fun (mname, mode) ->
      List.iter
        (fun (sname, scheme) ->
          let config = { C.Config.full with scheme; mode } in
          match C.Instrument.wrap config ~name:"f" body with
          | exception _ -> () (* unsupported combination (e.g. compat+chained) *)
          | f ->
              let prog = Asm.create () in
              Asm.add_function prog ~name:"f" f.C.Instrument.items;
              let layout = Asm.assemble prog ~base in
              let diags = L.lint_layout ~policy:(C.Verifier.policy config) layout in
              Alcotest.(check int)
                (Printf.sprintf "%s/%s wrapped function is clean" mname sname)
                0 (List.length diags))
        schemes)
    modes

(* ----- one assertion per diagnostic class ----- *)

let listing insns = List.mapi (fun i insn -> (Int64.add base (Int64.of_int (4 * i)), insn)) insns

let kinds insns =
  List.map (fun d -> D.kind_name d.D.kind) (L.lint_insns ~policy:strict_policy (listing insns))

let has insns k = List.mem k (kinds insns)

let test_oracle_classes () =
  Alcotest.(check bool) "signing oracle" true
    (has
       [ Insn.Ldr (x 0, Insn.Off (Insn.SP, 0)); Insn.Pac (Sysreg.IB, x 0, x 9); Insn.Ret ]
       "signing-oracle");
  Alcotest.(check bool) "unauthenticated branch" true
    (has [ Insn.Ldr (x 8, Insn.Off (x 0, 0)); Insn.Br (x 8) ] "unauthenticated-branch");
  Alcotest.(check bool) "stripped branch" true
    (has
       [ Insn.Ldr (x 8, Insn.Off (x 0, 0)); Insn.Xpac (x 8); Insn.Blr (x 8); Insn.Ret ]
       "unauthenticated-branch");
  Alcotest.(check bool) "toctou spill" true
    (has
       [ Insn.Aut (Sysreg.DA, x 0, x 9); Insn.Str (x 0, Insn.Off (Insn.SP, 8)); Insn.Ret ]
       "toctou-spill");
  Alcotest.(check bool) "unprotected return" true
    (has
       [
         Insn.Stp (Insn.fp, Insn.lr, Insn.Pre (Insn.SP, -16));
         Insn.Ldp (Insn.fp, Insn.lr, Insn.Post (Insn.SP, 16));
         Insn.Ret;
       ]
       "unprotected-return");
  Alcotest.(check bool) "modifier mismatch" true
    (has
       [
         Insn.Mov (x 9, Insn.SP);
         Insn.Pac (Sysreg.IB, Insn.lr, x 9);
         Insn.Sub_imm (Insn.SP, Insn.SP, 32);
         Insn.Mov (x 9, Insn.SP);
         Insn.Aut (Sysreg.IB, Insn.lr, x 9);
         Insn.Ret;
       ]
       "modifier-sp-mismatch");
  Alcotest.(check bool) "key read" true
    (has [ Insn.Mrs (x 0, Sysreg.APIBKeyHi_EL1); Insn.Ret ] "key-register-read");
  Alcotest.(check bool) "key write" true
    (has [ Insn.Msr (Sysreg.APIBKeyLo_EL1, x 0); Insn.Ret ] "key-register-write");
  Alcotest.(check bool) "sctlr write" true
    (has [ Insn.Msr (Sysreg.SCTLR_EL1, x 0); Insn.Ret ] "sctlr-write");
  let clobber =
    L.check_body [ Asm.ins (Insn.Movz (x 15, 1, 0)); Asm.ins Insn.Ret ]
  in
  Alcotest.(check bool) "reserved clobber" true
    (List.exists (fun d -> D.kind_name d.D.kind = "reserved-clobber") clobber);
  (* ...but the canonical mov-into-x16/x17 feeding a 1716 form is not a
     clobber: it is the architectural operand interface. *)
  let idiom =
    L.check_body
      [
        Asm.ins (Insn.Mov (Insn.ip1, x 0));
        Asm.ins (Insn.Mov (Insn.ip0, x 1));
        Asm.ins (Insn.Aut1716 Sysreg.IB);
        Asm.ins (Insn.Mov (x 0, Insn.ip1));
      ]
  in
  Alcotest.(check int) "1716 idiom exempt" 0 (List.length idiom)

(* ----- no false positives on clean code shapes ----- *)

let test_clean_shapes () =
  (* a leaf returning through an untouched LR is fine everywhere *)
  Alcotest.(check int) "bare ret" 0 (List.length (kinds [ Insn.Ret ]));
  (* authenticate-then-branch is the sanctioned forward-edge pattern: no
     warnings or errors — but the unresolved BR target is surfaced as an
     info diagnostic, because the CFG is truncated there *)
  let aut_br =
    L.lint_insns ~policy:strict_policy
      (listing
         [
           Insn.Ldr (x 8, Insn.Off (x 0, 0));
           Insn.Aut (Sysreg.IA, x 8, x 9);
           Insn.Br (x 8);
         ])
  in
  Alcotest.(check int) "aut then br: no warnings or errors" 0
    (List.length (List.filter (fun d -> D.severity d <> D.Info) aut_br));
  Alcotest.(check (list string)) "aut then br: BR visibility info" [ "unresolved-indirect" ]
    (List.map (fun d -> D.kind_name d.D.kind) aut_br);
  (* balanced sign/auth at the same SP depth *)
  Alcotest.(check int) "balanced modifier" 0
    (List.length
       (kinds
          [
            Insn.Mov (x 9, Insn.SP);
            Insn.Pac (Sysreg.IB, Insn.lr, x 9);
            Insn.Sub_imm (Insn.SP, Insn.SP, 32);
            Insn.Add_imm (Insn.SP, Insn.SP, 32);
            Insn.Mov (x 9, Insn.SP);
            Insn.Aut (Sysreg.IB, Insn.lr, x 9);
            Insn.Ret;
          ]))

(* ----- the built kernel image under every config: no errors ever;
   the census grades each scheme's modifier diversity as the paper's
   argument predicts ----- *)

let is_collision d = match d.D.kind with D.Modifier_collision _ -> true | _ -> false

let test_kernel_image_clean () =
  List.iter
    (fun (name, config, expect) ->
      let diags = K.Kbuild.lint config in
      Alcotest.(check int)
        (Printf.sprintf "%s kernel image has no errors" name)
        0
        (List.length (List.filter D.is_error diags));
      match expect with
      | `Clean ->
          Alcotest.(check int)
            (Printf.sprintf "%s kernel image has no findings" name)
            0 (List.length diags)
      | `Info_only ->
          (* diverse modifiers: only object-conditional census notes *)
          Alcotest.(check bool)
            (Printf.sprintf "%s kernel image: info findings only" name)
            true
            (List.for_all (fun d -> D.severity d = D.Info) diags)
      | `Sp_collision ->
          (* the whole point of the census: SP-congruent modifier
             classes are substitution gadgets, reported as warnings *)
          Alcotest.(check bool)
            (Printf.sprintf "%s kernel image: sp-dependent collision class" name)
            true
            (List.exists
               (fun d ->
                 match d.D.kind with
                 | D.Modifier_collision c ->
                     c.D.dynamism = D.Sp_dependent && D.severity d = D.Warning
                     && c.D.pairs > 0
                 | _ -> false)
               diags);
          Alcotest.(check bool)
            (Printf.sprintf "%s kernel image: only collision findings" name)
            true
            (List.for_all is_collision diags))
    [
      ("full", C.Config.full, `Info_only);
      ("backward", C.Config.backward_only, `Clean);
      ("compat", C.Config.compat, `Info_only);
      ("none", C.Config.none, `Clean);
      ("sp-only", { C.Config.backward_only with scheme = C.Modifier.Sp_only }, `Sp_collision);
      ( "parts",
        { C.Config.backward_only with scheme = C.Modifier.Parts 0x7357L },
        `Sp_collision );
      ( "chained",
        { C.Config.backward_only with scheme = C.Modifier.Chained },
        `Info_only );
    ]

(* ----- the loader gate ----- *)

let boot () = K.System.boot ~config:C.Config.full ~seed:7L ()

let test_loader_rejects_with_diag () =
  let sys = boot () in
  let rogue =
    Kelf.Object_file.add_function
      (Kelf.Object_file.empty "rogue")
      ~name:"rogue_entry"
      [ Asm.ins (Insn.Msr (Sysreg.APIBKeyLo_EL1, x 0)); Asm.ins Insn.Ret ]
  in
  match K.System.load_module sys rogue with
  | Result.Ok _ -> Alcotest.fail "rogue module accepted"
  | Result.Error (Kelf.Loader.Verification_failed vs) ->
      Alcotest.(check bool) "carries a key-register-write diagnostic" true
        (List.exists
           (fun d -> match d.D.kind with D.Key_register_write _ -> true | _ -> false)
           vs)
  | Result.Error e ->
      Alcotest.failf "unexpected error: %s" (Kelf.Loader.error_to_string e)

let test_loader_surfaces_warnings () =
  let sys = boot () in
  let config = K.System.config sys in
  (* authenticated-pointer spill: warning severity, so the module loads,
     but the finding rides on the placed object *)
  let f =
    C.Instrument.wrap config ~name:"leaky_entry"
      [
        Asm.ins (Insn.Aut (Sysreg.DA, x 0, x 9));
        Asm.ins (Insn.Str (x 0, Insn.Off (x 1, 0)));
      ]
  in
  let leaky =
    Kelf.Object_file.add_function
      (Kelf.Object_file.empty "leaky")
      ~name:"leaky_entry" f.C.Instrument.items
  in
  match K.System.load_module sys leaky with
  | Result.Error e ->
      Alcotest.failf "warning-only module rejected: %s" (Kelf.Loader.error_to_string e)
  | Result.Ok placed ->
      Alcotest.(check bool) "lint_warnings is non-empty" true
        (placed.Kelf.Loader.lint_warnings <> []);
      Alcotest.(check bool) "and they are toctou spills" true
        (List.for_all
           (fun d -> match d.D.kind with D.Toctou_spill _ -> true | _ -> false)
           placed.Kelf.Loader.lint_warnings)

(* ----- call-graph reconstruction ----- *)

let test_callgraph () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"root"
    [
      Asm.ins (Insn.Movz (x 0, 1, 0));
      Asm.bl_to "leaf";
      (* resolved indirect: ADR materializes the target *)
      Asm.adr_of (x 8) "leaf";
      Asm.ins (Insn.Blr (x 8));
      (* unresolved indirect: target loaded from memory *)
      Asm.ins (Insn.Ldr (x 9, Insn.Off (Insn.SP, 0)));
      Asm.ins (Insn.Blr (x 9));
      Asm.ins Insn.Ret;
    ];
  Asm.add_function prog ~name:"leaf" [ Asm.ins (Insn.Movz (x 0, 2, 0)); Asm.ins Insn.Ret ];
  let layout = Asm.assemble prog ~base in
  let cg = Paclint.Callgraph.build ~symbols:layout.Asm.symbols layout.Asm.code in
  Alcotest.(check int) "two functions" 2 (Array.length cg.Paclint.Callgraph.fns);
  let root = cg.Paclint.Callgraph.fns.(0) in
  Alcotest.(check (option string)) "root named" (Some "root") root.Paclint.Callgraph.name;
  let kinds =
    List.map
      (fun c ->
        ( c.Paclint.Callgraph.kind,
          Option.is_some c.Paclint.Callgraph.target ))
      root.Paclint.Callgraph.calls
  in
  Alcotest.(check int) "three call sites" 3 (List.length kinds);
  Alcotest.(check bool) "bl resolved" true
    (List.mem (Paclint.Callgraph.Direct, true) kinds);
  Alcotest.(check bool) "adr-fed blr resolved" true
    (List.mem (Paclint.Callgraph.Indirect, true) kinds);
  Alcotest.(check bool) "loaded blr unresolved" true
    (List.mem (Paclint.Callgraph.Indirect, false) kinds);
  Alcotest.(check int) "one unresolved site" 1 (Paclint.Callgraph.unresolved_count cg);
  let leaf_entry = List.assoc "leaf" layout.Asm.symbols in
  (match Paclint.Callgraph.fn_index cg leaf_entry with
  | Some i ->
      Alcotest.(check (list int)) "leaf's only caller is root" [ 0 ]
        (Paclint.Callgraph.callers cg i)
  | None -> Alcotest.fail "leaf not partitioned at its entry");
  (* the resolved BLR site feeds hints; the unresolved one does not *)
  let hinted =
    Array.to_list cg.Paclint.Callgraph.code
    |> List.filter (fun (va, _) -> Paclint.Callgraph.hints cg va <> [])
  in
  Alcotest.(check int) "exactly one hinted site" 1 (List.length hinted)

(* ----- census classes and the scheme rule packs ----- *)

let parts_config = { C.Config.backward_only with scheme = C.Modifier.Parts 0x7357L }
let sp_config = { C.Config.backward_only with scheme = C.Modifier.Sp_only }

let test_census_classes () =
  (* PARTS: one fixed image id for every function, so all backward-edge
     sign/auth sites share one SP-dependent class with 16 dynamic bits *)
  let census = (K.Kbuild.lint_report parts_config).K.Kbuild.census in
  let colliding =
    List.filter
      (fun c -> c.Paclint.Census.pairs > 0)
      census.Paclint.Census.classes
  in
  (match colliding with
  | [ c ] ->
      Alcotest.(check string) "the PARTS modifier class"
        "bfi(imm:0x7357,sp,48,16)" c.Paclint.Census.cls;
      Alcotest.(check bool) "sp-dependent" true
        (c.Paclint.Census.dynamism = D.Sp_dependent);
      Alcotest.(check int) "16 dynamic bits" 16 c.Paclint.Census.dynamic_bits;
      Alcotest.(check (float 1e-9)) "forgery probability 2^-16"
        (2. ** -16.)
        (Paclint.Census.forgery_probability c);
      Alcotest.(check bool) "spans several functions" true
        (c.Paclint.Census.fn_count > 1)
  | l -> Alcotest.failf "expected exactly one colliding class, got %d" (List.length l));
  (* Camouflage: address diversity separates every function's class —
     no cross-function pair anywhere *)
  let census_full = (K.Kbuild.lint_report C.Config.full).K.Kbuild.census in
  Alcotest.(check int) "camouflage kernel: no frame-replay pairs" 0
    (Attacks.Census_check.frame_replay_pairs census_full);
  (* sites are census'd in ascending va *)
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        a.Paclint.Census.va < b.Paclint.Census.va && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "sites ascending" true (ascending census.Paclint.Census.sites)

let has_violation diags =
  List.exists
    (fun d -> match d.D.kind with D.Scheme_violation _ -> true | _ -> false)
    diags

let test_rule_packs () =
  (* each scheme's own image satisfies its own pack... *)
  List.iter
    (fun (name, config) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s image passes its own pack" name)
        false
        (has_violation (K.Kbuild.lint config)))
    [ ("full", C.Config.full); ("sp-only", sp_config); ("parts", parts_config) ];
  (* ...and fails a foreign discipline: PARTS modifiers are not bare SP,
     and contain no function address *)
  Alcotest.(check bool) "parts image violates the sp-only pack" true
    (has_violation (K.Kbuild.lint ~scheme:Paclint.Rules.Sp_only parts_config));
  Alcotest.(check bool) "parts image violates the camouflage pack" true
    (has_violation (K.Kbuild.lint ~scheme:Paclint.Rules.Camouflage parts_config));
  Alcotest.(check bool) "sp-only image violates the parts pack" true
    (has_violation (K.Kbuild.lint ~scheme:Paclint.Rules.Parts sp_config))

(* ----- worker-count independence (the fleet determinism contract) ----- *)

let test_worker_determinism () =
  let fingerprint par =
    let r = K.Kbuild.lint_report ~par C.Config.full in
    Paclint.Census.to_json r.K.Kbuild.census
    ^ Paclint.Diag.list_to_json r.K.Kbuild.diags
    ^ Paclint.Summary.summaries_to_json r.K.Kbuild.summary
  in
  let seq = fingerprint L.seq_par in
  List.iter
    (fun workers ->
      let par = { L.pmap = (fun ~jobs f -> Fleet.Pool.map ~workers ~jobs f) } in
      Alcotest.(check bool)
        (Printf.sprintf "byte-identical at %d workers" workers)
        true
        (String.equal seq (fingerprint par)))
    [ 2; 8 ]

(* ----- .kelf round trip and the module lint gate ----- *)

let test_kelf_roundtrip () =
  let dir = Filename.temp_file "kelf" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let obj = Kelf.Samples.clean C.Config.full in
  let path = Filename.concat dir "clean.kelf" in
  Kelf.Object_file.write_file path obj;
  (match Kelf.Object_file.read_file path with
  | Ok back ->
      Alcotest.(check string) "name survives" obj.Kelf.Object_file.obj_name
        back.Kelf.Object_file.obj_name;
      Alcotest.(check int) "instruction count survives"
        (Kelf.Object_file.text_instruction_count obj)
        (Kelf.Object_file.text_instruction_count back)
  | Error e -> Alcotest.failf "round trip failed: %s" e);
  let bogus = Filename.concat dir "bogus.kelf" in
  let oc = open_out bogus in
  output_string oc "not a kelf at all";
  close_out oc;
  (match Kelf.Object_file.read_file bogus with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  match Kelf.Object_file.read_file (Filename.concat dir "absent.kelf") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let test_lint_module () =
  (* the clean module: no errors under any configuration's gate *)
  let clean = K.Kbuild.lint_module C.Config.full (Kelf.Samples.clean C.Config.full) in
  Alcotest.(check int) "clean module: no errors" 0
    (List.length (List.filter D.is_error clean.K.Kbuild.diags));
  (* the oracle fixture under PARTS: the cross-function signing oracle is
     an error, the prologue collision a warning — and neither is visible
     to a per-function analysis (examples/static_lint.ml demonstrates
     that side; here we pin the module gate's verdict) *)
  let oracle = K.Kbuild.lint_module parts_config (Kelf.Samples.oracle parts_config) in
  Alcotest.(check bool) "oracle module: signing oracle found" true
    (List.exists
       (fun d -> match d.D.kind with D.Signing_oracle _ -> true | _ -> false)
       oracle.K.Kbuild.diags);
  Alcotest.(check bool) "oracle module: prologue collision found" true
    (List.exists
       (fun d ->
         match d.D.kind with
         | D.Modifier_collision c -> c.D.pairs > 0 && c.D.dynamism = D.Sp_dependent
         | _ -> false)
       oracle.K.Kbuild.diags);
  Alcotest.(check bool) "oracle module rejected (has errors)" true
    (List.exists D.is_error oracle.K.Kbuild.diags)

(* ----- static census vs. live substitution (both directions) ----- *)

let test_census_cross_validation () =
  match Attacks.Census_check.cross_validate ~seed:42L () with
  | [ parts; full ] ->
      Alcotest.(check bool) "parts: census predicts frame-replay pairs" true
        (parts.Attacks.Census_check.predicted_pairs > 0);
      Alcotest.(check bool) "parts: replay demonstrated live" true
        (match parts.Attacks.Census_check.outcome with
        | Attacks.Replay.Accepted _ -> true
        | _ -> false);
      Alcotest.(check bool) "camouflage: census predicts none" true
        (full.Attacks.Census_check.predicted_pairs = 0);
      Alcotest.(check bool) "camouflage: replay rejected" true
        (full.Attacks.Census_check.outcome = Attacks.Replay.Rejected);
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (v.Attacks.Census_check.config_name ^ " consistent")
            true v.Attacks.Census_check.consistent)
        [ parts; full ]
  | l -> Alcotest.failf "expected two verdicts, got %d" (List.length l)

(* ----- interprocedural == fully inlined, on generated call chains -----

   A chain f0 -> f1 -> ... -> f{n-1} of straight-line bodies, each
   callee called exactly once, only the root a symbol. Analyzing the
   outlined image with per-function summaries must produce exactly the
   diagnostic kinds of the intraprocedural lint over the hand-inlined
   program: with one call site per callee and no branching, summary
   application (entry flows in, exit states and may-write masks out) is
   semantically the identity transformation inlining performs. *)

let parity_policy =
  {
    L.protect_return = false;
    (* bodies have no LR discipline *)
    protect_pointers = true;
    sp_modifier = false;
    allowed_key_writer = (fun _ -> false);
  }

let gen_body_insn =
  QCheck2.Gen.(
    let reg = map (fun n -> Insn.R n) (int_range 0 7) in
    let base_reg = oneof [ return Insn.SP; map (fun n -> Insn.R n) (int_range 0 3) ] in
    let key = oneofl Sysreg.[ IA; IB; DA; DB ] in
    let off = map (fun k -> 8 * k) (int_range 0 3) in
    frequency
      [
        (3, map2 (fun r v -> Insn.Movz (r, v, 0)) reg (int_range 0 100));
        (2, map2 (fun r r' -> Insn.Mov (r, r')) reg reg);
        (3, map2 (fun r (b, o) -> Insn.Ldr (r, Insn.Off (b, o))) reg (pair base_reg off));
        (2, map2 (fun r (b, o) -> Insn.Str (r, Insn.Off (b, o))) reg (pair base_reg off));
        (2, map2 (fun (k, r) r' -> Insn.Pac (k, r, r')) (pair key reg) reg);
        (2, map2 (fun (k, r) r' -> Insn.Aut (k, r, r')) (pair key reg) reg);
        (1, map (fun r -> Insn.Xpac r) reg);
        (2, map2 (fun r r' -> Insn.Add_imm (r, r', 8)) reg reg);
        (1, map (fun r -> Insn.Mrs (r, Sysreg.APIBKeyHi_EL1)) reg);
      ])

let gen_chain =
  QCheck2.Gen.(
    let segment = list_size (int_range 0 5) gen_body_insn in
    list_size (int_range 1 4) (pair segment segment))

let kind_multiset diags = List.sort compare (List.map (fun d -> D.kind_name d.D.kind) diags)

let prop_interprocedural_matches_inlined =
  QCheck2.Test.make ~count:300
    ~name:"Summary.analyze_image == lint over the inlined chain" gen_chain
    (fun segs ->
      let n = List.length segs in
      let fname i = Printf.sprintf "f%d" i in
      (* outlined: f_i = pre_i; bl f_{i+1}; post_i; ret *)
      let prog = Asm.create () in
      List.iteri
        (fun i (pre, post) ->
          let items =
            List.map Asm.ins pre
            @ (if i + 1 < n then [ Asm.bl_to (fname (i + 1)) ] else [])
            @ List.map Asm.ins post
            @ [ Asm.ins Insn.Ret ]
          in
          Asm.add_function prog ~name:(fname i) items)
        segs;
      let layout = Asm.assemble prog ~base in
      let report =
        Paclint.Summary.analyze_image
          ~symbols:[ ("f0", base) ]
          ~policy:parity_policy layout.Asm.code
      in
      (* inlined: pre_0; pre_1; ...; post_{n-1}; ...; post_0 *)
      let inlined =
        List.concat_map fst segs @ List.concat (List.rev_map snd segs)
      in
      let intra = L.lint_insns ~policy:parity_policy (listing inlined) in
      kind_multiset report.Paclint.Summary.diags = kind_multiset intra)

(* ----- Verifier wrapper == the old linear scan ----- *)

(* The seed's Core.Verifier.check, verbatim: the oracle the wrapper must
   reproduce observationally. *)
let reference_check ~allowed va insn =
  match Insn.reads_sysreg insn with
  | Some sr when Sysreg.is_pauth_key sr ->
      Some { C.Verifier.va; insn; reason = C.Verifier.Reads_key_register sr }
  | Some _ | None -> (
      match Insn.writes_sysreg insn with
      | Some sr when Sysreg.is_pauth_key sr && not (allowed va) ->
          Some { C.Verifier.va; insn; reason = C.Verifier.Writes_key_register sr }
      | Some Sysreg.SCTLR_EL1 when not (allowed va) ->
          Some { C.Verifier.va; insn; reason = C.Verifier.Writes_sctlr }
      | Some _ | None -> None)

let gen_scan_insn =
  QCheck2.Gen.(
    let reg = map (fun n -> Insn.R n) (int_range 0 30) in
    let sysreg = oneofl Sysreg.all in
    frequency
      [
        (3, map2 (fun r sr -> Insn.Mrs (r, sr)) reg sysreg);
        (3, map2 (fun r sr -> Insn.Msr (sr, r)) reg sysreg);
        (1, return Insn.Nop);
        (1, return Insn.Ret);
        (1, map (fun r -> Insn.Movz (r, 1, 0)) reg);
        (1, map2 (fun k r -> Insn.Pac (k, r, r)) (oneofl Sysreg.[ IA; IB; DA; DB; GA ]) reg);
      ])

let prop_scan_matches_reference =
  QCheck2.Test.make ~count:500 ~name:"Verifier.scan_insns == old linear scan"
    QCheck2.Gen.(pair (list_size (int_range 0 40) gen_scan_insn) (int_range 1 4))
    (fun (insns, m) ->
      let stream = listing insns in
      let allowed va =
        Int64.rem (Int64.div (Int64.sub va base) 4L) (Int64.of_int m) = 0L
      in
      let got = C.Verifier.scan_insns ~base stream ~allowed in
      let want = List.filter_map (fun (va, i) -> reference_check ~allowed va i) stream in
      got = want)

let suite =
  [
    Alcotest.test_case "wrapped functions clean (mode x scheme)" `Quick test_wrapped_clean;
    Alcotest.test_case "oracle classes detected" `Quick test_oracle_classes;
    Alcotest.test_case "clean shapes stay clean" `Quick test_clean_shapes;
    Alcotest.test_case "kernel image clean per config" `Quick test_kernel_image_clean;
    Alcotest.test_case "loader rejects with diagnostics" `Quick test_loader_rejects_with_diag;
    Alcotest.test_case "loader surfaces warnings" `Quick test_loader_surfaces_warnings;
    Alcotest.test_case "call graph reconstruction" `Quick test_callgraph;
    Alcotest.test_case "census classes per scheme" `Quick test_census_classes;
    Alcotest.test_case "scheme rule packs" `Quick test_rule_packs;
    Alcotest.test_case "worker-count independence" `Quick test_worker_determinism;
    Alcotest.test_case ".kelf round trip" `Quick test_kelf_roundtrip;
    Alcotest.test_case "module lint gate" `Quick test_lint_module;
    Alcotest.test_case "census vs live replay (both ways)" `Quick test_census_cross_validation;
    QCheck_alcotest.to_alcotest prop_interprocedural_matches_inlined;
    QCheck_alcotest.to_alcotest prop_scan_matches_reference;
  ]
