(* The PAC-state static analyzer:
   - instrumented output is diagnostic-free under every (mode x scheme);
   - each oracle class is detected;
   - the built kernel image lints clean under every shipped config;
   - the loader gate rejects on error diagnostics and surfaces warnings;
   - Core.Verifier's wrapper is observationally the old linear scan. *)

open Aarch64
module C = Camouflage
module K = Kernel
module L = Paclint.Lint
module D = Paclint.Diag

let x n = Insn.R n
let base = 0xffff000000300000L

let strict_policy =
  {
    L.protect_return = true;
    protect_pointers = true;
    sp_modifier = true;
    allowed_key_writer = (fun _ -> false);
  }

(* ----- instrumented functions lint clean, all modes x schemes ----- *)

let schemes =
  [
    ("no-cfi", C.Modifier.No_cfi);
    ("sp-only", C.Modifier.Sp_only);
    ("parts", C.Modifier.Parts 0x7357L);
    ("camouflage", C.Modifier.Camouflage);
    ("chained", C.Modifier.Chained);
  ]

let modes = [ ("v8.3", C.Keys.Armv83); ("compat", C.Keys.Compat) ]

let body =
  [
    Asm.ins (Insn.Movz (x 0, 40, 0));
    Asm.ins (Insn.Add_imm (x 0, x 0, 2));
    Asm.ins (Insn.Sub_imm (Insn.SP, Insn.SP, 16));
    Asm.ins (Insn.Str (x 0, Insn.Off (Insn.SP, 0)));
    Asm.ins (Insn.Ldr (x 1, Insn.Off (Insn.SP, 0)));
    Asm.ins (Insn.Add_imm (Insn.SP, Insn.SP, 16));
  ]

let test_wrapped_clean () =
  List.iter
    (fun (mname, mode) ->
      List.iter
        (fun (sname, scheme) ->
          let config = { C.Config.full with scheme; mode } in
          match C.Instrument.wrap config ~name:"f" body with
          | exception _ -> () (* unsupported combination (e.g. compat+chained) *)
          | f ->
              let prog = Asm.create () in
              Asm.add_function prog ~name:"f" f.C.Instrument.items;
              let layout = Asm.assemble prog ~base in
              let diags = L.lint_layout ~policy:(C.Verifier.policy config) layout in
              Alcotest.(check int)
                (Printf.sprintf "%s/%s wrapped function is clean" mname sname)
                0 (List.length diags))
        schemes)
    modes

(* ----- one assertion per diagnostic class ----- *)

let listing insns = List.mapi (fun i insn -> (Int64.add base (Int64.of_int (4 * i)), insn)) insns

let kinds insns =
  List.map (fun d -> D.kind_name d.D.kind) (L.lint_insns ~policy:strict_policy (listing insns))

let has insns k = List.mem k (kinds insns)

let test_oracle_classes () =
  Alcotest.(check bool) "signing oracle" true
    (has
       [ Insn.Ldr (x 0, Insn.Off (Insn.SP, 0)); Insn.Pac (Sysreg.IB, x 0, x 9); Insn.Ret ]
       "signing-oracle");
  Alcotest.(check bool) "unauthenticated branch" true
    (has [ Insn.Ldr (x 8, Insn.Off (x 0, 0)); Insn.Br (x 8) ] "unauthenticated-branch");
  Alcotest.(check bool) "stripped branch" true
    (has
       [ Insn.Ldr (x 8, Insn.Off (x 0, 0)); Insn.Xpac (x 8); Insn.Blr (x 8); Insn.Ret ]
       "unauthenticated-branch");
  Alcotest.(check bool) "toctou spill" true
    (has
       [ Insn.Aut (Sysreg.DA, x 0, x 9); Insn.Str (x 0, Insn.Off (Insn.SP, 8)); Insn.Ret ]
       "toctou-spill");
  Alcotest.(check bool) "unprotected return" true
    (has
       [
         Insn.Stp (Insn.fp, Insn.lr, Insn.Pre (Insn.SP, -16));
         Insn.Ldp (Insn.fp, Insn.lr, Insn.Post (Insn.SP, 16));
         Insn.Ret;
       ]
       "unprotected-return");
  Alcotest.(check bool) "modifier mismatch" true
    (has
       [
         Insn.Mov (x 9, Insn.SP);
         Insn.Pac (Sysreg.IB, Insn.lr, x 9);
         Insn.Sub_imm (Insn.SP, Insn.SP, 32);
         Insn.Mov (x 9, Insn.SP);
         Insn.Aut (Sysreg.IB, Insn.lr, x 9);
         Insn.Ret;
       ]
       "modifier-sp-mismatch");
  Alcotest.(check bool) "key read" true
    (has [ Insn.Mrs (x 0, Sysreg.APIBKeyHi_EL1); Insn.Ret ] "key-register-read");
  Alcotest.(check bool) "key write" true
    (has [ Insn.Msr (Sysreg.APIBKeyLo_EL1, x 0); Insn.Ret ] "key-register-write");
  Alcotest.(check bool) "sctlr write" true
    (has [ Insn.Msr (Sysreg.SCTLR_EL1, x 0); Insn.Ret ] "sctlr-write");
  let clobber =
    L.check_body [ Asm.ins (Insn.Movz (x 15, 1, 0)); Asm.ins Insn.Ret ]
  in
  Alcotest.(check bool) "reserved clobber" true
    (List.exists (fun d -> D.kind_name d.D.kind = "reserved-clobber") clobber);
  (* ...but the canonical mov-into-x16/x17 feeding a 1716 form is not a
     clobber: it is the architectural operand interface. *)
  let idiom =
    L.check_body
      [
        Asm.ins (Insn.Mov (Insn.ip1, x 0));
        Asm.ins (Insn.Mov (Insn.ip0, x 1));
        Asm.ins (Insn.Aut1716 Sysreg.IB);
        Asm.ins (Insn.Mov (x 0, Insn.ip1));
      ]
  in
  Alcotest.(check int) "1716 idiom exempt" 0 (List.length idiom)

(* ----- no false positives on clean code shapes ----- *)

let test_clean_shapes () =
  (* a leaf returning through an untouched LR is fine everywhere *)
  Alcotest.(check int) "bare ret" 0 (List.length (kinds [ Insn.Ret ]));
  (* authenticate-then-branch is the sanctioned forward-edge pattern *)
  Alcotest.(check int) "aut then br" 0
    (List.length
       (kinds
          [
            Insn.Ldr (x 8, Insn.Off (x 0, 0));
            Insn.Aut (Sysreg.IA, x 8, x 9);
            Insn.Br (x 8);
          ]));
  (* balanced sign/auth at the same SP depth *)
  Alcotest.(check int) "balanced modifier" 0
    (List.length
       (kinds
          [
            Insn.Mov (x 9, Insn.SP);
            Insn.Pac (Sysreg.IB, Insn.lr, x 9);
            Insn.Sub_imm (Insn.SP, Insn.SP, 32);
            Insn.Add_imm (Insn.SP, Insn.SP, 32);
            Insn.Mov (x 9, Insn.SP);
            Insn.Aut (Sysreg.IB, Insn.lr, x 9);
            Insn.Ret;
          ]))

(* ----- the built kernel image is clean under every config ----- *)

let test_kernel_image_clean () =
  List.iter
    (fun (name, config) ->
      let diags = K.Kbuild.lint config in
      Alcotest.(check int)
        (Printf.sprintf "%s kernel image lints clean" name)
        0 (List.length diags))
    [
      ("full", C.Config.full);
      ("backward", C.Config.backward_only);
      ("compat", C.Config.compat);
      ("none", C.Config.none);
      ("sp-only", { C.Config.backward_only with scheme = C.Modifier.Sp_only });
      ("parts", { C.Config.backward_only with scheme = C.Modifier.Parts 0x7357L });
      ("chained", { C.Config.backward_only with scheme = C.Modifier.Chained });
    ]

(* ----- the loader gate ----- *)

let boot () = K.System.boot ~config:C.Config.full ~seed:7L ()

let test_loader_rejects_with_diag () =
  let sys = boot () in
  let rogue =
    Kelf.Object_file.add_function
      (Kelf.Object_file.empty "rogue")
      ~name:"rogue_entry"
      [ Asm.ins (Insn.Msr (Sysreg.APIBKeyLo_EL1, x 0)); Asm.ins Insn.Ret ]
  in
  match K.System.load_module sys rogue with
  | Result.Ok _ -> Alcotest.fail "rogue module accepted"
  | Result.Error (Kelf.Loader.Verification_failed vs) ->
      Alcotest.(check bool) "carries a key-register-write diagnostic" true
        (List.exists
           (fun d -> match d.D.kind with D.Key_register_write _ -> true | _ -> false)
           vs)
  | Result.Error e ->
      Alcotest.failf "unexpected error: %s" (Kelf.Loader.error_to_string e)

let test_loader_surfaces_warnings () =
  let sys = boot () in
  let config = K.System.config sys in
  (* authenticated-pointer spill: warning severity, so the module loads,
     but the finding rides on the placed object *)
  let f =
    C.Instrument.wrap config ~name:"leaky_entry"
      [
        Asm.ins (Insn.Aut (Sysreg.DA, x 0, x 9));
        Asm.ins (Insn.Str (x 0, Insn.Off (x 1, 0)));
      ]
  in
  let leaky =
    Kelf.Object_file.add_function
      (Kelf.Object_file.empty "leaky")
      ~name:"leaky_entry" f.C.Instrument.items
  in
  match K.System.load_module sys leaky with
  | Result.Error e ->
      Alcotest.failf "warning-only module rejected: %s" (Kelf.Loader.error_to_string e)
  | Result.Ok placed ->
      Alcotest.(check bool) "lint_warnings is non-empty" true
        (placed.Kelf.Loader.lint_warnings <> []);
      Alcotest.(check bool) "and they are toctou spills" true
        (List.for_all
           (fun d -> match d.D.kind with D.Toctou_spill _ -> true | _ -> false)
           placed.Kelf.Loader.lint_warnings)

(* ----- Verifier wrapper == the old linear scan ----- *)

(* The seed's Core.Verifier.check, verbatim: the oracle the wrapper must
   reproduce observationally. *)
let reference_check ~allowed va insn =
  match Insn.reads_sysreg insn with
  | Some sr when Sysreg.is_pauth_key sr ->
      Some { C.Verifier.va; insn; reason = C.Verifier.Reads_key_register sr }
  | Some _ | None -> (
      match Insn.writes_sysreg insn with
      | Some sr when Sysreg.is_pauth_key sr && not (allowed va) ->
          Some { C.Verifier.va; insn; reason = C.Verifier.Writes_key_register sr }
      | Some Sysreg.SCTLR_EL1 when not (allowed va) ->
          Some { C.Verifier.va; insn; reason = C.Verifier.Writes_sctlr }
      | Some _ | None -> None)

let gen_scan_insn =
  QCheck2.Gen.(
    let reg = map (fun n -> Insn.R n) (int_range 0 30) in
    let sysreg = oneofl Sysreg.all in
    frequency
      [
        (3, map2 (fun r sr -> Insn.Mrs (r, sr)) reg sysreg);
        (3, map2 (fun r sr -> Insn.Msr (sr, r)) reg sysreg);
        (1, return Insn.Nop);
        (1, return Insn.Ret);
        (1, map (fun r -> Insn.Movz (r, 1, 0)) reg);
        (1, map2 (fun k r -> Insn.Pac (k, r, r)) (oneofl Sysreg.[ IA; IB; DA; DB; GA ]) reg);
      ])

let prop_scan_matches_reference =
  QCheck2.Test.make ~count:500 ~name:"Verifier.scan_insns == old linear scan"
    QCheck2.Gen.(pair (list_size (int_range 0 40) gen_scan_insn) (int_range 1 4))
    (fun (insns, m) ->
      let stream = listing insns in
      let allowed va =
        Int64.rem (Int64.div (Int64.sub va base) 4L) (Int64.of_int m) = 0L
      in
      let got = C.Verifier.scan_insns ~base stream ~allowed in
      let want = List.filter_map (fun (va, i) -> reference_check ~allowed va i) stream in
      got = want)

let suite =
  [
    Alcotest.test_case "wrapped functions clean (mode x scheme)" `Quick test_wrapped_clean;
    Alcotest.test_case "oracle classes detected" `Quick test_oracle_classes;
    Alcotest.test_case "clean shapes stay clean" `Quick test_clean_shapes;
    Alcotest.test_case "kernel image clean per config" `Quick test_kernel_image_clean;
    Alcotest.test_case "loader rejects with diagnostics" `Quick test_loader_rejects_with_diag;
    Alcotest.test_case "loader surfaces warnings" `Quick test_loader_surfaces_warnings;
    QCheck_alcotest.to_alcotest prop_scan_matches_reference;
  ]
