(* End-to-end kernel tests: boot under every protection configuration,
   run syscalls, context switches, workqueues, module loading and user
   programs on the model machine. *)

open Aarch64
module C = Camouflage
module K = Kernel

let configs =
  [
    ("full", C.Config.full, true);
    ("backward", C.Config.backward_only, true);
    ("compat", C.Config.compat, true);
    ("compat-on-v8.0", C.Config.compat, false);
    ("none", C.Config.none, true);
  ]

let boot ?(config = C.Config.full) ?(has_pauth = true) () =
  K.System.boot ~config ~has_pauth ~seed:7L ()

let expect_ok name = function
  | K.System.Ok v -> v
  | K.System.Killed m -> Alcotest.failf "%s killed: %s" name m
  | K.System.Panicked m -> Alcotest.failf "%s panicked: %s" name m

let test_boot_all_configs () =
  List.iter
    (fun (name, config, has_pauth) ->
      let sys = boot ~config ~has_pauth () in
      Alcotest.(check bool) (name ^ " booted") false (K.System.panicked sys);
      Alcotest.(check int) (name ^ " init pid") 1 (K.System.current sys).K.System.pid)
    configs

let test_getpid () =
  let sys = boot () in
  let v = expect_ok "getpid" (K.System.syscall sys ~nr:K.Kbuild.sys_getpid ~args:[]) in
  Alcotest.(check int64) "pid 1" 1L v

let write_user_bytes sys va s = K.Kmem.blit_string (K.System.cpu sys) va s

let read_user_bytes sys va len = K.Kmem.read_string (K.System.cpu sys) va len

let test_open_write_read () =
  List.iter
    (fun (name, config, has_pauth) ->
      let sys = boot ~config ~has_pauth () in
      let fd =
        expect_ok "open" (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ])
      in
      Alcotest.(check int64) (name ^ ": first fd") 3L fd;
      (* write from a user buffer *)
      let ubuf = K.Layout.user_data_base in
      K.Kmem.map_user_region (K.System.cpu sys) ~base:ubuf ~bytes:4096 Mmu.rw;
      write_user_bytes sys ubuf "hello camouflage";
      let wrote =
        expect_ok "write"
          (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ fd; ubuf; 16L ])
      in
      Alcotest.(check int64) (name ^ ": wrote") 16L wrote;
      (* rewind by reopening: use fstat to check pos *)
      let fd2 =
        expect_ok "open2" (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ])
      in
      let dst = Int64.add ubuf 1024L in
      let got =
        expect_ok "read"
          (K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ fd2; dst; 16L ])
      in
      Alcotest.(check int64) (name ^ ": read") 16L got;
      Alcotest.(check string)
        (name ^ ": data roundtrip")
        "hello camouflage" (read_user_bytes sys dst 16))
    configs

let test_bad_fd () =
  let sys = boot () in
  let v =
    expect_ok "read bad fd"
      (K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ 9L; 0L; 0L ])
  in
  Alcotest.(check int64) "-1" (-1L) v;
  let v =
    expect_ok "read fd out of range"
      (K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ 123L; 0L; 0L ])
  in
  Alcotest.(check int64) "-1" (-1L) v

let test_stat_fstat () =
  let sys = boot () in
  let ubuf = K.Layout.user_data_base in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:ubuf ~bytes:4096 Mmu.rw;
  let v =
    expect_ok "stat" (K.System.syscall sys ~nr:K.Kbuild.sys_stat ~args:[ 7L; ubuf ])
  in
  Alcotest.(check int64) "stat ok" 0L v;
  Alcotest.(check int64) "st_size" 4096L
    (K.Kmem.read64 (K.System.cpu sys) (Int64.add ubuf 8L));
  let fd = expect_ok "open" (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ]) in
  let v =
    expect_ok "fstat" (K.System.syscall sys ~nr:K.Kbuild.sys_fstat ~args:[ fd; ubuf ])
  in
  Alcotest.(check int64) "fstat ok" 0L v

let test_notifiers () =
  let sys = boot () in
  let v =
    expect_ok "register"
      (K.System.syscall sys ~nr:K.Kbuild.sys_notifier_register ~args:[ 2L; 1L ])
  in
  Alcotest.(check int64) "register ok" 0L v;
  let v =
    expect_ok "call" (K.System.syscall sys ~nr:K.Kbuild.sys_notifier_call ~args:[ 2L ])
  in
  Alcotest.(check int64) "notifier_count returned 1" 1L v;
  let v =
    expect_ok "call again"
      (K.System.syscall sys ~nr:K.Kbuild.sys_notifier_call ~args:[ 2L ])
  in
  Alcotest.(check int64) "notifier_count returned 2" 2L v;
  (* unset slot *)
  let v =
    expect_ok "unset slot" (K.System.syscall sys ~nr:K.Kbuild.sys_notifier_call ~args:[ 5L ])
  in
  Alcotest.(check int64) "-1 on empty slot" (-1L) v

let test_pipe () =
  let sys = boot () in
  let ubuf = K.Layout.user_data_base in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:ubuf ~bytes:4096 Mmu.rw;
  write_user_bytes sys ubuf "pipe-data";
  let v =
    expect_ok "pipe write"
      (K.System.syscall sys ~nr:K.Kbuild.sys_pipe_write ~args:[ ubuf; 9L ])
  in
  Alcotest.(check int64) "wrote 9" 9L v;
  let dst = Int64.add ubuf 2048L in
  let v =
    expect_ok "pipe read"
      (K.System.syscall sys ~nr:K.Kbuild.sys_pipe_read ~args:[ dst; 9L ])
  in
  Alcotest.(check int64) "read 9" 9L v;
  Alcotest.(check string) "pipe roundtrip" "pipe-data" (read_user_bytes sys dst 9)

let test_fork_and_switch () =
  List.iter
    (fun (name, config, has_pauth) ->
      let sys = boot ~config ~has_pauth () in
      let child =
        match K.System.fork sys with
        | Result.Ok c -> c
        | Result.Error m -> Alcotest.failf "%s: fork failed: %s" name m
      in
      Alcotest.(check int) (name ^ ": child pid") 2 child.K.System.pid;
      (* switch init -> child; the child's prefabricated frame returns
         control to the host *)
      (match K.System.switch_to sys child with
      | K.System.Ok _ -> ()
      | K.System.Killed m | K.System.Panicked m ->
          Alcotest.failf "%s: switch failed: %s" name m);
      Alcotest.(check int) (name ^ ": current is child") 2
        (K.System.current sys).K.System.pid;
      (* and back *)
      (match K.System.switch_to sys (List.hd (K.System.tasks sys)) with
      | K.System.Ok _ -> ()
      | K.System.Killed m | K.System.Panicked m ->
          Alcotest.failf "%s: switch back failed: %s" name m);
      Alcotest.(check int) (name ^ ": current is init") 1
        (K.System.current sys).K.System.pid)
    configs

let test_static_work () =
  (* The DECLARE_WORK instance was signed at boot via .pauth_static; it
     must dispatch correctly. *)
  let sys = boot () in
  let work = K.System.kernel_symbol sys "static_work" in
  (match K.System.run_work sys ~work_va:work with
  | K.System.Ok v -> Alcotest.(check int64) "work_counter incremented" 1L v
  | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "work failed: %s" m);
  let counter = K.System.kernel_symbol sys "work_counter_cell" in
  Alcotest.(check int64) "counter cell" 1L (K.Kmem.read64 (K.System.cpu sys) counter)

let test_user_program_syscalls () =
  let sys = boot () in
  let prog = Asm.create () in
  (* user program: open, write 8 bytes from user stack, getpid, exit *)
  Asm.add_function prog ~name:"main"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_open);
      (* x0 = fd *)
      Asm.ins (Insn.Mov (Insn.R 19, Insn.R 0));
      (* write some bytes from the user data page *)
      Asm.ins (Insn.Movz (Insn.R 9, 0xabcd, 0));
      Asm.ins (Insn.Movz (Insn.R 1, 0, 0));
      Asm.ins (Insn.Movk (Insn.R 1, 0x0080, 16));
      (* x1 = 0x800000 = user_data_base *)
      Asm.ins (Insn.Str (Insn.R 9, Insn.Off (Insn.R 1, 0)));
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 19));
      Asm.ins (Insn.Movz (Insn.R 2, 8, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_write);
      Asm.ins (Insn.Svc K.Kbuild.sys_getpid);
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  let layout = K.System.map_user_program sys prog in
  match K.System.run_user sys ~entry:(Asm.symbol layout "main") with
  | K.System.Exited pid -> Alcotest.(check int64) "exit code = getpid = 1" 1L pid
  | K.System.User_killed m -> Alcotest.failf "killed: %s" m
  | K.System.User_panicked m -> Alcotest.failf "panicked: %s" m
  | K.System.Watchdog_expired _ as e -> Alcotest.failf "%s" (K.System.user_exit_to_string e)

let test_user_cannot_touch_kernel () =
  let sys = boot () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    [
      (* try to read a kernel address directly *)
      Asm.ins (Insn.Movz (Insn.R 1, 0xffff, 48));
      Asm.ins (Insn.Ldr (Insn.R 0, Insn.Off (Insn.R 1, 0)));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  let layout = K.System.map_user_program sys prog in
  match K.System.run_user sys ~entry:(Asm.symbol layout "main") with
  | K.System.User_killed "SIGSEGV" -> ()
  | other ->
      Alcotest.failf "expected SIGSEGV, got %s"
        (match other with
        | K.System.Exited v -> Printf.sprintf "exit %Ld" v
        | K.System.User_killed m -> m
        | K.System.User_panicked m -> "panic " ^ m
        | K.System.Watchdog_expired _ as e -> K.System.user_exit_to_string e)

let test_module_load_and_reject () =
  let sys = boot () in
  (* a benign module: one function calling an exported kernel helper *)
  let benign =
    Kelf.Object_file.add_function
      (Kelf.Object_file.empty "benign_mod")
      ~name:"mod_entry"
      (let f =
         C.Instrument.wrap (K.System.config sys) ~name:"mod_entry"
           [ Asm.ins (Insn.Movz (Insn.R 0, 123, 0)) ]
       in
       f.C.Instrument.items)
  in
  (match K.System.load_module sys benign with
  | Result.Ok placed ->
      let entry = Kelf.Loader.symbol placed "mod_entry" in
      Cpu.set_el (K.System.cpu sys) El.El1;
      Cpu.set_sp_of (K.System.cpu sys) El.El1
        (K.Layout.task_stack_top ~slot:(K.System.current sys).K.System.slot);
      (match Cpu.call (K.System.cpu sys) entry with
      | Cpu.Sentinel_return ->
          Alcotest.(check int64) "module entry ran" 123L
            (Cpu.reg (K.System.cpu sys) (Insn.R 0))
      | other -> Alcotest.failf "module entry: %s" (Cpu.stop_to_string other))
  | Result.Error e -> Alcotest.failf "benign module rejected: %s" (Kelf.Loader.error_to_string e));
  (* a malicious module that tries to read a key register *)
  let malicious =
    Kelf.Object_file.add_function
      (Kelf.Object_file.empty "spy_mod")
      ~name:"spy_entry"
      [
        Asm.ins (Insn.Mrs (Insn.R 0, Sysreg.APIBKeyLo_EL1));
        Asm.ins Insn.Ret;
      ]
  in
  match K.System.load_module sys malicious with
  | Result.Ok _ -> Alcotest.fail "malicious module accepted"
  | Result.Error (Kelf.Loader.Verification_failed vs) ->
      Alcotest.(check bool) "at least one violation" true (List.length vs >= 1)
  | Result.Error e -> Alcotest.failf "unexpected error: %s" (Kelf.Loader.error_to_string e)

let test_key_confidentiality () =
  (* The XOM page cannot be read from EL1: the attacker's arbitrary-read
     syscall faults on it, while it executes fine. *)
  let sys = boot () in
  let setter = (K.System.xom sys).K.Xom.setter_addr in
  match K.System.syscall sys ~nr:K.Kbuild.sys_vuln_read ~args:[ setter ] with
  | K.System.Ok v -> Alcotest.failf "read XOM returned 0x%Lx" v
  | K.System.Killed _ -> ()
  | K.System.Panicked m -> Alcotest.failf "unexpected panic: %s" m

let test_vuln_syscalls_work () =
  (* The planted bug does give arbitrary read/write of normal kernel
     memory — the paper's threat model. *)
  let sys = boot () in
  let cell = K.System.kernel_symbol sys "work_counter_cell" in
  let v =
    expect_ok "vuln write"
      (K.System.syscall sys ~nr:K.Kbuild.sys_vuln_write ~args:[ cell; 77L ])
  in
  Alcotest.(check int64) "write ok" 0L v;
  let v =
    expect_ok "vuln read" (K.System.syscall sys ~nr:K.Kbuild.sys_vuln_read ~args:[ cell ])
  in
  Alcotest.(check int64) "read back" 77L v

let test_rodata_immutable () =
  (* Writing the syscall table (rodata, stage-2 protected) must fail
     even with the arbitrary-write bug. *)
  let sys = boot () in
  let table = K.System.kernel_symbol sys "sys_call_table" in
  match K.System.syscall sys ~nr:K.Kbuild.sys_vuln_write ~args:[ table; 0xbadL ] with
  | K.System.Ok _ -> Alcotest.fail "rodata was writable"
  | K.System.Killed _ -> ()
  | K.System.Panicked m -> Alcotest.failf "unexpected panic: %s" m

let test_pac_failure_threshold_panics () =
  let config = { C.Config.full with bruteforce_threshold = 3 } in
  let sys = boot ~config () in
  (* Corrupt a signed pointer then use it, repeatedly: open a file, smash
     its f_ops with a fake value, and read. *)
  let ubuf = K.Layout.user_data_base in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:ubuf ~bytes:4096 Mmu.rw;
  let attempts = ref 0 in
  let rec attack n =
    if n = 0 then ()
    else begin
      incr attempts;
      let fd =
        expect_ok "open" (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ])
      in
      let task = (K.System.current sys).K.System.va in
      let file =
        K.Kmem.read64 (K.System.cpu sys)
          (Int64.add task
             (Int64.of_int (K.Kobject.Task.off_fd_table + (8 * Int64.to_int fd))))
      in
      let fops_field = Int64.add file (Int64.of_int K.Kobject.File.off_f_ops) in
      (match
         K.System.syscall sys ~nr:K.Kbuild.sys_vuln_write
           ~args:[ fops_field; 0xffff0000dead0000L ]
       with
      | K.System.Ok _ -> ()
      | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "corrupt: %s" m);
      match K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ fd; ubuf; 8L ] with
      | K.System.Ok _ -> Alcotest.fail "corrupted f_ops accepted"
      | K.System.Killed _ -> attack (n - 1)
      | K.System.Panicked _ -> ()
    end
  in
  attack 3;
  Alcotest.(check bool) "system panicked at threshold" true (K.System.panicked sys);
  Alcotest.(check int) "failures recorded" 3
    (C.Bruteforce.failures (K.System.bruteforce sys))

let suite =
  [
    Alcotest.test_case "boot all configurations" `Quick test_boot_all_configs;
    Alcotest.test_case "getpid" `Quick test_getpid;
    Alcotest.test_case "open/write/read across configs" `Quick test_open_write_read;
    Alcotest.test_case "bad fd handling" `Quick test_bad_fd;
    Alcotest.test_case "stat/fstat" `Quick test_stat_fstat;
    Alcotest.test_case "notifier register/call" `Quick test_notifiers;
    Alcotest.test_case "pipe roundtrip" `Quick test_pipe;
    Alcotest.test_case "fork + context switch across configs" `Quick test_fork_and_switch;
    Alcotest.test_case "DECLARE_WORK static signing" `Quick test_static_work;
    Alcotest.test_case "user program making syscalls" `Quick test_user_program_syscalls;
    Alcotest.test_case "user cannot touch kernel memory" `Quick
      test_user_cannot_touch_kernel;
    Alcotest.test_case "module load + malicious rejection" `Quick
      test_module_load_and_reject;
    Alcotest.test_case "key confidentiality via XOM" `Quick test_key_confidentiality;
    Alcotest.test_case "vulnerable syscalls give kernel r/w" `Quick
      test_vuln_syscalls_work;
    Alcotest.test_case "rodata immutable despite bug" `Quick test_rodata_immutable;
    Alcotest.test_case "PAC failure threshold panics" `Quick
      test_pac_failure_threshold_panics;
  ]

(* Preemptive scheduling tests. *)

let counting_program ~rounds =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"counter"
    [
      Asm.ins (Insn.Movz (Insn.R 20, rounds, 0));
      Asm.ins (Insn.Movz (Insn.R 21, 0, 0));
      Asm.label "round";
      Asm.ins (Insn.Add_imm (Insn.R 21, Insn.R 21, 1));
      Asm.ins (Insn.Svc K.Kbuild.sys_getpid);
      Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
      Asm.cbnz_to (Insn.R 20) "round";
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 21));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  prog

let test_scheduler_runs_all_tasks () =
  List.iter
    (fun (name, config, has_pauth) ->
      let sys = boot ~config ~has_pauth () in
      let layout = K.System.map_user_program sys (counting_program ~rounds:40) in
      let entry = Asm.symbol layout "counter" in
      let tasks = List.init 3 (fun _ -> K.System.spawn_user_task sys ~entry) in
      let stats = K.System.run_scheduled ~quantum:60 sys ~tasks in
      Alcotest.(check int) (name ^ ": all exited") 3
        (List.length stats.K.System.exits);
      List.iter
        (fun (pid, exit) ->
          match exit with
          | K.System.Exited v ->
              Alcotest.(check int64) (Printf.sprintf "%s: pid %d counted" name pid) 40L v
          | K.System.User_killed m | K.System.User_panicked m ->
              Alcotest.failf "%s: pid %d died: %s" name pid m
          | K.System.Watchdog_expired _ as e ->
              Alcotest.failf "%s: pid %d: %s" name pid (K.System.user_exit_to_string e))
        stats.K.System.exits;
      Alcotest.(check bool) (name ^ ": preempted at least once") true
        (stats.K.System.preemptions > 0))
    configs

let test_scheduler_isolates_crashes () =
  let sys = boot () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"good"
    [ Asm.ins (Insn.Movz (Insn.R 0, 7, 0)); Asm.ins (Insn.Svc K.Kbuild.sys_exit) ];
  Asm.add_function prog ~name:"crasher"
    [
      Asm.ins (Insn.Movz (Insn.R 1, 0xffff, 48));
      Asm.ins (Insn.Ldr (Insn.R 0, Insn.Off (Insn.R 1, 0)));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  let layout = K.System.map_user_program sys prog in
  let t1 = K.System.spawn_user_task sys ~entry:(Asm.symbol layout "crasher") in
  let t2 = K.System.spawn_user_task sys ~entry:(Asm.symbol layout "good") in
  let stats = K.System.run_scheduled ~quantum:50 sys ~tasks:[ t1; t2 ] in
  let lookup pid = List.assoc pid stats.K.System.exits in
  (match lookup t1.K.System.pid with
  | K.System.User_killed "SIGSEGV" -> ()
  | _ -> Alcotest.fail "crasher should segfault");
  match lookup t2.K.System.pid with
  | K.System.Exited 7L -> ()
  | _ -> Alcotest.fail "good task should survive the crash of its sibling"

let suite =
  suite
  @ [
      Alcotest.test_case "preemptive scheduler across configs" `Slow
        test_scheduler_runs_all_tasks;
      Alcotest.test_case "scheduler isolates crashing tasks" `Quick
        test_scheduler_isolates_crashes;
    ]

let test_integrity_monitor () =
  let sys = boot () in
  Alcotest.(check bool) "clean table verifies" true (K.System.verify_syscall_table sys);
  (* tamper with the table bypassing stage 2 (modeling a protection
     lapse): the monitor must notice *)
  let table = K.System.kernel_symbol sys "sys_call_table" in
  let saved = K.Kmem.read64 (K.System.cpu sys) (Int64.add table 8L) in
  K.Kmem.write64 (K.System.cpu sys) (Int64.add table 8L) 0xffff0000deadbeefL;
  Alcotest.(check bool) "tampered table detected" false
    (K.System.verify_syscall_table sys);
  K.Kmem.write64 (K.System.cpu sys) (Int64.add table 8L) saved;
  Alcotest.(check bool) "restored table verifies" true
    (K.System.verify_syscall_table sys);
  (* inactive without PAuth *)
  let sys0 = boot ~config:C.Config.compat ~has_pauth:false () in
  Alcotest.(check bool) "inactive on v8.0" true (K.System.verify_syscall_table sys0)

let suite =
  suite
  @ [
      Alcotest.test_case "PACGA integrity monitor (GA key)" `Quick
        test_integrity_monitor;
    ]

(* The hardened syscall ABI (Section 8 future work): read with a
   DA-signed buffer pointer. *)

let secure_read_program ~sign =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    ([
       Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
       Asm.ins (Insn.Svc K.Kbuild.sys_open);
       Asm.ins (Insn.Mov (Insn.R 19, Insn.R 0));
       (* buffer pointer in x1 *)
       Asm.ins (Insn.Movz (Insn.R 1, 0, 0));
       Asm.ins (Insn.Movk (Insn.R 1, 0x0080, 16));
     ]
    @ (if sign then
         [ Asm.ins (Insn.Movz (Insn.R 9, 0, 0)); Asm.ins (Insn.Pac (Sysreg.DA, Insn.R 1, Insn.R 9)) ]
       else [])
    @ [
        Asm.ins (Insn.Mov (Insn.R 0, Insn.R 19));
        Asm.ins (Insn.Movz (Insn.R 2, 16, 0));
        Asm.ins (Insn.Svc K.Kbuild.sys_read_secure);
        Asm.ins (Insn.Svc K.Kbuild.sys_exit);
      ]);
  prog

let test_secure_read_signed () =
  let sys = boot () in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base ~bytes:4096
    Mmu.rw;
  let layout = K.System.map_user_program sys (secure_read_program ~sign:true) in
  match K.System.run_user sys ~entry:(Asm.symbol layout "main") with
  | K.System.Exited v -> Alcotest.(check int64) "read 16 bytes" 16L v
  | other ->
      Alcotest.failf "signed secure read: %s"
        (match other with
        | K.System.User_killed m | K.System.User_panicked m -> m
        | K.System.Watchdog_expired _ as e -> K.System.user_exit_to_string e
        | K.System.Exited _ -> assert false)

let test_secure_read_unsigned_rejected () =
  let sys = boot () in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base ~bytes:4096
    Mmu.rw;
  let layout = K.System.map_user_program sys (secure_read_program ~sign:false) in
  match K.System.run_user sys ~entry:(Asm.symbol layout "main") with
  | K.System.User_killed _ -> ()
  | K.System.Exited v -> Alcotest.failf "unsigned pointer accepted (ret %Ld)" v
  | K.System.User_panicked m -> Alcotest.failf "panic: %s" m
  | K.System.Watchdog_expired _ as e -> Alcotest.failf "%s" (K.System.user_exit_to_string e)

let test_plain_read_still_works () =
  (* the hardened ABI is additive: the legacy read path is unchanged *)
  let sys = boot () in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base ~bytes:4096
    Mmu.rw;
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_open);
      Asm.ins (Insn.Movz (Insn.R 1, 0, 0));
      Asm.ins (Insn.Movk (Insn.R 1, 0x0080, 16));
      Asm.ins (Insn.Movz (Insn.R 2, 16, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_read);
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  let layout = K.System.map_user_program sys prog in
  match K.System.run_user sys ~entry:(Asm.symbol layout "main") with
  | K.System.Exited v -> Alcotest.(check int64) "read 16" 16L v
  | other ->
      Alcotest.failf "plain read: %s"
        (match other with
        | K.System.User_killed m | K.System.User_panicked m -> m
        | K.System.Watchdog_expired _ as e -> K.System.user_exit_to_string e
        | K.System.Exited _ -> assert false)

let suite =
  suite
  @ [
      Alcotest.test_case "hardened ABI: signed buffer accepted" `Quick
        test_secure_read_signed;
      Alcotest.test_case "hardened ABI: unsigned buffer rejected" `Quick
        test_secure_read_unsigned_rejected;
      Alcotest.test_case "hardened ABI is additive" `Quick test_plain_read_still_works;
    ]

(* Sockets, poll and timers: the additional protected-pointer surfaces. *)

let test_socketpair_roundtrip () =
  List.iter
    (fun (name, config, has_pauth) ->
      let sys = boot ~config ~has_pauth () in
      let ubuf = K.Layout.user_data_base in
      K.Kmem.map_user_region (K.System.cpu sys) ~base:ubuf ~bytes:4096 Mmu.rw;
      let fd1 =
        expect_ok "socketpair" (K.System.syscall sys ~nr:K.Kbuild.sys_socketpair ~args:[])
      in
      Alcotest.(check bool) (name ^ ": got fd") true (fd1 >= 3L);
      let fd2 = Int64.add fd1 1L in
      write_user_bytes sys ubuf "socket-payload!!";
      let sent =
        expect_ok "send"
          (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ fd1; ubuf; 16L ])
      in
      Alcotest.(check int64) (name ^ ": sent") 16L sent;
      let dst = Int64.add ubuf 512L in
      let got =
        expect_ok "recv"
          (K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ fd2; dst; 16L ])
      in
      Alcotest.(check int64) (name ^ ": received") 16L got;
      Alcotest.(check string)
        (name ^ ": payload")
        "socket-payload!!" (read_user_bytes sys dst 16);
      (* reading the other direction: nothing available *)
      let got =
        expect_ok "empty recv"
          (K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ fd1; dst; 16L ])
      in
      Alcotest.(check int64) (name ^ ": empty") 0L got)
    configs

let test_poll () =
  let sys = boot () in
  let ubuf = K.Layout.user_data_base in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:ubuf ~bytes:4096 Mmu.rw;
  (* one ramfs fd with data (pos > 0 after write), one without, one
     socket pair with one pending direction *)
  let fd_data = expect_ok "open" (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ]) in
  let fd_empty = expect_ok "open" (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ]) in
  ignore (expect_ok "write" (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ fd_data; ubuf; 8L ]));
  let sfd = expect_ok "sp" (K.System.syscall sys ~nr:K.Kbuild.sys_socketpair ~args:[]) in
  ignore (expect_ok "send" (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ sfd; ubuf; 4L ]));
  (* fds array in user memory: fd_data, fd_empty, sfd (no rx), sfd+1 (rx) *)
  let arr = Int64.add ubuf 2048L in
  List.iteri
    (fun idx fd -> K.Kmem.write64 (K.System.cpu sys) (Int64.add arr (Int64.of_int (8 * idx))) fd)
    [ fd_data; fd_empty; sfd; Int64.add sfd 1L ];
  let ready =
    expect_ok "poll" (K.System.syscall sys ~nr:K.Kbuild.sys_poll ~args:[ arr; 4L ])
  in
  Alcotest.(check int64) "two ready" 2L ready

let test_timers () =
  let sys = boot () in
  (* slot 1, zero delay, handler 1 = notifier_count *)
  let v =
    expect_ok "timer_set"
      (K.System.syscall sys ~nr:K.Kbuild.sys_timer_set ~args:[ 1L; 0L; 1L ])
  in
  Alcotest.(check int64) "armed" 0L v;
  (match K.System.run_timers sys with
  | K.System.Ok _ -> ()
  | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "run_timers: %s" m);
  let counter = K.System.kernel_symbol sys "notifier_count_cell" in
  Alcotest.(check int64) "fired once" 1L (K.Kmem.read64 (K.System.cpu sys) counter);
  (* a fired slot does not fire again *)
  (match K.System.run_timers sys with
  | K.System.Ok _ -> ()
  | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "run_timers 2: %s" m);
  Alcotest.(check int64) "one-shot" 1L (K.Kmem.read64 (K.System.cpu sys) counter);
  (* a timer far in the future does not fire *)
  ignore
    (expect_ok "timer_set far"
       (K.System.syscall sys ~nr:K.Kbuild.sys_timer_set ~args:[ 2L; 1000000000L; 1L ]));
  (match K.System.run_timers sys with
  | K.System.Ok _ -> ()
  | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "run_timers 3: %s" m);
  Alcotest.(check int64) "not yet" 1L (K.Kmem.read64 (K.System.cpu sys) counter)

let test_timer_hijack_detected () =
  (* the timer callback is a protected lone function pointer: a raw
     overwrite through the kernel bug must be caught at dispatch *)
  let sys = boot () in
  ignore
    (expect_ok "timer_set"
       (K.System.syscall sys ~nr:K.Kbuild.sys_timer_set ~args:[ 0L; 0L; 0L ]));
  let slab = K.System.kernel_symbol sys "timer_slab" in
  let gadget = K.System.kernel_symbol sys "work_counter" in
  (match
     K.System.syscall sys ~nr:K.Kbuild.sys_vuln_write
       ~args:[ Int64.add slab (Int64.of_int K.Kobject.Timer.off_func); gadget ]
   with
  | K.System.Ok _ -> ()
  | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "corrupt: %s" m);
  match K.System.run_timers sys with
  | K.System.Killed m when String.length m >= 3 && String.sub m 0 3 = "PAC" -> ()
  | other ->
      Alcotest.failf "expected PAC failure, got %s"
        (match other with
        | K.System.Ok v -> Printf.sprintf "ok %Ld" v
        | K.System.Killed m | K.System.Panicked m -> m)

let suite =
  suite
  @ [
      Alcotest.test_case "socketpair send/recv across configs" `Quick
        test_socketpair_roundtrip;
      Alcotest.test_case "poll authenticates per-fd ops" `Quick test_poll;
      Alcotest.test_case "timers: arm, fire once, future" `Quick test_timers;
      Alcotest.test_case "timer callback hijack detected" `Quick
        test_timer_hijack_detected;
    ]

let test_console () =
  let sys = boot () in
  let ubuf = K.Layout.user_data_base in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:ubuf ~bytes:4096 Mmu.rw;
  write_user_bytes sys ubuf "hello, console";
  let wrote =
    expect_ok "write fd1" (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ 1L; ubuf; 14L ])
  in
  Alcotest.(check int64) "wrote" 14L wrote;
  write_user_bytes sys ubuf "!\n";
  ignore (expect_ok "write fd2" (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ 2L; ubuf; 2L ]));
  Alcotest.(check string) "console collected" "hello, console!\n"
    (K.System.console_output sys);
  (* reading the console yields EOF *)
  let got =
    expect_ok "read fd1" (K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ 1L; ubuf; 8L ])
  in
  Alcotest.(check int64) "console EOF" 0L got;
  (* forked children inherit the console *)
  match K.System.fork sys with
  | Result.Error m -> Alcotest.failf "fork: %s" m
  | Result.Ok child -> (
      match K.System.switch_to sys child with
      | K.System.Ok _ ->
          write_user_bytes sys ubuf "child";
          ignore
            (expect_ok "child write"
               (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ 1L; ubuf; 5L ]));
          Alcotest.(check string) "appended" "hello, console!\nchild"
            (K.System.console_output sys)
      | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "switch: %s" m)

let suite =
  suite @ [ Alcotest.test_case "console device on fd 1/2" `Quick test_console ]

(* Watchdog and structured oops records. *)

let counting_loop ~iters ~exit_code =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    [
      Asm.ins (Insn.Movz (Insn.R 20, iters, 0));
      Asm.label "work";
      Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
      Asm.cbnz_to (Insn.R 20) "work";
      Asm.ins (Insn.Movz (Insn.R 0, exit_code, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  prog

let test_watchdog_retries_transient_stall () =
  let sys = boot () in
  let layout = K.System.map_user_program sys (counting_loop ~iters:80 ~exit_code:99) in
  (* ~163 instructions of work against a 100-instruction budget: the
     first attempt blows the budget, the doubled retry completes *)
  match K.System.run_user sys ~max_insns:100 ~watchdog_retries:2 ~entry:(Asm.symbol layout "main") with
  | K.System.Exited v ->
      Alcotest.(check int64) "completed on retry" 99L v;
      Alcotest.(check bool) "watchdog logged the grace period" true
        (List.exists
           (fun line ->
             let n = String.length line in
             let rec go i = i + 8 <= n && (String.sub line i 8 = "watchdog" || go (i + 1)) in
             go 0)
           (K.System.log sys))
  | other -> Alcotest.failf "expected recovery: %s" (K.System.user_exit_to_string other)

let test_watchdog_escalates_genuine_hang () =
  let sys = boot () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    [ Asm.label "spin"; Asm.ins (Insn.Add_imm (Insn.R 9, Insn.R 9, 1)); Asm.b_to "spin" ];
  let layout = K.System.map_user_program sys prog in
  match K.System.run_user sys ~max_insns:50 ~watchdog_retries:2 ~entry:(Asm.symbol layout "main") with
  | K.System.Watchdog_expired { budget; retries } ->
      Alcotest.(check int) "two grace periods granted" 2 retries;
      Alcotest.(check int) "budget doubled twice" 200 budget;
      (* the escalation leaves a structured oops with a register dump *)
      (match K.System.oopses sys with
      | [] -> Alcotest.fail "no oops recorded"
      | o :: _ ->
          Alcotest.(check int) "oops on the boot cpu" 0 o.K.System.oops_cpu;
          Alcotest.(check bool) "cause names the watchdog" true
            (String.length o.K.System.oops_cause >= 8
             && String.sub o.K.System.oops_cause 0 8 = "watchdog");
          Alcotest.(check bool) "dump carries the trace ring" true
            (String.length o.K.System.oops_dump > 0))
  | other -> Alcotest.failf "expected escalation: %s" (K.System.user_exit_to_string other)

let test_kernel_oops_records_cpu_dump () =
  let sys = boot () in
  (* arbitrary-write syscall against an unmapped kernel address: the
     handler faults, the task is killed, and the oops captures state *)
  (match Attacks.Primitives.kwrite sys 0xffff0000deadb000L 1L with
  | Result.Error _ -> ()
  | Result.Ok () -> Alcotest.fail "write to unmapped kernel memory succeeded");
  match K.System.oopses sys with
  | [] -> Alcotest.fail "no oops recorded"
  | o :: _ ->
      let dump = o.K.System.oops_dump in
      let has sub =
        let n = String.length sub and m = String.length dump in
        let rec go i = i + n <= m && (String.sub dump i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "dump shows the register file" true (has "x0 ");
      Alcotest.(check bool) "dump shows the trace ring" true (has "trace");
      Alcotest.(check bool) "dump names the core" true (has "cpu0")

let suite =
  suite
  @ [
      Alcotest.test_case "watchdog retries a transient stall" `Quick
        test_watchdog_retries_transient_stall;
      Alcotest.test_case "watchdog escalates a genuine hang" `Quick
        test_watchdog_escalates_genuine_hang;
      Alcotest.test_case "kernel oops records a CPU dump" `Quick
        test_kernel_oops_records_cpu_dump;
    ]
