(* PR 8: copy-on-write snapshots, deterministic record-replay and
   fault-tolerant fleet execution. The load-bearing property is
   restore-then-run ≡ boot-then-run, pinned by state fingerprints at
   the machine level (QCheck over seeds, single-core and SMP), by
   replay-log byte identity across worker counts, and by the
   quarantine path leaving every other trial's report bytes alone. *)

open Aarch64
module C = Camouflage
module K = Kernel
module FC = Faultinj.Campaign
module L = Snapshot.Log

(* --- Mem: the copy-on-write unit ---------------------------------- *)

let test_mem_cow_restore () =
  let mem = Mem.create () in
  Mem.write64 mem 0x1000L 0xaaL;
  Mem.write64 mem 0x20000L 0xbbL;
  let snap = Mem.snapshot mem in
  Alcotest.(check int) "no dirty frames at capture" 0 (Mem.snapshot_dirty snap);
  Alcotest.(check bool) "every frame captured" true (Mem.snapshot_frames snap >= 2);
  (* dirty one captured frame, allocate one new frame *)
  Mem.write64 mem 0x1000L 0xdeadL;
  Mem.write64 mem 0x90000L 0xccL;
  Alcotest.(check int) "write hook tracked both dirty frames" 2
    (Mem.snapshot_dirty snap);
  Mem.restore mem snap;
  Alcotest.(check int64) "dirty frame rolled back" 0xaaL (Mem.read64 mem 0x1000L);
  Alcotest.(check int64) "untouched frame intact" 0xbbL (Mem.read64 mem 0x20000L);
  Alcotest.(check int64) "post-snapshot frame zeroed" 0L (Mem.read64 mem 0x90000L);
  Alcotest.(check int) "dirty set drained" 0 (Mem.snapshot_dirty snap);
  (* a second divergence from the same snapshot restores just as well *)
  Mem.write64 mem 0x1000L 0xbeefL;
  Mem.restore mem snap;
  Alcotest.(check int64) "snapshot is reusable" 0xaaL (Mem.read64 mem 0x1000L)

(* --- restore-then-run ≡ boot-then-run ----------------------------- *)

let boot_workload ~cpus ~tasks ~seed =
  let sys = K.System.boot ~config:C.Config.full ~seed ~cpus () in
  let layout = K.System.map_user_program sys (FC.workload_program ~rounds:4) in
  let entry = Asm.symbol layout "main" in
  let spawned = List.init tasks (fun _ -> K.System.spawn_user_task sys ~entry) in
  (sys, spawned)

let run_to_fingerprint sys spawned =
  ignore (K.System.run_smp ~quantum:300 ~max_slices:200 sys ~tasks:spawned);
  Snapshot.Fingerprint.of_system sys

let prop_restore_equals_boot ~name ~cpus ~tasks =
  QCheck2.Test.make ~name ~count:4
    QCheck2.Gen.(map Int64.of_int (int_range 1 100_000))
    (fun seed ->
      let sys, spawned = boot_workload ~cpus ~tasks ~seed in
      let snap = K.System.snapshot sys in
      let booted = run_to_fingerprint sys spawned in
      K.System.restore sys snap;
      let restored = run_to_fingerprint sys spawned in
      let sys2, spawned2 = boot_workload ~cpus ~tasks ~seed in
      let fresh = run_to_fingerprint sys2 spawned2 in
      booted = restored && booted = fresh)

let prop_single_core =
  prop_restore_equals_boot
    ~name:"restore-then-run = boot-then-run (single core)" ~cpus:1 ~tasks:2

let prop_smp =
  prop_restore_equals_boot ~name:"restore-then-run = boot-then-run (SMP)"
    ~cpus:2 ~tasks:4

(* An unallocated frame reads as zeroes, and Mem.restore zero-fills (but
   does not deallocate) frames created after the capture — so the
   fingerprint must treat an all-zero frame as absent, or each trial's
   allocation history would leak into the next trial's fingerprint and
   break worker-count independence of replay logs. *)
let test_fingerprint_ignores_zero_frames () =
  let sys, _ = boot_workload ~cpus:1 ~tasks:1 ~seed:5L in
  let mem = Machine.mem (K.System.machine sys) in
  let before = Snapshot.Fingerprint.of_system sys in
  let frames = Mem.frames_allocated mem in
  (* touch a frame far outside the booted image, then zero it back *)
  Mem.write64 mem 0x7000_0000L 0x1234L;
  Alcotest.(check bool) "write allocated a new frame" true
    (Mem.frames_allocated mem > frames);
  Alcotest.(check bool) "dirty frame changes the fingerprint" true
    (Snapshot.Fingerprint.of_system sys <> before);
  Mem.write64 mem 0x7000_0000L 0L;
  Alcotest.(check string) "zeroed frame = absent frame" before
    (Snapshot.Fingerprint.of_system sys)

let test_fingerprint_distinguishes_seeds () =
  let fp seed =
    let sys, spawned = boot_workload ~cpus:2 ~tasks:3 ~seed in
    run_to_fingerprint sys spawned
  in
  Alcotest.(check bool) "different seeds, different states" true
    (fp 7L <> fp 8L)

(* --- session trials = fresh-boot trials --------------------------- *)

let test_session_trial_matches_fresh_boot () =
  let seed = 11L in
  let golden = FC.golden_run ~seed () in
  let ses = FC.create_session ~seed () in
  Alcotest.(check int64) "session golden = fresh golden"
    golden.FC.g_makespan (FC.session_golden ses).FC.g_makespan;
  for index = 0 to 3 do
    let fresh, _ = FC.run_random_trial ~golden ~seed ~index () in
    let forked = FC.run_random_trial_in ses ~index () in
    let t = forked.FC.tr_trial in
    Alcotest.(check string)
      (Printf.sprintf "trial %d spec" index)
      fresh.FC.spec_desc t.FC.spec_desc;
    Alcotest.(check string)
      (Printf.sprintf "trial %d outcome" index)
      (FC.outcome_name fresh.FC.outcome)
      (FC.outcome_name t.FC.outcome);
    Alcotest.(check string)
      (Printf.sprintf "trial %d detail" index)
      fresh.FC.detail t.FC.detail;
    Alcotest.(check int64)
      (Printf.sprintf "trial %d makespan" index)
      fresh.FC.makespan t.FC.makespan;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d fired" index)
      fresh.FC.fired t.FC.fired
  done

(* --- record-replay ------------------------------------------------- *)

let tmpdir =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "camouflage-snap-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let record ~workers ~sub =
  let dir = Filename.concat tmpdir sub in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let result =
    Option.get
      (Fleet.Campaign.run ~workers ~record_dir:dir ~seed:21L ~trials:6 ())
  in
  Option.get result.Fleet.Campaign.record_path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_replay_log_byte_identical_across_workers () =
  let p1 = record ~workers:1 ~sub:"w1" in
  let p2 = record ~workers:2 ~sub:"w2" in
  let p8 = record ~workers:8 ~sub:"w8" in
  let b1 = read_file p1 in
  Alcotest.(check string) "log bytes: 1 worker = 2 workers" b1 (read_file p2);
  Alcotest.(check string) "log bytes: 1 worker = 8 workers" b1 (read_file p8);
  (* parse → render round-trips to the identical bytes *)
  match L.parse b1 with
  | Error e -> Alcotest.fail ("log failed to parse: " ^ e)
  | Ok log ->
      Alcotest.(check string) "parse/render round-trip" b1 (L.to_string log);
      Alcotest.(check int) "one entry per trial" 6 (List.length log.L.entries)

let test_replay_matches_recording () =
  let log = Result.get_ok (L.read ~path:(record ~workers:2 ~sub:"replay")) in
  match Faultinj.Replay.replay log with
  | Error e -> Alcotest.fail ("replay refused: " ^ e)
  | Ok verdicts ->
      Alcotest.(check int) "every trial replayed" 6 (List.length verdicts);
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "trial %d byte-identical" v.Faultinj.Replay.v_index)
            true
            (Faultinj.Replay.verdict_ok v))
        verdicts

let test_replay_detects_divergence () =
  let log = Result.get_ok (L.read ~path:(record ~workers:1 ~sub:"diverge")) in
  (* corrupt one recorded fingerprint: replay must flag exactly that
     trial and leave the others clean *)
  let mangle e =
    if e.L.e_index <> 2 then e
    else { e with L.e_fingerprint = String.map (fun _ -> '0') e.L.e_fingerprint }
  in
  let bad = { log with L.entries = List.map mangle log.L.entries } in
  (match Faultinj.Replay.replay ~index:2 bad with
  | Error e -> Alcotest.fail ("replay refused: " ^ e)
  | Ok [ v ] ->
      Alcotest.(check bool) "divergence detected" false
        (Faultinj.Replay.verdict_ok v);
      Alcotest.(check bool) "spec still matches" true v.Faultinj.Replay.v_spec_ok;
      Alcotest.(check bool) "fingerprint mismatch flagged" false
        v.Faultinj.Replay.v_fingerprint_ok
  | Ok vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs)));
  (* a mangled golden fingerprint is refused before any trial runs *)
  let header =
    { bad.L.header with L.h_golden_fingerprint = String.make 32 '0' }
  in
  (match Faultinj.Replay.replay { bad with L.header } with
  | Error e ->
      Alcotest.(check bool) "golden divergence is explained" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "golden fingerprint divergence not detected");
  match Faultinj.Replay.replay ~index:99 log with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown trial index accepted"

let test_replay_config_names () =
  List.iter
    (fun name ->
      match Faultinj.Replay.config_of_name name with
      | Some _ -> ()
      | None -> Alcotest.fail ("token not resolved: " ^ name))
    [ "full"; "backward"; "compat"; "none"; "sp-only"; "parts"; "chained" ];
  (* the CLI records display names; they resolve to the same configs *)
  (match Faultinj.Replay.config_of_name (C.Config.name C.Config.full) with
  | Some c -> Alcotest.(check bool) "display name round-trips" true (c = C.Config.full)
  | None -> Alcotest.fail "display name not resolved");
  match Faultinj.Replay.config_of_name "no-such-config" with
  | None -> ()
  | Some _ -> Alcotest.fail "junk config name resolved"

(* --- fault-tolerant campaigns -------------------------------------- *)

let test_campaign_failed_job_isolated () =
  let seed = 33L and trials = 8 in
  let baseline = Option.get (Fleet.Campaign.run ~workers:2 ~seed ~trials ()) in
  let poisoned =
    Option.get
      (Fleet.Campaign.run ~workers:2 ~retries:1
         ~job_hook:(fun i -> if i = 3 then failwith "injected job failure")
         ~seed ~trials ())
  in
  (match poisoned.Fleet.Campaign.failures with
  | [ f ] ->
      Alcotest.(check int) "failed trial index" 3 f.Fleet.Pool.job;
      Alcotest.(check int) "attempts recorded" 2 f.Fleet.Pool.attempts
  | fs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly 1 failure, got %d" (List.length fs)));
  let trial_line t = L.entry_to_json (Faultinj.Replay.entry_of_trial ~fingerprint:"" t) in
  let by_index r =
    List.map
      (fun t -> (t.FC.index, trial_line t))
      r.Fleet.Campaign.report.FC.trial_list
  in
  let base = by_index baseline and pois = by_index poisoned in
  Alcotest.(check int) "baseline has every trial" trials (List.length base);
  Alcotest.(check int) "poisoned run lost exactly the failed trial"
    (trials - 1) (List.length pois);
  Alcotest.(check bool) "failed trial absent" true
    (not (List.mem_assoc 3 pois));
  List.iter
    (fun (i, line) ->
      if i <> 3 then
        Alcotest.(check string)
          (Printf.sprintf "trial %d bytes unchanged by the failure" i)
          line
          (List.assoc i pois))
    base

(* --- jsonin error positions ---------------------------------------- *)

let fail_of = function
  | Error e -> e
  | Ok _ -> Alcotest.fail "malformed input accepted"

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_jsonin_error_positions () =
  let e = fail_of (Snapshot.Json.parse "{\n  \"a\": 1,\n  oops}") in
  Alcotest.(check bool)
    (Printf.sprintf "parse error names line 3 (%s)" e)
    true
    (contains "line 3" e);
  let e = fail_of (Snapshot.Json.parse "{\"a\": 1} junk") in
  Alcotest.(check bool)
    (Printf.sprintf "trailing garbage names its position (%s)" e)
    true
    (contains "trailing garbage" e && contains "line 1, column 10" e);
  let e = fail_of (Fleet.Jsonin.parse "[1, 2\n 3]") in
  Alcotest.(check bool)
    (Printf.sprintf "fleet alias reports positions too (%s)" e)
    true (contains "line 2" e);
  Alcotest.(check (pair int int)) "line_col is 1-based" (1, 1)
    (Snapshot.Json.line_col "x" 0);
  Alcotest.(check (pair int int)) "line_col crosses newlines" (2, 2)
    (Snapshot.Json.line_col "ab\ncd" 4)

let suite =
  [
    Alcotest.test_case "mem snapshot: dirty tracking and rollback" `Quick
      test_mem_cow_restore;
    QCheck_alcotest.to_alcotest prop_single_core;
    QCheck_alcotest.to_alcotest prop_smp;
    Alcotest.test_case "fingerprint ignores all-zero frames" `Quick
      test_fingerprint_ignores_zero_frames;
    Alcotest.test_case "fingerprints distinguish different histories" `Quick
      test_fingerprint_distinguishes_seeds;
    Alcotest.test_case "session trials = fresh-boot trials" `Quick
      test_session_trial_matches_fresh_boot;
    Alcotest.test_case "replay log bytes: workers 1 = 2 = 8" `Quick
      test_replay_log_byte_identical_across_workers;
    Alcotest.test_case "replay reproduces every recorded trial" `Quick
      test_replay_matches_recording;
    Alcotest.test_case "replay flags divergence, rejects bad golden" `Quick
      test_replay_detects_divergence;
    Alcotest.test_case "replay resolves both config vocabularies" `Quick
      test_replay_config_names;
    Alcotest.test_case "campaign quarantine leaves other trials' bytes" `Quick
      test_campaign_failed_job_isolated;
    Alcotest.test_case "jsonin errors carry line and column" `Quick
      test_jsonin_error_positions;
  ]
