(* SMP tests: the machine-level IPI doorbell, multi-core boot with
   per-CPU PAuth key installation, the cycle-interleaved scheduler
   (spread, determinism, IPI-driven migration), and the failure mode the
   per-CPU key registers imply: a core that skips the XOM setter faults
   on its first authenticated return. *)

open Aarch64
module C = Camouflage
module K = Kernel

(* Machine: GIC-lite doorbell semantics. *)

let test_ipi_doorbell () =
  let m = Machine.create ~cpus:4 () in
  Alcotest.(check int) "cores" 4 (Machine.cpus m);
  Alcotest.(check int) "nothing pending" 0 (List.length (Machine.pending m ~cpu:2));
  Machine.send_ipi m ~src:0 ~dst:2 Machine.Reschedule;
  Machine.send_ipi m ~src:1 ~dst:2 Machine.Reschedule;
  Machine.send_ipi m ~src:3 ~dst:2 Machine.Stop;
  Alcotest.(check int) "doorbell rings counted" 3 (Machine.ipis_sent m);
  Alcotest.(check int) "two distinct ids pending" 2
    (List.length (Machine.pending m ~cpu:2));
  Alcotest.(check int) "other cores unaffected" 0
    (List.length (Machine.pending m ~cpu:0));
  Alcotest.(check (list int)) "requesters, lowest first" [ 0; 1 ]
    (Machine.ack m ~cpu:2 Machine.Reschedule);
  Alcotest.(check int) "resched acknowledged" 1
    (List.length (Machine.pending m ~cpu:2));
  Alcotest.(check (list int)) "stop requester" [ 3 ] (Machine.ack m ~cpu:2 Machine.Stop);
  Alcotest.(check (list int)) "ack is idempotent" [] (Machine.ack m ~cpu:2 Machine.Stop)

let test_machine_shares_memory () =
  let m = Machine.create ~cpus:2 () in
  let c0 = Machine.core m 0 and c1 = Machine.core m 1 in
  let base = 0xffff000000700000L in
  K.Kmem.map_kernel_region c0 ~base ~bytes:4096 Mmu.rw;
  K.Kmem.write64 c0 base 0x5eedL;
  Alcotest.(check int64) "core 1 reads core 0's store" 0x5eedL (K.Kmem.read64 c1 base);
  Cpu.set_reg c0 (Insn.R 7) 42L;
  Alcotest.(check int64) "register files are private" 0L (Cpu.reg c1 (Insn.R 7))

(* System: SMP boot and scheduling. *)

let user_entry sys ~rounds =
  let layout =
    K.System.map_user_program sys (Workloads.Smp.throughput_program ~rounds)
  in
  Asm.symbol layout "throughput"

let test_smp_boot_installs_keys_per_cpu () =
  let sys = K.System.boot ~seed:7L ~cpus:4 () in
  Alcotest.(check bool) "booted" false (K.System.panicked sys);
  Alcotest.(check int) "four cores" 4 (K.System.cpus sys);
  Alcotest.(check int) "every core holds the kernel keys" 0
    (List.length (K.System.unkeyed_cpus sys));
  (* secondaries parked on idle tasks: init=1, idles=2..4 *)
  Alcotest.(check int) "task population" 4 (List.length (K.System.tasks sys));
  for cid = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "cpu%d executed the setter during bring-up" cid)
      true
      (K.System.key_installs_on sys ~cpu:cid > 0)
  done

let test_run_smp_spreads_tasks () =
  let sys = K.System.boot ~seed:7L ~cpus:4 () in
  let entry = user_entry sys ~rounds:20 in
  let tasks = List.init 8 (fun _ -> K.System.spawn_user_task sys ~entry) in
  let stats = K.System.run_smp ~quantum:600 sys ~tasks in
  Alcotest.(check int) "eight exits" 8 (List.length stats.K.System.smp_exits);
  List.iter
    (fun (_, pid, e) ->
      match e with
      | K.System.Exited _ -> ()
      | other ->
          Alcotest.failf "pid %d did not exit cleanly: %s" pid
            (K.System.user_exit_to_string other))
    stats.K.System.smp_exits;
  let cores_used =
    List.sort_uniq compare (List.map (fun (c, _, _) -> c) stats.K.System.smp_exits)
  in
  Alcotest.(check (list int)) "work finished on all four cores" [ 0; 1; 2; 3 ]
    cores_used;
  for cid = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "cpu%d paid its own key installs" cid)
      true
      (K.System.key_installs_on sys ~cpu:cid > 0)
  done;
  Alcotest.(check bool) "makespan is the busiest core" true
    (Array.for_all
       (fun c -> Int64.compare c stats.K.System.makespan <= 0)
       stats.K.System.per_cpu_cycles)

let smp_fingerprint ~seed ~cpus =
  let sys = K.System.boot ~seed ~cpus () in
  let entry = user_entry sys ~rounds:15 in
  let tasks = List.init 8 (fun _ -> K.System.spawn_user_task sys ~entry) in
  let stats = K.System.run_smp ~quantum:500 sys ~tasks in
  ( List.map (fun (c, p, _) -> (c, p)) stats.K.System.smp_exits,
    stats.K.System.makespan,
    Array.to_list stats.K.System.per_cpu_cycles )

let test_run_smp_deterministic () =
  let a = smp_fingerprint ~seed:11L ~cpus:4 in
  let b = smp_fingerprint ~seed:11L ~cpus:4 in
  Alcotest.(check bool) "same seed and cpu count: identical exit order and clocks"
    true (a = b)

(* Unbalanced load: one core's queue drains early, the busiest core
   rings its doorbell, and a task migrates over. *)
let test_ipi_load_balancing () =
  let sys = K.System.boot ~seed:13L ~cpus:2 () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"long"
    [
      Asm.ins (Insn.Movz (Insn.R 20, 6000, 0));
      Asm.label "lwork";
      Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
      Asm.cbnz_to (Insn.R 20) "lwork";
      Asm.ins (Insn.Movz (Insn.R 0, 0, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  Asm.add_function prog ~name:"short"
    [
      Asm.ins (Insn.Movz (Insn.R 20, 20, 0));
      Asm.label "swork";
      Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
      Asm.cbnz_to (Insn.R 20) "swork";
      Asm.ins (Insn.Movz (Insn.R 0, 0, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  let layout = K.System.map_user_program sys prog in
  let long = Asm.symbol layout "long" and short = Asm.symbol layout "short" in
  (* submission order interleaves, so cpu0 queues the three long tasks
     and cpu1 the three short ones *)
  let tasks =
    List.init 6 (fun idx ->
        K.System.spawn_user_task sys ~entry:(if idx mod 2 = 0 then long else short))
  in
  let stats = K.System.run_smp ~quantum:400 ~balance_interval:4 sys ~tasks in
  Alcotest.(check int) "six exits" 6 (List.length stats.K.System.smp_exits);
  Alcotest.(check bool) "doorbell rang" true (stats.K.System.smp_ipis >= 1);
  Alcotest.(check bool) "a task migrated to the idle core" true
    (stats.K.System.smp_migrations >= 1);
  let migrated_exit_cores =
    List.filter_map
      (fun (c, _, e) ->
        match e with K.System.Exited _ when c = 1 -> Some c | _ -> None)
      stats.K.System.smp_exits
  in
  Alcotest.(check bool) "cpu1 finished pulled work too" true
    (List.length migrated_exit_cores >= 3)

(* The design's sharp edge, demonstrated on a bare machine: keys signed
   while the setter's material was live do not authenticate on a core
   whose key registers were never populated. *)
let test_skipped_install_faults () =
  let m = Machine.create ~cpus:2 () in
  let c0 = Machine.boot_core m and c1 = Machine.core m 1 in
  List.iter
    (fun core ->
      let sctlr =
        List.fold_left
          (fun acc k -> Camo_util.Val64.set_bit (Sysreg.sctlr_enable_bit k) true acc)
          0L
          Sysreg.[ IA; IB; DA; DB ]
      in
      Cpu.set_sysreg core Sysreg.SCTLR_EL1 sctlr)
    (Machine.cores m);
  let hyp = K.Hypervisor.install c0 in
  let rng = Camo_util.Rng.create 99L in
  let xom = K.Xom.install c0 hyp ~rng ~mode:C.Keys.Armv83 in
  (* a return path that loads a stored LR and authenticates it *)
  let code_base = 0xffff000000110000L in
  let data = 0xffff000000112000L in
  K.Kmem.map_kernel_region c0 ~base:code_base ~bytes:4096 Mmu.rx;
  K.Kmem.map_kernel_region c0 ~base:data ~bytes:4096 Mmu.rw;
  let prog = Asm.create () in
  Asm.add_function prog ~name:"resume"
    [
      Asm.ins (Insn.Ldr (Insn.R 30, Insn.Off (Insn.R 0, 0)));
      Asm.ins (Insn.Movz (Insn.R 9, 0, 0));
      Asm.ins (Insn.Aut (Sysreg.IB, Insn.R 30, Insn.R 9));
      Asm.ins Insn.Ret;
    ];
  let layout = Asm.assemble prog ~base:code_base in
  Asm.encode_into layout ~write32:(K.Kmem.write32 c0);
  let resume = Asm.symbol layout "resume" in
  (* sign the sentinel under the real IB key (host mirror), as the
     kernel does for every prefabricated switch frame *)
  let key = List.assoc Sysreg.IB xom.K.Xom.kernel_keys in
  let signed =
    Pac.compute ~cipher:(Machine.cipher m) ~key ~cfg:(Cpu.kernel_cfg c0) ~modifier:0L
      Cpu.sentinel
  in
  K.Kmem.write64 c0 data signed;
  (* core 0 ran the setter: the authenticated return succeeds *)
  (match Cpu.call c0 xom.K.Xom.setter_addr with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "setter on core 0: %s" (Cpu.stop_to_string other));
  Cpu.set_reg c0 (Insn.R 0) data;
  (match Cpu.call c0 resume with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "keyed core: %s" (Cpu.stop_to_string other));
  (* core 1 skipped the setter: its key registers are empty, so the
     same return authenticates to a poisoned address and faults *)
  Cpu.set_reg c1 (Insn.R 0) data;
  match Cpu.call c1 resume with
  | Cpu.Fault { fault = Cpu.Mmu_fault f; _ } ->
      Alcotest.(check bool) "fault address is PAC-poisoned" true
        (Vaddr.is_poisoned (Cpu.kernel_cfg c1) f.Mmu.va)
  | other -> Alcotest.failf "unkeyed core: %s" (Cpu.stop_to_string other)

(* Cross-core PAC failures share one brute-force budget (Section 5.4):
   an SMP attacker must not multiply the threshold by the core count. *)
let test_bruteforce_accounting_is_global () =
  let bf = C.Bruteforce.create ~threshold:4 in
  let rec feed n cpu acc =
    if n = 0 then acc
    else
      let v =
        C.Bruteforce.record_failure bf ~cpu ~pid:(100 + n)
          ~faulting_va:0xdead0000L
      in
      feed (n - 1) ((cpu + 1) mod 4) (v :: acc)
  in
  let outcomes = feed 4 0 [] in
  Alcotest.(check bool) "threshold trips across cores" true
    (List.exists (function C.Bruteforce.Panic -> true | _ -> false) outcomes);
  Alcotest.(check int) "per-cpu tallies kept" 1 (C.Bruteforce.failures_on bf ~cpu:2)

let suite =
  [
    Alcotest.test_case "IPI doorbell send/pending/ack." `Quick test_ipi_doorbell;
    Alcotest.test_case "shared memory, private registers." `Quick
      test_machine_shares_memory;
    Alcotest.test_case "SMP boot installs keys on every core." `Quick
      test_smp_boot_installs_keys_per_cpu;
    Alcotest.test_case "run_smp schedules 8 tasks across 4 cores." `Quick
      test_run_smp_spreads_tasks;
    Alcotest.test_case "run_smp is deterministic." `Quick test_run_smp_deterministic;
    Alcotest.test_case "IPI-driven load balancing migrates work." `Quick
      test_ipi_load_balancing;
    Alcotest.test_case "a core that skips the setter faults." `Quick
      test_skipped_install_faults;
    Alcotest.test_case "brute-force budget is machine-global." `Quick
      test_bruteforce_accounting_is_global;
  ]

(* Brute-force accounting under SMP: the audit invariant (global count =
   sum of per-CPU tallies = event count, thresholds descending) and a
   regression pinning the panic threshold across run_smp — every PAC
   failure must be charged exactly once, on the core that took it. *)

let stuck_key_run ~threshold ~quarantine_after =
  let config = { C.Config.full with C.Config.bruteforce_threshold = threshold } in
  let sys = K.System.boot ~config ~seed:42L ~cpus:2 () in
  let layout =
    K.System.map_user_program sys (Workloads.Smp.throughput_program ~rounds:40)
  in
  let entry = Asm.symbol layout "throughput" in
  let tasks = List.init 8 (fun _ -> K.System.spawn_user_task sys ~entry) in
  let data_key = C.Keys.key_for config.C.Config.mode C.Keys.Data in
  let inj =
    Faultinj.Injector.create
      {
        Faultinj.Injector.trigger = Faultinj.Injector.Always;
        model =
          Faultinj.Injector.Key_flip { key = data_key; high_half = false; bit = 7 };
        persistence = Faultinj.Injector.Stuck;
      }
  in
  Faultinj.Injector.arm inj (Machine.core (K.System.machine sys) 1);
  let stats = K.System.run_smp ~quantum:150 ?quarantine_after sys ~tasks in
  (sys, stats)

let test_bruteforce_audit_invariant () =
  let bf = C.Bruteforce.create ~threshold:16 in
  List.iter
    (fun cpu -> ignore (C.Bruteforce.record_failure ~cpu bf ~pid:7 ~faulting_va:0x20000badL))
    [ 0; 1; 0; 3 ];
  Alcotest.(check bool) "audit holds after mixed-core failures" true
    (C.Bruteforce.audit bf);
  Alcotest.(check int) "global count" 4 (C.Bruteforce.failures bf);
  Alcotest.(check int) "cpu0 tally" 2 (C.Bruteforce.failures_on bf ~cpu:0)

let test_smp_panic_threshold_pinned () =
  (* threshold 3: the third PAC failure on the faulty core halts the
     machine, and not a single failure is double-counted *)
  let sys, _stats = stuck_key_run ~threshold:3 ~quarantine_after:None in
  Alcotest.(check bool) "panicked at the threshold" true (K.System.panicked sys);
  Alcotest.(check int) "exactly threshold failures recorded" 3
    (C.Bruteforce.failures (K.System.bruteforce sys));
  Alcotest.(check int) "all charged to the faulty core" 3
    (C.Bruteforce.failures_on (K.System.bruteforce sys) ~cpu:1);
  Alcotest.(check int) "none charged to the healthy core" 0
    (C.Bruteforce.failures_on (K.System.bruteforce sys) ~cpu:0);
  Alcotest.(check bool) "audit invariant holds" true
    (C.Bruteforce.audit (K.System.bruteforce sys))

let test_smp_below_threshold_survives () =
  (* a high threshold: the system survives, but without quarantine the
     idle faulty core keeps pulling work over via the load balancer and
     kills most of the population one failure at a time — each failure
     still charged exactly once *)
  let sys, stats = stuck_key_run ~threshold:20 ~quarantine_after:None in
  Alcotest.(check bool) "no panic below threshold" false (K.System.panicked sys);
  Alcotest.(check int) "one failure per victim task" 7
    (C.Bruteforce.failures (K.System.bruteforce sys));
  Alcotest.(check int) "all failures on the faulty core" 7
    (C.Bruteforce.failures_on (K.System.bruteforce sys) ~cpu:1);
  Alcotest.(check bool) "audit invariant holds" true
    (C.Bruteforce.audit (K.System.bruteforce sys));
  let clean =
    List.length
      (List.filter
         (fun (_, _, e) -> match e with K.System.Exited _ -> true | _ -> false)
         stats.K.System.smp_exits)
  in
  Alcotest.(check int) "only one task escapes the balancer" 1 clean

let test_smp_quarantine_offlines_core () =
  let sys, stats = stuck_key_run ~threshold:3 ~quarantine_after:(Some 2) in
  Alcotest.(check bool) "quarantine forestalls the panic" false
    (K.System.panicked sys);
  Alcotest.(check (list int)) "core 1 offlined" [ 1 ] stats.K.System.smp_offlined;
  Alcotest.(check bool) "its queue migrated" true (stats.K.System.smp_migrations >= 2);
  let clean =
    List.length
      (List.filter
         (fun (_, _, e) -> match e with K.System.Exited _ -> true | _ -> false)
         stats.K.System.smp_exits)
  in
  Alcotest.(check int) "migrated tasks finish on the healthy core" 6 clean

let suite =
  suite
  @ [
      Alcotest.test_case "brute-force audit invariant." `Quick
        test_bruteforce_audit_invariant;
      Alcotest.test_case "SMP panic threshold is pinned." `Quick
        test_smp_panic_threshold_pinned;
      Alcotest.test_case "below threshold the system survives." `Quick
        test_smp_below_threshold_survives;
      Alcotest.test_case "quarantine offlines the faulty core." `Quick
        test_smp_quarantine_offlines_core;
    ]
