(* PR 6: the fleet engine. Deque semantics, pool determinism and
   cancellation, campaign/sweep byte-stability across worker counts
   (including against the legacy sequential path), telemetry merging,
   the serve control-plane protocol, and the JSON reader. *)

module F = Fleet

(* --- deque -------------------------------------------------------- *)

let test_deque_semantics () =
  let d = F.Deque.create () in
  Alcotest.(check bool) "fresh deque is empty" true (F.Deque.is_empty d);
  Alcotest.(check (option int)) "pop on empty" None (F.Deque.pop d);
  Alcotest.(check (option int)) "steal on empty" None (F.Deque.steal d);
  List.iter (fun i -> F.Deque.push d i) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (F.Deque.length d);
  (* owner pops the hot (most recent) end... *)
  Alcotest.(check (option int)) "pop is LIFO" (Some 4) (F.Deque.pop d);
  (* ...thieves take the cold (oldest) end *)
  Alcotest.(check (option int)) "steal is FIFO" (Some 1) (F.Deque.steal d);
  Alcotest.(check (option int)) "steal again" (Some 2) (F.Deque.steal d);
  Alcotest.(check (option int)) "pop the rest" (Some 3) (F.Deque.pop d);
  Alcotest.(check bool) "drained" true (F.Deque.is_empty d)

(* --- pool --------------------------------------------------------- *)

let test_pool_map_matches_sequential () =
  let f i = (i * i) + 7 in
  let expected = Array.init 40 f in
  List.iter
    (fun workers ->
      Alcotest.(check (array int))
        (Printf.sprintf "map at %d workers = sequential" workers)
        expected
        (F.Pool.map ~workers ~jobs:40 f))
    [ 1; 2; 3; 8 ]

let test_pool_accounts_every_job () =
  let outcome = F.Pool.run ~workers:4 ~jobs:33 (fun i -> i) in
  Alcotest.(check int) "worker count recorded" 4
    outcome.F.Pool.stats.F.Pool.workers;
  Alcotest.(check int) "every job ran exactly once" 33
    (Array.fold_left ( + ) 0 outcome.F.Pool.stats.F.Pool.jobs_run);
  Alcotest.(check bool) "not stopped" false outcome.F.Pool.stats.F.Pool.stopped;
  Array.iteri
    (fun i slot ->
      Alcotest.(check (option int))
        (Printf.sprintf "slot %d filled in index order" i)
        (Some i) slot)
    outcome.F.Pool.results

let test_pool_cancellation () =
  let completed = Atomic.make 0 in
  let outcome =
    F.Pool.run ~workers:2 ~jobs:100
      ~progress:(fun () -> Atomic.incr completed)
      ~should_stop:(fun () -> Atomic.get completed >= 5)
      (fun i -> i)
  in
  Alcotest.(check bool) "stop latched" true outcome.F.Pool.stats.F.Pool.stopped;
  Alcotest.(check bool) "some jobs were shed" true
    (Array.exists Option.is_none outcome.F.Pool.results);
  let ran = Array.fold_left ( + ) 0 outcome.F.Pool.stats.F.Pool.jobs_run in
  Alcotest.(check bool)
    (Printf.sprintf "completed count bounded (ran %d)" ran)
    true
    (ran >= 5 && ran < 100)

let test_pool_quarantines_poisoned_job () =
  (* a job that always raises is retried, then quarantined: the pool
     completes, every other slot is filled, nothing is re-raised *)
  let attempts_seen = Atomic.make 0 in
  let outcome =
    F.Pool.run ~workers:3 ~retries:2 ~jobs:12 (fun i ->
        if i = 7 then begin
          Atomic.incr attempts_seen;
          failwith "boom"
        end
        else i)
  in
  (match outcome.F.Pool.failures with
  | [ f ] ->
      Alcotest.(check int) "failed job index" 7 f.F.Pool.job;
      Alcotest.(check int) "attempts = 1 + retries" 3 f.F.Pool.attempts;
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "error text preserved" true
        (contains "boom" f.F.Pool.error)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 failure, got %d" (List.length fs)));
  Alcotest.(check int) "job was attempted exactly 3 times" 3
    (Atomic.get attempts_seen);
  Alcotest.(check bool) "pool not stopped by the failure" false
    outcome.F.Pool.stats.F.Pool.stopped;
  Array.iteri
    (fun i slot ->
      if i = 7 then
        Alcotest.(check (option int)) "poisoned slot stays empty" None slot
      else
        Alcotest.(check (option int))
          (Printf.sprintf "slot %d unaffected" i)
          (Some i) slot)
    outcome.F.Pool.results

let test_pool_retry_recovers_transient_failure () =
  (* a job that fails twice then succeeds: retries absorb it *)
  let tries = Atomic.make 0 in
  let outcome =
    F.Pool.run ~workers:1 ~retries:2 ~jobs:3 (fun i ->
        if i = 1 && Atomic.fetch_and_add tries 1 < 2 then failwith "flaky"
        else i * 10)
  in
  Alcotest.(check (list int)) "no failures recorded" []
    (List.map (fun f -> f.F.Pool.job) outcome.F.Pool.failures);
  Alcotest.(check (option int)) "flaky job eventually succeeded" (Some 10)
    outcome.F.Pool.results.(1);
  (* map raises when a job is quarantined for good *)
  match F.Pool.map ~workers:1 ~retries:0 ~jobs:2 (fun i -> if i = 0 then failwith "dead" else i) with
  | exception Failure m ->
      Alcotest.(check bool) "map reports the quarantined job" true
        (String.length m > 0)
  | _ -> Alcotest.fail "map ignored a quarantined job"

(* --- fleet campaign: byte-stable across worker counts -------------- *)

let campaign_json ?telemetry workers =
  let result =
    Option.get (F.Campaign.run ?telemetry ~workers ~seed:5L ~trials:6 ())
  in
  (Faultinj.Campaign.report_to_json result.F.Campaign.report, result)

let test_campaign_workers_byte_identical () =
  let w1, _ = campaign_json 1 in
  let w2, _ = campaign_json 2 in
  let w8, _ = campaign_json 8 in
  Alcotest.(check string) "1 worker = 2 workers" w1 w2;
  Alcotest.(check string) "1 worker = 8 workers" w1 w8

let test_campaign_matches_legacy_sequential () =
  let legacy =
    Faultinj.Campaign.report_to_json
      (Faultinj.Campaign.run ~seed:5L ~trials:6 ())
  in
  let fleet, _ = campaign_json 3 in
  Alcotest.(check string) "fleet report = legacy sequential report" legacy fleet

let test_campaign_telemetry_merge () =
  let plain, _ = campaign_json 2 in
  let observed, result = campaign_json ~telemetry:true 2 in
  (* observation stays pure: the report bytes cannot move *)
  Alcotest.(check string) "telemetry does not perturb the report" plain observed;
  match result.F.Campaign.telemetry with
  | None -> Alcotest.fail "telemetry summary missing"
  | Some t ->
      Alcotest.(check bool) "merged counters retired work" true
        (Int64.compare t.F.Campaign.counters.Telemetry.Counters.retired 0L > 0);
      Alcotest.(check bool) "event rings observed" true (t.F.Campaign.events > 0)

(* Merged histograms and fleet Chrome lanes must not see the
   work-stealing schedule: byte-identical for 1/2/8 workers (PR 9). *)
let test_campaign_hists_and_lanes_byte_identical () =
  let artifacts workers =
    let result =
      Option.get
        (F.Campaign.run ~telemetry:true ~lanes:3 ~workers ~seed:5L ~trials:6 ())
    in
    let t = Option.get result.F.Campaign.telemetry in
    ( Telemetry.Span.histograms_to_json t.F.Campaign.hists,
      Telemetry.Chrome.serialize_lanes t.F.Campaign.lanes )
  in
  let h1, c1 = artifacts 1 in
  let h2, c2 = artifacts 2 in
  let h8, c8 = artifacts 8 in
  Alcotest.(check string) "hist JSON: 1 worker = 2 workers" h1 h2;
  Alcotest.(check string) "hist JSON: 1 worker = 8 workers" h1 h8;
  Alcotest.(check string) "chrome lanes: 1 worker = 2 workers" c1 c2;
  Alcotest.(check string) "chrome lanes: 1 worker = 8 workers" c1 c8;
  (match Telemetry.Chrome.validate c1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fleet lane trace rejected: %s" e);
  (* the campaign actually observed latency: syscall spans exist *)
  match Telemetry.Json.parse h1 with
  | Error e -> Alcotest.failf "hist JSON unparsable: %s" e
  | Ok v -> (
      match
        Option.bind
          (Telemetry.Json.member "syscall" v)
          (Telemetry.Json.member "count")
      with
      | Some (Telemetry.Json.Num n) ->
          Alcotest.(check bool) "merged syscall spans non-empty" true (n > 0.0)
      | _ -> Alcotest.fail "hist JSON lacks a syscall count")

(* --- brute-force sweep -------------------------------------------- *)

let sweep_json workers =
  let report, _, _ =
    Option.get (F.Sweep.run ~workers ~seed:9L ~machines:6 ~attempts:8 ())
  in
  report

let test_sweep_workers_byte_identical () =
  let w1 = sweep_json 1 and w3 = sweep_json 3 in
  Alcotest.(check string) "sweep report byte-identical across workers"
    (F.Sweep.report_to_json w1) (F.Sweep.report_to_json w3)

let test_sweep_audits_and_threshold () =
  let r = sweep_json 2 in
  Alcotest.(check int) "accounting audit passes on every machine" 0
    r.F.Sweep.sw_audit_failures;
  Alcotest.(check int) "default threshold keeps machines alive" 0
    r.F.Sweep.sw_panicked;
  Alcotest.(check int) "every machine made its guesses" (6 * 8)
    r.F.Sweep.sw_total_attempts;
  (* a tight threshold must halt every machine before its budget *)
  let tight, _, _ =
    Option.get
      (F.Sweep.run ~threshold:4 ~workers:2 ~seed:9L ~machines:6 ~attempts:8 ())
  in
  Alcotest.(check int) "threshold 4: every machine panics" 6
    tight.F.Sweep.sw_panicked;
  Alcotest.(check bool) "panic stops the guessing loop early" true
    (tight.F.Sweep.sw_total_attempts < 6 * 8)

(* --- jsonin ------------------------------------------------------- *)

let parse_ok s =
  match F.Jsonin.parse s with
  | Ok v -> v
  | Error e -> Alcotest.fail ("jsonin rejected " ^ s ^ ": " ^ e)

let test_jsonin_basics () =
  let v = parse_ok {|{"a": 1, "b": [true, null, "xA\n"], "c": -2.5}|} in
  Alcotest.(check (option int)) "int member" (Some 1)
    (Option.bind (F.Jsonin.member "a" v) F.Jsonin.to_int);
  (match F.Jsonin.member "b" v with
  | Some (F.Jsonin.List [ F.Jsonin.Bool true; F.Jsonin.Null; F.Jsonin.Str s ]) ->
      Alcotest.(check string) "escapes decoded" "xA\n" s
  | _ -> Alcotest.fail "list member shape");
  Alcotest.(check (option (float 1e-9))) "float member" (Some (-2.5))
    (Option.bind (F.Jsonin.member "c" v) F.Jsonin.to_float);
  (match F.Jsonin.parse "{\"a\": 1} junk" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match F.Jsonin.parse "{nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed object accepted"

let test_jsonin_reads_campaign_report () =
  let report =
    Faultinj.Campaign.report_to_json (Faultinj.Campaign.run ~seed:3L ~trials:4 ())
  in
  let v = parse_ok report in
  Alcotest.(check (option string)) "campaign tag" (Some "camouflage-faultinj")
    (Option.bind (F.Jsonin.member "campaign" v) F.Jsonin.to_string);
  Alcotest.(check (option int)) "trials round-trips" (Some 4)
    (Option.bind (F.Jsonin.member "trials" v) F.Jsonin.to_int);
  match F.Jsonin.member "trial_list" v with
  | Some (F.Jsonin.List l) ->
      Alcotest.(check int) "one row per trial" 4 (List.length l)
  | _ -> Alcotest.fail "trial_list missing"

(* --- serve: the control-plane protocol ----------------------------- *)

let request srv fmt =
  Printf.ksprintf
    (fun line ->
      let response, _ = F.Serve.handle srv line in
      parse_ok response)
    fmt

let str_of v name = Option.bind (F.Jsonin.member name v) F.Jsonin.to_string
let int_of v name = Option.bind (F.Jsonin.member name v) F.Jsonin.to_int
let is_ok v = Option.bind (F.Jsonin.member "ok" v) F.Jsonin.to_bool = Some true

let poll srv id ~until =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    let v = request srv {|{"req": "status", "id": %d}|} id in
    match str_of v "state" with
    | Some s when List.mem s until -> (s, v)
    | Some _ when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.02;
        go ()
    | Some s -> Alcotest.fail (Printf.sprintf "job %d stuck in state %s" id s)
    | None -> Alcotest.fail "status response carries no state"
  in
  go ()

let test_serve_round_trip () =
  let srv = F.Serve.create () in
  let pong = request srv {|{"req": "ping"}|} in
  Alcotest.(check (option string)) "ping" (Some "pong") (str_of pong "reply");
  let sub =
    request srv
      {|{"req": "submit", "kind": "faults", "seed": 5, "trials": 4, "workers": 2}|}
  in
  Alcotest.(check bool) "submit accepted" true (is_ok sub);
  let id = Option.get (int_of sub "id") in
  Alcotest.(check (option int)) "total echoes trials" (Some 4) (int_of sub "total");
  let state, status = poll srv id ~until:[ "done"; "failed" ] in
  Alcotest.(check string) "campaign completes" "done" state;
  Alcotest.(check (option int)) "progress reached total" (Some 4)
    (int_of status "completed");
  let rep = request srv {|{"req": "report", "id": %d}|} id in
  Alcotest.(check bool) "report fetch ok" true (is_ok rep);
  let report = Option.get (F.Jsonin.member "report" rep) in
  Alcotest.(check (option string)) "embedded campaign report"
    (Some "camouflage-faultinj")
    (str_of report "campaign");
  (* the served report carries the same trial outcomes as a direct run *)
  Alcotest.(check (option int)) "served trials" (Some 4) (int_of report "trials");
  F.Serve.drain srv

let test_serve_metrics () =
  let srv = F.Serve.create () in
  (* metrics on a fresh server: zeros across the board, valid JSON *)
  let m0 = request srv {|{"req": "metrics"}|} in
  Alcotest.(check bool) "metrics ok on idle server" true (is_ok m0);
  Alcotest.(check (option string)) "reply tag" (Some "metrics")
    (str_of m0 "reply");
  Alcotest.(check bool) "uptime is reported" true
    (match int_of m0 "uptime_ms" with Some n -> n >= 0 | None -> false);
  let jobs0 = Option.get (F.Jsonin.member "jobs" m0) in
  Alcotest.(check (option int)) "no jobs submitted yet" (Some 0)
    (Option.bind (F.Jsonin.member "submitted" jobs0) F.Jsonin.to_int);
  (* run a campaign to completion, then sample again *)
  let sub =
    request srv
      {|{"req": "submit", "kind": "faults", "seed": 5, "trials": 4, "workers": 2}|}
  in
  let id = Option.get (int_of sub "id") in
  let state, _ = poll srv id ~until:[ "done"; "failed" ] in
  Alcotest.(check string) "campaign completes" "done" state;
  let m = request srv {|{"req": "metrics"}|} in
  let jobs = Option.get (F.Jsonin.member "jobs" m) in
  Alcotest.(check (option int)) "one job submitted" (Some 1)
    (Option.bind (F.Jsonin.member "submitted" jobs) F.Jsonin.to_int);
  Alcotest.(check (option int)) "one job done" (Some 1)
    (Option.bind (F.Jsonin.member "done" jobs) F.Jsonin.to_int);
  let trials = Option.get (F.Jsonin.member "trials" m) in
  Alcotest.(check (option int)) "all trials counted" (Some 4)
    (Option.bind (F.Jsonin.member "completed" trials) F.Jsonin.to_int);
  Alcotest.(check (option int)) "nothing quarantined" (Some 0)
    (int_of m "quarantined");
  (* the finished campaign contributed span histograms *)
  (match
     Option.bind
       (Option.bind (F.Jsonin.member "span_hists" m) (F.Jsonin.member "syscall"))
       (F.Jsonin.member "count")
   with
  | Some n ->
      Alcotest.(check bool) "syscall spans surfaced in metrics" true
        (match F.Jsonin.to_int n with Some c -> c > 0 | None -> false)
  | None -> Alcotest.fail "metrics carry no span_hists.syscall.count");
  F.Serve.drain srv

let test_serve_rejects_malformed () =
  let srv = F.Serve.create () in
  let checks =
    [
      ("bad JSON", "{nope");
      ("missing req", {|{"id": 3}|});
      ("unknown req", {|{"req": "frobnicate"}|});
      ("unknown kind", {|{"req": "submit", "kind": "pizza"}|});
      ("unknown id", {|{"req": "status", "id": 99}|});
      ("report before submit", {|{"req": "report", "id": 99}|});
      ("out-of-range workers", {|{"req": "submit", "kind": "faults", "workers": 0}|});
    ]
  in
  List.iter
    (fun (label, line) ->
      let v = parse_ok (fst (F.Serve.handle srv line)) in
      Alcotest.(check bool) (label ^ ": rejected") false (is_ok v);
      Alcotest.(check bool)
        (label ^ ": error is explained")
        true
        (match str_of v "error" with Some e -> e <> "" | None -> false))
    checks;
  (* a garbage line must not kill the server *)
  let pong = request srv {|{"req": "ping"}|} in
  Alcotest.(check bool) "server survives" true (is_ok pong);
  F.Serve.drain srv

let test_serve_cancel_and_shutdown () =
  let srv = F.Serve.create () in
  let sub =
    request srv
      {|{"req": "submit", "kind": "bruteforce", "seed": 9, "machines": 400, "attempts": 8, "workers": 2}|}
  in
  let id = Option.get (int_of sub "id") in
  let cancel = request srv {|{"req": "cancel", "id": %d}|} id in
  Alcotest.(check bool) "cancel accepted" true (is_ok cancel);
  let state, _ = poll srv id ~until:[ "cancelled"; "done" ] in
  Alcotest.(check string) "job cancelled" "cancelled" state;
  let rep = request srv {|{"req": "report", "id": %d}|} id in
  Alcotest.(check bool) "no report after cancel" false (is_ok rep);
  let bye, continue = F.Serve.handle srv {|{"req": "shutdown"}|} in
  Alcotest.(check bool) "shutdown stops the loop" false continue;
  Alcotest.(check (option string)) "shutdown acks" (Some "bye")
    (str_of (parse_ok bye) "reply");
  F.Serve.drain srv

let suite =
  [
    Alcotest.test_case "deque: owner LIFO, thief FIFO" `Quick
      test_deque_semantics;
    Alcotest.test_case "pool map = sequential at any width" `Quick
      test_pool_map_matches_sequential;
    Alcotest.test_case "pool runs every job exactly once" `Quick
      test_pool_accounts_every_job;
    Alcotest.test_case "pool cancellation sheds queued jobs" `Quick
      test_pool_cancellation;
    Alcotest.test_case "pool quarantines a poisoned job" `Quick
      test_pool_quarantines_poisoned_job;
    Alcotest.test_case "pool retries recover transient failures" `Quick
      test_pool_retry_recovers_transient_failure;
    Alcotest.test_case "campaign bytes: workers 1 = 2 = 8" `Quick
      test_campaign_workers_byte_identical;
    Alcotest.test_case "campaign bytes: fleet = legacy sequential" `Quick
      test_campaign_matches_legacy_sequential;
    Alcotest.test_case "campaign telemetry merges without perturbing" `Quick
      test_campaign_telemetry_merge;
    Alcotest.test_case "campaign hists and lanes: workers 1 = 2 = 8" `Quick
      test_campaign_hists_and_lanes_byte_identical;
    Alcotest.test_case "sweep bytes: workers 1 = 3" `Quick
      test_sweep_workers_byte_identical;
    Alcotest.test_case "sweep audits pass; tight threshold panics" `Quick
      test_sweep_audits_and_threshold;
    Alcotest.test_case "jsonin: values, escapes, rejects garbage" `Quick
      test_jsonin_basics;
    Alcotest.test_case "jsonin reads a campaign report" `Quick
      test_jsonin_reads_campaign_report;
    Alcotest.test_case "serve: submit, poll, fetch report" `Quick
      test_serve_round_trip;
    Alcotest.test_case "serve: metrics sample the live plane" `Quick
      test_serve_metrics;
    Alcotest.test_case "serve: malformed requests get errors" `Quick
      test_serve_rejects_malformed;
    Alcotest.test_case "serve: cancel and shutdown" `Quick
      test_serve_cancel_and_shutdown;
  ]
