(* run_scheduled edge cases: the context-integrity tamper-kill path
   (X7), slice/preemption accounting at the degenerate quantum of one
   instruction, and determinism of the whole scheduler. *)

open Aarch64
module C = Camouflage
module K = Kernel

let spin_program ~iters ~code =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"spin"
    [
      Asm.ins (Insn.Movz (Insn.R 20, iters, 0));
      Asm.label "work";
      Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
      Asm.cbnz_to (Insn.R 20) "work";
      Asm.ins (Insn.Movz (Insn.R 0, code, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  prog

let boot_spin ~iters ~code =
  let sys = K.System.boot ~seed:21L () in
  let layout = K.System.map_user_program sys (spin_program ~iters ~code) in
  (sys, Asm.symbol layout "spin")

(* X7: a preempted task's saved context is MAC'd; tampering with the
   saved registers between slices kills the task instead of resuming
   it. The untampered sibling run resumes and exits normally. *)
let test_context_integrity_tamper_kill () =
  let run ~tamper =
    let sys, entry = boot_spin ~iters:4000 ~code:9 in
    let victim = K.System.spawn_user_task sys ~entry in
    let companion = K.System.spawn_user_task sys ~entry in
    (* two short slices: each task is preempted once and its context
       saved (and MAC'd) in its task structure *)
    let first =
      K.System.run_scheduled ~quantum:50 ~max_slices:2 ~context_integrity:true sys
        ~tasks:[ victim; companion ]
    in
    Alcotest.(check int) "still running after two slices" 0
      (List.length first.K.System.exits);
    Alcotest.(check int) "both tasks preempted once" 2 first.K.System.preemptions;
    if tamper then
      (* corrupt a saved callee register in the victim's task structure *)
      K.Kmem.write64 (K.System.cpu sys)
        (Int64.add victim.K.System.va
           (Int64.of_int (K.Kobject.Task.off_gprs + (8 * 20))))
        0xbad00000L;
    let stats =
      K.System.run_scheduled ~quantum:100_000 ~context_integrity:true sys
        ~tasks:[ victim; companion ]
    in
    (List.assoc victim.K.System.pid stats.K.System.exits,
     List.assoc companion.K.System.pid stats.K.System.exits)
  in
  (match run ~tamper:true with
  | K.System.User_killed m, K.System.Exited 9L ->
      Alcotest.(check bool) "killed for context integrity" true
        (String.length m >= 17 && String.sub m 0 17 = "context integrity")
  | _ -> Alcotest.fail "tampered victim should be killed, companion should exit");
  match run ~tamper:false with
  | K.System.Exited 9L, K.System.Exited 9L -> ()
  | _ -> Alcotest.fail "untampered resumes should both exit with code 9"

(* Quantum of one instruction: every slice retires one user instruction
   and then preempts, so preemptions = slices - exits, and the tasks
   still run to completion. *)
let test_quantum_one_accounting () =
  let sys, entry = boot_spin ~iters:10 ~code:5 in
  let tasks = List.init 2 (fun _ -> K.System.spawn_user_task sys ~entry) in
  let stats = K.System.run_scheduled ~quantum:1 ~max_slices:2000 sys ~tasks in
  Alcotest.(check int) "both exited" 2 (List.length stats.K.System.exits);
  List.iter
    (fun (pid, e) ->
      match e with
      | K.System.Exited 5L -> ()
      | _ -> Alcotest.failf "pid %d: unexpected exit" pid)
    stats.K.System.exits;
  Alcotest.(check int) "every non-final slice preempts"
    (stats.K.System.slices - 2)
    stats.K.System.preemptions;
  Alcotest.(check bool) "interleaving actually happened" true
    (stats.K.System.slices > 20)

let sched_fingerprint () =
  let sys, entry = boot_spin ~iters:600 ~code:3 in
  let tasks = List.init 3 (fun _ -> K.System.spawn_user_task sys ~entry) in
  let stats = K.System.run_scheduled ~quantum:150 sys ~tasks in
  (stats, Cpu.cycles (K.System.cpu sys))

let test_scheduler_deterministic () =
  let a, ca = sched_fingerprint () in
  let b, cb = sched_fingerprint () in
  Alcotest.(check bool) "identical exits" true (a.K.System.exits = b.K.System.exits);
  Alcotest.(check int) "identical slices" a.K.System.slices b.K.System.slices;
  Alcotest.(check int) "identical preemptions" a.K.System.preemptions
    b.K.System.preemptions;
  Alcotest.(check int64) "identical cycle totals" ca cb

let suite =
  [
    Alcotest.test_case "context-integrity tamper kill (X7)." `Quick
      test_context_integrity_tamper_kill;
    Alcotest.test_case "quantum-1 slice accounting." `Quick test_quantum_one_accounting;
    Alcotest.test_case "scheduler determinism." `Quick test_scheduler_deterministic;
  ]
