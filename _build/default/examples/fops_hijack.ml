(* Forward-edge CFI / DFI demonstration: hijack of a file's operations
   table through the arbitrary kernel-write bug (the attack of Sections
   4.4-4.5).

   The attacker sprays a fake operations table into the pipe buffer,
   repoints file->f_ops at it, and calls read(). Without DFI the kernel
   happily dispatches through the fake table; with DFI the AUTDB of
   Listing 4 rejects the foreign pointer.

   Run with: dune exec examples/fops_hijack.exe *)

module C = Camouflage
module K = Kernel

let scenario label config =
  Printf.printf "\n--- kernel build: %s ---\n" label;
  let sys = K.System.boot ~config ~seed:808L () in
  let outcome = Attacks.Fptr_hijack.run sys in
  Printf.printf "%s\n" (Attacks.Fptr_hijack.outcome_to_string outcome);
  List.iter (fun l -> Printf.printf "  log: %s\n" l) (K.System.log sys)

let () =
  Printf.printf
    "f_ops hijack: the classic kernel exploitation pattern the paper's\n\
     DFI is designed to stop (struct file -> f_ops -> read).\n";
  scenario "no protection" C.Config.none;
  scenario "backward-edge only (f_ops unprotected)" C.Config.backward_only;
  scenario "full protection (DFI on f_ops)" C.Config.full;
  (* The mitigation also bounds guessing: repeat the attack with random
     PAC forgeries until the threshold halts the system. *)
  Printf.printf "\n--- brute-forcing the PAC instead (threshold 8) ---\n";
  let config = { C.Config.full with bruteforce_threshold = 8 } in
  let sys = K.System.boot ~config ~seed:808L () in
  let report = Attacks.Bruteforce_attack.run sys ~attempts:100 ~seed:11L in
  Printf.printf "%s\n" (Attacks.Bruteforce_attack.report_to_string report);
  List.iter (fun l -> Printf.printf "  log: %s\n" l) (K.System.log sys)
