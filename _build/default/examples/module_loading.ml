(* Loadable kernel modules under Camouflage (Sections 4.1 and 4.6):

   - a benign module with a statically initialized protected callback
     (the DECLARE_WORK pattern): the loader verifies its text and signs
     the callback in place via the module's .pauth_static section;
   - a spy module that tries to read a PAuth key register: rejected by
     the static verifier before any of its code can run;
   - a saboteur module that tries to disable the PAuth enable bits in
     SCTLR_EL1: also rejected.

   Run with: dune exec examples/module_loading.exe *)

open Aarch64
module C = Camouflage
module K = Kernel
module O = Kelf.Object_file

let benign_module config =
  let work_fn =
    C.Instrument.wrap config ~name:"mymod_work_handler"
      [ Asm.ins (Insn.Movz (Insn.R 0, 0x600d, 0)) ]
  in
  let obj = O.empty "mymod" in
  let obj = O.add_function obj ~name:"mymod_work_handler" work_fn.C.Instrument.items in
  (* DECLARE_WORK(mymod_work, mymod_work_handler) *)
  let obj =
    O.add_data obj
      { O.blob_name = "mymod_work"; words = [ O.Lit 9L; O.Sym "mymod_work_handler" ] }
  in
  O.add_static_sign obj
    { O.sign_blob = "mymod_work"; word_index = 1; type_name = "work_struct";
      member_name = "func" }

let spy_module =
  O.add_function (O.empty "keyspy")
    ~name:"spy_entry"
    [ Asm.ins (Insn.Mrs (Insn.R 0, Sysreg.APIBKeyHi_EL1)); Asm.ins Insn.Ret ]

let saboteur_module =
  O.add_function (O.empty "pauth_off")
    ~name:"sabotage"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 0, 0));
      Asm.ins (Insn.Msr (Sysreg.SCTLR_EL1, Insn.R 0));
      Asm.ins Insn.Ret;
    ]

let () =
  let sys = K.System.boot ~config:C.Config.full ~seed:31337L () in
  Printf.printf "system booted with %s\n\n" (C.Config.name (K.System.config sys));

  (* benign module: loads, and its statically initialized work struct
     dispatches through the signed pointer *)
  (match K.System.load_module sys (benign_module (K.System.config sys)) with
  | Result.Ok placed ->
      Printf.printf "benign module loaded at 0x%Lx\n" placed.Kelf.Loader.text_base;
      let work = Kelf.Loader.symbol placed "mymod_work" in
      let raw = K.Kmem.read64 (K.System.cpu sys) (Int64.add work 8L) in
      Printf.printf "  stored callback (signed in place at load): 0x%Lx\n" raw;
      (match K.System.run_work sys ~work_va:work with
      | K.System.Ok v -> Printf.printf "  work dispatched, handler returned 0x%Lx\n" v
      | K.System.Killed m | K.System.Panicked m -> Printf.printf "  dispatch failed: %s\n" m)
  | Result.Error e ->
      Printf.printf "benign module rejected?! %s\n" (Kelf.Loader.error_to_string e));

  (* spy module: must be rejected with a precise diagnosis *)
  Printf.printf "\nloading key-spy module...\n";
  (match K.System.load_module sys spy_module with
  | Result.Ok _ -> Printf.printf "ACCEPTED - this would leak the kernel keys!\n"
  | Result.Error e -> Printf.printf "rejected: %s\n" (Kelf.Loader.error_to_string e));

  (* saboteur: must be rejected too *)
  Printf.printf "\nloading SCTLR-saboteur module...\n";
  (match K.System.load_module sys saboteur_module with
  | Result.Ok _ -> Printf.printf "ACCEPTED - this could disable PAuth!\n"
  | Result.Error e -> Printf.printf "rejected: %s\n" (Kelf.Loader.error_to_string e));

  Printf.printf "\nkernel log:\n";
  List.iter (fun l -> Printf.printf "  %s\n" l) (K.System.log sys)
