examples/rop_attack.ml: Attacks Camouflage Kernel List Printf
