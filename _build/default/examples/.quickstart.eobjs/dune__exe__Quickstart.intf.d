examples/quickstart.mli:
