examples/multitask.mli:
