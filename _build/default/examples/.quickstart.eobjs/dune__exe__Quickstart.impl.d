examples/quickstart.ml: Aarch64 Asm Attacks Camouflage Cpu Insn Kernel List Mmu Printf
