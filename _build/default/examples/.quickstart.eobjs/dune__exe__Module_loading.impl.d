examples/module_loading.ml: Aarch64 Asm Camouflage Insn Int64 Kelf Kernel List Printf Result Sysreg
