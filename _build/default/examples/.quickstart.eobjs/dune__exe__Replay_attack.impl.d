examples/replay_attack.ml: Attacks Camouflage Kernel List Printf
