examples/fops_hijack.mli:
