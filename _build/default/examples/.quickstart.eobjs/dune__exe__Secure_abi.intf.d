examples/secure_abi.mli:
