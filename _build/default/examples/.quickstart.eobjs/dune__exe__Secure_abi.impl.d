examples/secure_abi.ml: Aarch64 Asm Camouflage Insn Kernel List Mmu Printf Sysreg
