examples/fops_hijack.ml: Attacks Camouflage Kernel List Printf
