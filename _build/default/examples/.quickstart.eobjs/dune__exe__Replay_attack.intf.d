examples/replay_attack.mli:
