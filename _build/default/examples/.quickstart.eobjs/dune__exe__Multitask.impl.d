examples/multitask.ml: Aarch64 Asm Camouflage Cpu Insn Int64 Kernel List Mmu Printf String
