(* Backward-edge CFI demonstration: a return-address overwrite on a
   sleeping task's kernel stack, run against an unprotected kernel and a
   Camouflage-protected one.

   Run with: dune exec examples/rop_attack.exe *)

module C = Camouflage
module K = Kernel

let scenario label config =
  Printf.printf "\n--- kernel build: %s ---\n" label;
  let sys = K.System.boot ~config ~seed:404L () in
  let outcome = Attacks.Rop.run sys in
  Printf.printf "%s\n" (Attacks.Rop.outcome_to_string outcome);
  List.iter (fun l -> Printf.printf "  log: %s\n" l) (K.System.log sys)

let () =
  Printf.printf
    "ROP on the kernel: overwrite the saved LR in a victim task's switch\n\
     frame, then force a reschedule. The gadget is an existing kernel\n\
     function whose side effect proves the diversion.\n";
  scenario "no protection (stock kernel)" C.Config.none;
  scenario "backward-edge CFI, SP-only modifier (Qualcomm/Clang)"
    { C.Config.backward_only with scheme = C.Modifier.Sp_only };
  scenario "backward-edge CFI, Camouflage modifier" C.Config.full
