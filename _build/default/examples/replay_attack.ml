(* Replay (reuse) attacks against backward-edge CFI (Sections 4.2, 7).

   A PAC binds a pointer to a modifier; harvested signed pointers can be
   replayed wherever the modifier repeats. Kernel task stacks are
   shallow (16 KiB) and aligned, so weak modifiers repeat a lot:

   - PARTS keeps only 16 SP bits: stacks 64 KiB apart collide;
   - plain SP (Qualcomm/Clang) repeats across same-depth frames;
   - Camouflage (32 SP bits + 32 function-address bits) separates both.

   This example runs the machine-level cross-task replay against all
   three schemes and then quantifies the collision surface.

   Run with: dune exec examples/replay_attack.exe *)

module C = Camouflage
module K = Kernel

let machine_demo label config =
  let sys = K.System.boot ~config ~seed:1717L () in
  let outcome = Attacks.Replay.cross_task_switch_frame sys in
  Printf.printf "  %-42s %s\n" label (Attacks.Replay.outcome_to_string outcome)

let () =
  Printf.printf
    "machine demo: replay a return address harvested from task A's switch\n\
     frame into task B's frame, stacks exactly 64 KiB apart:\n";
  machine_demo "PARTS (16-bit SP + function id)"
    { C.Config.full with scheme = C.Modifier.Parts 0x4242L };
  machine_demo "SP-only, full SP (Clang)"
    { C.Config.full with scheme = C.Modifier.Sp_only };
  machine_demo "Camouflage (32b SP + 32b function addr)" C.Config.full;

  Printf.printf
    "\ncollision surface over random kernel contexts (200k ordered pairs):\n";
  List.iter
    (fun scheme ->
      let f = Attacks.Replay.collision_fraction scheme ~samples:200_000 ~seed:5L in
      Printf.printf "  %-42s %.2e\n" (C.Modifier.scheme_name scheme) f)
    [ C.Modifier.Sp_only; C.Modifier.Parts 0x4242L; C.Modifier.Camouflage ];
  Printf.printf
    "\ntemporal (same-context) replay — the residual risk of Section 6.2.1:\n";
  List.iter
    (fun (label, scheme) ->
      Printf.printf "  %-42s %s\n" label
        (Attacks.Temporal_replay.outcome_to_string (Attacks.Temporal_replay.run scheme)))
    [
      ("SP-only", C.Modifier.Sp_only);
      ("Camouflage", C.Modifier.Camouflage);
      ("Chained (PACStack-style, ablation A5)", C.Modifier.Chained);
    ]
