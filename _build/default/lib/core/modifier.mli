(** PAuth modifier construction (Sections 4.2, 4.3 and 5.2).

    The modifier is the cryptographic salt of each PAC. The paper
    compares three return-address schemes (Figure 2):

    - [Sp_only]: the stack pointer alone — the Qualcomm/Clang reference,
      replayable because kernel task stacks are shallow (16 KiB) and
      4 KiB-aligned, so the low 12 bits of SP repeat across threads;
    - [Parts]: low 16 bits of SP concatenated with a 48-bit link-time
      function id (PARTS, USENIX Sec'19) — needs LTO, incompatible with
      loadable modules;
    - [Camouflage]: low 32 bits of SP concatenated with the low 32 bits
      of the function address, materializable with ADR + MOV + BFI
      (Listing 3) and module-safe.

    Pointer integrity (forward-edge CFI and DFI) uses the unified
    scheme of Section 4.3: the 48-bit address of the containing object
    concatenated with a 16-bit constant identifying the (type, member)
    pair. *)

open Aarch64

type return_scheme =
  | No_cfi
  | Sp_only
  | Parts of int64  (** 48-bit LTO function id *)
  | Camouflage
  | Chained
      (** PACStack-style authenticated call stack (Liljestrand et al.,
          cited as related work): the modifier is the previous signed
          return address held in a reserved chain register, spilled per
          frame. Binds each return to the {e entire} call path, closing
          the same-context temporal replay left open by SP-based
          modifiers — at the price of extra spills and no support for
          prefabricated frames (so it is evaluated as a microbenchmark
          ablation, not a bootable kernel configuration). *)

(** The reserved chain register of the [Chained] scheme (X27). *)
val chain_register : Insn.reg

(** [return_modifier scheme ~sp ~func_addr] — the modifier value the
    instrumentation computes at run time (host-side mirror, used by
    tests and by reuse-attack analysis). Raises [Invalid_argument] for
    [Chained], whose modifier is a dynamic value. *)
val return_modifier : return_scheme -> sp:int64 -> func_addr:int64 -> int64

(** [pointer_modifier ~obj_addr ~constant] — Listing 4: the low 16 bits
    hold the type/member constant, bits 16..63 the low 48 bits of the
    containing object's address. *)
val pointer_modifier : obj_addr:int64 -> constant:int -> int64

(** [materialize_return scheme ~func_label ~dst ~scratch] — assembler
    items computing the return modifier into [dst] (clobbering
    [scratch]), exactly as the modified compiler emits them. [Sp_only]
    needs no materialization (SP is used directly) and yields []. *)
val materialize_return :
  return_scheme -> func_label:string -> dst:Insn.reg -> scratch:Insn.reg -> Asm.item list

(** [materialize_pointer ~obj ~constant ~dst] — assembler items for the
    pointer-integrity modifier of an object held in register [obj]. *)
val materialize_pointer : obj:Insn.reg -> constant:int -> dst:Insn.reg -> Asm.item list

(** [modifier_register scheme] — the register the PAC/AUT instruction
    should use as modifier operand: [SP] for [Sp_only]/[No_cfi], the
    scratch destination otherwise. *)
val modifier_register : return_scheme -> dst:Insn.reg -> Insn.reg

val scheme_name : return_scheme -> string
