(** Static code verification (Sections 4.1 and 6.2.2).

    The kernel never needs to read its PAuth keys, only to set them from
    one audited function. Because MRS/MSR immediately encode the
    register they touch, a linear scan over the words of a code region
    finds every key access and every write to the SCTLR PAuth flags.
    The scan runs over the kernel image at build/boot time and over each
    loadable module before it is accepted. *)

open Aarch64

type reason =
  | Reads_key_register of Sysreg.t
  | Writes_key_register of Sysreg.t  (** outside the audited setter *)
  | Writes_sctlr  (** could clear the PAuth enable flags *)

type violation = { va : int64; insn : Insn.t; reason : reason }

(** [scan ~read32 ~base ~size ~allowed] decodes every word of
    [base, base+size) and reports violations. [allowed va] marks
    addresses belonging to the audited key-setter, where MSRs to key
    registers are legitimate. Data words that do not decode are ignored:
    they cannot be executed as key accesses. *)
val scan :
  read32:(int64 -> int32) ->
  base:int64 ->
  size:int ->
  allowed:(int64 -> bool) ->
  violation list

(** [scan_insns ~base insns ~allowed] — same policy over an instruction
    listing (used for pre-assembly checks in tests). *)
val scan_insns :
  base:int64 -> (int64 * Insn.t) list -> allowed:(int64 -> bool) -> violation list

val reason_to_string : reason -> string
val violation_to_string : violation -> string
