(** Run-time linkage for statically initialized signed pointers
    (Section 4.6).

    A few protected pointers are initialized in static structure
    instances (e.g. [DECLARE_WORK]); their PACs cannot exist in the
    on-disk image, so a dedicated ELF-like section lists each such
    pointer as (location, key role, 16-bit constant). At early boot —
    and again whenever a module is loaded — the table is walked and
    every listed pointer is signed in place. The containing object's
    base address is recovered from the member offset that the constant
    identifies in the registry. *)

open Aarch64

type entry = {
  location : int64;  (** virtual address of the to-be-signed pointer field *)
  role : Keys.role;
  constant : int;  (** the type/member constant, resolvable in the registry *)
}

type t = entry list

(** [sign_all cpu config registry table ~read64 ~write64] walks the
    table, signing each pointer in place. Raises [Invalid_argument] if a
    constant is unknown to the registry or its role disagrees with the
    entry. Idempotence is NOT guaranteed — signing twice corrupts the
    pointer, as in the real design — so callers sign exactly once. *)
val sign_all :
  Cpu.t ->
  Config.t ->
  Pointer_integrity.registry ->
  t ->
  read64:(int64 -> int64) ->
  write64:(int64 -> int64 -> unit) ->
  unit

(** [entry_for registry ~location ~type_name ~member_name] — convenience
    constructor: builds the entry for a member whose field sits at
    [location]. *)
val entry_for :
  Pointer_integrity.registry ->
  location:int64 ->
  type_name:string ->
  member_name:string ->
  entry
