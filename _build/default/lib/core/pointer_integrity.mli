(** Unified pointer integrity: forward-edge CFI and DFI (Sections 4.3,
    4.4, 4.5 and 5.3).

    Selected pointer members of kernel compound types are signed in
    place. The modifier binds the PAC to the containing object's address
    (48 bits) and a 16-bit constant unique to the (type, member) pair,
    so a signed pointer cannot be replayed at another address or into a
    differently-typed field. The same construction protects lone
    writable function pointers (forward-edge CFI) and data pointers to
    read-only operations tables such as [file->f_ops] (DFI).

    [emit_getter]/[emit_setter] generate the inline accessor sequences
    of Listing 4 — what the paper's Coccinelle patch substitutes for
    direct member access; [sign_value]/[auth_value] are the host-side
    mirrors used by kernel bookkeeping and tests. *)

open Aarch64

type member = {
  type_name : string;
  member_name : string;
  offset : int;  (** byte offset of the member within the object *)
  role : Keys.role;  (** [Forward] for function pointers, [Data] for ops-table pointers *)
}

type registry

val create_registry : unit -> registry

(** [register r member] assigns the 16-bit type/member constant.
    Registering the same (type, member) twice returns the same constant.
    Raises [Invalid_argument] after 65535 distinct members. *)
val register : registry -> member -> int

(** [constant_of r ~type_name ~member_name] — raises [Not_found] if the
    member was never registered. *)
val constant_of : registry -> type_name:string -> member_name:string -> int

val member_of_constant : registry -> int -> member option
val members : registry -> (int * member) list

(** [emit_getter config r ~type_name ~member_name ~obj ~dst ~scratch] —
    load the signed member from the object in [obj], authenticate it
    into [dst]. [scratch] is clobbered with the modifier. *)
val emit_getter :
  Config.t ->
  registry ->
  type_name:string ->
  member_name:string ->
  obj:Insn.reg ->
  dst:Insn.reg ->
  scratch:Insn.reg ->
  Asm.item list

(** [emit_setter config r ~type_name ~member_name ~obj ~value ~scratch] —
    sign the pointer in [value] (clobbering it) and store it into the
    member. *)
val emit_setter :
  Config.t ->
  registry ->
  type_name:string ->
  member_name:string ->
  obj:Insn.reg ->
  value:Insn.reg ->
  scratch:Insn.reg ->
  Asm.item list

(** [sign_value cpu config r ~type_name ~member_name ~obj_addr value] —
    host-side signing, using the keys currently installed in [cpu]. *)
val sign_value :
  Cpu.t ->
  Config.t ->
  registry ->
  type_name:string ->
  member_name:string ->
  obj_addr:int64 ->
  int64 ->
  int64

(** [auth_value cpu config r ~type_name ~member_name ~obj_addr value] —
    [Ok stripped] or [Error poisoned]. *)
val auth_value :
  Cpu.t ->
  Config.t ->
  registry ->
  type_name:string ->
  member_name:string ->
  obj_addr:int64 ->
  int64 ->
  (int64, int64) result
