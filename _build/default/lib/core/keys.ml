open Aarch64

type role = Backward | Forward | Data

type mode = Armv83 | Compat

(* Listing 3 signs return addresses with PACIB and Listing 4
   authenticates operations pointers with AUTDB; the remaining
   instruction key IA serves forward-edge CFI. *)
let key_for mode role =
  match (mode, role) with
  | Armv83, Backward -> Sysreg.IB
  | Armv83, Forward -> Sysreg.IA
  | Armv83, Data -> Sysreg.DB
  | Compat, (Backward | Forward | Data) -> Sysreg.IB

let keys_in_use = function
  | Armv83 -> [ Sysreg.IB; Sysreg.IA; Sysreg.DB ]
  | Compat -> [ Sysreg.IB ]

let role_name = function Backward -> "backward" | Forward -> "forward" | Data -> "data"
