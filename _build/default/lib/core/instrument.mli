(** Function instrumentation: the compiler pass of Section 5.2.

    [wrap] turns a function body into a full function with the frame
    record of Listing 1 and, per configuration, the signing prologue and
    authenticating epilogue of Listing 2 (SP-only) or Listing 3
    (Camouflage). The same sequences are exposed as the [frame_push] /
    [frame_pop] assembler macros used in hand-written assembly such as
    [cpu_switch_to].

    Bodies are written without prologue/epilogue and must not touch FP,
    LR, IP0 (X16) or IP1 (X17); control falls off the end of the body
    into the epilogue (single-exit convention). *)

open Aarch64

type t = {
  name : string;
  items : Asm.item list;  (** complete function, ready for [Asm.add_function] *)
}

(** [wrap config ~name body] — instrument one function. Leaf functions
    (no BL/BLR in the body) keep their full frame here, as the kernel
    compiles with frame pointers; see [wrap_leaf] for the
    omit-frame-pointer variant the paper notes is exempt from
    backward-edge overhead. *)
val wrap : Config.t -> name:string -> Asm.item list -> t

(** [wrap_leaf ~name body] — frameless leaf: no frame record, no
    signing (the LR never leaves the register file). *)
val wrap_leaf : name:string -> Asm.item list -> t

(** [frame_push config ~func_label] — the prologue macro: sign LR (per
    scheme) and push the frame record. *)
val frame_push : Config.t -> func_label:string -> Asm.item list

(** [frame_pop config ~func_label] — the epilogue macro: pop the frame
    record and authenticate LR. Does not include the final RET. *)
val frame_pop : Config.t -> func_label:string -> Asm.item list

(** [add_to config program ~name body] — convenience: wrap and register
    with the assembler. *)
val add_to : Config.t -> Asm.program -> name:string -> Asm.item list -> unit

(** Number of extra instructions the prologue+epilogue add compared to
    the uninstrumented frame, for overhead reporting. *)
val overhead_insns : Config.t -> int
