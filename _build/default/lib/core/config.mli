(** Build-time configuration of the Camouflage protection.

    Mirrors the paper's evaluated variants: full protection
    (backward-edge CFI + forward-edge CFI + DFI), backward-edge only,
    and no instrumentation — the three bars of Figures 3 and 4 — plus
    the ARMv8.0 binary-compatibility mode of Section 5.5. *)


type t = {
  scheme : Modifier.return_scheme;  (** backward-edge modifier scheme *)
  mode : Keys.mode;
  protect_pointers : bool;  (** forward-edge CFI + DFI get/set instrumentation *)
  bruteforce_threshold : int;
      (** PAC failures tolerated system-wide before panic (Section 5.4) *)
}

(** Full protection with the Camouflage modifier. *)
val full : t

(** Backward-edge CFI only (middle bars of Figures 3 and 4). *)
val backward_only : t

(** Uninstrumented baseline. *)
val none : t

(** Full protection constrained to backwards-compatible encodings. *)
val compat : t

val name : t -> string
