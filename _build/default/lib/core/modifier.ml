open Aarch64

module Val64 = Camo_util.Val64

type return_scheme = No_cfi | Sp_only | Parts of int64 | Camouflage | Chained

let return_modifier scheme ~sp ~func_addr =
  match scheme with
  | No_cfi -> 0L
  | Chained ->
      invalid_arg
        "Modifier.return_modifier: the chained modifier is a dynamic run-time value"
  | Sp_only -> sp
  | Parts func_id ->
      (* low 48 bits: LTO function id; top 16 bits: low 16 bits of SP *)
      Val64.insert ~lo:48 ~width:16 ~field:sp (Int64.logand func_id (Val64.mask 48))
  | Camouflage ->
      (* low 32 bits: function address; top 32 bits: low 32 bits of SP *)
      Val64.insert ~lo:32 ~width:32 ~field:sp (Val64.extract ~lo:0 ~width:32 func_addr)

let pointer_modifier ~obj_addr ~constant =
  Val64.insert ~lo:16 ~width:48 ~field:obj_addr (Int64.of_int (constant land 0xffff))

let chunk16 v i = Int64.to_int (Val64.extract ~lo:(16 * i) ~width:16 v)

let materialize_return scheme ~func_label ~dst ~scratch =
  match scheme with
  | No_cfi | Sp_only -> []
  | Chained -> []  (* the modifier is the live chain register *)
  | Parts func_id ->
      (* movz/movk the 48-bit id, then insert SP's low 16 bits on top.
         AArch64 forbids SP as a bit-field-move operand, hence the MOV. *)
      [
        Asm.ins (Insn.Movz (dst, chunk16 func_id 0, 0));
        Asm.ins (Insn.Movk (dst, chunk16 func_id 1, 16));
        Asm.ins (Insn.Movk (dst, chunk16 func_id 2, 32));
        Asm.ins (Insn.Mov (scratch, Insn.SP));
        Asm.ins (Insn.Bfi (dst, scratch, 48, 16));
      ]
  | Camouflage ->
      (* Listing 3: adr ip0, function; mov ip1, sp; bfi ip0, ip1, #32, #32 *)
      [
        Asm.adr_of dst func_label;
        Asm.ins (Insn.Mov (scratch, Insn.SP));
        Asm.ins (Insn.Bfi (dst, scratch, 32, 32));
      ]

let materialize_pointer ~obj ~constant ~dst =
  (* Listing 4: mov w9, #const; bfi x9, x0, #16, #48 *)
  [
    Asm.ins (Insn.Movz (dst, constant land 0xffff, 0));
    Asm.ins (Insn.Bfi (dst, obj, 16, 48));
  ]

(* The chain register of the Chained (PACStack-style) scheme: callee-
   saved, reserved by the instrumentation convention. *)
let chain_register = Insn.R 27

let modifier_register scheme ~dst =
  match scheme with
  | No_cfi | Sp_only -> Insn.SP
  | Parts _ | Camouflage -> dst
  | Chained -> chain_register

let scheme_name = function
  | No_cfi -> "none"
  | Sp_only -> "sp-only (Clang)"
  | Parts _ -> "PARTS (16b SP + 48b func id)"
  | Camouflage -> "Camouflage (32b SP + 32b func addr)"
  | Chained -> "Chained (PACStack-style authenticated call stack)"
