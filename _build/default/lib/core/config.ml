
type t = {
  scheme : Modifier.return_scheme;
  mode : Keys.mode;
  protect_pointers : bool;
  bruteforce_threshold : int;
}

let default_threshold = 16

let full =
  {
    scheme = Modifier.Camouflage;
    mode = Keys.Armv83;
    protect_pointers = true;
    bruteforce_threshold = default_threshold;
  }

let backward_only = { full with protect_pointers = false }

let none =
  {
    scheme = Modifier.No_cfi;
    mode = Keys.Armv83;
    protect_pointers = false;
    bruteforce_threshold = default_threshold;
  }

let compat = { full with mode = Keys.Compat }

let name t =
  let base =
    match (t.scheme, t.protect_pointers) with
    | Modifier.No_cfi, false -> "none"
    | Modifier.No_cfi, true -> "pointer-integrity only"
    | scheme, false -> Printf.sprintf "backward-edge (%s)" (Modifier.scheme_name scheme)
    | scheme, true -> Printf.sprintf "full (%s)" (Modifier.scheme_name scheme)
  in
  match t.mode with
  | Keys.Armv83 -> base
  | Keys.Compat -> base ^ ", v8.0-compatible"
