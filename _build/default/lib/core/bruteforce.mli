(** Brute-force mitigation (Section 5.4).

    With the typical configuration only 15 PAC bits remain for kernel
    pointers, well within reach of a local brute-force attack. Every
    PAC authentication failure therefore kills the offending process
    and is logged; once the system-wide failure count crosses the
    configured threshold, the kernel halts, treating the stream of
    failures as a strong signal of attempted exploitation. *)

type verdict =
  | Kill_process  (** SIGKILL the faulting process; system continues *)
  | Panic  (** threshold exceeded: halt the system *)

type event = { pid : int; faulting_va : int64; at_failure : int }

type t

val create : threshold:int -> t

(** [record_failure t ~pid ~faulting_va] accounts one PAC failure. *)
val record_failure : t -> pid:int -> faulting_va:int64 -> verdict

val failures : t -> int
val log : t -> event list
val threshold : t -> int
