open Aarch64

type reason =
  | Reads_key_register of Sysreg.t
  | Writes_key_register of Sysreg.t
  | Writes_sctlr

type violation = { va : int64; insn : Insn.t; reason : reason }

let check ~allowed va insn =
  match Insn.reads_sysreg insn with
  | Some sr when Sysreg.is_pauth_key sr ->
      Some { va; insn; reason = Reads_key_register sr }
  | Some _ | None -> (
      match Insn.writes_sysreg insn with
      | Some sr when Sysreg.is_pauth_key sr && not (allowed va) ->
          Some { va; insn; reason = Writes_key_register sr }
      | Some Sysreg.SCTLR_EL1 when not (allowed va) ->
          Some { va; insn; reason = Writes_sctlr }
      | Some _ | None -> None)

let scan_insns ~base:_ insns ~allowed =
  List.filter_map (fun (va, insn) -> check ~allowed va insn) insns

let scan ~read32 ~base ~size ~allowed =
  let rec go acc off =
    if off >= size then List.rev acc
    else begin
      let va = Int64.add base (Int64.of_int off) in
      let acc =
        match Encode.decode ~pc:va (read32 va) with
        | None -> acc
        | Some insn -> ( match check ~allowed va insn with Some v -> v :: acc | None -> acc)
      in
      go acc (off + 4)
    end
  in
  go [] 0

let reason_to_string = function
  | Reads_key_register sr -> Printf.sprintf "reads key register %s" (Sysreg.name sr)
  | Writes_key_register sr ->
      Printf.sprintf "writes key register %s outside the key setter" (Sysreg.name sr)
  | Writes_sctlr -> "writes SCTLR_EL1 outside the key setter"

let violation_to_string v =
  Printf.sprintf "0x%Lx: %s (%s)" v.va (Insn.to_string v.insn) (reason_to_string v.reason)
