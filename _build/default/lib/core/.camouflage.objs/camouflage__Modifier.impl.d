lib/core/modifier.ml: Aarch64 Asm Camo_util Insn Int64
