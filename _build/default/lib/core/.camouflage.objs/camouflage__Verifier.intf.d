lib/core/verifier.mli: Aarch64 Insn Sysreg
