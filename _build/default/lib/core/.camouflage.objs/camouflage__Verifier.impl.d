lib/core/verifier.ml: Aarch64 Encode Insn Int64 List Printf Sysreg
