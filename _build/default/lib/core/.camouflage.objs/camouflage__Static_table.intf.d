lib/core/static_table.mli: Aarch64 Config Cpu Keys Pointer_integrity
