lib/core/keys.mli: Aarch64 Sysreg
