lib/core/modifier.mli: Aarch64 Asm Insn
