lib/core/instrument.ml: Aarch64 Asm Config Insn Keys Modifier Sysreg
