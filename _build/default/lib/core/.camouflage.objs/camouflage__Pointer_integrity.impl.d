lib/core/pointer_integrity.ml: Aarch64 Asm Config Cpu Hashtbl Insn Keys List Modifier Pac Sysreg
