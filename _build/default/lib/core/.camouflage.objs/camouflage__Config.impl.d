lib/core/config.ml: Keys Modifier Printf
