lib/core/bruteforce.mli:
