lib/core/instrument.mli: Aarch64 Asm Config
