lib/core/static_table.ml: Int64 Keys List Pointer_integrity Printf
