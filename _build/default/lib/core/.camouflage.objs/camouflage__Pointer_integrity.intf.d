lib/core/pointer_integrity.mli: Aarch64 Asm Config Cpu Insn Keys
