lib/core/config.mli: Keys Modifier
