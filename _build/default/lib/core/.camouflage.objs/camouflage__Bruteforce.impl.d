lib/core/bruteforce.ml: List
