lib/core/keys.ml: Aarch64 Sysreg
