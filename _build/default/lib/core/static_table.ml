type entry = { location : int64; role : Keys.role; constant : int }

type t = entry list

let sign_all cpu config registry table ~read64 ~write64 =
  let sign entry =
    match Pointer_integrity.member_of_constant registry entry.constant with
    | None ->
        invalid_arg
          (Printf.sprintf "Static_table: unknown constant 0x%04x" entry.constant)
    | Some m ->
        if m.Pointer_integrity.role <> entry.role then
          invalid_arg
            (Printf.sprintf "Static_table: role mismatch for constant 0x%04x"
               entry.constant);
        let obj_addr =
          Int64.sub entry.location (Int64.of_int m.Pointer_integrity.offset)
        in
        let raw = read64 entry.location in
        let signed =
          Pointer_integrity.sign_value cpu config registry
            ~type_name:m.Pointer_integrity.type_name
            ~member_name:m.Pointer_integrity.member_name ~obj_addr raw
        in
        write64 entry.location signed
  in
  List.iter sign table

let entry_for registry ~location ~type_name ~member_name =
  let constant = Pointer_integrity.constant_of registry ~type_name ~member_name in
  match Pointer_integrity.member_of_constant registry constant with
  | Some m -> { location; role = m.Pointer_integrity.role; constant }
  | None -> assert false
