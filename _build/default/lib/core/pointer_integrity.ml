open Aarch64

type member = { type_name : string; member_name : string; offset : int; role : Keys.role }

type registry = {
  by_name : (string * string, int) Hashtbl.t;
  by_constant : (int, member) Hashtbl.t;
  mutable next : int;
}

let create_registry () =
  { by_name = Hashtbl.create 64; by_constant = Hashtbl.create 64; next = 1 }

let register r m =
  let key = (m.type_name, m.member_name) in
  match Hashtbl.find_opt r.by_name key with
  | Some c -> c
  | None ->
      if r.next > 0xffff then invalid_arg "Pointer_integrity.register: constants exhausted";
      let c = r.next in
      r.next <- r.next + 1;
      Hashtbl.add r.by_name key c;
      Hashtbl.add r.by_constant c m;
      c

let constant_of r ~type_name ~member_name =
  match Hashtbl.find_opt r.by_name (type_name, member_name) with
  | Some c -> c
  | None -> raise Not_found

let member_of_constant r c = Hashtbl.find_opt r.by_constant c

let members r =
  Hashtbl.fold (fun c m acc -> (c, m) :: acc) r.by_constant []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let lookup r ~type_name ~member_name =
  let c = constant_of r ~type_name ~member_name in
  match member_of_constant r c with
  | Some m -> (c, m)
  | None -> assert false

(* The AUT/PAC staging depends on the build mode: v8.3 signs in place,
   the compat build must route the pointer through X17 and the modifier
   through X16 for the 1716 hint forms. *)

let auth_insn (config : Config.t) role ~ptr ~modifier =
  match config.mode with
  | Keys.Armv83 -> [ Asm.ins (Insn.Aut (Keys.key_for config.mode role, ptr, modifier)) ]
  | Keys.Compat ->
      [
        Asm.ins (Insn.Mov (Insn.ip1, ptr));
        Asm.ins (Insn.Mov (Insn.ip0, modifier));
        Asm.ins (Insn.Aut1716 Sysreg.IB);
        Asm.ins (Insn.Mov (ptr, Insn.ip1));
      ]

let pac_insn (config : Config.t) role ~ptr ~modifier =
  match config.mode with
  | Keys.Armv83 -> [ Asm.ins (Insn.Pac (Keys.key_for config.mode role, ptr, modifier)) ]
  | Keys.Compat ->
      [
        Asm.ins (Insn.Mov (Insn.ip1, ptr));
        Asm.ins (Insn.Mov (Insn.ip0, modifier));
        Asm.ins (Insn.Pac1716 Sysreg.IB);
        Asm.ins (Insn.Mov (ptr, Insn.ip1));
      ]

let emit_getter config r ~type_name ~member_name ~obj ~dst ~scratch =
  if dst = obj || scratch = obj || dst = scratch then
    invalid_arg "Pointer_integrity.emit_getter: obj, dst and scratch must be distinct";
  let c, m = lookup r ~type_name ~member_name in
  if not config.Config.protect_pointers then
    [ Asm.ins (Insn.Ldr (dst, Insn.Off (obj, m.offset))) ]
  else
    (* Listing 4: ldr; movz; bfi; autdb *)
    Asm.ins (Insn.Ldr (dst, Insn.Off (obj, m.offset)))
    :: Modifier.materialize_pointer ~obj ~constant:c ~dst:scratch
    @ auth_insn config m.role ~ptr:dst ~modifier:scratch

let emit_setter config r ~type_name ~member_name ~obj ~value ~scratch =
  let c, m = lookup r ~type_name ~member_name in
  if not config.Config.protect_pointers then
    [ Asm.ins (Insn.Str (value, Insn.Off (obj, m.offset))) ]
  else
    Modifier.materialize_pointer ~obj ~constant:c ~dst:scratch
    @ pac_insn config m.role ~ptr:value ~modifier:scratch
    @ [ Asm.ins (Insn.Str (value, Insn.Off (obj, m.offset))) ]

let host_key cpu (config : Config.t) role = Cpu.pac_key cpu (Keys.key_for config.mode role)

(* Mirror the machine exactly: a PAC whose key is disabled (or a part
   without PAuth) passes pointers through unchanged. *)
let key_active cpu (config : Config.t) role =
  Cpu.pauth_enabled cpu (Keys.key_for config.mode role)

let sign_value cpu config r ~type_name ~member_name ~obj_addr value =
  if not config.Config.protect_pointers then value
  else if not (key_active cpu config (lookup r ~type_name ~member_name |> snd).role) then
    value
  else begin
    let c, m = lookup r ~type_name ~member_name in
    let modifier = Modifier.pointer_modifier ~obj_addr ~constant:c in
    Pac.compute ~cipher:(Cpu.cipher cpu) ~key:(host_key cpu config m.role)
      ~cfg:(Cpu.pointer_cfg cpu value) ~modifier value
  end

let auth_value cpu config r ~type_name ~member_name ~obj_addr value =
  if not config.Config.protect_pointers then Ok value
  else if not (key_active cpu config (lookup r ~type_name ~member_name |> snd).role) then
    Ok value
  else begin
    let c, m = lookup r ~type_name ~member_name in
    let modifier = Modifier.pointer_modifier ~obj_addr ~constant:c in
    Pac.auth ~cipher:(Cpu.cipher cpu) ~key:(host_key cpu config m.role)
      ~cfg:(Cpu.pointer_cfg cpu value) ~modifier value
  end
