type verdict = Kill_process | Panic

type event = { pid : int; faulting_va : int64; at_failure : int }

type t = { threshold : int; mutable count : int; mutable events : event list }

let create ~threshold =
  if threshold <= 0 then invalid_arg "Bruteforce.create: threshold";
  { threshold; count = 0; events = [] }

let record_failure t ~pid ~faulting_va =
  t.count <- t.count + 1;
  t.events <- { pid; faulting_va; at_failure = t.count } :: t.events;
  if t.count >= t.threshold then Panic else Kill_process

let failures t = t.count
let log t = List.rev t.events
let threshold t = t.threshold
