open Aarch64

type t = { name : string; items : Asm.item list }

let scratch = Insn.R 15
(* extra scratch used by the compat sequences; like IP0/IP1 it is
   reserved by the instrumentation convention *)

let sign_lr (config : Config.t) ~func_label =
  match config.mode with
  | Keys.Armv83 ->
      let key = Keys.key_for config.mode Keys.Backward in
      Modifier.materialize_return config.scheme ~func_label ~dst:Insn.ip0
        ~scratch:Insn.ip1
      @ [
          Asm.ins
            (Insn.Pac (key, Insn.lr, Modifier.modifier_register config.scheme ~dst:Insn.ip0));
        ]
  | Keys.Compat ->
      (* Only the 1716 hint forms are NOPs on ARMv8.0, and they operate
         on X17 with X16 as modifier, so LR and the modifier must be
         staged through those registers. *)
      let mat =
        Modifier.materialize_return config.scheme ~func_label ~dst:Insn.ip0 ~scratch
      in
      let set_modifier =
        match config.scheme with
        | Modifier.No_cfi | Modifier.Sp_only -> [ Asm.ins (Insn.Mov (Insn.ip0, Insn.SP)) ]
        | Modifier.Parts _ | Modifier.Camouflage -> mat
        | Modifier.Chained ->
            invalid_arg "Instrument: the chained scheme has no compat encoding"
      in
      (Asm.ins (Insn.Mov (Insn.ip1, Insn.lr)) :: set_modifier)
      @ [ Asm.ins (Insn.Pac1716 Sysreg.IB); Asm.ins (Insn.Mov (Insn.lr, Insn.ip1)) ]

let auth_lr (config : Config.t) ~func_label =
  match config.mode with
  | Keys.Armv83 ->
      let key = Keys.key_for config.mode Keys.Backward in
      Modifier.materialize_return config.scheme ~func_label ~dst:Insn.ip0
        ~scratch:Insn.ip1
      @ [
          Asm.ins
            (Insn.Aut (key, Insn.lr, Modifier.modifier_register config.scheme ~dst:Insn.ip0));
        ]
  | Keys.Compat ->
      let mat =
        Modifier.materialize_return config.scheme ~func_label ~dst:Insn.ip0 ~scratch
      in
      let set_modifier =
        match config.scheme with
        | Modifier.No_cfi | Modifier.Sp_only -> [ Asm.ins (Insn.Mov (Insn.ip0, Insn.SP)) ]
        | Modifier.Parts _ | Modifier.Camouflage -> mat
        | Modifier.Chained ->
            invalid_arg "Instrument: the chained scheme has no compat encoding"
      in
      (Asm.ins (Insn.Mov (Insn.ip1, Insn.lr)) :: set_modifier)
      @ [ Asm.ins (Insn.Aut1716 Sysreg.IB); Asm.ins (Insn.Mov (Insn.lr, Insn.ip1)) ]

let protected (config : Config.t) =
  match config.scheme with
  | Modifier.No_cfi -> false
  | Modifier.Sp_only | Modifier.Parts _ | Modifier.Camouflage | Modifier.Chained -> true

(* The chained (PACStack-style) frame: sign LR under the live chain
   register, spill the previous chain value below the frame record, and
   advance the chain to the newly signed LR. The epilogue restores the
   previous chain before authenticating, so every return is bound to the
   whole call path. *)
let chained_push key =
  [
    Asm.ins (Insn.Pac (key, Insn.lr, Modifier.chain_register));
    Asm.ins (Insn.Stp (Insn.fp, Insn.lr, Insn.Pre (Insn.SP, -16)));
    Asm.ins (Insn.Mov (Insn.fp, Insn.SP));
    Asm.ins (Insn.Stp (Modifier.chain_register, Insn.XZR, Insn.Pre (Insn.SP, -16)));
    Asm.ins (Insn.Mov (Modifier.chain_register, Insn.lr));
  ]

let chained_pop key =
  [
    Asm.ins (Insn.Ldp (Modifier.chain_register, Insn.XZR, Insn.Post (Insn.SP, 16)));
    Asm.ins (Insn.Ldp (Insn.fp, Insn.lr, Insn.Post (Insn.SP, 16)));
    Asm.ins (Insn.Aut (key, Insn.lr, Modifier.chain_register));
  ]

let frame_push config ~func_label =
  match (config.Config.scheme, config.Config.mode) with
  | Modifier.Chained, Keys.Armv83 ->
      chained_push (Keys.key_for config.Config.mode Keys.Backward)
  | Modifier.Chained, Keys.Compat ->
      invalid_arg "Instrument: the chained scheme has no compat encoding"
  | (Modifier.No_cfi | Modifier.Sp_only | Modifier.Parts _ | Modifier.Camouflage), _ ->
      (if protected config then sign_lr config ~func_label else [])
      @ [
          Asm.ins (Insn.Stp (Insn.fp, Insn.lr, Insn.Pre (Insn.SP, -16)));
          Asm.ins (Insn.Mov (Insn.fp, Insn.SP));
        ]

let frame_pop config ~func_label =
  match (config.Config.scheme, config.Config.mode) with
  | Modifier.Chained, Keys.Armv83 ->
      chained_pop (Keys.key_for config.Config.mode Keys.Backward)
  | Modifier.Chained, Keys.Compat ->
      invalid_arg "Instrument: the chained scheme has no compat encoding"
  | (Modifier.No_cfi | Modifier.Sp_only | Modifier.Parts _ | Modifier.Camouflage), _ ->
      Asm.ins (Insn.Ldp (Insn.fp, Insn.lr, Insn.Post (Insn.SP, 16)))
      :: (if protected config then auth_lr config ~func_label else [])

let wrap config ~name body =
  {
    name;
    items = frame_push config ~func_label:name @ body
            @ frame_pop config ~func_label:name
            @ [ Asm.ins Insn.Ret ];
  }

let wrap_leaf ~name body = { name; items = body @ [ Asm.ins Insn.Ret ] }

let add_to config program ~name body =
  let f = wrap config ~name body in
  Asm.add_function program ~name:f.name f.items

let overhead_insns config =
  let instrumented =
    Asm.instruction_count
      (frame_push config ~func_label:"f" @ frame_pop config ~func_label:"f")
  in
  let bare =
    Asm.instruction_count
      (frame_push Config.none ~func_label:"f" @ frame_pop Config.none ~func_label:"f")
  in
  instrumented - bare
