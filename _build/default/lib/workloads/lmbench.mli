(** lmbench-style syscall latency micro-benchmarks (Figure 3).

    Each probe measures the average cycles of one kernel operation,
    entered exactly as a user SVC would enter it (exception cost, state
    save, key switch, handler, key restore, ERET). Probes are run under
    the three kernel builds of the paper's figure: full protection,
    backward-edge CFI only, and no protection; the figure's quantity is
    the latency of each build relative to the unprotected build. *)

type probe = {
  probe_name : string;
  runs : int;
}

type result = {
  name : string;
  cycles : float array;  (** per configuration, in [configs] order *)
  relative : float array;  (** vs the last (baseline) configuration *)
}

(** The three kernel builds, most protected first:
    full, backward-edge, none. *)
val configs : (string * Camouflage.Config.t) list

(** The probe suite: null (getpid), read, write, stat, fstat,
    open/close, notifier install, notifier dispatch, pipe write+read,
    fork, context switch. *)
val probes : probe list

(** [run ?seed ()] — all probes under all configurations. *)
val run : ?seed:int64 -> unit -> result list

(** [geometric_mean_overhead results ~config_index] — geomean of the
    relative latencies for one configuration. *)
val geometric_mean_overhead : result list -> config_index:int -> float
