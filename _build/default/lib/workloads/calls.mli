(** Function-call overhead micro-benchmark (Figure 2).

    Measures the per-call cost, in cycles and nanoseconds, of an empty
    non-leaf function instrumented with each backward-edge scheme:
    baseline (no CFI), the Clang/Qualcomm SP-only modifier, PARTS, and
    the Camouflage modifier — reproducing the comparison of Section
    6.1.2 on the model machine. *)

type measurement = {
  scheme_label : string;
  cycles_per_call : float;
  ns_per_call : float;
  overhead_cycles : float;  (** vs the baseline in the same run *)
}

(** [measure ?calls ()] — per-scheme cost of one call+return. *)
val measure : ?calls:int -> unit -> measurement list

(** [measure_one config ~calls] — raw cycles for [calls] calls of the
    empty victim under [config], measured inside a booted kernel. *)
val measure_one : Camouflage.Config.t -> calls:int -> int64

(** [measure_bare config ~calls] — same probe on a bare machine; the
    only way to measure the chained scheme, which cannot boot the
    kernel. *)
val measure_bare : ?cost:Aarch64.Cost.profile -> Camouflage.Config.t -> calls:int -> int64
