(** Application-level workloads (Figure 4).

    Three workloads spanning the user/kernel ratio spectrum of the
    paper's figure: a JPEG picture resize (predominantly user
    computation), a Debian package build (balanced) and a network
    download (mostly kernel). Each is a composition of EL0 compute
    phases (unmodified user code — the user ABI is preserved, R5) and
    syscall sequences; only the kernel side changes across protection
    configurations. *)

type spec = {
  workload_name : string;
  iterations : int;
  user_ops : int;  (** EL0 compute-loop iterations per workload iteration *)
  syscalls_per_iteration : string list;  (** symbolic, see implementation *)
}

type result = {
  name : string;
  cycles : float array;  (** per configuration, order of {!Lmbench.configs} *)
  relative : float array;
}

val specs : spec list

(** [run ?seed ()] — all workloads under all of {!Lmbench.configs}. *)
val run : ?seed:int64 -> unit -> result list

(** [geometric_mean_overhead results ~config_index]. *)
val geometric_mean_overhead : result list -> config_index:int -> float
