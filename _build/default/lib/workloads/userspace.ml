open Aarch64
module C = Camouflage
module K = Kernel

type spec = {
  workload_name : string;
  iterations : int;
  user_ops : int;
  syscalls_per_iteration : string list;
}

type result = { name : string; cycles : float array; relative : float array }

let specs =
  [
    {
      workload_name = "jpeg resize (user-heavy)";
      iterations = 12;
      user_ops = 6000;
      syscalls_per_iteration = [ "read" ];
    };
    {
      workload_name = "deb build (balanced)";
      iterations = 12;
      user_ops = 1500;
      syscalls_per_iteration = [ "open"; "stat"; "read"; "write"; "close" ];
    };
    {
      workload_name = "net download (kernel-heavy)";
      iterations = 12;
      user_ops = 400;
      syscalls_per_iteration = [ "read_small"; "write_small"; "stat" ];
    };
  ]

(* The EL0 compute kernel: a tight arithmetic loop, identical across
   kernel configurations (user binaries are untouched). *)
let user_compute_program ~ops =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"compute"
    [
      Asm.ins (Insn.Movz (Insn.R 9, ops land 0xffff, 0));
      Asm.ins (Insn.Movk (Insn.R 9, (ops lsr 16) land 0xffff, 16));
      Asm.ins (Insn.Movz (Insn.R 10, 0x1234, 0));
      Asm.label "loop";
      Asm.ins (Insn.Add_imm (Insn.R 10, Insn.R 10, 3));
      Asm.ins (Insn.Eor_reg (Insn.R 10, Insn.R 10, Insn.R 9));
      Asm.ins (Insn.Lsr_imm (Insn.R 11, Insn.R 10, 7));
      Asm.ins (Insn.Add_reg (Insn.R 10, Insn.R 10, Insn.R 11));
      Asm.ins (Insn.Sub_imm (Insn.R 9, Insn.R 9, 1));
      Asm.cbnz_to (Insn.R 9) "loop";
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 10));
      Asm.ins Insn.Ret;
    ];
  prog

let must name = function
  | K.System.Ok v -> v
  | K.System.Killed m | K.System.Panicked m ->
      failwith (Printf.sprintf "workload %s: %s" name m)

let reset_pos sys fd =
  let task = (K.System.current sys).K.System.va in
  let file =
    K.Kmem.read64 (K.System.cpu sys)
      (Int64.add task (Int64.of_int (K.Kobject.Task.off_fd_table + (8 * Int64.to_int fd))))
  in
  K.Kmem.write64 (K.System.cpu sys) (Int64.add file (Int64.of_int K.Kobject.File.off_pos)) 0L

let reset_pipe sys =
  let state = K.System.kernel_symbol sys "pipe_state" in
  K.Kmem.write64 (K.System.cpu sys) state 0L;
  K.Kmem.write64 (K.System.cpu sys) (Int64.add state 8L) 0L;
  K.Kmem.write64 (K.System.cpu sys) (Int64.add state 16L) 0L

let run_workload ~config ~seed spec =
  let sys = K.System.boot ~config ~seed () in
  let cpu = K.System.cpu sys in
  let buf = K.Layout.user_data_base in
  K.Kmem.map_user_region cpu ~base:buf ~bytes:0x4000 Mmu.rw;
  let layout = K.System.map_user_program sys (user_compute_program ~ops:spec.user_ops) in
  let compute = Asm.symbol layout "compute" in
  let std_fd = must "open" (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ]) in
  let scratch_fd = ref std_fd in
  let do_syscall name =
    match name with
    | "read" ->
        reset_pos sys std_fd;
        ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ std_fd; buf; 512L ]))
    | "write" ->
        reset_pos sys std_fd;
        ignore
          (must name (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ std_fd; buf; 512L ]))
    | "read_small" ->
        reset_pos sys std_fd;
        ignore
          (must name (K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ std_fd; buf; 128L ]))
    | "write_small" ->
        reset_pos sys std_fd;
        ignore
          (must name (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ std_fd; buf; 128L ]))
    | "open" ->
        ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_close ~args:[ !scratch_fd ]));
        scratch_fd := must name (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 2L ])
    | "close" -> ()
    | "stat" ->
        ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_stat ~args:[ 4L; buf ]))
    | "pipe_write" ->
        reset_pipe sys;
        ignore
          (must name (K.System.syscall sys ~nr:K.Kbuild.sys_pipe_write ~args:[ buf; 512L ]))
    | "pipe_read" ->
        ignore
          (must name (K.System.syscall sys ~nr:K.Kbuild.sys_pipe_read ~args:[ buf; 512L ]))
    | other -> failwith ("unknown syscall tag " ^ other)
  in
  let run_compute () =
    Cpu.set_el cpu El.El0;
    Cpu.set_sp_of cpu El.El0 K.Layout.user_stack_top;
    match Cpu.call ~max_insns:100_000_000 cpu compute with
    | Cpu.Sentinel_return -> ()
    | other -> failwith ("compute: " ^ Cpu.stop_to_string other)
  in
  let before = Cpu.cycles cpu in
  for _ = 1 to spec.iterations do
    run_compute ();
    List.iter do_syscall spec.syscalls_per_iteration
  done;
  Int64.to_float (Int64.sub (Cpu.cycles cpu) before)

let run ?(seed = 99L) () =
  let n = List.length Lmbench.configs in
  List.map
    (fun spec ->
      let cycles =
        Array.of_list
          (List.map (fun (_, config) -> run_workload ~config ~seed spec) Lmbench.configs)
      in
      let baseline = cycles.(n - 1) in
      {
        name = spec.workload_name;
        cycles;
        relative = Array.map (fun c -> c /. baseline) cycles;
      })
    specs

let geometric_mean_overhead results ~config_index =
  Camo_util.Stats.geomean (List.map (fun r -> r.relative.(config_index)) results)
