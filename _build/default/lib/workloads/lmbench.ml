open Aarch64
module C = Camouflage
module K = Kernel

type probe = { probe_name : string; runs : int }

type result = { name : string; cycles : float array; relative : float array }

let configs =
  [
    ("full", C.Config.full);
    ("backward-edge", C.Config.backward_only);
    ("none", C.Config.none);
  ]

let probes =
  [
    { probe_name = "null (getpid)"; runs = 50 };
    { probe_name = "read 512B"; runs = 50 };
    { probe_name = "write 512B"; runs = 50 };
    { probe_name = "stat"; runs = 50 };
    { probe_name = "fstat"; runs = 50 };
    { probe_name = "open/close"; runs = 50 };
    { probe_name = "notifier install"; runs = 50 };
    { probe_name = "notifier dispatch"; runs = 50 };
    { probe_name = "pipe (512B rt)"; runs = 50 };
    { probe_name = "sock send/recv 128B"; runs = 50 };
    { probe_name = "poll 8 fds"; runs = 50 };
    { probe_name = "timer arm+fire"; runs = 50 };
    { probe_name = "fork"; runs = 8 };
    { probe_name = "ctx switch"; runs = 20 };
  ]

let must name = function
  | K.System.Ok v -> v
  | K.System.Killed m | K.System.Panicked m ->
      failwith (Printf.sprintf "lmbench %s: %s" name m)

let user_buf sys =
  let base = K.Layout.user_data_base in
  K.Kmem.map_user_region (K.System.cpu sys) ~base ~bytes:0x4000 Mmu.rw;
  base

(* Host-side fixture reset: not attacker behaviour and not charged. *)
let file_of_fd sys fd =
  let task = (K.System.current sys).K.System.va in
  K.Kmem.read64 (K.System.cpu sys)
    (Int64.add task (Int64.of_int (K.Kobject.Task.off_fd_table + (8 * Int64.to_int fd))))

let reset_pos sys fd =
  let file = file_of_fd sys fd in
  K.Kmem.write64 (K.System.cpu sys) (Int64.add file (Int64.of_int K.Kobject.File.off_pos)) 0L

let reset_pipe sys =
  let state = K.System.kernel_symbol sys "pipe_state" in
  K.Kmem.write64 (K.System.cpu sys) state 0L;
  K.Kmem.write64 (K.System.cpu sys) (Int64.add state 8L) 0L;
  K.Kmem.write64 (K.System.cpu sys) (Int64.add state 16L) 0L

(* Each probe: given a fresh system, return (setup, one_iteration). *)
let probe_actions sys name =
  let buf = user_buf sys in
  match name with
  | "null (getpid)" ->
      ((fun () -> ()), fun () -> ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_getpid ~args:[])))
  | "read 512B" ->
      let fd = ref 0L in
      ( (fun () -> fd := must name (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ])),
        fun () ->
          reset_pos sys !fd;
          ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ !fd; buf; 512L ])) )
  | "write 512B" ->
      let fd = ref 0L in
      ( (fun () -> fd := must name (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ])),
        fun () ->
          reset_pos sys !fd;
          ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ !fd; buf; 512L ])) )
  | "stat" ->
      ( (fun () -> ()),
        fun () -> ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_stat ~args:[ 9L; buf ])) )
  | "fstat" ->
      let fd = ref 0L in
      ( (fun () -> fd := must name (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ])),
        fun () ->
          ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_fstat ~args:[ !fd; buf ])) )
  | "open/close" ->
      ( (fun () -> ()),
        fun () ->
          let fd = must name (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ]) in
          ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_close ~args:[ fd ])) )
  | "notifier install" ->
      ( (fun () -> ()),
        fun () ->
          ignore
            (must name
               (K.System.syscall sys ~nr:K.Kbuild.sys_notifier_register ~args:[ 1L; 0L ])) )
  | "notifier dispatch" ->
      ( (fun () ->
          ignore
            (must name
               (K.System.syscall sys ~nr:K.Kbuild.sys_notifier_register ~args:[ 1L; 0L ]))),
        fun () ->
          ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_notifier_call ~args:[ 1L ])) )
  | "pipe (512B rt)" ->
      ( (fun () -> ()),
        fun () ->
          reset_pipe sys;
          ignore
            (must name (K.System.syscall sys ~nr:K.Kbuild.sys_pipe_write ~args:[ buf; 512L ]));
          ignore
            (must name (K.System.syscall sys ~nr:K.Kbuild.sys_pipe_read ~args:[ buf; 512L ])) )
  | "sock send/recv 128B" ->
      let fd1 = ref 0L in
      ( (fun () ->
          fd1 := must name (K.System.syscall sys ~nr:K.Kbuild.sys_socketpair ~args:[])),
        fun () ->
          ignore
            (must name (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ !fd1; buf; 128L ]));
          ignore
            (must name
               (K.System.syscall sys ~nr:K.Kbuild.sys_read
                  ~args:[ Int64.add !fd1 1L; buf; 128L ])) )
  | "poll 8 fds" ->
      let arr = Int64.add buf 2048L in
      ( (fun () ->
          List.iteri
            (fun idx fd ->
              ignore idx;
              let fd = must name fd in
              ignore
                (must name (K.System.syscall sys ~nr:K.Kbuild.sys_write ~args:[ fd; buf; 8L ]));
              K.Kmem.write64 (K.System.cpu sys)
                (Int64.add arr (Int64.of_int (8 * idx)))
                fd)
            (List.init 8 (fun _ -> K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ]))),
        fun () ->
          ignore (must name (K.System.syscall sys ~nr:K.Kbuild.sys_poll ~args:[ arr; 8L ])) )
  | "timer arm+fire" ->
      ( (fun () -> ()),
        fun () ->
          ignore
            (must name (K.System.syscall sys ~nr:K.Kbuild.sys_timer_set ~args:[ 0L; 0L; 0L ]));
          match K.System.run_timers sys with
          | K.System.Ok _ -> ()
          | K.System.Killed m | K.System.Panicked m -> failwith ("timer: " ^ m) )
  | "fork" ->
      ( (fun () -> ()),
        fun () ->
          match K.System.fork sys with
          | Result.Ok _ -> ()
          | Result.Error m -> failwith ("fork: " ^ m) )
  | "ctx switch" ->
      let other = ref None in
      ( (fun () -> other := Some (K.System.create_task sys)),
        fun () ->
          let target =
            match !other with Some t -> t | None -> failwith "ctxsw: no task"
          in
          let back = K.System.current sys in
          (match K.System.switch_to sys target with
          | K.System.Ok _ -> ()
          | K.System.Killed m | K.System.Panicked m -> failwith ("ctxsw: " ^ m));
          (match K.System.switch_to sys back with
          | K.System.Ok _ -> ()
          | K.System.Killed m | K.System.Panicked m -> failwith ("ctxsw back: " ^ m)) )
  | other -> failwith ("unknown probe " ^ other)

let measure_probe ~config ~seed probe =
  let sys = K.System.boot ~config ~seed () in
  let setup, iter = probe_actions sys probe.probe_name in
  setup ();
  (* warm-up iteration excluded from the measurement *)
  iter ();
  let cpu = K.System.cpu sys in
  let before = Cpu.cycles cpu in
  for _ = 1 to probe.runs do
    iter ()
  done;
  Int64.to_float (Int64.sub (Cpu.cycles cpu) before) /. float_of_int probe.runs

let run ?(seed = 1234L) () =
  let n = List.length configs in
  List.map
    (fun probe ->
      let cycles =
        Array.of_list
          (List.map (fun (_, config) -> measure_probe ~config ~seed probe) configs)
      in
      let baseline = cycles.(n - 1) in
      {
        name = probe.probe_name;
        cycles;
        relative = Array.map (fun c -> c /. baseline) cycles;
      })
    probes

let geometric_mean_overhead results ~config_index =
  Camo_util.Stats.geomean (List.map (fun r -> r.relative.(config_index)) results)
