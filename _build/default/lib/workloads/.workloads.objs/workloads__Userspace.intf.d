lib/workloads/userspace.mli:
