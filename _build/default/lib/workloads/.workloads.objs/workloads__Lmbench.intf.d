lib/workloads/lmbench.mli: Camouflage
