lib/workloads/userspace.ml: Aarch64 Array Asm Camo_util Camouflage Cpu El Insn Int64 Kernel List Lmbench Mmu Printf
