lib/workloads/lmbench.ml: Aarch64 Array Camo_util Camouflage Cpu Int64 Kernel List Mmu Printf Result
