lib/workloads/calls.ml: Aarch64 Asm Bare Camouflage Cost Cpu El Insn Int64 Kelf Kernel List Result
