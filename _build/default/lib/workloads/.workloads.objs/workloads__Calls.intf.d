lib/workloads/calls.mli: Aarch64 Camouflage
