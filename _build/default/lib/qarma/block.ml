module Val64 = Camo_util.Val64

type key = { w0 : int64; k0 : int64 }
type t = { sbox : Cells.sbox; rounds : int }

let alpha = 0xC0AC29B7C97C50DDL

let round_constants =
  [|
    0x0000000000000000L;
    0x13198A2E03707344L;
    0xA4093822299F31D0L;
    0x082EFA98EC4E6C89L;
    0x452821E638D01377L;
    0xBE5466CF34E90C6CL;
    0x3F84D5B5B5470917L;
    0x9216D5D98979FB1BL;
  |]

let create ?(sbox = Cells.Sigma1) ?(rounds = 6) () =
  if rounds < 1 || rounds > Array.length round_constants then
    invalid_arg "Qarma.Block.create: rounds";
  { sbox; rounds }

let sbox t = t.sbox
let rounds t = t.rounds
let key_of_pair (hi, lo) = { w0 = hi; k0 = lo }

(* The orthomorphism o deriving the second whitening key half. *)
let derive_w1 w0 = Int64.logxor (Val64.ror w0 1) (Int64.shift_right_logical w0 63)

(* One forward round: tweakey addition, then (except in the short first
   round) tau and MixColumns, then the S-box layer. *)
let forward t is tk ~full =
  let is = Int64.logxor is tk in
  let is = if full then Cells.mix_columns (Cells.shuffle is) else is in
  Cells.sub_cells t.sbox is

(* Inverse of [forward]. *)
let backward t is tk ~full =
  let is = Cells.sub_cells_inv t.sbox is in
  let is = if full then Cells.shuffle_inv (Cells.mix_columns is) else is in
  Int64.logxor is tk

(* The keyed pseudo-reflector: tau, M, central key addition, tau inverse. *)
let reflect is k1 =
  let is = Cells.shuffle is in
  let is = Cells.mix_columns is in
  let is = Int64.logxor is k1 in
  Cells.shuffle_inv is

(* Tweak values used by successive rounds: index 0 .. rounds. *)
let tweak_schedule t tweak =
  let sched = Array.make (t.rounds + 1) tweak in
  for i = 1 to t.rounds do
    sched.(i) <- Cells.tweak_update sched.(i - 1)
  done;
  sched

let encrypt t ~key ~tweak plaintext =
  let w1 = derive_w1 key.w0 in
  let k1 = key.k0 in
  let sched = tweak_schedule t tweak in
  let is = ref (Int64.logxor plaintext key.w0) in
  for i = 0 to t.rounds - 1 do
    let tk = Int64.logxor (Int64.logxor key.k0 sched.(i)) round_constants.(i) in
    is := forward t !is tk ~full:(i <> 0)
  done;
  is := forward t !is (Int64.logxor w1 sched.(t.rounds)) ~full:true;
  is := reflect !is k1;
  is := backward t !is (Int64.logxor key.w0 sched.(t.rounds)) ~full:true;
  for i = t.rounds - 1 downto 0 do
    let tk =
      Int64.logxor (Int64.logxor (Int64.logxor key.k0 sched.(i)) round_constants.(i)) alpha
    in
    is := backward t !is tk ~full:(i <> 0)
  done;
  Int64.logxor !is w1

(* Decryption runs the encryption data path in reverse; the inverse of the
   reflector with central key k1 is the reflector with central key M * k1. *)
let decrypt t ~key ~tweak ciphertext =
  let w1 = derive_w1 key.w0 in
  let k1_dec = Cells.mix_columns key.k0 in
  let sched = tweak_schedule t tweak in
  let is = ref (Int64.logxor ciphertext w1) in
  for i = 0 to t.rounds - 1 do
    let tk =
      Int64.logxor (Int64.logxor (Int64.logxor key.k0 sched.(i)) round_constants.(i)) alpha
    in
    is := forward t !is tk ~full:(i <> 0)
  done;
  is := forward t !is (Int64.logxor key.w0 sched.(t.rounds)) ~full:true;
  is := reflect !is k1_dec;
  is := backward t !is (Int64.logxor w1 sched.(t.rounds)) ~full:true;
  for i = t.rounds - 1 downto 0 do
    let tk = Int64.logxor (Int64.logxor key.k0 sched.(i)) round_constants.(i) in
    is := backward t !is tk ~full:(i <> 0)
  done;
  Int64.logxor !is key.w0
