lib/qarma/cells.mli:
