lib/qarma/block.ml: Array Camo_util Cells Int64
