lib/qarma/block.mli: Cells
