lib/qarma/cells.ml: Array Camo_util List
