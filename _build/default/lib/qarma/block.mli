(** QARMA-64 tweakable block cipher (Avanzi, ToSC 2017).

    QARMA is the reference pointer-authentication-code algorithm of the
    ARMv8.3 PAuth extension: a three-round Even-Mansour construction with
    a keyed pseudo-reflector, 64-bit blocks, 64-bit tweaks and 128-bit
    keys. The Camouflage design computes every PAC with this cipher. *)

type key = {
  w0 : int64;  (** whitening key half *)
  k0 : int64;  (** core key half *)
}

(** A cipher instance: S-box variant and number of forward rounds.
    The specification pairs sigma0 with r = 5, sigma1 with r = 6 and
    sigma2 with r = 7 in its test vectors. *)
type t

(** [create ?sbox ?rounds ()] — defaults to the [Sigma1], r = 6 instance
    recommended for pointer authentication. Raises [Invalid_argument] if
    [rounds] is not in [1, 8]. *)
val create : ?sbox:Cells.sbox -> ?rounds:int -> unit -> t

(** [encrypt t ~key ~tweak plaintext]. *)
val encrypt : t -> key:key -> tweak:int64 -> int64 -> int64

(** [decrypt t ~key ~tweak ciphertext] — inverse of [encrypt]. *)
val decrypt : t -> key:key -> tweak:int64 -> int64 -> int64

(** [key_of_pair (hi, lo)] — packs the two 64-bit halves of an ARM key
    register pair as a QARMA key, [hi] being [w0]. *)
val key_of_pair : int64 * int64 -> key

val sbox : t -> Cells.sbox
val rounds : t -> int
