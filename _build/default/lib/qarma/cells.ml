module Val64 = Camo_util.Val64

type sbox = Sigma0 | Sigma1 | Sigma2

let sigma0 = [| 0; 14; 2; 10; 9; 15; 8; 11; 6; 4; 3; 7; 13; 12; 1; 5 |]
let sigma1 = [| 10; 13; 14; 6; 15; 7; 3; 5; 9; 8; 0; 12; 11; 1; 2; 4 |]
let sigma2 = [| 11; 6; 8; 15; 12; 0; 9; 14; 3; 7; 4; 5; 13; 2; 1; 10 |]

let invert_table t =
  let inv = Array.make 16 0 in
  Array.iteri (fun i v -> inv.(v) <- i) t;
  inv

let sigma0_inv = invert_table sigma0
let sigma1_inv = invert_table sigma1
let sigma2_inv = invert_table sigma2

let table_of = function
  | Sigma0 -> sigma0
  | Sigma1 -> sigma1
  | Sigma2 -> sigma2

let table_inv_of = function
  | Sigma0 -> sigma0_inv
  | Sigma1 -> sigma1_inv
  | Sigma2 -> sigma2_inv

let map_cells f x =
  let rec go acc i =
    if i > 15 then acc else go (Val64.set_nibble i (f i (Val64.nibble i x)) acc) (i + 1)
  in
  go 0L 0

let apply_table t x = map_cells (fun _ v -> t.(v)) x
let sub_cells sigma x = apply_table (table_of sigma) x
let sub_cells_inv sigma x = apply_table (table_inv_of sigma) x

(* tau and h are the cell permutations of the QARMA-64 specification. *)
let tau = [| 0; 11; 6; 13; 10; 1; 12; 7; 5; 14; 3; 8; 15; 4; 9; 2 |]
let tau_inv = invert_table tau
let h = [| 6; 5; 14; 15; 0; 1; 2; 3; 7; 12; 13; 4; 8; 9; 10; 11 |]
let h_inv = invert_table h

let permute p x = map_cells (fun i _ -> Val64.nibble p.(i) x) x
let shuffle x = permute tau x
let shuffle_inv x = permute tau_inv x

(* M = circ(0, rho^1, rho^2, rho^1): entry (r, c) gives the left-rotation
   amount applied to the input cell, 0 meaning the zero coefficient. *)
let m_matrix = [| 0; 1; 2; 1; 1; 0; 1; 2; 2; 1; 0; 1; 1; 2; 1; 0 |]

let rot4 a b = ((a lsl b) land 0xf) lor (a lsr (4 - b))

let mix_columns x =
  let out = ref 0L in
  for row = 0 to 3 do
    for col = 0 to 3 do
      let acc = ref 0 in
      for j = 0 to 3 do
        let b = m_matrix.((4 * row) + j) in
        if b <> 0 then acc := !acc lxor rot4 (Val64.nibble ((4 * j) + col) x) b
      done;
      out := Val64.set_nibble ((4 * row) + col) !acc !out
    done
  done;
  !out

(* The tweak-schedule LFSR maps (b3, b2, b1, b0) to (b0 xor b1, b3, b2, b1)
   and is applied to cells 0, 1, 3 and 4 after the h permutation. *)
let lfsr x = (((x lxor (x lsr 1)) land 1) lsl 3) lor (x lsr 1)
let lfsr_inv x = ((x lsl 1) land 0xe) lor (((x lsr 3) lxor x) land 1)
let lfsr_cells = [ 0; 1; 3; 4 ]

let on_lfsr_cells f x =
  List.fold_left (fun acc i -> Val64.set_nibble i (f (Val64.nibble i acc)) acc) x lfsr_cells

let tweak_update x = on_lfsr_cells lfsr (permute h x)
let tweak_update_inv x = permute h_inv (on_lfsr_cells lfsr_inv x)
