(** QARMA-64 cell-array primitives.

    A 64-bit block is a 4x4 array of 4-bit cells; cell 0 is the most
    significant nibble (the convention of Avanzi's specification). The
    functions here are the building blocks of the round function:
    S-box layers, the cell shuffle tau, the MixColumns-like diffusion
    matrix M, and the tweak-schedule permutation h with its LFSR. *)

type sbox = Sigma0 | Sigma1 | Sigma2

(** [sub_cells sigma x] applies the selected S-box to every cell. *)
val sub_cells : sbox -> int64 -> int64

(** [sub_cells_inv sigma x] applies the inverse S-box to every cell. *)
val sub_cells_inv : sbox -> int64 -> int64

(** [shuffle x] applies the cell permutation tau. *)
val shuffle : int64 -> int64

(** [shuffle_inv x] applies tau inverse. *)
val shuffle_inv : int64 -> int64

(** [mix_columns x] multiplies the state by the involutory matrix
    M = circ(0, rho, rho^2, rho) over cell rotations. *)
val mix_columns : int64 -> int64

(** [tweak_update x] is one step of the forward tweak schedule:
    permutation h followed by the 4-bit LFSR on cells 0, 1, 3, 4. *)
val tweak_update : int64 -> int64

(** [tweak_update_inv x] inverts [tweak_update]. *)
val tweak_update_inv : int64 -> int64
