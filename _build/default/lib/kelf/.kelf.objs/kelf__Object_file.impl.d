lib/kelf/object_file.ml: Aarch64 Asm List
