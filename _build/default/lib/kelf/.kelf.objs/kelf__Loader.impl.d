lib/kelf/loader.ml: Aarch64 Asm Camouflage Int64 List Object_file Printf String
