lib/kelf/object_file.mli: Aarch64 Asm
