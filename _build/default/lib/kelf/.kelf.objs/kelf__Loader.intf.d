lib/kelf/loader.mli: Aarch64 Asm Camouflage Cpu Object_file
