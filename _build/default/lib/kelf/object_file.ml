open Aarch64

type word = Lit of int64 | Sym of string | Sym_off of string * int

type blob = { blob_name : string; words : word list }

type static_sign = {
  sign_blob : string;
  word_index : int;
  type_name : string;
  member_name : string;
}

type t = {
  obj_name : string;
  functions : (string * Asm.item list) list;
  rodata : blob list;
  data : blob list;
  pauth_static : static_sign list;
}

let empty obj_name =
  { obj_name; functions = []; rodata = []; data = []; pauth_static = [] }

let add_function t ~name items = { t with functions = t.functions @ [ (name, items) ] }
let add_rodata t blob = { t with rodata = t.rodata @ [ blob ] }
let add_data t blob = { t with data = t.data @ [ blob ] }
let add_static_sign t s = { t with pauth_static = t.pauth_static @ [ s ] }

let text_instruction_count t =
  List.fold_left (fun acc (_, items) -> acc + Asm.instruction_count items) 0 t.functions

let blob_bytes blobs =
  List.fold_left (fun acc b -> acc + (8 * List.length b.words)) 0 blobs

let data_size_bytes t = blob_bytes t.data
let rodata_size_bytes t = blob_bytes t.rodata
