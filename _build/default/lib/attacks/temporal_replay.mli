(** Temporal (same-context) replay: the residual reuse risk Section
    6.2.1 acknowledges for every static-modifier scheme.

    A return address signed at (SP, function) context C authenticates
    whenever C recurs — including {e later in time} along a different
    call path that happens to revisit the same stack depth and callee.
    The experiment builds two call paths (main_a -> site_a -> victim and
    main_b -> site_b -> victim) that place the victim at an identical
    (SP, function) context, harvests the stale signed return address
    left by the first path, and has the attacker plant it into the
    victim's live frame on the second path:

    - under SP-based modifiers (including Camouflage) the replay is
      {b accepted}: control returns into [site_a] instead of [site_b];
    - under the chained (PACStack-style) scheme the two paths carry
      different chain tokens, so the replay is {b rejected}.

    Runs on a bare machine (no kernel): the chained scheme reserves a
    live chain register and cannot use prefabricated frames. *)

type outcome =
  | Replay_accepted  (** control diverted to the first path's call site *)
  | Replay_rejected  (** PAC failure: the chain separates the paths *)
  | Inconclusive of string

(** [run scheme] — execute both phases under a backward-edge-only
    configuration using [scheme]. *)
val run : Camouflage.Modifier.return_scheme -> outcome

val outcome_to_string : outcome -> string
