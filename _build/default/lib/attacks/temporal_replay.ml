open Aarch64
module C = Camouflage

type outcome = Replay_accepted | Replay_rejected | Inconclusive of string

(* x26 carries the marker-cell address (set by the driver); x0 carries
   the value to plant into the victim's saved-LR slot (0 = benign). *)
let build_program config =
  let prog = Asm.create () in
  let wrap name body =
    let f = C.Instrument.wrap config ~name body in
    Asm.add_function prog ~name f.C.Instrument.items
  in
  wrap "victim"
    [
      (* record the frame base so the harvest step can find the slot *)
      Asm.ins (Insn.Str (Insn.fp, Insn.Off (Insn.R 26, 16)));
      Asm.cbz_to (Insn.R 0) "skip";
      (* the attacker's mid-flight write of the saved return address *)
      Asm.ins (Insn.Str (Insn.R 0, Insn.Off (Insn.fp, 8)));
      Asm.label "skip";
    ];
  wrap "site_a"
    [
      Asm.bl_to "victim";
      Asm.ins (Insn.Movz (Insn.R 9, 0xA, 0));
      Asm.ins (Insn.Str (Insn.R 9, Insn.Off (Insn.R 26, 0)));
    ];
  wrap "site_b"
    [
      Asm.bl_to "victim";
      Asm.ins (Insn.Movz (Insn.R 9, 0xB, 0));
      Asm.ins (Insn.Str (Insn.R 9, Insn.Off (Insn.R 26, 0)));
    ];
  wrap "main_a" [ Asm.bl_to "site_a" ];
  wrap "main_b" [ Asm.bl_to "site_b" ];
  prog

let run scheme =
  let config = { C.Config.backward_only with scheme } in
  let cpu = Bare.machine ~seed:0xACDCL () in
  let layout = Bare.load cpu (build_program config) in
  let marker = Bare.data_base in
  let read64 va = Bare.read64 cpu va in
  let write64 va v = Bare.write64 cpu va v in
  Cpu.set_reg cpu (Insn.R 26) marker;
  (* Phase 1: the benign path leaves a stale signed return address. *)
  Cpu.set_reg cpu (Insn.R 0) 0L;
  match Cpu.call cpu (Asm.symbol layout "main_a") with
  | Cpu.Sentinel_return -> (
      if read64 marker <> 0xAL then Inconclusive "phase 1 did not mark"
      else begin
        let victim_fp = read64 (Int64.add marker 16L) in
        let stale_lr = read64 (Int64.add victim_fp 8L) in
        write64 marker 0L;
        (* Phase 2: same (SP, function) context via the other path, with
           the stale value planted mid-flight. *)
        Cpu.set_sp_of cpu El.El1 Bare.stack_top;
        Cpu.set_reg cpu (Insn.R 0) stale_lr;
        Cpu.set_reg cpu (Insn.R 26) marker;
        match Cpu.call cpu (Asm.symbol layout "main_b") with
        | Cpu.Sentinel_return ->
            if read64 marker = 0xAL then Replay_accepted
            else Inconclusive "phase 2 returned normally"
        | Cpu.Fault _ ->
            (* diverted control marks 0xA before the collateral fault;
               a rejected replay faults before any marking *)
            if read64 marker = 0xAL then Replay_accepted
            else if read64 marker = 0L then Replay_rejected
            else Inconclusive "phase 2 marked the wrong site"
        | other -> Inconclusive (Cpu.stop_to_string other)
      end)
  | other -> Inconclusive ("phase 1: " ^ Cpu.stop_to_string other)

let outcome_to_string = function
  | Replay_accepted -> "ACCEPTED: stale return address reused, control diverted"
  | Replay_rejected -> "REJECTED: call-path binding separates the two contexts"
  | Inconclusive m -> "inconclusive: " ^ m
