(** Reuse/replay attacks against backward-edge CFI (Sections 4.2 and 7).

    A PAC binds a pointer to (key, modifier): any signed value harvested
    from one context authenticates successfully in every other context
    with an equal modifier. The schemes differ exactly in how often
    kernel contexts collide:

    - PARTS truncates SP to 16 bits, so kernel stacks separated by a
      multiple of 2^16 bytes produce colliding modifiers;
    - plain SP modifiers collide whenever two functions run at the same
      stack depth in the same task;
    - Camouflage requires equal SP low-32 {e and} equal function
      address low-32.

    [cross_task_switch_frame] runs the PARTS-collision attack on the
    machine: harvest (model) a return address signed in a victim task's
    switch-frame context, plant it in the congruent frame of a task
    whose stack lies 64 KiB away, and trigger the switch.
    [collision_fraction] measures modifier-collision rates over
    synthetic harvest/target context populations (the quantitative side
    of ablation A1). *)

type outcome =
  | Accepted of { evidence : int64 }  (** replayed pointer authenticated; control diverted *)
  | Rejected  (** PAC failure: the scheme separates the two contexts *)
  | Failed of string

(** [cross_task_switch_frame sys] — requires a booted system; creates
    the victim tasks itself (stack slots 64 KiB apart). *)
val cross_task_switch_frame : Kernel.System.t -> outcome

(** [collision_fraction scheme ~samples ~seed] — fraction of ordered
    pairs of distinct synthetic kernel contexts (function, SP) whose
    modifiers collide under [scheme]. Contexts model the paper's stack
    discipline: 16 KiB stacks, 4 KiB-aligned, multiple tasks. *)
val collision_fraction :
  Camouflage.Modifier.return_scheme -> samples:int -> seed:int64 -> float

val outcome_to_string : outcome -> string
