(** PAC brute forcing (Section 5.4; Appendix A).

    With 15 PAC bits a local attacker can afford to guess: each attempt
    plants a forged PAC on a signed pointer and triggers its use. A
    correct guess survives authentication; a wrong one kills the
    guessing process — and the paper's mitigation halts the system after
    a bounded number of failures, turning an expected 2^14-attempt
    search into a handful of tries. *)

type report = {
  attempts : int;  (** guesses actually made *)
  successes : int;  (** forged pointers that authenticated *)
  detected : int;  (** PAC failures recorded *)
  panicked : bool;  (** the threshold fired *)
}

(** [run sys ~attempts ~seed] — repeatedly corrupt the PAC bits of a
    freshly signed [f_ops] pointer with random guesses and invoke the
    read path. Stops early on panic. *)
val run : Kernel.System.t -> attempts:int -> seed:int64 -> report

val report_to_string : report -> string
