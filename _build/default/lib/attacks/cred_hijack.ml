module K = Kernel

type variant = Raw | Replayed

type outcome = Escalated of { uid : int64 } | Detected | Failed of string

let ( let* ) = Result.bind

let attack sys variant =
  (* run as an unprivileged task: fork one and switch to it *)
  let* attacker_task =
    match K.System.fork sys with
    | Result.Ok t -> Result.Ok t
    | Result.Error m -> Result.Error ("fork: " ^ m)
  in
  (match K.System.switch_to sys attacker_task with
  | K.System.Ok _ -> ()
  | K.System.Killed m | K.System.Panicked m -> failwith ("switch: " ^ m));
  (* confirm we are unprivileged *)
  let* uid0 =
    match K.System.syscall sys ~nr:K.Kbuild.sys_getuid ~args:[] with
    | K.System.Ok v -> Result.Ok v
    | K.System.Killed m | K.System.Panicked m -> Result.Error ("getuid: " ^ m)
  in
  if uid0 <> 1000L then Result.Error (Printf.sprintf "expected uid 1000, got %Ld" uid0)
  else begin
    let cred_field =
      Int64.add attacker_task.K.System.va (Int64.of_int K.Kobject.Task.off_cred)
    in
    let* planted =
      match variant with
      | Raw -> Result.Ok (K.System.kernel_symbol sys "root_cred")
      | Replayed ->
          (* harvest init's signed root-cred pointer *)
          let init = List.hd (K.System.tasks sys) in
          Primitives.kread sys
            (Int64.add init.K.System.va (Int64.of_int K.Kobject.Task.off_cred))
    in
    let* () = Primitives.kwrite sys cred_field planted in
    match K.System.syscall sys ~nr:K.Kbuild.sys_getuid ~args:[] with
    | K.System.Ok uid when uid = 0L -> Result.Ok (Escalated { uid })
    | K.System.Ok uid -> Result.Error (Printf.sprintf "uid now %Ld" uid)
    | K.System.Killed m ->
        if String.length m >= 3 && String.sub m 0 3 = "PAC" then Result.Ok Detected
        else Result.Error ("killed: " ^ m)
    | K.System.Panicked m -> Result.Error ("panicked: " ^ m)
  end

let run sys variant =
  match attack sys variant with Result.Ok o -> o | Result.Error m -> Failed m

let outcome_to_string = function
  | Escalated { uid } -> Printf.sprintf "ESCALATED: getuid() = %Ld — the process is root" uid
  | Detected -> "DETECTED: PAC authentication failure on the credentials pointer"
  | Failed m -> "attack failed: " ^ m
