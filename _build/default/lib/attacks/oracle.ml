module K = Kernel

type verdict = { surface : string; fatal : bool; logged : bool }

let garbage = 0xffff0000deadf000L

let must label = function
  | K.System.Ok v -> v
  | K.System.Killed m | K.System.Panicked m ->
      failwith (Printf.sprintf "oracle sweep %s: %s" label m)

let kwrite_must sys addr v =
  match Primitives.kwrite sys addr v with
  | Result.Ok () -> ()
  | Result.Error m -> failwith ("oracle sweep kwrite: " ^ m)

(* Each surface: arrange state, corrupt the protected pointer with a raw
   value, return the outcome of the authenticating path. *)
let surfaces =
  [
    ( "file.f_ops (read path)",
      fun sys ->
        let fd = must "open" (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ]) in
        let task = (K.System.current sys).K.System.va in
        let file =
          K.Kmem.read64 (K.System.cpu sys)
            (Int64.add task
               (Int64.of_int (K.Kobject.Task.off_fd_table + (8 * Int64.to_int fd))))
        in
        kwrite_must sys (Int64.add file (Int64.of_int K.Kobject.File.off_f_ops)) garbage;
        K.System.syscall sys ~nr:K.Kbuild.sys_read
          ~args:[ fd; K.Layout.user_data_base; 8L ] );
    ( "file.f_ops (poll path)",
      fun sys ->
        let fd = must "open" (K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ]) in
        let task = (K.System.current sys).K.System.va in
        let file =
          K.Kmem.read64 (K.System.cpu sys)
            (Int64.add task
               (Int64.of_int (K.Kobject.Task.off_fd_table + (8 * Int64.to_int fd))))
        in
        kwrite_must sys (Int64.add file (Int64.of_int K.Kobject.File.off_f_ops)) garbage;
        let arr = K.Layout.user_data_base in
        K.Kmem.write64 (K.System.cpu sys) arr fd;
        K.System.syscall sys ~nr:K.Kbuild.sys_poll ~args:[ arr; 1L ] );
    ( "task.cred (getuid path)",
      fun sys ->
        let task = (K.System.current sys).K.System.va in
        kwrite_must sys (Int64.add task (Int64.of_int K.Kobject.Task.off_cred)) garbage;
        K.System.syscall sys ~nr:K.Kbuild.sys_getuid ~args:[] );
    ( "notifier.handler (dispatch path)",
      fun sys ->
        ignore
          (must "register"
             (K.System.syscall sys ~nr:K.Kbuild.sys_notifier_register ~args:[ 0L; 0L ]));
        let task = (K.System.current sys).K.System.va in
        kwrite_must sys
          (Int64.add task (Int64.of_int K.Kobject.Task.off_notifiers))
          garbage;
        K.System.syscall sys ~nr:K.Kbuild.sys_notifier_call ~args:[ 0L ] );
    ( "timer.func (expiry path)",
      fun sys ->
        ignore
          (must "timer_set"
             (K.System.syscall sys ~nr:K.Kbuild.sys_timer_set ~args:[ 0L; 0L; 0L ]));
        let slab = K.System.kernel_symbol sys "timer_slab" in
        kwrite_must sys (Int64.add slab (Int64.of_int K.Kobject.Timer.off_func)) garbage;
        K.System.run_timers sys );
    ( "work_struct.func (workqueue path)",
      fun sys ->
        let work = K.System.kernel_symbol sys "static_work" in
        kwrite_must sys (Int64.add work (Int64.of_int K.Kobject.Work.off_func)) garbage;
        K.System.run_work sys ~work_va:work );
    ( "task.kernel_sp (context switch path)",
      fun sys ->
        let victim = K.System.create_task sys in
        kwrite_must sys
          (Int64.add victim.K.System.va (Int64.of_int K.Kobject.Task.off_kernel_sp))
          garbage;
        K.System.switch_to sys victim );
    ( "saved LR in switch frame (return path)",
      fun sys ->
        let victim = K.System.create_task sys in
        let frame_lr =
          Int64.sub (K.Layout.task_stack_top ~slot:victim.K.System.slot) 8L
        in
        kwrite_must sys frame_lr garbage;
        K.System.switch_to sys victim );
  ]

let pac_logged sys =
  List.exists
    (fun l -> String.length l >= 3 && String.sub l 0 3 = "PAC")
    (K.System.log sys)

let sweep ?(seed = 2718L) () =
  List.map
    (fun (surface, attack) ->
      let sys =
        K.System.boot
          ~config:{ Camouflage.Config.full with bruteforce_threshold = 1000 }
          ~seed ()
      in
      K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base
        ~bytes:4096 Aarch64.Mmu.rw;
      let outcome = attack sys in
      let fatal =
        match outcome with
        | K.System.Ok _ -> false
        | K.System.Killed _ | K.System.Panicked _ -> true
      in
      { surface; fatal; logged = pac_logged sys })
    surfaces

let all_closed verdicts = List.for_all (fun v -> v.fatal && v.logged) verdicts

let verdict_to_string v =
  Printf.sprintf "%-42s fatal=%-5b logged=%-5b %s" v.surface v.fatal v.logged
    (if v.fatal && v.logged then "closed" else "ORACLE?")
