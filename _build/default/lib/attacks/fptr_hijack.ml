module K = Kernel

type outcome = Hijacked of { evidence : int64 } | Detected | Failed of string

let ( let* ) = Result.bind

let attack sys =
  (* The attacker-chosen "gadget": any existing kernel function; its
     observable side effect (the counter) is the evidence of arbitrary
     kernel code execution. *)
  let gadget = K.System.kernel_symbol sys "work_counter" in
  let counter_cell = K.System.kernel_symbol sys "work_counter_cell" in
  let* fd =
    match K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ] with
    | K.System.Ok v when v >= 0L -> Result.Ok v
    | K.System.Ok _ -> Result.Error "open failed"
    | K.System.Killed m | K.System.Panicked m -> Result.Error m
  in
  (* Fake ops table: all four slots point at the gadget. *)
  let* fake_table = Primitives.spray_words sys ~words:[ gadget; gadget; gadget; gadget ] in
  (* Locate the file object through the fd table (addresses are known to
     the attacker: the model has no KASLR, as in the paper's prototype). *)
  let task = (K.System.current sys).K.System.va in
  let* file =
    Primitives.kread sys
      (Int64.add task
         (Int64.of_int (K.Kobject.Task.off_fd_table + (8 * Int64.to_int fd))))
  in
  let fops_field = Int64.add file (Int64.of_int K.Kobject.File.off_f_ops) in
  let* () = Primitives.kwrite sys fops_field fake_table in
  let* before = Primitives.kread sys counter_cell in
  match
    K.System.syscall sys ~nr:K.Kbuild.sys_read
      ~args:[ fd; K.Layout.user_data_base; 8L ]
  with
  | K.System.Ok _ -> (
      match Primitives.kread sys counter_cell with
      | Result.Ok after when after > before -> Result.Ok (Hijacked { evidence = after })
      | Result.Ok _ -> Result.Error "read returned but gadget did not run"
      | Result.Error m -> Result.Error m)
  | K.System.Killed m ->
      if String.length m >= 3 && String.sub m 0 3 = "PAC" then Result.Ok Detected
      else Result.Error ("killed: " ^ m)
  | K.System.Panicked m -> Result.Error ("panicked: " ^ m)

let run sys = match attack sys with Result.Ok o -> o | Result.Error m -> Failed m

let outcome_to_string = function
  | Hijacked { evidence } ->
      Printf.sprintf "HIJACKED: attacker gadget executed (evidence counter = %Ld)" evidence
  | Detected -> "DETECTED: PAC authentication failure, process killed"
  | Failed m -> "attack failed: " ^ m
