(** Verification-oracle sweep (Section 6.2.3).

    A PAC scheme is only as strong as its failure handling: if any code
    path authenticated a pointer and survived a mismatch silently, the
    attacker could use it as an oracle to confirm guesses without paying
    the kill-and-log cost. This sweep corrupts every protected-pointer
    surface in the kernel in turn, triggers its authentication path, and
    checks that the outcome is {e fatal} for the process and {e logged}
    — the two properties the paper's mitigation depends on. *)

type verdict = {
  surface : string;
  fatal : bool;  (** the triggering process was killed (or worse) *)
  logged : bool;  (** a PAC-failure line reached the kernel log *)
}

(** [sweep ?seed ()] — boot a fully protected system per surface and
    report. A sound configuration yields [fatal && logged] on every
    surface. *)
val sweep : ?seed:int64 -> unit -> verdict list

(** [all_closed verdicts] — no oracle found. *)
val all_closed : verdict list -> bool

val verdict_to_string : verdict -> string
