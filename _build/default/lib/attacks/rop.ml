module K = Kernel

type outcome = Diverted of { evidence : int64 } | Detected | Failed of string

let ( let* ) = Result.bind

let attack sys =
  let gadget = K.System.kernel_symbol sys "work_counter" in
  let counter_cell = K.System.kernel_symbol sys "work_counter_cell" in
  (* A sleeping victim task whose switch frame sits at a predictable,
     4 KiB-aligned stack-top (Section 4.2). *)
  let victim = K.System.create_task sys in
  let frame_lr =
    Int64.sub (K.Layout.task_stack_top ~slot:victim.K.System.slot) 8L
  in
  let* () = Primitives.kwrite sys frame_lr gadget in
  let* before = Primitives.kread sys counter_cell in
  match K.System.switch_to sys victim with
  | K.System.Ok _ -> (
      (* switch "succeeded": the corrupted return was taken as-is *)
      match Primitives.kread sys counter_cell with
      | Result.Ok after when after > before -> Result.Ok (Diverted { evidence = after })
      | Result.Ok _ -> Result.Error "switch returned normally"
      | Result.Error m -> Result.Error m)
  | K.System.Killed m ->
      if String.length m >= 3 && String.sub m 0 3 = "PAC" then Result.Ok Detected
      else begin
        (* An unprotected kernel typically loops in the gadget until the
           oops; evidence still shows the diversion happened. *)
        match Primitives.kread sys counter_cell with
        | Result.Ok after when after > before -> Result.Ok (Diverted { evidence = after })
        | Result.Ok _ | Result.Error _ -> Result.Error ("killed: " ^ m)
      end
  | K.System.Panicked m -> Result.Error ("panicked: " ^ m)

let run sys = match attack sys with Result.Ok o -> o | Result.Error m -> Failed m

let outcome_to_string = function
  | Diverted { evidence } ->
      Printf.sprintf "DIVERTED: kernel returned into the gadget (evidence = %Ld)" evidence
  | Detected -> "DETECTED: PAC authentication failure on return address"
  | Failed m -> "attack failed: " ^ m
