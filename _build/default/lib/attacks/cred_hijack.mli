(** Privilege-escalation attack on the task credentials (the f_cred
    pattern of Section 4.5 applied to the task structure).

    The attacker rewrites its own task's credentials pointer to aim at
    the root credentials. Two variants:

    - [Raw]: plant the raw address of [root_cred]. Without DFI,
      [getuid] now returns 0 and the process is root; with DFI the
      unsigned pointer fails authentication.
    - [Replayed]: copy init's {e legitimately signed} root-credential
      pointer into the attacker's task — the cross-object replay the
      address-bound modifier is designed to reject. *)

type variant = Raw | Replayed

type outcome =
  | Escalated of { uid : int64 }  (** getuid returned the root uid *)
  | Detected  (** PAC failure on the credentials pointer *)
  | Failed of string

val run : Kernel.System.t -> variant -> outcome

val outcome_to_string : outcome -> string
