(** Forward-edge / DFI attack: operations-table pointer hijack
    (Sections 4.4-4.5, 6.2.1).

    The attacker opens a file, sprays a fake operations table into
    writable kernel memory it can locate (the pipe buffer), overwrites
    the file's [f_ops] pointer with the sprayed address using the
    arbitrary-write bug, and invokes [read] on the file. Without DFI
    the kernel dereferences the fake table and calls an
    attacker-chosen kernel function; with DFI the AUTDB in the accessor
    poisons the pointer and the dereference faults. *)

type outcome =
  | Hijacked of { evidence : int64 }
      (** the attacker-chosen function ran; [evidence] is its side effect *)
  | Detected  (** PAC authentication failure killed the process *)
  | Failed of string

val run : Kernel.System.t -> outcome

val outcome_to_string : outcome -> string
