(** Register-spill / interrupt-handler attack (the first unexplored
    direction of Section 8).

    While a task is preempted, its entire user register state — including
    the program counter it will resume at — sits in writable kernel
    memory (the task structure). The arbitrary-write bug rewrites the
    saved PC of a sleeping task to an attacker-chosen address; on the
    next slice the scheduler "resumes" the task straight into the
    attacker's code.

    With the context-integrity extension (X7: a chained PACGA MAC over
    the saved context, verified before resumption) the tampered state is
    detected and the task killed instead. *)

type outcome =
  | Diverted of { exit_code : int64 }  (** the victim resumed at the planted PC *)
  | Detected  (** context-integrity MAC mismatch; victim killed *)
  | Failed of string

(** [run sys ~protect] — spawn two looping tasks, preempt them, tamper
    with the second task's saved PC, and resume the schedule with
    [context_integrity:protect]. *)
val run : Kernel.System.t -> protect:bool -> outcome

val outcome_to_string : outcome -> string
