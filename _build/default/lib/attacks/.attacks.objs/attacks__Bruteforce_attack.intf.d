lib/attacks/bruteforce_attack.mli: Kernel
