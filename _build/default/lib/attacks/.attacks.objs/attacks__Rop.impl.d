lib/attacks/rop.ml: Int64 Kernel Primitives Printf Result String
