lib/attacks/rop.mli: Kernel
