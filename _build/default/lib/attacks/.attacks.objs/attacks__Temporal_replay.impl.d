lib/attacks/temporal_replay.ml: Aarch64 Asm Bare Camouflage Cpu El Insn Int64
