lib/attacks/oracle.ml: Aarch64 Camouflage Int64 Kernel List Primitives Printf Result String
