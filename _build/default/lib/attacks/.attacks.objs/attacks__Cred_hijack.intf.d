lib/attacks/cred_hijack.mli: Kernel
