lib/attacks/fptr_hijack.mli: Kernel
