lib/attacks/oracle.mli:
