lib/attacks/cred_hijack.ml: Int64 Kernel List Primitives Printf Result String
