lib/attacks/context_tamper.ml: Aarch64 Asm Insn Int64 Kernel List Primitives Printf Result String
