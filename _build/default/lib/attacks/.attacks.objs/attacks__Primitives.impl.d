lib/attacks/primitives.ml: Aarch64 Buffer Char Int64 Kernel List Mmu Result String
