lib/attacks/bruteforce_attack.ml: Aarch64 Camo_util Camouflage Cpu Int64 Kernel Mmu Primitives Printf Result Vaddr
