lib/attacks/fptr_hijack.ml: Int64 Kernel Primitives Printf Result String
