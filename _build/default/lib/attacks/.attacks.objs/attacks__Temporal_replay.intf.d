lib/attacks/temporal_replay.mli: Camouflage
