lib/attacks/context_tamper.mli: Kernel
