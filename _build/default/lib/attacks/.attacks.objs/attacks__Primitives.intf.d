lib/attacks/primitives.mli: Kernel
