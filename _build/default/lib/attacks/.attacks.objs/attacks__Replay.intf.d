lib/attacks/replay.mli: Camouflage Kernel
