lib/attacks/replay.ml: Aarch64 Camo_util Camouflage Cpu Int64 Kernel Pac Primitives Printf Result
