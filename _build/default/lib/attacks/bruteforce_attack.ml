open Aarch64
module C = Camouflage
module K = Kernel

type report = { attempts : int; successes : int; detected : int; panicked : bool }

let run sys ~attempts ~seed =
  let rng = Camo_util.Rng.create seed in
  let cpu = K.System.cpu sys in
  let cfg = Cpu.kernel_cfg cpu in
  let ubuf = K.Layout.user_data_base in
  K.Kmem.map_user_region cpu ~base:ubuf ~bytes:4096 Mmu.rw;
  let made = ref 0 and successes = ref 0 and detected = ref 0 in
  let task = (K.System.current sys).K.System.va in
  (try
     for _ = 1 to attempts do
       if K.System.panicked sys then raise Exit;
       (* a fresh signed pointer to guess against *)
       let fd =
         match K.System.syscall sys ~nr:K.Kbuild.sys_open ~args:[ 1L ] with
         | K.System.Ok v when v >= 0L -> v
         | K.System.Ok _ | K.System.Killed _ -> raise Exit
         | K.System.Panicked _ -> raise Exit
       in
       let file =
         match
           Primitives.kread sys
             (Int64.add task
                (Int64.of_int (K.Kobject.Task.off_fd_table + (8 * Int64.to_int fd))))
         with
         | Result.Ok v -> v
         | Result.Error _ -> raise Exit
       in
       let fops_field = Int64.add file (Int64.of_int K.Kobject.File.off_f_ops) in
       (match Primitives.kread sys fops_field with
       | Result.Error _ -> raise Exit
       | Result.Ok signed ->
           let guess =
             Int64.logand (Camo_util.Rng.next rng)
               (Camo_util.Val64.mask (Vaddr.pac_bits cfg))
           in
           let forged = Vaddr.insert_pac cfg ~pac:guess signed in
           (match Primitives.kwrite sys fops_field forged with
           | Result.Error _ -> raise Exit
           | Result.Ok () -> ());
           incr made;
           (match K.System.syscall sys ~nr:K.Kbuild.sys_read ~args:[ fd; ubuf; 8L ] with
           | K.System.Ok _ -> incr successes
           | K.System.Killed _ -> incr detected
           | K.System.Panicked _ ->
               incr detected;
               raise Exit));
       ignore (K.System.syscall sys ~nr:K.Kbuild.sys_close ~args:[ fd ])
     done
   with Exit -> ());
  {
    attempts = !made;
    successes = !successes;
    detected = !detected;
    panicked = K.System.panicked sys;
  }

let report_to_string r =
  Printf.sprintf "attempts=%d successes=%d detected=%d panicked=%b" r.attempts r.successes
    r.detected r.panicked
