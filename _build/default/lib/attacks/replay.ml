open Aarch64
module C = Camouflage
module K = Kernel

type outcome = Accepted of { evidence : int64 } | Rejected | Failed of string

let ( let* ) = Result.bind

(* Model the harvest step: a return address that legitimately existed,
   signed by the kernel in the victim context (task A's switch frame).
   The attacker then replays those bytes into the congruent frame of a
   task 64 KiB away. *)
let harvested_return sys ~context_sp ~target =
  let config = K.System.config sys in
  let cpu = K.System.cpu sys in
  match config.C.Config.scheme with
  | C.Modifier.No_cfi -> target
  | scheme ->
      if not (Cpu.has_pauth cpu) then target
      else begin
        let key = Cpu.pac_key cpu (C.Keys.key_for config.C.Config.mode C.Keys.Backward) in
        let modifier =
          C.Modifier.return_modifier scheme ~sp:context_sp
            ~func_addr:(K.System.kernel_symbol sys "cpu_switch_to")
        in
        Pac.compute ~cipher:(Cpu.cipher cpu) ~key ~cfg:(Cpu.kernel_cfg cpu) ~modifier
          target
      end

let attack sys =
  let gadget = K.System.kernel_symbol sys "work_counter" in
  let counter_cell = K.System.kernel_symbol sys "work_counter_cell" in
  (* Tasks whose kernel stacks are exactly 64 KiB apart: with 16 KiB
     stacks that is 4 slots (Section 7's PARTS shortcoming). *)
  let rec make n last = if n = 0 then last else make (n - 1) (K.System.create_task sys) in
  let victim_a = K.System.create_task sys in
  let victim_b = make 4 victim_a in
  let top_a = K.Layout.task_stack_top ~slot:victim_a.K.System.slot in
  let top_b = K.Layout.task_stack_top ~slot:victim_b.K.System.slot in
  assert (Int64.sub top_b top_a = 0x10000L);
  (* Harvested from A's context, planted into B's frame. *)
  let signed = harvested_return sys ~context_sp:top_a ~target:gadget in
  let frame_lr_b = Int64.sub top_b 8L in
  let* () = Primitives.kwrite sys frame_lr_b signed in
  let* before = Primitives.kread sys counter_cell in
  match K.System.switch_to sys victim_b with
  | K.System.Ok _ | K.System.Killed _ -> (
      match Primitives.kread sys counter_cell with
      | Result.Ok after when after > before -> Result.Ok (Accepted { evidence = after })
      | Result.Ok _ ->
          (* killed without evidence: the PAC failure path *)
          Result.Ok Rejected
      | Result.Error m -> Result.Error m)
  | K.System.Panicked m -> Result.Error ("panicked: " ^ m)

let cross_task_switch_frame sys =
  match attack sys with Result.Ok o -> o | Result.Error m -> Failed m

(* Quantitative collision analysis over synthetic contexts. *)

let collision_fraction scheme ~samples ~seed =
  let rng = Camo_util.Rng.create seed in
  let stack_area = 0xffff000001000000L in
  let random_context () =
    (* a random task (64 tasks), random frame depth within the 16 KiB
       stack (16-byte aligned), random kernel function address *)
    let task = Camo_util.Rng.next_in rng 64 in
    let depth = 16 * Camo_util.Rng.next_in rng 1024 in
    let sp =
      Int64.sub
        (Int64.add stack_area (Int64.of_int ((task + 1) * 16384)))
        (Int64.of_int depth)
    in
    let func =
      Int64.add 0xffff000000100000L (Int64.of_int (4 * Camo_util.Rng.next_in rng 250000))
    in
    (sp, func)
  in
  let collisions = ref 0 in
  for _ = 1 to samples do
    let sp1, f1 = random_context () in
    let sp2, f2 = random_context () in
    if (sp1, f1) <> (sp2, f2) then begin
      let m1 = C.Modifier.return_modifier scheme ~sp:sp1 ~func_addr:f1 in
      let m2 = C.Modifier.return_modifier scheme ~sp:sp2 ~func_addr:f2 in
      if m1 = m2 then incr collisions
    end
  done;
  float_of_int !collisions /. float_of_int samples

let outcome_to_string = function
  | Accepted { evidence } ->
      Printf.sprintf "ACCEPTED: replayed pointer authenticated (evidence = %Ld)" evidence
  | Rejected -> "REJECTED: modifier separates the contexts"
  | Failed m -> "attack failed: " ^ m
