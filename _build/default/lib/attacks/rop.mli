(** Backward-edge attack: return-address overwrite (Section 2.1, 6.2.1).

    The attacker overwrites the saved link register in the switch frame
    of a sleeping task's kernel stack — the frame [cpu_switch_to] will
    pop when the task is next scheduled — redirecting the return to an
    attacker-chosen address. With backward-edge CFI the epilogue's AUT
    poisons the corrupted address and the fetch faults; without it the
    kernel "returns" into the attacker's gadget. *)

type outcome =
  | Diverted of { evidence : int64 }  (** control reached the gadget *)
  | Detected  (** PAC failure on the corrupted return address *)
  | Failed of string

val run : Kernel.System.t -> outcome

val outcome_to_string : outcome -> string
