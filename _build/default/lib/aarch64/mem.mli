(** Sparse physical memory.

    Byte-addressable little-endian storage allocated lazily in 4 KiB
    frames. Addresses here are {e physical}; translation and permission
    checking live in {!Mmu}. *)

type t

val create : unit -> t

val read8 : t -> int64 -> int
val write8 : t -> int64 -> int -> unit
val read32 : t -> int64 -> int32
val write32 : t -> int64 -> int32 -> unit
val read64 : t -> int64 -> int64
val write64 : t -> int64 -> int64 -> unit

(** [blit_string t pa s] writes the bytes of [s] starting at [pa]. *)
val blit_string : t -> int64 -> string -> unit

(** [read_string t pa len]. *)
val read_string : t -> int64 -> int -> string

(** Number of frames currently allocated (for memory-use reporting). *)
val frames_allocated : t -> int
