(** Exception levels of the model machine.

    EL0 runs user processes, EL1 the kernel, EL2 the hypervisor that
    enforces stage-2 translation (and thereby XOM). *)

type t = El0 | El1 | El2

val name : t -> string
val pp : Format.formatter -> t -> unit
