module Val64 = Camo_util.Val64

type key = { hi : int64; lo : int64 }

let qarma_key k = Qarma.Block.key_of_pair (k.hi, k.lo)

let raw_mac ~cipher ~key ~modifier data =
  Qarma.Block.encrypt cipher ~key:(qarma_key key) ~tweak:modifier data

let compute ~cipher ~key ~cfg ~modifier ptr =
  let canonical = Vaddr.canonical cfg ptr in
  let mac = raw_mac ~cipher ~key ~modifier canonical in
  Vaddr.insert_pac cfg ~pac:mac canonical

let auth ~cipher ~key ~cfg ~modifier ptr =
  let expected = compute ~cipher ~key ~cfg ~modifier ptr in
  if ptr = expected then Ok (Vaddr.strip_pac cfg ptr)
  else Error (Vaddr.poison cfg ptr)

let generic ~cipher ~key ~value ~modifier =
  let mac = raw_mac ~cipher ~key ~modifier value in
  Int64.shift_left (Val64.extract ~lo:32 ~width:32 mac) 32

let pac_mask cfg =
  List.fold_left
    (fun acc (lo, width) -> Int64.logor acc (Int64.shift_left (Val64.mask width) lo))
    0L (Vaddr.pac_field cfg)
