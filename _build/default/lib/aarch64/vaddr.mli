(** VMSAv8 virtual-address layout (Appendix A of the paper).

    AArch64 pointers are 64-bit values of which only [va_bits] (at most
    48 without LVA) address memory. Bit 55 selects the translation table:
    0 for the user range (TTBR0) and 1 for the kernel range (TTBR1). The
    bits between the top of the address and bit 55 are sign extension —
    unless top-byte-ignore (TBI) reserves bits 63:56 as a tag. PAuth
    stores the PAC exactly in those otherwise-meaningless bits, which is
    why the PAC width depends on the configuration (15 bits in the
    typical Ubuntu-like kernel configuration of the paper). *)

type space = User | Kernel | Invalid

type config = {
  va_bits : int;  (** virtual address size, typically 39 or 48 *)
  tbi : bool;  (** top-byte-ignore enabled for this range *)
}

(** The configuration evaluated in the paper: 48-bit VA; Linux enables
    TBI for user space and leaves it disabled for the kernel. *)
val linux_user : config

val linux_kernel : config

(** [space_of va] classifies an address per Table 1: addresses whose
    upper bits are not a proper sign extension of bit 47..55 are
    [Invalid]. This classification ignores PAC/tag bits and uses only
    bit 55, as the hardware translation-table select does. *)
val select : int64 -> space

(** [is_canonical cfg va] is [true] when all non-address upper bits agree
    with bit 55 (and the top byte is ignored when [cfg.tbi]): i.e. the
    pointer would translate without a fault. *)
val is_canonical : config -> int64 -> bool

(** [canonical cfg va] rewrites the upper bits of [va] into proper sign
    extension of the [cfg.va_bits]-bit address, preserving bit 55 and,
    with TBI, the tag byte. This is the pointer a PAC is computed over. *)
val canonical : config -> int64 -> int64

(** [pac_field cfg] is the list of (lo, width) bit ranges available to
    hold a PAC under [cfg], excluding bit 55 and any tag byte,
    most-significant range first. *)
val pac_field : config -> (int * int) list

(** [pac_bits cfg] is the total PAC width available under [cfg];
    15 for the paper's kernel configuration. *)
val pac_bits : config -> int

(** [insert_pac cfg ~pac va] scatters the low [pac_bits cfg] bits of
    [pac] into the PAC field of [va]. *)
val insert_pac : config -> pac:int64 -> int64 -> int64

(** [extract_pac cfg va] gathers the PAC field of [va] into the low bits
    of the result. *)
val extract_pac : config -> int64 -> int64

(** [strip_pac cfg va] is [canonical cfg va]: the XPAC operation. *)
val strip_pac : config -> int64 -> int64

(** [poison cfg va] makes the pointer non-canonical in a way that is
    stable and recognizable: the behaviour of a failed AUT* on ARMv8.3,
    which flips a bit pattern in the extension bits so that any
    subsequent dereference or branch faults. *)
val poison : config -> int64 -> int64

(** [is_poisoned cfg va] recognizes [poison]'s bit pattern. *)
val is_poisoned : config -> int64 -> bool

(** [page_size] is 4 KiB, the configuration assumed throughout. *)
val page_size : int

(** [page_of va] is the page number of [va]: the full 64-bit value
    shifted right by 12, so kernel (0xffff...) and user pages never
    collide as table keys. *)
val page_of : int64 -> int64

(** [offset_in_page va]. *)
val offset_in_page : int64 -> int
