type t = El0 | El1 | El2

let name = function El0 -> "EL0" | El1 -> "EL1" | El2 -> "EL2"
let pp fmt t = Format.pp_print_string fmt (name t)
