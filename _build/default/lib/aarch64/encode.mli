(** Binary encoding of the model ISA.

    Instructions are fixed-width 32-bit little-endian words, as on A64.
    The encoding is self-consistent rather than the architectural A64
    encoding (documented substitution; see DESIGN.md): what matters for
    the paper's static verifier is that system-register reads and writes
    {e immediately encode the register they touch}, so scanning the words
    of a code section finds every key access — which this encoding
    guarantees.

    Branch-type instructions carry absolute targets in the AST but are
    stored PC-relative, so both directions take the word's address. *)

exception Unencodable of string
(** Raised when an operand does not fit its field (e.g. branch target
    out of range). *)

(** [encode ~pc insn] is the 32-bit word for [insn] at address [pc]. *)
val encode : pc:int64 -> Insn.t -> int32

(** [decode ~pc word] — [None] if [word] is not a valid encoding
    (executing it raises an undefined-instruction fault). *)
val decode : pc:int64 -> int32 -> Insn.t option
