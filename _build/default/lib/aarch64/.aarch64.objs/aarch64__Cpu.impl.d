lib/aarch64/cpu.ml: Array Camo_util Cost El Encode Hashtbl Insn Int64 Mem Mmu Pac Printf Qarma Sysreg Vaddr
