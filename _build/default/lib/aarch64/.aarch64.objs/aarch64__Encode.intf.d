lib/aarch64/encode.mli: Insn
