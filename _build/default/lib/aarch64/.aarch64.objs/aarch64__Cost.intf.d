lib/aarch64/cost.mli:
