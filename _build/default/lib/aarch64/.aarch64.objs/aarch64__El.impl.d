lib/aarch64/el.ml: Format
