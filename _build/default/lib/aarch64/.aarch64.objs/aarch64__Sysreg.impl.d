lib/aarch64/sysreg.ml: Format List
