lib/aarch64/encode.ml: Insn Int32 Int64 List Option Printf Sysreg
