lib/aarch64/insn.mli: Format Sysreg
