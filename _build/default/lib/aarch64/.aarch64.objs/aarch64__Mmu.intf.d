lib/aarch64/mmu.mli: El
