lib/aarch64/vaddr.ml: Camo_util Int64 List
