lib/aarch64/insn.ml: Format Printf Sysreg
