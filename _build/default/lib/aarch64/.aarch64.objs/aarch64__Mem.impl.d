lib/aarch64/mem.ml: Bytes Char Hashtbl Int32 Int64 String
