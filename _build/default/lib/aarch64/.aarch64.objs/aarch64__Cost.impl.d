lib/aarch64/cost.ml: Int64
