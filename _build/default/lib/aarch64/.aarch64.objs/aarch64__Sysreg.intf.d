lib/aarch64/sysreg.mli: Format
