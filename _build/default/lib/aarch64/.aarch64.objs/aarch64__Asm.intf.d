lib/aarch64/asm.mli: Insn
