lib/aarch64/bare.mli: Asm Cost Cpu Mmu
