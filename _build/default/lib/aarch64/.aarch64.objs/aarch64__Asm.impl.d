lib/aarch64/asm.ml: Array Buffer Encode Hashtbl Insn Int64 List Printf
