lib/aarch64/mmu.ml: El Hashtbl Int64 Printf
