lib/aarch64/bare.ml: Asm Camo_util Cpu El Int64 List Mem Mmu Sysreg Vaddr
