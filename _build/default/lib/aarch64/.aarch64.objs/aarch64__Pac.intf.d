lib/aarch64/pac.mli: Qarma Vaddr
