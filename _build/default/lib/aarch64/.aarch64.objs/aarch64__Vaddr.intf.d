lib/aarch64/vaddr.mli:
