lib/aarch64/mem.mli:
