lib/aarch64/cpu.mli: Cost El Insn Mem Mmu Pac Qarma Sysreg Vaddr
