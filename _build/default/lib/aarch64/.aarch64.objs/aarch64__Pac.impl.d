lib/aarch64/pac.ml: Camo_util Int64 List Qarma Vaddr
