lib/aarch64/el.mli: Format
