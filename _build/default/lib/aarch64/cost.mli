(** Instruction cycle-cost model.

    The paper could not run on PAuth silicon; its performance numbers
    come from a "PA-analogue" — an instruction sequence exhibiting the
    estimated 4-cycles-per-instruction computational overhead of PAuth —
    executed on a Raspberry Pi 3 (Cortex-A53-class, 1.4 GHz). We
    reproduce that methodology directly: a per-class cycle cost applied
    by the interpreter, with PAuth operations costing [pauth_cycles]. *)

type profile = {
  name : string;
  alu : int;  (** data-processing: MOV/ADD/AND/BFI/... *)
  load : int;
  store : int;
  branch : int;  (** direct and indirect branches, returns *)
  pauth : int;  (** PAC*/AUT*/XPAC computation cost *)
  msr : int;  (** system register write *)
  mrs : int;  (** system register read *)
  exception_entry : int;  (** SVC/fault pipeline flush + vector fetch *)
  eret : int;
  isb : int;
  clock_hz : float;  (** for cycle -> nanosecond conversion *)
}

(** Cortex-A53-class in-order core at 1.4 GHz, PA-analogue PAuth cost of
    4 cycles: the paper's evaluation platform. *)
val cortex_a53 : profile

(** Hypothetical ARMv8.3 core with a dedicated PAC unit of the same
    4-cycle latency (the paper's estimate for QARMA in hardware). *)
val armv83 : profile

(** [ns_of_cycles p cycles] converts simulated cycles to nanoseconds. *)
val ns_of_cycles : profile -> int64 -> float
