module Val64 = Camo_util.Val64

type space = User | Kernel | Invalid

type config = { va_bits : int; tbi : bool }

let linux_user = { va_bits = 48; tbi = true }
let linux_kernel = { va_bits = 48; tbi = false }

let select va = if Val64.bit 55 va then Kernel else User

let check_config cfg =
  if cfg.va_bits < 32 || cfg.va_bits > 52 then invalid_arg "Vaddr: va_bits"

(* Bits that must equal bit 55 for the pointer to translate: everything
   from va_bits up to 63, except bit 55 itself and, under TBI, the top
   byte 63:56. *)
let extension_ranges cfg =
  check_config cfg;
  let top = if cfg.tbi then 55 else 64 in
  let ranges = ref [] in
  if cfg.va_bits < 55 then ranges := (cfg.va_bits, 55 - cfg.va_bits) :: !ranges;
  if (not cfg.tbi) && top > 56 then ranges := (56, 8) :: !ranges;
  List.rev !ranges

let pac_field cfg = List.rev (extension_ranges cfg)

let pac_bits cfg = List.fold_left (fun acc (_, w) -> acc + w) 0 (pac_field cfg)

let is_canonical cfg va =
  let sign = if Val64.bit 55 va then Val64.all_ones else Val64.zero in
  List.for_all
    (fun (lo, width) ->
      Val64.extract ~lo ~width va = Val64.extract ~lo ~width sign)
    (extension_ranges cfg)

let canonical cfg va =
  let sign = if Val64.bit 55 va then Val64.all_ones else Val64.zero in
  List.fold_left
    (fun acc (lo, width) ->
      Val64.insert ~lo ~width ~field:(Val64.extract ~lo ~width sign) acc)
    va (extension_ranges cfg)

let insert_pac cfg ~pac va =
  let fold (acc, consumed) (lo, width) =
    let field = Val64.extract ~lo:consumed ~width pac in
    (Val64.insert ~lo ~width ~field acc, consumed + width)
  in
  (* Least-significant field range consumes the low PAC bits first. *)
  let acc, _ = List.fold_left fold (va, 0) (extension_ranges cfg) in
  acc

let extract_pac cfg va =
  let fold (acc, consumed) (lo, width) =
    let field = Val64.extract ~lo ~width va in
    (Val64.insert ~lo:consumed ~width ~field acc, consumed + width)
  in
  let acc, _ = List.fold_left fold (0L, 0) (extension_ranges cfg) in
  acc

let strip_pac = canonical

(* A failed AUT on ARMv8.3 writes an error code into two extension bits
   (one per key class), guaranteeing a translation fault on use. We model
   it by flipping the two extension bits just above the address. *)
let poison cfg va =
  let base = canonical cfg va in
  let lo =
    match extension_ranges cfg with
    | (lo, _) :: _ -> lo
    | [] -> invalid_arg "Vaddr.poison: no extension bits"
  in
  Int64.logxor base (Int64.shift_left 3L lo)

let is_poisoned cfg va = (not (is_canonical cfg va)) && va = poison cfg (canonical cfg va)

let page_size = 4096

let page_of va = Int64.shift_right_logical va 12

let offset_in_page va = Int64.to_int (Val64.extract ~lo:0 ~width:12 va)
