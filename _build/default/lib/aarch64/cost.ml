type profile = {
  name : string;
  alu : int;
  load : int;
  store : int;
  branch : int;
  pauth : int;
  msr : int;
  mrs : int;
  exception_entry : int;
  eret : int;
  isb : int;
  clock_hz : float;
}

let cortex_a53 =
  {
    name = "cortex-a53 + PA-analogue";
    alu = 1;
    load = 2;
    store = 1;
    branch = 1;
    pauth = 4;
    msr = 1;
    mrs = 1;
    exception_entry = 24;
    eret = 24;
    isb = 4;
    clock_hz = 1.4e9;
  }

let armv83 = { cortex_a53 with name = "armv8.3 native PAuth" }

let ns_of_cycles p cycles = Int64.to_float cycles /. p.clock_hz *. 1e9
