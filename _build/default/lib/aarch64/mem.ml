type t = { frames : (int64, Bytes.t) Hashtbl.t }

let frame_size = 4096

let create () = { frames = Hashtbl.create 1024 }

let frame_of pa = Int64.shift_right_logical pa 12
let offset_of pa = Int64.to_int (Int64.logand pa 0xfffL)

let get_frame t pa =
  let idx = frame_of pa in
  match Hashtbl.find_opt t.frames idx with
  | Some b -> b
  | None ->
      let b = Bytes.make frame_size '\000' in
      Hashtbl.add t.frames idx b;
      b

let read8 t pa = Char.code (Bytes.get (get_frame t pa) (offset_of pa))
let write8 t pa v = Bytes.set (get_frame t pa) (offset_of pa) (Char.chr (v land 0xff))

(* Multi-byte accesses may straddle a frame boundary; go byte-wise unless
   the access is frame-local, which is the common case. *)
let read64 t pa =
  let off = offset_of pa in
  if off <= frame_size - 8 then Bytes.get_int64_le (get_frame t pa) off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (read8 t (Int64.add pa (Int64.of_int i))))
    done;
    !v
  end

let write64 t pa v =
  let off = offset_of pa in
  if off <= frame_size - 8 then Bytes.set_int64_le (get_frame t pa) off v
  else
    for i = 0 to 7 do
      write8 t
        (Int64.add pa (Int64.of_int i))
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
    done

let read32 t pa =
  let off = offset_of pa in
  if off <= frame_size - 4 then Bytes.get_int32_le (get_frame t pa) off
  else Int64.to_int32 (Int64.logand (read64 t pa) 0xffffffffL)

let write32 t pa v =
  let off = offset_of pa in
  if off <= frame_size - 4 then Bytes.set_int32_le (get_frame t pa) off v
  else
    for i = 0 to 3 do
      write8 t
        (Int64.add pa (Int64.of_int i))
        (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xff)
    done

let blit_string t pa s =
  String.iteri (fun i c -> write8 t (Int64.add pa (Int64.of_int i)) (Char.code c)) s

let read_string t pa len =
  String.init len (fun i -> Char.chr (read8 t (Int64.add pa (Int64.of_int i))))

let frames_allocated t = Hashtbl.length t.frames
