(** Pointer-authentication-code computation (Appendix B of the paper).

    A PAC is the truncation of a QARMA MAC — keyed by a 128-bit key,
    over the canonical 64-bit pointer with a 64-bit modifier as tweak —
    scattered into the extension bits of the pointer described by
    {!Vaddr.pac_field}. Authentication recomputes the MAC; a mismatch
    yields a deliberately non-canonical ("poisoned") pointer so that any
    later dereference or branch faults, exactly as AUT* behaves on
    ARMv8.3. *)

type key = { hi : int64; lo : int64 }

(** [compute ~cipher ~key ~cfg ~modifier ptr] signs [ptr]: the PAC of
    the canonical form of [ptr] is written into its extension bits.
    If [ptr] is not canonical (e.g. already signed), the PAC is computed
    over its canonical form, matching architectural behaviour. *)
val compute :
  cipher:Qarma.Block.t -> key:key -> cfg:Vaddr.config -> modifier:int64 -> int64 -> int64

(** [auth ~cipher ~key ~cfg ~modifier ptr] verifies the PAC.
    [Ok stripped] on success; [Error poisoned] otherwise, where
    [poisoned] is the non-canonical pointer AUT* would produce. *)
val auth :
  cipher:Qarma.Block.t ->
  key:key ->
  cfg:Vaddr.config ->
  modifier:int64 ->
  int64 ->
  (int64, int64) result

(** [generic ~cipher ~key ~value ~modifier] is the PACGA operation: a
    32-bit MAC over an arbitrary 64-bit value, returned in the upper
    half of the result with the lower half zero. *)
val generic : cipher:Qarma.Block.t -> key:key -> value:int64 -> modifier:int64 -> int64

(** [pac_mask cfg] — a word with 1s in every PAC bit position. *)
val pac_mask : Vaddr.config -> int64
