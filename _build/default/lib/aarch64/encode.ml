exception Unencodable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unencodable s)) fmt

(* Register field: 6 bits. 0..30 are X registers, 61 is SP, 62 is XZR. *)
let reg_code = function
  | Insn.R n ->
      if n < 0 || n > 30 then fail "register x%d" n;
      n
  | Insn.SP -> 61
  | Insn.XZR -> 62

let reg_of_code = function
  | n when n >= 0 && n <= 30 -> Some (Insn.R n)
  | 61 -> Some Insn.SP
  | 62 -> Some Insn.XZR
  | _ -> None

let key_code = function
  | Sysreg.IA -> 0
  | Sysreg.IB -> 1
  | Sysreg.DA -> 2
  | Sysreg.DB -> 3
  | Sysreg.GA -> 4

let key_of_code = function
  | 0 -> Some Sysreg.IA
  | 1 -> Some Sysreg.IB
  | 2 -> Some Sysreg.DA
  | 3 -> Some Sysreg.DB
  | 4 -> Some Sysreg.GA
  | _ -> None

let cond_code = function
  | Insn.Eq -> 0
  | Insn.Ne -> 1
  | Insn.Lt -> 2
  | Insn.Ge -> 3
  | Insn.Gt -> 4
  | Insn.Le -> 5

let cond_of_code = function
  | 0 -> Some Insn.Eq
  | 1 -> Some Insn.Ne
  | 2 -> Some Insn.Lt
  | 3 -> Some Insn.Ge
  | 4 -> Some Insn.Gt
  | 5 -> Some Insn.Le
  | _ -> None


(* Signed immediate helpers: [sfield v bits] encodes a signed value into
   [bits] bits; [sext v bits] decodes it back. *)
let sfield name v bits =
  let lo = -(1 lsl (bits - 1)) and hi = (1 lsl (bits - 1)) - 1 in
  if v < lo || v > hi then fail "%s immediate %d out of range [%d, %d]" name v lo hi;
  v land ((1 lsl bits) - 1)

let sext v bits =
  let m = 1 lsl (bits - 1) in
  (v land ((1 lsl bits) - 1)) - (if v land m <> 0 then 1 lsl bits else 0)

let ufield name v bits =
  if v < 0 || v >= 1 lsl bits then fail "%s field %d out of range" name v;
  v

(* PC-relative word offsets. *)
let rel name ~pc target bits =
  let delta = Int64.sub target pc in
  if Int64.rem delta 4L <> 0L then fail "%s target 0x%Lx not word-aligned" name target;
  let words = Int64.to_int (Int64.div delta 4L) in
  sfield name words bits

let target_of ~pc words = Int64.add pc (Int64.of_int (words * 4))

(* Opcode numbers; bits [31:26] of the word. *)
let op_nop = 0
let op_movz = 1
let op_movk = 2
let op_mov = 3
let op_add_imm = 4
let op_sub_imm = 5
let op_add_reg = 6
let op_sub_reg = 7
let op_subs_reg = 8
let op_subs_imm = 9
let op_and_reg = 10
let op_orr_reg = 11
let op_eor_reg = 12
let op_lsl_imm = 13
let op_lsr_imm = 14
let op_bfi = 15
let op_ubfx = 16
let op_adr = 17
let op_ldr = 18
let op_str = 19
let op_ldrb = 20
let op_strb = 21
let op_ldp = 22
let op_stp = 23
let op_b = 24
let op_bl = 25
let op_br = 26
let op_blr = 27
let op_ret = 28
let op_cbz = 29
let op_cbnz = 30
let op_bcond = 31
let op_pac = 32
let op_aut = 33
let op_pac1716 = 34
let op_aut1716 = 35
let op_xpac = 36
let op_pacga = 37
let op_blra = 38
let op_bra = 39
let op_reta = 40
let op_mrs = 41
let op_msr = 42
let op_svc = 43
let op_eret = 44
let op_isb = 45
let op_brk = 46
let op_hlt = 47

let pack op fields =
  let word = List.fold_left (fun acc (v, lo) -> acc lor (v lsl lo)) (op lsl 26) fields in
  Int32.of_int word

let amode_fields m base_lo imm_lo imm_bits scale =
  let encode_off name off =
    if off mod scale <> 0 then fail "%s offset %d not multiple of %d" name off scale;
    sfield name (off / scale) imm_bits
  in
  match m with
  | Insn.Off (base, off) ->
      [ (reg_code base, base_lo); (0, imm_lo + imm_bits); (encode_off "off" off, imm_lo) ]
  | Insn.Pre (base, off) ->
      [ (reg_code base, base_lo); (1, imm_lo + imm_bits); (encode_off "pre" off, imm_lo) ]
  | Insn.Post (base, off) ->
      [ (reg_code base, base_lo); (2, imm_lo + imm_bits); (encode_off "post" off, imm_lo) ]

let encode ~pc insn =
  let r = reg_code in
  match insn with
  (* The all-zero word must not decode as NOP (zeroed memory should
     fault when executed), so NOP carries a nonzero marker. *)
  | Insn.Nop -> pack op_nop [ (1, 0) ]
  | Insn.Movz (rd, imm, sh) ->
      if sh land 15 <> 0 || sh < 0 || sh > 48 then fail "movz shift %d" sh;
      pack op_movz [ (r rd, 20); (ufield "imm16" imm 16, 4); (sh / 16, 2) ]
  | Insn.Movk (rd, imm, sh) ->
      if sh land 15 <> 0 || sh < 0 || sh > 48 then fail "movk shift %d" sh;
      pack op_movk [ (r rd, 20); (ufield "imm16" imm 16, 4); (sh / 16, 2) ]
  | Insn.Mov (rd, rn) -> pack op_mov [ (r rd, 20); (r rn, 14) ]
  | Insn.Add_imm (rd, rn, imm) ->
      pack op_add_imm [ (r rd, 20); (r rn, 14); (sfield "add" imm 13, 0) ]
  | Insn.Sub_imm (rd, rn, imm) ->
      pack op_sub_imm [ (r rd, 20); (r rn, 14); (sfield "sub" imm 13, 0) ]
  | Insn.Add_reg (rd, rn, rm) -> pack op_add_reg [ (r rd, 20); (r rn, 14); (r rm, 8) ]
  | Insn.Sub_reg (rd, rn, rm) -> pack op_sub_reg [ (r rd, 20); (r rn, 14); (r rm, 8) ]
  | Insn.Subs_reg (rd, rn, rm) -> pack op_subs_reg [ (r rd, 20); (r rn, 14); (r rm, 8) ]
  | Insn.Subs_imm (rd, rn, imm) ->
      pack op_subs_imm [ (r rd, 20); (r rn, 14); (sfield "subs" imm 13, 0) ]
  | Insn.And_reg (rd, rn, rm) -> pack op_and_reg [ (r rd, 20); (r rn, 14); (r rm, 8) ]
  | Insn.Orr_reg (rd, rn, rm) -> pack op_orr_reg [ (r rd, 20); (r rn, 14); (r rm, 8) ]
  | Insn.Eor_reg (rd, rn, rm) -> pack op_eor_reg [ (r rd, 20); (r rn, 14); (r rm, 8) ]
  | Insn.Lsl_imm (rd, rn, sh) ->
      pack op_lsl_imm [ (r rd, 20); (r rn, 14); (ufield "shift" sh 6, 8) ]
  | Insn.Lsr_imm (rd, rn, sh) ->
      pack op_lsr_imm [ (r rd, 20); (r rn, 14); (ufield "shift" sh 6, 8) ]
  | Insn.Bfi (rd, rn, lsb, w) ->
      pack op_bfi [ (r rd, 20); (r rn, 14); (ufield "lsb" lsb 6, 8); (ufield "width" w 7, 1) ]
  | Insn.Ubfx (rd, rn, lsb, w) ->
      pack op_ubfx
        [ (r rd, 20); (r rn, 14); (ufield "lsb" lsb 6, 8); (ufield "width" w 7, 1) ]
  | Insn.Adr (rd, target) -> pack op_adr [ (r rd, 20); (rel "adr" ~pc target 19, 0) ]
  | Insn.Ldr (rd, m) -> pack op_ldr ((r rd, 20) :: amode_fields m 14 0 12 1)
  | Insn.Str (rs, m) -> pack op_str ((r rs, 20) :: amode_fields m 14 0 12 1)
  | Insn.Ldrb (rd, m) -> pack op_ldrb ((r rd, 20) :: amode_fields m 14 0 12 1)
  | Insn.Strb (rs, m) -> pack op_strb ((r rs, 20) :: amode_fields m 14 0 12 1)
  | Insn.Ldp (r1, r2, m) ->
      pack op_ldp ((r r1, 20) :: (r r2, 14) :: amode_fields m 8 0 6 8)
  | Insn.Stp (r1, r2, m) ->
      pack op_stp ((r r1, 20) :: (r r2, 14) :: amode_fields m 8 0 6 8)
  | Insn.B target -> pack op_b [ (rel "b" ~pc target 26, 0) ]
  | Insn.Bl target -> pack op_bl [ (rel "bl" ~pc target 26, 0) ]
  | Insn.Br rn -> pack op_br [ (r rn, 20) ]
  | Insn.Blr rn -> pack op_blr [ (r rn, 20) ]
  | Insn.Ret -> pack op_ret []
  | Insn.Cbz (rn, target) -> pack op_cbz [ (r rn, 20); (rel "cbz" ~pc target 19, 0) ]
  | Insn.Cbnz (rn, target) -> pack op_cbnz [ (r rn, 20); (rel "cbnz" ~pc target 19, 0) ]
  | Insn.Bcond (c, target) ->
      pack op_bcond [ (cond_code c, 23); (rel "b.cond" ~pc target 19, 0) ]
  | Insn.Pac (k, rd, rm) -> pack op_pac [ (key_code k, 23); (r rd, 17); (r rm, 11) ]
  | Insn.Aut (k, rd, rm) -> pack op_aut [ (key_code k, 23); (r rd, 17); (r rm, 11) ]
  | Insn.Pac1716 k -> pack op_pac1716 [ (key_code k, 23) ]
  | Insn.Aut1716 k -> pack op_aut1716 [ (key_code k, 23) ]
  | Insn.Xpac rd -> pack op_xpac [ (r rd, 20) ]
  | Insn.Pacga (rd, rn, rm) -> pack op_pacga [ (r rd, 20); (r rn, 14); (r rm, 8) ]
  | Insn.Blra (k, rn, rm) -> pack op_blra [ (key_code k, 23); (r rn, 17); (r rm, 11) ]
  | Insn.Bra (k, rn, rm) -> pack op_bra [ (key_code k, 23); (r rn, 17); (r rm, 11) ]
  | Insn.Reta k -> pack op_reta [ (key_code k, 23) ]
  | Insn.Mrs (rd, sr) -> pack op_mrs [ (r rd, 20); (Sysreg.to_id sr, 14) ]
  | Insn.Msr (sr, rn) -> pack op_msr [ (Sysreg.to_id sr, 14); (r rn, 20) ]
  | Insn.Svc imm -> pack op_svc [ (ufield "svc" imm 16, 0) ]
  | Insn.Eret -> pack op_eret []
  | Insn.Isb -> pack op_isb []
  | Insn.Brk imm -> pack op_brk [ (ufield "brk" imm 16, 0) ]
  | Insn.Hlt imm -> pack op_hlt [ (ufield "hlt" imm 16, 0) ]

let decode ~pc word =
  let w = Int32.to_int word land 0xffffffff in
  let op = (w lsr 26) land 0x3f in
  let field lo bits = (w lsr lo) land ((1 lsl bits) - 1) in
  let reg lo = reg_of_code (field lo 6) in
  let ( let* ) = Option.bind in
  let amode base_lo imm_lo imm_bits scale =
    let* base = reg base_lo in
    let off = sext (field imm_lo imm_bits) imm_bits * scale in
    match field (imm_lo + imm_bits) 2 with
    | 0 -> Some (Insn.Off (base, off))
    | 1 -> Some (Insn.Pre (base, off))
    | 2 -> Some (Insn.Post (base, off))
    | _ -> None
  in
  let rel19 () = target_of ~pc (sext (field 0 19) 19) in
  match op with
  | 0 when w land 0x3ffffff = 1 -> Some Insn.Nop
  | 1 ->
      let* rd = reg 20 in
      Some (Insn.Movz (rd, field 4 16, field 2 2 * 16))
  | 2 ->
      let* rd = reg 20 in
      Some (Insn.Movk (rd, field 4 16, field 2 2 * 16))
  | 3 ->
      let* rd = reg 20 in
      let* rn = reg 14 in
      Some (Insn.Mov (rd, rn))
  | 4 ->
      let* rd = reg 20 in
      let* rn = reg 14 in
      Some (Insn.Add_imm (rd, rn, sext (field 0 13) 13))
  | 5 ->
      let* rd = reg 20 in
      let* rn = reg 14 in
      Some (Insn.Sub_imm (rd, rn, sext (field 0 13) 13))
  | 6 | 7 | 8 | 10 | 11 | 12 | 37 ->
      let* rd = reg 20 in
      let* rn = reg 14 in
      let* rm = reg 8 in
      let ctor =
        match op with
        | 6 -> fun (a, b, c) -> Insn.Add_reg (a, b, c)
        | 7 -> fun (a, b, c) -> Insn.Sub_reg (a, b, c)
        | 8 -> fun (a, b, c) -> Insn.Subs_reg (a, b, c)
        | 10 -> fun (a, b, c) -> Insn.And_reg (a, b, c)
        | 11 -> fun (a, b, c) -> Insn.Orr_reg (a, b, c)
        | 12 -> fun (a, b, c) -> Insn.Eor_reg (a, b, c)
        | _ -> fun (a, b, c) -> Insn.Pacga (a, b, c)
      in
      Some (ctor (rd, rn, rm))
  | 9 ->
      let* rd = reg 20 in
      let* rn = reg 14 in
      Some (Insn.Subs_imm (rd, rn, sext (field 0 13) 13))
  | 13 ->
      let* rd = reg 20 in
      let* rn = reg 14 in
      Some (Insn.Lsl_imm (rd, rn, field 8 6))
  | 14 ->
      let* rd = reg 20 in
      let* rn = reg 14 in
      Some (Insn.Lsr_imm (rd, rn, field 8 6))
  | 15 ->
      let* rd = reg 20 in
      let* rn = reg 14 in
      Some (Insn.Bfi (rd, rn, field 8 6, field 1 7))
  | 16 ->
      let* rd = reg 20 in
      let* rn = reg 14 in
      Some (Insn.Ubfx (rd, rn, field 8 6, field 1 7))
  | 17 ->
      let* rd = reg 20 in
      Some (Insn.Adr (rd, rel19 ()))
  | 18 ->
      let* rd = reg 20 in
      let* m = amode 14 0 12 1 in
      Some (Insn.Ldr (rd, m))
  | 19 ->
      let* rs = reg 20 in
      let* m = amode 14 0 12 1 in
      Some (Insn.Str (rs, m))
  | 20 ->
      let* rd = reg 20 in
      let* m = amode 14 0 12 1 in
      Some (Insn.Ldrb (rd, m))
  | 21 ->
      let* rs = reg 20 in
      let* m = amode 14 0 12 1 in
      Some (Insn.Strb (rs, m))
  | 22 ->
      let* r1 = reg 20 in
      let* r2 = reg 14 in
      let* m = amode 8 0 6 8 in
      Some (Insn.Ldp (r1, r2, m))
  | 23 ->
      let* r1 = reg 20 in
      let* r2 = reg 14 in
      let* m = amode 8 0 6 8 in
      Some (Insn.Stp (r1, r2, m))
  | 24 -> Some (Insn.B (target_of ~pc (sext (field 0 26) 26)))
  | 25 -> Some (Insn.Bl (target_of ~pc (sext (field 0 26) 26)))
  | 26 ->
      let* rn = reg 20 in
      Some (Insn.Br rn)
  | 27 ->
      let* rn = reg 20 in
      Some (Insn.Blr rn)
  | 28 -> Some Insn.Ret
  | 29 ->
      let* rn = reg 20 in
      Some (Insn.Cbz (rn, rel19 ()))
  | 30 ->
      let* rn = reg 20 in
      Some (Insn.Cbnz (rn, rel19 ()))
  | 31 ->
      let* c = cond_of_code (field 23 3) in
      Some (Insn.Bcond (c, rel19 ()))
  | 32 | 33 ->
      let* k = key_of_code (field 23 3) in
      let* rd = reg 17 in
      let* rm = reg 11 in
      Some (if op = 32 then Insn.Pac (k, rd, rm) else Insn.Aut (k, rd, rm))
  | 34 | 35 ->
      let* k = key_of_code (field 23 3) in
      Some (if op = 34 then Insn.Pac1716 k else Insn.Aut1716 k)
  | 36 ->
      let* rd = reg 20 in
      Some (Insn.Xpac rd)
  | 38 | 39 ->
      let* k = key_of_code (field 23 3) in
      let* rn = reg 17 in
      let* rm = reg 11 in
      Some (if op = 38 then Insn.Blra (k, rn, rm) else Insn.Bra (k, rn, rm))
  | 40 ->
      let* k = key_of_code (field 23 3) in
      Some (Insn.Reta k)
  | 41 ->
      let* rd = reg 20 in
      let* sr = Sysreg.of_id (field 14 6) in
      Some (Insn.Mrs (rd, sr))
  | 42 ->
      let* rn = reg 20 in
      let* sr = Sysreg.of_id (field 14 6) in
      Some (Insn.Msr (sr, rn))
  | 43 -> Some (Insn.Svc (field 0 16))
  | 44 -> Some Insn.Eret
  | 45 -> Some Insn.Isb
  | 46 -> Some (Insn.Brk (field 0 16))
  | 47 -> Some (Insn.Hlt (field 0 16))
  | _ -> None
