let mean = function
  | [] -> invalid_arg "Stats.mean"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

let geomean = function
  | [] -> invalid_arg "Stats.geomean"
  | xs ->
      List.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive") xs;
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))

let percent_overhead ~baseline x =
  if baseline = 0.0 then invalid_arg "Stats.percent_overhead";
  (x -. baseline) /. baseline *. 100.0

let relative ~baseline x =
  if baseline = 0.0 then invalid_arg "Stats.relative";
  x /. baseline
