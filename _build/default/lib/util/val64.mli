(** 64-bit word manipulation helpers.

    All values are OCaml [int64] treated as unsigned 64-bit machine words.
    Bit positions are numbered 0 (least significant) to 63 (most
    significant), matching the ARM Architecture Reference Manual
    convention used throughout the Camouflage paper. *)

type t = int64

val zero : t
val one : t
val all_ones : t

(** [mask width] is a word with the low [width] bits set.
    [width] must be in [0, 64]. *)
val mask : int -> t

(** [extract ~lo ~width x] reads the bit field [x\[lo + width - 1 : lo\]]
    as an unsigned value placed at bit 0. *)
val extract : lo:int -> width:int -> t -> t

(** [insert ~lo ~width ~field x] overwrites the bit field
    [x\[lo + width - 1 : lo\]] with the low [width] bits of [field],
    like the AArch64 [BFI] instruction. *)
val insert : lo:int -> width:int -> field:t -> t -> t

(** [bit i x] is [true] iff bit [i] of [x] is set. *)
val bit : int -> t -> bool

(** [set_bit i b x] sets bit [i] of [x] to [b]. *)
val set_bit : int -> bool -> t -> t

(** [ror x n] rotates [x] right by [n] bit positions ([n] taken mod 64). *)
val ror : t -> int -> t

(** [sign_extend ~from x] replicates bit [from - 1] of [x] into all bits
    at and above position [from]. *)
val sign_extend : from:int -> t -> t

(** Unsigned comparison. *)
val ucompare : t -> t -> int

(** [to_hex x] is the 16-digit lowercase hexadecimal rendering of [x]. *)
val to_hex : t -> string

(** [of_hex s] parses a hexadecimal string (no "0x" prefix required,
    but accepted). Raises [Invalid_argument] on malformed input. *)
val of_hex : string -> t

(** [popcount x] is the number of set bits in [x]. *)
val popcount : t -> int

(** [nibble i x] is the [i]-th 4-bit cell of [x] where cell 0 is the
    most significant nibble, the cell ordering used by QARMA. *)
val nibble : int -> t -> int

(** [set_nibble i v x] writes 4-bit value [v] into QARMA cell [i]. *)
val set_nibble : int -> int -> t -> t
