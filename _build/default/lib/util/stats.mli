(** Small statistics helpers for the benchmark harness.

    The paper reports means with standard-deviation error bars over
    n = 20 runs, and the geometric mean of relative overheads
    (Figure 4). *)

(** [mean xs] — arithmetic mean. Raises [Invalid_argument] on []. *)
val mean : float list -> float

(** [stddev xs] — sample standard deviation (n - 1 denominator),
    0.0 for lists of length < 2. *)
val stddev : float list -> float

(** [variance xs] — sample variance, 0.0 for lists of length < 2. *)
val variance : float list -> float

(** [geomean xs] — geometric mean; all inputs must be positive. *)
val geomean : float list -> float

(** [percent_overhead ~baseline x] — [(x - baseline) / baseline * 100]. *)
val percent_overhead : baseline:float -> float -> float

(** [relative ~baseline x] — [x / baseline]. *)
val relative : baseline:float -> float -> float
