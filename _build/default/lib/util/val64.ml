type t = int64

let zero = 0L
let one = 1L
let all_ones = -1L

let mask width =
  if width < 0 || width > 64 then invalid_arg "Val64.mask";
  if width = 64 then all_ones else Int64.sub (Int64.shift_left 1L width) 1L

let extract ~lo ~width x =
  if lo < 0 || width < 0 || lo + width > 64 then invalid_arg "Val64.extract";
  Int64.logand (Int64.shift_right_logical x lo) (mask width)

let insert ~lo ~width ~field x =
  if lo < 0 || width < 0 || lo + width > 64 then invalid_arg "Val64.insert";
  let m = Int64.shift_left (mask width) lo in
  let f = Int64.shift_left (Int64.logand field (mask width)) lo in
  Int64.logor (Int64.logand x (Int64.lognot m)) f

let bit i x =
  if i < 0 || i > 63 then invalid_arg "Val64.bit";
  Int64.logand (Int64.shift_right_logical x i) 1L = 1L

let set_bit i b x =
  if i < 0 || i > 63 then invalid_arg "Val64.set_bit";
  let m = Int64.shift_left 1L i in
  if b then Int64.logor x m else Int64.logand x (Int64.lognot m)

let ror x n =
  let n = n land 63 in
  if n = 0 then x
  else Int64.logor (Int64.shift_right_logical x n) (Int64.shift_left x (64 - n))

let sign_extend ~from x =
  if from <= 0 || from > 64 then invalid_arg "Val64.sign_extend";
  if from = 64 then x
  else if bit (from - 1) x then Int64.logor x (Int64.lognot (mask from))
  else Int64.logand x (mask from)

let ucompare a b = Int64.unsigned_compare a b

let to_hex x = Printf.sprintf "%016Lx" x

let of_hex s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
    then String.sub s 2 (String.length s - 2)
    else s
  in
  if s = "" || String.length s > 16 then invalid_arg "Val64.of_hex";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Val64.of_hex"
  in
  let rec go acc i =
    if i >= String.length s then acc
    else go (Int64.logor (Int64.shift_left acc 4) (Int64.of_int (digit s.[i]))) (i + 1)
  in
  go 0L 0

let popcount x =
  let rec go acc x = if x = 0L then acc else go (acc + 1) (Int64.logand x (Int64.sub x 1L)) in
  go 0 x

let nibble i x =
  if i < 0 || i > 15 then invalid_arg "Val64.nibble";
  Int64.to_int (extract ~lo:(4 * (15 - i)) ~width:4 x)

let set_nibble i v x =
  if i < 0 || i > 15 then invalid_arg "Val64.set_nibble";
  insert ~lo:(4 * (15 - i)) ~width:4 ~field:(Int64.of_int (v land 0xf)) x
