lib/util/stats.mli:
