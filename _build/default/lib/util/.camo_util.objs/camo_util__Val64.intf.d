lib/util/val64.mli:
