lib/util/rng.mli:
