lib/util/val64.ml: Char Int64 Printf String
