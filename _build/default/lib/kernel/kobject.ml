module Task = struct
  let off_pid = 0
  let off_state = 8
  let off_kernel_sp = 16
  let off_kstack_base = 24
  let off_user_keys = 32
  let off_saved_pc = 112
  let off_saved_sp = 120
  let off_fd_table = 128
  let fd_table_entries = 16
  let off_notifiers = 256
  let notifier_slots = 8
  let off_gprs = 320
  let off_cred = 568
  let size = 576
end

module File = struct
  let off_pos = 0
  let off_buf = 8
  let off_buf_len = 16
  let off_flags = 24
  let off_f_cred = 32
  let off_f_ops = 40
  let off_private = 48
  let size = 64
end

module Fops = struct
  let off_open = 0
  let off_release = 8
  let off_read = 16
  let off_write = 24
  let size = 32
end

module Work = struct
  let off_data = 0
  let off_func = 8
  let size = 16
end

module Timer = struct
  let off_expires = 0
  let off_func = 8
  let off_data = 16
  let size = 32
  let slots = 8
end

let register_protected_members registry =
  let reg type_name member_name offset role =
    ignore
      (Camouflage.Pointer_integrity.register registry
         { Camouflage.Pointer_integrity.type_name; member_name; offset; role })
  in
  reg "file" "f_ops" File.off_f_ops Camouflage.Keys.Data;
  reg "file" "f_cred" File.off_f_cred Camouflage.Keys.Data;
  reg "task" "kernel_sp" Task.off_kernel_sp Camouflage.Keys.Data;
  reg "task" "cred" Task.off_cred Camouflage.Keys.Data;
  reg "notifier" "handler" 0 Camouflage.Keys.Forward;
  reg "work_struct" "func" Work.off_func Camouflage.Keys.Forward;
  reg "timer" "func" Timer.off_func Camouflage.Keys.Forward
