(** Kernel object layouts: byte offsets of the structures the kernel
    code and the host-side orchestration share.

    The protected members (marked [PAC]) are exactly the pointer classes
    of Section 5.3: the ops-table pointer and credential pointer of
    [struct file], the stored stack pointer of a scheduled-out task
    (Section 5.2), lone writable function pointers (notifier/sigaction
    slots), and the callback of [struct work_struct]. *)

module Task : sig
  val off_pid : int
  val off_state : int  (** 0 runnable, 1 dead *)

  val off_kernel_sp : int  (** \[PAC\] signed SP of a scheduled-out task *)

  val off_kstack_base : int
  val off_user_keys : int  (** 5 keys x (hi, lo) = 80 bytes *)

  val off_saved_pc : int
  val off_saved_sp : int
  val off_fd_table : int
  val fd_table_entries : int
  val off_notifiers : int  (** \[PAC\] 8 lone function-pointer slots *)

  val notifier_slots : int
  val off_gprs : int
  val off_cred : int  (** \[PAC\] data pointer to the task's credentials *)

  val size : int  (** allocation size, 8-byte multiple *)
end

module File : sig
  (** For sockets [off_pos] counts bytes available in the rx buffer. *)
  val off_pos : int

  val off_buf : int
  val off_buf_len : int
  val off_flags : int
  val off_f_cred : int  (** \[PAC\] data pointer to credentials *)

  val off_f_ops : int  (** \[PAC\] data pointer to the ops table (Listing 4 uses 40) *)

  val off_private : int  (** for sockets: the peer file *)

  val size : int
end

module Fops : sig
  val off_open : int
  val off_release : int
  val off_read : int  (** Listing 4 loads the read op at offset 16 *)

  val off_write : int
  val size : int
end

module Work : sig
  val off_data : int
  val off_func : int  (** \[PAC\] deferred callback *)

  val size : int
end

module Timer : sig
  val off_expires : int  (** 0 = slot free *)

  val off_func : int  (** \[PAC\] expiry callback *)

  val off_data : int
  val size : int
  val slots : int
end

(** Register every protected member with the pointer-integrity registry;
    idempotent. *)
val register_protected_members : Camouflage.Pointer_integrity.registry -> unit
