open Aarch64
module Val64 = Camo_util.Val64

type t = {
  kernel_keys : (Sysreg.pauth_key * Pac.key) list;
  setter_addr : int64;
  restore_addr : int64;
  uaccess_authda_addr : int64;
  base : int64;
  bytes : int;
}

(* movz/movk sequence materializing a 64-bit immediate into [reg]. *)
let mov_imm64 reg v =
  let chunk i = Int64.to_int (Val64.extract ~lo:(16 * i) ~width:16 v) in
  Asm.ins (Insn.Movz (reg, chunk 0, 0))
  :: List.filter_map
       (fun i ->
         (* MOVZ already zeroed the other chunks; skip zero MOVKs. *)
         if chunk i = 0 then None else Some (Asm.ins (Insn.Movk (reg, chunk i, 16 * i))))
       [ 1; 2; 3 ]

let setter_items ~keys =
  let per_key (key, Pac.{ hi; lo }) =
    let hi_reg, lo_reg = Sysreg.key_halves key in
    mov_imm64 (Insn.R 0) lo
    @ [ Asm.ins (Insn.Msr (lo_reg, Insn.R 0)) ]
    @ mov_imm64 (Insn.R 0) hi
    @ [ Asm.ins (Insn.Msr (hi_reg, Insn.R 0)) ]
  in
  List.concat_map per_key keys
  @ [
      (* Clear the working register so key material never leaks past the
         return (Section 5.1). *)
      Asm.ins (Insn.Movz (Insn.R 0, 0, 0));
      Asm.ins Insn.Isb;
      Asm.ins Insn.Ret;
    ]

(* All five user keys are restored from the task structure: the AArch64
   user ABI guarantees PAuth in EL0 (R5), so every key the user may use
   must come back on kernel exit. *)
let user_keys_order = Sysreg.[ IA; IB; DA; DB; GA ]

let restore_items () =
  let per_key i key =
    let hi_reg, lo_reg = Sysreg.key_halves key in
    let base = Kobject.Task.off_user_keys + (16 * i) in
    [
      Asm.ins (Insn.Ldr (Insn.R 1, Insn.Off (Insn.R 0, base)));
      Asm.ins (Insn.Msr (hi_reg, Insn.R 1));
      Asm.ins (Insn.Ldr (Insn.R 1, Insn.Off (Insn.R 0, base + 8)));
      Asm.ins (Insn.Msr (lo_reg, Insn.R 1));
    ]
  in
  List.concat (List.mapi per_key user_keys_order)
  @ [
      Asm.ins (Insn.Movz (Insn.R 1, 0, 0));
      Asm.ins Insn.Isb;
      Asm.ins Insn.Ret;
    ]

(* Cross-privilege pointer authentication (the hardened syscall ABI of
   Section 8's future work): authenticate a user-signed pointer under
   the calling task's DA key. DA is reserved for the user ABI in the
   kernel key allocation, so clobbering its registers never affects the
   kernel's own keys; the routine still lives on the audited page
   because it writes key registers. x0 = signed pointer, x1 = task,
   x2 = ABI modifier; returns the authenticated pointer in x0. *)
let uaccess_authda_items () =
  let da_index = 2 (* IA, IB, DA, ... in the thread_struct layout *) in
  let base = Kobject.Task.off_user_keys + (16 * da_index) in
  let hi_reg, lo_reg = Sysreg.key_halves Sysreg.DA in
  [
    Asm.ins (Insn.Ldr (Insn.R 3, Insn.Off (Insn.R 1, base)));
    Asm.ins (Insn.Msr (hi_reg, Insn.R 3));
    Asm.ins (Insn.Ldr (Insn.R 3, Insn.Off (Insn.R 1, base + 8)));
    Asm.ins (Insn.Msr (lo_reg, Insn.R 3));
    Asm.ins (Insn.Aut (Sysreg.DA, Insn.R 0, Insn.R 2));
    Asm.ins (Insn.Movz (Insn.R 3, 0, 0));
    Asm.ins Insn.Isb;
    Asm.ins Insn.Ret;
  ]

let install cpu hyp ~rng ~mode =
  let kernel_keys =
    List.map
      (fun key ->
        let hi, lo = Camo_util.Rng.key128 rng in
        (key, Pac.{ hi; lo }))
      (Camouflage.Keys.keys_in_use mode)
  in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"kernel_key_setter" (setter_items ~keys:kernel_keys);
  Asm.add_function prog ~name:"user_key_restore" (restore_items ());
  Asm.add_function prog ~name:"uaccess_authda" (uaccess_authda_items ());
  let layout = Asm.assemble prog ~base:Layout.xom_base in
  (* The page must exist in stage 1 before the bootloader writes it and
     the hypervisor seals it. *)
  Kmem.map_kernel_region cpu ~base:Layout.xom_base ~bytes:layout.Asm.size Mmu.rx;
  Asm.encode_into layout ~write32:(Kmem.write32 cpu);
  Hypervisor.protect_xom hyp ~base:Layout.xom_base ~bytes:layout.Asm.size;
  {
    kernel_keys;
    setter_addr = Asm.symbol layout "kernel_key_setter";
    restore_addr = Asm.symbol layout "user_key_restore";
    uaccess_authda_addr = Asm.symbol layout "uaccess_authda";
    base = Layout.xom_base;
    bytes = layout.Asm.size;
  }

let allowed_key_writer t va =
  Int64.unsigned_compare va t.base >= 0
  && Int64.unsigned_compare va (Int64.add t.base (Int64.of_int t.bytes)) < 0
