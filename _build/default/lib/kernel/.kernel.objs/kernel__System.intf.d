lib/kernel/system.mli: Aarch64 Asm Camouflage Cost Cpu Kelf Xom
