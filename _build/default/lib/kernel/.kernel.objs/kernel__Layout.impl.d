lib/kernel/layout.ml: Camo_util Int64
