lib/kernel/kbuild.ml: Aarch64 Asm Camouflage Insn Kelf Kobject List Sysreg
