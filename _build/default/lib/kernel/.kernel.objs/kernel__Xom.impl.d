lib/kernel/xom.ml: Aarch64 Asm Camo_util Camouflage Hypervisor Insn Int64 Kmem Kobject Layout List Mmu Pac Sysreg
