lib/kernel/hypervisor.ml: Aarch64 Cpu Int64 Layout Mmu Sysreg Vaddr
