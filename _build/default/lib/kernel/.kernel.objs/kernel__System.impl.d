lib/kernel/system.ml: Aarch64 Array Asm Camo_util Camouflage Cost Cpu El Hashtbl Hypervisor Insn Int64 Kbuild Kelf Kmem Kobject Layout List Mmu Pac Printf Qarma Queue Result Sysreg Vaddr Xom
