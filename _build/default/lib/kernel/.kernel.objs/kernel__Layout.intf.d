lib/kernel/layout.mli:
