lib/kernel/kmem.mli: Aarch64 Cpu Mmu
