lib/kernel/kobject.ml: Camouflage
