lib/kernel/kobject.mli: Camouflage
