lib/kernel/xom.mli: Aarch64 Asm Camo_util Camouflage Cpu Hypervisor Pac Sysreg
