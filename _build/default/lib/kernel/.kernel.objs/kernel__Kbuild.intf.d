lib/kernel/kbuild.mli: Camouflage Kelf
