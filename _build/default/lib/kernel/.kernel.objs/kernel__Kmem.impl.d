lib/kernel/kmem.ml: Aarch64 Cpu Int64 Layout Mem Mmu Vaddr
