lib/kernel/hypervisor.mli: Aarch64 Cpu Sysreg
