type finding = { type_name : string; member_name : string; assigned_in : string list }

type census = {
  findings : finding list;
  member_count : int;
  type_count : int;
  multi_member_type_count : int;
  ops_table_convertible : int;
  needs_pac : int;
}

(* Walk one function body collecting [obj->member = e] where the member
   is a function pointer. The variable environment comes from the
   function's parameters and locals. *)
let assignments_in corpus (f : Cast.func_def) =
  let env = f.Cast.params @ f.Cast.locals in
  let hits = ref [] in
  let record obj member =
    match Cast.expr_type ~corpus ~env (Cast.Field_read (obj, member)) with
    | Some (Cast.Func_ptr _) -> (
        match Cast.expr_type ~corpus ~env obj with
        | Some (Cast.Ptr (Cast.Struct_ref s)) | Some (Cast.Struct_ref s) ->
            hits := (s, member) :: !hits
        | Some (Cast.Void | Cast.Int | Cast.Char | Cast.Ptr _ | Cast.Func_ptr _) | None ->
            ())
    | Some (Cast.Void | Cast.Int | Cast.Char | Cast.Ptr _ | Cast.Struct_ref _) | None -> ()
  in
  let rec walk_stmt = function
    | Cast.Field_write (obj, member, _) -> record obj member
    | Cast.Set_accessor (_, _, _, _) | Cast.Expr_stmt _ | Cast.Assign_var _ -> ()
    | Cast.If (_, then_, else_) ->
        List.iter walk_stmt then_;
        List.iter walk_stmt else_
    | Cast.Return _ -> ()
  in
  List.iter walk_stmt f.Cast.body;
  !hits

module Pair_map = Map.Make (struct
  type t = string * string

  let compare = compare
end)

let run corpus =
  let table = ref Pair_map.empty in
  List.iter
    (fun (file : Cast.file) ->
      List.iter
        (fun f ->
          List.iter
            (fun key ->
              let existing =
                match Pair_map.find_opt key !table with Some l -> l | None -> []
              in
              table := Pair_map.add key (f.Cast.func_name :: existing) !table)
            (assignments_in corpus f))
        file.Cast.functions)
    corpus;
  let findings =
    Pair_map.fold
      (fun (type_name, member_name) assigned_in acc ->
        { type_name; member_name; assigned_in = List.rev assigned_in } :: acc)
      !table []
    |> List.rev
  in
  let member_count = List.length findings in
  let by_type = Hashtbl.create 64 in
  List.iter
    (fun finding ->
      let n = match Hashtbl.find_opt by_type finding.type_name with Some n -> n | None -> 0 in
      Hashtbl.replace by_type finding.type_name (n + 1))
    findings;
  let type_count = Hashtbl.length by_type in
  let multi = Hashtbl.fold (fun _ n acc -> if n > 1 then acc + 1 else acc) by_type 0 in
  let needs_pac =
    Hashtbl.fold (fun _ n acc -> if n = 1 then acc + n else acc) by_type 0
  in
  {
    findings;
    member_count;
    type_count;
    multi_member_type_count = multi;
    ops_table_convertible = multi;
    needs_pac;
  }

let protected_members census =
  let by_type = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let n = match Hashtbl.find_opt by_type f.type_name with Some n -> n | None -> 0 in
      Hashtbl.replace by_type f.type_name (n + 1))
    census.findings;
  List.filter_map
    (fun f ->
      match Hashtbl.find_opt by_type f.type_name with
      | Some 1 -> Some (f.type_name, f.member_name)
      | Some _ | None -> None)
    census.findings
