(** The semantic search of Section 5.3: find every function-pointer
    member of a compound type that is assigned at run time (i.e. inside
    a function body, as opposed to a static initializer), and classify
    the containing types.

    On Linux 5.2 the paper reports 1285 such members in 504 types, of
    which 229 hold more than one function pointer and should be
    converted to read-only operations structures; the remainder need
    PAuth protection in place. *)

(** One runtime-assigned function-pointer member. *)
type finding = {
  type_name : string;
  member_name : string;
  assigned_in : string list;  (** functions performing the assignment *)
}

type census = {
  findings : finding list;
  member_count : int;  (** paper: 1285 *)
  type_count : int;  (** paper: 504 *)
  multi_member_type_count : int;  (** paper: 229 *)
  ops_table_convertible : int;  (** = multi_member_type_count *)
  needs_pac : int;  (** members in single-pointer types *)
}

(** [run corpus] — the full census. *)
val run : Cast.corpus -> census

(** [protected_members census] — the (type, member) set the Coccinelle
    patch would wrap in accessors: members of the types that are NOT
    converted to operations structures, i.e. single-pointer types. For
    multi-pointer types the paper expects conversion to const ops
    structures instead. *)
val protected_members : census -> (string * string) list
