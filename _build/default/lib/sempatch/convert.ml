type stats = {
  types_converted : int;
  ops_structs_created : int;
  assignments_collapsed : int;
  reads_redirected : int;
}

module String_map = Map.Make (String)

(* Multi-pointer types and their function-pointer members, from the
   census. *)
let multi_types census =
  let by_type = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let existing =
        match Hashtbl.find_opt by_type f.Analysis.type_name with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_type f.Analysis.type_name (f.Analysis.member_name :: existing))
    census.Analysis.findings;
  Hashtbl.fold
    (fun type_name members acc ->
      if List.length members > 1 then String_map.add type_name (List.rev members) acc
      else acc)
    by_type String_map.empty

let ops_struct_name s = s ^ "_ops"
let ops_instance_name s = s ^ "_default_ops"
let ops_member = "ops"

let is_fptr_member multi s member =
  match String_map.find_opt s multi with
  | Some members -> List.mem member members
  | None -> false

(* Split a struct definition: the converted record plus its ops struct. *)
let convert_struct multi (sd : Cast.struct_def) =
  match String_map.find_opt sd.Cast.struct_name multi with
  | None -> (sd, None)
  | Some members ->
      let fptrs, rest =
        List.partition (fun f -> List.mem f.Cast.field_name members) sd.Cast.fields
      in
      let ops =
        {
          Cast.struct_name = ops_struct_name sd.Cast.struct_name;
          fields = fptrs;
        }
      in
      let converted =
        {
          sd with
          Cast.fields =
            rest
            @ [
                {
                  Cast.field_name = ops_member;
                  field_type = Cast.Ptr (Cast.Struct_ref (ops_struct_name sd.Cast.struct_name));
                };
              ];
        }
      in
      (converted, Some (ops, members))

(* Rewrite one function against the original corpus typing. *)
let convert_function corpus multi stats (f : Cast.func_def) =
  let env = f.Cast.params @ f.Cast.locals in
  let struct_of obj =
    match Cast.expr_type ~corpus ~env obj with
    | Some (Cast.Ptr (Cast.Struct_ref s)) | Some (Cast.Struct_ref s) ->
        if String_map.mem s multi then Some s else None
    | Some (Cast.Void | Cast.Int | Cast.Char | Cast.Ptr _ | Cast.Func_ptr _) | None ->
        None
  in
  let rec rewrite_expr e =
    match e with
    | Cast.Field_read (obj, member) -> (
        let obj' = rewrite_expr obj in
        match struct_of obj with
        | Some s when is_fptr_member multi s member ->
            incr (snd stats);
            Cast.Field_read (Cast.Get_accessor (s, ops_member, obj'), member)
        | Some _ | None -> Cast.Field_read (obj', member))
    | Cast.Var _ | Cast.Int_lit _ | Cast.Addr_of_func _ | Cast.Addr_of_static _ -> e
    | Cast.Call (name, args) -> Cast.Call (name, List.map rewrite_expr args)
    | Cast.Indirect_call (fn, args) ->
        Cast.Indirect_call (rewrite_expr fn, List.map rewrite_expr args)
    | Cast.Get_accessor (s, m, obj) -> Cast.Get_accessor (s, m, rewrite_expr obj)
  in
  (* Collapse consecutive fptr writes to the same object into a single
     ops store; track which objects were already given one. *)
  let installed = Hashtbl.create 4 in
  let rec rewrite_stmts stmts =
    List.concat_map
      (fun st ->
        match st with
        | Cast.Field_write (obj, member, _value) -> (
            match struct_of obj with
            | Some s when is_fptr_member multi s member ->
                incr (fst stats);
                let key = (s, obj) in
                if Hashtbl.mem installed key then []
                else begin
                  Hashtbl.add installed key ();
                  [
                    Cast.Set_accessor
                      ( s,
                        ops_member,
                        rewrite_expr obj,
                        Cast.Addr_of_static (ops_instance_name s, ops_struct_name s) );
                  ]
                end
            | Some _ | None ->
                [
                  Cast.Field_write
                    (rewrite_expr obj, member, rewrite_expr _value);
                ])
        | Cast.Expr_stmt e -> [ Cast.Expr_stmt (rewrite_expr e) ]
        | Cast.Assign_var (v, e) -> [ Cast.Assign_var (v, rewrite_expr e) ]
        | Cast.Set_accessor (s, m, obj, v) ->
            [ Cast.Set_accessor (s, m, rewrite_expr obj, rewrite_expr v) ]
        | Cast.If (c, then_, else_) ->
            [ Cast.If (rewrite_expr c, rewrite_stmts then_, rewrite_stmts else_) ]
        | Cast.Return _ -> [ st ])
      stmts
  in
  { f with Cast.body = rewrite_stmts f.Cast.body }

(* The const default-ops instance of a converted type: its values come
   from the assignments the census recorded. *)
let default_ops_initializer corpus s members =
  let init_values =
    List.map
      (fun member ->
        (* find the Addr_of_func assigned to this member anywhere *)
        let found = ref (Cast.Addr_of_func (s ^ "_missing")) in
        List.iter
          (fun (file : Cast.file) ->
            List.iter
              (fun (f : Cast.func_def) ->
                let env = f.Cast.params @ f.Cast.locals in
                let rec scan stmts =
                  List.iter
                    (fun st ->
                      match st with
                      | Cast.Field_write (obj, m, (Cast.Addr_of_func _ as v))
                        when m = member -> (
                          match Cast.expr_type ~corpus ~env obj with
                          | Some (Cast.Ptr (Cast.Struct_ref s')) when s' = s -> found := v
                          | Some _ | None -> ())
                      | Cast.If (_, a, b) ->
                          scan a;
                          scan b
                      | Cast.Field_write _ | Cast.Expr_stmt _ | Cast.Assign_var _
                      | Cast.Set_accessor _ | Cast.Return _ ->
                          ())
                    stmts
                in
                scan f.Cast.body)
              file.Cast.functions)
          corpus;
        (member, !found))
      members
  in
  {
    Cast.init_name = ops_instance_name s;
    init_struct = ops_struct_name s;
    init_values;
    is_const = true;
  }

let convert_multi corpus census =
  let multi = multi_types census in
  let collapsed = ref 0 and redirected = ref 0 in
  let stats_cells = (collapsed, redirected) in
  let new_ops_structs = ref 0 in
  let corpus' =
    List.map
      (fun (file : Cast.file) ->
        let structs, extras, inits =
          List.fold_left
            (fun (ss, extras, inits) sd ->
              match convert_struct multi sd with
              | converted, Some (ops, members) ->
                  incr new_ops_structs;
                  ( converted :: ops :: ss,
                    extras,
                    default_ops_initializer corpus sd.Cast.struct_name members
                    :: inits )
              | converted, None -> (converted :: ss, extras, inits))
            ([], [], []) file.Cast.structs
        in
        ignore extras;
        {
          file with
          Cast.structs = List.rev structs;
          functions = List.map (convert_function corpus multi stats_cells) file.Cast.functions;
          initializers = file.Cast.initializers @ List.rev inits;
        })
      corpus
  in
  ( corpus',
    {
      types_converted = String_map.cardinal multi;
      ops_structs_created = !new_ops_structs;
      assignments_collapsed = !collapsed;
      reads_redirected = !redirected;
    } )
