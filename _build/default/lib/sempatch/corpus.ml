type calibration = {
  single_member_types : int;
  multi_member_types : int;
  total_members : int;
  static_ops_types : int;
  plain_types : int;
}

let linux_5_2 =
  {
    single_member_types = 275;
    multi_member_types = 229;
    total_members = 1285;
    static_ops_types = 150;
    plain_types = 300;
  }

(* Distribute the multi-type members: every multi type gets at least 2;
   the remainder is spread one by one from the first type on. *)
let multi_sizes cal =
  let multi_members = cal.total_members - cal.single_member_types in
  let base = Array.make cal.multi_member_types 2 in
  let extra = multi_members - (2 * cal.multi_member_types) in
  if extra < 0 then invalid_arg "Corpus: calibration has too few members";
  for k = 0 to extra - 1 do
    let idx = k mod cal.multi_member_types in
    base.(idx) <- base.(idx) + 1
  done;
  base

let fptr_sig k = Printf.sprintf "sig_%d" (k mod 7)

let make_struct name n_fptrs ~with_data =
  let fptrs =
    List.init n_fptrs (fun k ->
        { Cast.field_name = Printf.sprintf "op_%d" k; field_type = Cast.Func_ptr (fptr_sig k) })
  in
  let data =
    if with_data then
      [
        { Cast.field_name = "refcount"; field_type = Cast.Int };
        { Cast.field_name = "private_data"; field_type = Cast.Ptr Cast.Void };
      ]
    else []
  in
  { Cast.struct_name = name; fields = data @ fptrs }

(* A driver function that assigns each fptr member of [sname] at run
   time (the device-driver pattern of Section 4.4), plus a consumer that
   only reads and calls — reads must not show up in the census. *)
let make_driver rng sname n_fptrs =
  let obj = ("dev", Cast.Ptr (Cast.Struct_ref sname)) in
  let assigns =
    List.init n_fptrs (fun k ->
        Cast.Field_write
          ( Cast.Var "dev",
            Printf.sprintf "op_%d" k,
            Cast.Addr_of_func (Printf.sprintf "%s_handler_%d" sname k) ))
  in
  let maybe_conditional =
    (* some drivers assign under a probe-time condition *)
    if Camo_util.Rng.next_in rng 4 = 0 then
      [ Cast.If (Cast.Var "probed", assigns, [ Cast.Return None ]) ]
    else assigns
  in
  let setup =
    {
      Cast.func_name = sname ^ "_probe";
      params = [ obj; ("probed", Cast.Int) ];
      locals = [];
      body = maybe_conditional;
    }
  in
  let consumer =
    {
      Cast.func_name = sname ^ "_dispatch";
      params = [ obj ];
      locals = [ ("tmp", Cast.Func_ptr (fptr_sig 0)) ];
      body =
        [
          Cast.Assign_var ("tmp", Cast.Field_read (Cast.Var "dev", "op_0"));
          Cast.Expr_stmt (Cast.Indirect_call (Cast.Var "tmp", [ Cast.Int_lit 0 ]));
        ];
    }
  in
  [ setup; consumer ]

let make_static_ops name n_fptrs =
  (* the good-practice pattern: a const ops structure, never assigned at
     run time *)
  let struct_def = make_struct (name ^ "_ops") n_fptrs ~with_data:false in
  let init =
    {
      Cast.init_name = name ^ "_default_ops";
      init_struct = name ^ "_ops";
      init_values =
        List.init n_fptrs (fun k ->
            (Printf.sprintf "op_%d" k, Cast.Addr_of_func (Printf.sprintf "%s_fn_%d" name k)));
      is_const = true;
    }
  in
  (struct_def, init)

let generate ?(calibration = linux_5_2) ~seed () =
  let rng = Camo_util.Rng.create seed in
  let cal = calibration in
  let sizes = multi_sizes cal in
  let files = ref [] in
  let add_file name structs functions initializers =
    files :=
      { Cast.file_name = name; structs; functions; initializers } :: !files
  in
  (* single-member driver types *)
  let singles =
    List.init cal.single_member_types (fun k ->
        let name = Printf.sprintf "sdrv_%d" k in
        (make_struct name 1 ~with_data:true, make_driver rng name 1))
  in
  (* multi-member driver types *)
  let multis =
    List.init cal.multi_member_types (fun k ->
        let name = Printf.sprintf "mdrv_%d" k in
        (make_struct name sizes.(k) ~with_data:true, make_driver rng name sizes.(k)))
  in
  (* static ops noise *)
  let statics = List.init cal.static_ops_types (fun k -> make_static_ops (Printf.sprintf "fs_%d" k) 4) in
  (* plain noise *)
  let plains =
    List.init cal.plain_types (fun k ->
        make_struct (Printf.sprintf "plain_%d" k) 0 ~with_data:true)
  in
  (* distribute into "files" of ~20 types for realism *)
  let all_driver =
    List.mapi (fun k (s, fns) -> (k, s, fns)) (singles @ multis)
  in
  List.iter
    (fun chunk ->
      let idx = match chunk with (k, _, _) :: _ -> k | [] -> 0 in
      add_file
        (Printf.sprintf "drivers/gen/driver_%03d.c" (idx / 20))
        (List.map (fun (_, s, _) -> s) chunk)
        (List.concat_map (fun (_, _, fns) -> fns) chunk)
        [])
    (let rec chunks l =
       match l with
       | [] -> []
       | _ ->
           let take = min 20 (List.length l) in
           let rec split n acc rest =
             if n = 0 then (List.rev acc, rest)
             else
               match rest with
               | [] -> (List.rev acc, [])
               | x :: tl -> split (n - 1) (x :: acc) tl
           in
           let head, tail = split take [] l in
           head :: chunks tail
     in
     chunks all_driver);
  add_file "fs/gen/static_ops.c"
    (List.map fst statics)
    []
    (List.map snd statics);
  add_file "include/gen/plain.h" plains [] [];
  List.rev !files
