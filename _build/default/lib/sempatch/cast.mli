(** A miniature C abstract syntax, rich enough for the paper's semantic
    search (Section 5.3): compound type declarations with
    function-pointer members, static initializers, and function bodies
    containing member reads, member writes and indirect calls. *)

type ctype =
  | Void
  | Int
  | Char
  | Ptr of ctype
  | Func_ptr of string  (** named signature *)
  | Struct_ref of string

type field = { field_name : string; field_type : ctype }

type struct_def = { struct_name : string; fields : field list }

type expr =
  | Var of string
  | Int_lit of int
  | Addr_of_func of string
  | Addr_of_static of string * string
      (** [&name] where [name] is a static instance of the given struct *)
  | Field_read of expr * string  (** [e->f] *)
  | Call of string * expr list
  | Indirect_call of expr * expr list
  | Get_accessor of string * string * expr
      (** [type_member_get(obj)] — introduced by the rewrite *)

type stmt =
  | Expr_stmt of expr
  | Assign_var of string * expr
  | Field_write of expr * string * expr  (** [e->f = v] *)
  | Set_accessor of string * string * expr * expr
      (** [type_member_set(obj, v)] — introduced by the rewrite *)
  | If of expr * stmt list * stmt list
  | Return of expr option

type func_def = {
  func_name : string;
  params : (string * ctype) list;
  locals : (string * ctype) list;
  body : stmt list;
}

(** A static initializer: [static (const) struct S x = { .f = ... };].
    [is_const] models placement in .rodata (an operations structure). *)
type initializer_def = {
  init_name : string;
  init_struct : string;
  init_values : (string * expr) list;
  is_const : bool;
}

type file = {
  file_name : string;
  structs : struct_def list;
  functions : func_def list;
  initializers : initializer_def list;
}

type corpus = file list

(** [find_struct corpus name]. *)
val find_struct : corpus -> string -> struct_def option

(** [expr_type ~corpus ~env e] — best-effort type of [e] given variable
    typings [env]; [None] when unknown. *)
val expr_type : corpus:corpus -> env:(string * ctype) list -> expr -> ctype option

val struct_count : corpus -> int
val function_count : corpus -> int
