(** The semi-automatic source rewrite of Section 5.3: substitute every
    direct read and write of a protected pointer member with explicit
    [get]/[set] accessor calls, which are then (in the real system)
    patched to invoke the PAuth instructions. *)

type stats = {
  reads_rewritten : int;
  writes_rewritten : int;
  functions_touched : int;
}

(** [apply corpus ~protected] — rewrite all accesses to the given
    (type, member) pairs. Returns the new corpus and statistics. *)
val apply : Cast.corpus -> protected:(string * string) list -> Cast.corpus * stats

(** [residual_accesses corpus ~protected] — direct accesses remaining
    after a rewrite; must be empty for the patch to be complete. *)
val residual_accesses : Cast.corpus -> protected:(string * string) list -> int
