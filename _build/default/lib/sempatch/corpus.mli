(** Synthetic kernel-source corpus generator.

    Real Linux 5.2 sources are unavailable offline, so the corpus is
    drawn to the distribution the paper reports for it: 504 compound
    types with function-pointer members assigned at run time, 1285 such
    members in total, 229 types holding more than one. Around these
    targets the generator adds realistic noise — operations-structure
    types initialized only statically (never assigned at run time),
    plain-data types, and functions that merely read or call the
    pointers — so the analysis must actually discriminate, not just
    count everything. *)

type calibration = {
  single_member_types : int;  (** types with exactly 1 runtime-assigned fptr *)
  multi_member_types : int;  (** types with > 1 *)
  total_members : int;  (** across all of the above *)
  static_ops_types : int;  (** noise: ops structs only statically initialized *)
  plain_types : int;  (** noise: no function pointers at all *)
}

(** The Linux 5.2 shape: 275 + 229 types, 1285 members. *)
val linux_5_2 : calibration

(** [generate ?calibration ~seed ()] — a deterministic corpus. *)
val generate : ?calibration:calibration -> seed:int64 -> unit -> Cast.corpus
