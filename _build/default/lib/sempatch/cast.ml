type ctype = Void | Int | Char | Ptr of ctype | Func_ptr of string | Struct_ref of string

type field = { field_name : string; field_type : ctype }

type struct_def = { struct_name : string; fields : field list }

type expr =
  | Var of string
  | Int_lit of int
  | Addr_of_func of string
  | Addr_of_static of string * string  (* initializer name, struct name *)
  | Field_read of expr * string
  | Call of string * expr list
  | Indirect_call of expr * expr list
  | Get_accessor of string * string * expr

type stmt =
  | Expr_stmt of expr
  | Assign_var of string * expr
  | Field_write of expr * string * expr
  | Set_accessor of string * string * expr * expr
  | If of expr * stmt list * stmt list
  | Return of expr option

type func_def = {
  func_name : string;
  params : (string * ctype) list;
  locals : (string * ctype) list;
  body : stmt list;
}

type initializer_def = {
  init_name : string;
  init_struct : string;
  init_values : (string * expr) list;
  is_const : bool;
}

type file = {
  file_name : string;
  structs : struct_def list;
  functions : func_def list;
  initializers : initializer_def list;
}

type corpus = file list

let find_struct corpus name =
  List.find_map
    (fun f -> List.find_opt (fun s -> s.struct_name = name) f.structs)
    corpus

let field_type corpus sname fname =
  match find_struct corpus sname with
  | None -> None
  | Some s ->
      List.find_map
        (fun f -> if f.field_name = fname then Some f.field_type else None)
        s.fields

let rec expr_type ~corpus ~env e =
  match e with
  | Var v -> List.assoc_opt v env
  | Int_lit _ -> Some Int
  | Addr_of_func sig_name -> Some (Func_ptr sig_name)
  | Addr_of_static (_, sname) -> Some (Ptr (Struct_ref sname))
  | Field_read (obj, fname) -> (
      match expr_type ~corpus ~env obj with
      | Some (Ptr (Struct_ref s)) | Some (Struct_ref s) -> field_type corpus s fname
      | Some (Void | Int | Char | Ptr _ | Func_ptr _) | None -> None)
  | Call (_, _) -> None
  | Indirect_call (_, _) -> None
  | Get_accessor (type_name, member, _) -> field_type corpus type_name member

let struct_count corpus = List.fold_left (fun acc f -> acc + List.length f.structs) 0 corpus

let function_count corpus =
  List.fold_left (fun acc f -> acc + List.length f.functions) 0 corpus
