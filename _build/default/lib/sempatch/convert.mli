(** Operations-structure conversion (the second half of Section 5.3).

    The paper expects the 229 compound types holding more than one
    run-time-assigned function pointer to "follow existing kernel
    practices and be converted to use read-only operations structures".
    This pass performs that conversion mechanically:

    + for each multi-pointer type [S], a new struct [S_ops] collects the
      function-pointer fields and a [const] static instance
      [S_default_ops] is emitted (destined for .rodata);
    + [S] loses the function-pointer fields and gains an [ops] data
      pointer — the member Camouflage then protects with DFI;
    + every run-time assignment sequence [s->op_k = &f; ...] collapses
      into one protected store [S_ops_set(s, &S_default_ops)];
    + every read [s->op_k] becomes [S_ops_get(s)->op_k].

    After conversion the census must report zero multi-pointer types:
    the remaining protected surface is exactly the lone pointers. *)

type stats = {
  types_converted : int;  (** paper: 229 *)
  ops_structs_created : int;
  assignments_collapsed : int;  (** fptr writes folded into ops stores *)
  reads_redirected : int;
}

(** [convert_multi corpus census] — returns the transformed corpus. *)
val convert_multi : Cast.corpus -> Analysis.census -> Cast.corpus * stats
