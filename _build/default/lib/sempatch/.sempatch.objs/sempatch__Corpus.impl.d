lib/sempatch/corpus.ml: Array Camo_util Cast List Printf
