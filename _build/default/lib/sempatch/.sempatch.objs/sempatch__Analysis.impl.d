lib/sempatch/analysis.ml: Cast Hashtbl List Map
