lib/sempatch/convert.mli: Analysis Cast
