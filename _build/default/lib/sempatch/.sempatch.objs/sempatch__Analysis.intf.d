lib/sempatch/analysis.mli: Cast
