lib/sempatch/corpus.mli: Cast
