lib/sempatch/rewrite.mli: Cast
