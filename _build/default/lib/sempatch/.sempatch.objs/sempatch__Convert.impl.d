lib/sempatch/convert.ml: Analysis Cast Hashtbl List Map String
