lib/sempatch/cast.mli:
