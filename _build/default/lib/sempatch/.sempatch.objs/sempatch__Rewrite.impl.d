lib/sempatch/rewrite.ml: Cast List
