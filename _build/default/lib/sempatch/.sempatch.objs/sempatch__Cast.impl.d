lib/sempatch/cast.ml: List
