type stats = { reads_rewritten : int; writes_rewritten : int; functions_touched : int }

(* Determine whether [obj->member] resolves to a protected pair under
   the function's typing environment. *)
let protected_pair corpus env protected obj member =
  match Cast.expr_type ~corpus ~env obj with
  | Some (Cast.Ptr (Cast.Struct_ref s)) | Some (Cast.Struct_ref s) ->
      if List.mem (s, member) protected then Some s else None
  | Some (Cast.Void | Cast.Int | Cast.Char | Cast.Ptr _ | Cast.Func_ptr _) | None -> None

let apply corpus ~protected =
  let reads = ref 0 and writes = ref 0 and touched = ref 0 in
  let rewrite_function (f : Cast.func_def) =
    let env = f.Cast.params @ f.Cast.locals in
    let changed = ref false in
    let rec rewrite_expr e =
      match e with
      | Cast.Field_read (obj, member) -> (
          let obj' = rewrite_expr obj in
          match protected_pair corpus env protected obj member with
          | Some s ->
              incr reads;
              changed := true;
              Cast.Get_accessor (s, member, obj')
          | None -> Cast.Field_read (obj', member))
      | Cast.Var _ | Cast.Int_lit _ | Cast.Addr_of_func _ | Cast.Addr_of_static _ -> e
      | Cast.Call (name, args) -> Cast.Call (name, List.map rewrite_expr args)
      | Cast.Indirect_call (fn, args) ->
          Cast.Indirect_call (rewrite_expr fn, List.map rewrite_expr args)
      | Cast.Get_accessor (s, m, obj) -> Cast.Get_accessor (s, m, rewrite_expr obj)
    in
    let rec rewrite_stmt st =
      match st with
      | Cast.Field_write (obj, member, value) -> (
          let obj' = rewrite_expr obj and value' = rewrite_expr value in
          match protected_pair corpus env protected obj member with
          | Some s ->
              incr writes;
              changed := true;
              Cast.Set_accessor (s, member, obj', value')
          | None -> Cast.Field_write (obj', member, value'))
      | Cast.Expr_stmt e -> Cast.Expr_stmt (rewrite_expr e)
      | Cast.Assign_var (v, e) -> Cast.Assign_var (v, rewrite_expr e)
      | Cast.Set_accessor (s, m, obj, v) ->
          Cast.Set_accessor (s, m, rewrite_expr obj, rewrite_expr v)
      | Cast.If (c, then_, else_) ->
          Cast.If (rewrite_expr c, List.map rewrite_stmt then_, List.map rewrite_stmt else_)
      | Cast.Return None -> st
      | Cast.Return (Some e) -> Cast.Return (Some (rewrite_expr e))
    in
    let body = List.map rewrite_stmt f.Cast.body in
    if !changed then incr touched;
    { f with Cast.body }
  in
  let corpus' =
    List.map
      (fun (file : Cast.file) ->
        { file with Cast.functions = List.map rewrite_function file.Cast.functions })
      corpus
  in
  (corpus', { reads_rewritten = !reads; writes_rewritten = !writes; functions_touched = !touched })

let residual_accesses corpus ~protected =
  let count = ref 0 in
  let check_function (f : Cast.func_def) =
    let env = f.Cast.params @ f.Cast.locals in
    let rec walk_expr e =
      match e with
      | Cast.Field_read (obj, member) ->
          (match protected_pair corpus env protected obj member with
          | Some _ -> incr count
          | None -> ());
          walk_expr obj
      | Cast.Var _ | Cast.Int_lit _ | Cast.Addr_of_func _ | Cast.Addr_of_static _ -> ()
      | Cast.Call (_, args) -> List.iter walk_expr args
      | Cast.Indirect_call (fn, args) ->
          walk_expr fn;
          List.iter walk_expr args
      | Cast.Get_accessor (_, _, obj) -> walk_expr obj
    in
    let rec walk_stmt st =
      match st with
      | Cast.Field_write (obj, member, value) ->
          (match protected_pair corpus env protected obj member with
          | Some _ -> incr count
          | None -> ());
          walk_expr obj;
          walk_expr value
      | Cast.Expr_stmt e -> walk_expr e
      | Cast.Assign_var (_, e) -> walk_expr e
      | Cast.Set_accessor (_, _, obj, v) ->
          walk_expr obj;
          walk_expr v
      | Cast.If (c, then_, else_) ->
          walk_expr c;
          List.iter walk_stmt then_;
          List.iter walk_stmt else_
      | Cast.Return None -> ()
      | Cast.Return (Some e) -> walk_expr e
    in
    List.iter walk_stmt f.Cast.body
  in
  List.iter
    (fun (file : Cast.file) -> List.iter check_function file.Cast.functions)
    corpus;
  !count
