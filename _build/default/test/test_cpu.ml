(* Interpreter smoke tests: run small assembled programs end to end,
   including PAuth sign/authenticate round trips and fault delivery. *)

open Aarch64

let code_base = Env.code_base
let stack_top = Env.stack_top
let pa_of_va = Env.pa_of_va
let map_region cpu ~base ~pages perm = Env.map_region cpu ~base ~pages perm
let fresh_cpu () = Env.fresh_cpu ()
let load_program cpu prog = Env.load_program cpu prog
let run_function = Env.run_function

let test_arith_loop () =
  let cpu = fresh_cpu () in
  let prog = Asm.create () in
  (* Sum 1..10 into x0. *)
  Asm.add_function prog ~name:"sum"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 0, 0));
      Asm.ins (Insn.Movz (Insn.R 1, 10, 0));
      Asm.label "loop";
      Asm.ins (Insn.Add_reg (Insn.R 0, Insn.R 0, Insn.R 1));
      Asm.ins (Insn.Sub_imm (Insn.R 1, Insn.R 1, 1));
      Asm.cbnz_to (Insn.R 1) "loop";
      Asm.ins Insn.Ret;
    ];
  let layout = load_program cpu prog in
  (match run_function cpu layout "sum" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "unexpected stop: %s" (Cpu.stop_to_string other));
  Alcotest.(check int64) "sum 1..10" 55L (Cpu.reg cpu (Insn.R 0))

let test_memory_and_frame () =
  let cpu = fresh_cpu () in
  let prog = Asm.create () in
  (* Canonical frame push/pop as in Listing 1 of the paper. *)
  Asm.add_function prog ~name:"callee"
    [
      Asm.ins (Insn.Stp (Insn.fp, Insn.lr, Insn.Pre (Insn.SP, -16)));
      Asm.ins (Insn.Mov (Insn.fp, Insn.SP));
      Asm.ins (Insn.Movz (Insn.R 0, 7, 0));
      Asm.ins (Insn.Ldp (Insn.fp, Insn.lr, Insn.Post (Insn.SP, 16)));
      Asm.ins Insn.Ret;
    ];
  Asm.add_function prog ~name:"caller"
    [
      Asm.ins (Insn.Stp (Insn.fp, Insn.lr, Insn.Pre (Insn.SP, -16)));
      Asm.ins (Insn.Mov (Insn.fp, Insn.SP));
      Asm.bl_to "callee";
      Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 1));
      Asm.ins (Insn.Ldp (Insn.fp, Insn.lr, Insn.Post (Insn.SP, 16)));
      Asm.ins Insn.Ret;
    ];
  let layout = load_program cpu prog in
  (match run_function cpu layout "caller" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "unexpected stop: %s" (Cpu.stop_to_string other));
  Alcotest.(check int64) "nested call result" 8L (Cpu.reg cpu (Insn.R 0));
  Alcotest.(check int64) "stack balanced" stack_top (Cpu.sp_of cpu El.El1)

let test_pac_aut_roundtrip () =
  let cpu = fresh_cpu () in
  let prog = Asm.create () in
  (* Sign x0 with the DB key under modifier x1, then authenticate. *)
  Asm.add_function prog ~name:"sign_auth"
    [
      Asm.ins (Insn.Pac (Sysreg.DB, Insn.R 0, Insn.R 1));
      Asm.ins (Insn.Mov (Insn.R 2, Insn.R 0));
      Asm.ins (Insn.Aut (Sysreg.DB, Insn.R 0, Insn.R 1));
      Asm.ins Insn.Ret;
    ];
  let layout = load_program cpu prog in
  let ptr = 0xffff000000300040L in
  Cpu.set_reg cpu (Insn.R 0) ptr;
  Cpu.set_reg cpu (Insn.R 1) 0x1234L;
  (match run_function cpu layout "sign_auth" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "unexpected stop: %s" (Cpu.stop_to_string other));
  Alcotest.(check int64) "auth restores pointer" ptr (Cpu.reg cpu (Insn.R 0));
  Alcotest.(check bool) "signed form differs" true (Cpu.reg cpu (Insn.R 2) <> ptr)

let test_aut_wrong_modifier_poisons () =
  let cpu = fresh_cpu () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"bad_auth"
    [
      Asm.ins (Insn.Pac (Sysreg.DB, Insn.R 0, Insn.R 1));
      Asm.ins (Insn.Aut (Sysreg.DB, Insn.R 0, Insn.R 2));
      (* dereference the poisoned pointer: must fault *)
      Asm.ins (Insn.Ldr (Insn.R 3, Insn.Off (Insn.R 0, 0)));
      Asm.ins Insn.Ret;
    ];
  let layout = load_program cpu prog in
  Cpu.set_reg cpu (Insn.R 0) 0xffff000000300040L;
  Cpu.set_reg cpu (Insn.R 1) 0x1234L;
  Cpu.set_reg cpu (Insn.R 2) 0x9999L;
  (match run_function cpu layout "bad_auth" with
  | Cpu.Fault { fault = Cpu.Mmu_fault f; _ } ->
      Alcotest.(check bool) "translation fault" true (f.Mmu.kind = Mmu.Translation);
      Alcotest.(check bool) "faulting VA is poisoned" true
        (Vaddr.is_poisoned (Cpu.kernel_cfg cpu) f.Mmu.va)
  | other -> Alcotest.failf "expected fault, got %s" (Cpu.stop_to_string other))

let test_svc_and_sysreg_protection () =
  let cpu = fresh_cpu () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"do_svc" [ Asm.ins (Insn.Svc 5) ];
  let layout = load_program cpu prog in
  (match run_function cpu layout "do_svc" with
  | Cpu.Svc 5 -> ()
  | other -> Alcotest.failf "expected svc, got %s" (Cpu.stop_to_string other));
  (* Hypervisor locks SCTLR: EL1 write must be denied. *)
  Cpu.set_sysreg_lock cpu Sysreg.is_mmu_control;
  let prog2 = Asm.create () in
  Asm.add_function prog2 ~name:"tamper"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 0, 0));
      Asm.ins (Insn.Msr (Sysreg.SCTLR_EL1, Insn.R 0));
      Asm.ins Insn.Ret;
    ];
  let base2 = Int64.add code_base 0x8000L in
  let layout2 = Asm.assemble prog2 ~base:base2 in
  Asm.encode_into layout2 ~write32:(fun va word ->
      Mem.write32 (Cpu.mem cpu) (pa_of_va va) word);
  match Cpu.call cpu (Asm.symbol layout2 "tamper") with
  | Cpu.Fault { fault = Cpu.Hyp_denied Sysreg.SCTLR_EL1; _ } -> ()
  | other -> Alcotest.failf "expected hyp denial, got %s" (Cpu.stop_to_string other)

let test_xom_enforcement () =
  let cpu = fresh_cpu () in
  let prog = Asm.create () in
  (* A function that tries to read its own code. *)
  Asm.add_function prog ~name:"read_self"
    [
      Asm.adr_of (Insn.R 1) "read_self";
      Asm.ins (Insn.Ldr (Insn.R 0, Insn.Off (Insn.R 1, 0)));
      Asm.ins Insn.Ret;
    ];
  let layout = load_program cpu prog in
  (* Stage 2: make the code frame execute-only. *)
  Mmu.stage2_protect (Cpu.mmu cpu)
    ~pa_page:(Vaddr.page_of (pa_of_va code_base))
    Mmu.xo;
  match run_function cpu layout "read_self" with
  | Cpu.Fault { fault = Cpu.Mmu_fault f; _ } ->
      Alcotest.(check bool) "stage-2 permission fault" true
        (f.Mmu.kind = Mmu.Stage2_permission)
  | other -> Alcotest.failf "expected stage-2 fault, got %s" (Cpu.stop_to_string other)

let test_pauthless_cpu () =
  (* On an ARMv8.0 part the 1716 hint forms are NOP and PAC is undefined. *)
  let cpu = Cpu.create ~has_pauth:false () in
  map_region cpu ~base:code_base ~pages:4 Mmu.rx;
  Cpu.set_el cpu El.El1;
  Cpu.set_sp_of cpu El.El1 stack_top;
  let prog = Asm.create () in
  Asm.add_function prog ~name:"hints"
    [
      Asm.ins (Insn.Pac1716 Sysreg.IB);
      Asm.ins (Insn.Aut1716 Sysreg.IB);
      Asm.ins Insn.Ret;
    ];
  Asm.add_function prog ~name:"hard_pauth"
    [ Asm.ins (Insn.Pac (Sysreg.IA, Insn.R 0, Insn.SP)); Asm.ins Insn.Ret ];
  let layout = load_program cpu prog in
  Cpu.set_reg cpu (Insn.R 17) 0x42L;
  (match run_function cpu layout "hints" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "hint forms must be NOP: %s" (Cpu.stop_to_string other));
  Alcotest.(check int64) "x17 untouched" 0x42L (Cpu.reg cpu (Insn.R 17));
  (* A PAC with keys disabled (no SCTLR bits) is a NOP even on 8.3; on a
     8.0 part we model the whole instruction as available-but-inert only
     for the hint space. The encoded Pac executes as pass-through since
     pauth_enabled is false. *)
  match run_function cpu layout "hard_pauth" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "disabled pac is inert: %s" (Cpu.stop_to_string other)

let test_cycle_accounting () =
  let cpu = fresh_cpu () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"three_alu"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
      Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 1));
      Asm.ins (Insn.Pac (Sysreg.IA, Insn.R 0, Insn.SP));
      Asm.ins Insn.Ret;
    ];
  let layout = load_program cpu prog in
  let before = Cpu.cycles cpu in
  (match run_function cpu layout "three_alu" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "unexpected stop: %s" (Cpu.stop_to_string other));
  let elapsed = Int64.to_int (Int64.sub (Cpu.cycles cpu) before) in
  let c = Cpu.cost_profile cpu in
  Alcotest.(check int) "cycles = 2 alu + pauth + branch"
    ((2 * c.Cost.alu) + c.Cost.pauth + c.Cost.branch)
    elapsed

let suite =
  [
    Alcotest.test_case "arithmetic loop" `Quick test_arith_loop;
    Alcotest.test_case "frame record push/pop (Listing 1)" `Quick test_memory_and_frame;
    Alcotest.test_case "pac/aut roundtrip" `Quick test_pac_aut_roundtrip;
    Alcotest.test_case "wrong modifier poisons pointer" `Quick
      test_aut_wrong_modifier_poisons;
    Alcotest.test_case "svc + hypervisor sysreg lock" `Quick
      test_svc_and_sysreg_protection;
    Alcotest.test_case "XOM enforced by stage 2" `Quick test_xom_enforcement;
    Alcotest.test_case "ARMv8.0 compatibility behaviour" `Quick test_pauthless_cpu;
    Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
  ]
