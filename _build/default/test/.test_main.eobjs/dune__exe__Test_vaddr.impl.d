test/test_vaddr.ml: Aarch64 Alcotest Camo_util Int64 QCheck2 QCheck_alcotest Vaddr
