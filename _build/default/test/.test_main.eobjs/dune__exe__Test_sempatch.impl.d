test/test_sempatch.ml: Alcotest List Sempatch
