test/test_fuzz.ml: Aarch64 Camouflage Int64 Kernel List QCheck2 QCheck_alcotest
