test/test_asm.ml: Aarch64 Alcotest Array Asm Cpu Env Insn Int64 String
