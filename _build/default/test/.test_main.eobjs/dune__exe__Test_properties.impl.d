test/test_properties.ml: Aarch64 Alcotest Asm Bare Camo_util Camouflage Cpu El Encode Hashtbl Insn Int64 List Pac Printf QCheck2 QCheck_alcotest Qarma Sysreg Vaddr
