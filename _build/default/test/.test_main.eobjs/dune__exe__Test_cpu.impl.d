test/test_cpu.ml: Aarch64 Alcotest Asm Cost Cpu El Env Insn Int64 Mem Mmu Sysreg Vaddr
