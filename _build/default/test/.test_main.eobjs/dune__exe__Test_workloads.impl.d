test/test_workloads.ml: Alcotest Array Camouflage Int64 List Workloads
