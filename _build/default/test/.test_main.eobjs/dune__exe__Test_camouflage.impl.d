test/test_camouflage.ml: Aarch64 Alcotest Asm Attacks Camouflage Cpu Env Insn Int64 Kernel List Mem Mmu QCheck2 QCheck_alcotest String Sysreg Vaddr
