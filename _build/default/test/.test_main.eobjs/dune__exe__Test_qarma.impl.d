test/test_qarma.ml: Alcotest Camo_util Int64 List Printf QCheck2 QCheck_alcotest Qarma
