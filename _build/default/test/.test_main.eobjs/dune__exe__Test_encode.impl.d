test/test_encode.ml: Aarch64 Alcotest Encode Insn Int32 Int64 List QCheck2 QCheck_alcotest Sysreg
