test/test_misc.ml: Aarch64 Alcotest Asm Bare Camouflage Cost Cpu El Insn Int64 Kernel List Sysreg
