test/test_mem_mmu.ml: Aarch64 Alcotest El Int64 Mem Mmu QCheck2 QCheck_alcotest
