test/test_util.ml: Alcotest Camo_util Int64 QCheck2 QCheck_alcotest
