test/test_loader.ml: Aarch64 Alcotest Asm Camouflage Insn Int64 Kelf Kernel Result
