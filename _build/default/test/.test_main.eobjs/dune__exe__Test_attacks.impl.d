test/test_attacks.ml: Alcotest Attacks Camouflage Int64 Kernel List Result String
