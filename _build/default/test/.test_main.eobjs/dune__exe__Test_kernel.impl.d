test/test_kernel.ml: Aarch64 Alcotest Asm Camouflage Cpu El Insn Int64 Kelf Kernel List Mmu Printf Result String Sysreg
