test/env.ml: Aarch64 Alcotest Asm Camo_util Cpu El Int64 List Mem Mmu Sysreg Vaddr
