test/test_xom.ml: Aarch64 Alcotest Asm Camo_util Camouflage Cpu Insn Int64 Kernel List Mmu Pac Sysreg
