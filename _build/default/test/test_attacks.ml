(* Attack-harness tests: every paper attack must succeed against the
   right unprotected build and be detected by the right protection
   (Section 6.2), under machine execution. *)

module C = Camouflage
module K = Kernel

let boot ?(config = C.Config.full) ?(threshold = 1000) () =
  K.System.boot ~config:{ config with C.Config.bruteforce_threshold = threshold } ~seed:55L ()

let test_primitives () =
  let sys = boot () in
  let cell = K.System.kernel_symbol sys "work_counter_cell" in
  (match Attacks.Primitives.kwrite sys cell 1234L with
  | Result.Ok () -> ()
  | Result.Error m -> Alcotest.failf "kwrite: %s" m);
  (match Attacks.Primitives.kread sys cell with
  | Result.Ok v -> Alcotest.(check int64) "kread" 1234L v
  | Result.Error m -> Alcotest.failf "kread: %s" m);
  match Attacks.Primitives.spray_words sys ~words:[ 0xaaL; 0xbbL ] with
  | Result.Ok addr ->
      Alcotest.(check int64) "sprayed word 0" 0xaaL
        (K.Kmem.read64 (K.System.cpu sys) addr);
      Alcotest.(check int64) "sprayed word 1" 0xbbL
        (K.Kmem.read64 (K.System.cpu sys) (Int64.add addr 8L))
  | Result.Error m -> Alcotest.failf "spray: %s" m

let test_fops_hijack_matrix () =
  let expect_hijacked config label =
    match Attacks.Fptr_hijack.run (boot ~config ()) with
    | Attacks.Fptr_hijack.Hijacked _ -> ()
    | other -> Alcotest.failf "%s: %s" label (Attacks.Fptr_hijack.outcome_to_string other)
  in
  let expect_detected config label =
    match Attacks.Fptr_hijack.run (boot ~config ()) with
    | Attacks.Fptr_hijack.Detected -> ()
    | other -> Alcotest.failf "%s: %s" label (Attacks.Fptr_hijack.outcome_to_string other)
  in
  expect_hijacked C.Config.none "none";
  expect_hijacked C.Config.backward_only "backward-only";
  expect_detected C.Config.full "full";
  expect_detected C.Config.compat "compat"

let test_rop_matrix () =
  (match Attacks.Rop.run (boot ~config:C.Config.none ()) with
  | Attacks.Rop.Diverted _ -> ()
  | other -> Alcotest.failf "none: %s" (Attacks.Rop.outcome_to_string other));
  List.iter
    (fun (label, config) ->
      match Attacks.Rop.run (boot ~config ()) with
      | Attacks.Rop.Detected -> ()
      | other -> Alcotest.failf "%s: %s" label (Attacks.Rop.outcome_to_string other))
    [
      ("sp-only", { C.Config.backward_only with scheme = C.Modifier.Sp_only });
      ("parts", { C.Config.backward_only with scheme = C.Modifier.Parts 9L });
      ("camouflage", C.Config.full);
      ("compat", C.Config.compat);
    ]

let test_replay_matrix () =
  let run config =
    Attacks.Replay.cross_task_switch_frame (boot ~config ())
  in
  (match run { C.Config.full with scheme = C.Modifier.Parts 9L } with
  | Attacks.Replay.Accepted _ -> ()
  | other -> Alcotest.failf "parts: %s" (Attacks.Replay.outcome_to_string other));
  (match run C.Config.full with
  | Attacks.Replay.Rejected -> ()
  | other -> Alcotest.failf "camouflage: %s" (Attacks.Replay.outcome_to_string other));
  match run { C.Config.full with scheme = C.Modifier.Sp_only } with
  | Attacks.Replay.Rejected -> ()
  | other -> Alcotest.failf "sp-only: %s" (Attacks.Replay.outcome_to_string other)

let test_collision_ordering () =
  let samples = 50_000 in
  let f scheme = Attacks.Replay.collision_fraction scheme ~samples ~seed:7L in
  let sp = f C.Modifier.Sp_only in
  let parts = f (C.Modifier.Parts 1L) in
  let camo = f C.Modifier.Camouflage in
  Alcotest.(check bool) "parts collides most" true (parts > sp);
  Alcotest.(check bool) "camouflage collides least" true (camo <= sp);
  Alcotest.(check (float 1e-9)) "camouflage: none observed" 0.0 camo

let test_bruteforce_bounded () =
  let sys = boot ~threshold:5 () in
  let report = Attacks.Bruteforce_attack.run sys ~attempts:50 ~seed:1L in
  Alcotest.(check bool) "stopped by panic" true report.Attacks.Bruteforce_attack.panicked;
  Alcotest.(check int) "bounded attempts" 5 report.Attacks.Bruteforce_attack.detected;
  Alcotest.(check int) "no successes" 0 report.Attacks.Bruteforce_attack.successes

let test_bruteforce_unprotected_kernel () =
  (* Without PAuth the extension bits are meaningful address bits:
     scribbling them just breaks the pointer outright, producing plain
     oopses — crucially these do NOT count toward the PAC-failure
     threshold, so no panic escalation happens. *)
  let sys = boot ~config:C.Config.none ~threshold:3 () in
  let report = Attacks.Bruteforce_attack.run sys ~attempts:5 ~seed:1L in
  Alcotest.(check int) "forgeries corrupt, never authenticate" 0
    report.Attacks.Bruteforce_attack.successes;
  Alcotest.(check bool) "oopses do not trip the PAC threshold" false
    report.Attacks.Bruteforce_attack.panicked;
  Alcotest.(check int) "no PAC failures recorded" 0
    (C.Bruteforce.failures (K.System.bruteforce sys))

let test_failures_logged () =
  (* Section 6.2.3: all failures are logged so vulnerable paths can be
     found. *)
  let sys = boot ~threshold:3 () in
  let _ = Attacks.Bruteforce_attack.run sys ~attempts:10 ~seed:2L in
  let log = K.System.log sys in
  let pac_lines =
    List.filter
      (fun l -> String.length l >= 3 && String.sub l 0 3 = "PAC")
      log
  in
  Alcotest.(check int) "every failure logged" 3 (List.length pac_lines);
  Alcotest.(check bool) "panic logged" true
    (List.exists
       (fun l ->
         String.length l >= 12 && String.sub l 0 12 = "kernel panic")
       log)

let suite =
  [
    Alcotest.test_case "attacker primitives (read/write/spray)" `Quick test_primitives;
    Alcotest.test_case "f_ops hijack across builds" `Slow test_fops_hijack_matrix;
    Alcotest.test_case "kernel ROP across builds" `Slow test_rop_matrix;
    Alcotest.test_case "cross-task replay across schemes" `Slow test_replay_matrix;
    Alcotest.test_case "collision-rate ordering" `Quick test_collision_ordering;
    Alcotest.test_case "brute force bounded by threshold" `Quick test_bruteforce_bounded;
    Alcotest.test_case "harness sanity on unprotected kernel" `Quick
      test_bruteforce_unprotected_kernel;
    Alcotest.test_case "PAC failures are logged (oracle defense)" `Quick
      test_failures_logged;
  ]

let test_cred_hijack_matrix () =
  let run config variant = Attacks.Cred_hijack.run (boot ~config ()) variant in
  (match run C.Config.none Attacks.Cred_hijack.Raw with
  | Attacks.Cred_hijack.Escalated { uid } -> Alcotest.(check int64) "root" 0L uid
  | other -> Alcotest.failf "none/raw: %s" (Attacks.Cred_hijack.outcome_to_string other));
  (match run C.Config.full Attacks.Cred_hijack.Raw with
  | Attacks.Cred_hijack.Detected -> ()
  | other -> Alcotest.failf "full/raw: %s" (Attacks.Cred_hijack.outcome_to_string other));
  (* the replayed variant plants a LEGITIMATELY signed pointer: only the
     address-bound modifier stops it *)
  match run C.Config.full Attacks.Cred_hijack.Replayed with
  | Attacks.Cred_hijack.Detected -> ()
  | other -> Alcotest.failf "full/replay: %s" (Attacks.Cred_hijack.outcome_to_string other)

let test_getuid_baseline () =
  let sys = boot () in
  match K.System.syscall sys ~nr:K.Kbuild.sys_getuid ~args:[] with
  | K.System.Ok v -> Alcotest.(check int64) "init is root" 0L v
  | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "getuid: %s" m

let suite =
  suite
  @ [
      Alcotest.test_case "getuid via signed cred pointer" `Quick test_getuid_baseline;
      Alcotest.test_case "cred hijack: raw + replayed variants" `Slow
        test_cred_hijack_matrix;
    ]

let test_context_tamper_matrix () =
  (* register-spill attack (Section 8): saved-PC rewrite of a preempted
     task diverts control without the X7 MAC, is detected with it *)
  (match Attacks.Context_tamper.run (boot ()) ~protect:false with
  | Attacks.Context_tamper.Diverted { exit_code } ->
      Alcotest.(check int64) "landed in evil" 0x666L exit_code
  | other ->
      Alcotest.failf "unprotected: %s" (Attacks.Context_tamper.outcome_to_string other));
  match Attacks.Context_tamper.run (boot ()) ~protect:true with
  | Attacks.Context_tamper.Detected -> ()
  | other ->
      Alcotest.failf "protected: %s" (Attacks.Context_tamper.outcome_to_string other)

let suite =
  suite
  @ [
      Alcotest.test_case "context tamper: divert vs X7 detection" `Quick
        test_context_tamper_matrix;
    ]

let test_oracle_sweep () =
  let verdicts = Attacks.Oracle.sweep () in
  Alcotest.(check int) "eight surfaces" 8 (List.length verdicts);
  List.iter
    (fun v ->
      Alcotest.(check bool) (v.Attacks.Oracle.surface ^ " fatal") true
        v.Attacks.Oracle.fatal;
      Alcotest.(check bool) (v.Attacks.Oracle.surface ^ " logged") true
        v.Attacks.Oracle.logged)
    verdicts;
  Alcotest.(check bool) "no oracle" true (Attacks.Oracle.all_closed verdicts)

let suite =
  suite
  @ [ Alcotest.test_case "oracle sweep: every surface fails closed" `Slow test_oracle_sweep ]
