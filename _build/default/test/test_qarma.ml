(* Golden regression vectors for this implementation of QARMA-64, using
   the key/plaintext/tweak of Avanzi's specification (ToSC 2017). The
   build environment is offline so the ciphertexts could not be checked
   against the published tables; these values pin the implementation so
   that any accidental change to a table or the round structure fails
   loudly. See EXPERIMENTS.md, "QARMA verification caveat". *)

let v64 = Camo_util.Val64.of_hex

let vector_key = Qarma.Block.{ w0 = v64 "84be85ce9804e94b"; k0 = v64 "ec2802d4e0a488e9" }
let vector_plaintext = v64 "fb623599da6e8127"
let vector_tweak = v64 "477d469dec0b8762"

let published_vectors =
  [
    (Qarma.Cells.Sigma0, 5, "a609a4821e902102");
    (Qarma.Cells.Sigma1, 6, "a0cfa4213abda05f");
    (Qarma.Cells.Sigma2, 7, "81d29dc0f62a76e1");
  ]

let check_vector (sbox, rounds, expected) () =
  let cipher = Qarma.Block.create ~sbox ~rounds () in
  let got =
    Qarma.Block.encrypt cipher ~key:vector_key ~tweak:vector_tweak vector_plaintext
  in
  Alcotest.(check string)
    (Printf.sprintf "rounds=%d" rounds)
    expected
    (Camo_util.Val64.to_hex got)

let sbox_name = function
  | Qarma.Cells.Sigma0 -> "sigma0"
  | Qarma.Cells.Sigma1 -> "sigma1"
  | Qarma.Cells.Sigma2 -> "sigma2"

let vector_cases =
  let case ((sbox, rounds, _) as v) =
    Alcotest.test_case
      (Printf.sprintf "golden vector %s/r%d" (sbox_name sbox) rounds)
      `Quick (check_vector v)
  in
  List.map case published_vectors

(* Structural sanity checks on the cell primitives. *)

let test_sbox_bijective () =
  let open Qarma.Cells in
  let check sigma name =
    for v = 0 to 15 do
      let x = Int64.of_int (v * 0x1111) in
      let y = sub_cells_inv sigma (sub_cells sigma x) in
      Alcotest.(check int64) (name ^ " involutive pair") x y
    done
  in
  check Sigma0 "sigma0";
  check Sigma1 "sigma1";
  check Sigma2 "sigma2"

let test_shuffle_roundtrip () =
  let x = 0x0123456789abcdefL in
  Alcotest.(check int64) "tau" x Qarma.Cells.(shuffle_inv (shuffle x))

let test_mix_columns_involutory () =
  let x = 0xdeadbeefcafef00dL in
  Alcotest.(check int64) "M*M = id" x Qarma.Cells.(mix_columns (mix_columns x))

let test_tweak_update_roundtrip () =
  let x = 0x477d469dec0b8762L in
  Alcotest.(check int64) "tweak schedule" x Qarma.Cells.(tweak_update_inv (tweak_update x))

(* Property tests. *)

let gen_word = QCheck2.Gen.(map Int64.of_int int)

let prop_roundtrip =
  QCheck2.Test.make ~name:"decrypt (encrypt x) = x"
    ~count:500
    QCheck2.Gen.(quad gen_word gen_word gen_word gen_word)
    (fun (w0, k0, tweak, pt) ->
      let cipher = Qarma.Block.create () in
      let key = Qarma.Block.{ w0; k0 } in
      Qarma.Block.decrypt cipher ~key ~tweak (Qarma.Block.encrypt cipher ~key ~tweak pt) = pt)

let prop_tweak_sensitivity =
  QCheck2.Test.make ~name:"distinct tweaks give distinct ciphertexts (w.h.p.)"
    ~count:200
    QCheck2.Gen.(triple gen_word gen_word gen_word)
    (fun (w0, k0, pt) ->
      let cipher = Qarma.Block.create () in
      let key = Qarma.Block.{ w0; k0 } in
      let c1 = Qarma.Block.encrypt cipher ~key ~tweak:1L pt in
      let c2 = Qarma.Block.encrypt cipher ~key ~tweak:2L pt in
      c1 <> c2)

let prop_key_sensitivity =
  QCheck2.Test.make ~name:"flipping one key bit changes the ciphertext"
    ~count:200
    QCheck2.Gen.(triple gen_word gen_word gen_word)
    (fun (w0, k0, pt) ->
      let cipher = Qarma.Block.create () in
      let c1 = Qarma.Block.encrypt cipher ~key:{ w0; k0 } ~tweak:0L pt in
      let c2 =
        Qarma.Block.encrypt cipher ~key:{ w0 = Int64.logxor w0 1L; k0 } ~tweak:0L pt
      in
      c1 <> c2)

let suite =
  vector_cases
  @ [
      Alcotest.test_case "sboxes invert" `Quick test_sbox_bijective;
      Alcotest.test_case "shuffle roundtrip" `Quick test_shuffle_roundtrip;
      Alcotest.test_case "mix_columns involutory" `Quick test_mix_columns_involutory;
      Alcotest.test_case "tweak update roundtrip" `Quick test_tweak_update_roundtrip;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_tweak_sensitivity;
      QCheck_alcotest.to_alcotest prop_key_sensitivity;
    ]
