(* Memory and two-stage MMU tests: endianness, frame-boundary accesses,
   permission composition, and the XOM property of Appendix A.2. *)

open Aarch64

let test_mem_endianness () =
  let m = Mem.create () in
  Mem.write64 m 0x1000L 0x0102030405060708L;
  Alcotest.(check int) "LSB first" 8 (Mem.read8 m 0x1000L);
  Alcotest.(check int) "MSB last" 1 (Mem.read8 m 0x1007L);
  Alcotest.(check int32) "low word" 0x05060708l (Mem.read32 m 0x1000L)

let test_mem_frame_boundary () =
  let m = Mem.create () in
  (* a 64-bit store straddling the 4 KiB frame boundary *)
  Mem.write64 m 0x1ffcL 0x1122334455667788L;
  Alcotest.(check int64) "read back across boundary" 0x1122334455667788L
    (Mem.read64 m 0x1ffcL);
  Alcotest.(check int) "byte in first frame" 0x88 (Mem.read8 m 0x1ffcL);
  Alcotest.(check int) "byte in second frame" 0x11 (Mem.read8 m 0x2003L);
  let w = Mem.read32 m 0x1ffeL in
  Alcotest.(check int32) "32-bit across boundary" 0x33445566l w

let test_mem_strings () =
  let m = Mem.create () in
  Mem.blit_string m 0x500L "camouflage";
  Alcotest.(check string) "string roundtrip" "camouflage" (Mem.read_string m 0x500L 10)

let test_mem_sparse () =
  let m = Mem.create () in
  Alcotest.(check int) "empty" 0 (Mem.frames_allocated m);
  Alcotest.(check int) "read allocates lazily" 0 (Mem.read8 m 0xdead000L);
  ignore (Mem.frames_allocated m);
  Mem.write8 m 0x0L 1;
  Mem.write8 m 0x100000L 1;
  Alcotest.(check bool) "two+ distinct frames" true (Mem.frames_allocated m >= 2)

let test_stage1_permissions () =
  let mmu = Mmu.create () in
  Mmu.map mmu ~va_page:0x10L ~pa_page:0x99L ~el0:Mmu.no_access ~el1:Mmu.rw;
  (* EL1 read and write pass and translate *)
  (match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Read 0x10040L with
  | Ok pa -> Alcotest.(check int64) "translated" 0x99040L pa
  | Error f -> Alcotest.failf "unexpected fault %s" (Mmu.fault_to_string f));
  (* EL0 is denied with a stage-1 permission fault *)
  (match Mmu.translate mmu ~el:El.El0 ~access:Mmu.Read 0x10040L with
  | Ok _ -> Alcotest.fail "el0 read allowed"
  | Error f -> Alcotest.(check bool) "el0 perm fault" true (f.Mmu.kind = Mmu.Permission));
  (* unmapped is a translation fault *)
  match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Read 0x999000L with
  | Ok _ -> Alcotest.fail "unmapped translated"
  | Error f -> Alcotest.(check bool) "translation fault" true (f.Mmu.kind = Mmu.Translation)

let test_el1_implicit_read () =
  (* VMSAv8: any EL1 mapping is implicitly readable — the reason kernel
     XOM needs stage 2 (Appendix A.2). *)
  let mmu = Mmu.create () in
  Mmu.map mmu ~va_page:0x20L ~pa_page:0x20L ~el0:Mmu.no_access ~el1:Mmu.xo;
  match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Read 0x20000L with
  | Ok _ -> ()
  | Error f ->
      Alcotest.failf "stage-1 xo should still read at EL1: %s" (Mmu.fault_to_string f)

let test_stage2_composition () =
  let mmu = Mmu.create () in
  Mmu.map mmu ~va_page:0x30L ~pa_page:0x40L ~el0:Mmu.rwx ~el1:Mmu.rwx;
  Mmu.stage2_protect mmu ~pa_page:0x40L Mmu.xo;
  (* execution allowed, read/write denied by stage 2 for both ELs *)
  (match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Exec 0x30000L with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "exec blocked: %s" (Mmu.fault_to_string f));
  (match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Read 0x30000L with
  | Ok _ -> Alcotest.fail "stage2 read allowed"
  | Error f ->
      Alcotest.(check bool) "stage-2 fault" true (f.Mmu.kind = Mmu.Stage2_permission));
  match Mmu.translate mmu ~el:El.El0 ~access:Mmu.Write 0x30000L with
  | Ok _ -> Alcotest.fail "stage2 write allowed"
  | Error f ->
      Alcotest.(check bool) "stage-2 fault el0" true (f.Mmu.kind = Mmu.Stage2_permission)

let test_stage2_default_open () =
  let mmu = Mmu.create () in
  Mmu.map mmu ~va_page:0x50L ~pa_page:0x50L ~el0:Mmu.no_access ~el1:Mmu.rw;
  match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Write 0x50008L with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "no stage-2 entry should be open: %s" (Mmu.fault_to_string f)

let test_remap_and_unmap () =
  let mmu = Mmu.create () in
  Mmu.map mmu ~va_page:0x60L ~pa_page:0x61L ~el0:Mmu.no_access ~el1:Mmu.rw;
  Mmu.map mmu ~va_page:0x60L ~pa_page:0x62L ~el0:Mmu.no_access ~el1:Mmu.ro;
  (match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Read 0x60000L with
  | Ok pa -> Alcotest.(check int64) "remapped" 0x62000L pa
  | Error f -> Alcotest.failf "fault %s" (Mmu.fault_to_string f));
  (match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Write 0x60000L with
  | Ok _ -> Alcotest.fail "write after ro remap"
  | Error _ -> ());
  Mmu.unmap mmu ~va_page:0x60L;
  match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Read 0x60000L with
  | Ok _ -> Alcotest.fail "translated after unmap"
  | Error f -> Alcotest.(check bool) "translation fault" true (f.Mmu.kind = Mmu.Translation)

let gen_addr = QCheck2.Gen.(map (fun x -> Int64.of_int (abs x)) int)

let prop_mem_write_read =
  QCheck2.Test.make ~name:"write64 then read64 round-trips at any address" ~count:300
    QCheck2.Gen.(pair gen_addr (map Int64.of_int int))
    (fun (addr, v) ->
      let m = Mem.create () in
      Mem.write64 m addr v;
      Mem.read64 m addr = v)

let prop_translate_offset_preserved =
  QCheck2.Test.make ~name:"translation preserves the page offset" ~count:300
    QCheck2.Gen.(pair (int_range 0 4095) (int_range 1 1000))
    (fun (off, page) ->
      let mmu = Mmu.create () in
      let va_page = Int64.of_int page and pa_page = Int64.of_int (page + 7) in
      Mmu.map mmu ~va_page ~pa_page ~el0:Mmu.no_access ~el1:Mmu.rw;
      let va = Int64.add (Int64.shift_left va_page 12) (Int64.of_int off) in
      match Mmu.translate mmu ~el:El.El1 ~access:Mmu.Read va with
      | Ok pa -> Int64.logand pa 0xfffL = Int64.of_int off
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "little-endian layout" `Quick test_mem_endianness;
    Alcotest.test_case "frame-boundary access" `Quick test_mem_frame_boundary;
    Alcotest.test_case "string blit/read" `Quick test_mem_strings;
    Alcotest.test_case "sparse allocation" `Quick test_mem_sparse;
    Alcotest.test_case "stage-1 permissions" `Quick test_stage1_permissions;
    Alcotest.test_case "EL1 implicit readability" `Quick test_el1_implicit_read;
    Alcotest.test_case "stage-2 composition (XOM)" `Quick test_stage2_composition;
    Alcotest.test_case "stage-2 default open" `Quick test_stage2_default_open;
    Alcotest.test_case "remap and unmap" `Quick test_remap_and_unmap;
    QCheck_alcotest.to_alcotest prop_mem_write_read;
    QCheck_alcotest.to_alcotest prop_translate_offset_preserved;
  ]
