(* Deep property tests: a random generator over the whole instruction
   AST drives encode/decode round-trips, and random straight-line bodies
   drive an instrumentation-invariance property (every scheme computes
   the same result and leaves the stack balanced). *)

open Aarch64
module C = Camouflage

let pc = 0xffff000000180000L

(* Generator over registers (weighted toward ordinary Xn). *)
let gen_reg =
  QCheck2.Gen.(
    frequency
      [
        (8, map (fun n -> Insn.R n) (int_range 0 30));
        (1, return Insn.SP);
        (1, return Insn.XZR);
      ])

let gen_key = QCheck2.Gen.oneofl Sysreg.[ IA; IB; DA; DB; GA ]
let gen_cond = QCheck2.Gen.oneofl Insn.[ Eq; Ne; Lt; Ge; Gt; Le ]
let gen_sysreg = QCheck2.Gen.oneofl Sysreg.all

(* Word-aligned target within ADR/branch range of [pc]. *)
let gen_near_target =
  QCheck2.Gen.(map (fun w -> Int64.add pc (Int64.of_int (4 * w))) (int_range (-60000) 60000))

let gen_amode =
  QCheck2.Gen.(
    let open Insn in
    oneof
      [
        map2 (fun r off -> Off (r, off)) gen_reg (int_range (-2048) 2047);
        map2 (fun r off -> Pre (r, off)) gen_reg (int_range (-2048) 2047);
        map2 (fun r off -> Post (r, off)) gen_reg (int_range (-2048) 2047);
      ])

let gen_amode_pair =
  QCheck2.Gen.(
    let open Insn in
    let off = map (fun v -> v * 8) (int_range (-32) 31) in
    oneof
      [
        map2 (fun r o -> Off (r, o)) gen_reg off;
        map2 (fun r o -> Pre (r, o)) gen_reg off;
        map2 (fun r o -> Post (r, o)) gen_reg off;
      ])

let gen_insn =
  QCheck2.Gen.(
    let open Insn in
    let imm16 = int_range 0 0xffff in
    let shift16 = map (fun s -> 16 * s) (int_range 0 3) in
    let imm13 = int_range (-4096) 4095 in
    let sh6 = int_range 0 63 in
    let bf = map2 (fun lsb w -> (lsb, max 1 (min w (64 - lsb)))) (int_range 0 56) (int_range 1 64) in
    oneof
      [
        return Nop;
        return Ret;
        return Eret;
        return Isb;
        map3 (fun r v s -> Movz (r, v, s)) gen_reg imm16 shift16;
        map3 (fun r v s -> Movk (r, v, s)) gen_reg imm16 shift16;
        map2 (fun a b -> Mov (a, b)) gen_reg gen_reg;
        map3 (fun a b v -> Add_imm (a, b, v)) gen_reg gen_reg imm13;
        map3 (fun a b v -> Sub_imm (a, b, v)) gen_reg gen_reg imm13;
        map3 (fun a b c -> Add_reg (a, b, c)) gen_reg gen_reg gen_reg;
        map3 (fun a b c -> Sub_reg (a, b, c)) gen_reg gen_reg gen_reg;
        map3 (fun a b c -> Subs_reg (a, b, c)) gen_reg gen_reg gen_reg;
        map3 (fun a b v -> Subs_imm (a, b, v)) gen_reg gen_reg imm13;
        map3 (fun a b c -> And_reg (a, b, c)) gen_reg gen_reg gen_reg;
        map3 (fun a b c -> Orr_reg (a, b, c)) gen_reg gen_reg gen_reg;
        map3 (fun a b c -> Eor_reg (a, b, c)) gen_reg gen_reg gen_reg;
        map3 (fun a b s -> Lsl_imm (a, b, s)) gen_reg gen_reg sh6;
        map3 (fun a b s -> Lsr_imm (a, b, s)) gen_reg gen_reg sh6;
        map3 (fun a b (lsb, w) -> Bfi (a, b, lsb, w)) gen_reg gen_reg bf;
        map3 (fun a b (lsb, w) -> Ubfx (a, b, lsb, w)) gen_reg gen_reg bf;
        map2 (fun r t -> Adr (r, t)) gen_reg gen_near_target;
        map2 (fun r m -> Ldr (r, m)) gen_reg gen_amode;
        map2 (fun r m -> Str (r, m)) gen_reg gen_amode;
        map2 (fun r m -> Ldrb (r, m)) gen_reg gen_amode;
        map2 (fun r m -> Strb (r, m)) gen_reg gen_amode;
        map3 (fun a b m -> Ldp (a, b, m)) gen_reg gen_reg gen_amode_pair;
        map3 (fun a b m -> Stp (a, b, m)) gen_reg gen_reg gen_amode_pair;
        map (fun t -> B t) gen_near_target;
        map (fun t -> Bl t) gen_near_target;
        map (fun r -> Br r) gen_reg;
        map (fun r -> Blr r) gen_reg;
        map2 (fun r t -> Cbz (r, t)) gen_reg gen_near_target;
        map2 (fun r t -> Cbnz (r, t)) gen_reg gen_near_target;
        map2 (fun c t -> Bcond (c, t)) gen_cond gen_near_target;
        map3 (fun k a b -> Pac (k, a, b)) gen_key gen_reg gen_reg;
        map3 (fun k a b -> Aut (k, a, b)) gen_key gen_reg gen_reg;
        map (fun k -> Pac1716 k) gen_key;
        map (fun k -> Aut1716 k) gen_key;
        map (fun r -> Xpac r) gen_reg;
        map3 (fun a b c -> Pacga (a, b, c)) gen_reg gen_reg gen_reg;
        map3 (fun k a b -> Blra (k, a, b)) gen_key gen_reg gen_reg;
        map3 (fun k a b -> Bra (k, a, b)) gen_key gen_reg gen_reg;
        map (fun k -> Reta k) gen_key;
        map2 (fun r sr -> Mrs (r, sr)) gen_reg gen_sysreg;
        map2 (fun r sr -> Msr (sr, r)) gen_reg gen_sysreg;
        map (fun v -> Svc v) imm16;
        map (fun v -> Brk v) imm16;
        map (fun v -> Hlt v) imm16;
      ])

let prop_encode_roundtrip_all_forms =
  QCheck2.Test.make ~name:"encode/decode round-trips the whole AST" ~count:5000
    ~print:Insn.to_string gen_insn (fun insn ->
      match Encode.decode ~pc (Encode.encode ~pc insn) with
      | Some insn' -> insn' = insn
      | None -> false)

let prop_encoding_injective =
  QCheck2.Test.make ~name:"distinct instructions encode to distinct words" ~count:2000
    QCheck2.Gen.(pair gen_insn gen_insn)
    (fun (a, b) ->
      let wa = Encode.encode ~pc a and wb = Encode.encode ~pc b in
      if a = b then wa = wb else wa <> wb)

(* Random straight-line compute bodies: only ALU ops on x0..x7, so the
   result is a pure function of the inputs. Instrumenting the function
   with ANY backward-edge scheme must not change the result, and must
   leave SP balanced. *)
let gen_alu_insn =
  QCheck2.Gen.(
    let open Insn in
    let reg8 = map (fun n -> R n) (int_range 0 7) in
    let imm = int_range 0 4095 in
    oneof
      [
        map3 (fun a b v -> Add_imm (a, b, v)) reg8 reg8 imm;
        map3 (fun a b v -> Sub_imm (a, b, v)) reg8 reg8 imm;
        map3 (fun a b c -> Add_reg (a, b, c)) reg8 reg8 reg8;
        map3 (fun a b c -> Sub_reg (a, b, c)) reg8 reg8 reg8;
        map3 (fun a b c -> Eor_reg (a, b, c)) reg8 reg8 reg8;
        map3 (fun a b c -> And_reg (a, b, c)) reg8 reg8 reg8;
        map3 (fun a b c -> Orr_reg (a, b, c)) reg8 reg8 reg8;
        map3 (fun a b s -> Lsl_imm (a, b, s)) reg8 reg8 (int_range 0 13);
        map3 (fun a b s -> Lsr_imm (a, b, s)) reg8 reg8 (int_range 0 13);
        map2 (fun a v -> Movz (a, v, 0)) reg8 imm;
      ])

let gen_body = QCheck2.Gen.(list_size (int_range 1 30) gen_alu_insn)

let run_body config body =
  let cpu = Bare.machine () in
  let prog = Asm.create () in
  let f = C.Instrument.wrap config ~name:"f" (List.map Asm.ins body) in
  Asm.add_function prog ~name:"f" f.C.Instrument.items;
  let layout = Bare.load cpu prog in
  for idx = 0 to 7 do
    Cpu.set_reg cpu (Insn.R idx) (Int64.of_int ((idx * 7919) + 13))
  done;
  match Bare.call cpu layout "f" with
  | Cpu.Sentinel_return -> Some (Cpu.reg cpu (Insn.R 0), Cpu.sp_of cpu El.El1)
  | _ -> None

let instrument_configs =
  [
    C.Config.none;
    { C.Config.backward_only with scheme = C.Modifier.Sp_only };
    { C.Config.backward_only with scheme = C.Modifier.Parts 0xfeedL };
    C.Config.backward_only;
    C.Config.compat;
    { C.Config.backward_only with scheme = C.Modifier.Chained };
  ]

let prop_instrumentation_transparent =
  QCheck2.Test.make ~name:"instrumentation preserves results and stack balance"
    ~count:100 gen_body (fun body ->
      match run_body C.Config.none body with
      | None -> false
      | Some (expected, sp) ->
          sp = Bare.stack_top
          && List.for_all
               (fun config ->
                 match run_body config body with
                 | Some (result, sp') -> result = expected && sp' = Bare.stack_top
                 | None -> false)
               instrument_configs)

(* PAC distribution: over many random pointers/modifiers the PAC values
   should hit a large fraction of the 15-bit space (no degenerate
   truncation). *)
let test_pac_spread () =
  let cipher = Qarma.Block.create () in
  let key = Pac.{ hi = 0xfeedfacecafebeefL; lo = 0x0123456789abcdefL } in
  let cfg = Vaddr.linux_kernel in
  let rng = Camo_util.Rng.create 31L in
  let seen = Hashtbl.create 4096 in
  let samples = 20_000 in
  for _ = 1 to samples do
    let ptr =
      Int64.logor 0xffff000000000000L (Int64.logand (Camo_util.Rng.next rng) 0xffffffffL)
    in
    let signed = Pac.compute ~cipher ~key ~cfg ~modifier:(Camo_util.Rng.next rng) ptr in
    Hashtbl.replace seen (Vaddr.extract_pac cfg signed) ()
  done;
  let distinct = Hashtbl.length seen in
  (* coupon-collector: 20k draws over 32768 bins should fill > 40% *)
  Alcotest.(check bool)
    (Printf.sprintf "PAC spread (%d distinct)" distinct)
    true (distinct > 13_000)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_encode_roundtrip_all_forms;
    QCheck_alcotest.to_alcotest prop_encoding_injective;
    QCheck_alcotest.to_alcotest prop_instrumentation_transparent;
    Alcotest.test_case "PAC value spread" `Quick test_pac_spread;
  ]
