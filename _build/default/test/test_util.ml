(* Unit and property tests for the utility layer: 64-bit bit field
   operations (which everything else leans on), the PRNG, statistics. *)

module Val64 = Camo_util.Val64
module Rng = Camo_util.Rng
module Stats = Camo_util.Stats

let test_mask () =
  Alcotest.(check int64) "mask 0" 0L (Val64.mask 0);
  Alcotest.(check int64) "mask 1" 1L (Val64.mask 1);
  Alcotest.(check int64) "mask 16" 0xffffL (Val64.mask 16);
  Alcotest.(check int64) "mask 63" Int64.max_int (Val64.mask 63);
  Alcotest.(check int64) "mask 64" (-1L) (Val64.mask 64);
  Alcotest.check_raises "mask 65" (Invalid_argument "Val64.mask") (fun () ->
      ignore (Val64.mask 65))

let test_extract_insert () =
  let x = 0x123456789abcdef0L in
  Alcotest.(check int64) "extract low nibble" 0L (Val64.extract ~lo:0 ~width:4 x);
  Alcotest.(check int64) "extract byte 1" 0xdeL (Val64.extract ~lo:8 ~width:8 x);
  Alcotest.(check int64) "extract top byte" 0x12L (Val64.extract ~lo:56 ~width:8 x);
  Alcotest.(check int64) "extract all" x (Val64.extract ~lo:0 ~width:64 x);
  let y = Val64.insert ~lo:16 ~width:16 ~field:0xbeefL x in
  Alcotest.(check int64) "insert reads back" 0xbeefL (Val64.extract ~lo:16 ~width:16 y);
  Alcotest.(check int64) "insert preserves below" (Val64.extract ~lo:0 ~width:16 x)
    (Val64.extract ~lo:0 ~width:16 y);
  Alcotest.(check int64) "insert preserves above" (Val64.extract ~lo:32 ~width:32 x)
    (Val64.extract ~lo:32 ~width:32 y)

let test_bits () =
  Alcotest.(check bool) "bit 0 of 1" true (Val64.bit 0 1L);
  Alcotest.(check bool) "bit 63 of min_int" true (Val64.bit 63 Int64.min_int);
  Alcotest.(check bool) "bit 62 of min_int" false (Val64.bit 62 Int64.min_int);
  Alcotest.(check int64) "set bit 5" 32L (Val64.set_bit 5 true 0L);
  Alcotest.(check int64) "clear bit 5" 0L (Val64.set_bit 5 false 32L)

let test_ror () =
  Alcotest.(check int64) "ror 0" 0x8000000000000001L (Val64.ror 0x8000000000000001L 0);
  Alcotest.(check int64) "ror 1" 0xC000000000000000L (Val64.ror 0x8000000000000001L 1);
  Alcotest.(check int64) "ror 64 = id" 42L (Val64.ror 42L 64)

let test_sign_extend () =
  Alcotest.(check int64) "positive" 0x7fL (Val64.sign_extend ~from:8 0x7fL);
  Alcotest.(check int64) "negative" (-1L) (Val64.sign_extend ~from:8 0xffL);
  Alcotest.(check int64) "truncates above" 0x70L (Val64.sign_extend ~from:8 0x1234567870L)

let test_hex () =
  Alcotest.(check string) "to_hex" "00000000deadbeef" (Val64.to_hex 0xdeadbeefL);
  Alcotest.(check int64) "of_hex" 0xdeadbeefL (Val64.of_hex "deadbeef");
  Alcotest.(check int64) "of_hex 0x prefix" 0xdeadbeefL (Val64.of_hex "0xdeadbeef");
  Alcotest.check_raises "of_hex empty" (Invalid_argument "Val64.of_hex") (fun () ->
      ignore (Val64.of_hex ""))

let test_popcount () =
  Alcotest.(check int) "popcount 0" 0 (Val64.popcount 0L);
  Alcotest.(check int) "popcount -1" 64 (Val64.popcount (-1L));
  Alcotest.(check int) "popcount 0xf0f0" 8 (Val64.popcount 0xf0f0L)

let test_nibbles () =
  let x = 0x0123456789abcdefL in
  Alcotest.(check int) "nibble 0 is MSB" 0 (Val64.nibble 0 x);
  Alcotest.(check int) "nibble 15 is LSB" 0xf (Val64.nibble 15 x);
  Alcotest.(check int) "nibble 1" 1 (Val64.nibble 1 x);
  Alcotest.(check int64) "set_nibble" 0xa123456789abcdefL (Val64.set_nibble 0 0xa x)

let test_rng_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create 8L in
  Alcotest.(check bool) "different seed different value" true (Rng.next a <> Rng.next c)

let test_rng_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.next_in rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.next_in") (fun () ->
      ignore (Rng.next_in rng 0))

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0.0 (Stats.stddev [ 5.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "overhead" 50.0 (Stats.percent_overhead ~baseline:2.0 3.0);
  Alcotest.(check (float 1e-9)) "relative" 1.5 (Stats.relative ~baseline:2.0 3.0);
  Alcotest.check_raises "geomean rejects 0"
    (Invalid_argument "Stats.geomean: non-positive") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let gen_word = QCheck2.Gen.(map Int64.of_int int)

let prop_insert_extract =
  QCheck2.Test.make ~name:"insert then extract round-trips" ~count:500
    QCheck2.Gen.(triple gen_word gen_word (int_range 0 63))
    (fun (x, field, lo) ->
      let width = min 16 (64 - lo) in
      if width = 0 then true
      else
        Val64.extract ~lo ~width (Val64.insert ~lo ~width ~field x)
        = Int64.logand field (Val64.mask width))

let prop_ror_composes =
  QCheck2.Test.make ~name:"ror a (m+n) = ror (ror a m) n" ~count:300
    QCheck2.Gen.(triple gen_word (int_range 0 63) (int_range 0 63))
    (fun (x, m, n) -> Val64.ror x (m + n) = Val64.ror (Val64.ror x m) n)

let prop_hex_roundtrip =
  QCheck2.Test.make ~name:"of_hex (to_hex x) = x" ~count:300 gen_word (fun x ->
      Val64.of_hex (Val64.to_hex x) = x)

let prop_set_nibble_roundtrip =
  QCheck2.Test.make ~name:"nibble i (set_nibble i v x) = v" ~count:300
    QCheck2.Gen.(triple gen_word (int_range 0 15) (int_range 0 15))
    (fun (x, i, v) -> Val64.nibble i (Val64.set_nibble i v x) = v)

let suite =
  [
    Alcotest.test_case "mask" `Quick test_mask;
    Alcotest.test_case "extract/insert" `Quick test_extract_insert;
    Alcotest.test_case "bit ops" `Quick test_bits;
    Alcotest.test_case "rotate right" `Quick test_ror;
    Alcotest.test_case "sign extension" `Quick test_sign_extend;
    Alcotest.test_case "hex conversions" `Quick test_hex;
    Alcotest.test_case "popcount" `Quick test_popcount;
    Alcotest.test_case "QARMA nibble order" `Quick test_nibbles;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "statistics" `Quick test_stats;
    QCheck_alcotest.to_alcotest prop_insert_extract;
    QCheck_alcotest.to_alcotest prop_ror_composes;
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
    QCheck_alcotest.to_alcotest prop_set_nibble_roundtrip;
  ]
