(* Workload-driver tests: the benchmark harness itself must measure what
   it claims — ordering properties of Figure 2/3/4 hold structurally. *)

module C = Camouflage
module W = Workloads

let test_call_overhead_ordering () =
  let results = W.Calls.measure ~calls:500 () in
  match results with
  | [ baseline; sp_only; parts; camouflage ] ->
      Alcotest.(check bool) "baseline cheapest" true
        (baseline.W.Calls.cycles_per_call < sp_only.W.Calls.cycles_per_call);
      Alcotest.(check bool) "sp-only < camouflage" true
        (sp_only.W.Calls.cycles_per_call < camouflage.W.Calls.cycles_per_call);
      Alcotest.(check bool) "camouflage < parts (Figure 2)" true
        (camouflage.W.Calls.cycles_per_call < parts.W.Calls.cycles_per_call);
      Alcotest.(check (float 1e-9)) "baseline overhead 0" 0.0
        baseline.W.Calls.overhead_cycles
  | _ -> Alcotest.fail "expected 4 schemes"

let test_call_overhead_scales_linearly () =
  (* doubling the call count doubles total cycles (no fixed-cost bleed) *)
  let c1 = W.Calls.measure_one C.Config.full ~calls:200 in
  let c2 = W.Calls.measure_one C.Config.full ~calls:400 in
  let per1 = Int64.to_float c1 /. 200.0 and per2 = Int64.to_float c2 /. 400.0 in
  Alcotest.(check (float 0.5)) "per-call cost stable" per1 per2

let test_lmbench_probe_sanity () =
  let results = W.Lmbench.run ~seed:2L () in
  Alcotest.(check int) "all probes measured" (List.length W.Lmbench.probes)
    (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.W.Lmbench.name ^ " baseline nonzero")
        true
        (r.W.Lmbench.cycles.(2) > 0.0);
      Alcotest.(check (float 1e-9)) (r.W.Lmbench.name ^ " baseline rel = 1") 1.0
        r.W.Lmbench.relative.(2);
      Alcotest.(check bool)
        (r.W.Lmbench.name ^ " protection never speeds up")
        true
        (r.W.Lmbench.relative.(0) >= 1.0 && r.W.Lmbench.relative.(1) >= 1.0);
      Alcotest.(check bool)
        (r.W.Lmbench.name ^ " full >= backward-only")
        true
        (r.W.Lmbench.relative.(0) >= r.W.Lmbench.relative.(1) -. 1e-9))
    results;
  let geo = W.Lmbench.geometric_mean_overhead results ~config_index:0 in
  Alcotest.(check bool) "double-digit syscall overhead (paper claim)" true (geo >= 1.10)

let test_userspace_shape () =
  let results = W.Userspace.run ~seed:3L () in
  (match results with
  | [ jpeg; deb; net ] ->
      Alcotest.(check bool) "jpeg cheapest (user-heavy)" true
        (jpeg.W.Userspace.relative.(0) < deb.W.Userspace.relative.(0));
      Alcotest.(check bool) "net worst (kernel-heavy)" true
        (deb.W.Userspace.relative.(0) < net.W.Userspace.relative.(0))
  | _ -> Alcotest.fail "expected 3 workloads");
  let geo = W.Userspace.geometric_mean_overhead results ~config_index:0 in
  Alcotest.(check bool) "geomean below 4% (paper headline)" true (geo < 1.04);
  Alcotest.(check bool) "geomean above 0" true (geo > 1.0)

let test_determinism () =
  (* same seed, same cycles: the simulator is reproducible *)
  let a = W.Calls.measure_one C.Config.full ~calls:100 in
  let b = W.Calls.measure_one C.Config.full ~calls:100 in
  Alcotest.(check int64) "deterministic" a b

let suite =
  [
    Alcotest.test_case "Figure 2 ordering" `Slow test_call_overhead_ordering;
    Alcotest.test_case "call cost scales linearly" `Slow test_call_overhead_scales_linearly;
    Alcotest.test_case "Figure 3 probe sanity" `Slow test_lmbench_probe_sanity;
    Alcotest.test_case "Figure 4 shape + <4% claim" `Slow test_userspace_shape;
    Alcotest.test_case "simulator determinism" `Quick test_determinism;
  ]
