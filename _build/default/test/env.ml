(* Shared machine setup for tests: a mapped kernel-space environment with
   keys installed, plus program loading helpers. *)

open Aarch64

let code_base = 0xffff000000100000L
let stack_top = 0xffff000000220000L
let data_base = 0xffff000000300000L

(* Identity-ish mapping: PA is the VA with the kernel prefix cleared. *)
let pa_of_va va = Int64.logand va 0x0000ffffffffffffL

let map_region ?(el0 = Mmu.no_access) cpu ~base ~pages perm =
  for i = 0 to pages - 1 do
    let va = Int64.add base (Int64.of_int (i * 4096)) in
    Mmu.map (Cpu.mmu cpu) ~va_page:(Vaddr.page_of va)
      ~pa_page:(Vaddr.page_of (pa_of_va va))
      ~el0 ~el1:perm
  done

let install_test_keys cpu =
  let sctlr =
    List.fold_left
      (fun acc k -> Camo_util.Val64.set_bit (Sysreg.sctlr_enable_bit k) true acc)
      0L
      Sysreg.[ IA; IB; DA; DB ]
  in
  Cpu.set_sysreg cpu Sysreg.SCTLR_EL1 sctlr;
  let rng = Camo_util.Rng.create 0xC0FFEEL in
  List.iter
    (fun k ->
      let hi, lo = Sysreg.key_halves k in
      Cpu.set_sysreg cpu hi (Camo_util.Rng.next rng);
      Cpu.set_sysreg cpu lo (Camo_util.Rng.next rng))
    Sysreg.[ IA; IB; DA; DB; GA ]

let fresh_cpu ?(has_pauth = true) () =
  let cpu = Cpu.create ~has_pauth () in
  map_region cpu ~base:code_base ~pages:16 Mmu.rx;
  map_region cpu ~base:(Int64.sub stack_top 0x20000L) ~pages:32 Mmu.rw;
  map_region cpu ~base:data_base ~pages:4 Mmu.rw;
  Cpu.set_sp_of cpu El.El1 stack_top;
  Cpu.set_el cpu El.El1;
  if has_pauth then install_test_keys cpu;
  cpu

let load_program ?(base = code_base) cpu prog =
  let layout = Asm.assemble prog ~base in
  Asm.encode_into layout ~write32:(fun va word ->
      Mem.write32 (Cpu.mem cpu) (pa_of_va va) word);
  layout

let run_function cpu layout name = Cpu.call cpu (Asm.symbol layout name)

let expect_return cpu layout name =
  match run_function cpu layout name with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "%s: unexpected stop: %s" name (Cpu.stop_to_string other)

let read64_va cpu va = Mem.read64 (Cpu.mem cpu) (pa_of_va va)
let write64_va cpu va v = Mem.write64 (Cpu.mem cpu) (pa_of_va va) v
