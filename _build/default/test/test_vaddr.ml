(* Appendix A of the paper: VMSAv8 address ranges (Table 1), pointer
   layouts (Table 2) and the resulting PAC widths. *)

open Aarch64

let test_select () =
  Alcotest.(check bool) "kernel top" true (Vaddr.select 0xffffffffffffffffL = Vaddr.Kernel);
  Alcotest.(check bool) "kernel base" true (Vaddr.select 0xffff000000000000L = Vaddr.Kernel);
  Alcotest.(check bool) "user top" true (Vaddr.select 0x0000ffffffffffffL = Vaddr.User);
  Alcotest.(check bool) "user base" true (Vaddr.select 0L = Vaddr.User)

let test_canonical_kernel () =
  let cfg = Vaddr.linux_kernel in
  Alcotest.(check bool) "kernel canonical" true
    (Vaddr.is_canonical cfg 0xffff000012345678L);
  Alcotest.(check bool) "kernel with junk top" false
    (Vaddr.is_canonical cfg 0xabff000012345678L);
  (* bit 55 of the input is 1, so the kernel form is reconstructed *)
  Alcotest.(check int64) "canonicalize restores sign" 0xffff000012345678L
    (Vaddr.canonical cfg 0xab80000012345678L)

let test_canonical_user_tbi () =
  let cfg = Vaddr.linux_user in
  (* TBI: the top byte is a tag and ignored. *)
  Alcotest.(check bool) "tagged user pointer is canonical" true
    (Vaddr.is_canonical cfg 0xab00123456789abcL);
  Alcotest.(check bool) "extension bits must still be clear" false
    (Vaddr.is_canonical cfg 0xab80123456789abcL)

let test_pac_widths () =
  (* Paper, Section 5.4: typical Linux configuration leaves 15 bits for
     the kernel PAC (48-bit VA, no tag) and 7 for tagged user space. *)
  Alcotest.(check int) "kernel pac bits" 15 (Vaddr.pac_bits Vaddr.linux_kernel);
  Alcotest.(check int) "user pac bits (TBI)" 7 (Vaddr.pac_bits Vaddr.linux_user);
  Alcotest.(check int) "39-bit VA kernel" 24
    (Vaddr.pac_bits { Vaddr.va_bits = 39; tbi = false });
  Alcotest.(check int) "39-bit VA user (TBI)" 16
    (Vaddr.pac_bits { Vaddr.va_bits = 39; tbi = true })

let test_insert_extract_pac () =
  let cfg = Vaddr.linux_kernel in
  let va = 0xffff00dead00beefL in
  let pac = 0x5a77L in
  let signed = Vaddr.insert_pac cfg ~pac va in
  Alcotest.(check int64) "extract returns inserted (masked)"
    (Int64.logand pac (Camo_util.Val64.mask (Vaddr.pac_bits cfg)))
    (Vaddr.extract_pac cfg signed);
  Alcotest.(check int64) "strip recovers canonical" va (Vaddr.strip_pac cfg signed);
  Alcotest.(check bool) "bit 55 preserved" true (Vaddr.select signed = Vaddr.Kernel)

let test_poison () =
  let cfg = Vaddr.linux_kernel in
  let va = 0xffff000000001000L in
  let p = Vaddr.poison cfg va in
  Alcotest.(check bool) "poisoned not canonical" false (Vaddr.is_canonical cfg p);
  Alcotest.(check bool) "poison recognized" true (Vaddr.is_poisoned cfg p);
  Alcotest.(check bool) "clean not recognized" false (Vaddr.is_poisoned cfg va)

let gen_addr48 =
  QCheck2.Gen.(map (fun x -> Int64.logand (Int64.of_int x) 0xffffffffffffL) int)

let prop_canonical_idempotent =
  QCheck2.Test.make ~name:"canonical is idempotent" ~count:300 gen_addr48 (fun low ->
      let cfg = Vaddr.linux_kernel in
      let va = Int64.logor low 0xffff000000000000L in
      Vaddr.canonical cfg (Vaddr.canonical cfg va) = Vaddr.canonical cfg va)

let prop_pac_roundtrip =
  QCheck2.Test.make ~name:"insert_pac then extract_pac is identity on pac"
    ~count:300
    QCheck2.Gen.(pair gen_addr48 (map Int64.of_int int))
    (fun (low, pac) ->
      let cfg = Vaddr.linux_kernel in
      let va = Int64.logor low 0xffff000000000000L in
      let pac = Int64.logand pac (Camo_util.Val64.mask (Vaddr.pac_bits cfg)) in
      Vaddr.extract_pac cfg (Vaddr.insert_pac cfg ~pac va) = pac)

let suite =
  [
    Alcotest.test_case "table 1: range select" `Quick test_select;
    Alcotest.test_case "kernel canonical form" `Quick test_canonical_kernel;
    Alcotest.test_case "user canonical form under TBI" `Quick test_canonical_user_tbi;
    Alcotest.test_case "PAC widths per configuration" `Quick test_pac_widths;
    Alcotest.test_case "PAC insert/extract/strip" `Quick test_insert_extract_pac;
    Alcotest.test_case "poisoned pointers" `Quick test_poison;
    QCheck_alcotest.to_alcotest prop_canonical_idempotent;
    QCheck_alcotest.to_alcotest prop_pac_roundtrip;
  ]
