(* XOM key-management tests (Sections 4.1, 5.1, 6.2.2): the generated
   setter installs exactly the generated keys, clears its working
   registers, passes the static verifier only via the allowed-range
   predicate, and the page is unreadable yet executable. *)

open Aarch64
module C = Camouflage
module K = Kernel

let setup ?(mode = C.Keys.Armv83) () =
  let cpu = Cpu.create () in
  let hyp = K.Hypervisor.install cpu in
  let rng = Camo_util.Rng.create 99L in
  let xom = K.Xom.install cpu hyp ~rng ~mode in
  (cpu, xom)

let test_setter_installs_keys () =
  let cpu, xom = setup () in
  (match Cpu.call cpu xom.K.Xom.setter_addr with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "setter: %s" (Cpu.stop_to_string other));
  List.iter
    (fun (key, expected) ->
      let got = Cpu.pac_key cpu key in
      Alcotest.(check int64) "hi half" expected.Pac.hi got.Pac.hi;
      Alcotest.(check int64) "lo half" expected.Pac.lo got.Pac.lo)
    xom.K.Xom.kernel_keys

let test_setter_clears_gprs () =
  let cpu, xom = setup () in
  Cpu.set_reg cpu (Insn.R 0) 0xdeadL;
  (match Cpu.call cpu xom.K.Xom.setter_addr with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "setter: %s" (Cpu.stop_to_string other));
  Alcotest.(check int64) "x0 cleared (no key residue)" 0L (Cpu.reg cpu (Insn.R 0))

let test_restore_loads_task_keys () =
  let cpu, xom = setup () in
  (* lay out a fake task struct with recognizable user keys *)
  let task = 0xffff000000700000L in
  K.Kmem.map_kernel_region cpu ~base:task ~bytes:4096 Mmu.rw;
  List.iteri
    (fun idx _ ->
      let base = Int64.add task (Int64.of_int (K.Kobject.Task.off_user_keys + (16 * idx))) in
      K.Kmem.write64 cpu base (Int64.of_int (0x1000 + idx));
      K.Kmem.write64 cpu (Int64.add base 8L) (Int64.of_int (0x2000 + idx)))
    Sysreg.[ IA; IB; DA; DB; GA ];
  Cpu.set_reg cpu (Insn.R 0) task;
  (match Cpu.call cpu xom.K.Xom.restore_addr with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "restore: %s" (Cpu.stop_to_string other));
  List.iteri
    (fun idx key ->
      let k = Cpu.pac_key cpu key in
      Alcotest.(check int64) "restored hi" (Int64.of_int (0x1000 + idx)) k.Pac.hi;
      Alcotest.(check int64) "restored lo" (Int64.of_int (0x2000 + idx)) k.Pac.lo)
    Sysreg.[ IA; IB; DA; DB; GA ];
  Alcotest.(check int64) "scratch cleared" 0L (Cpu.reg cpu (Insn.R 1))

let test_xom_unreadable_but_executable () =
  let cpu, xom = setup () in
  (* machine-level read of the setter page must fault at stage 2 *)
  let prog = Asm.create () in
  Asm.add_function prog ~name:"snoop"
    [ Asm.ins (Insn.Ldr (Insn.R 0, Insn.Off (Insn.R 1, 0))); Asm.ins Insn.Ret ];
  let code_base = 0xffff000000110000L in
  K.Kmem.map_kernel_region cpu ~base:code_base ~bytes:4096 Mmu.rx;
  let layout = Asm.assemble prog ~base:code_base in
  Asm.encode_into layout ~write32:(K.Kmem.write32 cpu);
  Cpu.set_reg cpu (Insn.R 1) xom.K.Xom.setter_addr;
  (match Cpu.call cpu (Asm.symbol layout "snoop") with
  | Cpu.Fault { fault = Cpu.Mmu_fault f; _ } ->
      Alcotest.(check bool) "stage-2 read denial" true (f.Mmu.kind = Mmu.Stage2_permission)
  | other -> Alcotest.failf "read of XOM: %s" (Cpu.stop_to_string other));
  (* yet execution still works *)
  match Cpu.call cpu xom.K.Xom.setter_addr with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "exec of XOM: %s" (Cpu.stop_to_string other)

let test_xom_unwritable () =
  let cpu, xom = setup () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"patch"
    [ Asm.ins (Insn.Str (Insn.R 0, Insn.Off (Insn.R 1, 0))); Asm.ins Insn.Ret ];
  let code_base = 0xffff000000110000L in
  K.Kmem.map_kernel_region cpu ~base:code_base ~bytes:4096 Mmu.rx;
  let layout = Asm.assemble prog ~base:code_base in
  Asm.encode_into layout ~write32:(K.Kmem.write32 cpu);
  Cpu.set_reg cpu (Insn.R 1) xom.K.Xom.setter_addr;
  match Cpu.call cpu (Asm.symbol layout "patch") with
  | Cpu.Fault { fault = Cpu.Mmu_fault _; _ } -> ()
  | other -> Alcotest.failf "write to XOM: %s" (Cpu.stop_to_string other)

let test_verifier_allowed_range () =
  let cpu, xom = setup () in
  (* the setter writes key registers: flagged everywhere except inside
     the audited range *)
  let read32 va = K.Kmem.read32 cpu va in
  let strict =
    C.Verifier.scan ~read32 ~base:xom.K.Xom.base ~size:xom.K.Xom.bytes
      ~allowed:(fun _ -> false)
  in
  Alcotest.(check bool) "flags key writes without allowance" true
    (List.length strict >= List.length xom.K.Xom.kernel_keys * 2);
  let allowed =
    C.Verifier.scan ~read32 ~base:xom.K.Xom.base ~size:xom.K.Xom.bytes
      ~allowed:(K.Xom.allowed_key_writer xom)
  in
  Alcotest.(check int) "clean inside audited range" 0 (List.length allowed)

let test_compat_mode_keys () =
  let _, xom = setup ~mode:C.Keys.Compat () in
  Alcotest.(check int) "compat uses a single key" 1
    (List.length xom.K.Xom.kernel_keys);
  match xom.K.Xom.kernel_keys with
  | [ (Sysreg.IB, _) ] -> ()
  | _ -> Alcotest.fail "compat key must be IB"

let test_distinct_seeds_distinct_keys () =
  let make seed =
    let cpu = Cpu.create () in
    let hyp = K.Hypervisor.install cpu in
    K.Xom.install cpu hyp ~rng:(Camo_util.Rng.create seed) ~mode:C.Keys.Armv83
  in
  let a = make 1L and b = make 2L in
  Alcotest.(check bool) "different boot entropy, different keys" true
    (a.K.Xom.kernel_keys <> b.K.Xom.kernel_keys)

let suite =
  [
    Alcotest.test_case "setter installs generated keys" `Quick test_setter_installs_keys;
    Alcotest.test_case "setter clears working registers" `Quick test_setter_clears_gprs;
    Alcotest.test_case "restore loads thread_struct keys" `Quick
      test_restore_loads_task_keys;
    Alcotest.test_case "XOM page unreadable but executable" `Quick
      test_xom_unreadable_but_executable;
    Alcotest.test_case "XOM page unwritable" `Quick test_xom_unwritable;
    Alcotest.test_case "verifier allowance is range-exact" `Quick
      test_verifier_allowed_range;
    Alcotest.test_case "compat mode provisions only IB" `Quick test_compat_mode_keys;
    Alcotest.test_case "boot entropy drives the keys" `Quick
      test_distinct_seeds_distinct_keys;
  ]
