(* Syscall-sequence fuzzing.

   Random sequences of benign syscalls drive two strong properties:

   - transparency: the fully protected kernel returns exactly the same
     values as the unprotected kernel for every benign sequence (the
     protection must never change semantics, R3/R5);
   - determinism: the same seed yields the same cycle count;
   - resilience: no benign sequence can panic the kernel, and the
     system survives garbage arguments with error returns or process
     kills, never host exceptions. *)

module C = Camouflage
module K = Kernel

type op =
  | Getpid
  | Getuid
  | Open
  | Close of int
  | Read of int * int
  | Write of int * int
  | Stat
  | Fstat of int
  | Notifier_register of int * int
  | Notifier_call of int
  | Pipe_write of int
  | Pipe_read of int
  | Socketpair
  | Poll of int
  | Timer_set of int * int
  | Run_timers
  | Run_static_work

let gen_op =
  QCheck2.Gen.(
    let fd = int_range 0 17 in
    oneof
      [
        return Getpid;
        return Getuid;
        return Open;
        map (fun v -> Close v) fd;
        map2 (fun a b -> Read (a, b)) fd (int_range 0 256);
        map2 (fun a b -> Write (a, b)) fd (int_range 0 256);
        return Stat;
        map (fun v -> Fstat v) fd;
        map2 (fun a b -> Notifier_register (a, b)) (int_range 0 9) (int_range 0 5);
        map (fun v -> Notifier_call v) (int_range 0 9);
        map (fun v -> Pipe_write v) (int_range 0 200);
        map (fun v -> Pipe_read v) (int_range 0 200);
        return Socketpair;
        map (fun v -> Poll v) (int_range 0 4);
        map2 (fun a b -> Timer_set (a, b)) (int_range 0 9) (int_range 0 3);
        return Run_timers;
        return Run_static_work;
      ])

let gen_sequence = QCheck2.Gen.(list_size (int_range 1 40) gen_op)

(* Execute one op; the observable is (tag, return value or outcome). *)
let execute sys op =
  let buf = K.Layout.user_data_base in
  let sc nr args =
    match K.System.syscall sys ~nr ~args with
    | K.System.Ok v -> ("ok", v)
    | K.System.Killed m -> ("killed:" ^ m, 0L)
    | K.System.Panicked m -> ("panicked:" ^ m, 0L)
  in
  match op with
  | Getpid -> sc K.Kbuild.sys_getpid []
  | Getuid -> sc K.Kbuild.sys_getuid []
  | Open -> sc K.Kbuild.sys_open [ 1L ]
  | Close fd -> sc K.Kbuild.sys_close [ Int64.of_int fd ]
  | Read (fd, len) -> sc K.Kbuild.sys_read [ Int64.of_int fd; buf; Int64.of_int len ]
  | Write (fd, len) -> sc K.Kbuild.sys_write [ Int64.of_int fd; buf; Int64.of_int len ]
  | Stat -> sc K.Kbuild.sys_stat [ 3L; buf ]
  | Fstat fd -> sc K.Kbuild.sys_fstat [ Int64.of_int fd; buf ]
  | Notifier_register (slot, id) ->
      sc K.Kbuild.sys_notifier_register [ Int64.of_int slot; Int64.of_int id ]
  | Notifier_call slot -> sc K.Kbuild.sys_notifier_call [ Int64.of_int slot ]
  | Pipe_write len -> sc K.Kbuild.sys_pipe_write [ buf; Int64.of_int len ]
  | Pipe_read len -> sc K.Kbuild.sys_pipe_read [ buf; Int64.of_int len ]
  | Socketpair -> sc K.Kbuild.sys_socketpair []
  | Poll n ->
      (* descriptor array: fds 3..3+n-1 *)
      List.iteri
        (fun idx fd ->
          K.Kmem.write64 (K.System.cpu sys)
            (Int64.add (Int64.add buf 2048L) (Int64.of_int (8 * idx)))
            (Int64.of_int fd))
        (List.init n (fun i -> 3 + i));
      sc K.Kbuild.sys_poll [ Int64.add buf 2048L; Int64.of_int n ]
  | Timer_set (slot, id) ->
      sc K.Kbuild.sys_timer_set [ Int64.of_int slot; 0L; Int64.of_int id ]
  | Run_timers -> (
      match K.System.run_timers sys with
      | K.System.Ok v -> ("ok", v)
      | K.System.Killed m -> ("killed:" ^ m, 0L)
      | K.System.Panicked m -> ("panicked:" ^ m, 0L))
  | Run_static_work -> (
      match K.System.run_work sys ~work_va:(K.System.kernel_symbol sys "static_work") with
      | K.System.Ok v -> ("ok", v)
      | K.System.Killed m -> ("killed:" ^ m, 0L)
      | K.System.Panicked m -> ("panicked:" ^ m, 0L))

let run_sequence config seq =
  let sys = K.System.boot ~config ~seed:99L () in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base ~bytes:0x4000
    Aarch64.Mmu.rw;
  let observations = List.map (execute sys) seq in
  (observations, K.System.panicked sys, Aarch64.Cpu.cycles (K.System.cpu sys))

let prop_transparency =
  QCheck2.Test.make ~name:"full protection is semantically transparent" ~count:40
    gen_sequence (fun seq ->
      let obs_full, panicked_full, _ = run_sequence C.Config.full seq in
      let obs_none, panicked_none, _ = run_sequence C.Config.none seq in
      obs_full = obs_none && (not panicked_full) && not panicked_none)

let prop_determinism =
  QCheck2.Test.make ~name:"same sequence, same cycle count" ~count:20 gen_sequence
    (fun seq ->
      let _, _, c1 = run_sequence C.Config.full seq in
      let _, _, c2 = run_sequence C.Config.full seq in
      c1 = c2)

let prop_no_benign_panic =
  QCheck2.Test.make ~name:"benign sequences never panic any build" ~count:30 gen_sequence
    (fun seq ->
      List.for_all
        (fun config ->
          let _, panicked, _ = run_sequence config seq in
          not panicked)
        [ C.Config.full; C.Config.backward_only; C.Config.compat; C.Config.none ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_transparency;
    QCheck_alcotest.to_alcotest prop_determinism;
    QCheck_alcotest.to_alcotest prop_no_benign_panic;
  ]
