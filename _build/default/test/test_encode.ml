(* Encode/decode round-trip: every encodable instruction must decode back
   to itself, and junk words must decode to None rather than garbage. *)

open Aarch64

let pc = 0xffff000000010000L

let sample_regs = [ Insn.R 0; Insn.R 7; Insn.R 16; Insn.R 29; Insn.R 30; Insn.SP; Insn.XZR ]
let sample_keys = Sysreg.[ IA; IB; DA; DB; GA ]

let sample_insns =
  let r0 = Insn.R 0 and r1 = Insn.R 1 and r2 = Insn.R 2 in
  let near = Int64.add pc 64L and far = Int64.sub pc 4096L in
  [
    Insn.Nop;
    Insn.Movz (r0, 0xbeef, 16);
    Insn.Movk (r1, 0xffff, 48);
    Insn.Mov (Insn.SP, r0);
    Insn.Mov (r0, Insn.SP);
    Insn.Add_imm (r0, r1, 4095);
    Insn.Sub_imm (Insn.SP, Insn.SP, 16);
    Insn.Add_reg (r0, r1, r2);
    Insn.Sub_reg (r0, r1, Insn.XZR);
    Insn.Subs_reg (Insn.XZR, r0, r1);
    Insn.Subs_imm (Insn.XZR, r0, -17);
    Insn.And_reg (r0, r1, r2);
    Insn.Orr_reg (r0, r1, r2);
    Insn.Eor_reg (r0, r0, r0);
    Insn.Lsl_imm (r0, r1, 63);
    Insn.Lsr_imm (r0, r1, 1);
    Insn.Bfi (r0, r1, 32, 32);
    Insn.Ubfx (r0, r1, 12, 16);
    Insn.Adr (r0, near);
    Insn.Ldr (r0, Insn.Off (Insn.SP, 40));
    Insn.Str (r0, Insn.Pre (Insn.SP, -16));
    Insn.Ldrb (r0, Insn.Post (r1, 1));
    Insn.Strb (r0, Insn.Off (r1, -255));
    Insn.Ldp (Insn.R 29, Insn.R 30, Insn.Post (Insn.SP, 16));
    Insn.Stp (Insn.R 29, Insn.R 30, Insn.Pre (Insn.SP, -16));
    Insn.B far;
    Insn.Bl near;
    Insn.Br (Insn.R 8);
    Insn.Blr (Insn.R 8);
    Insn.Ret;
    Insn.Cbz (r0, near);
    Insn.Cbnz (r0, far);
    Insn.Bcond (Insn.Eq, near);
    Insn.Bcond (Insn.Le, far);
    Insn.Xpac r0;
    Insn.Pacga (r0, r1, r2);
    Insn.Mrs (r0, Sysreg.SCTLR_EL1);
    Insn.Mrs (r0, Sysreg.APIBKeyLo_EL1);
    Insn.Msr (Sysreg.APIAKeyHi_EL1, r1);
    Insn.Svc 0;
    Insn.Svc 42;
    Insn.Eret;
    Insn.Isb;
    Insn.Brk 3;
    Insn.Hlt 0xdead;
  ]
  @ List.concat_map
      (fun k ->
        [
          Insn.Pac (k, Insn.R 30, Insn.SP);
          Insn.Aut (k, Insn.R 30, Insn.SP);
          Insn.Blra (k, Insn.R 8, Insn.R 9);
          Insn.Bra (k, Insn.R 8, Insn.R 9);
          Insn.Reta k;
        ])
      sample_keys
  @ List.concat_map
      (fun k -> [ Insn.Pac1716 k; Insn.Aut1716 k ])
      sample_keys
  @ List.map (fun r -> Insn.Mov (r, Insn.R 3)) sample_regs

let test_roundtrip () =
  List.iter
    (fun insn ->
      let word = Encode.encode ~pc insn in
      match Encode.decode ~pc word with
      | None ->
          Alcotest.failf "decode returned None for %s (0x%08lx)" (Insn.to_string insn) word
      | Some insn' ->
          Alcotest.(check string) "roundtrip" (Insn.to_string insn) (Insn.to_string insn'))
    sample_insns

let test_zero_word_invalid () =
  Alcotest.(check bool) "zero word is undefined" true (Encode.decode ~pc 0l = None)

let test_out_of_range_branch () =
  let too_far = Int64.add pc 0x40000000L in
  Alcotest.check_raises "unencodable branch"
    (Encode.Unencodable "b immediate 268435456 out of range [-33554432, 33554431]")
    (fun () -> ignore (Encode.encode ~pc (Insn.B too_far)))

let test_sysreg_scan_property () =
  (* The property the paper's verifier relies on: an MRS of a key register
     is identifiable from the word alone. *)
  List.iter
    (fun sr ->
      let word = Encode.encode ~pc (Insn.Mrs (Insn.R 5, sr)) in
      match Encode.decode ~pc word with
      | Some (Insn.Mrs (_, sr')) ->
          Alcotest.(check bool) "same sysreg" true (sr = sr')
      | Some other -> Alcotest.failf "decoded %s" (Insn.to_string other)
      | None -> Alcotest.fail "undecodable")
    Sysreg.all

let prop_junk_decode_total =
  QCheck2.Test.make ~name:"decode never raises on junk words" ~count:2000
    QCheck2.Gen.(map Int32.of_int int)
    (fun word ->
      match Encode.decode ~pc word with
      | Some _ | None -> true)

let suite =
  [
    Alcotest.test_case "roundtrip all instruction forms" `Quick test_roundtrip;
    Alcotest.test_case "zero word invalid" `Quick test_zero_word_invalid;
    Alcotest.test_case "branch range check" `Quick test_out_of_range_branch;
    Alcotest.test_case "sysreg scan property" `Quick test_sysreg_scan_property;
    QCheck_alcotest.to_alcotest prop_junk_decode_total;
  ]
