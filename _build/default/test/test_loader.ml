(* Object-file and loader tests: relocation, symbol resolution,
   .pauth_static signing, verification gating, and permission mapping. *)

open Aarch64
module C = Camouflage
module K = Kernel
module O = Kelf.Object_file

let boot () = K.System.boot ~config:C.Config.full ~seed:3L ()

let test_object_builders () =
  let obj = O.empty "m" in
  let obj = O.add_function obj ~name:"f" [ Asm.ins Insn.Ret ] in
  let obj = O.add_rodata obj { O.blob_name = "tbl"; words = [ O.Lit 1L; O.Sym "f" ] } in
  let obj = O.add_data obj { O.blob_name = "cell"; words = [ O.Lit 0L ] } in
  Alcotest.(check int) "text insns" 1 (O.text_instruction_count obj);
  Alcotest.(check int) "rodata bytes" 16 (O.rodata_size_bytes obj);
  Alcotest.(check int) "data bytes" 8 (O.data_size_bytes obj)

let test_data_relocation () =
  let sys = boot () in
  let obj =
    O.empty "relmod"
    |> fun o ->
    O.add_function o ~name:"target" [ Asm.ins Insn.Ret ]
    |> fun o ->
    O.add_rodata o
      { O.blob_name = "table";
        words = [ O.Sym "target"; O.Sym_off ("target", 8); O.Lit 0x42L ] }
  in
  match K.System.load_module sys obj with
  | Result.Error e -> Alcotest.failf "load: %s" (Kelf.Loader.error_to_string e)
  | Result.Ok placed ->
      let target = Kelf.Loader.symbol placed "target" in
      let table = Kelf.Loader.symbol placed "table" in
      let cpu = K.System.cpu sys in
      Alcotest.(check int64) "Sym resolves" target (K.Kmem.read64 cpu table);
      Alcotest.(check int64) "Sym_off resolves" (Int64.add target 8L)
        (K.Kmem.read64 cpu (Int64.add table 8L));
      Alcotest.(check int64) "Lit copies" 0x42L (K.Kmem.read64 cpu (Int64.add table 16L))

let test_unknown_symbol_rejected () =
  let sys = boot () in
  let obj =
    O.add_rodata (O.empty "badmod")
      { O.blob_name = "table"; words = [ O.Sym "no_such_symbol" ] }
  in
  match K.System.load_module sys obj with
  | Result.Error (Kelf.Loader.Unknown_symbol "no_such_symbol") -> ()
  | Result.Error e -> Alcotest.failf "wrong error: %s" (Kelf.Loader.error_to_string e)
  | Result.Ok _ -> Alcotest.fail "accepted"

let test_unknown_member_rejected () =
  let sys = boot () in
  let obj =
    O.empty "badsign"
    |> fun o ->
    O.add_data o { O.blob_name = "blob"; words = [ O.Lit 1L ] }
    |> fun o ->
    O.add_static_sign o
      { O.sign_blob = "blob"; word_index = 0; type_name = "nonexistent";
        member_name = "field" }
  in
  match K.System.load_module sys obj with
  | Result.Error (Kelf.Loader.Unknown_member ("nonexistent", "field")) -> ()
  | Result.Error e -> Alcotest.failf "wrong error: %s" (Kelf.Loader.error_to_string e)
  | Result.Ok _ -> Alcotest.fail "accepted"

let test_module_text_is_immutable () =
  let sys = boot () in
  let obj = O.add_function (O.empty "mod") ~name:"f" [ Asm.ins Insn.Ret ] in
  match K.System.load_module sys obj with
  | Result.Error e -> Alcotest.failf "load: %s" (Kelf.Loader.error_to_string e)
  | Result.Ok placed -> (
      let f = Kelf.Loader.symbol placed "f" in
      (* the attacker's arbitrary write must not patch module text *)
      match K.System.syscall sys ~nr:K.Kbuild.sys_vuln_write ~args:[ f; 0L ] with
      | K.System.Ok _ -> Alcotest.fail "module text writable"
      | K.System.Killed _ -> ()
      | K.System.Panicked m -> Alcotest.failf "panic: %s" m)

let test_module_rodata_immutable_data_writable () =
  let sys = boot () in
  let obj =
    O.empty "mod2"
    |> fun o ->
    O.add_rodata o { O.blob_name = "ro"; words = [ O.Lit 7L ] }
    |> fun o -> O.add_data o { O.blob_name = "rw"; words = [ O.Lit 8L ] }
  in
  match K.System.load_module sys obj with
  | Result.Error e -> Alcotest.failf "load: %s" (Kelf.Loader.error_to_string e)
  | Result.Ok placed -> (
      let ro = Kelf.Loader.symbol placed "ro" in
      let rw = Kelf.Loader.symbol placed "rw" in
      (match K.System.syscall sys ~nr:K.Kbuild.sys_vuln_write ~args:[ ro; 1L ] with
      | K.System.Ok _ -> Alcotest.fail "module rodata writable"
      | K.System.Killed _ -> ()
      | K.System.Panicked m -> Alcotest.failf "panic: %s" m);
      match K.System.syscall sys ~nr:K.Kbuild.sys_vuln_write ~args:[ rw; 9L ] with
      | K.System.Ok _ ->
          Alcotest.(check int64) "data updated" 9L (K.Kmem.read64 (K.System.cpu sys) rw)
      | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "data write: %s" m)

let test_static_sign_round_trip () =
  let sys = boot () in
  let config = K.System.config sys in
  let handler_body = C.Instrument.wrap config ~name:"h" [ Asm.ins (Insn.Movz (Insn.R 0, 3, 0)) ] in
  let obj =
    O.empty "workmod"
    |> fun o ->
    O.add_function o ~name:"h" handler_body.C.Instrument.items
    |> fun o ->
    O.add_data o { O.blob_name = "w"; words = [ O.Lit 0L; O.Sym "h" ] }
    |> fun o ->
    O.add_static_sign o
      { O.sign_blob = "w"; word_index = 1; type_name = "work_struct"; member_name = "func" }
  in
  match K.System.load_module sys obj with
  | Result.Error e -> Alcotest.failf "load: %s" (Kelf.Loader.error_to_string e)
  | Result.Ok placed -> (
      let w = Kelf.Loader.symbol placed "w" in
      let h = Kelf.Loader.symbol placed "h" in
      let stored = K.Kmem.read64 (K.System.cpu sys) (Int64.add w 8L) in
      Alcotest.(check bool) "stored signed" true (stored <> h);
      match K.System.run_work sys ~work_va:w with
      | K.System.Ok v -> Alcotest.(check int64) "dispatched" 3L v
      | K.System.Killed m | K.System.Panicked m -> Alcotest.failf "dispatch: %s" m)

let test_module_symbols_fallthrough () =
  let sys = boot () in
  let obj = O.add_function (O.empty "m") ~name:"f" [ Asm.ins Insn.Ret ] in
  match K.System.load_module sys obj with
  | Result.Error e -> Alcotest.failf "load: %s" (Kelf.Loader.error_to_string e)
  | Result.Ok placed ->
      (match Kelf.Loader.symbol placed "f" with
      | _ -> ());
      Alcotest.check_raises "unknown symbol" Not_found (fun () ->
          ignore (Kelf.Loader.symbol placed "zzz"))

let test_sequential_module_placement () =
  let sys = boot () in
  let mk name = O.add_function (O.empty name) ~name:(name ^ "_f") [ Asm.ins Insn.Ret ] in
  match (K.System.load_module sys (mk "m1"), K.System.load_module sys (mk "m2")) with
  | Result.Ok p1, Result.Ok p2 ->
      Alcotest.(check bool) "disjoint placement" true
        (Int64.unsigned_compare p2.Kelf.Loader.text_base
           (Int64.add p1.Kelf.Loader.data_base (Int64.of_int p1.Kelf.Loader.data_bytes))
        >= 0)
  | Result.Error e, _ | _, Result.Error e ->
      Alcotest.failf "load: %s" (Kelf.Loader.error_to_string e)

let suite =
  [
    Alcotest.test_case "object builders account sizes" `Quick test_object_builders;
    Alcotest.test_case "data relocation (Sym/Sym_off/Lit)" `Quick test_data_relocation;
    Alcotest.test_case "unknown symbol rejected" `Quick test_unknown_symbol_rejected;
    Alcotest.test_case "unknown protected member rejected" `Quick
      test_unknown_member_rejected;
    Alcotest.test_case "module text immutable" `Quick test_module_text_is_immutable;
    Alcotest.test_case "module rodata ro, data rw" `Quick
      test_module_rodata_immutable_data_writable;
    Alcotest.test_case "module .pauth_static round trip" `Quick
      test_static_sign_round_trip;
    Alcotest.test_case "symbol lookup errors" `Quick test_module_symbols_fallthrough;
    Alcotest.test_case "sequential placement" `Quick test_sequential_module_placement;
  ]
