(* Tests for the Camouflage core: instrumentation shape (E8), runtime
   behaviour of the instrumented prologues/epilogues, the pointer
   integrity accessors of Listing 4, static-table signing, the static
   verifier and the brute-force policy. *)

open Aarch64
module C = Camouflage

let listing_of config name body =
  let f = C.Instrument.wrap config ~name body in
  let prog = Asm.create () in
  Asm.add_function prog ~name:f.C.Instrument.name f.C.Instrument.items;
  Asm.assemble prog ~base:Env.code_base

(* E8: the emitted sequences must match the paper's listings. *)

let test_listing2_sp_only () =
  let config = { C.Config.full with scheme = C.Modifier.Sp_only } in
  let layout = listing_of config "func" [] in
  let text = Asm.disassemble layout in
  let expected =
    "func:\n\
    \  ffff000000100000: pacib lr, sp\n\
    \  ffff000000100004: stp fp, lr, [sp, #-16]!\n\
    \  ffff000000100008: mov fp, sp\n\
    \  ffff00000010000c: ldp fp, lr, [sp], #16\n\
    \  ffff000000100010: autib lr, sp\n\
    \  ffff000000100014: ret\n"
  in
  Alcotest.(check string) "Listing 2 shape" expected text

let test_listing3_camouflage () =
  let layout = listing_of C.Config.full "function" [] in
  let text = Asm.disassemble layout in
  let expected =
    "function:\n\
    \  ffff000000100000: adr x16, 0xffff000000100000\n\
    \  ffff000000100004: mov x17, sp\n\
    \  ffff000000100008: bfi x16, x17, #32, #32\n\
    \  ffff00000010000c: pacib lr, x16\n\
    \  ffff000000100010: stp fp, lr, [sp, #-16]!\n\
    \  ffff000000100014: mov fp, sp\n\
    \  ffff000000100018: ldp fp, lr, [sp], #16\n\
    \  ffff00000010001c: adr x16, 0xffff000000100000\n\
    \  ffff000000100020: mov x17, sp\n\
    \  ffff000000100024: bfi x16, x17, #32, #32\n\
    \  ffff000000100028: autib lr, x16\n\
    \  ffff00000010002c: ret\n"
  in
  Alcotest.(check string) "Listing 3 shape" expected text

let test_overhead_counts () =
  Alcotest.(check int) "camouflage adds 8 insns" 8 (C.Instrument.overhead_insns C.Config.full);
  Alcotest.(check int) "sp-only adds 2 insns" 2
    (C.Instrument.overhead_insns { C.Config.full with scheme = C.Modifier.Sp_only });
  Alcotest.(check int) "parts adds 12 insns" 12
    (C.Instrument.overhead_insns { C.Config.full with scheme = C.Modifier.Parts 42L });
  Alcotest.(check int) "none adds 0" 0 (C.Instrument.overhead_insns C.Config.none)

(* Runtime: instrumented call chains execute and return correctly for
   every scheme and mode; corrupting the saved LR is detected. *)

let build_nested config =
  let cpu = Env.fresh_cpu () in
  let prog = Asm.create () in
  C.Instrument.add_to config prog ~name:"leaf_worker"
    [ Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 5)) ];
  C.Instrument.add_to config prog ~name:"middle"
    [ Asm.bl_to "leaf_worker"; Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 7)) ];
  C.Instrument.add_to config prog ~name:"outer"
    [ Asm.bl_to "middle"; Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 11)) ];
  let layout = Env.load_program cpu prog in
  (cpu, layout)

let schemes_under_test =
  [
    ("sp-only", { C.Config.full with scheme = C.Modifier.Sp_only });
    ("parts", { C.Config.full with scheme = C.Modifier.Parts 0x123456789abcL });
    ("camouflage", C.Config.full);
    ("compat", C.Config.compat);
    ("none", C.Config.none);
  ]

let test_nested_calls_all_schemes () =
  List.iter
    (fun (name, config) ->
      let cpu, layout = build_nested config in
      Cpu.set_reg cpu (Insn.R 0) 0L;
      (match Env.run_function cpu layout "outer" with
      | Cpu.Sentinel_return -> ()
      | other -> Alcotest.failf "%s: %s" name (Cpu.stop_to_string other));
      Alcotest.(check int64) (name ^ " result") 23L (Cpu.reg cpu (Insn.R 0)))
    schemes_under_test

let test_compat_runs_without_pauth () =
  (* Contribution 2: the same compat binary must run on an ARMv8.0 part,
     where the 1716 forms are NOPs. *)
  let config = C.Config.compat in
  let cpu = Env.fresh_cpu ~has_pauth:false () in
  let prog = Asm.create () in
  C.Instrument.add_to config prog ~name:"fn"
    [ Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 9)) ];
  let layout = Env.load_program cpu prog in
  Cpu.set_reg cpu (Insn.R 0) 0L;
  (match Env.run_function cpu layout "fn" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "compat on v8.0: %s" (Cpu.stop_to_string other));
  Alcotest.(check int64) "result" 9L (Cpu.reg cpu (Insn.R 0))

(* A stack smash that overwrites the saved return address must be caught
   by the epilogue's AUT: the victim never returns to the planted
   address. *)
let test_rop_detected ~config ~expect_detected =
  let cpu = Env.fresh_cpu () in
  let prog = Asm.create () in
  let gadget_entry = ref 0L in
  (* victim: a protected function that "overflows" its own stack slot,
     modeling an attacker-controlled write of the saved LR. *)
  C.Instrument.add_to config prog ~name:"victim"
    [
      (* saved frame record sits at [fp]: fp+8 holds the saved LR *)
      Asm.adr_of (Insn.R 9) "gadget";
      Asm.ins (Insn.Str (Insn.R 9, Insn.Off (Insn.fp, 8)));
    ];
  (* the gadget "escalates" and halts, standing in for attacker code *)
  Asm.add_function prog ~name:"gadget"
    [ Asm.ins (Insn.Movz (Insn.R 0, 0xbad, 0)); Asm.ins (Insn.Hlt 0x1337) ];
  let layout = Env.load_program cpu prog in
  gadget_entry := Asm.symbol layout "gadget";
  match Env.run_function cpu layout "victim" with
  | Cpu.Fault { fault = Cpu.Mmu_fault f; _ } when expect_detected ->
      Alcotest.(check bool) "poisoned return address" true
        (Vaddr.is_poisoned (Cpu.kernel_cfg cpu) f.Mmu.va)
  | Cpu.Hlt 0x1337 when not expect_detected ->
      Alcotest.(check int64) "gadget executed" 0xbadL (Cpu.reg cpu (Insn.R 0))
  | other ->
      Alcotest.failf "unexpected outcome (detected=%b): %s" expect_detected
        (Cpu.stop_to_string other)

let test_rop_detected_camouflage () = test_rop_detected ~config:C.Config.full ~expect_detected:true

let test_rop_succeeds_unprotected () =
  test_rop_detected ~config:C.Config.none ~expect_detected:false

(* Pointer integrity: Listing 4 get/set accessors on the machine agree
   with the host-side mirror, and a swapped ops pointer is rejected. *)

let make_registry () =
  let r = C.Pointer_integrity.create_registry () in
  let _ =
    C.Pointer_integrity.register r
      { C.Pointer_integrity.type_name = "file"; member_name = "f_ops"; offset = 40;
        role = C.Keys.Data }
  in
  let _ =
    C.Pointer_integrity.register r
      { C.Pointer_integrity.type_name = "timer"; member_name = "callback"; offset = 8;
        role = C.Keys.Forward }
  in
  r

let test_get_set_roundtrip () =
  let config = C.Config.full in
  let registry = make_registry () in
  let cpu = Env.fresh_cpu () in
  let prog = Asm.create () in
  (* set_file_ops(x0=file, x1=ops); then file_ops(x0) -> x0 *)
  C.Instrument.add_to config prog ~name:"set_file_ops"
    (C.Pointer_integrity.emit_setter config registry ~type_name:"file"
       ~member_name:"f_ops" ~obj:(Insn.R 0) ~value:(Insn.R 1) ~scratch:(Insn.R 9));
  C.Instrument.add_to config prog ~name:"file_ops"
    (C.Pointer_integrity.emit_getter config registry ~type_name:"file"
       ~member_name:"f_ops" ~obj:(Insn.R 0) ~dst:(Insn.R 8) ~scratch:(Insn.R 9)
    @ [ Asm.ins (Insn.Mov (Insn.R 0, Insn.R 8)) ]);
  let layout = Env.load_program cpu prog in
  let file_obj = Int64.add Env.data_base 0x100L in
  let ops_addr = Int64.add Env.data_base 0x800L in
  Cpu.set_reg cpu (Insn.R 0) file_obj;
  Cpu.set_reg cpu (Insn.R 1) ops_addr;
  Env.expect_return cpu layout "set_file_ops";
  (* In-memory representation carries a PAC. *)
  let stored = Env.read64_va cpu (Int64.add file_obj 40L) in
  Alcotest.(check bool) "stored pointer is signed" true (stored <> ops_addr);
  (* Host mirror agrees with the machine-side signing. *)
  let host_signed =
    C.Pointer_integrity.sign_value cpu config registry ~type_name:"file"
      ~member_name:"f_ops" ~obj_addr:file_obj ops_addr
  in
  Alcotest.(check int64) "host mirror matches machine" host_signed stored;
  Cpu.set_reg cpu (Insn.R 0) file_obj;
  Env.expect_return cpu layout "file_ops";
  Alcotest.(check int64) "getter authenticates" ops_addr (Cpu.reg cpu (Insn.R 0))

let test_fops_swap_detected () =
  (* DFI: copying a validly-signed f_ops from one file object into
     another must fail authentication (modifier binds the address). *)
  let config = C.Config.full in
  let registry = make_registry () in
  let cpu = Env.fresh_cpu () in
  let file_a = Int64.add Env.data_base 0x100L in
  let file_b = Int64.add Env.data_base 0x200L in
  let ops = Int64.add Env.data_base 0x800L in
  let signed_for_a =
    C.Pointer_integrity.sign_value cpu config registry ~type_name:"file"
      ~member_name:"f_ops" ~obj_addr:file_a ops
  in
  (match
     C.Pointer_integrity.auth_value cpu config registry ~type_name:"file"
       ~member_name:"f_ops" ~obj_addr:file_a signed_for_a
   with
  | Ok v -> Alcotest.(check int64) "auth at home address" ops v
  | Error _ -> Alcotest.fail "valid pointer rejected");
  (match
     C.Pointer_integrity.auth_value cpu config registry ~type_name:"file"
       ~member_name:"f_ops" ~obj_addr:file_b signed_for_a
   with
  | Ok _ -> Alcotest.fail "replayed pointer accepted"
  | Error poisoned ->
      Alcotest.(check bool) "poisoned" true
        (Vaddr.is_poisoned (Cpu.kernel_cfg cpu) poisoned));
  (* Cross-member replay: same address, different member constant. *)
  match
    C.Pointer_integrity.auth_value cpu config registry ~type_name:"timer"
      ~member_name:"callback" ~obj_addr:file_a signed_for_a
  with
  | Ok _ -> Alcotest.fail "cross-type replay accepted"
  | Error _ -> ()

let test_static_table_signing () =
  let config = C.Config.full in
  let registry = make_registry () in
  let cpu = Env.fresh_cpu () in
  let work_obj = Int64.add Env.data_base 0x300L in
  let location = Int64.add work_obj 8L in
  let callback = Int64.add Env.code_base 0x40L in
  Env.write64_va cpu location callback;
  let table =
    [ C.Static_table.entry_for registry ~location ~type_name:"timer"
        ~member_name:"callback" ]
  in
  C.Static_table.sign_all cpu config registry table ~read64:(Env.read64_va cpu)
    ~write64:(Env.write64_va cpu);
  let stored = Env.read64_va cpu location in
  Alcotest.(check bool) "signed in place" true (stored <> callback);
  match
    C.Pointer_integrity.auth_value cpu config registry ~type_name:"timer"
      ~member_name:"callback" ~obj_addr:work_obj stored
  with
  | Ok v -> Alcotest.(check int64) "authenticates to original" callback v
  | Error _ -> Alcotest.fail "static signing produced bad PAC"

(* Verifier. *)

let test_verifier_rejects_key_reads () =
  let cpu = Env.fresh_cpu () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"spy"
    [
      Asm.ins (Insn.Mrs (Insn.R 0, Sysreg.APIBKeyLo_EL1));
      Asm.ins (Insn.Mrs (Insn.R 1, Sysreg.APIBKeyHi_EL1));
      Asm.ins Insn.Ret;
    ];
  let layout = Env.load_program cpu prog in
  let violations =
    C.Verifier.scan
      ~read32:(fun va -> Mem.read32 (Cpu.mem cpu) (Env.pa_of_va va))
      ~base:layout.Asm.base ~size:layout.Asm.size
      ~allowed:(fun _ -> false)
  in
  Alcotest.(check int) "two violations" 2 (List.length violations);
  match violations with
  | { C.Verifier.reason = C.Verifier.Reads_key_register Sysreg.APIBKeyLo_EL1; _ } :: _ -> ()
  | v :: _ -> Alcotest.failf "wrong reason: %s" (C.Verifier.violation_to_string v)
  | [] -> Alcotest.fail "no violations"

let test_verifier_allows_setter () =
  let cpu = Env.fresh_cpu () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"setter"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 0x1234, 0));
      Asm.ins (Insn.Msr (Sysreg.APIBKeyLo_EL1, Insn.R 0));
      Asm.ins (Insn.Movz (Insn.R 0, 0, 0));
      Asm.ins Insn.Ret;
    ];
  Asm.add_function prog ~name:"rogue_setter"
    [ Asm.ins (Insn.Msr (Sysreg.APIBKeyLo_EL1, Insn.R 0)); Asm.ins Insn.Ret ];
  let layout = Env.load_program cpu prog in
  let setter_base = Asm.symbol layout "setter" in
  let rogue_base = Asm.symbol layout "rogue_setter" in
  let allowed va = va >= setter_base && va < rogue_base in
  let violations =
    C.Verifier.scan
      ~read32:(fun va -> Mem.read32 (Cpu.mem cpu) (Env.pa_of_va va))
      ~base:layout.Asm.base ~size:layout.Asm.size ~allowed
  in
  Alcotest.(check int) "only the rogue write flagged" 1 (List.length violations);
  match violations with
  | [ { C.Verifier.reason = C.Verifier.Writes_key_register _; va; _ } ] ->
      Alcotest.(check bool) "flagged inside rogue" true (va >= rogue_base)
  | other ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map C.Verifier.violation_to_string other))

let test_verifier_sctlr () =
  let cpu = Env.fresh_cpu () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"disable_pauth"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 0, 0));
      Asm.ins (Insn.Msr (Sysreg.SCTLR_EL1, Insn.R 0));
      Asm.ins Insn.Ret;
    ];
  let layout = Env.load_program cpu prog in
  let violations =
    C.Verifier.scan
      ~read32:(fun va -> Mem.read32 (Cpu.mem cpu) (Env.pa_of_va va))
      ~base:layout.Asm.base ~size:layout.Asm.size
      ~allowed:(fun _ -> false)
  in
  match violations with
  | [ { C.Verifier.reason = C.Verifier.Writes_sctlr; _ } ] -> ()
  | other ->
      Alcotest.failf "expected SCTLR violation, got %d: %s" (List.length other)
        (String.concat "; " (List.map C.Verifier.violation_to_string other))

(* Brute force. *)

let test_bruteforce_policy () =
  let bf = C.Bruteforce.create ~threshold:4 in
  let verdicts =
    List.init 4 (fun i ->
        C.Bruteforce.record_failure bf ~pid:(100 + i) ~faulting_va:0xffff0000dead0000L)
  in
  Alcotest.(check (list bool))
    "kill, kill, kill, panic"
    [ false; false; false; true ]
    (List.map (fun v -> v = C.Bruteforce.Panic) verdicts);
  Alcotest.(check int) "log depth" 4 (List.length (C.Bruteforce.log bf))

(* Modifier properties. *)

let prop_camouflage_modifier_distinct_functions =
  QCheck2.Test.make ~name:"camouflage modifier separates functions at equal SP"
    ~count:300
    QCheck2.Gen.(pair (map Int64.of_int int) (map Int64.of_int int))
    (fun (fa, fb) ->
      let sp = 0xffff00000021ff70L in
      let ma = C.Modifier.return_modifier C.Modifier.Camouflage ~sp ~func_addr:fa in
      let mb = C.Modifier.return_modifier C.Modifier.Camouflage ~sp ~func_addr:fb in
      let low32 x = Int64.logand x 0xffffffffL in
      if low32 fa = low32 fb then ma = mb else ma <> mb)

let prop_sp_only_replays_across_threads =
  (* The weakness the paper fixes: SP-only modifiers collide whenever two
     stacks are 2^16-aligned apart — here exactly equal low bits. *)
  QCheck2.Test.make ~name:"sp-only modifier collides across 64KiB-separated stacks"
    ~count:100
    QCheck2.Gen.(int_range 0 0xfff)
    (fun off ->
      let sp_thread1 = Int64.add 0xffff000000210000L (Int64.of_int off) in
      let sp_thread2 = Int64.add sp_thread1 0x10000L in
      let m1 = C.Modifier.return_modifier C.Modifier.Sp_only ~sp:sp_thread1 ~func_addr:1L in
      let m2 = C.Modifier.return_modifier C.Modifier.Sp_only ~sp:sp_thread2 ~func_addr:1L in
      (* full SP still differs; the PARTS 16-bit truncation collides *)
      let parts1 = C.Modifier.return_modifier (C.Modifier.Parts 7L) ~sp:sp_thread1 ~func_addr:1L in
      let parts2 = C.Modifier.return_modifier (C.Modifier.Parts 7L) ~sp:sp_thread2 ~func_addr:1L in
      m1 <> m2 && parts1 = parts2)

let suite =
  [
    Alcotest.test_case "Listing 2: sp-only prologue/epilogue" `Quick test_listing2_sp_only;
    Alcotest.test_case "Listing 3: camouflage prologue/epilogue" `Quick
      test_listing3_camouflage;
    Alcotest.test_case "instrumentation overhead counts" `Quick test_overhead_counts;
    Alcotest.test_case "nested calls under all schemes" `Quick
      test_nested_calls_all_schemes;
    Alcotest.test_case "compat binary on ARMv8.0" `Quick test_compat_runs_without_pauth;
    Alcotest.test_case "ROP blocked by backward-edge CFI" `Quick
      test_rop_detected_camouflage;
    Alcotest.test_case "ROP succeeds without protection" `Quick
      test_rop_succeeds_unprotected;
    Alcotest.test_case "Listing 4 get/set roundtrip" `Quick test_get_set_roundtrip;
    Alcotest.test_case "f_ops swap detected (DFI)" `Quick test_fops_swap_detected;
    Alcotest.test_case "static table signing (Section 4.6)" `Quick
      test_static_table_signing;
    Alcotest.test_case "verifier rejects key reads" `Quick test_verifier_rejects_key_reads;
    Alcotest.test_case "verifier allows audited setter" `Quick test_verifier_allows_setter;
    Alcotest.test_case "verifier flags SCTLR writes" `Quick test_verifier_sctlr;
    Alcotest.test_case "brute-force threshold policy" `Quick test_bruteforce_policy;
    QCheck_alcotest.to_alcotest prop_camouflage_modifier_distinct_functions;
    QCheck_alcotest.to_alcotest prop_sp_only_replays_across_threads;
  ]

(* The chained (PACStack-style) scheme: correctness of nested calls on a
   bare machine, its stronger temporal-replay guarantee, and its
   explicit limits. *)

let chained_config = { C.Config.backward_only with scheme = C.Modifier.Chained }

let test_chained_nested_calls () =
  let cpu = Aarch64.Bare.machine () in
  let prog = Asm.create () in
  let wrap name body =
    let f = C.Instrument.wrap chained_config ~name body in
    Asm.add_function prog ~name f.C.Instrument.items
  in
  wrap "inner" [ Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 5)) ];
  wrap "middle" [ Asm.bl_to "inner"; Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 7)) ];
  wrap "outer" [ Asm.bl_to "middle"; Asm.ins (Insn.Add_imm (Insn.R 0, Insn.R 0, 11)) ];
  let layout = Aarch64.Bare.load cpu prog in
  Cpu.set_reg cpu (Insn.R 0) 0L;
  (match Aarch64.Bare.call cpu layout "outer" with
  | Cpu.Sentinel_return -> ()
  | other -> Alcotest.failf "chained nested: %s" (Cpu.stop_to_string other));
  Alcotest.(check int64) "result" 23L (Cpu.reg cpu (Insn.R 0));
  Alcotest.(check int64) "stack balanced" Aarch64.Bare.stack_top (Cpu.sp_of cpu Aarch64.El.El1)

let test_chained_detects_smash () =
  let cpu = Aarch64.Bare.machine () in
  let prog = Asm.create () in
  let victim =
    C.Instrument.wrap chained_config ~name:"victim"
      [
        Asm.adr_of (Insn.R 9) "gadget";
        Asm.ins (Insn.Str (Insn.R 9, Insn.Off (Insn.fp, 8)));
      ]
  in
  Asm.add_function prog ~name:"victim" victim.C.Instrument.items;
  Asm.add_function prog ~name:"gadget" [ Asm.ins (Insn.Hlt 0x666) ];
  let layout = Aarch64.Bare.load cpu prog in
  match Aarch64.Bare.call cpu layout "victim" with
  | Cpu.Fault { fault = Cpu.Mmu_fault f; _ } ->
      Alcotest.(check bool) "poisoned return" true
        (Aarch64.Vaddr.is_poisoned (Cpu.kernel_cfg cpu) f.Aarch64.Mmu.va)
  | other -> Alcotest.failf "chained smash: %s" (Cpu.stop_to_string other)

let test_temporal_replay_matrix () =
  (match Attacks.Temporal_replay.run C.Modifier.Sp_only with
  | Attacks.Temporal_replay.Replay_accepted -> ()
  | o -> Alcotest.failf "sp-only: %s" (Attacks.Temporal_replay.outcome_to_string o));
  (match Attacks.Temporal_replay.run C.Modifier.Camouflage with
  | Attacks.Temporal_replay.Replay_accepted -> ()
  | o -> Alcotest.failf "camouflage: %s" (Attacks.Temporal_replay.outcome_to_string o));
  match Attacks.Temporal_replay.run C.Modifier.Chained with
  | Attacks.Temporal_replay.Replay_rejected -> ()
  | o -> Alcotest.failf "chained: %s" (Attacks.Temporal_replay.outcome_to_string o)

let test_chained_limits () =
  Alcotest.check_raises "no compat encoding"
    (Invalid_argument "Instrument: the chained scheme has no compat encoding") (fun () ->
      ignore
        (C.Instrument.frame_push
           { chained_config with mode = C.Keys.Compat }
           ~func_label:"f"));
  (match Kernel.System.boot ~config:chained_config () with
  | exception Failure _ -> ()
  | _sys -> Alcotest.fail "chained boot must be refused");
  Alcotest.check_raises "dynamic modifier"
    (Invalid_argument
       "Modifier.return_modifier: the chained modifier is a dynamic run-time value")
    (fun () ->
      ignore (C.Modifier.return_modifier C.Modifier.Chained ~sp:0L ~func_addr:0L))

let suite =
  suite
  @ [
      Alcotest.test_case "chained: nested calls" `Quick test_chained_nested_calls;
      Alcotest.test_case "chained: stack smash detected" `Quick test_chained_detects_smash;
      Alcotest.test_case "temporal replay matrix (A5)" `Quick test_temporal_replay_matrix;
      Alcotest.test_case "chained: documented limits" `Quick test_chained_limits;
    ]
