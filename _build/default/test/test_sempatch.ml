(* Semantic-patch engine tests: typing, the census on hand-written and
   calibrated corpora, rewrite completeness. *)

module SC = Sempatch.Cast
module SA = Sempatch.Analysis
module SR = Sempatch.Rewrite

(* A tiny hand-written "kernel source": one driver type assigned at run
   time, one static const ops struct (must NOT be counted), one function
   that only reads the pointer (must NOT be counted). *)
let hand_corpus =
  let dev_struct =
    {
      SC.struct_name = "mydev";
      fields =
        [
          { SC.field_name = "count"; field_type = SC.Int };
          { SC.field_name = "irq_handler"; field_type = SC.Func_ptr "irq" };
          { SC.field_name = "name"; field_type = SC.Ptr SC.Char };
        ];
    }
  in
  let ops_struct =
    {
      SC.struct_name = "myfs_ops";
      fields =
        [
          { SC.field_name = "read"; field_type = SC.Func_ptr "rw" };
          { SC.field_name = "write"; field_type = SC.Func_ptr "rw" };
        ];
    }
  in
  let probe =
    {
      SC.func_name = "mydev_probe";
      params = [ ("dev", SC.Ptr (SC.Struct_ref "mydev")) ];
      locals = [];
      body =
        [
          SC.Field_write (SC.Var "dev", "irq_handler", SC.Addr_of_func "mydev_irq");
          SC.Field_write (SC.Var "dev", "count", SC.Int_lit 0);
          (* writing an int member: not a finding *)
        ];
    }
  in
  let reader =
    {
      SC.func_name = "mydev_dispatch";
      params = [ ("dev", SC.Ptr (SC.Struct_ref "mydev")) ];
      locals = [ ("h", SC.Func_ptr "irq") ];
      body =
        [
          SC.Assign_var ("h", SC.Field_read (SC.Var "dev", "irq_handler"));
          SC.Expr_stmt (SC.Indirect_call (SC.Var "h", []));
        ];
    }
  in
  let static_init =
    {
      SC.init_name = "myfs_default_ops";
      init_struct = "myfs_ops";
      init_values =
        [ ("read", SC.Addr_of_func "myfs_read"); ("write", SC.Addr_of_func "myfs_write") ];
      is_const = true;
    }
  in
  [
    {
      SC.file_name = "drivers/mydev.c";
      structs = [ dev_struct; ops_struct ];
      functions = [ probe; reader ];
      initializers = [ static_init ];
    };
  ]

let test_census_hand_corpus () =
  let census = SA.run hand_corpus in
  Alcotest.(check int) "one member" 1 census.SA.member_count;
  Alcotest.(check int) "one type" 1 census.SA.type_count;
  Alcotest.(check int) "no multi types" 0 census.SA.multi_member_type_count;
  match census.SA.findings with
  | [ f ] ->
      Alcotest.(check string) "type" "mydev" f.SA.type_name;
      Alcotest.(check string) "member" "irq_handler" f.SA.member_name;
      Alcotest.(check (list string)) "assigned in probe" [ "mydev_probe" ] f.SA.assigned_in
  | _ -> Alcotest.fail "expected exactly one finding"

let test_conditional_assignments_found () =
  (* assignment under an If must still be found *)
  let corpus =
    [
      {
        SC.file_name = "f.c";
        structs =
          [
            {
              SC.struct_name = "s";
              fields = [ { SC.field_name = "cb"; field_type = SC.Func_ptr "x" } ];
            };
          ];
        functions =
          [
            {
              SC.func_name = "setup";
              params = [ ("o", SC.Ptr (SC.Struct_ref "s")); ("flag", SC.Int) ];
              locals = [];
              body =
                [
                  SC.If
                    ( SC.Var "flag",
                      [ SC.Field_write (SC.Var "o", "cb", SC.Addr_of_func "h") ],
                      [] );
                ];
            };
          ];
        initializers = [];
      };
    ]
  in
  let census = SA.run corpus in
  Alcotest.(check int) "found under If" 1 census.SA.member_count

let test_calibrated_census () =
  let corpus = Sempatch.Corpus.generate ~seed:1L () in
  let census = SA.run corpus in
  Alcotest.(check int) "1285 members" 1285 census.SA.member_count;
  Alcotest.(check int) "504 types" 504 census.SA.type_count;
  Alcotest.(check int) "229 multi" 229 census.SA.multi_member_type_count;
  Alcotest.(check int) "275 lone" 275 census.SA.needs_pac

let test_census_seed_invariant () =
  (* the headline counts are structural, not sampling artifacts *)
  let c1 = SA.run (Sempatch.Corpus.generate ~seed:1L ()) in
  let c2 = SA.run (Sempatch.Corpus.generate ~seed:999L ()) in
  Alcotest.(check int) "members stable" c1.SA.member_count c2.SA.member_count;
  Alcotest.(check int) "types stable" c1.SA.type_count c2.SA.type_count

let test_rewrite_completeness () =
  let corpus = Sempatch.Corpus.generate ~seed:5L () in
  let census = SA.run corpus in
  let protected = SA.protected_members census in
  Alcotest.(check int) "protects the 275 lone members" 275 (List.length protected);
  let rewritten, stats = SR.apply corpus ~protected in
  Alcotest.(check int) "one write per lone member" 275 stats.SR.writes_rewritten;
  Alcotest.(check int) "residual accesses" 0 (SR.residual_accesses rewritten ~protected);
  (* idempotence: applying again changes nothing *)
  let _, stats2 = SR.apply rewritten ~protected in
  Alcotest.(check int) "second pass writes nothing" 0 stats2.SR.writes_rewritten;
  Alcotest.(check int) "second pass reads nothing" 0 stats2.SR.reads_rewritten

let test_rewrite_hand_corpus_reads () =
  let census = SA.run hand_corpus in
  let protected = SA.protected_members census in
  let rewritten, stats = SR.apply hand_corpus ~protected in
  Alcotest.(check int) "one read rewritten" 1 stats.SR.reads_rewritten;
  Alcotest.(check int) "one write rewritten" 1 stats.SR.writes_rewritten;
  Alcotest.(check int) "residual" 0 (SR.residual_accesses rewritten ~protected)

let test_typing () =
  let env = [ ("p", SC.Ptr (SC.Struct_ref "mydev")) ] in
  (match SC.expr_type ~corpus:hand_corpus ~env (SC.Field_read (SC.Var "p", "irq_handler")) with
  | Some (SC.Func_ptr "irq") -> ()
  | _ -> Alcotest.fail "member type lookup");
  (match SC.expr_type ~corpus:hand_corpus ~env (SC.Field_read (SC.Var "p", "count")) with
  | Some SC.Int -> ()
  | _ -> Alcotest.fail "int member");
  match SC.expr_type ~corpus:hand_corpus ~env (SC.Var "unknown") with
  | None -> ()
  | Some _ -> Alcotest.fail "unknown var must not type"

let suite =
  [
    Alcotest.test_case "census on hand-written corpus" `Quick test_census_hand_corpus;
    Alcotest.test_case "conditional assignments found" `Quick
      test_conditional_assignments_found;
    Alcotest.test_case "calibrated corpus reproduces 1285/504/229" `Quick
      test_calibrated_census;
    Alcotest.test_case "census is seed-invariant" `Quick test_census_seed_invariant;
    Alcotest.test_case "rewrite completeness + idempotence" `Quick
      test_rewrite_completeness;
    Alcotest.test_case "rewrite covers reads and writes" `Quick
      test_rewrite_hand_corpus_reads;
    Alcotest.test_case "expression typing" `Quick test_typing;
  ]

(* Ops-structure conversion: after the pass, the census must find no
   multi-pointer types — only the 275 lone pointers remain. *)

let test_ops_conversion () =
  let corpus = Sempatch.Corpus.generate ~seed:8L () in
  let census = SA.run corpus in
  let converted, stats = Sempatch.Convert.convert_multi corpus census in
  Alcotest.(check int) "229 types converted" 229 stats.Sempatch.Convert.types_converted;
  Alcotest.(check int) "one ops struct each" 229 stats.Sempatch.Convert.ops_structs_created;
  Alcotest.(check int) "all multi-member writes collapsed" 1010
    stats.Sempatch.Convert.assignments_collapsed;
  let census' = SA.run converted in
  Alcotest.(check int) "no multi types remain" 0
    census'.SA.multi_member_type_count;
  Alcotest.(check int) "lone pointers unchanged" 275 census'.SA.member_count;
  (* the new const ops instances exist and are rodata-destined *)
  let const_inits =
    List.concat_map
      (fun (f : SC.file) -> List.filter (fun i -> i.SC.is_const) f.SC.initializers)
      converted
  in
  Alcotest.(check bool) "default ops instances emitted" true
    (List.length const_inits >= 229)

let test_ops_conversion_hand_corpus () =
  (* a two-pointer type converts; the reader is redirected via the ops
     accessor *)
  let two_ptr =
    {
      SC.struct_name = "blkdev";
      fields =
        [
          { SC.field_name = "submit"; field_type = SC.Func_ptr "bio" };
          { SC.field_name = "flush"; field_type = SC.Func_ptr "bio" };
          { SC.field_name = "queue_depth"; field_type = SC.Int };
        ];
    }
  in
  let probe =
    {
      SC.func_name = "blkdev_probe";
      params = [ ("d", SC.Ptr (SC.Struct_ref "blkdev")) ];
      locals = [];
      body =
        [
          SC.Field_write (SC.Var "d", "submit", SC.Addr_of_func "blk_submit");
          SC.Field_write (SC.Var "d", "flush", SC.Addr_of_func "blk_flush");
        ];
    }
  in
  let user =
    {
      SC.func_name = "blkdev_io";
      params = [ ("d", SC.Ptr (SC.Struct_ref "blkdev")) ];
      locals = [];
      body = [ SC.Expr_stmt (SC.Indirect_call (SC.Field_read (SC.Var "d", "submit"), [])) ];
    }
  in
  let corpus =
    [ { SC.file_name = "blk.c"; structs = [ two_ptr ]; functions = [ probe; user ];
        initializers = [] } ]
  in
  let census = SA.run corpus in
  let converted, stats = Sempatch.Convert.convert_multi corpus census in
  Alcotest.(check int) "one type" 1 stats.Sempatch.Convert.types_converted;
  Alcotest.(check int) "two writes collapsed" 2 stats.Sempatch.Convert.assignments_collapsed;
  Alcotest.(check int) "one read redirected" 1 stats.Sempatch.Convert.reads_redirected;
  (* the probe now performs exactly one protected ops store *)
  let probe' =
    List.find
      (fun (f : SC.func_def) -> f.SC.func_name = "blkdev_probe")
      (List.concat_map (fun (f : SC.file) -> f.SC.functions) converted)
  in
  (match probe'.SC.body with
  | [ SC.Set_accessor ("blkdev", "ops", SC.Var "d", SC.Addr_of_static ("blkdev_default_ops", "blkdev_ops")) ] -> ()
  | _ -> Alcotest.fail "probe body not collapsed to a single ops store");
  (* the converted type exposes ops and no raw fptrs *)
  match Sempatch.Cast.find_struct converted "blkdev" with
  | Some sd ->
      Alcotest.(check (list string))
        "fields after conversion"
        [ "queue_depth"; "ops" ]
        (List.map (fun f -> f.SC.field_name) sd.SC.fields)
  | None -> Alcotest.fail "blkdev vanished"

let suite =
  suite
  @ [
      Alcotest.test_case "ops conversion on calibrated corpus" `Quick test_ops_conversion;
      Alcotest.test_case "ops conversion mechanics" `Quick test_ops_conversion_hand_corpus;
    ]
