(* Assembler tests: label resolution, function layout, imports, the
   mov_addr pseudo-sequence and error behaviour. *)

open Aarch64

let base = 0xffff000000100000L

let test_label_resolution () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"f"
    [
      Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
      Asm.label "mid";
      Asm.ins (Insn.Movz (Insn.R 0, 2, 0));
      Asm.b_to "mid";
    ];
  let layout = Asm.assemble prog ~base in
  Alcotest.(check int) "3 instructions" 3 (Array.length layout.Asm.code);
  let _, branch = layout.Asm.code.(2) in
  match branch with
  | Insn.B target -> Alcotest.(check int64) "branch to mid" (Int64.add base 4L) target
  | other -> Alcotest.failf "expected B, got %s" (Insn.to_string other)

let test_local_labels_scoped () =
  (* two functions may use the same local label name *)
  let prog = Asm.create () in
  let body = [ Asm.label "loop"; Asm.ins (Insn.Sub_imm (Insn.R 0, Insn.R 0, 1)); Asm.cbnz_to (Insn.R 0) "loop" ] in
  Asm.add_function prog ~name:"a" body;
  Asm.add_function prog ~name:"b" body;
  let layout = Asm.assemble prog ~base in
  (* each cbnz must target its own function's loop label *)
  let _, cbnz_a = layout.Asm.code.(1) in
  let _, cbnz_b = layout.Asm.code.(3) in
  match (cbnz_a, cbnz_b) with
  | Insn.Cbnz (_, ta), Insn.Cbnz (_, tb) ->
      Alcotest.(check int64) "a targets a.loop" base ta;
      Alcotest.(check int64) "b targets b.loop" (Int64.add base 8L) tb
  | _ -> Alcotest.fail "layout mismatch"

let test_cross_function_call () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"callee" [ Asm.ins Insn.Ret ];
  Asm.add_function prog ~name:"caller" [ Asm.bl_to "callee"; Asm.ins Insn.Ret ];
  let layout = Asm.assemble prog ~base in
  Alcotest.(check int64) "callee symbol" base (Asm.symbol layout "callee");
  let _, bl = layout.Asm.code.(1) in
  match bl with
  | Insn.Bl target -> Alcotest.(check int64) "bl resolves to callee" base target
  | other -> Alcotest.failf "expected BL, got %s" (Insn.to_string other)

let test_undefined_label () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"broken" [ Asm.b_to "nowhere" ];
  Alcotest.check_raises "undefined label" (Asm.Undefined_label "nowhere") (fun () ->
      ignore (Asm.assemble prog ~base))

let test_duplicate_function () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"f" [ Asm.ins Insn.Ret ];
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Asm.add_function: duplicate f") (fun () ->
      Asm.add_function prog ~name:"f" [ Asm.ins Insn.Ret ])

let test_extra_symbols () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"m" [ Asm.bl_to "kernel_export"; Asm.ins Insn.Ret ];
  let layout = Asm.assemble prog ~base ~extra_symbols:[ ("kernel_export", 0xffff000000200000L) ] in
  let _, bl = layout.Asm.code.(0) in
  match bl with
  | Insn.Bl t -> Alcotest.(check int64) "import resolved" 0xffff000000200000L t
  | other -> Alcotest.failf "expected BL, got %s" (Insn.to_string other)

let test_local_shadows_import () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"helper" [ Asm.ins Insn.Ret ];
  Asm.add_function prog ~name:"m" [ Asm.bl_to "helper"; Asm.ins Insn.Ret ];
  let layout = Asm.assemble prog ~base ~extra_symbols:[ ("helper", 0xffff0000ffff0000L) ] in
  let _, bl = layout.Asm.code.(1) in
  match bl with
  | Insn.Bl t -> Alcotest.(check int64) "program symbol wins" base t
  | other -> Alcotest.failf "expected BL, got %s" (Insn.to_string other)

let test_mov_addr_materializes () =
  let cpu = Env.fresh_cpu () in
  let prog = Asm.create () in
  Asm.add_function prog ~name:"get_addr" (Asm.mov_addr (Insn.R 0) "far" @ [ Asm.ins Insn.Ret ]);
  Asm.add_function prog ~name:"far" [ Asm.ins Insn.Ret ];
  let layout = Env.load_program cpu prog in
  Env.expect_return cpu layout "get_addr";
  Alcotest.(check int64) "full 64-bit address" (Asm.symbol layout "far")
    (Cpu.reg cpu (Insn.R 0))

let test_instruction_count () =
  let items =
    [ Asm.label "a"; Asm.ins Insn.Nop; Asm.b_to "a"; Asm.label "b"; Asm.ins Insn.Ret ]
  in
  Alcotest.(check int) "labels are zero-size" 3 (Asm.instruction_count items)

let test_disassemble_contains_symbols () =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"entry" [ Asm.ins Insn.Nop ];
  let layout = Asm.assemble prog ~base in
  let text = Asm.disassemble layout in
  Alcotest.(check bool) "symbol name present" true
    (String.length text > 6 && String.sub text 0 6 = "entry:")

let suite =
  [
    Alcotest.test_case "label resolution" `Quick test_label_resolution;
    Alcotest.test_case "local labels are function-scoped" `Quick test_local_labels_scoped;
    Alcotest.test_case "cross-function call" `Quick test_cross_function_call;
    Alcotest.test_case "undefined label raises" `Quick test_undefined_label;
    Alcotest.test_case "duplicate function rejected" `Quick test_duplicate_function;
    Alcotest.test_case "imports via extra_symbols" `Quick test_extra_symbols;
    Alcotest.test_case "program symbols shadow imports" `Quick test_local_shadows_import;
    Alcotest.test_case "mov_addr materializes 64-bit address" `Quick
      test_mov_addr_materializes;
    Alcotest.test_case "instruction_count ignores labels" `Quick test_instruction_count;
    Alcotest.test_case "disassembly shows symbols" `Quick test_disassemble_contains_symbols;
  ]
