(* Preemptive multitasking on the protected kernel: three user tasks in
   round-robin, each computing and making syscalls, every timer-driven
   context switch going through the instrumented cpu_switch_to with
   signed stored stack pointers (Section 5.2).

   Run with: dune exec examples/multitask.exe *)

open Aarch64
module C = Camouflage
module K = Kernel

(* Each task hashes in a loop, writes a progress marker to the shared
   file and exits with its accumulated value. *)
let worker_program ~rounds =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"worker"
    [
      (* x19 = fd from open *)
      Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_open);
      Asm.ins (Insn.Mov (Insn.R 19, Insn.R 0));
      Asm.ins (Insn.Movz (Insn.R 20, rounds, 0));
      Asm.ins (Insn.Movz (Insn.R 21, 0, 0));
      Asm.label "round";
      (* compute: a small hash loop *)
      Asm.ins (Insn.Movz (Insn.R 9, 400, 0));
      Asm.label "hash";
      Asm.ins (Insn.Lsl_imm (Insn.R 10, Insn.R 21, 5));
      Asm.ins (Insn.Add_reg (Insn.R 21, Insn.R 10, Insn.R 21));
      Asm.ins (Insn.Add_reg (Insn.R 21, Insn.R 21, Insn.R 9));
      Asm.ins (Insn.Sub_imm (Insn.R 9, Insn.R 9, 1));
      Asm.cbnz_to (Insn.R 9) "hash";
      (* write 8 bytes of progress *)
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 19));
      Asm.ins (Insn.Movz (Insn.R 1, 0, 0));
      Asm.ins (Insn.Movk (Insn.R 1, 0x0080, 16));
      Asm.ins (Insn.Movz (Insn.R 2, 8, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_write);
      Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
      Asm.cbnz_to (Insn.R 20) "round";
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 21));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  prog

let () =
  let sys = K.System.boot ~config:C.Config.full ~seed:777L () in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base ~bytes:0x4000
    Mmu.rw;
  let layout = K.System.map_user_program sys (worker_program ~rounds:5) in
  let entry = Asm.symbol layout "worker" in
  let tasks = List.init 3 (fun _ -> K.System.spawn_user_task sys ~entry) in
  Printf.printf "spawned %d worker tasks (pids %s)\n" (List.length tasks)
    (String.concat ", " (List.map (fun t -> string_of_int t.K.System.pid) tasks));
  let before = Cpu.cycles (K.System.cpu sys) in
  let stats = K.System.run_scheduled ~quantum:1500 sys ~tasks in
  let elapsed = Int64.sub (Cpu.cycles (K.System.cpu sys)) before in
  Printf.printf "\nscheduler: %d slices, %d timer preemptions, %Ld cycles total\n"
    stats.K.System.slices stats.K.System.preemptions elapsed;
  List.iter
    (fun (pid, exit) ->
      Printf.printf "  pid %d: %s\n" pid
        (match exit with
        | K.System.Exited v -> Printf.sprintf "exited with 0x%Lx" v
        | K.System.User_killed m -> "killed: " ^ m
        | K.System.User_panicked m -> "panic: " ^ m
        | K.System.Watchdog_expired _ as e -> K.System.user_exit_to_string e))
    stats.K.System.exits;
  Printf.printf "\nEvery preemption ran the instrumented cpu_switch_to: the stored\n";
  Printf.printf "stack pointers of scheduled-out tasks carry PACs bound to their\n";
  Printf.printf "task structures, and each resume authenticated them (Section 5.2).\n"
