(* The hardened syscall ABI of the paper's future work (Section 8):
   cross-privilege signed pointers.

   A user thread signs its buffer pointer with its own DA key before
   passing it to read(); the kernel authenticates the pointer through
   the audited uaccess routine before touching it. A corrupted or
   unsigned pointer argument — the classic confused-deputy vector — is
   rejected at the privilege boundary instead of being dereferenced.

   Run with: dune exec examples/secure_abi.exe *)

open Aarch64
module C = Camouflage
module K = Kernel

let program ~sign_pointer =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    ([
       Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
       Asm.ins (Insn.Svc K.Kbuild.sys_open);
       Asm.ins (Insn.Mov (Insn.R 19, Insn.R 0));
       Asm.ins (Insn.Movz (Insn.R 1, 0, 0));
       Asm.ins (Insn.Movk (Insn.R 1, 0x0080, 16));
       (* x1 = user buffer *)
     ]
    @ (if sign_pointer then
         [
           (* PACDA under the thread's own key, ABI modifier 0 *)
           Asm.ins (Insn.Movz (Insn.R 9, 0, 0));
           Asm.ins (Insn.Pac (Sysreg.DA, Insn.R 1, Insn.R 9));
         ]
       else [])
    @ [
        Asm.ins (Insn.Mov (Insn.R 0, Insn.R 19));
        Asm.ins (Insn.Movz (Insn.R 2, 32, 0));
        Asm.ins (Insn.Svc K.Kbuild.sys_read_secure);
        Asm.ins (Insn.Svc K.Kbuild.sys_exit);
      ]);
  prog

let scenario label ~sign_pointer =
  Printf.printf "\n--- %s ---\n" label;
  let sys = K.System.boot ~config:C.Config.full ~seed:808L () in
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base ~bytes:4096
    Mmu.rw;
  let layout = K.System.map_user_program sys (program ~sign_pointer) in
  (match K.System.run_user sys ~entry:(Asm.symbol layout "main") with
  | K.System.Exited v -> Printf.printf "read_secure returned %Ld\n" v
  | K.System.User_killed m -> Printf.printf "process killed: %s\n" m
  | K.System.User_panicked m -> Printf.printf "panic: %s\n" m
  | K.System.Watchdog_expired _ as e ->
      Printf.printf "%s\n" (K.System.user_exit_to_string e));
  List.iter (fun l -> Printf.printf "  log: %s\n" l) (K.System.log sys)

let () =
  Printf.printf
    "sys_read_secure requires the buffer pointer to carry the caller's DA\n\
     PAC; the kernel authenticates it in the audited uaccess routine\n\
     using the caller's own key — kernel keys never touch user data.\n";
  scenario "well-behaved caller (signed pointer)" ~sign_pointer:true;
  scenario "legacy/forged caller (raw pointer)" ~sign_pointer:false
