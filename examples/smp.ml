(* SMP: a four-core machine running eight user tasks. Every core has its
   own PAuth key registers, so each one executes the XOM key setter on
   its own kernel entries (Section 4.1 made per-CPU); the per-CPU areas,
   run queues and Reschedule IPIs mirror the Linux arm64 shapes.

   Run with: dune exec examples/smp.exe *)

module K = Kernel
module W = Workloads

let () =
  let cpus = 4 in
  let sys = K.System.boot ~seed:2026L ~cpus () in
  Printf.printf "booted %d cores\n" (K.System.cpus sys);
  (match K.System.unkeyed_cpus sys with
  | [] -> Printf.printf "key audit: every core holds the kernel keys\n"
  | bad ->
      List.iter
        (fun (cid, keys) ->
          Printf.printf "key audit: cpu%d missing %d keys!\n" cid (List.length keys))
        bad);
  let layout = K.System.map_user_program sys (W.Smp.throughput_program ~rounds:30) in
  let entry = Aarch64.Asm.symbol layout "throughput" in
  let tasks = List.init 8 (fun _ -> K.System.spawn_user_task sys ~entry) in
  Printf.printf "spawned %d tasks (pids %s)\n" (List.length tasks)
    (String.concat ", " (List.map (fun t -> string_of_int t.K.System.pid) tasks));
  let stats = K.System.run_smp ~quantum:800 sys ~tasks in
  Printf.printf "\n%d slices, %d preemptions, %d IPIs, %d migrations\n"
    stats.K.System.smp_slices stats.K.System.smp_preemptions stats.K.System.smp_ipis
    stats.K.System.smp_migrations;
  Array.iteri
    (fun cid cycles -> Printf.printf "  cpu%d: %Ld cycles\n" cid cycles)
    stats.K.System.per_cpu_cycles;
  Printf.printf "makespan (busiest core): %Ld cycles\n" stats.K.System.makespan;
  List.iter
    (fun (cid, pid, exit) ->
      Printf.printf "  pid %d finished on cpu%d: %s\n" pid cid
        (match exit with
        | K.System.Exited v -> Printf.sprintf "exit 0x%Lx" v
        | K.System.User_killed m -> "killed: " ^ m
        | K.System.User_panicked m -> "panic: " ^ m
        | K.System.Watchdog_expired _ as e -> K.System.user_exit_to_string e))
    stats.K.System.smp_exits;
  Printf.printf "\nEach core installed the kernel keys on its own entries — the key\n";
  Printf.printf "registers are per-CPU state, and the XOM setter is the only code\n";
  Printf.printf "that can write them (Sections 4.1 and 5.1).\n"
