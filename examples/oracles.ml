(* A rogues' gallery for the PAC-state lint: one deliberately vulnerable
   function per diagnostic class, each a miniature of a real attack
   pattern from the literature ("PAC it up" signing oracles, PACTight
   time-of-check/time-of-use spills, Camouflage Section 4.1 key
   hygiene). The example asserts that paclint flags every one — it is
   both a demonstration and a regression fixture; CI runs it and it
   exits non-zero if any oracle goes undetected.

   Run with: dune exec examples/oracles.exe *)

open Aarch64
module L = Paclint.Lint
module D = Paclint.Diag

(* The strictest policy: everything the full Camouflage configuration
   promises, with no audited key-setter range. *)
let policy =
  {
    L.protect_return = true;
    protect_pointers = true;
    sp_modifier = true;
    allowed_key_writer = (fun _ -> false);
  }

let base = 0xffff000000200000L

let at i = Int64.add base (Int64.of_int (4 * i))

let listing insns = List.mapi (fun i insn -> (at i, insn)) insns

let failures = ref 0

let check name insns want =
  let diags = L.lint_insns ~policy (listing insns) in
  let hit = List.exists (fun d -> want d.D.kind) diags in
  Printf.printf "%-28s %s\n" name (if hit then "FLAGGED" else "** MISSED **");
  List.iter (fun d -> Printf.printf "    %s\n" (D.to_string d)) diags;
  if not hit then incr failures

let x n = Insn.R n

(* 1. Signing oracle ("PAC it up" Section 5.2): signing a value the
   attacker controls — here, loaded straight from the writable stack —
   mints valid PACs on demand. *)
let signing_oracle () =
  check "signing-oracle"
    [
      Insn.Ldr (x 0, Insn.Off (Insn.SP, 0));
      Insn.Pac (Sysreg.IB, x 0, x 9);
      Insn.Ret;
    ]
    (function D.Signing_oracle r -> r = x 0 | _ -> false)

(* 2. Unauthenticated indirect branch: the function pointer comes from
   writable memory and is branched to without an AUT. *)
let unauth_branch () =
  check "unauthenticated-branch"
    [ Insn.Ldr (x 8, Insn.Off (x 0, 0)); Insn.Br (x 8) ]
    (function D.Unauthenticated_branch r -> r = x 8 | _ -> false)

(* 2b. The XPAC variant: stripping a PAC and branching sidesteps the
   check just as surely as never authenticating. *)
let stripped_branch () =
  check "stripped-branch"
    [ Insn.Ldr (x 8, Insn.Off (Insn.SP, 0)); Insn.Xpac (x 8); Insn.Blr (x 8); Insn.Ret ]
    (function D.Unauthenticated_branch r -> r = x 8 | _ -> false)

(* 3. TOCTOU spill (PACTight Section 3): authenticate, then spill the
   now-PAC-less pointer back to memory where it can be swapped before
   use. *)
let toctou_spill () =
  check "toctou-spill"
    [
      Insn.Aut (Sysreg.DA, x 0, x 9);
      Insn.Str (x 0, Insn.Off (Insn.SP, 8));
      Insn.Ret;
    ]
    (function D.Toctou_spill r -> r = x 0 | _ -> false)

(* 4. Unprotected return: a classic frame pop reloads LR from the
   (attacker-writable) stack and returns without authenticating it. *)
let unprotected_return () =
  check "unprotected-return"
    [
      Insn.Stp (Insn.fp, Insn.lr, Insn.Pre (Insn.SP, -16));
      Insn.Ldp (Insn.fp, Insn.lr, Insn.Post (Insn.SP, 16));
      Insn.Ret;
    ]
    (function D.Unprotected_return -> true | _ -> false)

(* 5. Modifier SP mismatch (Camouflage Section 4.2): signing at one
   stack depth and authenticating at another means the PAC check is
   performed against the wrong modifier — a frame-shift gadget. *)
let sp_mismatch () =
  check "modifier-sp-mismatch"
    [
      Insn.Mov (x 9, Insn.SP);
      Insn.Pac (Sysreg.IB, Insn.lr, x 9);
      Insn.Sub_imm (Insn.SP, Insn.SP, 32);
      Insn.Mov (x 9, Insn.SP);
      Insn.Aut (Sysreg.IB, Insn.lr, x 9);
      Insn.Ret;
    ]
    (function D.Modifier_sp_mismatch d -> d = -32 | _ -> false)

(* 6. Key-register read (Camouflage Section 4.1): nothing outside the
   boot path may observe key material. *)
let key_read () =
  check "key-register-read"
    [ Insn.Mrs (x 0, Sysreg.APIBKeyHi_EL1); Insn.Ret ]
    (function D.Key_register_read _ -> true | _ -> false)

(* 7. Key-register write outside the audited setter. *)
let key_write () =
  check "key-register-write"
    [ Insn.Msr (Sysreg.APIBKeyLo_EL1, x 0); Insn.Ret ]
    (function D.Key_register_write _ -> true | _ -> false)

(* 8. SCTLR write: flipping the EnIA/EnIB enable bits turns PAuth off
   wholesale. *)
let sctlr_write () =
  check "sctlr-write"
    [ Insn.Msr (Sysreg.SCTLR_EL1, x 0); Insn.Ret ]
    (function D.Sctlr_write -> true | _ -> false)

(* 9. Reserved-register clobber: a raw body that writes x15 would fight
   the instrumentation over its scratch register. This one goes through
   [check_body] — the rule applies to pre-wrap bodies, not placed
   text. *)
let reserved_clobber () =
  let body = [ Asm.ins (Insn.Movz (x 15, 0xdead, 0)); Asm.ins Insn.Ret ] in
  let diags = L.check_body body in
  let hit =
    List.exists
      (fun d -> match d.D.kind with D.Reserved_clobber r -> r = x 15 | _ -> false)
      diags
  in
  Printf.printf "%-28s %s\n" "reserved-clobber" (if hit then "FLAGGED" else "** MISSED **");
  List.iter (fun d -> Printf.printf "    %s\n" (D.to_string d)) diags;
  if not hit then incr failures

let () =
  Printf.printf "paclint oracle fixtures (one per diagnostic class):\n\n";
  signing_oracle ();
  unauth_branch ();
  stripped_branch ();
  toctou_spill ();
  unprotected_return ();
  sp_mismatch ();
  key_read ();
  key_write ();
  sctlr_write ();
  reserved_clobber ();
  Printf.printf "\n%s\n"
    (if !failures = 0 then "all oracles detected"
     else Printf.sprintf "%d oracle(s) went undetected" !failures);
  exit (if !failures = 0 then 0 else 1)
