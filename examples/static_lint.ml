(* Interprocedural static lint: findings a per-function lint cannot see.

   Two fixtures from Kelf.Samples.oracle, built with the real PARTS
   instrumentation:

   - cap_sign signs whatever its caller passes; cap_make feeds it a word
     loaded from writable memory. Each function alone is clean — the
     signing oracle exists only on the call edge.
   - both prologues sign LR under the same (key, modifier-class), a
     cross-function substitution pair only a whole-image census counts.

   This example runs the per-function region lint first (it must stay
   silent), then the whole-module analysis (it must flag both), and
   exits non-zero if either side misbehaves — CI runs it as living
   documentation of why the analyzer is interprocedural. *)

module C = Camouflage
module K = Kernel
module D = Paclint.Diag

let fail fmt = Printf.ksprintf (fun m -> print_endline ("FAIL: " ^ m); exit 1) fmt

let () =
  let config = { C.Config.backward_only with scheme = C.Modifier.Parts 0x7357L } in
  let obj = Kelf.Samples.oracle config in
  Printf.printf "fixture: %s under %s\n\n" obj.Kelf.Object_file.obj_name
    (C.Config.name config);

  (* 1. The intraprocedural view: lint each function as its own region,
     the way the pre-PR-7 gate did. Entry states are all-unknown, so
     cap_sign's PAC of x0 is just "signing an argument" and the
     prologues are two unrelated sign sites. *)
  let policy = C.Verifier.policy config in
  let report = K.Kbuild.lint_module config obj in
  let cg = report.K.Kbuild.summary.Paclint.Summary.cg in
  let intra =
    Array.to_list cg.Paclint.Callgraph.fns
    |> List.concat_map (fun (fn : Paclint.Callgraph.fn) ->
           Paclint.Lint.lint_insns ~policy
             ~entries:[ fn.Paclint.Callgraph.entry ]
             (Array.to_list (Paclint.Callgraph.code_of cg
                               (Option.get (Paclint.Callgraph.fn_index cg
                                              fn.Paclint.Callgraph.entry)))))
    |> List.filter (fun d -> D.severity d <> D.Info)
  in
  Printf.printf "per-function lint:  %d findings above Info\n" (List.length intra);
  if intra <> [] then
    fail "the fixture should be invisible to per-function analysis";

  (* 2. The whole-module view. *)
  let oracle =
    List.exists
      (fun d -> match d.D.kind with D.Signing_oracle _ -> true | _ -> false)
      report.K.Kbuild.diags
  in
  let collisions =
    List.filter_map
      (fun d -> match d.D.kind with D.Modifier_collision c -> Some c | _ -> None)
      report.K.Kbuild.diags
  in
  Printf.printf "whole-module lint:  %d diagnostics\n\n" (List.length report.K.Kbuild.diags);
  List.iter (fun d -> print_endline ("  " ^ D.to_string d)) report.K.Kbuild.diags;
  if not oracle then
    fail "cross-function signing oracle went unflagged (cap_make -> cap_sign)";
  (match collisions with
  | [] -> fail "cross-function modifier collision went unflagged (the two prologues)"
  | c :: _ ->
      if c.D.pairs < 1 then fail "collision class reports no substitution pair");

  print_newline ();
  print_string (Paclint.Census.table report.K.Kbuild.census);
  Printf.printf
    "\nboth interprocedural findings present; per-function lint saw neither.\n"
