(* Quickstart: boot a Camouflage-protected kernel, run a user program
   that makes system calls, then watch the protection stop a kernel
   exploit.

   Run with: dune exec examples/quickstart.exe *)

open Aarch64
module C = Camouflage
module K = Kernel

let () =
  (* 1. Boot with full protection: backward-edge CFI (Camouflage
        modifier), forward-edge CFI and DFI, XOM-managed keys. *)
  let sys = K.System.boot ~config:C.Config.full ~seed:2026L () in
  Printf.printf "booted: %s\n" (C.Config.name (K.System.config sys));

  (* 2. A user program: print a greeting to stdout (the console device
        behind fd 1), then exit with its pid. *)
  K.Kmem.blit_string (K.System.cpu sys) K.Layout.user_data_base
    "hello from EL0 via a DFI-protected console!\n";
  let prog = Asm.create () in
  Asm.add_function prog ~name:"main"
    [
      (* write(1, user_data_base, 44) *)
      Asm.ins (Insn.Movz (Insn.R 0, 1, 0));
      Asm.ins (Insn.Movz (Insn.R 1, 0, 0));
      Asm.ins (Insn.Movk (Insn.R 1, 0x0080, 16));
      Asm.ins (Insn.Movz (Insn.R 2, 44, 0));
      Asm.ins (Insn.Svc K.Kbuild.sys_write);
      Asm.ins (Insn.Svc K.Kbuild.sys_getpid);
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  K.Kmem.map_user_region (K.System.cpu sys) ~base:K.Layout.user_data_base ~bytes:4096
    Mmu.rw;
  let layout = K.System.map_user_program sys prog in
  (match K.System.run_user sys ~entry:(Asm.symbol layout "main") with
  | K.System.Exited v -> Printf.printf "user program exited with %Ld\n" v
  | K.System.User_killed m -> Printf.printf "user program killed: %s\n" m
  | K.System.User_panicked m -> Printf.printf "panic: %s\n" m
  | K.System.Watchdog_expired _ as e ->
      Printf.printf "%s\n" (K.System.user_exit_to_string e));
  Printf.printf "console: %s" (K.System.console_output sys);

  (* 3. The kernel has a planted memory-corruption bug (the paper's
        threat model). Use it to hijack a file's operations table. *)
  Printf.printf "\nlaunching f_ops hijack through the planted kernel bug...\n";
  let outcome = Attacks.Fptr_hijack.run sys in
  Printf.printf "attack outcome: %s\n" (Attacks.Fptr_hijack.outcome_to_string outcome);

  (* 4. The kernel log shows what the protection recorded. *)
  Printf.printf "\nkernel log:\n";
  List.iter (fun line -> Printf.printf "  %s\n" line) (K.System.log sys);
  Printf.printf "\ncycles simulated: %Ld; instructions retired: %Ld\n"
    (Cpu.cycles (K.System.cpu sys))
    (Cpu.insns_retired (K.System.cpu sys))
