(** Decoded-instruction cache + micro-TLB for the interpreter hot path.

    A host-speed optimization, not a modeled structure: caching changes
    neither guest-visible state, nor cycle charges, nor telemetry
    counters, nor fault kinds — cached and uncached execution are
    bit-identical (the differential harness in [test/test_icache.ml]
    enforces this).

    Entries are keyed by (EL, VA page) because decoded instructions
    embed absolute PC-relative targets, and each entry memoizes the
    combined two-stage permission triple so it also serves data-side
    translations. Coherence: a {!Mem} write hook drops entries shadowed
    by any store (guest, host or fault-injector), the {!Mmu} generation
    counter flushes on any translation-table change, and {!flush} is
    issued explicitly on MMU-control/CONTEXTIDR system-register writes.
    PAuth key-register writes do not flush — keys affect execution, not
    decode or translation, and the XOM setter rewrites them on every
    kernel entry. *)

type t

type fetch_error =
  | Fetch_fault of Mmu.fault  (** translation or permission fault *)
  | Fetch_undefined of int32  (** the word at PC does not decode *)

(** [create ?enabled ~mem ~mmu ()] builds a cache over one memory /
    translation-table pair and registers its store-invalidation hook on
    [mem]. One instance may be shared by every core of a {!Machine}:
    entries depend only on (EL, VA page) and the shared tables, never
    on per-core state. Disabled caches pass every request through. *)
val create : ?enabled:bool -> mem:Mem.t -> mmu:Mmu.t -> unit -> t

val enabled : t -> bool

(** [set_enabled t on] — toggling in either direction flushes. *)
val set_enabled : t -> bool -> unit

(** [flush t] drops every entry (the TTBR/SCTLR/ASID-write path). *)
val flush : t -> unit

(** [fetch t ~el pc] — the decoded instruction at [pc], from the cache
    when possible. Misses fall through to the real two-stage walk and
    [Encode.decode], so faults keep their exact kind; decode failures
    and misaligned PCs are never cached. EL2 always bypasses. *)
val fetch : t -> el:El.t -> int64 -> (Insn.t, fetch_error) result

(** Raised by {!fetch_exn} instead of returning [Error]. *)
exception Fetch_stop of fetch_error

(** [fetch_exn] — same as {!fetch} but raises {!Fetch_stop} on failure;
    the interpreter's fast loop uses it to keep the hit path free of
    [result] allocations. *)
val fetch_exn : t -> el:El.t -> int64 -> Insn.t

(** [translate t ~el ~access va] — micro-TLB front end for
    [Mmu.translate]: hits resolve from the memoized permission triple,
    misses and denials take the real walk. Bit-identical results,
    including fault kinds. *)
val translate : t -> el:El.t -> access:Mmu.access -> int64 -> (int64, Mmu.fault) result

(** Raised by {!translate_exn} instead of returning [Error]. *)
exception Translate_fault of Mmu.fault

(** [translate_exn] — same as {!translate} but raises {!Translate_fault}
    on a fault; the interpreter's load/store path uses it to avoid a
    [result] allocation per memory access. *)
val translate_exn : t -> el:El.t -> access:Mmu.access -> int64 -> int64

(** [read64_exn] / [write64_exn] — whole-access fast paths: on a
    micro-TLB hit the access resolves directly against the memoized
    frame bytes (the host-address trick of a real TLB); page-straddling
    offsets and misses fall back to translate-then-{!Mem}, and stores
    always run the registered write hooks. Raise {!Translate_fault}
    exactly like {!translate_exn}. *)
val read64_exn : t -> el:El.t -> int64 -> int64

val write64_exn : t -> el:El.t -> int64 -> int64 -> unit

(** [data_page t ~el ~access va] — the frame bytes and frame index
    backing the page of [va], for the trace tier's per-op page caches.
    Frame byte pointers are stable ({!Mem.frame_bytes}); the result
    stays valid while the MMU generation does not move. Writers that
    mutate the bytes directly must follow with {!Mem.notify_store}.
    [None] when translation is disabled, at EL2, or denied. *)
val data_page :
  t -> el:El.t -> access:Mmu.access -> int64 -> (Bytes.t * int) option

(** Host-side effectiveness counters (not guest-visible). *)
type stats = {
  fetch_hits : int;
  fetch_misses : int;
  fills : int;  (** lines decoded into an installed page entry *)
  tlb_hits : int;
  tlb_misses : int;
  invalidations : int;  (** entries dropped by the store hook *)
  flushes : int;
}

val stats : t -> stats
