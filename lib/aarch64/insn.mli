(** The model-ISA instruction set.

    A register-level subset of A64 sufficient to express the paper's
    instrumentation (Listings 1-4), the XOM key setter, syscall
    entry/exit, context switching, and the attack payloads. Instructions
    are held in memory as 32-bit words in a self-consistent encoding
    (see {!Encode}); this AST is what the interpreter executes and the
    static verifier inspects. *)

(** General-purpose register operand. [R n] for X0..X30; [SP] is the
    banked stack pointer; [XZR] reads as zero and discards writes. *)
type reg = R of int | SP | XZR

val fp : reg
(** X29, the frame pointer. *)

val lr : reg
(** X30, the link register. *)

val ip0 : reg
(** X16, first intra-procedure-call scratch register. *)

val ip1 : reg
(** X17, second intra-procedure-call scratch register. *)

(** Condition codes for [Bcond] (driven by [Subs]/[Cmp]). *)
type cond = Eq | Ne | Lt | Ge | Gt | Le

(** Addressing modes: signed byte offset, pre-indexed (writeback before
    access: [\[xn, #off\]!]) and post-indexed ([\[xn\], #off]). *)
type amode = Off of reg * int | Pre of reg * int | Post of reg * int

type t =
  (* Data processing *)
  | Movz of reg * int * int  (** rd, imm16, left shift in \{0,16,32,48\} *)
  | Movk of reg * int * int  (** keep other bits *)
  | Mov of reg * reg  (** register move; legal to/from SP *)
  | Add_imm of reg * reg * int
  | Sub_imm of reg * reg * int
  | Add_reg of reg * reg * reg
  | Sub_reg of reg * reg * reg
  | Subs_reg of reg * reg * reg  (** sets NZCV; [Subs_reg XZR] is CMP *)
  | Subs_imm of reg * reg * int
  | And_reg of reg * reg * reg
  | Orr_reg of reg * reg * reg
  | Eor_reg of reg * reg * reg
  | Lsl_imm of reg * reg * int
  | Lsr_imm of reg * reg * int
  | Bfi of reg * reg * int * int  (** rd, rn, lsb, width: bit-field insert *)
  | Ubfx of reg * reg * int * int  (** rd, rn, lsb, width: bit-field extract *)
  | Adr of reg * int64  (** PC-relative address materialization *)
  (* Memory *)
  | Ldr of reg * amode
  | Str of reg * amode
  | Ldrb of reg * amode
  | Strb of reg * amode
  | Ldp of reg * reg * amode
  | Stp of reg * reg * amode
  (* Branches *)
  | B of int64
  | Bl of int64
  | Br of reg
  | Blr of reg
  | Ret
  | Cbz of reg * int64
  | Cbnz of reg * int64
  | Bcond of cond * int64
  (* Pointer authentication *)
  | Pac of Sysreg.pauth_key * reg * reg  (** sign rd with modifier rm *)
  | Aut of Sysreg.pauth_key * reg * reg  (** authenticate rd with modifier rm *)
  | Pac1716 of Sysreg.pauth_key  (** hint-space: sign X17 with modifier X16 *)
  | Aut1716 of Sysreg.pauth_key
  | Xpac of reg  (** strip the PAC *)
  | Pacga of reg * reg * reg  (** rd := generic 32-bit MAC of rn under rm *)
  | Blra of Sysreg.pauth_key * reg * reg  (** authenticated BLR (BLRAA/BLRAB) *)
  | Bra of Sysreg.pauth_key * reg * reg  (** authenticated BR *)
  | Reta of Sysreg.pauth_key  (** authenticated RET, modifier SP *)
  (* System *)
  | Mrs of reg * Sysreg.t
  | Msr of Sysreg.t * reg
  | Svc of int
  | Eret
  | Isb
  | Nop
  | Brk of int
  | Hlt of int  (** model halt; the kernel panic primitive *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [reg_name r] — assembly spelling ([x7], [fp], [lr], [sp], [xzr]). *)
val reg_name : reg -> string

(** [is_pauth i] — true for the PAC*/AUT*/XPAC/PACGA family and the
    authenticated branches. *)
val is_pauth : t -> bool

(** [reads_sysreg i] is [Some r] when [i] reads system register [r]. *)
val reads_sysreg : t -> Sysreg.t option

(** [writes_sysreg i] is [Some r] when [i] writes system register [r]. *)
val writes_sysreg : t -> Sysreg.t option

(** [defs_uses i] — the general-purpose registers [i] writes and reads,
    in operand order. [XZR] appears literally when an operand names it;
    consumers decide whether to discard it. Pre/post-indexed addressing
    makes the base register both a use and a def; [Pac]/[Aut] read and
    rewrite the pointer register; the 1716 hint forms touch X16/X17;
    [Bl]/[Blr]/[Blra] define LR; [Reta] reads LR and SP (its implicit
    modifier). This is the register-access metadata the paclint
    dataflow runs on — a register missing here is invisible to it. *)
val defs_uses : t -> reg list * reg list
