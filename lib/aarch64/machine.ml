type ipi = Reschedule | Stop | Call_function

let ipi_bit = function Reschedule -> 0 | Stop -> 1 | Call_function -> 2
let all_ipis = [ Reschedule; Stop; Call_function ]

let ipi_name = function
  | Reschedule -> "IPI_RESCHEDULE"
  | Stop -> "IPI_STOP"
  | Call_function -> "IPI_CALL_FUNC"

(* GIC-lite software-generated-interrupt state: one pending bitmask per
   core plus, per interrupt id, the set of requesting cores — enough to
   model the doorbell (who rang) without the distributor's full
   priority/affinity machinery. *)
type gic = {
  pending : int array;  (** per-core pending IPI bitmask *)
  senders : int array array;  (** senders.(dst).(bit) = requester bitmask *)
  mutable ipis_sent : int;
}

type t = {
  cores : Cpu.t array;
  mem : Mem.t;
  mmu : Mmu.t;
  icache : Icache.t;
  cipher : Qarma.Block.t;
  gic : gic;
  hub : Telemetry.Hub.t option;
}

let create ?cost ?has_pauth ?user_cfg ?kernel_cfg ?cipher ?trace_depth
    ?(telemetry = false) ?(icache = true) ?tier ~cpus () =
  if cpus < 1 then invalid_arg "Machine.create: cpus";
  let tier =
    match tier with
    | Some tr -> tr
    | None -> if icache then Cpu.Icache else Cpu.Interp
  in
  let cipher = match cipher with Some c -> c | None -> Qarma.Block.create () in
  let mem = Mem.create () in
  let mmu = Mmu.create () in
  (* One shared cache: decoded entries depend only on (EL, VA page) and
     the shared translation tables, so cores can reuse each other's
     fills — and the single-threaded interleaved execution model means
     there is no concurrent access to protect against. Trace caches, by
     contrast, are per-core (blocks capture a core's register file) and
     are created inside Cpu.create. *)
  let ic = Icache.create ~enabled:(tier <> Cpu.Interp) ~mem ~mmu () in
  let cores =
    Array.init cpus (fun id ->
        Cpu.create ?cost ?has_pauth ?user_cfg ?kernel_cfg ~cipher ~mem ~mmu
          ~icache:ic ~tier ?trace_depth ~id ())
  in
  let hub =
    if telemetry then begin
      let hub = Telemetry.Hub.create ~cpus () in
      Array.iteri
        (fun i core -> Cpu.attach_telemetry core (Telemetry.Hub.sink hub i))
        cores;
      Some hub
    end
    else None
  in
  {
    cores;
    mem;
    mmu;
    icache = ic;
    cipher;
    gic =
      {
        pending = Array.make cpus 0;
        senders = Array.init cpus (fun _ -> Array.make 3 0);
        ipis_sent = 0;
      };
    hub;
  }

let cpus t = Array.length t.cores

let core t i =
  if i < 0 || i >= Array.length t.cores then invalid_arg "Machine.core";
  t.cores.(i)

let cores t = Array.to_list t.cores
let telemetry t = t.hub
let boot_core t = t.cores.(0)
let tier t = Cpu.tier t.cores.(0)
let mem t = t.mem
let mmu t = t.mmu
let icache t = t.icache
let cipher t = t.cipher

let send_ipi t ~src ~dst ipi =
  if dst < 0 || dst >= cpus t then invalid_arg "Machine.send_ipi: dst";
  if src < 0 || src >= cpus t then invalid_arg "Machine.send_ipi: src";
  let bit = ipi_bit ipi in
  t.gic.pending.(dst) <- t.gic.pending.(dst) lor (1 lsl bit);
  t.gic.senders.(dst).(bit) <- t.gic.senders.(dst).(bit) lor (1 lsl src);
  t.gic.ipis_sent <- t.gic.ipis_sent + 1;
  match Cpu.telemetry t.cores.(src) with
  | Some s ->
      Telemetry.Counters.count_ipi_sent (Telemetry.Sink.counters s);
      Telemetry.Sink.emit s
        ~ts:(Cpu.cycles t.cores.(src))
        (Telemetry.Event.Ipi_send { dst; kind = ipi_name ipi })
  | None -> ()

let pending t ~cpu =
  List.filter (fun i -> t.gic.pending.(cpu) land (1 lsl ipi_bit i) <> 0) all_ipis

(* Acknowledge one interrupt id: returns the requesting cores (lowest
   core number first — the deterministic service order) and clears both
   the pending bit and the requester set. *)
let ack t ~cpu ipi =
  let bit = ipi_bit ipi in
  let requesters = t.gic.senders.(cpu).(bit) in
  t.gic.pending.(cpu) <- t.gic.pending.(cpu) land lnot (1 lsl bit);
  t.gic.senders.(cpu).(bit) <- 0;
  let srcs =
    List.filter (fun src -> requesters land (1 lsl src) <> 0)
      (List.init (cpus t) Fun.id)
  in
  (match Cpu.telemetry t.cores.(cpu) with
  | Some s ->
      Telemetry.Counters.count_ipi_received (Telemetry.Sink.counters s);
      Telemetry.Sink.emit s
        ~ts:(Cpu.cycles t.cores.(cpu))
        (Telemetry.Event.Ipi_receive { srcs; kind = ipi_name ipi })
  | None -> ());
  srcs

let ipis_sent t = t.gic.ipis_sent

(* Simulated-time makespan of the machine: every core runs in parallel,
   so the wall time of a parallel phase is the busiest core's clock. *)
let max_cycles t =
  Array.fold_left (fun acc c -> max acc (Cpu.cycles c)) 0L t.cores

let total_cycles t =
  Array.fold_left (fun acc c -> Int64.add acc (Cpu.cycles c)) 0L t.cores

(* Whole-machine snapshots: CoW memory + translation tables + every
   core's mutable state + the GIC doorbell + telemetry (captured so an
   observed restore is bit-identical to an observed boot). The icache is
   deliberately NOT captured — it is a host-speed cache, never
   guest-visible; restore just flushes it once after all state is back
   (Mmu.restore also advances the generation, so stale micro-TLB
   entries self-discard). *)
type snapshot = {
  s_mem : Mem.snapshot;
  s_mmu : Mmu.snapshot;
  s_cores : Cpu.captured array;
  s_pending : int array;
  s_senders : int array array;
  s_ipis_sent : int;
  s_hub : Telemetry.Hub.captured option;
}

let snapshot t =
  {
    s_mem = Mem.snapshot t.mem;
    s_mmu = Mmu.snapshot t.mmu;
    s_cores = Array.map Cpu.capture t.cores;
    s_pending = Array.copy t.gic.pending;
    s_senders = Array.map Array.copy t.gic.senders;
    s_ipis_sent = t.gic.ipis_sent;
    s_hub = Option.map Telemetry.Hub.capture t.hub;
  }

let restore t s =
  Mem.restore t.mem s.s_mem;
  Mmu.restore t.mmu s.s_mmu;
  Array.iteri (fun i c -> Cpu.restore t.cores.(i) c) s.s_cores;
  Array.blit s.s_pending 0 t.gic.pending 0 (Array.length t.gic.pending);
  Array.iteri
    (fun i row -> Array.blit row 0 t.gic.senders.(i) 0 (Array.length row))
    s.s_senders;
  t.gic.ipis_sent <- s.s_ipis_sent;
  (match (t.hub, s.s_hub) with
  | Some hub, Some c -> Telemetry.Hub.restore hub c
  | _ -> ());
  Icache.flush t.icache
