(** Program builder: a minimal assembler with labels.

    Kernel routines, the XOM key setter, instrumented function bodies
    and attack payloads are written as item lists; [assemble] lays the
    functions out from a base address, resolves labels to absolute
    targets and produces encodable instructions. Function names are
    global symbols; other labels are local to the function that defines
    them. *)

type item

(** [ins i] — an instruction with no unresolved label. *)
val ins : Insn.t -> item

(** [label name] — bind a function-local label here. *)
val label : string -> item

(** [b_to l], [bl_to l], [cbz_to r l], [cbnz_to r l], [bcond_to c l] —
    branches to a label (local first, then global). *)
val b_to : string -> item

val bl_to : string -> item
val cbz_to : Insn.reg -> string -> item
val cbnz_to : Insn.reg -> string -> item
val bcond_to : Insn.cond -> string -> item

(** [adr_of r l] — materialize the address of a label. *)
val adr_of : Insn.reg -> string -> item

(** [with_label l f] — general fixup: [f] receives the resolved address. *)
val with_label : string -> (int64 -> Insn.t) -> item

(** [mov_addr r l] — materialize the full 64-bit address of label [l]
    into [r] with a MOVZ/MOVK sequence (4 instructions); unlike
    {!adr_of} this has unlimited range. *)
val mov_addr : Insn.reg -> string -> item list

(** [item_insn item] — the instruction an item carries, with any label
    fixup applied to a placeholder address of 0; [None] for labels.
    For shape-level inspection (opcode, registers) of unassembled
    listings — the branch target is not meaningful. *)
val item_insn : item -> Insn.t option

(** [instruction_count items] — instructions among [items] (labels are
    zero-size). *)
val instruction_count : item list -> int

type program

val create : unit -> program

(** [add_function p ~name items] appends a function; [name] becomes a
    global symbol at its first instruction. Raises [Invalid_argument] on
    duplicate names. *)
val add_function : program -> name:string -> item list -> unit

type layout = {
  base : int64;
  size : int;  (** bytes of code *)
  symbols : (string * int64) list;  (** global symbols in layout order *)
  code : (int64 * Insn.t) array;  (** address, resolved instruction *)
}

exception Undefined_label of string

(** [assemble p ~base] resolves all labels. [extra_symbols] supplies
    imported globals (e.g. kernel exports visible to a module); local
    and program-global labels take precedence over imports. *)
val assemble : ?extra_symbols:(string * int64) list -> program -> base:int64 -> layout

(** [symbol layout name] — address of a global symbol.
    Raises [Not_found]. *)
val symbol : layout -> string -> int64

(** [encode_into layout ~write32] encodes every instruction and hands
    the (va, word) pairs to [write32] — the caller owns translation. *)
val encode_into : layout -> write32:(int64 -> int32 -> unit) -> unit

(** [disassemble layout] — printable listing, for reports and tests. *)
val disassemble : layout -> string
