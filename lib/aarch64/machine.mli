(** A multi-core machine: N {!Cpu} cores over one shared physical
    memory, one shared two-stage MMU and one PAC cipher, plus a GIC-lite
    software-generated-interrupt (IPI) doorbell.

    Each core keeps a private register file, EL state, banked stack
    pointers, PAuth {e key registers} and cycle counter — the paper's
    key-management design (Section 4.1) relies on the key registers
    being per-CPU: every core must execute the XOM setter itself on
    kernel entry. Sharing [Mem.t]/[Mmu.t] means stage-2 protections
    (XOM, W^X) installed once bind every core, exactly as a single
    hypervisor-owned stage 2 does on real hardware.

    The interpreter remains single-threaded and deterministic: callers
    interleave [Cpu.run] slices across cores; parallel simulated time is
    the busiest core's cycle counter ({!max_cycles}). *)

(** Inter-processor interrupt ids (the kernel's classic trio). *)
type ipi = Reschedule | Stop | Call_function

val ipi_name : ipi -> string

type t

(** [create ~cpus ()] — [cpus] cores sharing fresh memory/MMU/cipher.
    Cores are numbered 0..cpus-1; core 0 is the boot core. With
    [~telemetry:true] a {!Telemetry.Hub} is created and sink [i]
    attached to core [i]; IPI sends/acks then also emit trace
    events. All cores fetch through one shared decoded-instruction
    cache ({!Icache}); [~icache:false] creates it disabled (the
    [--no-icache] escape hatch — execution is bit-identical either
    way, only host speed changes).

    [tier] selects the execution tier for every core and overrides the
    legacy [icache] flag (omitted: [icache=true] → [Cpu.Icache],
    [icache=false] → [Cpu.Interp]). [Cpu.Traces] keeps the shared
    icache enabled and gives each core a private superblock trace
    cache. *)
val create :
  ?cost:Cost.profile ->
  ?has_pauth:bool ->
  ?user_cfg:Vaddr.config ->
  ?kernel_cfg:Vaddr.config ->
  ?cipher:Qarma.Block.t ->
  ?trace_depth:int ->
  ?telemetry:bool ->
  ?icache:bool ->
  ?tier:Cpu.tier ->
  cpus:int ->
  unit ->
  t

val cpus : t -> int
val core : t -> int -> Cpu.t
val cores : t -> Cpu.t list

(** The machine-wide telemetry hub, when booted with [~telemetry:true]. *)
val telemetry : t -> Telemetry.Hub.t option
val boot_core : t -> Cpu.t

(** The execution tier every core runs under. *)
val tier : t -> Cpu.tier
val mem : t -> Mem.t
val mmu : t -> Mmu.t

(** The machine-wide decoded-instruction cache shared by all cores. *)
val icache : t -> Icache.t
val cipher : t -> Qarma.Block.t

(** [send_ipi t ~src ~dst ipi] — ring core [dst]'s doorbell: sets the
    pending bit for [ipi] and records [src] in the requester set. *)
val send_ipi : t -> src:int -> dst:int -> ipi -> unit

(** [pending t ~cpu] — the interrupt ids currently pending on [cpu],
    without acknowledging them. *)
val pending : t -> cpu:int -> ipi list

(** [ack t ~cpu ipi] — acknowledge [ipi] on [cpu]: clears the pending
    bit and returns the requesting cores, lowest core number first. *)
val ack : t -> cpu:int -> ipi -> int list

(** Total IPIs sent since creation. *)
val ipis_sent : t -> int

(** [max_cycles t] — the busiest core's clock: the simulated wall time
    of a phase in which all cores ran in parallel. *)
val max_cycles : t -> int64

(** [total_cycles t] — summed cycles across cores (aggregate work). *)
val total_cycles : t -> int64

(** Whole-machine snapshots.

    [snapshot t] captures memory (copy-on-write; see {!Mem.snapshot}),
    both translation stages, every core's full mutable state (registers,
    PAuth keys, counters, trace ring, step hooks), the GIC doorbell, and
    — when the machine was created with [~telemetry:true] — the
    telemetry hub, so a restored-and-observed run is bit-identical to a
    booted-and-observed one. The decoded-instruction cache is not
    captured: it is host-speed state, invisible to the guest; [restore]
    flushes it once after all architectural state is back. One snapshot
    supports any number of successive restores. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
