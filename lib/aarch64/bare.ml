let code_base = 0xffff000000100000L
let stack_top = 0xffff000000220000L
let data_base = 0xffff000000300000L

let pa_of_va va = Int64.logand va 0x0000ffffffffffffL

let map_region ?(el0 = Mmu.no_access) cpu ~base ~pages perm =
  for idx = 0 to pages - 1 do
    let va = Int64.add base (Int64.of_int (idx * 4096)) in
    Mmu.map (Cpu.mmu cpu) ~va_page:(Vaddr.page_of va)
      ~pa_page:(Vaddr.page_of (pa_of_va va))
      ~el0 ~el1:perm
  done

(* Shared EL1 bring-up: mappings, stack, enable bits, random keys. *)
let setup ?(seed = 0xBA2EL) cpu =
  map_region cpu ~base:code_base ~pages:16 Mmu.rx;
  map_region cpu ~base:(Int64.sub stack_top 0x20000L) ~pages:32 Mmu.rw;
  map_region cpu ~base:data_base ~pages:4 Mmu.rw;
  Cpu.set_sp_of cpu El.El1 stack_top;
  Cpu.set_el cpu El.El1;
  let sctlr =
    List.fold_left
      (fun acc k -> Camo_util.Val64.set_bit (Sysreg.sctlr_enable_bit k) true acc)
      0L
      Sysreg.[ IA; IB; DA; DB ]
  in
  Cpu.set_sysreg cpu Sysreg.SCTLR_EL1 sctlr;
  let rng = Camo_util.Rng.create seed in
  List.iter
    (fun k ->
      let hi, lo = Sysreg.key_halves k in
      Cpu.set_sysreg cpu hi (Camo_util.Rng.next rng);
      Cpu.set_sysreg cpu lo (Camo_util.Rng.next rng))
    Sysreg.[ IA; IB; DA; DB; GA ];
  cpu

let machine ?seed ?cost ?trace_depth ?(icache = true) ?tier () =
  let tier =
    match tier with
    | Some tr -> tr
    | None -> if icache then Cpu.Icache else Cpu.Interp
  in
  setup ?seed (Cpu.create ?cost ?trace_depth ~tier ())

(* Machine-based variant, for harnesses that need whole-machine
   snapshots or Snapshot.Fingerprint.of_machine — notably the
   three-tier differential fuzzer. *)
let smp ?seed ?cost ?trace_depth ?tier ?(cpus = 1) () =
  let m = Machine.create ?cost ?trace_depth ?tier ~cpus () in
  ignore (setup ?seed (Machine.boot_core m) : Cpu.t);
  m

let load ?(base = code_base) cpu prog =
  let layout = Asm.assemble prog ~base in
  Asm.encode_into layout ~write32:(fun va word ->
      Mem.write32 (Cpu.mem cpu) (pa_of_va va) word);
  layout

let read64 cpu va = Mem.read64 (Cpu.mem cpu) (pa_of_va va)
let write64 cpu va v = Mem.write64 (Cpu.mem cpu) (pa_of_va va) v

let call ?max_insns cpu layout name = Cpu.call ?max_insns cpu (Asm.symbol layout name)
