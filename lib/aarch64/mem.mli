(** Sparse physical memory.

    Byte-addressable little-endian storage allocated lazily in 4 KiB
    frames. Addresses here are {e physical}; translation and permission
    checking live in {!Mmu}. *)

type t

val create : unit -> t

val read8 : t -> int64 -> int
val write8 : t -> int64 -> int -> unit
val read32 : t -> int64 -> int32
val write32 : t -> int64 -> int32 -> unit
val read64 : t -> int64 -> int64
val write64 : t -> int64 -> int64 -> unit

(** [blit_string t pa s] writes the bytes of [s] starting at [pa]. *)
val blit_string : t -> int64 -> string -> unit

(** [read_string t pa len]. *)
val read_string : t -> int64 -> int -> string

(** [add_write_hook t h] registers a store observer: [h] is called with
    the frame index ([pa lsr 12], as an [int]) of every write, after the
    bytes land. This is the invalidation channel for the
    decoded-instruction cache — it sees {e every} mutation path (guest
    stores, host-side {!Kmem} writes, fault-injector flips) because they
    all terminate here. Hooks must not write memory. *)
val add_write_hook : t -> (int -> unit) -> unit

(** [frame_bytes t idx] — the backing [Bytes.t] of frame [idx]
    (allocating it if untouched). Frames are never replaced, so the
    pointer remains valid for the life of [t]; the micro-TLB memoizes
    it to skip the frame table on cached accesses. A caller that
    mutates the bytes directly must follow with [notify_store t idx],
    which runs the registered write hooks exactly as a {!write64}
    would. *)
val frame_bytes : t -> int -> Bytes.t

val notify_store : t -> int -> unit

(** Number of frames currently allocated (for memory-use reporting). *)
val frames_allocated : t -> int

(** [fold_frames t f acc] folds over every allocated frame in ascending
    frame-index order (deterministic — used for state fingerprints). *)
val fold_frames : t -> ('a -> int -> Bytes.t -> 'a) -> 'a -> 'a

(** Copy-on-write memory snapshots.

    [snapshot t] captures the current contents of every allocated frame
    and begins tracking dirtied frames via a write hook. [restore t s]
    blits the captured bytes back into exactly the frames written since
    the snapshot (zero-filling frames that did not exist then), firing
    the write hooks for each restored frame so instruction-cache
    invalidation sees the restore like any other store. Restores are
    therefore proportional to the dirty set, and one snapshot supports
    any number of successive restores. Frames are mutated in place —
    the frame-pointer contract of {!frame_bytes} survives a restore. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** Frames captured at snapshot time. *)
val snapshot_frames : snapshot -> int

(** Frames currently marked dirty (diagnostic; reset by [restore]). *)
val snapshot_dirty : snapshot -> int
