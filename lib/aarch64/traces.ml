(* Superblock trace cache: hotness detection, block storage, chaining
   metadata and invalidation for the traces execution tier.

   Parametric in the compiled representation: the CPU layer compiles
   straight-line guest code into closure arrays and drives them; this
   module never looks inside 'code. What it owns is the part that must
   be exactly right — the invalidation contract, which is the PR 5
   icache machinery reused wholesale:

   - a [Mem] write hook kills every block whose code spans the written
     frame (guest stores, host [Kmem] writes, fault-injector flips),
     screened by the same 32-bit golden-ratio Bloom filter;
   - the [Mmu] generation counter flushes everything at the next [sync]
     after any map/unmap/stage-2 change or snapshot restore;
   - an explicit [flush] on MMU-control/CONTEXTIDR writes (the CPU's
     MSR flush matrix calls it right next to [Icache.flush]).

   Blocks die in place (bk_live <- false) instead of being unlinked:
   the driver re-checks liveness between instructions, which is what
   makes a store *inside* an active superblock abort the rest of the
   block — the interpreter-equivalent of re-fetching after every
   retirement. *)

type 'code block = {
  bk_el : El.t;
  bk_entry : int64;
  bk_len : int;  (* guest instructions retired by a full run *)
  bk_code : 'code;
  bk_slot : int;
  bk_frames : int array;  (* physical frames the code was fetched from *)
  mutable bk_live : bool;
  mutable bk_next : 'code block option;  (* chained successor, a hint *)
}

type stats = {
  compiled : int;
  executed : int;
  block_insns : int;
  invalidations : int;
  flushes : int;
  chain_links : int;
  chain_follows : int;
  blacklisted : int;
}

type counters = {
  mutable c_compiled : int;
  mutable c_executed : int;
  mutable c_block_insns : int;
  mutable c_invalidations : int;
  mutable c_flushes : int;
  mutable c_chain_links : int;
  mutable c_chain_follows : int;
  mutable c_blacklisted : int;
}

type 'code t = {
  slots : 'code block option array;  (* direct-mapped on (EL, entry PC) *)
  (* frame index -> blocks whose code shadows that frame *)
  by_frame : (int, 'code block list) Hashtbl.t;
  (* Bloom filter over registered frames, same scheme as the icache:
     registration sets bits, only [flush] clears them *)
  mutable reg_mask : int;
  (* per-entry execution counters, keyed by EL-tagged entry PC; the
     blacklist shares the table as a sentinel value *)
  counts : (int64, int) Hashtbl.t;
  hot_threshold : int;
  mutable gen : int;  (* Mmu generation observed at the last sync *)
  mmu : Mmu.t;
  c : counters;
}

let slot_count = 1024
let el_index = function El.El0 -> 0 | El.El1 -> 1 | El.El2 -> 2

(* Same Fibonacci-multiply spread as the icache's slot hash: entry PCs
   are 4-aligned and cluster at power-of-two distances, which plain
   masking would collide. *)
let slot_of ~el pc =
  ((((Int64.to_int pc lsr 2) * 0x61C8_8647) lsr 13) * 3 + el_index el)
  land (slot_count - 1)

let[@inline] bloom_bit frame = 1 lsl ((frame * 0x61C8_8647) lsr 5 land 31)

(* Entry PCs are instruction-aligned, so the low two bits are free to
   carry the EL tag — no tuple allocation per hotness bump. *)
let[@inline] key ~el pc = Int64.logor pc (Int64.of_int (el_index el))

(* Counter value marking an entry as uncompilable. *)
let black = min_int

let create ?(hot_threshold = 16) ~mem ~mmu () =
  if hot_threshold < 1 then invalid_arg "Traces.create: hot_threshold";
  let t =
    {
      slots = Array.make slot_count None;
      by_frame = Hashtbl.create 64;
      reg_mask = 0;
      counts = Hashtbl.create 256;
      hot_threshold;
      gen = Mmu.generation mmu;
      mmu;
      c =
        {
          c_compiled = 0;
          c_executed = 0;
          c_block_insns = 0;
          c_invalidations = 0;
          c_flushes = 0;
          c_chain_links = 0;
          c_chain_follows = 0;
          c_blacklisted = 0;
        };
    }
  in
  Mem.add_write_hook mem (fun frame ->
      if t.reg_mask land bloom_bit frame <> 0 then
        match Hashtbl.find t.by_frame frame with
        | blocks ->
            Hashtbl.remove t.by_frame frame;
            List.iter
              (fun b ->
                if b.bk_live then begin
                  b.bk_live <- false;
                  t.c.c_invalidations <- t.c.c_invalidations + 1
                end;
                match t.slots.(b.bk_slot) with
                | Some b' when b' == b -> t.slots.(b.bk_slot) <- None
                | _ -> ())
              blocks
        | exception Not_found -> ());
  t

let flush t =
  Array.iteri
    (fun i slot ->
      match slot with
      | Some b ->
          b.bk_live <- false;
          t.slots.(i) <- None
      | None -> ())
    t.slots;
  Hashtbl.reset t.by_frame;
  t.reg_mask <- 0;
  Hashtbl.reset t.counts;
  t.c.c_flushes <- t.c.c_flushes + 1

let sync t =
  let g = Mmu.generation t.mmu in
  if g <> t.gen then begin
    flush t;
    t.gen <- g
  end

let lookup t ~el pc =
  match t.slots.(slot_of ~el pc) with
  | Some b when b.bk_live && b.bk_el = el && Int64.equal b.bk_entry pc -> Some b
  | _ -> None

let bump t ~el pc =
  let k = key ~el pc in
  match Hashtbl.find_opt t.counts k with
  | Some n when n = black -> false
  | Some n ->
      if n + 1 >= t.hot_threshold then begin
        Hashtbl.remove t.counts k;
        true
      end
      else begin
        Hashtbl.replace t.counts k (n + 1);
        false
      end
  | None ->
      (* bound the table so pathological entry churn (a fuzzer walking
         fresh addresses forever) cannot grow it without limit; losing
         warm counts only delays compilation, never breaks it *)
      if Hashtbl.length t.counts >= 16384 then Hashtbl.reset t.counts;
      Hashtbl.add t.counts k 1;
      t.hot_threshold <= 1

let blacklist t ~el pc =
  Hashtbl.replace t.counts (key ~el pc) black;
  t.c.c_blacklisted <- t.c.c_blacklisted + 1

(* Remove a block's frame registrations (slot-eviction path; the store
   hook removes whole per-frame lists instead). *)
let unregister t b =
  Array.iter
    (fun f ->
      match Hashtbl.find_opt t.by_frame f with
      | None -> ()
      | Some l -> (
          match List.filter (fun x -> x != b) l with
          | [] -> Hashtbl.remove t.by_frame f
          | l' -> Hashtbl.replace t.by_frame f l'))
    b.bk_frames

let install t ~el ~entry ~len ~frames code =
  let slot = slot_of ~el entry in
  (match t.slots.(slot) with
  | Some old ->
      old.bk_live <- false;
      unregister t old;
      t.c.c_invalidations <- t.c.c_invalidations + 1
  | None -> ());
  let b =
    {
      bk_el = el;
      bk_entry = entry;
      bk_len = len;
      bk_code = code;
      bk_slot = slot;
      bk_frames = Array.of_list frames;
      bk_live = true;
      bk_next = None;
    }
  in
  t.slots.(slot) <- Some b;
  Array.iter
    (fun f ->
      let prev =
        match Hashtbl.find_opt t.by_frame f with Some l -> l | None -> []
      in
      Hashtbl.replace t.by_frame f (b :: prev);
      t.reg_mask <- t.reg_mask lor bloom_bit f)
    b.bk_frames;
  t.c.c_compiled <- t.c.c_compiled + 1;
  b

let link t b succ =
  b.bk_next <- Some succ;
  t.c.c_chain_links <- t.c.c_chain_links + 1

let entry_pc b = b.bk_entry
let block_el b = b.bk_el
let block_len b = b.bk_len
let code b = b.bk_code
let live b = b.bk_live
let next b = b.bk_next

let note_exec t ~insns =
  t.c.c_executed <- t.c.c_executed + 1;
  t.c.c_block_insns <- t.c.c_block_insns + insns

let note_chain t = t.c.c_chain_follows <- t.c.c_chain_follows + 1
let counters t = t.c

let stats t =
  {
    compiled = t.c.c_compiled;
    executed = t.c.c_executed;
    block_insns = t.c.c_block_insns;
    invalidations = t.c.c_invalidations;
    flushes = t.c.c_flushes;
    chain_links = t.c.c_chain_links;
    chain_follows = t.c.c_chain_follows;
    blacklisted = t.c.c_blacklisted;
  }
