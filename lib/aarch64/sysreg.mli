(** System registers of the model machine.

    The ten PAuth key halves, the control registers the Camouflage
    verifier must protect (SCTLR_EL1 PAuth-enable flags, translation
    table bases), and the exception-handling registers. Key registers
    are shared between exception levels — they are not banked — which is
    the root cause of the paper's key-switching requirement. *)

type t =
  | APIAKeyLo_EL1
  | APIAKeyHi_EL1
  | APIBKeyLo_EL1
  | APIBKeyHi_EL1
  | APDAKeyLo_EL1
  | APDAKeyHi_EL1
  | APDBKeyLo_EL1
  | APDBKeyHi_EL1
  | APGAKeyLo_EL1
  | APGAKeyHi_EL1
  | SCTLR_EL1
  | CONTEXTIDR_EL1
  | TTBR0_EL1
  | TTBR1_EL1
  | VBAR_EL1
  | ELR_EL1
  | SPSR_EL1
  | ESR_EL1
  | FAR_EL1
  | TPIDR_EL1
  | CNTVCT_EL0  (** virtual counter, read-only: the cycle counter *)
  | PMCCNTR_EL0  (** PMU cycle counter (always live) *)
  | PMICNTR_EL0  (** PMU instructions-retired counter (always live) *)
  | PMEVCNTR0_EL0  (** PMU event 0: PAC-constructing ops (telemetry) *)
  | PMEVCNTR1_EL0  (** PMU event 1: authenticating ops (telemetry) *)
  | PMEVCNTR2_EL0  (** PMU event 2: authentication failures (telemetry) *)

(** PAuth key selector; GA signs generic data via PACGA. *)
type pauth_key = IA | IB | DA | DB | GA

(** [key_halves k] is the (hi, lo) register pair configuring key [k]. *)
val key_halves : pauth_key -> t * t

(** [is_pauth_key r] is [true] for the ten AP*Key* registers — exactly
    the registers the static verifier forbids reading. *)
val is_pauth_key : t -> bool

(** [is_mmu_control r] — registers whose modification the hypervisor
    locks down (TTBRs and SCTLR). *)
val is_mmu_control : t -> bool

(** [is_pmu r] — the five read-only performance counters. *)
val is_pmu : t -> bool

(** [el0_readable r] — registers user code may MRS without trapping:
    the virtual counter and the PMU counters. *)
val el0_readable : t -> bool

(** SCTLR_EL1 PAuth enable bit positions (architectural values). *)
val sctlr_enia_bit : int

val sctlr_enib_bit : int
val sctlr_enda_bit : int
val sctlr_endb_bit : int

(** [sctlr_enable_bit k] — the SCTLR_EL1 bit enabling key [k]; raises
    [Invalid_argument] for [GA], which has no enable bit. *)
val sctlr_enable_bit : pauth_key -> int

(** Stable numeric id used by the instruction encoding; [of_id] inverts
    it. *)
val to_id : t -> int

val of_id : int -> t option
val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit
