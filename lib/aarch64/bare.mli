(** A bare-metal test machine: kernel-space code/stack/data mappings and
    random PAuth keys, with no operating system on top.

    Used by microbenchmarks and experiments that exercise the
    instrumentation directly — notably those involving the chained
    backward-edge scheme, which reserves a live chain register and
    cannot run under the prefabricated-frame kernel. *)

val code_base : int64
val stack_top : int64
val data_base : int64

(** Physical address backing a VA under the identity map used here. *)
val pa_of_va : int64 -> int64

(** [machine ?seed ()] — a CPU at EL1 with code (rx), stack (rw) and
    data (rw) regions mapped, SP at {!stack_top}, all four enable bits
    set and random keys installed. [trace_depth] is forwarded to
    {!Cpu.create}; [icache:false] disables the decoded-instruction
    cache (bit-identical execution, host speed only). [tier] selects
    the execution tier and overrides [icache]. *)
val machine :
  ?seed:int64 -> ?cost:Cost.profile -> ?trace_depth:int -> ?icache:bool ->
  ?tier:Cpu.tier -> unit -> Cpu.t

(** [smp ?tier ()] — the same bring-up on a {!Machine} (boot core at
    EL1 with mappings, stack and keys; secondary cores, if any, are
    left untouched), for harnesses that need whole-machine snapshots or
    [Snapshot.Fingerprint.of_machine] — the three-tier differential
    fuzzer's entry point. Default [cpus] is 1. *)
val smp :
  ?seed:int64 -> ?cost:Cost.profile -> ?trace_depth:int -> ?tier:Cpu.tier ->
  ?cpus:int -> unit -> Machine.t

(** [map_region cpu ~base ~pages perm] — add an EL1 mapping. *)
val map_region : ?el0:Mmu.perm -> Cpu.t -> base:int64 -> pages:int -> Mmu.perm -> unit

(** [load cpu prog] — assemble at {!code_base} and write into memory. *)
val load : ?base:int64 -> Cpu.t -> Asm.program -> Asm.layout

(** [read64]/[write64] — host access through the identity map. *)
val read64 : Cpu.t -> int64 -> int64

val write64 : Cpu.t -> int64 -> int64 -> unit

(** [call cpu layout name] — call a symbol with LR at the host sentinel. *)
val call : ?max_insns:int -> Cpu.t -> Asm.layout -> string -> Cpu.stop
