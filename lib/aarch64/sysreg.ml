type t =
  | APIAKeyLo_EL1
  | APIAKeyHi_EL1
  | APIBKeyLo_EL1
  | APIBKeyHi_EL1
  | APDAKeyLo_EL1
  | APDAKeyHi_EL1
  | APDBKeyLo_EL1
  | APDBKeyHi_EL1
  | APGAKeyLo_EL1
  | APGAKeyHi_EL1
  | SCTLR_EL1
  | CONTEXTIDR_EL1
  | TTBR0_EL1
  | TTBR1_EL1
  | VBAR_EL1
  | ELR_EL1
  | SPSR_EL1
  | ESR_EL1
  | FAR_EL1
  | TPIDR_EL1
  | CNTVCT_EL0
  (* PMU counter registers (PR 4 telemetry): appended at the end so
     existing encodings keep their ids. *)
  | PMCCNTR_EL0
  | PMICNTR_EL0
  | PMEVCNTR0_EL0
  | PMEVCNTR1_EL0
  | PMEVCNTR2_EL0

type pauth_key = IA | IB | DA | DB | GA

let key_halves = function
  | IA -> (APIAKeyHi_EL1, APIAKeyLo_EL1)
  | IB -> (APIBKeyHi_EL1, APIBKeyLo_EL1)
  | DA -> (APDAKeyHi_EL1, APDAKeyLo_EL1)
  | DB -> (APDBKeyHi_EL1, APDBKeyLo_EL1)
  | GA -> (APGAKeyHi_EL1, APGAKeyLo_EL1)

let is_pauth_key = function
  | APIAKeyLo_EL1 | APIAKeyHi_EL1 | APIBKeyLo_EL1 | APIBKeyHi_EL1 | APDAKeyLo_EL1
  | APDAKeyHi_EL1 | APDBKeyLo_EL1 | APDBKeyHi_EL1 | APGAKeyLo_EL1 | APGAKeyHi_EL1 ->
      true
  | SCTLR_EL1 | CONTEXTIDR_EL1 | TTBR0_EL1 | TTBR1_EL1 | VBAR_EL1 | ELR_EL1 | SPSR_EL1
  | ESR_EL1 | FAR_EL1 | TPIDR_EL1 | CNTVCT_EL0 | PMCCNTR_EL0 | PMICNTR_EL0
  | PMEVCNTR0_EL0 | PMEVCNTR1_EL0 | PMEVCNTR2_EL0 ->
      false

let is_mmu_control = function
  | SCTLR_EL1 | TTBR0_EL1 | TTBR1_EL1 -> true
  | APIAKeyLo_EL1 | APIAKeyHi_EL1 | APIBKeyLo_EL1 | APIBKeyHi_EL1 | APDAKeyLo_EL1
  | APDAKeyHi_EL1 | APDBKeyLo_EL1 | APDBKeyHi_EL1 | APGAKeyLo_EL1 | APGAKeyHi_EL1
  | CONTEXTIDR_EL1 | VBAR_EL1 | ELR_EL1 | SPSR_EL1 | ESR_EL1 | FAR_EL1 | TPIDR_EL1
  | CNTVCT_EL0 | PMCCNTR_EL0 | PMICNTR_EL0 | PMEVCNTR0_EL0 | PMEVCNTR1_EL0
  | PMEVCNTR2_EL0 ->
      false

let is_pmu = function
  | PMCCNTR_EL0 | PMICNTR_EL0 | PMEVCNTR0_EL0 | PMEVCNTR1_EL0 | PMEVCNTR2_EL0 ->
      true
  | APIAKeyLo_EL1 | APIAKeyHi_EL1 | APIBKeyLo_EL1 | APIBKeyHi_EL1 | APDAKeyLo_EL1
  | APDAKeyHi_EL1 | APDBKeyLo_EL1 | APDBKeyHi_EL1 | APGAKeyLo_EL1 | APGAKeyHi_EL1
  | SCTLR_EL1 | CONTEXTIDR_EL1 | TTBR0_EL1 | TTBR1_EL1 | VBAR_EL1 | ELR_EL1 | SPSR_EL1
  | ESR_EL1 | FAR_EL1 | TPIDR_EL1 | CNTVCT_EL0 ->
      false

let el0_readable r = r = CNTVCT_EL0 || is_pmu r

(* Architectural SCTLR_EL1 bit positions (ARM DDI 0487). *)
let sctlr_enia_bit = 31
let sctlr_enib_bit = 30
let sctlr_enda_bit = 27
let sctlr_endb_bit = 13

let sctlr_enable_bit = function
  | IA -> sctlr_enia_bit
  | IB -> sctlr_enib_bit
  | DA -> sctlr_enda_bit
  | DB -> sctlr_endb_bit
  | GA -> invalid_arg "Sysreg.sctlr_enable_bit: GA has no enable bit"

let all =
  [
    APIAKeyLo_EL1; APIAKeyHi_EL1; APIBKeyLo_EL1; APIBKeyHi_EL1; APDAKeyLo_EL1;
    APDAKeyHi_EL1; APDBKeyLo_EL1; APDBKeyHi_EL1; APGAKeyLo_EL1; APGAKeyHi_EL1;
    SCTLR_EL1; CONTEXTIDR_EL1; TTBR0_EL1; TTBR1_EL1; VBAR_EL1; ELR_EL1; SPSR_EL1;
    ESR_EL1; FAR_EL1; TPIDR_EL1; CNTVCT_EL0; PMCCNTR_EL0; PMICNTR_EL0;
    PMEVCNTR0_EL0; PMEVCNTR1_EL0; PMEVCNTR2_EL0;
  ]

let to_id r =
  let rec index i = function
    | [] -> assert false
    | x :: rest -> if x = r then i else index (i + 1) rest
  in
  index 0 all

let of_id i = List.nth_opt all i

let name = function
  | APIAKeyLo_EL1 -> "APIAKeyLo_EL1"
  | APIAKeyHi_EL1 -> "APIAKeyHi_EL1"
  | APIBKeyLo_EL1 -> "APIBKeyLo_EL1"
  | APIBKeyHi_EL1 -> "APIBKeyHi_EL1"
  | APDAKeyLo_EL1 -> "APDAKeyLo_EL1"
  | APDAKeyHi_EL1 -> "APDAKeyHi_EL1"
  | APDBKeyLo_EL1 -> "APDBKeyLo_EL1"
  | APDBKeyHi_EL1 -> "APDBKeyHi_EL1"
  | APGAKeyLo_EL1 -> "APGAKeyLo_EL1"
  | APGAKeyHi_EL1 -> "APGAKeyHi_EL1"
  | SCTLR_EL1 -> "SCTLR_EL1"
  | CONTEXTIDR_EL1 -> "CONTEXTIDR_EL1"
  | TTBR0_EL1 -> "TTBR0_EL1"
  | TTBR1_EL1 -> "TTBR1_EL1"
  | VBAR_EL1 -> "VBAR_EL1"
  | ELR_EL1 -> "ELR_EL1"
  | SPSR_EL1 -> "SPSR_EL1"
  | ESR_EL1 -> "ESR_EL1"
  | FAR_EL1 -> "FAR_EL1"
  | TPIDR_EL1 -> "TPIDR_EL1"
  | CNTVCT_EL0 -> "CNTVCT_EL0"
  | PMCCNTR_EL0 -> "PMCCNTR_EL0"
  | PMICNTR_EL0 -> "PMICNTR_EL0"
  | PMEVCNTR0_EL0 -> "PMEVCNTR0_EL0"
  | PMEVCNTR1_EL0 -> "PMEVCNTR1_EL0"
  | PMEVCNTR2_EL0 -> "PMEVCNTR2_EL0"

let pp fmt r = Format.pp_print_string fmt (name r)
