module Val64 = Camo_util.Val64

type fault =
  | Mmu_fault of Mmu.fault
  | Undefined_instruction of int32
  | Hyp_denied of Sysreg.t
  | El_denied of Sysreg.t

type stop =
  | Svc of int
  | Brk of int
  | Hlt of int
  | Fault of { fault : fault; pc : int64 }
  | Eret_done
  | Sentinel_return
  | Insn_limit

type flags = { mutable n : bool; mutable z : bool; mutable v : bool; mutable c : bool }

type hook_action = Exec | Skip

(* The three execution tiers. All of them are bit-identical in guest
   terms — the selector only decides how much host-side machinery sits
   between fetch and retire. *)
type tier = Interp | Icache | Traces

let tier_name = function
  | Interp -> "interp"
  | Icache -> "icache"
  | Traces -> "traces"

let tier_of_string = function
  | "interp" -> Some Interp
  | "icache" -> Some Icache
  | "traces" -> Some Traces
  | _ -> None

let all_tiers = [ Interp; Icache; Traces ]

type t = {
  regs : int64 array;
  mutable sp_el0 : int64;
  mutable sp_el1 : int64;
  mutable sp_el2 : int64;
  mutable pc : int64;
  mutable el : El.t;
  flags : flags;
  sysregs : (Sysreg.t, int64) Hashtbl.t;
  mem : Mem.t;
  mmu : Mmu.t;
  (* decoded-instruction cache + micro-TLB over (mem, mmu); possibly
     shared with sibling cores. Purely host-speed: never guest-visible. *)
  icache : Icache.t;
  (* requested execution tier; fixed at creation *)
  tier : tier;
  (* superblock trace cache, present iff [tier = Traces]. Per-core,
     unlike the shared icache: compiled blocks capture this core's
     register file. Invalidation still crosses cores because every
     trace cache hooks the one shared [Mem]. *)
  traces : (unit -> unit) Traces.t option;
  cipher : Qarma.Block.t;
  cost : Cost.profile;
  (* native ints, not Int64: these are bumped once per retired
     instruction on the interpreter hot path and a boxed Int64
     read-modify-write there costs an allocation per step. 63 bits of
     cycles outlast any run by orders of magnitude. *)
  mutable cycles : int;
  mutable insns_retired : int;
  has_pauth : bool;
  user_cfg : Vaddr.config;
  kernel_cfg : Vaddr.config;
  mutable sysreg_locked : Sysreg.t -> bool;
  (* ring buffer of recently retired (pc, insn), newest last; parallel
     arrays so a retire stores two fields instead of allocating a
     [Some (pc, insn)] tuple per instruction. The PC ring is a Bigarray
     so the store is an unboxed write — no allocation, no GC barrier. *)
  trace_pc : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  trace_insn : Insn.t array;
  mutable trace_pos : int;
  id : int;
  (* pre-execute observation point; see set_step_hook *)
  mutable step_hook : (t -> pc:int64 -> Insn.t -> hook_action) option;
  (* telemetry endpoint; None (the default) must leave execution
     bit-identical to a build without telemetry *)
  mutable sink : Telemetry.Sink.t option;
  (* whether the last [run] took the hook-free fast loop *)
  mutable last_run_fast : bool;
  (* which tier the last [run] actually executed under: a hooked or
     telemetry-observed run on a traces-tier core drops to the icache
     path, and tests want to assert that *)
  mutable last_run_tier : tier;
}

(* A canonical kernel address that is never mapped: it survives PAC/AUT
   round trips (host-called protected functions sign it as their return
   address) and the fetch path checks for it before translation. *)
let sentinel = 0xffff_ffff_dead_0000L

(* Int64 equality on the step path: generic [=] dispatches through the
   polymorphic comparator (a C call per instruction). Compare the
   63-bit truncations first — an int compare — and confirm the rare
   near-miss with the real Int64 primitive. *)
let sentinel_lo = Int64.to_int sentinel

let[@inline] is_sentinel pc =
  Int64.to_int pc = sentinel_lo && Int64.equal pc sentinel

let[@inline] is_zero64 v = Int64.to_int v = 0 && Int64.equal v 0L

let create ?(cost = Cost.cortex_a53) ?(has_pauth = true) ?(user_cfg = Vaddr.linux_user)
    ?(kernel_cfg = Vaddr.linux_kernel) ?(cipher = Qarma.Block.create ()) ?mem ?mmu
    ?icache ?(icache_enabled = true) ?tier ?(trace_depth = 32) ?(id = 0) () =
  if trace_depth <= 0 then invalid_arg "Cpu.create: trace_depth";
  let tier =
    match tier with
    | Some tr -> tr
    | None -> if icache_enabled then Icache else Interp
  in
  let mem = match mem with Some m -> m | None -> Mem.create () in
  let mmu = match mmu with Some m -> m | None -> Mmu.create () in
  let icache =
    match icache with
    | Some i -> i
    | None -> Icache.create ~enabled:(tier <> Interp) ~mem ~mmu ()
  in
  let traces =
    match tier with Traces -> Some (Traces.create ~mem ~mmu ()) | _ -> None
  in
  {
    regs = Array.make 31 0L;
    sp_el0 = 0L;
    sp_el1 = 0L;
    sp_el2 = 0L;
    pc = 0L;
    el = El.El1;
    flags = { n = false; z = false; v = false; c = false };
    sysregs = Hashtbl.create 32;
    mem;
    mmu;
    icache;
    tier;
    traces;
    cipher;
    cost;
    cycles = 0;
    insns_retired = 0;
    has_pauth;
    user_cfg;
    kernel_cfg;
    sysreg_locked = (fun _ -> false);
    trace_pc =
      (let a = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout trace_depth in
       Bigarray.Array1.fill a 0L;
       a);
    trace_insn = Array.make trace_depth Insn.Nop;
    trace_pos = 0;
    id;
    step_hook = None;
    sink = None;
    last_run_fast = false;
    last_run_tier = tier;
  }

let mem t = t.mem
let mmu t = t.mmu
let icache t = t.icache
let tier t = t.tier
let trace_stats t = Option.map Traces.stats t.traces
let id t = t.id
let cipher t = t.cipher
let cost_profile t = t.cost
let has_pauth t = t.has_pauth
let user_cfg t = t.user_cfg
let kernel_cfg t = t.kernel_cfg

let pointer_cfg t va =
  match Vaddr.select va with
  | Vaddr.Kernel -> t.kernel_cfg
  | Vaddr.User | Vaddr.Invalid -> t.user_cfg

let sp_of t = function
  | El.El0 -> t.sp_el0
  | El.El1 -> t.sp_el1
  | El.El2 -> t.sp_el2

let set_sp_of t el v =
  match el with
  | El.El0 -> t.sp_el0 <- v
  | El.El1 -> t.sp_el1 <- v
  | El.El2 -> t.sp_el2 <- v

(* [R n] is validated at decode/assembly time (n < 31), so the register
   file skips the bounds check on the hot path. *)
let reg t = function
  | Insn.R n -> Array.unsafe_get t.regs n
  | Insn.XZR -> 0L
  | Insn.SP -> sp_of t t.el

let set_reg t r v =
  match r with
  | Insn.R n -> Array.unsafe_set t.regs n v
  | Insn.XZR -> ()
  | Insn.SP -> set_sp_of t t.el v

let sysreg t sr =
  match sr with
  | Sysreg.CNTVCT_EL0 | Sysreg.PMCCNTR_EL0 -> Int64.of_int t.cycles
  | Sysreg.PMICNTR_EL0 -> Int64.of_int t.insns_retired
  | Sysreg.PMEVCNTR0_EL0 | Sysreg.PMEVCNTR1_EL0 | Sysreg.PMEVCNTR2_EL0 -> (
      (* event counters read 0 unless a telemetry sink is attached *)
      match t.sink with
      | None -> 0L
      | Some s ->
          let c = Telemetry.Sink.counters s in
          (match sr with
          | Sysreg.PMEVCNTR0_EL0 -> Telemetry.Counters.live_pac_ops c
          | Sysreg.PMEVCNTR1_EL0 -> Telemetry.Counters.live_aut_ops c
          | _ -> Telemetry.Counters.live_auth_failures c))
  | _ -> ( match Hashtbl.find_opt t.sysregs sr with Some v -> v | None -> 0L)

(* Writes to the MMU-control registers (TTBR0/TTBR1/SCTLR) or the ASID
   register flush the decoded-instruction cache: an address-space or
   translation-regime change may invalidate every cached decode. PAuth
   key registers are deliberately exempt — keys affect execution, never
   decode or translation, and the XOM setter rewrites them on every
   kernel entry. *)
let set_sysreg t sr v =
  Hashtbl.replace t.sysregs sr v;
  if Sysreg.is_mmu_control sr || sr = Sysreg.CONTEXTIDR_EL1 then begin
    Icache.flush t.icache;
    match t.traces with Some tr -> Traces.flush tr | None -> ()
  end

let flags_bits t =
  (if t.flags.n then 8 else 0)
  lor (if t.flags.z then 4 else 0)
  lor (if t.flags.c then 2 else 0)
  lor if t.flags.v then 1 else 0

let pc t = t.pc
let set_pc t v = t.pc <- v
let el t = t.el
let set_el t e = t.el <- e
let cycles t = Int64.of_int t.cycles
let insns_retired t = Int64.of_int t.insns_retired
let charge t n = t.cycles <- t.cycles + n
let set_sysreg_lock t f = t.sysreg_locked <- f
let set_step_hook t h = t.step_hook <- h
let attach_telemetry t s = t.sink <- Some s
let detach_telemetry t = t.sink <- None
let telemetry t = t.sink

let pac_key t k =
  let hi_reg, lo_reg = Sysreg.key_halves k in
  Pac.{ hi = sysreg t hi_reg; lo = sysreg t lo_reg }

let pauth_enabled t k =
  t.has_pauth
  &&
  match k with
  | Sysreg.GA -> true
  | Sysreg.IA | Sysreg.IB | Sysreg.DA | Sysreg.DB ->
      Val64.bit (Sysreg.sctlr_enable_bit k) (sysreg t Sysreg.SCTLR_EL1)

let cost_of t insn =
  let c = t.cost in
  match insn with
  | Insn.Movz _ | Insn.Movk _ | Insn.Mov _ | Insn.Add_imm _ | Insn.Sub_imm _
  | Insn.Add_reg _ | Insn.Sub_reg _ | Insn.Subs_reg _ | Insn.Subs_imm _ | Insn.And_reg _
  | Insn.Orr_reg _ | Insn.Eor_reg _ | Insn.Lsl_imm _ | Insn.Lsr_imm _ | Insn.Bfi _
  | Insn.Ubfx _ | Insn.Adr _ | Insn.Nop | Insn.Brk _ | Insn.Hlt _ ->
      c.alu
  | Insn.Ldr _ | Insn.Ldrb _ -> c.load
  | Insn.Ldp _ -> c.load + 1
  | Insn.Str _ | Insn.Strb _ -> c.store
  | Insn.Stp _ -> c.store + 1
  | Insn.B _ | Insn.Bl _ | Insn.Br _ | Insn.Blr _ | Insn.Ret | Insn.Cbz _ | Insn.Cbnz _
  | Insn.Bcond _ ->
      c.branch
  | Insn.Pac (k, _, _) | Insn.Aut (k, _, _) ->
      if pauth_enabled t k then c.pauth else c.alu
  | Insn.Pac1716 k | Insn.Aut1716 k -> if pauth_enabled t k then c.pauth else c.alu
  | Insn.Xpac _ -> if t.has_pauth then c.pauth else c.alu
  | Insn.Pacga _ -> if t.has_pauth then c.pauth else c.alu
  | Insn.Blra (k, _, _) | Insn.Bra (k, _, _) | Insn.Reta k ->
      c.branch + if pauth_enabled t k then c.pauth else 0
  | Insn.Mrs _ -> c.mrs
  | Insn.Msr _ -> c.msr
  | Insn.Svc _ -> c.exception_entry
  | Insn.Eret -> c.eret
  | Insn.Isb -> c.isb

(* Telemetry classification. Retirement class mirrors the cost_of
   grouping; the origin distinguishes CFI-added instructions (PAC
   construction, authentication, modifier arithmetic on the reserved
   ip0/ip1 registers — the PR 2 convention) from the baseline
   program. Both only run when a sink is attached. *)

let class_of_insn insn =
  let open Telemetry.Counters in
  match insn with
  | Insn.Movz _ | Insn.Movk _ | Insn.Mov _ | Insn.Add_imm _ | Insn.Sub_imm _
  | Insn.Add_reg _ | Insn.Sub_reg _ | Insn.Subs_reg _ | Insn.Subs_imm _ | Insn.And_reg _
  | Insn.Orr_reg _ | Insn.Eor_reg _ | Insn.Lsl_imm _ | Insn.Lsr_imm _ | Insn.Bfi _
  | Insn.Ubfx _ | Insn.Adr _ | Insn.Nop ->
      Alu
  | Insn.Ldr _ | Insn.Ldrb _ | Insn.Ldp _ -> Load
  | Insn.Str _ | Insn.Strb _ | Insn.Stp _ -> Store
  | Insn.B _ | Insn.Bl _ | Insn.Br _ | Insn.Blr _ | Insn.Ret | Insn.Cbz _ | Insn.Cbnz _
  | Insn.Bcond _ ->
      Branch
  | Insn.Pac _ | Insn.Pac1716 _ -> Pac
  | Insn.Pacga _ -> Pacga
  | Insn.Aut _ | Insn.Aut1716 _ -> Aut
  | Insn.Blra _ | Insn.Bra _ | Insn.Reta _ -> Auth_branch
  | Insn.Xpac _ -> Xpac
  | Insn.Mrs _ | Insn.Msr _ | Insn.Isb -> Sys
  | Insn.Svc _ | Insn.Eret | Insn.Brk _ | Insn.Hlt _ -> Exception

let origin_of_insn insn =
  let open Telemetry.Profile in
  match insn with
  | Insn.Pac _ | Insn.Pac1716 _ | Insn.Pacga _ -> Cfi_sign
  | Insn.Aut _ | Insn.Aut1716 _ | Insn.Xpac _ | Insn.Blra _ | Insn.Bra _
  | Insn.Reta _ ->
      Cfi_auth
  | _ ->
      let defs, uses = Insn.defs_uses insn in
      let reserved r = r = Insn.ip0 || r = Insn.ip1 in
      if List.exists reserved defs || List.exists reserved uses then Cfi_modifier
      else Baseline

(* PAC helpers used by the instruction semantics. *)

let do_pac t key ptr modifier =
  if pauth_enabled t key then
    let cfg = pointer_cfg t ptr in
    Pac.compute ~cipher:t.cipher ~key:(pac_key t key) ~cfg ~modifier ptr
  else ptr

let do_aut t key ptr modifier =
  if pauth_enabled t key then begin
    let cfg = pointer_cfg t ptr in
    match Pac.auth ~cipher:t.cipher ~key:(pac_key t key) ~cfg ~modifier ptr with
    | Ok stripped -> stripped
    | Error poisoned ->
        (match t.sink with
        | Some s -> Telemetry.Counters.count_auth_failure (Telemetry.Sink.counters s)
        | None -> ());
        poisoned
  end
  else ptr

(* Addressing-mode evaluation: returns the effective VA and applies any
   base-register writeback. *)
let effective_address t m =
  match m with
  | Insn.Off (base, off) -> Int64.add (reg t base) (Int64.of_int off)
  | Insn.Pre (base, off) ->
      let addr = Int64.add (reg t base) (Int64.of_int off) in
      set_reg t base addr;
      addr
  | Insn.Post (base, off) ->
      let addr = reg t base in
      set_reg t base (Int64.add addr (Int64.of_int off));
      addr

let set_flags_sub t a b =
  let result = Int64.sub a b in
  t.flags.n <- Int64.compare result 0L < 0;
  t.flags.z <- result = 0L;
  t.flags.c <- Int64.unsigned_compare a b >= 0;
  let sa = Int64.compare a 0L < 0
  and sb = Int64.compare b 0L < 0
  and sr = Int64.compare result 0L < 0 in
  t.flags.v <- (sa <> sb) && (sr <> sa);
  result

let cond_holds t = function
  | Insn.Eq -> t.flags.z
  | Insn.Ne -> not t.flags.z
  | Insn.Lt -> t.flags.n <> t.flags.v
  | Insn.Ge -> t.flags.n = t.flags.v
  | Insn.Gt -> (not t.flags.z) && t.flags.n = t.flags.v
  | Insn.Le -> t.flags.z || t.flags.n <> t.flags.v

exception Stop of stop

(* Data-side accesses. The walk counter counts architectural walks,
   which the micro-TLB does not change: it bumps once per translation
   request whether the result comes from the cache or the tables,
   keeping telemetry bit-identical across cache configurations.
   [Icache.Translate_fault] propagates to the step loops, which convert
   it to a [Stop] with the current PC (unchanged until retirement
   bookkeeping is done, so the faulting PC is exact). *)
let[@inline] count_walk t =
  match t.sink with
  | Some s -> Telemetry.Counters.count_mmu_walk (Telemetry.Sink.counters s)
  | None -> ()

let load t ~access ~width va =
  count_walk t;
  match width with
  | `X -> Icache.read64_exn t.icache ~el:t.el va
  | `B ->
      Int64.of_int
        (Mem.read8 t.mem (Icache.translate_exn t.icache ~el:t.el ~access va))

let store t ~width va v =
  count_walk t;
  match width with
  | `X -> Icache.write64_exn t.icache ~el:t.el va v
  | `B ->
      Mem.write8 t.mem
        (Icache.translate_exn t.icache ~el:t.el ~access:Mmu.Write va)
        (Int64.to_int (Int64.logand v 0xffL))


(* Execute one decoded instruction. The PC has NOT yet been advanced;
   [next] is the fall-through address. *)
let execute t insn ~next =
  let branch target = t.pc <- target in
  let fallthrough () = t.pc <- next in
  match insn with
  | Insn.Nop | Insn.Isb -> fallthrough ()
  | Insn.Movz (rd, imm, sh) ->
      set_reg t rd (Int64.shift_left (Int64.of_int imm) sh);
      fallthrough ()
  | Insn.Movk (rd, imm, sh) ->
      set_reg t rd
        (Val64.insert ~lo:sh ~width:16 ~field:(Int64.of_int imm) (reg t rd));
      fallthrough ()
  | Insn.Mov (rd, rn) ->
      set_reg t rd (reg t rn);
      fallthrough ()
  | Insn.Add_imm (rd, rn, imm) ->
      set_reg t rd (Int64.add (reg t rn) (Int64.of_int imm));
      fallthrough ()
  | Insn.Sub_imm (rd, rn, imm) ->
      set_reg t rd (Int64.sub (reg t rn) (Int64.of_int imm));
      fallthrough ()
  | Insn.Add_reg (rd, rn, rm) ->
      set_reg t rd (Int64.add (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Sub_reg (rd, rn, rm) ->
      set_reg t rd (Int64.sub (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Subs_reg (rd, rn, rm) ->
      set_reg t rd (set_flags_sub t (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Subs_imm (rd, rn, imm) ->
      set_reg t rd (set_flags_sub t (reg t rn) (Int64.of_int imm));
      fallthrough ()
  | Insn.And_reg (rd, rn, rm) ->
      set_reg t rd (Int64.logand (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Orr_reg (rd, rn, rm) ->
      set_reg t rd (Int64.logor (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Eor_reg (rd, rn, rm) ->
      set_reg t rd (Int64.logxor (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Lsl_imm (rd, rn, sh) ->
      set_reg t rd (Int64.shift_left (reg t rn) sh);
      fallthrough ()
  | Insn.Lsr_imm (rd, rn, sh) ->
      set_reg t rd (Int64.shift_right_logical (reg t rn) sh);
      fallthrough ()
  | Insn.Bfi (rd, rn, lsb, width) ->
      set_reg t rd (Val64.insert ~lo:lsb ~width ~field:(reg t rn) (reg t rd));
      fallthrough ()
  | Insn.Ubfx (rd, rn, lsb, width) ->
      set_reg t rd (Val64.extract ~lo:lsb ~width (reg t rn));
      fallthrough ()
  | Insn.Adr (rd, target) ->
      set_reg t rd target;
      fallthrough ()
  | Insn.Ldr (rd, m) ->
      let va = effective_address t m in
      set_reg t rd (load t ~access:Mmu.Read ~width:`X va);
      fallthrough ()
  | Insn.Ldrb (rd, m) ->
      let va = effective_address t m in
      set_reg t rd (load t ~access:Mmu.Read ~width:`B va);
      fallthrough ()
  | Insn.Str (rs, m) ->
      let va = effective_address t m in
      store t ~width:`X va (reg t rs);
      fallthrough ()
  | Insn.Strb (rs, m) ->
      let va = effective_address t m in
      store t ~width:`B va (reg t rs);
      fallthrough ()
  | Insn.Ldp (r1, r2, m) ->
      let va = effective_address t m in
      set_reg t r1 (load t ~access:Mmu.Read ~width:`X va);
      set_reg t r2 (load t ~access:Mmu.Read ~width:`X (Int64.add va 8L));
      fallthrough ()
  | Insn.Stp (r1, r2, m) ->
      let va = effective_address t m in
      store t ~width:`X va (reg t r1);
      store t ~width:`X (Int64.add va 8L) (reg t r2);
      fallthrough ()
  | Insn.B target -> branch target
  | Insn.Bl target ->
      set_reg t Insn.lr next;
      branch target
  | Insn.Br rn -> branch (reg t rn)
  | Insn.Blr rn ->
      let target = reg t rn in
      set_reg t Insn.lr next;
      branch target
  | Insn.Ret -> branch (reg t Insn.lr)
  | Insn.Cbz (rn, target) -> if is_zero64 (reg t rn) then branch target else fallthrough ()
  | Insn.Cbnz (rn, target) ->
      if not (is_zero64 (reg t rn)) then branch target else fallthrough ()
  | Insn.Bcond (c, target) -> if cond_holds t c then branch target else fallthrough ()
  | Insn.Pac (k, rd, rm) ->
      set_reg t rd (do_pac t k (reg t rd) (reg t rm));
      fallthrough ()
  | Insn.Aut (k, rd, rm) ->
      set_reg t rd (do_aut t k (reg t rd) (reg t rm));
      fallthrough ()
  | Insn.Pac1716 k ->
      set_reg t Insn.ip1 (do_pac t k (reg t Insn.ip1) (reg t Insn.ip0));
      fallthrough ()
  | Insn.Aut1716 k ->
      set_reg t Insn.ip1 (do_aut t k (reg t Insn.ip1) (reg t Insn.ip0));
      fallthrough ()
  | Insn.Xpac rd ->
      let v = reg t rd in
      set_reg t rd (Vaddr.strip_pac (pointer_cfg t v) v);
      fallthrough ()
  | Insn.Pacga (rd, rn, rm) ->
      set_reg t rd
        (Pac.generic ~cipher:t.cipher ~key:(pac_key t Sysreg.GA) ~value:(reg t rn)
           ~modifier:(reg t rm));
      fallthrough ()
  | Insn.Blra (k, rn, rm) ->
      let target = do_aut t k (reg t rn) (reg t rm) in
      set_reg t Insn.lr next;
      branch target
  | Insn.Bra (k, rn, rm) -> branch (do_aut t k (reg t rn) (reg t rm))
  | Insn.Reta k -> branch (do_aut t k (reg t Insn.lr) (reg t Insn.SP))
  | Insn.Mrs (rd, sr) ->
      if t.el = El.El0 && not (Sysreg.el0_readable sr) then
        raise (Stop (Fault { fault = El_denied sr; pc = t.pc }));
      set_reg t rd (sysreg t sr);
      fallthrough ()
  | Insn.Msr (sr, rn) ->
      if t.el = El.El0 then raise (Stop (Fault { fault = El_denied sr; pc = t.pc }));
      if t.el = El.El1 && t.sysreg_locked sr then
        raise (Stop (Fault { fault = Hyp_denied sr; pc = t.pc }));
      set_sysreg t sr (reg t rn);
      fallthrough ()
  | Insn.Svc imm ->
      t.pc <- next;
      (match t.sink with
      | Some s -> Telemetry.Counters.count_exception_entry (Telemetry.Sink.counters s)
      | None -> ());
      raise (Stop (Svc imm))
  | Insn.Eret ->
      let spsr = sysreg t Sysreg.SPSR_EL1 in
      let target_el = if Val64.extract ~lo:2 ~width:2 spsr = 0L then El.El0 else El.El1 in
      t.el <- target_el;
      t.pc <- sysreg t Sysreg.ELR_EL1;
      (match t.sink with
      | Some s -> Telemetry.Counters.count_exception_return (Telemetry.Sink.counters s)
      | None -> ());
      raise (Stop Eret_done)
  | Insn.Brk imm ->
      t.pc <- next;
      raise (Stop (Brk imm))
  | Insn.Hlt imm ->
      t.pc <- next;
      raise (Stop (Hlt imm))

(* Fetch one instruction through the decoded-instruction cache,
   mapping cache-level errors to machine stops. The instruction-side
   walk counter bumps once per fetch regardless of a hit or miss. *)
let fetch t =
  (match t.sink with
  | Some s -> Telemetry.Counters.count_mmu_walk (Telemetry.Sink.counters s)
  | None -> ());
  match Icache.fetch t.icache ~el:t.el t.pc with
  | Ok insn -> Ok insn
  | Error (Icache.Fetch_fault f) -> Error (Fault { fault = Mmu_fault f; pc = t.pc })
  | Error (Icache.Fetch_undefined word) ->
      Error (Fault { fault = Undefined_instruction word; pc = t.pc })

(* Retirement bookkeeping common to both step paths. Allocation-free:
   the trace ring keeps pc and insn in parallel arrays, and the number
   of valid entries is [min insns_retired depth] since every retire
   writes one. *)
let retire t insn cost =
  t.cycles <- t.cycles + cost;
  t.insns_retired <- t.insns_retired + 1;
  Bigarray.Array1.unsafe_set t.trace_pc t.trace_pos t.pc;
  Array.unsafe_set t.trace_insn t.trace_pos insn;
  (* compare-and-wrap instead of [mod]: the ring advance sits on every
     retired instruction and an integer divide is the single most
     expensive ALU op in the loop *)
  let p = t.trace_pos + 1 in
  t.trace_pos <- (if p = Array.length t.trace_insn then 0 else p)

let step t =
  if is_sentinel t.pc then Some Sentinel_return
  else begin
    match fetch t with
    | Error s -> Some s
    | Ok insn -> (
        let action =
          match t.step_hook with
          | None -> Exec
          | Some h -> h t ~pc:t.pc insn
        in
        let cost = cost_of t insn in
        retire t insn cost;
        (match t.sink with
        | None -> ()
        | Some s ->
            Telemetry.Sink.retire s ~pc:t.pc ~cls:(class_of_insn insn)
              ~origin:(origin_of_insn insn) ~cycles:cost);
        let next = Int64.add t.pc 4L in
        match action with
        | Skip ->
            (* the instruction issues (is fetched, charged and traced)
               but its effects are suppressed: the PC just advances *)
            t.pc <- next;
            None
        | Exec -> (
            try
              execute t insn ~next;
              None
            with
            | Stop s -> Some s
            | Icache.Translate_fault f ->
                Some (Fault { fault = Mmu_fault f; pc = t.pc })))
  end

(* --- The traces tier: superblock compilation and dispatch. ---

   Hot straight-line regions are compiled into arrays of pre-bound
   closures ("ops") and driven by a tight loop — fetch, decode, the
   cost match and the dispatch match all disappear from the hot path.
   The contract is the same as the icache's, only stronger: guest
   state, cycles, retirement counts, the trace ring, fault kinds and
   stop reasons must be bit-identical to the interpreter.

   Invariants that make that hold:
   - at every op's start, [t.pc] is that op's instruction address (the
     previous op's epilogue set it, and the dispatcher only enters a
     block when [t.pc] equals its entry), so [retire]'s ring write and
     a faulting access both see the exact PC;
   - every op retires first and executes second, like [step], so a
     faulting instruction is still retired and charged;
   - blocks are cut at branches (compiled as terminators), PAC/AUT
     boundaries and exception-raising instructions, so every compiled
     instruction has a statically known cost and can never change EL;
   - the driver re-checks [Traces.live] between ops: a store that lands
     in the block's own code pages (the Bloom-screened [Mem] hook) kills
     the block mid-flight and the remaining ops are abandoned, exactly
     as the interpreter would re-fetch the patched word. *)

(* Instructions that end a block *before* themselves: dynamic cost
   (PAC family), EL/sysreg traffic, or a raise. They execute via the
   single-step path. *)
let is_cut = function
  | Insn.Pac _ | Insn.Aut _ | Insn.Pac1716 _ | Insn.Aut1716 _ | Insn.Xpac _
  | Insn.Pacga _ | Insn.Blra _ | Insn.Bra _ | Insn.Reta _ | Insn.Mrs _
  | Insn.Msr _ | Insn.Svc _ | Insn.Eret | Insn.Brk _ | Insn.Hlt _ ->
      true
  | _ -> false

(* Branches compile (as a block's last op) and seed chaining. *)
let is_terminator = function
  | Insn.B _ | Insn.Bl _ | Insn.Br _ | Insn.Blr _ | Insn.Ret | Insn.Cbz _
  | Insn.Cbnz _ | Insn.Bcond _ ->
      true
  | _ -> false

(* Compiled blocks are continuation-threaded: each op ends with a tail
   call to the next op's closure, so a full block run is one indirect
   call from the driver and a chain of tail calls — no per-op array
   indexing, bounds check or loop counter. An op that must abandon the
   block (a mispredicted inlined return, or a store that invalidated
   the block under its own feet) simply returns without calling its
   continuation; the driver recovers the retired count from the
   [insns_retired] delta. [block_end] terminates every chain. *)
let block_end () = ()

(* Only compiled stores can flip [bk_live] mid-block (the [Mem] write
   hook: self-modifying code, or data sharing a frame with block code);
   everything else that invalidates — MSR flush matrix, MMU generation,
   slot eviction — runs at block boundaries. So stores re-check
   liveness before tail-calling the rest of the chain, and other ops
   skip the check entirely. [self] is back-patched right after
   [Traces.install]. *)
let[@inline] block_alive self =
  match !self with Some b -> b.Traces.bk_live | None -> true

(* Compile-time operand accessors. A block executes entirely at its
   compile-time EL (the cut set excludes every EL-changing instruction
   and the dispatcher guards [bk_el] at entry), so the SP bank can be
   selected when the closure is built instead of on every execution. *)
let op_get t el = function
  | Insn.R n ->
      let regs = t.regs in
      fun () -> Array.unsafe_get regs n
  | Insn.XZR -> fun () -> 0L
  | Insn.SP -> fun () -> sp_of t el

let op_set t el = function
  | Insn.R n ->
      let regs = t.regs in
      fun v -> Array.unsafe_set regs n v
  | Insn.XZR -> fun _ -> ()
  | Insn.SP -> fun v -> set_sp_of t el v

(* Addressing-mode compiler: the mode dispatch and the offset boxing
   happen once, the writeback order matches [effective_address]
   exactly (writeback before the access, like the interpreter). The
   common base kinds get flat single-closure arms — no inner accessor
   call on the hot path. *)
let op_addr t el m =
  let regs = t.regs in
  match m with
  | Insn.Off (Insn.R b, off) ->
      let o = Int64.of_int off in
      fun () -> Int64.add (Array.unsafe_get regs b) o
  | Insn.Pre (Insn.R b, off) ->
      let o = Int64.of_int off in
      fun () ->
        let a = Int64.add (Array.unsafe_get regs b) o in
        Array.unsafe_set regs b a;
        a
  | Insn.Post (Insn.R b, off) ->
      let o = Int64.of_int off in
      fun () ->
        let a = Array.unsafe_get regs b in
        Array.unsafe_set regs b (Int64.add a o);
        a
  | Insn.Off (Insn.SP, off) ->
      let o = Int64.of_int off in
      fun () -> Int64.add (sp_of t el) o
  | Insn.Pre (Insn.SP, off) ->
      let o = Int64.of_int off in
      fun () ->
        let a = Int64.add (sp_of t el) o in
        set_sp_of t el a;
        a
  | Insn.Post (Insn.SP, off) ->
      let o = Int64.of_int off in
      fun () ->
        let a = sp_of t el in
        set_sp_of t el (Int64.add a o);
        a
  | Insn.Off (base, off) ->
      let g = op_get t el base and o = Int64.of_int off in
      fun () -> Int64.add (g ()) o
  | Insn.Pre (base, off) ->
      let g = op_get t el base
      and s = op_set t el base
      and o = Int64.of_int off in
      fun () ->
        let a = Int64.add (g ()) o in
        s a;
        a
  | Insn.Post (base, off) ->
      let g = op_get t el base
      and s = op_set t el base
      and o = Int64.of_int off in
      fun () ->
        let a = g () in
        s (Int64.add a o);
        a

(* Per-op single-entry data TLB for compiled memory ops: caches the
   frame bytes backing the last page the op touched, so the steady
   state is an int compare plus a direct [Bytes] access — no hash, no
   slot probe, no permission re-check. Sound because frame byte
   buffers are stable for the life of a [Mem], the fill checks the
   op's access kind against the page permissions, and any translation
   or permission change advances the MMU generation, which kills the
   owning block before its next dispatch. Stores still fire
   [Mem.notify_store], so icache/trace invalidation and snapshot dirty
   tracking observe them exactly as a [Mem.write64]. *)
type page_cache = {
  mutable pg_page : int;  (* VA page (63-bit), -1 when empty *)
  mutable pg_bytes : Bytes.t;
  mutable pg_frame : int;
}

let no_bytes = Bytes.create 0
let fresh_page_cache () = { pg_page = -1; pg_bytes = no_bytes; pg_frame = 0 }

let fill_page_cache t el access (c : page_cache) page va =
  match Icache.data_page t.icache ~el ~access va with
  | Some (fb, fi) ->
      c.pg_page <- page;
      c.pg_bytes <- fb;
      c.pg_frame <- fi
  | None -> ()

(* Compile one instruction into an op that tail-calls [k]. The common
   cases are specialized down to unsafe register-array accesses with
   every immediate pre-bound (captured boxed int64 constants cost
   nothing to reuse); everything else falls back to [execute], which
   still skips fetch/decode/cost on re-execution. [cost_of] is constant
   for every compilable class — the dynamic-cost instructions are all
   in [is_cut]. *)
let compile_op t insn ~next ~self k =
  let cost = cost_of t insn in
  let regs = t.regs in
  let el = t.el in
  match insn with
  | Insn.Nop | Insn.Isb ->
      fun () ->
        retire t insn cost;
        t.pc <- next;
        k ()
  | Insn.Movz (Insn.R d, imm, sh) ->
      let v = Int64.shift_left (Int64.of_int imm) sh in
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d v;
        t.pc <- next;
        k ()
  | Insn.Mov (Insn.R d, Insn.R n) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d (Array.unsafe_get regs n);
        t.pc <- next;
        k ()
  | Insn.Add_imm (Insn.R d, Insn.R n, imm) ->
      let i = Int64.of_int imm in
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d (Int64.add (Array.unsafe_get regs n) i);
        t.pc <- next;
        k ()
  | Insn.Sub_imm (Insn.R d, Insn.R n, imm) ->
      let i = Int64.of_int imm in
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d (Int64.sub (Array.unsafe_get regs n) i);
        t.pc <- next;
        k ()
  | Insn.Add_reg (Insn.R d, Insn.R n, Insn.R m) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d
          (Int64.add (Array.unsafe_get regs n) (Array.unsafe_get regs m));
        t.pc <- next;
        k ()
  | Insn.Sub_reg (Insn.R d, Insn.R n, Insn.R m) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d
          (Int64.sub (Array.unsafe_get regs n) (Array.unsafe_get regs m));
        t.pc <- next;
        k ()
  | Insn.And_reg (Insn.R d, Insn.R n, Insn.R m) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d
          (Int64.logand (Array.unsafe_get regs n) (Array.unsafe_get regs m));
        t.pc <- next;
        k ()
  | Insn.Orr_reg (Insn.R d, Insn.R n, Insn.R m) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d
          (Int64.logor (Array.unsafe_get regs n) (Array.unsafe_get regs m));
        t.pc <- next;
        k ()
  | Insn.Eor_reg (Insn.R d, Insn.R n, Insn.R m) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d
          (Int64.logxor (Array.unsafe_get regs n) (Array.unsafe_get regs m));
        t.pc <- next;
        k ()
  | Insn.Subs_reg (Insn.R d, Insn.R n, Insn.R m) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d
          (set_flags_sub t (Array.unsafe_get regs n) (Array.unsafe_get regs m));
        t.pc <- next;
        k ()
  | Insn.Subs_imm (Insn.R d, Insn.R n, imm) ->
      let i = Int64.of_int imm in
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d (set_flags_sub t (Array.unsafe_get regs n) i);
        t.pc <- next;
        k ()
  | Insn.Lsl_imm (Insn.R d, Insn.R n, sh) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d (Int64.shift_left (Array.unsafe_get regs n) sh);
        t.pc <- next;
        k ()
  | Insn.Lsr_imm (Insn.R d, Insn.R n, sh) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d
          (Int64.shift_right_logical (Array.unsafe_get regs n) sh);
        t.pc <- next;
        k ()
  | Insn.Adr (Insn.R d, target) ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d target;
        t.pc <- next;
        k ()
  | Insn.Movk (Insn.R d, imm, sh) ->
      let field = Int64.of_int imm in
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs d
          (Val64.insert ~lo:sh ~width:16 ~field (Array.unsafe_get regs d));
        t.pc <- next;
        k ()
  | Insn.Ldr (rd, m) ->
      let addr = op_addr t el m and set_d = op_set t el rd in
      let icache = t.icache in
      let c = fresh_page_cache () in
      fun () ->
        retire t insn cost;
        let a = addr () in
        let ai = Int64.to_int a in
        let page = ai lsr 12 and off = ai land 0xfff in
        if page = c.pg_page && off <= 4088 then
          set_d (Bytes.get_int64_le c.pg_bytes off)
        else begin
          set_d (Icache.read64_exn icache ~el a);
          fill_page_cache t el Mmu.Read c page a
        end;
        t.pc <- next;
        k ()
  | Insn.Str (rs, m) ->
      let addr = op_addr t el m and get_s = op_get t el rs in
      let icache = t.icache and mem = t.mem in
      let c = fresh_page_cache () in
      fun () ->
        retire t insn cost;
        let a = addr () in
        let ai = Int64.to_int a in
        let page = ai lsr 12 and off = ai land 0xfff in
        if page = c.pg_page && off <= 4088 then begin
          Bytes.set_int64_le c.pg_bytes off (get_s ());
          Mem.notify_store mem c.pg_frame
        end
        else begin
          Icache.write64_exn icache ~el a (get_s ());
          fill_page_cache t el Mmu.Write c page a
        end;
        t.pc <- next;
        if block_alive self then k ()
  | Insn.Ldrb (rd, m) ->
      let addr = op_addr t el m and set_d = op_set t el rd in
      let c = fresh_page_cache () in
      fun () ->
        retire t insn cost;
        let a = addr () in
        let ai = Int64.to_int a in
        let page = ai lsr 12 and off = ai land 0xfff in
        if page = c.pg_page then
          set_d (Int64.of_int (Char.code (Bytes.get c.pg_bytes off)))
        else begin
          set_d
            (Int64.of_int
               (Mem.read8 t.mem
                  (Icache.translate_exn t.icache ~el ~access:Mmu.Read a)));
          fill_page_cache t el Mmu.Read c page a
        end;
        t.pc <- next;
        k ()
  | Insn.Strb (rs, m) ->
      let addr = op_addr t el m and get_s = op_get t el rs in
      let mem = t.mem in
      let c = fresh_page_cache () in
      fun () ->
        retire t insn cost;
        let a = addr () in
        let ai = Int64.to_int a in
        let page = ai lsr 12 and off = ai land 0xfff in
        if page = c.pg_page then begin
          Bytes.set c.pg_bytes off
            (Char.chr (Int64.to_int (Int64.logand (get_s ()) 0xffL)));
          Mem.notify_store mem c.pg_frame
        end
        else begin
          Mem.write8 mem
            (Icache.translate_exn t.icache ~el ~access:Mmu.Write a)
            (Int64.to_int (Int64.logand (get_s ()) 0xffL));
          fill_page_cache t el Mmu.Write c page a
        end;
        t.pc <- next;
        if block_alive self then k ()
  | Insn.Ldp (r1, r2, m) ->
      let addr = op_addr t el m
      and set_1 = op_set t el r1
      and set_2 = op_set t el r2 in
      let icache = t.icache in
      let c = fresh_page_cache () in
      fun () ->
        retire t insn cost;
        let a = addr () in
        let ai = Int64.to_int a in
        let page = ai lsr 12 and off = ai land 0xfff in
        if page = c.pg_page && off <= 4080 then begin
          let fb = c.pg_bytes in
          set_1 (Bytes.get_int64_le fb off);
          set_2 (Bytes.get_int64_le fb (off + 8))
        end
        else begin
          set_1 (Icache.read64_exn icache ~el a);
          set_2 (Icache.read64_exn icache ~el (Int64.add a 8L));
          fill_page_cache t el Mmu.Read c page a
        end;
        t.pc <- next;
        k ()
  | Insn.Stp (r1, r2, m) ->
      let addr = op_addr t el m
      and get_1 = op_get t el r1
      and get_2 = op_get t el r2 in
      let icache = t.icache and mem = t.mem in
      let c = fresh_page_cache () in
      fun () ->
        retire t insn cost;
        let a = addr () in
        let ai = Int64.to_int a in
        let page = ai lsr 12 and off = ai land 0xfff in
        if page = c.pg_page && off <= 4080 then begin
          let fb = c.pg_bytes in
          Bytes.set_int64_le fb off (get_1 ());
          Bytes.set_int64_le fb (off + 8) (get_2 ());
          Mem.notify_store mem c.pg_frame
        end
        else begin
          Icache.write64_exn icache ~el a (get_1 ());
          Icache.write64_exn icache ~el (Int64.add a 8L) (get_2 ());
          fill_page_cache t el Mmu.Write c page a
        end;
        t.pc <- next;
        if block_alive self then k ()
  | Insn.B target ->
      fun () ->
        retire t insn cost;
        t.pc <- target;
        k ()
  | Insn.Bl target ->
      fun () ->
        retire t insn cost;
        Array.unsafe_set regs 30 next;
        t.pc <- target;
        k ()
  | Insn.Br (Insn.R n) ->
      fun () ->
        retire t insn cost;
        t.pc <- Array.unsafe_get regs n;
        k ()
  | Insn.Blr (Insn.R n) ->
      fun () ->
        retire t insn cost;
        (* read the target before writing lr: Blr x30 must branch to
           the old link register, like [execute] *)
        let target = Array.unsafe_get regs n in
        Array.unsafe_set regs 30 next;
        t.pc <- target;
        k ()
  | Insn.Ret ->
      fun () ->
        retire t insn cost;
        t.pc <- Array.unsafe_get regs 30;
        k ()
  | Insn.Cbz (Insn.R n, target) ->
      fun () ->
        retire t insn cost;
        (if is_zero64 (Array.unsafe_get regs n) then t.pc <- target
         else t.pc <- next);
        k ()
  | Insn.Cbnz (Insn.R n, target) ->
      fun () ->
        retire t insn cost;
        (if is_zero64 (Array.unsafe_get regs n) then t.pc <- next
         else t.pc <- target);
        k ()
  | Insn.Bcond (c, target) ->
      fun () ->
        retire t insn cost;
        (if cond_holds t c then t.pc <- target else t.pc <- next);
        k ()
  | _ ->
      (* XZR/SP operands, bitfield ops: rare enough to share the
         interpreter's executor. Liveness-checked like a store out of
         caution — nothing unspecialized writes memory today, but the
         check keeps that a local property of this match. *)
      fun () ->
        retire t insn cost;
        execute t insn ~next;
        if block_alive self then k ()

let max_block_len = 256

(* Walk forward from the current PC through the icache's (result-
   returning, architecturally pure) fetch, compiling until a cut point,
   a stopping terminator, a fetch failure or the length cap. The walk
   follows unconditional direct control flow instead of stopping at it —
   this is what makes the blocks superblocks:

   - [B]/[Bl] compile as ordinary ops (their epilogue sets the PC to
     the target, preserving the per-op PC invariant) and the walk
     continues at the target, inlining the callee straight into the
     block; [Bl] pushes its static return address on a compile-time
     stack;
   - a plain [Ret] reached with a pending return address compiles as a
     {e guarded} op: it predicts LR still holds the matching [Bl]'s
     return address (always true unless the callee clobbered LR), falls
     through in-block when the guard holds and drops its continuation —
     PC already set from the real LR — when it does not. The walk then
     continues at the predicted return site, so a call-heavy loop body
     becomes one block instead of three;
   Conditional and indirect branches still terminate the block (an
   unrolling variant that followed predicted conditional edges measured
   {e slower}: the unrolled copies defeat the cache residency of a
   short block's closures re-run every iteration). The physical frames
   the code was fetched from (callee pages included) become the block's
   store-invalidation key set. An entry whose first instruction is
   already a cut point is blacklisted so its hotness counter never
   fires again. *)
let compile_block t tr =
  let el = t.el in
  let entry = t.pc in
  (* back-patched with the installed block so store ops can check
     [bk_live] mid-chain *)
  let self = ref None in
  (* The walk accumulates continuation builders ([k -> op], head =
     last instruction) because an op's closure captures the *next*
     op, which does not exist yet on a forward walk; the final fold
     threads [block_end] backwards through the list. *)
  let rec walk pc rstack mks len frames =
    if len >= max_block_len then (mks, len, frames)
    else
      match Icache.fetch t.icache ~el pc with
      | Error _ -> (mks, len, frames)
      | Ok insn ->
          if is_cut insn then (mks, len, frames)
          else begin
            let frames =
              match Mmu.translate t.mmu ~el ~access:Mmu.Exec pc with
              | Ok pa ->
                  let f = Int64.to_int (Int64.shift_right_logical pa 12) in
                  if List.mem f frames then frames else f :: frames
              | Error _ -> frames
            in
            let next = Int64.add pc 4L in
            match insn with
            | Insn.B target ->
                walk target rstack
                  (compile_op t insn ~next ~self :: mks)
                  (len + 1) frames
            | Insn.Bl target ->
                walk target (next :: rstack)
                  (compile_op t insn ~next ~self :: mks)
                  (len + 1) frames
            | Insn.Ret when rstack <> [] ->
                let expected = List.hd rstack in
                let cost = cost_of t insn in
                let regs = t.regs in
                (* mispredicted return: PC is already set from the
                   real LR, so ending the chain here re-dispatches
                   from the right place *)
                let mk k () =
                  retire t insn cost;
                  let dest = Array.unsafe_get regs 30 in
                  t.pc <- dest;
                  if Int64.equal dest expected then k ()
                in
                walk expected (List.tl rstack) (mk :: mks) (len + 1) frames
            | _ ->
                let mks = compile_op t insn ~next ~self :: mks in
                if is_terminator insn then (mks, len + 1, frames)
                else walk next rstack mks (len + 1) frames
          end
  in
  match walk entry [] [] 0 [] with
  | [], _, _ ->
      Traces.blacklist tr ~el entry;
      None
  | mks, len, frames ->
      let code = List.fold_left (fun k mk -> mk k) block_end mks in
      let b = Traces.install tr ~el ~entry ~len ~frames code in
      self := Some b;
      Some b

(* Lookup-or-compile at a control-flow boundary. [sync] first: any
   map/unmap/stage-2 flip or snapshot restore moved the MMU generation
   and must flush before a stale block can be found. *)
let find_block t tr =
  Traces.sync tr;
  match Traces.lookup tr ~el:t.el t.pc with
  | Some _ as found -> found
  | None -> if Traces.bump tr ~el:t.el t.pc then compile_block t tr else None

(* The traces-tier driver. Guard checks at block entry are the
   conjunction the ISSUE names: liveness (store hooks + MSR flush
   matrix), the MMU generation (via [find_block]'s sync), EL and exact
   entry PC. [prev] carries the last completed block so the next lookup
   result can be linked as its chained successor; a valid chain skips
   both the sync and the slot probe, which is sound because every
   in-run invalidation source (stores, executed MSRs) kills blocks in
   place and the liveness check still runs. *)
let run_traces t tr max_insns =
  let tc = Traces.counters tr in
  (* Three mutually tail-recursive states instead of one [prev] option:
     no [Some] allocation per dispatch, and the chain-follow guard and
     stat accounting are direct field accesses. *)
  let rec go_boundary budget boundary =
    if budget <= 0 then Insn_limit
    else if is_sentinel t.pc then Sentinel_return
    else
      match if boundary then find_block t tr else None with
      | Some b when b.Traces.bk_len <= budget -> dispatch budget b
      | _ -> step_once budget
  (* after a fully completed block: try its chained successor first *)
  and go_chained budget pb =
    if budget <= 0 then Insn_limit
    else if is_sentinel t.pc then Sentinel_return
    else
      let blk =
        match pb.Traces.bk_next with
        | Some nb
          when nb.Traces.bk_live
               && nb.Traces.bk_el = t.el
               && Int64.equal nb.Traces.bk_entry t.pc ->
            tc.Traces.c_chain_follows <- tc.Traces.c_chain_follows + 1;
            Some nb
        | _ -> (
            match find_block t tr with
            | Some nb ->
                Traces.link tr pb nb;
                Some nb
            | None -> None)
      in
      match blk with
      | Some b when b.Traces.bk_len <= budget -> dispatch budget b
      | _ -> step_once budget
  and dispatch budget b =
    (* one indirect call runs the whole continuation-threaded chain;
       an op that aborts (mispredicted inlined return, store that
       invalidated the block) just drops its continuation. Every op
       retires exactly one instruction, so the retired count is the
       [insns_retired] delta — no loop counter at all. *)
    let r0 = t.insns_retired in
    b.Traces.bk_code ();
    let ran = t.insns_retired - r0 in
    tc.Traces.c_executed <- tc.Traces.c_executed + 1;
    tc.Traces.c_block_insns <- tc.Traces.c_block_insns + ran;
    (* an aborted block left the PC just past the last retired
       instruction; re-dispatch from there without chaining. A full
       run is fine to chain through even if its last op was a guard:
       [go_chained] re-guards on the entry PC. *)
    if ran = b.Traces.bk_len then go_chained (budget - ran) b
    else go_boundary (budget - ran) true
  and step_once budget =
    (* cold or cut code: one icache-tier step. The next PC is a
       compilation candidate when control transferred or when we
       just crossed a cut instruction (so the region after a PAC/
       AUT boundary still becomes a block). *)
    let insn = Icache.fetch_exn t.icache ~el:t.el t.pc in
    let cost = cost_of t insn in
    retire t insn cost;
    let fall = Int64.add t.pc 4L in
    execute t insn ~next:fall;
    go_boundary (budget - 1) (is_cut insn || not (Int64.equal t.pc fall))
  in
  try go_boundary max_insns true with
  | Stop s -> s
  | Icache.Translate_fault f -> Fault { fault = Mmu_fault f; pc = t.pc }
  | Icache.Fetch_stop (Icache.Fetch_fault f) ->
      Fault { fault = Mmu_fault f; pc = t.pc }
  | Icache.Fetch_stop (Icache.Fetch_undefined word) ->
      Fault { fault = Undefined_instruction word; pc = t.pc }

let run_stepped ~max_insns t fast =
  if fast then begin
    (* one exception frame for the whole run, not one per step *)
    let rec go budget =
      if budget <= 0 then Insn_limit
      else if is_sentinel t.pc then Sentinel_return
      else begin
        let insn = Icache.fetch_exn t.icache ~el:t.el t.pc in
        let cost = cost_of t insn in
        retire t insn cost;
        execute t insn ~next:(Int64.add t.pc 4L);
        go (budget - 1)
      end
    in
    try go max_insns with
    | Stop s -> s
    | Icache.Translate_fault f -> Fault { fault = Mmu_fault f; pc = t.pc }
    | Icache.Fetch_stop (Icache.Fetch_fault f) ->
        Fault { fault = Mmu_fault f; pc = t.pc }
    | Icache.Fetch_stop (Icache.Fetch_undefined word) ->
        Fault { fault = Undefined_instruction word; pc = t.pc }
  end
  else begin
    let rec go budget =
      if budget <= 0 then Insn_limit
      else
        match step t with
        | Some s -> s
        | None -> go (budget - 1)
    in
    go max_insns
  end

let run ?(max_insns = 10_000_000) t =
  let fast = Option.is_none t.step_hook && Option.is_none t.sink in
  t.last_run_fast <- fast;
  t.last_run_tier <-
    (match t.tier with Traces -> if fast then Traces else Icache | tr -> tr);
  match t.traces with
  | Some tr when fast -> run_traces t tr max_insns
  | _ -> run_stepped ~max_insns t fast

let last_run_fast t = t.last_run_fast
let last_run_tier t = t.last_run_tier

let call ?max_insns t addr =
  set_reg t Insn.lr sentinel;
  t.pc <- addr;
  run ?max_insns t

let recent_trace ?(limit = 16) t =
  let n = Array.length t.trace_insn in
  let valid = min t.insns_retired n in
  let rec collect acc idx remaining =
    if remaining = 0 then acc
    else
      let i = (idx + n) mod n in
      collect
        ((Bigarray.Array1.get t.trace_pc i, t.trace_insn.(i)) :: acc)
        (idx - 1) (remaining - 1)
  in
  collect [] (t.trace_pos - 1) (min limit valid)

let fold_sysregs t f acc =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.sysregs [] in
  let keys = List.sort compare keys in
  List.fold_left (fun acc k -> f acc k (Hashtbl.find t.sysregs k)) acc keys

(* Per-core state capture for machine snapshots. Everything mutable is
   copied, including host-side attachment state (step hook, sysreg lock,
   telemetry sink binding): a restore must drop hooks installed after
   the capture — fault injectors armed for one trial must not leak into
   the next. The sysreg table is written back directly rather than
   through [set_sysreg]; {!Machine.restore} performs one icache flush at
   the end instead of one per MMU-control register. *)
type captured = {
  c_regs : int64 array;
  c_sp_el0 : int64;
  c_sp_el1 : int64;
  c_sp_el2 : int64;
  c_pc : int64;
  c_el : El.t;
  c_n : bool;
  c_z : bool;
  c_v : bool;
  c_c : bool;
  c_sysregs : (Sysreg.t, int64) Hashtbl.t;
  c_cycles : int;
  c_insns_retired : int;
  c_sysreg_locked : Sysreg.t -> bool;
  c_trace_pc : int64 array;
  c_trace_insn : Insn.t array;
  c_trace_pos : int;
  c_step_hook : (t -> pc:int64 -> Insn.t -> hook_action) option;
  c_last_run_fast : bool;
  c_last_run_tier : tier;
}

let capture t =
  {
    c_regs = Array.copy t.regs;
    c_sp_el0 = t.sp_el0;
    c_sp_el1 = t.sp_el1;
    c_sp_el2 = t.sp_el2;
    c_pc = t.pc;
    c_el = t.el;
    c_n = t.flags.n;
    c_z = t.flags.z;
    c_v = t.flags.v;
    c_c = t.flags.c;
    c_sysregs = Hashtbl.copy t.sysregs;
    c_cycles = t.cycles;
    c_insns_retired = t.insns_retired;
    c_sysreg_locked = t.sysreg_locked;
    c_trace_pc =
      Array.init (Bigarray.Array1.dim t.trace_pc) (Bigarray.Array1.get t.trace_pc);
    c_trace_insn = Array.copy t.trace_insn;
    c_trace_pos = t.trace_pos;
    c_step_hook = t.step_hook;
    c_last_run_fast = t.last_run_fast;
    c_last_run_tier = t.last_run_tier;
  }

let restore t c =
  Array.blit c.c_regs 0 t.regs 0 (Array.length t.regs);
  t.sp_el0 <- c.c_sp_el0;
  t.sp_el1 <- c.c_sp_el1;
  t.sp_el2 <- c.c_sp_el2;
  t.pc <- c.c_pc;
  t.el <- c.c_el;
  t.flags.n <- c.c_n;
  t.flags.z <- c.c_z;
  t.flags.v <- c.c_v;
  t.flags.c <- c.c_c;
  Hashtbl.reset t.sysregs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.sysregs k v) c.c_sysregs;
  t.cycles <- c.c_cycles;
  t.insns_retired <- c.c_insns_retired;
  t.sysreg_locked <- c.c_sysreg_locked;
  Array.iteri (fun i v -> Bigarray.Array1.set t.trace_pc i v) c.c_trace_pc;
  Array.blit c.c_trace_insn 0 t.trace_insn 0 (Array.length t.trace_insn);
  t.trace_pos <- c.c_trace_pos;
  t.step_hook <- c.c_step_hook;
  t.last_run_fast <- c.c_last_run_fast;
  t.last_run_tier <- c.c_last_run_tier;
  (* compiled blocks may shadow state the restore just rewrote; the
     Mem-hook and generation channels catch most of it, but a flush
     here makes restore unconditional, mirroring Machine.restore's
     icache flush *)
  match t.traces with Some tr -> Traces.flush tr | None -> ()

let fault_to_string = function
  | Mmu_fault f -> Mmu.fault_to_string f
  | Undefined_instruction w -> Printf.sprintf "undefined instruction 0x%08lx" w
  | Hyp_denied sr -> Printf.sprintf "hypervisor denied write to %s" (Sysreg.name sr)
  | El_denied sr -> Printf.sprintf "EL0 access to %s denied" (Sysreg.name sr)

let dump_state ?trace_limit t =
  (* default to the full configured trace depth: deep oops traces used
     to truncate silently at the old default of 8 *)
  let trace_limit =
    match trace_limit with Some l -> l | None -> Array.length t.trace_insn
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "cpu%d: pc=0x%Lx el=%s cycles=%d insns=%d\n" t.id t.pc
       (match t.el with El.El0 -> "EL0" | El.El1 -> "EL1" | El.El2 -> "EL2")
       t.cycles t.insns_retired);
  for row = 0 to 7 do
    Buffer.add_string b " ";
    for col = 0 to 3 do
      let n = (row * 4) + col in
      if n < 31 then
        Buffer.add_string b (Printf.sprintf " x%-2d=%016Lx" n t.regs.(n))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.add_string b
    (Printf.sprintf "  sp_el0=%016Lx sp_el1=%016Lx\n" t.sp_el0 t.sp_el1);
  Buffer.add_string b
    (Printf.sprintf "  flags: n=%b z=%b c=%b v=%b\n" t.flags.n t.flags.z
       t.flags.c t.flags.v);
  (match t.sink with
  | None -> ()
  | Some s ->
      let snap = Telemetry.Counters.snapshot (Telemetry.Sink.counters s) in
      Buffer.add_string b
        (Printf.sprintf "  counters: %s\n" (Telemetry.Counters.to_string snap));
      (* span latency over whatever the event ring still holds — one
         summary line next to the counter file, empty kinds elided *)
      let hists =
        Telemetry.Span.histograms
          (Telemetry.Ring.to_list (Telemetry.Sink.ring s))
      in
      let cells =
        List.filter_map
          (fun (kind, h) ->
            if Telemetry.Hist.is_empty h then None
            else
              Some
                (Printf.sprintf "%s n=%Ld p50=%Ld p99=%Ld"
                   (Telemetry.Span.kind_name kind) (Telemetry.Hist.count h)
                   (Telemetry.Hist.p50 h) (Telemetry.Hist.p99 h)))
          hists
      in
      if cells <> [] then
        Buffer.add_string b
          (Printf.sprintf "  latency: %s\n" (String.concat " | " cells)));
  (match recent_trace ~limit:trace_limit t with
  | [] -> Buffer.add_string b "  trace: (empty)\n"
  | entries ->
      Buffer.add_string b "  trace (oldest first):\n";
      List.iter
        (fun (pc, insn) ->
          Buffer.add_string b
            (Printf.sprintf "    %Lx: %s\n" pc (Insn.to_string insn)))
        entries);
  Buffer.contents b

let stop_to_string = function
  | Svc imm -> Printf.sprintf "svc #%d" imm
  | Brk imm -> Printf.sprintf "brk #%d" imm
  | Hlt imm -> Printf.sprintf "hlt #%d" imm
  | Fault { fault; pc } -> Printf.sprintf "fault at pc=0x%Lx: %s" pc (fault_to_string fault)
  | Eret_done -> "eret"
  | Sentinel_return -> "sentinel return"
  | Insn_limit -> "instruction limit reached"
