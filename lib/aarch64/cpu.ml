module Val64 = Camo_util.Val64

type fault =
  | Mmu_fault of Mmu.fault
  | Undefined_instruction of int32
  | Hyp_denied of Sysreg.t
  | El_denied of Sysreg.t

type stop =
  | Svc of int
  | Brk of int
  | Hlt of int
  | Fault of { fault : fault; pc : int64 }
  | Eret_done
  | Sentinel_return
  | Insn_limit

type flags = { mutable n : bool; mutable z : bool; mutable v : bool; mutable c : bool }

type hook_action = Exec | Skip

type t = {
  regs : int64 array;
  mutable sp_el0 : int64;
  mutable sp_el1 : int64;
  mutable sp_el2 : int64;
  mutable pc : int64;
  mutable el : El.t;
  flags : flags;
  sysregs : (Sysreg.t, int64) Hashtbl.t;
  mem : Mem.t;
  mmu : Mmu.t;
  (* decoded-instruction cache + micro-TLB over (mem, mmu); possibly
     shared with sibling cores. Purely host-speed: never guest-visible. *)
  icache : Icache.t;
  cipher : Qarma.Block.t;
  cost : Cost.profile;
  (* native ints, not Int64: these are bumped once per retired
     instruction on the interpreter hot path and a boxed Int64
     read-modify-write there costs an allocation per step. 63 bits of
     cycles outlast any run by orders of magnitude. *)
  mutable cycles : int;
  mutable insns_retired : int;
  has_pauth : bool;
  user_cfg : Vaddr.config;
  kernel_cfg : Vaddr.config;
  mutable sysreg_locked : Sysreg.t -> bool;
  (* ring buffer of recently retired (pc, insn), newest last; parallel
     arrays so a retire stores two fields instead of allocating a
     [Some (pc, insn)] tuple per instruction. The PC ring is a Bigarray
     so the store is an unboxed write — no allocation, no GC barrier. *)
  trace_pc : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  trace_insn : Insn.t array;
  mutable trace_pos : int;
  id : int;
  (* pre-execute observation point; see set_step_hook *)
  mutable step_hook : (t -> pc:int64 -> Insn.t -> hook_action) option;
  (* telemetry endpoint; None (the default) must leave execution
     bit-identical to a build without telemetry *)
  mutable sink : Telemetry.Sink.t option;
  (* whether the last [run] took the hook-free fast loop *)
  mutable last_run_fast : bool;
}

(* A canonical kernel address that is never mapped: it survives PAC/AUT
   round trips (host-called protected functions sign it as their return
   address) and the fetch path checks for it before translation. *)
let sentinel = 0xffff_ffff_dead_0000L

(* Int64 equality on the step path: generic [=] dispatches through the
   polymorphic comparator (a C call per instruction). Compare the
   63-bit truncations first — an int compare — and confirm the rare
   near-miss with the real Int64 primitive. *)
let sentinel_lo = Int64.to_int sentinel

let[@inline] is_sentinel pc =
  Int64.to_int pc = sentinel_lo && Int64.equal pc sentinel

let[@inline] is_zero64 v = Int64.to_int v = 0 && Int64.equal v 0L

let create ?(cost = Cost.cortex_a53) ?(has_pauth = true) ?(user_cfg = Vaddr.linux_user)
    ?(kernel_cfg = Vaddr.linux_kernel) ?(cipher = Qarma.Block.create ()) ?mem ?mmu
    ?icache ?(icache_enabled = true) ?(trace_depth = 32) ?(id = 0) () =
  if trace_depth <= 0 then invalid_arg "Cpu.create: trace_depth";
  let mem = match mem with Some m -> m | None -> Mem.create () in
  let mmu = match mmu with Some m -> m | None -> Mmu.create () in
  let icache =
    match icache with
    | Some i -> i
    | None -> Icache.create ~enabled:icache_enabled ~mem ~mmu ()
  in
  {
    regs = Array.make 31 0L;
    sp_el0 = 0L;
    sp_el1 = 0L;
    sp_el2 = 0L;
    pc = 0L;
    el = El.El1;
    flags = { n = false; z = false; v = false; c = false };
    sysregs = Hashtbl.create 32;
    mem;
    mmu;
    icache;
    cipher;
    cost;
    cycles = 0;
    insns_retired = 0;
    has_pauth;
    user_cfg;
    kernel_cfg;
    sysreg_locked = (fun _ -> false);
    trace_pc =
      (let a = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout trace_depth in
       Bigarray.Array1.fill a 0L;
       a);
    trace_insn = Array.make trace_depth Insn.Nop;
    trace_pos = 0;
    id;
    step_hook = None;
    sink = None;
    last_run_fast = false;
  }

let mem t = t.mem
let mmu t = t.mmu
let icache t = t.icache
let id t = t.id
let cipher t = t.cipher
let cost_profile t = t.cost
let has_pauth t = t.has_pauth
let user_cfg t = t.user_cfg
let kernel_cfg t = t.kernel_cfg

let pointer_cfg t va =
  match Vaddr.select va with
  | Vaddr.Kernel -> t.kernel_cfg
  | Vaddr.User | Vaddr.Invalid -> t.user_cfg

let sp_of t = function
  | El.El0 -> t.sp_el0
  | El.El1 -> t.sp_el1
  | El.El2 -> t.sp_el2

let set_sp_of t el v =
  match el with
  | El.El0 -> t.sp_el0 <- v
  | El.El1 -> t.sp_el1 <- v
  | El.El2 -> t.sp_el2 <- v

(* [R n] is validated at decode/assembly time (n < 31), so the register
   file skips the bounds check on the hot path. *)
let reg t = function
  | Insn.R n -> Array.unsafe_get t.regs n
  | Insn.XZR -> 0L
  | Insn.SP -> sp_of t t.el

let set_reg t r v =
  match r with
  | Insn.R n -> Array.unsafe_set t.regs n v
  | Insn.XZR -> ()
  | Insn.SP -> set_sp_of t t.el v

let sysreg t sr =
  match sr with
  | Sysreg.CNTVCT_EL0 | Sysreg.PMCCNTR_EL0 -> Int64.of_int t.cycles
  | Sysreg.PMICNTR_EL0 -> Int64.of_int t.insns_retired
  | Sysreg.PMEVCNTR0_EL0 | Sysreg.PMEVCNTR1_EL0 | Sysreg.PMEVCNTR2_EL0 -> (
      (* event counters read 0 unless a telemetry sink is attached *)
      match t.sink with
      | None -> 0L
      | Some s ->
          let c = Telemetry.Sink.counters s in
          (match sr with
          | Sysreg.PMEVCNTR0_EL0 -> Telemetry.Counters.live_pac_ops c
          | Sysreg.PMEVCNTR1_EL0 -> Telemetry.Counters.live_aut_ops c
          | _ -> Telemetry.Counters.live_auth_failures c))
  | _ -> ( match Hashtbl.find_opt t.sysregs sr with Some v -> v | None -> 0L)

(* Writes to the MMU-control registers (TTBR0/TTBR1/SCTLR) or the ASID
   register flush the decoded-instruction cache: an address-space or
   translation-regime change may invalidate every cached decode. PAuth
   key registers are deliberately exempt — keys affect execution, never
   decode or translation, and the XOM setter rewrites them on every
   kernel entry. *)
let set_sysreg t sr v =
  Hashtbl.replace t.sysregs sr v;
  if Sysreg.is_mmu_control sr || sr = Sysreg.CONTEXTIDR_EL1 then
    Icache.flush t.icache

let flags_bits t =
  (if t.flags.n then 8 else 0)
  lor (if t.flags.z then 4 else 0)
  lor (if t.flags.c then 2 else 0)
  lor if t.flags.v then 1 else 0

let pc t = t.pc
let set_pc t v = t.pc <- v
let el t = t.el
let set_el t e = t.el <- e
let cycles t = Int64.of_int t.cycles
let insns_retired t = Int64.of_int t.insns_retired
let charge t n = t.cycles <- t.cycles + n
let set_sysreg_lock t f = t.sysreg_locked <- f
let set_step_hook t h = t.step_hook <- h
let attach_telemetry t s = t.sink <- Some s
let detach_telemetry t = t.sink <- None
let telemetry t = t.sink

let pac_key t k =
  let hi_reg, lo_reg = Sysreg.key_halves k in
  Pac.{ hi = sysreg t hi_reg; lo = sysreg t lo_reg }

let pauth_enabled t k =
  t.has_pauth
  &&
  match k with
  | Sysreg.GA -> true
  | Sysreg.IA | Sysreg.IB | Sysreg.DA | Sysreg.DB ->
      Val64.bit (Sysreg.sctlr_enable_bit k) (sysreg t Sysreg.SCTLR_EL1)

let cost_of t insn =
  let c = t.cost in
  match insn with
  | Insn.Movz _ | Insn.Movk _ | Insn.Mov _ | Insn.Add_imm _ | Insn.Sub_imm _
  | Insn.Add_reg _ | Insn.Sub_reg _ | Insn.Subs_reg _ | Insn.Subs_imm _ | Insn.And_reg _
  | Insn.Orr_reg _ | Insn.Eor_reg _ | Insn.Lsl_imm _ | Insn.Lsr_imm _ | Insn.Bfi _
  | Insn.Ubfx _ | Insn.Adr _ | Insn.Nop | Insn.Brk _ | Insn.Hlt _ ->
      c.alu
  | Insn.Ldr _ | Insn.Ldrb _ -> c.load
  | Insn.Ldp _ -> c.load + 1
  | Insn.Str _ | Insn.Strb _ -> c.store
  | Insn.Stp _ -> c.store + 1
  | Insn.B _ | Insn.Bl _ | Insn.Br _ | Insn.Blr _ | Insn.Ret | Insn.Cbz _ | Insn.Cbnz _
  | Insn.Bcond _ ->
      c.branch
  | Insn.Pac (k, _, _) | Insn.Aut (k, _, _) ->
      if pauth_enabled t k then c.pauth else c.alu
  | Insn.Pac1716 k | Insn.Aut1716 k -> if pauth_enabled t k then c.pauth else c.alu
  | Insn.Xpac _ -> if t.has_pauth then c.pauth else c.alu
  | Insn.Pacga _ -> if t.has_pauth then c.pauth else c.alu
  | Insn.Blra (k, _, _) | Insn.Bra (k, _, _) | Insn.Reta k ->
      c.branch + if pauth_enabled t k then c.pauth else 0
  | Insn.Mrs _ -> c.mrs
  | Insn.Msr _ -> c.msr
  | Insn.Svc _ -> c.exception_entry
  | Insn.Eret -> c.eret
  | Insn.Isb -> c.isb

(* Telemetry classification. Retirement class mirrors the cost_of
   grouping; the origin distinguishes CFI-added instructions (PAC
   construction, authentication, modifier arithmetic on the reserved
   ip0/ip1 registers — the PR 2 convention) from the baseline
   program. Both only run when a sink is attached. *)

let class_of_insn insn =
  let open Telemetry.Counters in
  match insn with
  | Insn.Movz _ | Insn.Movk _ | Insn.Mov _ | Insn.Add_imm _ | Insn.Sub_imm _
  | Insn.Add_reg _ | Insn.Sub_reg _ | Insn.Subs_reg _ | Insn.Subs_imm _ | Insn.And_reg _
  | Insn.Orr_reg _ | Insn.Eor_reg _ | Insn.Lsl_imm _ | Insn.Lsr_imm _ | Insn.Bfi _
  | Insn.Ubfx _ | Insn.Adr _ | Insn.Nop ->
      Alu
  | Insn.Ldr _ | Insn.Ldrb _ | Insn.Ldp _ -> Load
  | Insn.Str _ | Insn.Strb _ | Insn.Stp _ -> Store
  | Insn.B _ | Insn.Bl _ | Insn.Br _ | Insn.Blr _ | Insn.Ret | Insn.Cbz _ | Insn.Cbnz _
  | Insn.Bcond _ ->
      Branch
  | Insn.Pac _ | Insn.Pac1716 _ -> Pac
  | Insn.Pacga _ -> Pacga
  | Insn.Aut _ | Insn.Aut1716 _ -> Aut
  | Insn.Blra _ | Insn.Bra _ | Insn.Reta _ -> Auth_branch
  | Insn.Xpac _ -> Xpac
  | Insn.Mrs _ | Insn.Msr _ | Insn.Isb -> Sys
  | Insn.Svc _ | Insn.Eret | Insn.Brk _ | Insn.Hlt _ -> Exception

let origin_of_insn insn =
  let open Telemetry.Profile in
  match insn with
  | Insn.Pac _ | Insn.Pac1716 _ | Insn.Pacga _ -> Cfi_sign
  | Insn.Aut _ | Insn.Aut1716 _ | Insn.Xpac _ | Insn.Blra _ | Insn.Bra _
  | Insn.Reta _ ->
      Cfi_auth
  | _ ->
      let defs, uses = Insn.defs_uses insn in
      let reserved r = r = Insn.ip0 || r = Insn.ip1 in
      if List.exists reserved defs || List.exists reserved uses then Cfi_modifier
      else Baseline

(* PAC helpers used by the instruction semantics. *)

let do_pac t key ptr modifier =
  if pauth_enabled t key then
    let cfg = pointer_cfg t ptr in
    Pac.compute ~cipher:t.cipher ~key:(pac_key t key) ~cfg ~modifier ptr
  else ptr

let do_aut t key ptr modifier =
  if pauth_enabled t key then begin
    let cfg = pointer_cfg t ptr in
    match Pac.auth ~cipher:t.cipher ~key:(pac_key t key) ~cfg ~modifier ptr with
    | Ok stripped -> stripped
    | Error poisoned ->
        (match t.sink with
        | Some s -> Telemetry.Counters.count_auth_failure (Telemetry.Sink.counters s)
        | None -> ());
        poisoned
  end
  else ptr

(* Addressing-mode evaluation: returns the effective VA and applies any
   base-register writeback. *)
let effective_address t m =
  match m with
  | Insn.Off (base, off) -> Int64.add (reg t base) (Int64.of_int off)
  | Insn.Pre (base, off) ->
      let addr = Int64.add (reg t base) (Int64.of_int off) in
      set_reg t base addr;
      addr
  | Insn.Post (base, off) ->
      let addr = reg t base in
      set_reg t base (Int64.add addr (Int64.of_int off));
      addr

let set_flags_sub t a b =
  let result = Int64.sub a b in
  t.flags.n <- Int64.compare result 0L < 0;
  t.flags.z <- result = 0L;
  t.flags.c <- Int64.unsigned_compare a b >= 0;
  let sa = Int64.compare a 0L < 0
  and sb = Int64.compare b 0L < 0
  and sr = Int64.compare result 0L < 0 in
  t.flags.v <- (sa <> sb) && (sr <> sa);
  result

let cond_holds t = function
  | Insn.Eq -> t.flags.z
  | Insn.Ne -> not t.flags.z
  | Insn.Lt -> t.flags.n <> t.flags.v
  | Insn.Ge -> t.flags.n = t.flags.v
  | Insn.Gt -> (not t.flags.z) && t.flags.n = t.flags.v
  | Insn.Le -> t.flags.z || t.flags.n <> t.flags.v

exception Stop of stop

(* Data-side accesses. The walk counter counts architectural walks,
   which the micro-TLB does not change: it bumps once per translation
   request whether the result comes from the cache or the tables,
   keeping telemetry bit-identical across cache configurations.
   [Icache.Translate_fault] propagates to the step loops, which convert
   it to a [Stop] with the current PC (unchanged until retirement
   bookkeeping is done, so the faulting PC is exact). *)
let[@inline] count_walk t =
  match t.sink with
  | Some s -> Telemetry.Counters.count_mmu_walk (Telemetry.Sink.counters s)
  | None -> ()

let load t ~access ~width va =
  count_walk t;
  match width with
  | `X -> Icache.read64_exn t.icache ~el:t.el va
  | `B ->
      Int64.of_int
        (Mem.read8 t.mem (Icache.translate_exn t.icache ~el:t.el ~access va))

let store t ~width va v =
  count_walk t;
  match width with
  | `X -> Icache.write64_exn t.icache ~el:t.el va v
  | `B ->
      Mem.write8 t.mem
        (Icache.translate_exn t.icache ~el:t.el ~access:Mmu.Write va)
        (Int64.to_int (Int64.logand v 0xffL))


(* Execute one decoded instruction. The PC has NOT yet been advanced;
   [next] is the fall-through address. *)
let execute t insn ~next =
  let branch target = t.pc <- target in
  let fallthrough () = t.pc <- next in
  match insn with
  | Insn.Nop | Insn.Isb -> fallthrough ()
  | Insn.Movz (rd, imm, sh) ->
      set_reg t rd (Int64.shift_left (Int64.of_int imm) sh);
      fallthrough ()
  | Insn.Movk (rd, imm, sh) ->
      set_reg t rd
        (Val64.insert ~lo:sh ~width:16 ~field:(Int64.of_int imm) (reg t rd));
      fallthrough ()
  | Insn.Mov (rd, rn) ->
      set_reg t rd (reg t rn);
      fallthrough ()
  | Insn.Add_imm (rd, rn, imm) ->
      set_reg t rd (Int64.add (reg t rn) (Int64.of_int imm));
      fallthrough ()
  | Insn.Sub_imm (rd, rn, imm) ->
      set_reg t rd (Int64.sub (reg t rn) (Int64.of_int imm));
      fallthrough ()
  | Insn.Add_reg (rd, rn, rm) ->
      set_reg t rd (Int64.add (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Sub_reg (rd, rn, rm) ->
      set_reg t rd (Int64.sub (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Subs_reg (rd, rn, rm) ->
      set_reg t rd (set_flags_sub t (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Subs_imm (rd, rn, imm) ->
      set_reg t rd (set_flags_sub t (reg t rn) (Int64.of_int imm));
      fallthrough ()
  | Insn.And_reg (rd, rn, rm) ->
      set_reg t rd (Int64.logand (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Orr_reg (rd, rn, rm) ->
      set_reg t rd (Int64.logor (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Eor_reg (rd, rn, rm) ->
      set_reg t rd (Int64.logxor (reg t rn) (reg t rm));
      fallthrough ()
  | Insn.Lsl_imm (rd, rn, sh) ->
      set_reg t rd (Int64.shift_left (reg t rn) sh);
      fallthrough ()
  | Insn.Lsr_imm (rd, rn, sh) ->
      set_reg t rd (Int64.shift_right_logical (reg t rn) sh);
      fallthrough ()
  | Insn.Bfi (rd, rn, lsb, width) ->
      set_reg t rd (Val64.insert ~lo:lsb ~width ~field:(reg t rn) (reg t rd));
      fallthrough ()
  | Insn.Ubfx (rd, rn, lsb, width) ->
      set_reg t rd (Val64.extract ~lo:lsb ~width (reg t rn));
      fallthrough ()
  | Insn.Adr (rd, target) ->
      set_reg t rd target;
      fallthrough ()
  | Insn.Ldr (rd, m) ->
      let va = effective_address t m in
      set_reg t rd (load t ~access:Mmu.Read ~width:`X va);
      fallthrough ()
  | Insn.Ldrb (rd, m) ->
      let va = effective_address t m in
      set_reg t rd (load t ~access:Mmu.Read ~width:`B va);
      fallthrough ()
  | Insn.Str (rs, m) ->
      let va = effective_address t m in
      store t ~width:`X va (reg t rs);
      fallthrough ()
  | Insn.Strb (rs, m) ->
      let va = effective_address t m in
      store t ~width:`B va (reg t rs);
      fallthrough ()
  | Insn.Ldp (r1, r2, m) ->
      let va = effective_address t m in
      set_reg t r1 (load t ~access:Mmu.Read ~width:`X va);
      set_reg t r2 (load t ~access:Mmu.Read ~width:`X (Int64.add va 8L));
      fallthrough ()
  | Insn.Stp (r1, r2, m) ->
      let va = effective_address t m in
      store t ~width:`X va (reg t r1);
      store t ~width:`X (Int64.add va 8L) (reg t r2);
      fallthrough ()
  | Insn.B target -> branch target
  | Insn.Bl target ->
      set_reg t Insn.lr next;
      branch target
  | Insn.Br rn -> branch (reg t rn)
  | Insn.Blr rn ->
      let target = reg t rn in
      set_reg t Insn.lr next;
      branch target
  | Insn.Ret -> branch (reg t Insn.lr)
  | Insn.Cbz (rn, target) -> if is_zero64 (reg t rn) then branch target else fallthrough ()
  | Insn.Cbnz (rn, target) ->
      if not (is_zero64 (reg t rn)) then branch target else fallthrough ()
  | Insn.Bcond (c, target) -> if cond_holds t c then branch target else fallthrough ()
  | Insn.Pac (k, rd, rm) ->
      set_reg t rd (do_pac t k (reg t rd) (reg t rm));
      fallthrough ()
  | Insn.Aut (k, rd, rm) ->
      set_reg t rd (do_aut t k (reg t rd) (reg t rm));
      fallthrough ()
  | Insn.Pac1716 k ->
      set_reg t Insn.ip1 (do_pac t k (reg t Insn.ip1) (reg t Insn.ip0));
      fallthrough ()
  | Insn.Aut1716 k ->
      set_reg t Insn.ip1 (do_aut t k (reg t Insn.ip1) (reg t Insn.ip0));
      fallthrough ()
  | Insn.Xpac rd ->
      let v = reg t rd in
      set_reg t rd (Vaddr.strip_pac (pointer_cfg t v) v);
      fallthrough ()
  | Insn.Pacga (rd, rn, rm) ->
      set_reg t rd
        (Pac.generic ~cipher:t.cipher ~key:(pac_key t Sysreg.GA) ~value:(reg t rn)
           ~modifier:(reg t rm));
      fallthrough ()
  | Insn.Blra (k, rn, rm) ->
      let target = do_aut t k (reg t rn) (reg t rm) in
      set_reg t Insn.lr next;
      branch target
  | Insn.Bra (k, rn, rm) -> branch (do_aut t k (reg t rn) (reg t rm))
  | Insn.Reta k -> branch (do_aut t k (reg t Insn.lr) (reg t Insn.SP))
  | Insn.Mrs (rd, sr) ->
      if t.el = El.El0 && not (Sysreg.el0_readable sr) then
        raise (Stop (Fault { fault = El_denied sr; pc = t.pc }));
      set_reg t rd (sysreg t sr);
      fallthrough ()
  | Insn.Msr (sr, rn) ->
      if t.el = El.El0 then raise (Stop (Fault { fault = El_denied sr; pc = t.pc }));
      if t.el = El.El1 && t.sysreg_locked sr then
        raise (Stop (Fault { fault = Hyp_denied sr; pc = t.pc }));
      set_sysreg t sr (reg t rn);
      fallthrough ()
  | Insn.Svc imm ->
      t.pc <- next;
      (match t.sink with
      | Some s -> Telemetry.Counters.count_exception_entry (Telemetry.Sink.counters s)
      | None -> ());
      raise (Stop (Svc imm))
  | Insn.Eret ->
      let spsr = sysreg t Sysreg.SPSR_EL1 in
      let target_el = if Val64.extract ~lo:2 ~width:2 spsr = 0L then El.El0 else El.El1 in
      t.el <- target_el;
      t.pc <- sysreg t Sysreg.ELR_EL1;
      (match t.sink with
      | Some s -> Telemetry.Counters.count_exception_return (Telemetry.Sink.counters s)
      | None -> ());
      raise (Stop Eret_done)
  | Insn.Brk imm ->
      t.pc <- next;
      raise (Stop (Brk imm))
  | Insn.Hlt imm ->
      t.pc <- next;
      raise (Stop (Hlt imm))

(* Fetch one instruction through the decoded-instruction cache,
   mapping cache-level errors to machine stops. The instruction-side
   walk counter bumps once per fetch regardless of a hit or miss. *)
let fetch t =
  (match t.sink with
  | Some s -> Telemetry.Counters.count_mmu_walk (Telemetry.Sink.counters s)
  | None -> ());
  match Icache.fetch t.icache ~el:t.el t.pc with
  | Ok insn -> Ok insn
  | Error (Icache.Fetch_fault f) -> Error (Fault { fault = Mmu_fault f; pc = t.pc })
  | Error (Icache.Fetch_undefined word) ->
      Error (Fault { fault = Undefined_instruction word; pc = t.pc })

(* Retirement bookkeeping common to both step paths. Allocation-free:
   the trace ring keeps pc and insn in parallel arrays, and the number
   of valid entries is [min insns_retired depth] since every retire
   writes one. *)
let retire t insn cost =
  t.cycles <- t.cycles + cost;
  t.insns_retired <- t.insns_retired + 1;
  Bigarray.Array1.unsafe_set t.trace_pc t.trace_pos t.pc;
  Array.unsafe_set t.trace_insn t.trace_pos insn;
  t.trace_pos <- (t.trace_pos + 1) mod Array.length t.trace_insn

let step t =
  if is_sentinel t.pc then Some Sentinel_return
  else begin
    match fetch t with
    | Error s -> Some s
    | Ok insn -> (
        let action =
          match t.step_hook with
          | None -> Exec
          | Some h -> h t ~pc:t.pc insn
        in
        let cost = cost_of t insn in
        retire t insn cost;
        (match t.sink with
        | None -> ()
        | Some s ->
            Telemetry.Sink.retire s ~pc:t.pc ~cls:(class_of_insn insn)
              ~origin:(origin_of_insn insn) ~cycles:cost);
        let next = Int64.add t.pc 4L in
        match action with
        | Skip ->
            (* the instruction issues (is fetched, charged and traced)
               but its effects are suppressed: the PC just advances *)
            t.pc <- next;
            None
        | Exec -> (
            try
              execute t insn ~next;
              None
            with
            | Stop s -> Some s
            | Icache.Translate_fault f ->
                Some (Fault { fault = Mmu_fault f; pc = t.pc })))
  end

let run ?(max_insns = 10_000_000) t =
  let fast = Option.is_none t.step_hook && Option.is_none t.sink in
  t.last_run_fast <- fast;
  if fast then begin
    (* one exception frame for the whole run, not one per step *)
    let rec go budget =
      if budget <= 0 then Insn_limit
      else if is_sentinel t.pc then Sentinel_return
      else begin
        let insn = Icache.fetch_exn t.icache ~el:t.el t.pc in
        let cost = cost_of t insn in
        retire t insn cost;
        execute t insn ~next:(Int64.add t.pc 4L);
        go (budget - 1)
      end
    in
    try go max_insns with
    | Stop s -> s
    | Icache.Translate_fault f -> Fault { fault = Mmu_fault f; pc = t.pc }
    | Icache.Fetch_stop (Icache.Fetch_fault f) ->
        Fault { fault = Mmu_fault f; pc = t.pc }
    | Icache.Fetch_stop (Icache.Fetch_undefined word) ->
        Fault { fault = Undefined_instruction word; pc = t.pc }
  end
  else begin
    let rec go budget =
      if budget <= 0 then Insn_limit
      else
        match step t with
        | Some s -> s
        | None -> go (budget - 1)
    in
    go max_insns
  end

let last_run_fast t = t.last_run_fast

let call ?max_insns t addr =
  set_reg t Insn.lr sentinel;
  t.pc <- addr;
  run ?max_insns t

let recent_trace ?(limit = 16) t =
  let n = Array.length t.trace_insn in
  let valid = min t.insns_retired n in
  let rec collect acc idx remaining =
    if remaining = 0 then acc
    else
      let i = (idx + n) mod n in
      collect
        ((Bigarray.Array1.get t.trace_pc i, t.trace_insn.(i)) :: acc)
        (idx - 1) (remaining - 1)
  in
  collect [] (t.trace_pos - 1) (min limit valid)

let fold_sysregs t f acc =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.sysregs [] in
  let keys = List.sort compare keys in
  List.fold_left (fun acc k -> f acc k (Hashtbl.find t.sysregs k)) acc keys

(* Per-core state capture for machine snapshots. Everything mutable is
   copied, including host-side attachment state (step hook, sysreg lock,
   telemetry sink binding): a restore must drop hooks installed after
   the capture — fault injectors armed for one trial must not leak into
   the next. The sysreg table is written back directly rather than
   through [set_sysreg]; {!Machine.restore} performs one icache flush at
   the end instead of one per MMU-control register. *)
type captured = {
  c_regs : int64 array;
  c_sp_el0 : int64;
  c_sp_el1 : int64;
  c_sp_el2 : int64;
  c_pc : int64;
  c_el : El.t;
  c_n : bool;
  c_z : bool;
  c_v : bool;
  c_c : bool;
  c_sysregs : (Sysreg.t, int64) Hashtbl.t;
  c_cycles : int;
  c_insns_retired : int;
  c_sysreg_locked : Sysreg.t -> bool;
  c_trace_pc : int64 array;
  c_trace_insn : Insn.t array;
  c_trace_pos : int;
  c_step_hook : (t -> pc:int64 -> Insn.t -> hook_action) option;
  c_last_run_fast : bool;
}

let capture t =
  {
    c_regs = Array.copy t.regs;
    c_sp_el0 = t.sp_el0;
    c_sp_el1 = t.sp_el1;
    c_sp_el2 = t.sp_el2;
    c_pc = t.pc;
    c_el = t.el;
    c_n = t.flags.n;
    c_z = t.flags.z;
    c_v = t.flags.v;
    c_c = t.flags.c;
    c_sysregs = Hashtbl.copy t.sysregs;
    c_cycles = t.cycles;
    c_insns_retired = t.insns_retired;
    c_sysreg_locked = t.sysreg_locked;
    c_trace_pc =
      Array.init (Bigarray.Array1.dim t.trace_pc) (Bigarray.Array1.get t.trace_pc);
    c_trace_insn = Array.copy t.trace_insn;
    c_trace_pos = t.trace_pos;
    c_step_hook = t.step_hook;
    c_last_run_fast = t.last_run_fast;
  }

let restore t c =
  Array.blit c.c_regs 0 t.regs 0 (Array.length t.regs);
  t.sp_el0 <- c.c_sp_el0;
  t.sp_el1 <- c.c_sp_el1;
  t.sp_el2 <- c.c_sp_el2;
  t.pc <- c.c_pc;
  t.el <- c.c_el;
  t.flags.n <- c.c_n;
  t.flags.z <- c.c_z;
  t.flags.v <- c.c_v;
  t.flags.c <- c.c_c;
  Hashtbl.reset t.sysregs;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.sysregs k v) c.c_sysregs;
  t.cycles <- c.c_cycles;
  t.insns_retired <- c.c_insns_retired;
  t.sysreg_locked <- c.c_sysreg_locked;
  Array.iteri (fun i v -> Bigarray.Array1.set t.trace_pc i v) c.c_trace_pc;
  Array.blit c.c_trace_insn 0 t.trace_insn 0 (Array.length t.trace_insn);
  t.trace_pos <- c.c_trace_pos;
  t.step_hook <- c.c_step_hook;
  t.last_run_fast <- c.c_last_run_fast

let fault_to_string = function
  | Mmu_fault f -> Mmu.fault_to_string f
  | Undefined_instruction w -> Printf.sprintf "undefined instruction 0x%08lx" w
  | Hyp_denied sr -> Printf.sprintf "hypervisor denied write to %s" (Sysreg.name sr)
  | El_denied sr -> Printf.sprintf "EL0 access to %s denied" (Sysreg.name sr)

let dump_state ?trace_limit t =
  (* default to the full configured trace depth: deep oops traces used
     to truncate silently at the old default of 8 *)
  let trace_limit =
    match trace_limit with Some l -> l | None -> Array.length t.trace_insn
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "cpu%d: pc=0x%Lx el=%s cycles=%d insns=%d\n" t.id t.pc
       (match t.el with El.El0 -> "EL0" | El.El1 -> "EL1" | El.El2 -> "EL2")
       t.cycles t.insns_retired);
  for row = 0 to 7 do
    Buffer.add_string b " ";
    for col = 0 to 3 do
      let n = (row * 4) + col in
      if n < 31 then
        Buffer.add_string b (Printf.sprintf " x%-2d=%016Lx" n t.regs.(n))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.add_string b
    (Printf.sprintf "  sp_el0=%016Lx sp_el1=%016Lx\n" t.sp_el0 t.sp_el1);
  Buffer.add_string b
    (Printf.sprintf "  flags: n=%b z=%b c=%b v=%b\n" t.flags.n t.flags.z
       t.flags.c t.flags.v);
  (match t.sink with
  | None -> ()
  | Some s ->
      let snap = Telemetry.Counters.snapshot (Telemetry.Sink.counters s) in
      Buffer.add_string b
        (Printf.sprintf "  counters: %s\n" (Telemetry.Counters.to_string snap));
      (* span latency over whatever the event ring still holds — one
         summary line next to the counter file, empty kinds elided *)
      let hists =
        Telemetry.Span.histograms
          (Telemetry.Ring.to_list (Telemetry.Sink.ring s))
      in
      let cells =
        List.filter_map
          (fun (kind, h) ->
            if Telemetry.Hist.is_empty h then None
            else
              Some
                (Printf.sprintf "%s n=%Ld p50=%Ld p99=%Ld"
                   (Telemetry.Span.kind_name kind) (Telemetry.Hist.count h)
                   (Telemetry.Hist.p50 h) (Telemetry.Hist.p99 h)))
          hists
      in
      if cells <> [] then
        Buffer.add_string b
          (Printf.sprintf "  latency: %s\n" (String.concat " | " cells)));
  (match recent_trace ~limit:trace_limit t with
  | [] -> Buffer.add_string b "  trace: (empty)\n"
  | entries ->
      Buffer.add_string b "  trace (oldest first):\n";
      List.iter
        (fun (pc, insn) ->
          Buffer.add_string b
            (Printf.sprintf "    %Lx: %s\n" pc (Insn.to_string insn)))
        entries);
  Buffer.contents b

let stop_to_string = function
  | Svc imm -> Printf.sprintf "svc #%d" imm
  | Brk imm -> Printf.sprintf "brk #%d" imm
  | Hlt imm -> Printf.sprintf "hlt #%d" imm
  | Fault { fault; pc } -> Printf.sprintf "fault at pc=0x%Lx: %s" pc (fault_to_string fault)
  | Eret_done -> "eret"
  | Sentinel_return -> "sentinel return"
  | Insn_limit -> "instruction limit reached"
