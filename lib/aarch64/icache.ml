(* Decoded-instruction cache + micro-TLB for the interpreter hot path.

   Purely a host-speed structure: nothing here is guest-visible. Cycle
   charges, telemetry counters, fault kinds and all architectural state
   must be bit-identical with the cache on or off — the differential
   harness in test/test_icache.ml holds this line.

   Entries are keyed by (EL, VA page), not by physical frame: decoded
   instructions embed absolute branch/ADR targets computed from the PC
   at decode time, so the same physical word mapped at two virtual
   addresses decodes to two different [Insn.t] values. Each entry also
   memoizes the combined two-stage permission triple, so it doubles as
   a micro-TLB for data-side translations of the same page.

   Coherence has three channels:
   - a [Mem] write hook drops every entry whose decoded lines shadow
     the written frame (guest stores, host [Kmem] writes and
     fault-injector memory flips all funnel through [Mem]);
   - the [Mmu] generation counter: any map/unmap/stage-2 change flushes
     everything at the next lookup;
   - an explicit [flush] the CPU issues on writes to the MMU-control
     system registers (TTBR0/TTBR1/SCTLR) and CONTEXTIDR (ASID rolls).

   PAuth key-register writes deliberately do NOT flush: keys affect
   PAC computation at execute time, never decode or translation, so the
   affected-line set is empty — and the XOM key setter rewrites all
   five keys on every kernel entry, which would otherwise wipe the
   cache continuously. *)

type entry = {
  e_el : El.t;
  e_va_page : int;  (* va lsr 12 — exact, top 12 bits of the VA are shifted out *)
  e_pa_page : int64;
  e_perm : Mmu.perm;  (* combined stage-1 AND stage-2 permissions *)
  e_slot : int;
  e_frame_idx : int;  (* [Int64.to_int e_pa_page] — exact, 52 bits *)
  (* the physical frame's backing bytes, memoized on the first data
     access so cached loads/stores skip both PA reconstruction and the
     frame table (the same trick a real TLB plays by caching the host
     address); [Bytes.empty] until then *)
  mutable e_frame : Bytes.t;
  (* decoded lines for the page, lazily allocated on the first
     instruction fetch; [||] marks a translation-only (data) entry *)
  mutable e_lines : Insn.t option array;
}

let no_frame = Bytes.create 0

type stats = {
  fetch_hits : int;
  fetch_misses : int;
  fills : int;
  tlb_hits : int;
  tlb_misses : int;
  invalidations : int;
  flushes : int;
}

type counters = {
  mutable c_fetch_hits : int;
  mutable c_fetch_misses : int;
  mutable c_fills : int;
  mutable c_tlb_hits : int;
  mutable c_tlb_misses : int;
  mutable c_invalidations : int;
  mutable c_flushes : int;
}

type t = {
  mutable enabled : bool;
  slots : entry option array;  (* direct-mapped on (EL, VA page) *)
  (* frame index -> entries whose decoded lines shadow that frame;
     only entries with allocated lines are registered here *)
  by_frame : (int, entry list) Hashtbl.t;
  (* Bloom filter over the registered frame indices: a store whose
     frame bit is clear definitely shadows no decoded lines and skips
     the [by_frame] lookup. Registration sets bits; only [flush]
     clears them (unregistration leaves stale bits — conservative). *)
  mutable reg_mask : int;
  mutable gen : int;  (* Mmu generation observed at the last lookup *)
  mem : Mem.t;
  mmu : Mmu.t;
  c : counters;
}

type fetch_error = Fetch_fault of Mmu.fault | Fetch_undefined of int32

(* The raising fetch API exists for the interpreter's fast loop: a
   [result] return would allocate an [Ok] block per retired
   instruction. Faults are rare, so they pay the exception instead. *)
exception Fetch_stop of fetch_error

let slot_count = 1024
let lines_per_page = 1024  (* 4 KiB / 4-byte instructions *)

let el_index = function El.El0 -> 0 | El.El1 -> 1 | El.El2 -> 2

(* Fibonacci-multiply slot hash: plain xor-folding maps the common
   code/stack/data layouts (pages a power-of-two distance apart) onto
   one slot, so a loop's data page evicts its own code page every
   iteration. The golden-ratio multiply spreads those deltas. [lsr] is
   logical, so a product truncated to a negative native int still
   indexes safely. *)
let slot_of ~el va_page =
  (((va_page * 0x61C8_8647) lsr 13) * 2 + el_index el) land (slot_count - 1)

(* Golden-ratio spread of a frame index onto one of 32 filter bits. *)
let[@inline] bloom_bit frame = 1 lsl ((frame * 0x61C8_8647) lsr 5 land 31)

let flush t =
  Array.fill t.slots 0 slot_count None;
  Hashtbl.reset t.by_frame;
  t.reg_mask <- 0;
  t.c.c_flushes <- t.c.c_flushes + 1

(* Drop one entry: clear its slot (unless already evicted) and its
   frame registration. Called from the store hook. *)
let drop t e =
  (match t.slots.(e.e_slot) with
  | Some e' when e' == e -> t.slots.(e.e_slot) <- None
  | _ -> ());
  t.c.c_invalidations <- t.c.c_invalidations + 1

(* Runs on every store; almost always a miss, so the Bloom filter
   screens out frames that never held decoded lines before paying the
   table lookup. *)
let on_store t frame =
  if t.reg_mask land bloom_bit frame <> 0 then
    match Hashtbl.find t.by_frame frame with
    | entries ->
        Hashtbl.remove t.by_frame frame;
        List.iter (drop t) entries
    | exception Not_found -> ()

let create ?(enabled = true) ~mem ~mmu () =
  let t =
    {
      enabled;
      slots = Array.make slot_count None;
      by_frame = Hashtbl.create 64;
      reg_mask = 0;
      gen = Mmu.generation mmu;
      mem;
      mmu;
      c =
        {
          c_fetch_hits = 0;
          c_fetch_misses = 0;
          c_fills = 0;
          c_tlb_hits = 0;
          c_tlb_misses = 0;
          c_invalidations = 0;
          c_flushes = 0;
        };
    }
  in
  Mem.add_write_hook mem (fun frame -> on_store t frame);
  t

let enabled t = t.enabled

let set_enabled t on =
  if t.enabled <> on then begin
    t.enabled <- on;
    flush t
  end

let stats t =
  {
    fetch_hits = t.c.c_fetch_hits;
    fetch_misses = t.c.c_fetch_misses;
    fills = t.c.c_fills;
    tlb_hits = t.c.c_tlb_hits;
    tlb_misses = t.c.c_tlb_misses;
    invalidations = t.c.c_invalidations;
    flushes = t.c.c_flushes;
  }

(* Discard everything when translation tables changed underneath us. *)
let sync t =
  let g = Mmu.generation t.mmu in
  if g <> t.gen then begin
    flush t;
    t.gen <- g
  end

(* Remove an entry's frame registration (slot eviction path). *)
let unregister t e =
  if Array.length e.e_lines > 0 then begin
    let f = e.e_frame_idx in
    match Hashtbl.find_opt t.by_frame f with
    | None -> ()
    | Some l -> (
        match List.filter (fun x -> x != e) l with
        | [] -> Hashtbl.remove t.by_frame f
        | l' -> Hashtbl.replace t.by_frame f l')
  end

let install t ~el ~va_page ~pa_page ~perm =
  let slot = slot_of ~el va_page in
  (match t.slots.(slot) with Some old -> unregister t old | None -> ());
  let e =
    { e_el = el; e_va_page = va_page; e_pa_page = pa_page; e_perm = perm;
      e_slot = slot; e_frame_idx = Int64.to_int pa_page; e_frame = no_frame;
      e_lines = [||] }
  in
  t.slots.(slot) <- Some e;
  e

(* Memoize the frame's bytes on first data use. Frames are never
   replaced by [Mem], so the pointer stays valid for the entry's life. *)
let[@inline] frame_of_entry t e =
  if Bytes.length e.e_frame = 0 then begin
    let b = Mem.frame_bytes t.mem e.e_frame_idx in
    e.e_frame <- b;
    b
  end
  else e.e_frame

(* Allocate the decoded-line array on first instruction use and register
   the entry for store invalidation from that moment on. Data-only
   entries stay unregistered: their translation does not depend on the
   frame's contents, so stores must not evict them. *)
let lines_of t e =
  if Array.length e.e_lines = 0 then begin
    e.e_lines <- Array.make lines_per_page None;
    let f = e.e_frame_idx in
    let prev = match Hashtbl.find_opt t.by_frame f with Some l -> l | None -> [] in
    Hashtbl.replace t.by_frame f (e :: prev);
    t.reg_mask <- t.reg_mask lor bloom_bit f
  end;
  e.e_lines

let uncached_fetch_exn t ~el pc =
  match Mmu.translate t.mmu ~el ~access:Mmu.Exec pc with
  | Error f -> raise (Fetch_stop (Fetch_fault f))
  | Ok pa -> (
      let word = Mem.read32 t.mem pa in
      match Encode.decode ~pc word with
      | None -> raise (Fetch_stop (Fetch_undefined word))
      | Some insn -> insn)

(* Fill or hit one line of an installed executable entry. [off] is the
   page offset of the PC as a native int (low 12 bits are unaffected by
   the 63-bit truncation). Decode failures are never cached: the
   undefined word is re-read on every attempt, exactly like the
   uncached path. *)
let line_fetch_exn t e pc off =
  let lines = lines_of t e in
  let line = off lsr 2 in
  match Array.unsafe_get lines line with
  | Some insn ->
      t.c.c_fetch_hits <- t.c.c_fetch_hits + 1;
      insn
  | None -> (
      t.c.c_fills <- t.c.c_fills + 1;
      let pa = Int64.logor (Int64.shift_left e.e_pa_page 12) (Int64.of_int off) in
      let word = Mem.read32 t.mem pa in
      match Encode.decode ~pc word with
      | None -> raise (Fetch_stop (Fetch_undefined word))
      | Some insn ->
          Array.unsafe_set lines line (Some insn);
          insn)

let fetch_exn t ~el pc =
  if (not t.enabled) || el = El.El2 then uncached_fetch_exn t ~el pc
  else begin
    sync t;
    let va_page = Int64.to_int (Int64.shift_right_logical pc 12) in
    let off = Int64.to_int pc land 0xfff in
    match t.slots.(slot_of ~el va_page) with
    | Some e
      when e.e_va_page = va_page && e.e_el = el && e.e_perm.Mmu.x
           && off land 3 = 0 ->
        line_fetch_exn t e pc off
    | _ -> (
        t.c.c_fetch_misses <- t.c.c_fetch_misses + 1;
        match Mmu.probe t.mmu ~el (Int64.of_int va_page) with
        | Some (pa_page, perm) when perm.Mmu.x && off land 3 = 0 ->
            let e = install t ~el ~va_page ~pa_page ~perm in
            line_fetch_exn t e pc off
        | _ ->
            (* unmapped, not executable, or a misaligned PC: take the
               real walk so the fault kind is exact *)
            uncached_fetch_exn t ~el pc)
  end

let fetch t ~el pc =
  match fetch_exn t ~el pc with
  | insn -> Ok insn
  | exception Fetch_stop e -> Error e

exception Translate_fault of Mmu.fault

let translate_exn t ~el ~access va =
  if (not t.enabled) || el = El.El2 then
    match Mmu.translate t.mmu ~el ~access va with
    | Ok pa -> pa
    | Error f -> raise (Translate_fault f)
  else begin
    sync t;
    let va_page = Int64.to_int (Int64.shift_right_logical va 12) in
    match t.slots.(slot_of ~el va_page) with
    | Some e
      when e.e_va_page = va_page && e.e_el = el && Mmu.allows e.e_perm access ->
        t.c.c_tlb_hits <- t.c.c_tlb_hits + 1;
        Int64.logor (Int64.shift_left e.e_pa_page 12) (Int64.logand va 0xfffL)
    | _ -> (
        t.c.c_tlb_misses <- t.c.c_tlb_misses + 1;
        match Mmu.probe t.mmu ~el (Int64.of_int va_page) with
        | Some (pa_page, perm) when Mmu.allows perm access ->
            ignore (install t ~el ~va_page ~pa_page ~perm : entry);
            Int64.logor (Int64.shift_left pa_page 12) (Int64.logand va 0xfffL)
        | _ -> (
            (* denied or unmapped: real walk for the exact fault kind *)
            match Mmu.translate t.mmu ~el ~access va with
            | Ok pa -> pa
            | Error f -> raise (Translate_fault f)))
  end

let translate t ~el ~access va =
  match translate_exn t ~el ~access va with
  | pa -> Ok pa
  | exception Translate_fault f -> Error f

(* Whole-access fast paths: a micro-TLB hit resolves a 64-bit load or
   store directly against the memoized frame bytes, skipping the PA
   reconstruction and the frame table. Accesses that straddle a page
   boundary (offset > 4088) and every miss fall back to the exact
   translate-then-[Mem] path; stores still run the write hooks via
   [Mem.notify_store], so invalidation sees them. *)
let read64_exn t ~el va =
  if (not t.enabled) || el = El.El2 then
    Mem.read64 t.mem (translate_exn t ~el ~access:Mmu.Read va)
  else begin
    sync t;
    let off = Int64.to_int va land 0xfff in
    let va_page = Int64.to_int (Int64.shift_right_logical va 12) in
    match t.slots.(slot_of ~el va_page) with
    | Some e
      when e.e_va_page = va_page && e.e_el = el && e.e_perm.Mmu.r && off <= 4088
      ->
        t.c.c_tlb_hits <- t.c.c_tlb_hits + 1;
        Bytes.get_int64_le (frame_of_entry t e) off
    | _ -> Mem.read64 t.mem (translate_exn t ~el ~access:Mmu.Read va)
  end

let write64_exn t ~el va v =
  if (not t.enabled) || el = El.El2 then
    Mem.write64 t.mem (translate_exn t ~el ~access:Mmu.Write va) v
  else begin
    sync t;
    let off = Int64.to_int va land 0xfff in
    let va_page = Int64.to_int (Int64.shift_right_logical va 12) in
    match t.slots.(slot_of ~el va_page) with
    | Some e
      when e.e_va_page = va_page && e.e_el = el && e.e_perm.Mmu.w && off <= 4088
      ->
        t.c.c_tlb_hits <- t.c.c_tlb_hits + 1;
        Bytes.set_int64_le (frame_of_entry t e) off v;
        Mem.notify_store t.mem e.e_frame_idx
    | _ -> Mem.write64 t.mem (translate_exn t ~el ~access:Mmu.Write va) v
  end

(* Fill path for the trace tier's per-op page caches: resolve the page
   backing [va] for [access] and hand out its frame bytes and frame
   index. Frame byte buffers are stable for the life of the [Mem]
   (see [Mem.frame_bytes]), so the caller may keep the pair for as
   long as the MMU generation stands still — any translation or
   permission change advances it, and the trace tier kills the owning
   block before its next dispatch. *)
let data_page t ~el ~access va =
  if (not t.enabled) || el = El.El2 then None
  else begin
    sync t;
    let va_page = Int64.to_int (Int64.shift_right_logical va 12) in
    match t.slots.(slot_of ~el va_page) with
    | Some e
      when e.e_va_page = va_page && e.e_el = el && Mmu.allows e.e_perm access
      ->
        Some (frame_of_entry t e, e.e_frame_idx)
    | _ -> (
        match Mmu.probe t.mmu ~el (Int64.of_int va_page) with
        | Some (pa_page, perm) when Mmu.allows perm access ->
            let e = install t ~el ~va_page ~pa_page ~perm in
            Some (frame_of_entry t e, e.e_frame_idx)
        | _ -> None)
  end
