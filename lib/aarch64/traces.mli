(** Superblock trace cache for the interpreter's top execution tier.

    Detects hot straight-line regions by per-entry execution counters
    (keyed by (EL, entry PC), mirroring the icache's (EL, VA page)
    keying) and stores the compiled form the CPU layer produces for
    them. The cache is parametric in the compiled representation
    (['code]) so that this module carries no dependency on the
    interpreter: {!Cpu} compiles blocks into pre-linked closure arrays
    and drives them; this module owns hotness, block lookup,
    block-to-block chaining metadata and — the critical part — the
    invalidation machinery, reused wholesale from the decoded
    instruction cache:

    - a {!Mem} write hook drops every block whose compiled code spans
      the written frame, screened by the same golden-ratio Bloom filter
      the icache uses, so self-modifying code and module unload/reload
      kill traces exactly as they kill decoded lines;
    - the {!Mmu} generation counter: any map/unmap/stage-2 change
      flushes everything at the next {!sync};
    - an explicit {!flush} the CPU issues on MMU-control/CONTEXTIDR
      system-register writes (the MSR flush matrix).

    Like the icache, this is a host-speed structure only: nothing here
    is guest-visible, and execution with traces on or off must stay
    bit-identical (the three-tier differential fuzzer in
    [test/test_fuzz.ml] holds this line). *)

type 'code t

(** A compiled superblock: straight-line code starting at [bk_entry],
    cut at PAC/AUT boundaries and exception-raising instructions (the
    compiler may walk through unconditional direct branches, so a block
    can span calls). Blocks die in place ([bk_live] turns false) rather
    than being removed, so a driver mid-block can observe invalidation
    after every instruction — the self-patching-store-inside-an-active-
    superblock case.

    The record is exposed so the dispatch loop reads [bk_live],
    [bk_next] and the entry guards as direct field loads (they sit on
    the per-instruction hot path); treat every field as read-only
    outside this module. *)
type 'code block = {
  bk_el : El.t;
  bk_entry : int64;
  bk_len : int;  (** guest instructions retired by a full run *)
  bk_code : 'code;
  bk_slot : int;
  bk_frames : int array;  (** physical frames the code was fetched from *)
  mutable bk_live : bool;
  mutable bk_next : 'code block option;  (** chained successor, a hint *)
}

(** [create ~mem ~mmu ()] registers the store-invalidation hook on
    [mem]. Blocks compiled by one CPU capture that CPU's register file,
    so unlike the icache a trace cache is per-core; cross-core stores
    still invalidate because all cores share one {!Mem}.
    [hot_threshold] is the number of boundary executions of an entry PC
    before it is considered hot (default 16). *)
val create : ?hot_threshold:int -> mem:Mem.t -> mmu:Mmu.t -> unit -> 'code t

(** [flush t] kills every block, resets the hotness counters and the
    frame registrations (the TTBR/SCTLR/ASID-write path, and the
    machine-restore path). *)
val flush : 'code t -> unit

(** [sync t] flushes iff the MMU generation moved since the last call:
    map/unmap/stage-2 permission flips and snapshot restores all advance
    the generation, so stale traces self-invalidate at the next block
    boundary. *)
val sync : 'code t -> unit

(** [lookup t ~el pc] — the live block entered at exactly [(el, pc)],
    if one is compiled. Callers must {!sync} first at any point where
    the tables may have changed. *)
val lookup : 'code t -> el:El.t -> int64 -> 'code block option

(** [bump t ~el pc] — count one boundary execution of [(el, pc)];
    [true] when the counter crosses the hot threshold and the entry is
    not blacklisted, i.e. the caller should compile now. *)
val bump : 'code t -> el:El.t -> int64 -> bool

(** [blacklist t ~el pc] — mark an entry uncompilable (its first
    instruction is a cut point); {!bump} returns [false] forever after,
    until a {!flush} forgives it. *)
val blacklist : 'code t -> el:El.t -> int64 -> unit

(** [install t ~el ~entry ~len ~frames code] — publish a compiled
    block: [len] is the number of guest instructions it retires,
    [frames] the physical frame indices its code was fetched from (the
    store-invalidation key set). Evicts (kills) any block already in
    the slot. *)
val install :
  'code t -> el:El.t -> entry:int64 -> len:int -> frames:int list -> 'code ->
  'code block

(** [link t b succ] — record [succ] as [b]'s chained successor, so the
    driver skips the slot lookup when the same block-to-block edge
    repeats. Chains are hints: the driver must still check {!live},
    the EL and the entry PC before following one. *)
val link : 'code t -> 'code block -> 'code block -> unit

val entry_pc : 'code block -> int64
val block_el : 'code block -> El.t

(** Guest instructions the block retires when it runs to completion. *)
val block_len : 'code block -> int

val code : 'code block -> 'code

(** [live b] — false once any invalidation channel killed the block.
    Drivers check this between instructions. *)
val live : 'code block -> bool

(** The chained successor installed by {!link}, unvalidated. *)
val next : 'code block -> 'code block option

(** [note_exec t ~insns] — account one block dispatch that retired
    [insns] guest instructions (less than {!block_len} if the block was
    invalidated under its own feet). *)
val note_exec : 'code t -> insns:int -> unit

(** [note_chain t] — account one successful chain-follow. *)
val note_chain : 'code t -> unit

(** The live counters behind {!stats}, exposed as mutable fields so the
    dispatch loop accounts block executions and chain follows with a
    direct increment instead of a call per dispatch. Callers other than
    the driver must treat them as read-only. *)
type counters = {
  mutable c_compiled : int;
  mutable c_executed : int;
  mutable c_block_insns : int;
  mutable c_invalidations : int;
  mutable c_flushes : int;
  mutable c_chain_links : int;
  mutable c_chain_follows : int;
  mutable c_blacklisted : int;
}

val counters : 'code t -> counters

(** Host-side effectiveness counters (never guest-visible). *)
type stats = {
  compiled : int;  (** blocks compiled and installed *)
  executed : int;  (** block dispatches *)
  block_insns : int;  (** guest instructions retired inside blocks *)
  invalidations : int;  (** blocks killed by the store hook or eviction *)
  flushes : int;
  chain_links : int;  (** block-to-block edges recorded *)
  chain_follows : int;  (** dispatches that skipped the slot lookup *)
  blacklisted : int;  (** entries found uncompilable *)
}

val stats : 'code t -> stats
