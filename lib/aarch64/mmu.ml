type perm = { r : bool; w : bool; x : bool }

let no_access = { r = false; w = false; x = false }
let rwx = { r = true; w = true; x = true }
let rw = { r = true; w = true; x = false }
let ro = { r = true; w = false; x = false }
let rx = { r = true; w = false; x = true }
let xo = { r = false; w = false; x = true }

type access = Read | Write | Exec

type fault_kind = Translation | Permission | Stage2_permission

type fault = { kind : fault_kind; va : int64; access : access }

type s1_entry = { pa_page : int64; el0 : perm; el1 : perm }

type t = {
  stage1 : (int64, s1_entry) Hashtbl.t;
  stage2 : (int64, perm) Hashtbl.t;
  mutable generation : int;
}

let create () =
  { stage1 = Hashtbl.create 256; stage2 = Hashtbl.create 64; generation = 0 }

let generation t = t.generation

let map t ~va_page ~pa_page ~el0 ~el1 =
  t.generation <- t.generation + 1;
  Hashtbl.replace t.stage1 va_page { pa_page; el0; el1 }

let unmap t ~va_page =
  t.generation <- t.generation + 1;
  Hashtbl.remove t.stage1 va_page

let stage1_lookup t va_page =
  match Hashtbl.find_opt t.stage1 va_page with
  | Some e -> Some (e.pa_page, e.el0, e.el1)
  | None -> None

let stage2_protect t ~pa_page perm =
  t.generation <- t.generation + 1;
  Hashtbl.replace t.stage2 pa_page perm

let stage2_lookup t pa_page = Hashtbl.find_opt t.stage2 pa_page

let allows perm access =
  match access with Read -> perm.r | Write -> perm.w | Exec -> perm.x

(* Stage 1 implicitly grants EL1 read on any mapping (VMSAv8 has no
   EL1 execute-only encoding): model that by or-ing in the read bit. *)
let effective_el1 perm = { perm with r = true }

let translate t ~el ~access va =
  let va_page = Int64.shift_right_logical va 12 in
  match Hashtbl.find_opt t.stage1 va_page with
  | None -> Error { kind = Translation; va; access }
  | Some entry ->
      let s1_perm =
        match el with
        | El.El0 -> entry.el0
        | El.El1 -> effective_el1 entry.el1
        | El.El2 -> invalid_arg "Mmu.translate: EL2 is not subject to this walk"
      in
      if not (allows s1_perm access) then Error { kind = Permission; va; access }
      else begin
        let s2_perm =
          match Hashtbl.find_opt t.stage2 entry.pa_page with
          | Some p -> p
          | None -> rwx
        in
        if not (allows s2_perm access) then Error { kind = Stage2_permission; va; access }
        else
          Ok (Int64.logor (Int64.shift_left entry.pa_page 12) (Int64.logand va 0xfffL))
      end

(* Both-stage permission summary for one page, with the same EL
   semantics as [translate] (including the implicit EL1 read grant).
   Powers the micro-TLB: a cached (pa_page, perm) pair stays valid
   until [generation] moves, so callers can combine one probe with a
   generation check instead of re-walking both stages per access. *)
let probe t ~el va_page =
  match Hashtbl.find_opt t.stage1 va_page with
  | None -> None
  | Some entry ->
      let s1 =
        match el with
        | El.El0 -> entry.el0
        | El.El1 -> effective_el1 entry.el1
        | El.El2 -> invalid_arg "Mmu.probe: EL2 is not subject to this walk"
      in
      let s2 =
        match Hashtbl.find_opt t.stage2 entry.pa_page with
        | Some p -> p
        | None -> rwx
      in
      Some (entry.pa_page, { r = s1.r && s2.r; w = s1.w && s2.w; x = s1.x && s2.x })

type snapshot = {
  s_stage1 : (int64, s1_entry) Hashtbl.t;
  s_stage2 : (int64, perm) Hashtbl.t;
}

let snapshot t =
  { s_stage1 = Hashtbl.copy t.stage1; s_stage2 = Hashtbl.copy t.stage2 }

(* Restore refills the tables but *advances* the generation rather than
   restoring it: a micro-TLB entry filled after the snapshot must not
   find its fill-time generation current again. *)
let restore t s =
  Hashtbl.reset t.stage1;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.stage1 k v) s.s_stage1;
  Hashtbl.reset t.stage2;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.stage2 k v) s.s_stage2;
  t.generation <- t.generation + 1

let fold_stage1 t f acc =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.stage1 [] in
  let keys = List.sort compare keys in
  List.fold_left
    (fun acc k ->
      let e = Hashtbl.find t.stage1 k in
      f acc k (e.pa_page, e.el0, e.el1))
    acc keys

let fold_stage2 t f acc =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.stage2 [] in
  let keys = List.sort compare keys in
  List.fold_left (fun acc k -> f acc k (Hashtbl.find t.stage2 k)) acc keys

let access_name = function Read -> "read" | Write -> "write" | Exec -> "exec"

let fault_to_string f =
  let kind =
    match f.kind with
    | Translation -> "translation fault"
    | Permission -> "stage-1 permission fault"
    | Stage2_permission -> "stage-2 permission fault"
  in
  Printf.sprintf "%s on %s at 0x%Lx" kind (access_name f.access) f.va
