type t = {
  (* frames keyed by native-int frame index ([pa lsr 12], exact — 52
     significant bits). A boxed-int64 key would pay a custom-block
     polymorphic hash on every access, which dominates the interpreter
     hot path. *)
  frames : (int, Bytes.t) Hashtbl.t;
  (* one-entry frame cache: consecutive accesses overwhelmingly hit the
     same page (the stack or the current code page) *)
  mutable last_idx : int;
  mutable last_frame : Bytes.t;
  (* store observers, called with the frame index of every write — the
     decoded-instruction cache invalidation channel. The list is almost
     always empty or a singleton; hooks must not write memory. *)
  mutable write_hooks : (int -> unit) list;
}

let frame_size = 4096
let no_frame = Bytes.create 0

let create () =
  {
    frames = Hashtbl.create 1024;
    last_idx = -1;
    last_frame = no_frame;
    write_hooks = [];
  }

(* Exact for any 64-bit PA: the shift leaves 52 significant bits. The
   offset is unaffected by the 63-bit [to_int] truncation. *)
let index_of pa = Int64.to_int (Int64.shift_right_logical pa 12)
let offset_of pa = Int64.to_int pa land 0xfff

let add_write_hook t h = t.write_hooks <- t.write_hooks @ [ h ]

(* Every mutation funnels through here exactly once per primitive write
   (the byte-wise straddling paths notify via their write8 calls). *)
let notify t idx =
  match t.write_hooks with
  | [] -> ()
  | [ h ] -> h idx  (* the common case, without an iteration closure *)
  | hooks -> List.iter (fun h -> h idx) hooks

let frame_at t idx =
  if idx = t.last_idx then t.last_frame
  else begin
    let b =
      match Hashtbl.find t.frames idx with
      | b -> b
      | exception Not_found ->
          let b = Bytes.make frame_size '\000' in
          Hashtbl.add t.frames idx b;
          b
    in
    t.last_idx <- idx;
    t.last_frame <- b;
    b
  end

let get_frame t pa = frame_at t (index_of pa)

(* Frame-pointer access for the micro-TLB: an entry that memoizes the
   [Bytes.t] of its physical frame skips both the PA reconstruction and
   this table on every subsequent access. Frames are allocated once and
   never replaced, so the pointer stays valid until the memory itself
   dies. Writers that bypass [write64] must pair their mutation with
   [notify_store]. *)
let frame_bytes t idx = frame_at t idx
let notify_store t idx = notify t idx

let read8 t pa = Char.code (Bytes.get (get_frame t pa) (offset_of pa))

let write8 t pa v =
  let idx = index_of pa in
  Bytes.set (frame_at t idx) (offset_of pa) (Char.chr (v land 0xff));
  notify t idx

(* Multi-byte accesses may straddle a frame boundary; go byte-wise unless
   the access is frame-local, which is the common case. *)
let read64 t pa =
  let off = offset_of pa in
  if off <= frame_size - 8 then Bytes.get_int64_le (get_frame t pa) off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (read8 t (Int64.add pa (Int64.of_int i))))
    done;
    !v
  end

let write64 t pa v =
  let off = offset_of pa in
  if off <= frame_size - 8 then begin
    let idx = index_of pa in
    Bytes.set_int64_le (frame_at t idx) off v;
    notify t idx
  end
  else
    for i = 0 to 7 do
      write8 t
        (Int64.add pa (Int64.of_int i))
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
    done

let read32 t pa =
  let off = offset_of pa in
  if off <= frame_size - 4 then Bytes.get_int32_le (get_frame t pa) off
  else Int64.to_int32 (Int64.logand (read64 t pa) 0xffffffffL)

let write32 t pa v =
  let off = offset_of pa in
  if off <= frame_size - 4 then begin
    let idx = index_of pa in
    Bytes.set_int32_le (frame_at t idx) off v;
    notify t idx
  end
  else
    for i = 0 to 3 do
      write8 t
        (Int64.add pa (Int64.of_int i))
        (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xff)
    done

let blit_string t pa s =
  String.iteri (fun i c -> write8 t (Int64.add pa (Int64.of_int i)) (Char.code c)) s

let read_string t pa len =
  String.init len (fun i -> Char.chr (read8 t (Int64.add pa (Int64.of_int i))))

let frames_allocated t = Hashtbl.length t.frames

let fold_frames t f acc =
  (* deterministic order: sort the indices so folds (fingerprints) are
     independent of hash-table iteration order *)
  let idxs = Hashtbl.fold (fun idx _ acc -> idx :: acc) t.frames [] in
  let idxs = List.sort compare idxs in
  List.fold_left (fun acc idx -> f acc idx (Hashtbl.find t.frames idx)) acc idxs

(* Copy-on-write snapshots.

   [notify] fires *after* the bytes land, so there is no pre-write
   window in which a lazily-copying snapshot could save the pristine
   frame. Instead [snapshot] copies every allocated frame eagerly (the
   post-boot image is small — a few hundred 4 KiB frames) and registers
   a write hook that records dirtied frame indices from that point on.
   [restore] then touches only the dirty set: it blits the pristine
   bytes back in place (or zero-fills frames that did not exist at
   snapshot time), so restore cost is proportional to what the run
   actually wrote, not to total memory. Blitting in place preserves the
   "frames are never replaced" contract the micro-TLB relies on. *)
type snapshot = {
  pristine : (int, Bytes.t) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
}

let snapshot t =
  let pristine = Hashtbl.create (Hashtbl.length t.frames) in
  Hashtbl.iter (fun idx b -> Hashtbl.replace pristine idx (Bytes.copy b)) t.frames;
  let s = { pristine; dirty = Hashtbl.create 64 } in
  add_write_hook t (fun idx -> Hashtbl.replace s.dirty idx ());
  s

let restore t s =
  let idxs = Hashtbl.fold (fun idx () acc -> idx :: acc) s.dirty [] in
  List.iter
    (fun idx ->
      let frame = frame_at t idx in
      (match Hashtbl.find_opt s.pristine idx with
      | Some b -> Bytes.blit b 0 frame 0 frame_size
      | None -> Bytes.fill frame 0 frame_size '\000');
      notify t idx)
    idxs;
  Hashtbl.reset s.dirty

let snapshot_frames s = Hashtbl.length s.pristine
let snapshot_dirty s = Hashtbl.length s.dirty
