(** The model-machine interpreter.

    Executes encoded instructions from memory through the two-stage MMU,
    implements the PAuth instruction family with QARMA-backed PACs, and
    accounts cycles per the {!Cost} profile. Exceptions (SVC, faults,
    ERET) stop execution and surface to the caller: the kernel layer
    plays the role of the architectural vector table, which keeps the
    policy code (key switching, PAC-failure accounting, panic) visible
    and testable. *)

type fault =
  | Mmu_fault of Mmu.fault
  | Undefined_instruction of int32
  | Hyp_denied of Sysreg.t  (** hypervisor-locked register written from EL1 *)
  | El_denied of Sysreg.t  (** system register access from EL0 *)

type stop =
  | Svc of int  (** supervisor call: syscall entry *)
  | Brk of int
  | Hlt of int  (** the kernel-panic primitive *)
  | Fault of { fault : fault; pc : int64 }
  | Eret_done  (** ERET retired; EL/PC already restored *)
  | Sentinel_return  (** control returned to the host orchestrator *)
  | Insn_limit

type t

(** Verdict returned by a step hook: execute the decoded instruction
    normally, or suppress its effects (the instruction still fetches,
    charges its cycles and appears in the trace ring, but only the PC
    advances — the instruction-skip fault model). *)
type hook_action = Exec | Skip

(** The execution-tier selector. All three tiers are bit-identical in
    guest terms — state, cycles, telemetry and fault kinds never differ
    (the three-tier differential fuzzer in [test/test_fuzz.ml] enforces
    this); the selector only trades host-side speed:

    - [Interp]: plain fetch/decode/execute, the decoded-instruction
      cache disabled (the old [--no-icache] behavior);
    - [Icache]: the PR 5 decoded-instruction cache + micro-TLB
      (the default);
    - [Traces]: hot straight-line regions additionally compile into
      superblocks of pre-linked closures with block-to-block chaining;
      cold and cut code still executes through the icache path. *)
type tier = Interp | Icache | Traces

val tier_name : tier -> string

(** [tier_of_string s] — parse ["interp" | "icache" | "traces"]. *)
val tier_of_string : string -> tier option

(** All tiers, [Interp] first (for tier-matrix tests and benches). *)
val all_tiers : tier list

(** [create ()] builds a machine with fresh memory and translation
    tables. [has_pauth] selects an ARMv8.3 core; with [false] the
    PAC/AUT 1716 hint forms execute as NOP and all other PAuth
    instructions are undefined, modeling an ARMv8.0 part.

    [mem]/[mmu] substitute shared storage and translation tables: an
    SMP {!Machine} passes the same pair to every core so that all cores
    observe one physical memory while keeping private register files,
    EL state, banked SPs, key registers and cycle counters.

    [icache] substitutes a shared decoded-instruction cache (a
    {!Machine} passes one instance to every core — entries depend only
    on (EL, VA page) and the shared tables, never on per-core state);
    without it a private cache is created over this core's memory and
    MMU, enabled per [icache_enabled] (default [true]). The cache is a
    host-speed optimization only: execution with it on or off is
    bit-identical, including cycles and telemetry.

    [tier] selects the execution tier; when omitted it is derived from
    the legacy [icache_enabled] flag ([true] → [Icache], [false] →
    [Interp]). A [Traces] core creates a private superblock trace cache
    over its memory/MMU pair — traces are per-core (compiled blocks
    capture this core's register file), unlike the shared icache.

    [trace_depth] sizes the retired-instruction ring buffer behind
    {!recent_trace} (default 32); deep call chains in oops dumps may
    want more. [id] is the core number reported by {!id} (default 0). *)
val create :
  ?cost:Cost.profile ->
  ?has_pauth:bool ->
  ?user_cfg:Vaddr.config ->
  ?kernel_cfg:Vaddr.config ->
  ?cipher:Qarma.Block.t ->
  ?mem:Mem.t ->
  ?mmu:Mmu.t ->
  ?icache:Icache.t ->
  ?icache_enabled:bool ->
  ?tier:tier ->
  ?trace_depth:int ->
  ?id:int ->
  unit ->
  t

val mem : t -> Mem.t
val mmu : t -> Mmu.t

(** The decoded-instruction cache this core fetches through. *)
val icache : t -> Icache.t

(** The execution tier this core was created with. *)
val tier : t -> tier

(** Superblock trace-cache counters, when this is a [Traces] core. *)
val trace_stats : t -> Traces.stats option

(** [id t] — the core number given at {!create} (0 on a uniprocessor). *)
val id : t -> int
val cipher : t -> Qarma.Block.t
val cost_profile : t -> Cost.profile
val has_pauth : t -> bool
val user_cfg : t -> Vaddr.config
val kernel_cfg : t -> Vaddr.config

(** [pointer_cfg t va] — the PAC layout governing [va], chosen by its
    translation-table select bit. *)
val pointer_cfg : t -> int64 -> Vaddr.config

val reg : t -> Insn.reg -> int64
val set_reg : t -> Insn.reg -> int64 -> unit
val sysreg : t -> Sysreg.t -> int64
val set_sysreg : t -> Sysreg.t -> int64 -> unit
val pc : t -> int64
val set_pc : t -> int64 -> unit
val el : t -> El.t
val set_el : t -> El.t -> unit

(** Banked stack pointers. *)
val sp_of : t -> El.t -> int64

val set_sp_of : t -> El.t -> int64 -> unit

val cycles : t -> int64
val insns_retired : t -> int64

(** [flags_bits t] — the NZCV flags packed as [N:3 Z:2 C:1 V:0], for
    state fingerprints. *)
val flags_bits : t -> int

(** [charge t n] adds [n] cycles of orchestrator-accounted cost (e.g.
    exception entry performed by the host-side kernel layer). *)
val charge : t -> int -> unit

(** [set_sysreg_lock t f] installs the hypervisor lockdown predicate:
    EL1 writes to registers for which [f] returns [true] fault with
    [Hyp_denied]. *)
val set_sysreg_lock : t -> (Sysreg.t -> bool) -> unit

(** [set_step_hook t h] installs (or with [None] removes) a pre-execute
    observation point: [h] runs after fetch + decode and before the
    instruction executes, receiving the core, the current PC and the
    decoded instruction. The hook may mutate machine state (registers,
    key registers, memory) — this is the fault-injection attachment
    point — and its verdict decides whether the instruction executes or
    is skipped. The hook must not call {!step} reentrantly. *)
val set_step_hook : t -> (t -> pc:int64 -> Insn.t -> hook_action) option -> unit

(** [attach_telemetry t sink] connects a per-core telemetry endpoint:
    every retired instruction is classified into the sink's counter
    file and cycle-attribution profile, and the machine/kernel layers
    emit structured events through it. Telemetry is pure observation —
    attaching a sink never changes architectural state or cycle
    totals (the PMEVCNTRn sysregs excepted, which read 0 without a
    sink). *)
val attach_telemetry : t -> Telemetry.Sink.t -> unit

val detach_telemetry : t -> unit
val telemetry : t -> Telemetry.Sink.t option

(** [class_of_insn i] / [origin_of_insn i] — the telemetry taxonomy:
    retirement class (mirrors the cost model's grouping) and
    instrumentation origin (PAC construction / authentication /
    reserved-register modifier arithmetic / baseline). Exposed for the
    profiler's tests. *)
val class_of_insn : Insn.t -> Telemetry.Counters.insn_class

val origin_of_insn : Insn.t -> Telemetry.Profile.origin

(** The host-return address: jumping here stops execution with
    [Sentinel_return]. It is canonical (so it survives PAC/AUT round
    trips in instrumented prologues) but never mapped. *)
val sentinel : int64

(** [step t] executes one instruction; [None] means normal retirement. *)
val step : t -> stop option

(** [run ?max_insns t] steps until a stop (default limit 10 million).
    When neither a step hook nor a telemetry sink is attached, the loop
    commits to a fast path that skips both disabled-path checks — the
    selection is made once per call, not per step. *)
val run : ?max_insns:int -> t -> stop

(** [last_run_fast t] — whether the most recent {!run} took the
    hook-free fast loop (observability for the fast-path tests). *)
val last_run_fast : t -> bool

(** [last_run_tier t] — the tier the most recent {!run} actually
    executed under: a [Traces] core with a step hook or telemetry sink
    attached drops to the icache path and reports [Icache]. Before any
    run it reports the configured tier. *)
val last_run_tier : t -> tier

(** [call ?max_insns t addr] sets LR to {!sentinel}, jumps to [addr] and
    runs; a well-behaved function ends with [Sentinel_return]. *)
val call : ?max_insns:int -> t -> int64 -> stop

(** [pac_key t k] reads key [k] from the system registers. *)
val pac_key : t -> Sysreg.pauth_key -> Pac.key

(** [pauth_enabled t k] — SCTLR_EL1 enable bit for [k] ([GA] is always
    enabled on a PAuth part). *)
val pauth_enabled : t -> Sysreg.pauth_key -> bool

(** [recent_trace ?limit t] — the most recently retired (pc, insn)
    pairs, oldest first (up to [trace_depth] are retained). Powers the
    kernel's oops dumps. *)
val recent_trace : ?limit:int -> t -> (int64 * Insn.t) list

(** [dump_state t] — multi-line pretty-printed machine state: core id,
    PC, EL, cycle and retirement counters, the general registers, banked
    stack pointers, flags, the telemetry counter snapshot (when a sink
    is attached), and the last [trace_limit] retired instructions
    disassembled (default: the full configured trace depth). Used by
    the kernel's oops and panic paths. *)
val dump_state : ?trace_limit:int -> t -> string

val fault_to_string : fault -> string
val stop_to_string : stop -> string

(** [fold_sysregs t f acc] folds over every system register that has
    been written, in a deterministic (sorted) order — the fingerprint
    enumeration. Registers never written (which read as 0 or are
    synthesized from counters) are not visited. *)
val fold_sysregs : t -> ('a -> Sysreg.t -> int64 -> 'a) -> 'a -> 'a

(** Full per-core mutable state capture for {!Machine} snapshots:
    registers, banked SPs, PC, EL, flags, system registers (PAuth keys
    included), cycle/retirement counters, the trace ring, and host-side
    attachments (step hook, hypervisor lock predicate, fast-path flag).
    [restore] writes the sysreg table back directly without the
    per-write icache flush of {!set_sysreg} — callers restoring a whole
    machine must flush the shared icache once afterwards, which is what
    {!Machine.restore} does. *)
type captured

val capture : t -> captured
val restore : t -> captured -> unit
