(** Two-stage memory translation (VMSAv8 with virtualization).

    Stage 1 is controlled by the kernel (EL1) and maps virtual pages to
    physical frames with separate EL0/EL1 permissions. Stage 2 is
    controlled exclusively by the hypervisor (EL2) and filters every
    EL0/EL1 access by physical frame. As Appendix A.2 of the paper
    explains, any stage-1 mapping is implicitly {e readable} at EL1, so
    execute-only memory for the kernel is only achievable by denying the
    read permission at stage 2 — which is exactly how the key-setter
    page is protected here. *)

type perm = { r : bool; w : bool; x : bool }

val no_access : perm
val rwx : perm
val rw : perm
val ro : perm
val rx : perm
val xo : perm  (** execute-only: the XOM permission *)

type access = Read | Write | Exec

type fault_kind =
  | Translation  (** no stage-1 mapping for the page *)
  | Permission  (** stage-1 denies the access for this EL *)
  | Stage2_permission  (** hypervisor denies the access *)

type fault = { kind : fault_kind; va : int64; access : access }

type t

val create : unit -> t

(** [map t ~va_page ~pa_page ~el0 ~el1] installs or replaces a stage-1
    mapping (kernel-side operation). *)
val map : t -> va_page:int64 -> pa_page:int64 -> el0:perm -> el1:perm -> unit

(** [unmap t ~va_page]. *)
val unmap : t -> va_page:int64 -> unit

(** [stage1_lookup t va_page] — the current stage-1 entry, if any. *)
val stage1_lookup : t -> int64 -> (int64 * perm * perm) option

(** [stage2_protect t ~pa_page perm] restricts EL0/EL1 access to a
    physical frame (hypervisor-side operation). Frames without an entry
    are unrestricted. *)
val stage2_protect : t -> pa_page:int64 -> perm -> unit

val stage2_lookup : t -> int64 -> perm option

(** [allows perm access] — does [perm] grant [access]? *)
val allows : perm -> access -> bool

(** [generation t] — a counter bumped by every mutation of either
    translation stage ({!map}, {!unmap}, {!stage2_protect}). Caches
    built over translation results ({!Icache}) compare it against the
    value seen at fill time and discard everything on mismatch. *)
val generation : t -> int

(** [probe t ~el va_page] — the stage-1 frame and the {e combined}
    two-stage permission set for [va_page] at [el], or [None] when the
    page is unmapped. Same EL semantics as {!translate}, including the
    implicit EL1 read grant; raises on EL2. The result is valid until
    {!generation} changes. *)
val probe : t -> el:El.t -> int64 -> (int64 * perm) option

(** [translate t ~el ~access va] performs the full two-stage walk for an
    EL0 or EL1 access. EL2 accesses are not subject to stage 2 and are
    rejected here — the hypervisor is not modeled as machine code. *)
val translate : t -> el:El.t -> access:access -> int64 -> (int64, fault) result

val fault_to_string : fault -> string

(** Translation-state snapshots.

    [snapshot] copies both translation tables; [restore] refills them
    and {e advances} the generation counter (it never rewinds it), so
    generation-checked caches filled after the snapshot correctly
    discard their entries on restore. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** Deterministic (key-sorted) folds over the two stages, for state
    fingerprints. *)
val fold_stage1 : t -> ('a -> int64 -> int64 * perm * perm -> 'a) -> 'a -> 'a

val fold_stage2 : t -> ('a -> int64 -> perm -> 'a) -> 'a -> 'a
