type item = Ins of Insn.t | Fixup of string * (int64 -> Insn.t) | Label of string

let ins i = Ins i
let label name = Label name
let with_label name f = Fixup (name, f)
let b_to l = with_label l (fun a -> Insn.B a)
let bl_to l = with_label l (fun a -> Insn.Bl a)
let cbz_to r l = with_label l (fun a -> Insn.Cbz (r, a))
let cbnz_to r l = with_label l (fun a -> Insn.Cbnz (r, a))
let bcond_to c l = with_label l (fun a -> Insn.Bcond (c, a))
let adr_of r l = with_label l (fun a -> Insn.Adr (r, a))

let mov_addr r l =
  let chunk a i = Int64.to_int (Int64.logand (Int64.shift_right_logical a (16 * i)) 0xffffL) in
  with_label l (fun a -> Insn.Movz (r, chunk a 0, 0))
  :: List.map (fun i -> with_label l (fun a -> Insn.Movk (r, chunk a i, 16 * i))) [ 1; 2; 3 ]

let item_insn = function
  | Ins i -> Some i
  | Fixup (_, f) -> Some (f 0L)
  | Label _ -> None

let instruction_count items =
  List.fold_left
    (fun acc item -> match item with Ins _ | Fixup _ -> acc + 1 | Label _ -> acc)
    0 items

type func = { name : string; items : item list }

type program = { mutable funcs : func list (* reverse order *) }

let create () = { funcs = [] }

let add_function p ~name items =
  if List.exists (fun f -> f.name = name) p.funcs then
    invalid_arg (Printf.sprintf "Asm.add_function: duplicate %s" name);
  p.funcs <- { name; items } :: p.funcs

type layout = {
  base : int64;
  size : int;
  symbols : (string * int64) list;
  code : (int64 * Insn.t) array;
}

exception Undefined_label of string

let assemble ?(extra_symbols = []) p ~base =
  let funcs = List.rev p.funcs in
  (* First pass: assign addresses to functions, global and local labels. *)
  let globals = Hashtbl.create 16 in
  let locals = Hashtbl.create 64 in
  let addr = ref base in
  let symbols = ref [] in
  List.iter
    (fun f ->
      Hashtbl.replace globals f.name !addr;
      symbols := (f.name, !addr) :: !symbols;
      let pos = ref !addr in
      List.iter
        (fun item ->
          match item with
          | Label l -> Hashtbl.replace locals (f.name, l) !pos
          | Ins _ | Fixup _ -> pos := Int64.add !pos 4L)
        f.items;
      addr := Int64.add !addr (Int64.of_int (4 * instruction_count f.items)))
    funcs;
  (* Second pass: resolve. *)
  let resolve fname l =
    match Hashtbl.find_opt locals (fname, l) with
    | Some a -> a
    | None -> (
        match Hashtbl.find_opt globals l with
        | Some a -> a
        | None -> (
            match List.assoc_opt l extra_symbols with
            | Some a -> a
            | None -> raise (Undefined_label l)))
  in
  let code = ref [] in
  let pos = ref base in
  List.iter
    (fun f ->
      List.iter
        (fun item ->
          let emit i =
            code := (!pos, i) :: !code;
            pos := Int64.add !pos 4L
          in
          match item with
          | Label _ -> ()
          | Ins i -> emit i
          | Fixup (l, mk) -> emit (mk (resolve f.name l)))
        f.items)
    funcs;
  {
    base;
    size = Int64.to_int (Int64.sub !pos base);
    symbols = List.rev !symbols;
    code = Array.of_list (List.rev !code);
  }

let symbol layout name = List.assoc name layout.symbols

let encode_into layout ~write32 =
  Array.iter (fun (va, insn) -> write32 va (Encode.encode ~pc:va insn)) layout.code

let disassemble layout =
  let buf = Buffer.create 1024 in
  let sym_at va =
    List.filter_map (fun (n, a) -> if a = va then Some n else None) layout.symbols
  in
  Array.iter
    (fun (va, insn) ->
      List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "%s:\n" n)) (sym_at va);
      Buffer.add_string buf (Printf.sprintf "  %Lx: %s\n" va (Insn.to_string insn)))
    layout.code;
  Buffer.contents buf
