type reg = R of int | SP | XZR

let fp = R 29
let lr = R 30
let ip0 = R 16
let ip1 = R 17

type cond = Eq | Ne | Lt | Ge | Gt | Le

type amode = Off of reg * int | Pre of reg * int | Post of reg * int

type t =
  | Movz of reg * int * int
  | Movk of reg * int * int
  | Mov of reg * reg
  | Add_imm of reg * reg * int
  | Sub_imm of reg * reg * int
  | Add_reg of reg * reg * reg
  | Sub_reg of reg * reg * reg
  | Subs_reg of reg * reg * reg
  | Subs_imm of reg * reg * int
  | And_reg of reg * reg * reg
  | Orr_reg of reg * reg * reg
  | Eor_reg of reg * reg * reg
  | Lsl_imm of reg * reg * int
  | Lsr_imm of reg * reg * int
  | Bfi of reg * reg * int * int
  | Ubfx of reg * reg * int * int
  | Adr of reg * int64
  | Ldr of reg * amode
  | Str of reg * amode
  | Ldrb of reg * amode
  | Strb of reg * amode
  | Ldp of reg * reg * amode
  | Stp of reg * reg * amode
  | B of int64
  | Bl of int64
  | Br of reg
  | Blr of reg
  | Ret
  | Cbz of reg * int64
  | Cbnz of reg * int64
  | Bcond of cond * int64
  | Pac of Sysreg.pauth_key * reg * reg
  | Aut of Sysreg.pauth_key * reg * reg
  | Pac1716 of Sysreg.pauth_key
  | Aut1716 of Sysreg.pauth_key
  | Xpac of reg
  | Pacga of reg * reg * reg
  | Blra of Sysreg.pauth_key * reg * reg
  | Bra of Sysreg.pauth_key * reg * reg
  | Reta of Sysreg.pauth_key
  | Mrs of reg * Sysreg.t
  | Msr of Sysreg.t * reg
  | Svc of int
  | Eret
  | Isb
  | Nop
  | Brk of int
  | Hlt of int

let reg_name = function
  | R 29 -> "fp"
  | R 30 -> "lr"
  | R n -> Printf.sprintf "x%d" n
  | SP -> "sp"
  | XZR -> "xzr"

let key_name = function
  | Sysreg.IA -> "ia"
  | Sysreg.IB -> "ib"
  | Sysreg.DA -> "da"
  | Sysreg.DB -> "db"
  | Sysreg.GA -> "ga"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"

let amode_str = function
  | Off (r, 0) -> Printf.sprintf "[%s]" (reg_name r)
  | Off (r, off) -> Printf.sprintf "[%s, #%d]" (reg_name r) off
  | Pre (r, off) -> Printf.sprintf "[%s, #%d]!" (reg_name r) off
  | Post (r, off) -> Printf.sprintf "[%s], #%d" (reg_name r) off

let to_string i =
  let r = reg_name in
  match i with
  | Movz (rd, imm, sh) -> Printf.sprintf "movz %s, #0x%x, lsl #%d" (r rd) imm sh
  | Movk (rd, imm, sh) -> Printf.sprintf "movk %s, #0x%x, lsl #%d" (r rd) imm sh
  | Mov (rd, rn) -> Printf.sprintf "mov %s, %s" (r rd) (r rn)
  | Add_imm (rd, rn, imm) -> Printf.sprintf "add %s, %s, #%d" (r rd) (r rn) imm
  | Sub_imm (rd, rn, imm) -> Printf.sprintf "sub %s, %s, #%d" (r rd) (r rn) imm
  | Add_reg (rd, rn, rm) -> Printf.sprintf "add %s, %s, %s" (r rd) (r rn) (r rm)
  | Sub_reg (rd, rn, rm) -> Printf.sprintf "sub %s, %s, %s" (r rd) (r rn) (r rm)
  | Subs_reg (rd, rn, rm) -> Printf.sprintf "subs %s, %s, %s" (r rd) (r rn) (r rm)
  | Subs_imm (rd, rn, imm) -> Printf.sprintf "subs %s, %s, #%d" (r rd) (r rn) imm
  | And_reg (rd, rn, rm) -> Printf.sprintf "and %s, %s, %s" (r rd) (r rn) (r rm)
  | Orr_reg (rd, rn, rm) -> Printf.sprintf "orr %s, %s, %s" (r rd) (r rn) (r rm)
  | Eor_reg (rd, rn, rm) -> Printf.sprintf "eor %s, %s, %s" (r rd) (r rn) (r rm)
  | Lsl_imm (rd, rn, sh) -> Printf.sprintf "lsl %s, %s, #%d" (r rd) (r rn) sh
  | Lsr_imm (rd, rn, sh) -> Printf.sprintf "lsr %s, %s, #%d" (r rd) (r rn) sh
  | Bfi (rd, rn, lsb, w) -> Printf.sprintf "bfi %s, %s, #%d, #%d" (r rd) (r rn) lsb w
  | Ubfx (rd, rn, lsb, w) -> Printf.sprintf "ubfx %s, %s, #%d, #%d" (r rd) (r rn) lsb w
  | Adr (rd, a) -> Printf.sprintf "adr %s, 0x%Lx" (r rd) a
  | Ldr (rd, m) -> Printf.sprintf "ldr %s, %s" (r rd) (amode_str m)
  | Str (rs, m) -> Printf.sprintf "str %s, %s" (r rs) (amode_str m)
  | Ldrb (rd, m) -> Printf.sprintf "ldrb %s, %s" (r rd) (amode_str m)
  | Strb (rs, m) -> Printf.sprintf "strb %s, %s" (r rs) (amode_str m)
  | Ldp (r1, r2, m) -> Printf.sprintf "ldp %s, %s, %s" (r r1) (r r2) (amode_str m)
  | Stp (r1, r2, m) -> Printf.sprintf "stp %s, %s, %s" (r r1) (r r2) (amode_str m)
  | B a -> Printf.sprintf "b 0x%Lx" a
  | Bl a -> Printf.sprintf "bl 0x%Lx" a
  | Br rn -> Printf.sprintf "br %s" (r rn)
  | Blr rn -> Printf.sprintf "blr %s" (r rn)
  | Ret -> "ret"
  | Cbz (rn, a) -> Printf.sprintf "cbz %s, 0x%Lx" (r rn) a
  | Cbnz (rn, a) -> Printf.sprintf "cbnz %s, 0x%Lx" (r rn) a
  | Bcond (c, a) -> Printf.sprintf "b.%s 0x%Lx" (cond_name c) a
  | Pac (k, rd, rm) -> Printf.sprintf "pac%s %s, %s" (key_name k) (r rd) (r rm)
  | Aut (k, rd, rm) -> Printf.sprintf "aut%s %s, %s" (key_name k) (r rd) (r rm)
  | Pac1716 k -> Printf.sprintf "pac%s1716" (key_name k)
  | Aut1716 k -> Printf.sprintf "aut%s1716" (key_name k)
  | Xpac rd -> Printf.sprintf "xpaci %s" (r rd)
  | Pacga (rd, rn, rm) -> Printf.sprintf "pacga %s, %s, %s" (r rd) (r rn) (r rm)
  | Blra (k, rn, rm) -> Printf.sprintf "blra%s %s, %s" (key_name k) (r rn) (r rm)
  | Bra (k, rn, rm) -> Printf.sprintf "bra%s %s, %s" (key_name k) (r rn) (r rm)
  | Reta k -> Printf.sprintf "reta%s" (key_name k)
  | Mrs (rd, sr) -> Printf.sprintf "mrs %s, %s" (r rd) (Sysreg.name sr)
  | Msr (sr, rn) -> Printf.sprintf "msr %s, %s" (Sysreg.name sr) (r rn)
  | Svc imm -> Printf.sprintf "svc #%d" imm
  | Eret -> "eret"
  | Isb -> "isb"
  | Nop -> "nop"
  | Brk imm -> Printf.sprintf "brk #%d" imm
  | Hlt imm -> Printf.sprintf "hlt #%d" imm

let pp fmt i = Format.pp_print_string fmt (to_string i)

let is_pauth = function
  | Pac _ | Aut _ | Pac1716 _ | Aut1716 _ | Xpac _ | Pacga _ | Blra _ | Bra _ | Reta _ ->
      true
  | Movz _ | Movk _ | Mov _ | Add_imm _ | Sub_imm _ | Add_reg _ | Sub_reg _ | Subs_reg _
  | Subs_imm _ | And_reg _ | Orr_reg _ | Eor_reg _ | Lsl_imm _ | Lsr_imm _ | Bfi _
  | Ubfx _ | Adr _ | Ldr _ | Str _ | Ldrb _ | Strb _ | Ldp _ | Stp _ | B _ | Bl _ | Br _
  | Blr _ | Ret | Cbz _ | Cbnz _ | Bcond _ | Mrs _ | Msr _ | Svc _ | Eret | Isb | Nop
  | Brk _ | Hlt _ ->
      false

let reads_sysreg = function Mrs (_, sr) -> Some sr | _ -> None

let writes_sysreg = function Msr (sr, _) -> Some sr | _ -> None

let amode_base = function Off (r, _) | Pre (r, _) | Post (r, _) -> r

let amode_writeback = function Off _ -> [] | Pre (r, _) | Post (r, _) -> [ r ]

let defs_uses = function
  | Movz (rd, _, _) -> ([ rd ], [])
  | Movk (rd, _, _) -> ([ rd ], [ rd ])
  | Mov (rd, rn) -> ([ rd ], [ rn ])
  | Add_imm (rd, rn, _)
  | Sub_imm (rd, rn, _)
  | Subs_imm (rd, rn, _)
  | Lsl_imm (rd, rn, _)
  | Lsr_imm (rd, rn, _)
  | Ubfx (rd, rn, _, _) ->
      ([ rd ], [ rn ])
  | Add_reg (rd, rn, rm)
  | Sub_reg (rd, rn, rm)
  | Subs_reg (rd, rn, rm)
  | And_reg (rd, rn, rm)
  | Orr_reg (rd, rn, rm)
  | Eor_reg (rd, rn, rm) ->
      ([ rd ], [ rn; rm ])
  | Bfi (rd, rn, _, _) -> ([ rd ], [ rd; rn ])
  | Adr (rd, _) -> ([ rd ], [])
  | Ldr (rd, m) | Ldrb (rd, m) -> (rd :: amode_writeback m, [ amode_base m ])
  | Str (rs, m) | Strb (rs, m) -> (amode_writeback m, [ rs; amode_base m ])
  | Ldp (r1, r2, m) -> (r1 :: r2 :: amode_writeback m, [ amode_base m ])
  | Stp (r1, r2, m) -> (amode_writeback m, [ r1; r2; amode_base m ])
  | B _ | Bcond (_, _) | Svc _ | Eret | Isb | Nop | Brk _ | Hlt _ -> ([], [])
  | Bl _ -> ([ lr ], [])
  | Br rn -> ([], [ rn ])
  | Blr rn -> ([ lr ], [ rn ])
  | Ret -> ([], [ lr ])
  | Cbz (rn, _) | Cbnz (rn, _) -> ([], [ rn ])
  | Pac (_, rd, rm) | Aut (_, rd, rm) -> ([ rd ], [ rd; rm ])
  | Pac1716 _ | Aut1716 _ -> ([ ip1 ], [ ip1; ip0 ])
  | Xpac rd -> ([ rd ], [ rd ])
  | Pacga (rd, rn, rm) -> ([ rd ], [ rn; rm ])
  | Blra (_, rn, rm) -> ([ lr ], [ rn; rm ])
  | Bra (_, rn, rm) -> ([], [ rn; rm ])
  | Reta _ -> ([], [ lr; SP ])
  | Mrs (rd, _) -> ([ rd ], [])
  | Msr (_, rn) -> ([], [ rn ])
