(** Interprocedural whole-image analysis via per-function summaries.

    Each function gets a PAC-provenance summary — the join of the
    abstract states at its return sites, the set of registers it (or any
    transitive callee) may write, and its net SP displacement. Callers
    apply the summary at call sites instead of the conservative
    caller-saved clobber: registers the callee never writes keep the
    caller's provenance (no callee-save false positives), and
    Signed/Raw/Authenticated values propagate across call boundaries in
    both directions (caller argument states flow into callee entry
    states).

    The fixpoint is Jacobi-style: each round analyzes every live
    function against a frozen snapshot of the previous round's
    summaries, then merges new summaries and entry-state contributions
    sequentially in function-index order. Rounds are what make the
    result independent of how many workers {!Lint.par} runs a round on —
    worker count changes only wall-clock, never output. *)

open Aarch64

type fn_summary = {
  entry : int64;
  name : string option;
  entry_in : Lint.state option;
      (** join of all caller flows (plus [Top] for roots); [None] when
          no resolved caller reaches the function *)
  exit : Lint.state option;
      (** join of states at RET/RETA sites; [None] if the function
          never provably returns *)
  writes : bool array;
      (** 31 slots; [writes.(n)] — x[n] may be written by the function
          or a transitive callee *)
  sp_net : int option;  (** net SP delta entry->return, when known *)
}

(** Registers whose provenance is [Signed _] in a state. *)
val signed_regs : Lint.state -> (int * Sysreg.pauth_key) list

(** Reserved scratch registers (x15-x17) the function may clobber. *)
val clobbered_reserved : fn_summary -> Insn.reg list

type report = {
  cg : Callgraph.t;
  summaries : fn_summary array;  (** parallel to [cg.fns] *)
  diags : Diag.t list;  (** normalized (sorted, deduplicated) *)
  rounds : int;  (** Jacobi rounds until stabilization *)
}

(** [analyze_image ~par ~symbols ~policy code] — build the call graph,
    run the summary fixpoint, then a final diagnostic pass per function.
    Functions named in [symbols] and functions with no resolved caller
    are roots (entry state all-[Top]: externally callable). [par]
    defaults to {!Lint.seq_par}. *)
val analyze_image :
  ?par:Lint.par ->
  ?symbols:(string * int64) list ->
  policy:Lint.policy ->
  (int64 * Insn.t) array ->
  report

(** Byte-stable JSON of the per-function summaries. *)
val summaries_to_json : report -> string
