open Aarch64

type edge_kind = Direct | Indirect | Tail

type call = { site : int64; target : int64 option; kind : edge_kind }

type fn = {
  entry : int64;
  name : string option;
  lo : int;
  hi : int;
  calls : call list;
}

type t = { code : (int64 * Insn.t) array; fns : fn array }

(* Forward constant sweep over [lo, hi): absolute addresses reaching
   each register at each instruction. Best-effort — straight-line only;
   any unrecognized def kills the register, calls kill the caller-saved
   set. Sufficient for the ADR / MOVZ+MOVK materialization idioms the
   instrumentation emits. *)
let const_sweep code lo hi =
  let known : (int, int64) Hashtbl.t = Hashtbl.create 8 in
  let kill r = match r with Insn.R n -> Hashtbl.remove known n | _ -> () in
  let setk r v = match r with Insn.R n -> Hashtbl.replace known n v | _ -> () in
  let getk r =
    match r with Insn.R n -> Hashtbl.find_opt known n | _ -> None
  in
  let at = Hashtbl.create 8 in
  for i = lo to hi - 1 do
    let va, insn = code.(i) in
    (match insn with
    | Insn.Blr rn | Insn.Br rn | Insn.Blra (_, rn, _) | Insn.Bra (_, rn, _) -> (
        match getk rn with Some v -> Hashtbl.replace at va v | None -> ())
    | _ -> ());
    match insn with
    | Insn.Adr (rd, a) -> setk rd a
    | Insn.Movz (rd, imm, sh) -> setk rd (Int64.shift_left (Int64.of_int imm) sh)
    | Insn.Movk (rd, imm, sh) -> (
        match getk rd with
        | Some v ->
            let mask = Int64.lognot (Int64.shift_left 0xFFFFL sh) in
            setk rd
              (Int64.logor (Int64.logand v mask)
                 (Int64.shift_left (Int64.of_int imm) sh))
        | None -> ())
    | Insn.Mov (rd, rn) -> (
        match getk rn with Some v -> setk rd v | None -> kill rd)
    | Insn.Bl _ | Insn.Blr _ | Insn.Blra _ | Insn.Svc _ ->
        for n = 0 to 18 do
          Hashtbl.remove known n
        done;
        Hashtbl.remove known 30
    | insn ->
        let defs, _ = Insn.defs_uses insn in
        List.iter kill defs
  done;
  at

let build ?(symbols = []) code =
  let n = Array.length code in
  let idx = Hashtbl.create (max 16 (2 * n)) in
  Array.iteri (fun i (va, _) -> Hashtbl.replace idx va i) code;
  let in_code va = Hashtbl.mem idx va in
  (* Pass 1: entries from symbols and BL targets. *)
  let entry_set = Hashtbl.create 16 in
  let add_entry va = if in_code va then Hashtbl.replace entry_set va () in
  if n > 0 then add_entry (fst code.(0));
  List.iter (fun (_, va) -> add_entry va) symbols;
  Array.iter (function _, Insn.Bl t -> add_entry t | _ -> ()) code;
  (* Pass 2: resolve indirect targets per provisional function, then
     re-partition with resolved targets as entries too. Two rounds are
     enough in practice: a target discovered in round 2 rarely changes
     resolution, and determinism matters more than closure here. *)
  let partition () =
    let es = Hashtbl.fold (fun va () acc -> va :: acc) entry_set [] in
    let es = List.sort Int64.compare es in
    Array.of_list (List.map (fun va -> Hashtbl.find idx va) es)
  in
  let resolved : (int64, int64) Hashtbl.t = Hashtbl.create 16 in
  let resolve_round () =
    let starts = partition () in
    let nf = Array.length starts in
    for f = 0 to nf - 1 do
      let lo = starts.(f) and hi = if f + 1 < nf then starts.(f + 1) else n in
      let at = const_sweep code lo hi in
      Hashtbl.iter
        (fun va target ->
          if in_code target then begin
            Hashtbl.replace resolved va target;
            match Hashtbl.find_opt idx va with
            | Some _ -> (
                match snd code.(Hashtbl.find idx va) with
                | Insn.Blr _ | Insn.Blra _ -> add_entry target
                | _ -> ())
            | None -> ()
          end)
        at
    done
  in
  resolve_round ();
  resolve_round ();
  let starts = partition () in
  let nf = Array.length starts in
  let name_of =
    let by_va = Hashtbl.create 16 in
    List.iter
      (fun (name, va) ->
        match Hashtbl.find_opt by_va va with
        | Some prev when String.compare prev name <= 0 -> ()
        | _ -> Hashtbl.replace by_va va name)
      symbols;
    fun va -> Hashtbl.find_opt by_va va
  in
  let fns =
    Array.init nf (fun f ->
        let lo = starts.(f) and hi = if f + 1 < nf then starts.(f + 1) else n in
        let entry = fst code.(lo) in
        let calls = ref [] in
        for i = hi - 1 downto lo do
          let va, insn = code.(i) in
          let r = Hashtbl.find_opt resolved va in
          match insn with
          | Insn.Bl t -> calls := { site = va; target = Some t; kind = Direct } :: !calls
          | Insn.Blr _ | Insn.Blra _ ->
              calls := { site = va; target = r; kind = Indirect } :: !calls
          | Insn.Br _ | Insn.Bra _ ->
              calls := { site = va; target = r; kind = Tail } :: !calls
          | Insn.B tgt
            when Int64.compare tgt entry < 0
                 || Int64.compare tgt (fst code.(hi - 1)) > 0 ->
              (* direct branch leaving the function: a tail call *)
              calls := { site = va; target = Some tgt; kind = Tail } :: !calls
          | _ -> ()
        done;
        let calls =
          List.sort_uniq
            (fun a b ->
              let c = Int64.compare a.site b.site in
              if c <> 0 then c else Stdlib.compare a b)
            !calls
        in
        { entry; name = name_of entry; lo; hi; calls })
  in
  { code; fns }

let fn_index t va =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = Int64.compare t.fns.(mid).entry va in
      if c = 0 then Some mid else if c < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t.fns)

let fn_of_va t va =
  let nf = Array.length t.fns in
  let rec go lo hi =
    (* last fn with entry <= va *)
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if Int64.compare t.fns.(mid).entry va <= 0 then go (mid + 1) hi else go lo mid
  in
  let i = go 0 nf in
  if i < 0 || i >= nf then None
  else
    let f = t.fns.(i) in
    let last_va = fst t.code.(f.hi - 1) in
    if Int64.compare va f.entry >= 0 && Int64.compare va last_va <= 0 then Some i
    else None

let code_of t i =
  let f = t.fns.(i) in
  Array.sub t.code f.lo (f.hi - f.lo)

let hints t va =
  match fn_of_va t va with
  | None -> []
  | Some i ->
      List.filter_map
        (fun c ->
          if c.site = va && c.kind <> Direct then c.target else None)
        t.fns.(i).calls

let callers t i =
  let entry = t.fns.(i).entry in
  let acc = ref [] in
  Array.iteri
    (fun j f ->
      if List.exists (fun c -> c.target = Some entry) f.calls then acc := j :: !acc)
    t.fns;
  List.rev !acc

let unresolved_count t =
  Array.fold_left
    (fun acc f ->
      acc + List.length (List.filter (fun c -> c.target = None) f.calls))
    0 t.fns

let kind_name = function Direct -> "direct" | Indirect -> "indirect" | Tail -> "tail"

let call_to_json c =
  Printf.sprintf {|{"site":"0x%Lx","target":%s,"kind":"%s"}|} c.site
    (match c.target with Some t -> Printf.sprintf {|"0x%Lx"|} t | None -> "null")
    (kind_name c.kind)

let fn_to_json f =
  Printf.sprintf {|{"entry":"0x%Lx","name":%s,"insns":%d,"calls":[%s]}|} f.entry
    (match f.name with
    | Some n -> Printf.sprintf {|"%s"|} (Diag.json_escape n)
    | None -> "null")
    (f.hi - f.lo)
    (String.concat "," (List.map call_to_json f.calls))

let to_json t =
  Printf.sprintf {|{"functions":%d,"unresolved_indirect":%d,"graph":[%s]}|}
    (Array.length t.fns) (unresolved_count t)
    (String.concat "," (List.map fn_to_json (Array.to_list t.fns)))
