(** Pluggable per-scheme rule packs over the whole-image analysis.

    A rule inspects the interprocedural {!Summary.report} and the
    {!Census} and returns diagnostics; a pack is the rule set one
    modifier scheme promises to satisfy. The packs make the analyzer
    ready for the scheme zoo (ROADMAP item 3): adding a scheme means
    writing its discipline down as rules, not patching the lint core. *)

type scheme =
  | Generic  (** no modifier discipline promised (none / compat) *)
  | Sp_only  (** modifier is SP, nothing else *)
  | Parts  (** PARTS: 48-bit global function id + low 16 SP bits *)
  | Camouflage  (** function address + low 32 SP bits *)
  | Chained  (** PACStack-style chain register (x27) *)

val scheme_name : scheme -> string

(** [scheme_of_string] accepts the {!scheme_name} spellings (and
    ["generic"]); [None] otherwise. *)
val scheme_of_string : string -> scheme option

type ctx = {
  scheme : scheme;
  summary : Summary.report;
  census : Census.t;
}

type rule = {
  name : string;
  describes : string;  (** one line, shown by [camouflage lint --gadgets] *)
  check : ctx -> Diag.t list;
}

(** The modifier-collision rule every pack includes: {!Census.to_diags}. *)
val collision_rule : rule

(** The rule set scheme [s] promises to satisfy. *)
val pack : scheme -> rule list

(** Run the pack for [ctx.scheme]; result is normalized. *)
val run : ctx -> Diag.t list
