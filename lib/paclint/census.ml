open Aarch64

type mexpr = Imm of int64 | Addr of int64 | Sp | Dyn | Bfi_of of mexpr * mexpr * int * int

type direction = Sign | Auth

type site = {
  va : int64;
  insn : Insn.t;
  fn : int64;
  fn_name : string option;
  skey : Sysreg.pauth_key;
  dir : direction;
  modifier : mexpr;
  cls : string;
}

type cls_report = {
  ckey : Sysreg.pauth_key;
  cls : string;
  dynamism : Diag.dynamism;
  sign_sites : int;
  auth_sites : int;
  fn_count : int;
  pairs : int;
  dynamic_bits : int;
  first_sign : (int64 * Insn.t) option;
}

type t = { sites : site list; classes : cls_report list }

let rec cls_string = function
  | Imm v -> Printf.sprintf "imm:0x%Lx" v
  | Addr a -> Printf.sprintf "addr:0x%Lx" a
  | Sp -> "sp"
  | Dyn -> "dyn"
  | Bfi_of (b, s, lsb, w) ->
      Printf.sprintf "bfi(%s,%s,%d,%d)" (cls_string b) (cls_string s) lsb w

(* 64-bit mask of the modifier bits that vary at run time. BFI inserts
   the source's low [w] bits at [lsb]. *)
let rec dyn_mask = function
  | Imm _ | Addr _ -> 0L
  | Sp | Dyn -> -1L
  | Bfi_of (b, s, lsb, w) ->
      let field =
        if w >= 64 then -1L
        else Int64.shift_left (Int64.sub (Int64.shift_left 1L w) 1L) lsb
      in
      let src = Int64.logand (Int64.shift_left (dyn_mask s) lsb) field in
      Int64.logor src (Int64.logand (dyn_mask b) (Int64.lognot field))

let dynamic_bits m =
  let rec pop acc v = if v = 0L then acc else pop (acc + 1) (Int64.logand v (Int64.sub v 1L)) in
  pop 0 (dyn_mask m)

let rec contains_sp = function
  | Sp -> true
  | Bfi_of (b, s, _, _) -> contains_sp b || contains_sp s
  | _ -> false

let rec contains_dyn = function
  | Dyn -> true
  | Bfi_of (b, s, _, _) -> contains_dyn b || contains_dyn s
  | _ -> false

let dynamism m =
  if contains_sp m then Diag.Sp_dependent
  else if contains_dyn m then Diag.Object_dependent
  else Diag.Static

let forgery_probability c = 2. ** Float.of_int (-c.dynamic_bits)

(* ----- per-function site extraction ----- *)

(* Modifier shapes reaching each register, per basic block. The
   materialization idioms (MOVZ/MOVK, ADR, MOV from SP, BFI) are
   straight-line, so resetting to all-[Dyn] at block boundaries loses
   nothing while keeping the scan trivially deterministic. *)
let sites_of_fn cg fidx =
  let f = cg.Callgraph.fns.(fidx) in
  let code = Callgraph.code_of cg fidx in
  let cfg = Cfg.build ~entries:[ f.Callgraph.entry ] code in
  let out = ref [] in
  Array.iter
    (fun blk ->
      let m = Array.make 31 Dyn in
      let getv = function
        | Insn.R n -> m.(n)
        | Insn.XZR -> Imm 0L
        | Insn.SP -> Sp
      in
      let setv r v = match r with Insn.R n -> m.(n) <- v | _ -> () in
      let kill r = setv r Dyn in
      let site va insn skey dir modifier =
        out :=
          {
            va;
            insn;
            fn = f.Callgraph.entry;
            fn_name = f.Callgraph.name;
            skey;
            dir;
            modifier;
            cls = cls_string modifier;
          }
          :: !out
      in
      Array.iter
        (fun (va, insn) ->
          match insn with
          | Insn.Movz (rd, imm, sh) -> setv rd (Imm (Int64.shift_left (Int64.of_int imm) sh))
          | Insn.Movk (rd, imm, sh) -> (
              match getv rd with
              | Imm v ->
                  let mask = Int64.lognot (Int64.shift_left 0xFFFFL sh) in
                  setv rd
                    (Imm
                       (Int64.logor (Int64.logand v mask)
                          (Int64.shift_left (Int64.of_int imm) sh)))
              | _ -> kill rd)
          | Insn.Adr (rd, a) -> setv rd (Addr a)
          | Insn.Mov (rd, rn) -> setv rd (getv rn)
          | Insn.Add_imm (rd, rn, imm) -> (
              match getv rn with
              | Imm v -> setv rd (Imm (Int64.add v (Int64.of_int imm)))
              | Addr a -> setv rd (Addr (Int64.add a (Int64.of_int imm)))
              | Sp -> setv rd Sp
              | _ -> kill rd)
          | Insn.Sub_imm (rd, rn, imm) -> (
              match getv rn with
              | Imm v -> setv rd (Imm (Int64.sub v (Int64.of_int imm)))
              | Addr a -> setv rd (Addr (Int64.sub a (Int64.of_int imm)))
              | Sp -> setv rd Sp
              | _ -> kill rd)
          | Insn.Bfi (rd, rn, lsb, w) -> setv rd (Bfi_of (getv rd, getv rn, lsb, w))
          | Insn.Pac (k, rd, rm) ->
              site va insn k Sign (getv rm);
              kill rd
          | Insn.Aut (k, rd, rm) ->
              site va insn k Auth (getv rm);
              kill rd
          | Insn.Pac1716 k ->
              site va insn k Sign (getv Insn.ip0);
              kill Insn.ip1
          | Insn.Aut1716 k ->
              site va insn k Auth (getv Insn.ip0);
              kill Insn.ip1
          | Insn.Pacga (rd, _, rm) ->
              site va insn Sysreg.GA Sign (getv rm);
              kill rd
          | Insn.Blra (k, _, rm) ->
              site va insn k Auth (getv rm);
              for n = 0 to 18 do
                m.(n) <- Dyn
              done;
              m.(30) <- Dyn
          | Insn.Bra (k, _, rm) -> site va insn k Auth (getv rm)
          | Insn.Reta k -> site va insn k Auth Sp
          | Insn.Bl _ | Insn.Blr _ | Insn.Svc _ ->
              for n = 0 to 18 do
                m.(n) <- Dyn
              done;
              m.(30) <- Dyn
          | insn ->
              let defs, _ = Insn.defs_uses insn in
              List.iter kill defs)
        blk.Cfg.insns)
    cfg.Cfg.blocks;
  List.rev !out

let key_order k = match k with Sysreg.IA -> 0 | IB -> 1 | DA -> 2 | DB -> 3 | GA -> 4

let run ?(par = Lint.seq_par) cg =
  let nf = Array.length cg.Callgraph.fns in
  let per_fn = par.Lint.pmap ~jobs:nf (fun i -> sites_of_fn cg i) in
  let sites = List.concat (Array.to_list per_fn) in
  let sites = List.sort (fun a b -> Int64.compare a.va b.va) sites in
  (* partition by (key, class) *)
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let k = (key_order s.skey, s.cls) in
      Hashtbl.replace tbl k (s :: (Option.value ~default:[] (Hashtbl.find_opt tbl k))))
    sites;
  let classes =
    Hashtbl.fold
      (fun (_, cls) group acc ->
        let group = List.rev group in
        let s0 = List.hd group in
        let fns = List.sort_uniq Int64.compare (List.map (fun s -> s.fn) group) in
        let signs = List.filter (fun s -> s.dir = Sign) group in
        let auths = List.filter (fun s -> s.dir = Auth) group in
        let per_fn_product =
          List.fold_left
            (fun acc fe ->
              let sf = List.length (List.filter (fun s -> s.fn = fe) signs) in
              let af = List.length (List.filter (fun s -> s.fn = fe) auths) in
              acc + (sf * af))
            0 fns
        in
        let pairs = (List.length signs * List.length auths) - per_fn_product in
        let first_sign =
          match signs with [] -> None | s :: _ -> Some (s.va, s.insn)
        in
        {
          ckey = s0.skey;
          cls;
          dynamism = dynamism s0.modifier;
          sign_sites = List.length signs;
          auth_sites = List.length auths;
          fn_count = List.length fns;
          pairs;
          dynamic_bits = dynamic_bits s0.modifier;
          first_sign;
        }
        :: acc)
      tbl []
  in
  let classes =
    List.sort
      (fun a b ->
        let c = compare (key_order a.ckey) (key_order b.ckey) in
        if c <> 0 then c else String.compare a.cls b.cls)
      classes
  in
  { sites; classes }

let to_diags t =
  List.filter_map
    (fun c ->
      if c.fn_count >= 2 && c.pairs >= 1 then
        match c.first_sign with
        | Some (va, insn) ->
            Some
              {
                Diag.va;
                insn;
                kind =
                  Diag.Modifier_collision
                    {
                      Diag.ckey = c.ckey;
                      cls = c.cls;
                      sites = c.sign_sites + c.auth_sites;
                      pairs = c.pairs;
                      dynamism = c.dynamism;
                    };
              }
        | None -> None
      else None)
    t.classes

(* ----- output ----- *)

let dir_name = function Sign -> "sign" | Auth -> "auth"

let site_to_json s =
  Printf.sprintf
    {|{"va":"0x%Lx","fn":"0x%Lx","fn_name":%s,"key":"%s","dir":"%s","class":"%s"}|}
    s.va s.fn
    (match s.fn_name with
    | Some n -> Printf.sprintf {|"%s"|} (Diag.json_escape n)
    | None -> "null")
    (Diag.key_name s.skey) (dir_name s.dir) (Diag.json_escape s.cls)

let cls_to_json c =
  Printf.sprintf
    {|{"key":"%s","class":"%s","dynamism":"%s","sign_sites":%d,"auth_sites":%d,"functions":%d,"gadget_pairs":%d,"dynamic_bits":%d,"forgery_p":%.6g}|}
    (Diag.key_name c.ckey) (Diag.json_escape c.cls)
    (Diag.dynamism_name c.dynamism)
    c.sign_sites c.auth_sites c.fn_count c.pairs c.dynamic_bits
    (forgery_probability c)

let to_json t =
  Printf.sprintf
    {|{"classes":[%s],"collision_classes":%d,"gadget_pairs":%d,"sites":[%s]}|}
    (String.concat "," (List.map cls_to_json t.classes))
    (List.length (List.filter (fun c -> c.fn_count >= 2 && c.pairs >= 1) t.classes))
    (List.fold_left (fun acc c -> acc + c.pairs) 0 t.classes)
    (String.concat "," (List.map site_to_json t.sites))

let table t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "key  class                                      dyn              sign auth fns pairs bits p\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "%-4s %-42s %-16s %4d %4d %3d %5d %4d %.3g\n"
           (Diag.key_name c.ckey) c.cls
           (Diag.dynamism_name c.dynamism)
           c.sign_sites c.auth_sites c.fn_count c.pairs c.dynamic_bits
           (forgery_probability c)))
    t.classes;
  Buffer.contents b
