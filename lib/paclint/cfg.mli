(** Control-flow graph reconstruction over decoded code.

    Blocks are maximal straight-line runs split at every control-flow
    instruction (B/BL/BR/BLR/RET/RETA*/BRA*/BLRA*/CBZ/CBNZ/B.cond/SVC/
    ERET/BRK/HLT), at every in-range branch target, and at address gaps
    (words that did not decode). Calls (BL/BLR/BLRA) fall through — the
    analysis assumes callees return — and an in-range BL target is
    recorded as a function entry rather than an edge, so each function
    is analyzed from its own entry state. *)

open Aarch64

type block = {
  start : int64;  (** address of the first instruction *)
  insns : (int64 * Insn.t) array;
  succs : int list;  (** indices of successor blocks *)
}

type t = {
  blocks : block array;  (** in ascending address order *)
  entries : int list;  (** analysis entry blocks: given entries + BL targets *)
}

(** [build ~entries ~hints code] — [code] must be sorted by ascending
    address with no duplicates; gaps are allowed. Entry addresses
    outside [code] and branch targets outside [code] are ignored.
    [hints va] supplies statically resolved targets for the indirect
    branch at [va] (from {!Callgraph}): BR/BRA hints become real CFG
    edges, BLR/BLRA hints become function entries (call semantics, like
    BL). Unhinted indirect branches still terminate their block with no
    successors — the lint reports those as unresolved. *)
val build :
  ?entries:int64 list -> ?hints:(int64 -> int64 list) -> (int64 * Insn.t) array -> t

(** [reachable t b] — per-block reachability from block [b] along CFG
    edges (calls excluded, as in {!build}). *)
val reachable : t -> int -> bool array
