open Aarch64

type policy = {
  protect_return : bool;
  protect_pointers : bool;
  sp_modifier : bool;
  allowed_key_writer : int64 -> bool;
}

let policy_none =
  {
    protect_return = false;
    protect_pointers = false;
    sp_modifier = false;
    allowed_key_writer = (fun _ -> false);
  }

let reserved_registers = [ Insn.R 15; Insn.ip0; Insn.ip1 ]

(* Parallel-map capability. paclint sits below lib/fleet in the library
   order, so it cannot name Fleet.Pool; callers that want parallelism
   plug Fleet.Pool.map in through this record. Results must land at
   their job index (byte-stable merges rely on it). *)
type par = { pmap : 'a. jobs:int -> (int -> 'a) -> 'a array }

let seq_par = { pmap = (fun ~jobs f -> Array.init jobs f) }

(* ----- flow-insensitive key-access rule (Core.Verifier's contract) ----- *)

let key_access ~allowed va insn =
  match Insn.reads_sysreg insn with
  | Some sr when Sysreg.is_pauth_key sr ->
      Some { Diag.va; insn; kind = Diag.Key_register_read sr }
  | Some _ | None -> (
      match Insn.writes_sysreg insn with
      | Some sr when Sysreg.is_pauth_key sr && not (allowed va) ->
          Some { Diag.va; insn; kind = Diag.Key_register_write sr }
      | Some Sysreg.SCTLR_EL1 when not (allowed va) ->
          Some { Diag.va; insn; kind = Diag.Sctlr_write }
      | Some _ | None -> None)

(* ----- abstract domain ----- *)

(* Provenance of a register value. The join order is by attacker reach:
   [Raw] (loaded from writable memory, never authenticated) dominates
   [Stripped] (had its PAC removed) dominates [Signed] (carries a PAC
   that was never checked) dominates everything code-controlled
   ([Const], [Sp_snap], [Authenticated], [Top]); unequal code-controlled
   values join to [Top]. *)
type pv =
  | Const  (** immediate, address materialization, or trusted load *)
  | Sp_snap of int  (** SP + delta snapshot, for modifier tracking *)
  | Raw
  | Signed of Sysreg.pauth_key
  | Authenticated
  | Stripped
  | Top

type state = { regs : pv array; (* x0..x30 *) mutable delta : int option }

let entry_state () =
  (* Everything unknown at entry, LR included: an untouched LR is
     neither provably attacker-reachable (so a leaf's bare RET passes)
     nor freshly authenticated (so the standard callee-save spill of LR
     is not a TOCTOU finding — only AUT-produced values are). *)
  { regs = Array.make 31 Top; delta = Some 0 }

let copy st = { regs = Array.copy st.regs; delta = st.delta }

let equal_state a b = a.delta = b.delta && a.regs = b.regs

let join_pv a b =
  if a = b then a
  else
    match (a, b) with
    | Raw, _ | _, Raw -> Raw
    | Stripped, _ | _, Stripped -> Stripped
    | (Signed _ as s), _ | _, (Signed _ as s) -> s
    | _ -> Top

let join_state a b =
  {
    regs = Array.init 31 (fun i -> join_pv a.regs.(i) b.regs.(i));
    delta =
      (match (a.delta, b.delta) with
      | Some x, Some y when x = y -> Some x
      | _ -> None);
  }

let get st = function
  | Insn.R n -> st.regs.(n)
  | Insn.XZR -> Const
  | Insn.SP -> ( match st.delta with Some d -> Sp_snap d | None -> Top)

let set st r v = match r with Insn.R n -> st.regs.(n) <- v | Insn.SP | Insn.XZR -> ()

(* ----- transfer function ----- *)

let base_of = function Insn.Off (r, _) | Insn.Pre (r, _) | Insn.Post (r, _) -> r

(* Arithmetic keeps attacker taint, keeps constants, and destroys PACs
   and SP snapshots (the result is some other code-controlled value). *)
let alu1 = function Raw | Stripped -> Raw | Const -> Const | _ -> Top

let alu2 a b =
  match (a, b) with
  | (Raw | Stripped), _ | _, (Raw | Stripped) -> Raw
  | Signed _, _ | _, Signed _ -> Top
  | Const, _ | _, Const -> Const (* indexed access into a code-chosen table *)
  | _ -> Top

(* A load is trusted when its address is: authenticated base (the
   paper's signed ops-table chain) or code-materialized constant
   (rodata). Anything else — stack included — is writable or replayable,
   so the result is attacker-reachable. *)
let load_result = function Authenticated | Const -> Const | _ -> Raw

let writeback st = function
  | Insn.Off _ -> ()
  | Insn.Pre (r, off) | Insn.Post (r, off) -> (
      match r with
      | Insn.SP -> st.delta <- Option.map (fun d -> d + off) st.delta
      | r -> (
          match get st r with
          | Sp_snap d -> set st r (Sp_snap (d + off))
          | _ -> () (* constant offset does not change provenance *)))

let modifier_delta st rm = match get st rm with Sp_snap d -> Some d | _ -> None

let clobber_call st =
  for i = 0 to 18 do
    st.regs.(i) <- Top
  done

type hooks = {
  emit : Diag.t -> unit;
  sign_site : int64 -> Insn.t -> int option -> unit;
  auth_site : int64 -> Insn.t -> int option -> unit;
  call : int64 -> Insn.t -> state -> bool;
      (** interprocedural call transfer: return [true] if the hook
          applied a callee summary to [state]; [false] falls back to the
          conservative clobber (x0-x18 and LR to [Top]) *)
  indirect_resolved : int64 -> bool;
      (** [true] when the BR/BRA at this address has statically resolved
          targets (Callgraph hints made them CFG edges), suppressing the
          unresolved-indirect diagnostic *)
}

let no_hooks =
  {
    emit = (fun _ -> ());
    sign_site = (fun _ _ _ -> ());
    auth_site = (fun _ _ _ -> ());
    call = (fun _ _ _ -> false);
    indirect_resolved = (fun _ -> false);
  }

let step policy hooks st (va, insn) =
  let emit kind = hooks.emit { Diag.va; insn; kind } in
  (match key_access ~allowed:policy.allowed_key_writer va insn with
  | Some d -> hooks.emit d
  | None -> ());
  match insn with
  | Insn.Movz (rd, _, _) -> set st rd Const
  | Insn.Movk (rd, _, _) ->
      set st rd (match get st rd with Raw | Stripped -> Raw | _ -> Const)
  | Insn.Mov (Insn.SP, rn) ->
      st.delta <- (match get st rn with Sp_snap d -> Some d | _ -> None)
  | Insn.Mov (rd, rn) -> set st rd (get st rn)
  | Insn.Add_imm (Insn.SP, rn, imm) ->
      st.delta <- (match get st rn with Sp_snap d -> Some (d + imm) | _ -> None)
  | Insn.Sub_imm (Insn.SP, rn, imm) ->
      st.delta <- (match get st rn with Sp_snap d -> Some (d - imm) | _ -> None)
  | Insn.Add_imm (rd, rn, imm) ->
      set st rd (match get st rn with Sp_snap d -> Sp_snap (d + imm) | v -> alu1 v)
  | Insn.Sub_imm (rd, rn, imm) ->
      set st rd (match get st rn with Sp_snap d -> Sp_snap (d - imm) | v -> alu1 v)
  | Insn.Subs_imm (rd, rn, _)
  | Insn.Lsl_imm (rd, rn, _)
  | Insn.Lsr_imm (rd, rn, _)
  | Insn.Ubfx (rd, rn, _, _) ->
      set st rd (alu1 (get st rn))
  | Insn.Add_reg (rd, rn, rm)
  | Insn.Sub_reg (rd, rn, rm)
  | Insn.Subs_reg (rd, rn, rm)
  | Insn.And_reg (rd, rn, rm)
  | Insn.Orr_reg (rd, rn, rm)
  | Insn.Eor_reg (rd, rn, rm) ->
      set st rd (alu2 (get st rn) (get st rm))
  | Insn.Bfi (rd, rn, _, _) ->
      (* The modifier idiom: BFI of an SP snapshot into a constant tag
         yields a value that still pins the SP delta. *)
      set st rd
        (match get st rn with Sp_snap d -> Sp_snap d | v -> alu2 (get st rd) v)
  | Insn.Adr (rd, _) -> set st rd Const
  | Insn.Ldr (rd, m) | Insn.Ldrb (rd, m) ->
      let v = load_result (get st (base_of m)) in
      writeback st m;
      set st rd v
  | Insn.Ldp (r1, r2, m) ->
      let v = load_result (get st (base_of m)) in
      writeback st m;
      set st r1 v;
      set st r2 v
  | Insn.Str (rs, m) ->
      if get st rs = Authenticated then emit (Diag.Toctou_spill rs);
      writeback st m
  | Insn.Strb (_, m) -> writeback st m
  | Insn.Stp (r1, r2, m) ->
      List.iter
        (fun r -> if get st r = Authenticated then emit (Diag.Toctou_spill r))
        [ r1; r2 ];
      writeback st m
  | Insn.B _ | Insn.Bcond _ | Insn.Cbz _ | Insn.Cbnz _ -> ()
  | Insn.Bl _ ->
      if not (hooks.call va insn st) then begin
        clobber_call st;
        st.regs.(30) <- Top
      end
  | Insn.Br rn ->
      (if policy.protect_pointers then
         match get st rn with
         | Raw | Stripped -> emit (Diag.Unauthenticated_branch rn)
         | _ -> ());
      if not (hooks.indirect_resolved va) then emit (Diag.Unresolved_indirect rn)
  | Insn.Blr rn ->
      (if policy.protect_pointers then
         match get st rn with
         | Raw | Stripped -> emit (Diag.Unauthenticated_branch rn)
         | _ -> ());
      if not (hooks.call va insn st) then begin
        clobber_call st;
        st.regs.(30) <- Top
      end
  | Insn.Ret -> (
      if policy.protect_return then
        match get st Insn.lr with
        | Raw | Stripped | Signed _ -> emit Diag.Unprotected_return
        | _ -> ())
  | Insn.Pac (k, rd, rm) ->
      (match get st rd with
      | Raw | Stripped -> emit (Diag.Signing_oracle rd)
      | _ -> ());
      if policy.sp_modifier then hooks.sign_site va insn (modifier_delta st rm);
      set st rd (Signed k)
  | Insn.Aut (_, rd, rm) ->
      if policy.sp_modifier then hooks.auth_site va insn (modifier_delta st rm);
      set st rd Authenticated
  | Insn.Pac1716 k ->
      (match get st Insn.ip1 with
      | Raw | Stripped -> emit (Diag.Signing_oracle Insn.ip1)
      | _ -> ());
      if policy.sp_modifier then hooks.sign_site va insn (modifier_delta st Insn.ip0);
      set st Insn.ip1 (Signed k)
  | Insn.Aut1716 _ ->
      if policy.sp_modifier then hooks.auth_site va insn (modifier_delta st Insn.ip0);
      set st Insn.ip1 Authenticated
  | Insn.Xpac rd -> set st rd Stripped
  | Insn.Pacga (rd, _, _) -> set st rd Const
  | Insn.Blra (_, _, _) ->
      (* authenticates its own target; traps on a bad PAC *)
      if not (hooks.call va insn st) then begin
        clobber_call st;
        st.regs.(30) <- Top
      end
  | Insn.Bra (_, rn, _) ->
      if not (hooks.indirect_resolved va) then emit (Diag.Unresolved_indirect rn)
  | Insn.Reta _ ->
      (* implicit AUT of LR with SP as the modifier *)
      if policy.sp_modifier then hooks.auth_site va insn st.delta
  | Insn.Mrs (rd, _) -> set st rd Const
  | Insn.Msr _ -> ()
  | Insn.Svc _ -> clobber_call st
  | Insn.Eret | Insn.Isb | Insn.Nop | Insn.Brk _ | Insn.Hlt _ -> ()

(* ----- driver ----- *)

let analyze ?hints ?(call = no_hooks.call) ?(indirect_resolved = no_hooks.indirect_resolved)
    ?(entry = entry_state) policy code ~entries =
  let cfg = Cfg.build ~entries ?hints code in
  let quiet = { no_hooks with call; indirect_resolved } in
  let nb = Array.length cfg.Cfg.blocks in
  let instate = Array.make nb None in
  let work = Queue.create () in
  List.iter
    (fun e ->
      instate.(e) <- Some (entry ());
      Queue.add e work)
    cfg.Cfg.entries;
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    match instate.(b) with
    | None -> ()
    | Some st0 ->
        let st = copy st0 in
        Array.iter (step policy quiet st) cfg.Cfg.blocks.(b).Cfg.insns;
        List.iter
          (fun s ->
            let joined =
              match instate.(s) with None -> copy st | Some cur -> join_state cur st
            in
            match instate.(s) with
            | Some cur when equal_state cur joined -> ()
            | _ ->
                instate.(s) <- Some joined;
                Queue.add s work)
          cfg.Cfg.blocks.(b).Cfg.succs
  done;
  (* Deterministic reporting pass over the fixed point. Unreachable
     blocks (data that happened to decode, dead code) still get the
     flow-insensitive key rule: MSR words are dangerous wherever they
     sit, which is exactly the old linear scan's coverage. *)
  let diags = ref [] in
  let signs = ref [] and auths = ref [] in
  let current_block = ref 0 in
  let hooks =
    {
      emit = (fun d -> diags := d :: !diags);
      sign_site = (fun va insn d -> signs := (!current_block, va, insn, d) :: !signs);
      auth_site = (fun va insn d -> auths := (!current_block, va, insn, d) :: !auths);
      call;
      indirect_resolved;
    }
  in
  Array.iteri
    (fun b blk ->
      current_block := b;
      match instate.(b) with
      | Some st0 ->
          let st = copy st0 in
          Array.iter (step policy hooks st) blk.Cfg.insns
      | None ->
          Array.iter
            (fun (va, insn) ->
              match key_access ~allowed:policy.allowed_key_writer va insn with
              | Some d -> diags := d :: !diags
              | None -> ())
            blk.Cfg.insns)
    cfg.Cfg.blocks;
  (* SP-modifier pairing, grouped by entry reachability (≈ function).
     Only judged when every signing site in the group has a known SP
     delta — an unknown modifier disables the rule rather than guess. *)
  if policy.sp_modifier then begin
    let flagged = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let r = Cfg.reachable cfg e in
        let here sites = List.filter (fun (b, _, _, _) -> r.(b)) sites in
        let signs_e = here !signs and auths_e = here !auths in
        let sign_deltas = List.filter_map (fun (_, _, _, d) -> d) signs_e in
        if signs_e <> [] && List.length sign_deltas = List.length signs_e then
          List.iter
            (fun (_, va, insn, d) ->
              match d with
              | Some d when (not (List.mem d sign_deltas)) && not (Hashtbl.mem flagged va)
                ->
                  Hashtbl.replace flagged va ();
                  diags := { Diag.va; insn; kind = Diag.Modifier_sp_mismatch d } :: !diags
              | _ -> ())
            auths_e)
      cfg.Cfg.entries
  end;
  Diag.normalize !diags

(* ----- entry points ----- *)

let decode_region ~read32 ~base ~size =
  let rec go acc off =
    if off >= size then List.rev acc
    else
      let va = Int64.add base (Int64.of_int off) in
      let acc =
        match Encode.decode ~pc:va (read32 va) with
        | None -> acc
        | Some insn -> (va, insn) :: acc
      in
      go acc (off + 4)
  in
  Array.of_list (go [] 0)

let lint_insns ~policy ?entries insns =
  let code = Array.of_list insns in
  Array.sort (fun (a, _) (b, _) -> Int64.compare a b) code;
  let entries =
    match entries with
    | Some e -> e
    | None -> if Array.length code = 0 then [] else [ fst code.(0) ]
  in
  analyze policy code ~entries

let lint_region ~policy ~read32 ~base ~size ~entries =
  analyze policy (decode_region ~read32 ~base ~size) ~entries

let lint_layout ~policy (l : Asm.layout) =
  analyze policy l.Asm.code ~entries:(List.map snd l.Asm.symbols)

let check_body items =
  let insns = Array.of_list (List.filter_map Asm.item_insn items) in
  let n = Array.length insns in
  (* x16/x17 are the architectural register interface of the 1716-form
     PAuth instructions; a write that feeds one within the next few
     instructions is the canonical idiom, not a scratch clobber. *)
  let feeds_1716 i =
    let rec look j =
      j < n && j <= i + 3
      && (match insns.(j) with
         | Insn.Pac1716 _ | Insn.Aut1716 _ | Insn.Blra _ | Insn.Bra _ -> true
         | _ -> look (j + 1))
    in
    look i
  in
  let diags = ref [] in
  Array.iteri
    (fun i insn ->
      let defs, _ = Insn.defs_uses insn in
      List.iter
        (fun r ->
          if
            List.mem r reserved_registers
            && not ((r = Insn.ip0 || r = Insn.ip1) && feeds_1716 i)
          then
            diags :=
              { Diag.va = Int64.of_int (4 * i); insn; kind = Diag.Reserved_clobber r }
              :: !diags)
        defs)
    insns;
  List.rev !diags
