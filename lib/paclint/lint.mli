(** Forward abstract interpretation of PAC state over a CFG.

    Each general-purpose register is tracked through a small lattice of
    pointer provenances; the stack pointer is tracked as a byte delta
    from its value at function entry. The fixpoint is a may-analysis:
    joins keep the most dangerous provenance, so a value that is
    attacker-derived on any path stays attacker-derived. Diagnostics are
    reported in a deterministic second pass over the fixed point.

    Checks and the paper claims they machine-check:
    - key-register / SCTLR accesses outside the audited setter
      (Camouflage §4.1, §6.2.2) — flow-insensitive, applied even to
      unreachable blocks;
    - unprotected returns and SP-modifier mismatches (Camouflage §4.2);
    - signing oracles, unauthenticated indirect branches, and
      authenticated-pointer spills ("PAC it up" §5, "PACTight" §3). *)

open Aarch64

(** What the code under analysis promised. Derived from [Config.t] by
    [Core.Verifier.policy]; kept structural here so paclint sits below
    core in the dependency order. *)
type policy = {
  protect_return : bool;
      (** scheme signs return addresses: RET needs an authenticated LR *)
  protect_pointers : bool;
      (** function pointers are signed at rest: BR/BLR need an
          authenticated or code-generated target *)
  sp_modifier : bool;
      (** the modifier embeds SP ([Sp_only]/[Parts]/[Camouflage]):
          sign/authenticate SP deltas must pair up *)
  allowed_key_writer : int64 -> bool;
      (** addresses of the audited key setter, where MSRs to key
          registers and SCTLR are legitimate *)
}

(** All checks off, no audited setter. Key accesses still diagnose
    (reads are never legitimate; writes only inside the setter). *)
val policy_none : policy

(** Registers the instrumentation reserves as scratch and a raw function
    body must not write: x15 ([Core.Instrument.scratch]), x16, x17. *)
val reserved_registers : Insn.reg list

(** [key_access ~allowed va insn] — the flow-insensitive key-register
    rule on one instruction; exactly [Core.Verifier]'s historical
    contract (key reads always flagged; key/SCTLR writes flagged outside
    [allowed]). *)
val key_access : allowed:(int64 -> bool) -> int64 -> Insn.t -> Diag.t option

(** [decode_region ~read32 ~base ~size] — decode every word of
    [base, base+size); words that do not decode are skipped (data cannot
    execute). *)
val decode_region :
  read32:(int64 -> int32) -> base:int64 -> size:int -> (int64 * Insn.t) array

(** [lint_insns ~policy ?entries insns] — analyze an instruction
    listing. [entries] are function-entry addresses (default: the lowest
    address); in-range BL targets are added automatically. Diagnostics
    come back in ascending address order. *)
val lint_insns :
  policy:policy -> ?entries:int64 list -> (int64 * Insn.t) list -> Diag.t list

(** [lint_region ~policy ~read32 ~base ~size ~entries] — decode then
    analyze a memory region (the loader's and kernel's gate). *)
val lint_region :
  policy:policy ->
  read32:(int64 -> int32) ->
  base:int64 ->
  size:int ->
  entries:int64 list ->
  Diag.t list

(** [lint_layout ~policy layout] — analyze an assembled layout, using
    its global symbols as entries. *)
val lint_layout : policy:policy -> Asm.layout -> Diag.t list

(** [check_body items] — the reserved-register rule over a raw,
    pre-instrumentation function body: warn on any write to
    {!reserved_registers}. Writes to x16/x17 that feed a 1716-form or
    combined-branch PAuth instruction within the next few instructions
    are the architectural idiom and exempt. Diagnostic [va]s are byte
    offsets into the body (it has no address yet). Instrumented streams
    legitimately use the scratch registers, so this check runs on bodies
    only. *)
val check_body : Asm.item list -> Diag.t list
