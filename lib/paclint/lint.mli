(** Forward abstract interpretation of PAC state over a CFG.

    Each general-purpose register is tracked through a small lattice of
    pointer provenances; the stack pointer is tracked as a byte delta
    from its value at function entry. The fixpoint is a may-analysis:
    joins keep the most dangerous provenance, so a value that is
    attacker-derived on any path stays attacker-derived. Diagnostics are
    reported in a deterministic second pass over the fixed point.

    Checks and the paper claims they machine-check:
    - key-register / SCTLR accesses outside the audited setter
      (Camouflage §4.1, §6.2.2) — flow-insensitive, applied even to
      unreachable blocks;
    - unprotected returns and SP-modifier mismatches (Camouflage §4.2);
    - signing oracles, unauthenticated indirect branches, and
      authenticated-pointer spills ("PAC it up" §5, "PACTight" §3). *)

open Aarch64

(** What the code under analysis promised. Derived from [Config.t] by
    [Core.Verifier.policy]; kept structural here so paclint sits below
    core in the dependency order. *)
type policy = {
  protect_return : bool;
      (** scheme signs return addresses: RET needs an authenticated LR *)
  protect_pointers : bool;
      (** function pointers are signed at rest: BR/BLR need an
          authenticated or code-generated target *)
  sp_modifier : bool;
      (** the modifier embeds SP ([Sp_only]/[Parts]/[Camouflage]):
          sign/authenticate SP deltas must pair up *)
  allowed_key_writer : int64 -> bool;
      (** addresses of the audited key setter, where MSRs to key
          registers and SCTLR are legitimate *)
}

(** All checks off, no audited setter. Key accesses still diagnose
    (reads are never legitimate; writes only inside the setter). *)
val policy_none : policy

(** Registers the instrumentation reserves as scratch and a raw function
    body must not write: x15 ([Core.Instrument.scratch]), x16, x17. *)
val reserved_registers : Insn.reg list

(** Parallel-map capability. paclint sits below [lib/fleet] in the
    library order, so it cannot name [Fleet.Pool]; callers that want
    parallel whole-image analysis plug [Fleet.Pool.map] in through this
    record. The function must place result [i] at slot [i] — index
    merging is what makes reports byte-identical for any worker count. *)
type par = { pmap : 'a. jobs:int -> (int -> 'a) -> 'a array }

(** Sequential {!par}: a plain [Array.init]. *)
val seq_par : par

(** {1 Abstract domain}

    Exposed so {!Summary} and {!Census} can reuse the transfer function
    across call boundaries. *)

(** Provenance of a register value. The join order is by attacker reach:
    [Raw] (loaded from writable memory, never authenticated) dominates
    [Stripped] (had its PAC removed) dominates [Signed] (carries a PAC
    that was never checked) dominates everything code-controlled
    ([Const], [Sp_snap], [Authenticated], [Top]); unequal
    code-controlled values join to [Top]. *)
type pv =
  | Const
  | Sp_snap of int  (** SP + delta snapshot, for modifier tracking *)
  | Raw
  | Signed of Sysreg.pauth_key
  | Authenticated
  | Stripped
  | Top

type state = { regs : pv array; (* x0..x30 *) mutable delta : int option }

(** Fresh function-entry state: every register [Top], SP delta 0. *)
val entry_state : unit -> state

val copy : state -> state
val equal_state : state -> state -> bool
val join_pv : pv -> pv -> pv
val join_state : state -> state -> state
val get : state -> Insn.reg -> pv
val set : state -> Insn.reg -> pv -> unit

(** Conservative call effect: x0-x18 to [Top] (the procedure-call
    standard's caller-saved set); the caller must clobber LR itself. *)
val clobber_call : state -> unit

(** Analysis callbacks. [emit] receives diagnostics; [sign_site] and
    [auth_site] fire at PAC/AUT instructions with the modifier's SP
    delta when known; [call] and [indirect_resolved] are the
    interprocedural extension points (see each field). *)
type hooks = {
  emit : Diag.t -> unit;
  sign_site : int64 -> Insn.t -> int option -> unit;
  auth_site : int64 -> Insn.t -> int option -> unit;
  call : int64 -> Insn.t -> state -> bool;
      (** fired at BL/BLR/BLRA before the conservative clobber; return
          [true] after applying a callee summary to the state to
          suppress the clobber *)
  indirect_resolved : int64 -> bool;
      (** [true] when the BR/BRA at this address has statically resolved
          targets, suppressing the unresolved-indirect diagnostic *)
}

(** Inert hooks: drop diagnostics, no summaries, nothing resolved. *)
val no_hooks : hooks

(** [step policy hooks st (va, insn)] — one instruction of the abstract
    transfer function, mutating [st]. *)
val step : policy -> hooks -> state -> int64 * Insn.t -> unit

(** [key_access ~allowed va insn] — the flow-insensitive key-register
    rule on one instruction; exactly [Core.Verifier]'s historical
    contract (key reads always flagged; key/SCTLR writes flagged outside
    [allowed]). *)
val key_access : allowed:(int64 -> bool) -> int64 -> Insn.t -> Diag.t option

(** [decode_region ~read32 ~base ~size] — decode every word of
    [base, base+size); words that do not decode are skipped (data cannot
    execute). *)
val decode_region :
  read32:(int64 -> int32) -> base:int64 -> size:int -> (int64 * Insn.t) array

(** [lint_insns ~policy ?entries insns] — analyze an instruction
    listing. [entries] are function-entry addresses (default: the lowest
    address); in-range BL targets are added automatically. Diagnostics
    come back in ascending address order. *)
val lint_insns :
  policy:policy -> ?entries:int64 list -> (int64 * Insn.t) list -> Diag.t list

(** [lint_region ~policy ~read32 ~base ~size ~entries] — decode then
    analyze a memory region (the loader's and kernel's gate). *)
val lint_region :
  policy:policy ->
  read32:(int64 -> int32) ->
  base:int64 ->
  size:int ->
  entries:int64 list ->
  Diag.t list

(** [lint_layout ~policy layout] — analyze an assembled layout, using
    its global symbols as entries. *)
val lint_layout : policy:policy -> Asm.layout -> Diag.t list

(** [check_body items] — the reserved-register rule over a raw,
    pre-instrumentation function body: warn on any write to
    {!reserved_registers}. Writes to x16/x17 that feed a 1716-form or
    combined-branch PAuth instruction within the next few instructions
    are the architectural idiom and exempt. Diagnostic [va]s are byte
    offsets into the body (it has no address yet). Instrumented streams
    legitimately use the scratch registers, so this check runs on bodies
    only. *)
val check_body : Asm.item list -> Diag.t list
