(** Modifier-collision gadget census over a whole image.

    Camouflage's security argument is modifier diversity: a signed
    pointer is substitutable only by a pointer signed under the same
    (key, modifier) pair. The census makes that measurable. Every
    PAC/AUT site in the image is assigned a canonical
    modifier-expression class by a per-block constant/shape analysis
    (immediates, ADR address materializations, SP, BFI compositions,
    run-time values), then sites are partitioned by (key, class). A
    class whose sites span more than one function is a collision class:
    each cross-function (sign, auth) pair is a substitution gadget — a
    pointer signed at one site authenticates at the other whenever the
    dynamic parts of the modifier coincide, with probability
    2^-(dynamic bits). *)

open Aarch64

(** Canonical modifier-expression shapes. [Dyn] is any run-time value
    (loads, arguments, call results); SP deltas are deliberately folded
    into one [Sp] class — stack pointers from different frames can
    coincide at run time, which is exactly the PARTS-style collision the
    census exists to count. *)
type mexpr =
  | Imm of int64
  | Addr of int64
  | Sp
  | Dyn
  | Bfi_of of mexpr * mexpr * int * int  (** base, inserted, lsb, width *)

type direction = Sign | Auth

type site = {
  va : int64;
  insn : Insn.t;
  fn : int64;  (** entry of the containing function *)
  fn_name : string option;
  skey : Sysreg.pauth_key;
  dir : direction;
  modifier : mexpr;
  cls : string;  (** canonical class string of [modifier] *)
}

type cls_report = {
  ckey : Sysreg.pauth_key;
  cls : string;
  dynamism : Diag.dynamism;
  sign_sites : int;
  auth_sites : int;
  fn_count : int;  (** distinct functions containing sites *)
  pairs : int;  (** cross-function (sign, auth) gadget pairs *)
  dynamic_bits : int;  (** modifier bits not fixed statically *)
  first_sign : (int64 * Insn.t) option;  (** lowest sign site, for diags *)
}

type t = {
  sites : site list;  (** ascending va *)
  classes : cls_report list;  (** ascending (key, class) *)
}

(** Canonical class string: ["imm:0x..."], ["addr:0x..."], ["sp"],
    ["dyn"], ["bfi(base,src,lsb,width)"]. *)
val cls_string : mexpr -> string

(** Bits of the 64-bit modifier that vary at run time. *)
val dynamic_bits : mexpr -> int

val dynamism : mexpr -> Diag.dynamism

(** [2. ** -. dynamic_bits] — the probability a pointer signed at one
    site of the class authenticates at another with uncorrelated dynamic
    context. 1.0 for a static class. *)
val forgery_probability : cls_report -> float

(** [run ~par cg] — extract sites per function (parallel, index-merged)
    and partition into classes. Output is byte-stable for any worker
    count. *)
val run : ?par:Lint.par -> Callgraph.t -> t

(** Collision classes (sites in ≥ 2 functions, ≥ 1 gadget pair) as
    {!Diag.Modifier_collision} findings anchored at the class's lowest
    sign site. *)
val to_diags : t -> Diag.t list

(** Byte-stable JSON: class table then full site listing. *)
val to_json : t -> string

(** Human-readable class table (one line per class). *)
val table : t -> string
