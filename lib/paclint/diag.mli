(** Typed diagnostics for the PAC-state lint.

    Each finding carries the virtual address, the offending instruction,
    a kind with its evidence, and a one-line fix hint. Severity is
    derived from the kind: anything that lets an attacker forge, strip
    or replay a PAC — or touch the key registers — is an [Error];
    defence-in-depth findings (TOCTOU spills, reserved-register
    clobbers) are [Warning]s. The loader rejects on errors only. *)

open Aarch64

type severity = Warning | Error

type kind =
  | Key_register_read of Sysreg.t
      (** MRS of an AP*Key* register anywhere (§4.1: the kernel never
          reads its keys). *)
  | Key_register_write of Sysreg.t
      (** MSR to an AP*Key* register outside the audited setter
          (§6.2.2). *)
  | Sctlr_write
      (** MSR to SCTLR_EL1 outside the audited setter — could clear the
          PAuth enable bits. *)
  | Unprotected_return
      (** RET reachable with a link register that is raw, stripped, or
          still signed, under a return-protecting scheme. *)
  | Unauthenticated_branch of Insn.reg
      (** BR/BLR through a register whose value came from memory and was
          never authenticated ("PAC it up" forward-edge bypass). *)
  | Signing_oracle of Insn.reg
      (** PAC over a value loaded from memory with no intervening AUT —
          reusable by an attacker to forge pointers ("PAC it up" §5.2). *)
  | Toctou_spill of Insn.reg
      (** An authenticated pointer written back to memory before its
          consuming use — re-load is a time-of-check-to-time-of-use
          window ("PACTight"). *)
  | Modifier_sp_mismatch of int
      (** AUT whose SP-derived modifier offset matches no signing site
          in the same function; payload is the authenticate-site SP
          delta. *)
  | Reserved_clobber of Insn.reg
      (** A function body writes x15/x16/x17, which the instrumentation
          reserves as scratch. *)

type t = { va : int64; insn : Insn.t; kind : kind }

val severity : t -> severity
val is_error : t -> bool

(** Stable kebab-case identifier for the kind (used in JSON output). *)
val kind_name : kind -> string

(** One-sentence statement of the finding. *)
val message : t -> string

(** One-line fix hint. *)
val hint : t -> string

(** ["0x<va>: <severity>: <message> (<insn>); hint: <hint>"]. *)
val to_string : t -> string

(** One finding as a JSON object (hand-rolled, no dependencies). *)
val to_json : t -> string

(** A findings list as a JSON array. *)
val list_to_json : t list -> string
