(** Typed diagnostics for the PAC-state lint.

    Each finding carries the virtual address, the offending instruction,
    a kind with its evidence, and a one-line fix hint. Severity is
    derived from the kind: anything that lets an attacker forge, strip
    or replay a PAC — or touch the key registers — is an [Error];
    defence-in-depth findings (TOCTOU spills, reserved-register
    clobbers, SP-conditional modifier collisions) are [Warning]s;
    visibility findings that flag analysis limits or object-conditional
    weaknesses rather than code bugs are [Info]s. The loader rejects on
    errors only. *)

open Aarch64

type severity = Info | Warning | Error

(** How a colliding modifier class depends on run-time values. [Static]
    classes are bit-identical at every site (substitution probability
    1); [Sp_dependent] classes collide whenever the stack pointers are
    congruent (attacker-influenceable: stack depths repeat);
    [Object_dependent] classes embed an object address and collide only
    for the same object. *)
type dynamism = Static | Sp_dependent | Object_dependent

(** One modifier-collision class from the census: [sites] PAC/AUT sites
    across more than one function share [(key, cls)], yielding [pairs]
    cross-function substitution-gadget pairs. *)
type collision = {
  ckey : Sysreg.pauth_key;
  cls : string;  (** canonical modifier-expression class *)
  sites : int;
  pairs : int;  (** cross-function (sign, auth) pairs *)
  dynamism : dynamism;
}

type kind =
  | Key_register_read of Sysreg.t
      (** MRS of an AP*Key* register anywhere (§4.1: the kernel never
          reads its keys). *)
  | Key_register_write of Sysreg.t
      (** MSR to an AP*Key* register outside the audited setter
          (§6.2.2). *)
  | Sctlr_write
      (** MSR to SCTLR_EL1 outside the audited setter — could clear the
          PAuth enable bits. *)
  | Unprotected_return
      (** RET reachable with a link register that is raw, stripped, or
          still signed, under a return-protecting scheme. *)
  | Unauthenticated_branch of Insn.reg
      (** BR/BLR through a register whose value came from memory and was
          never authenticated ("PAC it up" forward-edge bypass). *)
  | Signing_oracle of Insn.reg
      (** PAC over a value loaded from memory with no intervening AUT —
          reusable by an attacker to forge pointers ("PAC it up" §5.2). *)
  | Toctou_spill of Insn.reg
      (** An authenticated pointer written back to memory before its
          consuming use — re-load is a time-of-check-to-time-of-use
          window ("PACTight"). *)
  | Modifier_sp_mismatch of int
      (** AUT whose SP-derived modifier offset matches no signing site
          in the same function; payload is the authenticate-site SP
          delta. *)
  | Reserved_clobber of Insn.reg
      (** A function body writes x15/x16/x17, which the instrumentation
          reserves as scratch. *)
  | Unresolved_indirect of Insn.reg
      (** BR/BRA through a register with no statically resolved target:
          the control-flow graph is truncated at this site, so anything
          the analysis reports downstream is best-effort. *)
  | Modifier_collision of collision
      (** The census found a modifier class shared across functions:
          every pointer signed in the class is substitutable at every
          authenticating site of the class (severity by {!dynamism}). *)
  | Scheme_violation of string
      (** A per-scheme rule pack found code that does not follow the
          scheme's modifier discipline; the payload is the rule's own
          sentence. *)

type t = { va : int64; insn : Insn.t; kind : kind }

val severity : t -> severity
val is_error : t -> bool
val severity_name : severity -> string

(** Stable kebab-case identifier for the kind (used in JSON output). *)
val kind_name : kind -> string

(** ["IA"], ["IB"], ["DA"], ["DB"], ["GA"]. *)
val key_name : Sysreg.pauth_key -> string

(** ["static"] / ["sp-dependent"] / ["object-dependent"]. *)
val dynamism_name : dynamism -> string

(** One-sentence statement of the finding. *)
val message : t -> string

(** One-line fix hint. *)
val hint : t -> string

(** ["0x<va>: <severity>: <message> (<insn>); hint: <hint>"]. *)
val to_string : t -> string

(** Total order on diagnostics: (va, kind name, severity, payload).
    This is the order every lint driver reports in, so output is
    byte-stable regardless of analysis or worker order. *)
val compare : t -> t -> int

(** [normalize ds] — sort by {!compare} and drop structural duplicates.
    Applied by {!list_to_json} and by every lint entry point before
    reporting. *)
val normalize : t list -> t list

(** JSON string escaping helper (shared with the census serializer). *)
val json_escape : string -> string

(** One finding as a JSON object (hand-rolled, no dependencies). *)
val to_json : t -> string

(** A findings list as a JSON array, normalized first. *)
val list_to_json : t list -> string
