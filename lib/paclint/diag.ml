open Aarch64

type severity = Info | Warning | Error

type dynamism = Static | Sp_dependent | Object_dependent

type collision = {
  ckey : Sysreg.pauth_key;
  cls : string;
  sites : int;
  pairs : int;
  dynamism : dynamism;
}

type kind =
  | Key_register_read of Sysreg.t
  | Key_register_write of Sysreg.t
  | Sctlr_write
  | Unprotected_return
  | Unauthenticated_branch of Insn.reg
  | Signing_oracle of Insn.reg
  | Toctou_spill of Insn.reg
  | Modifier_sp_mismatch of int
  | Reserved_clobber of Insn.reg
  | Unresolved_indirect of Insn.reg
  | Modifier_collision of collision
  | Scheme_violation of string

type t = { va : int64; insn : Insn.t; kind : kind }

let severity d =
  match d.kind with
  | Toctou_spill _ | Reserved_clobber _ -> Warning
  | Unresolved_indirect _ -> Info
  | Modifier_collision c -> (
      match c.dynamism with
      | Static -> Error
      | Sp_dependent -> Warning
      | Object_dependent -> Info)
  | Scheme_violation _ -> Warning
  | Key_register_read _ | Key_register_write _ | Sctlr_write | Unprotected_return
  | Unauthenticated_branch _ | Signing_oracle _ | Modifier_sp_mismatch _ ->
      Error

let is_error d = severity d = Error

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

let kind_name = function
  | Key_register_read _ -> "key-register-read"
  | Key_register_write _ -> "key-register-write"
  | Sctlr_write -> "sctlr-write"
  | Unprotected_return -> "unprotected-return"
  | Unauthenticated_branch _ -> "unauthenticated-branch"
  | Signing_oracle _ -> "signing-oracle"
  | Toctou_spill _ -> "toctou-spill"
  | Modifier_sp_mismatch _ -> "modifier-sp-mismatch"
  | Reserved_clobber _ -> "reserved-clobber"
  | Unresolved_indirect _ -> "unresolved-indirect"
  | Modifier_collision _ -> "modifier-collision"
  | Scheme_violation _ -> "scheme-violation"

let dynamism_name = function
  | Static -> "static"
  | Sp_dependent -> "sp-dependent"
  | Object_dependent -> "object-dependent"

let key_name = function
  | Sysreg.IA -> "IA"
  | Sysreg.IB -> "IB"
  | Sysreg.DA -> "DA"
  | Sysreg.DB -> "DB"
  | Sysreg.GA -> "GA"

let message d =
  match d.kind with
  | Key_register_read sr -> Printf.sprintf "reads PAuth key register %s" (Sysreg.name sr)
  | Key_register_write sr ->
      Printf.sprintf "writes PAuth key register %s outside the audited setter"
        (Sysreg.name sr)
  | Sctlr_write -> "writes SCTLR_EL1 outside the audited setter"
  | Unprotected_return -> "returns through a link register that was never authenticated"
  | Unauthenticated_branch r ->
      Printf.sprintf "indirect branch through %s, which holds an unauthenticated value"
        (Insn.reg_name r)
  | Signing_oracle r ->
      Printf.sprintf "signs %s, whose value was loaded from memory without authentication"
        (Insn.reg_name r)
  | Toctou_spill r ->
      Printf.sprintf "spills authenticated pointer %s back to memory" (Insn.reg_name r)
  | Modifier_sp_mismatch delta ->
      Printf.sprintf "authenticates at SP delta %d, which matches no signing site" delta
  | Reserved_clobber r ->
      Printf.sprintf "function body writes reserved scratch register %s" (Insn.reg_name r)
  | Unresolved_indirect r ->
      Printf.sprintf
        "indirect branch through %s has no statically resolved target; CFG is truncated \
         here"
        (Insn.reg_name r)
  | Modifier_collision c ->
      Printf.sprintf
        "%d %s-key PAC/AUT sites across functions share modifier class %s (%s): %d \
         cross-function substitution-gadget pair%s"
        c.sites (key_name c.ckey) c.cls (dynamism_name c.dynamism) c.pairs
        (if c.pairs = 1 then "" else "s")
  | Scheme_violation msg -> msg

let hint d =
  match d.kind with
  | Key_register_read _ ->
      "key material must never be read back; generate keys inside the audited setter"
  | Key_register_write _ | Sctlr_write ->
      "route key and SCTLR programming through the audited key setter in XOM"
  | Unprotected_return ->
      "sign the link register in the prologue and authenticate it in the epilogue \
       (Instrument.wrap)"
  | Unauthenticated_branch _ ->
      "authenticate the pointer (AUT) or load it through a protected getter before \
       branching"
  | Signing_oracle _ ->
      "authenticate the value before re-signing; a PAC over attacker data is a forgery \
       gadget"
  | Toctou_spill _ ->
      "keep authenticated pointers in registers; re-authenticate after any reload"
  | Modifier_sp_mismatch _ ->
      "restore SP to its value at the signing site before authenticating"
  | Reserved_clobber _ ->
      "x15-x17 are reserved for instrumentation scratch; use another register"
  | Unresolved_indirect _ ->
      "add the target to the symbol table or feed Callgraph a resolvable address \
       materialization (ADR) so the CFG covers the destination"
  | Modifier_collision _ ->
      "diversify the modifier (embed function address or object address) so signed \
       pointers are not substitutable across sites"
  | Scheme_violation _ ->
      "follow the scheme's modifier discipline (see the rule pack for this scheme)"

let to_string d =
  Printf.sprintf "0x%Lx: %s: %s (%s); hint: %s" d.va
    (severity_name (severity d))
    (message d) (Insn.to_string d.insn) (hint d)

(* (va, kind, severity, payload): a total order independent of the order
   the analysis discovered findings in, so reports are byte-stable. *)
let compare a b =
  let c = Int64.compare a.va b.va in
  if c <> 0 then c
  else
    let c = String.compare (kind_name a.kind) (kind_name b.kind) in
    if c <> 0 then c
    else
      let c = Stdlib.compare (severity a) (severity b) in
      if c <> 0 then c else Stdlib.compare a b

let normalize ds =
  let sorted = List.sort compare ds in
  let rec dedup = function
    | a :: b :: rest when a = b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"va":"0x%Lx","severity":"%s","kind":"%s","insn":"%s","message":"%s","hint":"%s"}|}
    d.va
    (severity_name (severity d))
    (kind_name d.kind)
    (json_escape (Insn.to_string d.insn))
    (json_escape (message d))
    (json_escape (hint d))

let list_to_json ds = "[" ^ String.concat "," (List.map to_json (normalize ds)) ^ "]"
