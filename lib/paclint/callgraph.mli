(** Whole-image function partitioning and call edges.

    The decoded image is split into functions at every known entry:
    given symbols, BL targets, and best-effort resolved indirect-branch
    targets. A function spans from its entry to the next entry (or the
    end of the image) — the classic linear-sweep convention, which is
    exact for the assembler-produced layouts this repo builds.

    Indirect targets (BLR/BLRA/BR/BRA) are resolved by a forward
    constant-propagation sweep per function: ADR materializations and
    MOVZ/MOVK chains feeding the branch register resolve to their
    absolute address when it lands on a decoded instruction. Unresolved
    sites are kept and surfaced (the lint reports them; the CFG stays
    truncated there). *)

open Aarch64

type edge_kind =
  | Direct  (** BL *)
  | Indirect  (** BLR / BLRA, statically resolved *)
  | Tail  (** B / BR / BRA leaving the function, statically resolved *)

type call = {
  site : int64;  (** address of the call instruction *)
  target : int64 option;  (** [None] when the indirect target is unresolved *)
  kind : edge_kind;
}

type fn = {
  entry : int64;
  name : string option;  (** from the symbol table, when named *)
  lo : int;  (** index of the first instruction in [code] *)
  hi : int;  (** one past the last instruction *)
  calls : call list;  (** in ascending site order *)
}

type t = {
  code : (int64 * Insn.t) array;
  fns : fn array;  (** ascending entry order *)
}

(** [build ~symbols code] — [code] sorted by ascending address, no
    duplicates (gaps allowed). Symbol addresses outside [code] are
    ignored. *)
val build : ?symbols:(string * int64) list -> (int64 * Insn.t) array -> t

(** Index of the function whose entry is exactly [va]. *)
val fn_index : t -> int64 -> int option

(** Index of the function containing [va]. *)
val fn_of_va : t -> int64 -> int option

(** Instruction slice of function [i]. *)
val code_of : t -> int -> (int64 * Insn.t) array

(** [hints t va] — resolved targets of the indirect branch at [va]
    (empty for direct branches and unresolved sites). Feed to
    {!Cfg.build} and {!Lint.hooks.indirect_resolved}. *)
val hints : t -> int64 -> int64 list

(** Indices of functions with a resolved call edge into function [i],
    ascending, deduplicated. *)
val callers : t -> int -> int list

(** Number of call sites whose indirect target could not be resolved. *)
val unresolved_count : t -> int

(** Byte-stable JSON: functions in entry order with their call edges. *)
val to_json : t -> string
