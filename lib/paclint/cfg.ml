open Aarch64

type block = {
  start : int64;
  insns : (int64 * Insn.t) array;
  succs : int list;
}

type t = { blocks : block array; entries : int list }

let is_terminator = function
  | Insn.B _ | Insn.Bl _ | Insn.Br _ | Insn.Blr _ | Insn.Ret | Insn.Cbz _ | Insn.Cbnz _
  | Insn.Bcond _ | Insn.Blra _ | Insn.Bra _ | Insn.Reta _ | Insn.Svc _ | Insn.Eret
  | Insn.Brk _ | Insn.Hlt _ ->
      true
  | _ -> false

(* Explicit edge targets and whether control can also fall through. BL's
   target is an entry, not an edge (see mli). *)
let flow = function
  | Insn.B a -> ([ a ], false)
  | Insn.Cbz (_, a) | Insn.Cbnz (_, a) | Insn.Bcond (_, a) -> ([ a ], true)
  | Insn.Bl _ | Insn.Blr _ | Insn.Blra _ | Insn.Svc _ -> ([], true)
  | Insn.Br _ | Insn.Bra _ | Insn.Ret | Insn.Reta _ | Insn.Eret | Insn.Brk _ | Insn.Hlt _
    ->
      ([], false)
  | _ -> ([], true)

(* [flow] plus resolved-target hints: a BR/BRA with hints becomes a
   real multi-way edge; a BLR/BLRA keeps call semantics (hints become
   entries, handled by the caller). *)
let flow_hinted hints va insn =
  let targets, fall = flow insn in
  match insn with
  | Insn.Br _ | Insn.Bra _ -> (targets @ hints va, fall)
  | _ -> (targets, fall)

let build ?(entries = []) ?(hints = fun _ -> []) code =
  let n = Array.length code in
  let idx = Hashtbl.create (max 16 (2 * n)) in
  Array.iteri (fun i (va, _) -> Hashtbl.replace idx va i) code;
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  let entry_vas = ref [] in
  let add_entry va =
    if Hashtbl.mem idx va && not (List.mem va !entry_vas) then
      entry_vas := va :: !entry_vas
  in
  List.iter add_entry entries;
  Array.iteri
    (fun i (va, insn) ->
      (if i + 1 < n then
         let next_va, _ = code.(i + 1) in
         if is_terminator insn || Int64.add va 4L <> next_va then leader.(i + 1) <- true);
      let targets, _ = flow_hinted hints va insn in
      List.iter
        (fun t ->
          match Hashtbl.find_opt idx t with Some j -> leader.(j) <- true | None -> ())
        targets;
      match insn with
      | Insn.Bl t -> add_entry t
      | Insn.Blr _ | Insn.Blra _ -> List.iter add_entry (hints va)
      | _ -> ())
    code;
  List.iter (fun va -> leader.(Hashtbl.find idx va) <- true) !entry_vas;
  let starts = ref [] in
  for i = n - 1 downto 0 do
    if leader.(i) then starts := i :: !starts
  done;
  let starts = Array.of_list !starts in
  let nb = Array.length starts in
  let block_of_va = Hashtbl.create (max 16 (2 * nb)) in
  Array.iteri (fun b s -> Hashtbl.replace block_of_va (fst code.(s)) b) starts;
  let blocks =
    Array.init nb (fun b ->
        let s = starts.(b) in
        let e = if b + 1 < nb then starts.(b + 1) else n in
        let insns = Array.sub code s (e - s) in
        let last_va, last = insns.(Array.length insns - 1) in
        let targets, fall = flow_hinted hints last_va last in
        let falls = if is_terminator last then fall else true in
        let succ_vas =
          let ft = Int64.add last_va 4L in
          (if falls && Hashtbl.mem idx ft then [ ft ] else [])
          @ List.filter (Hashtbl.mem idx) targets
        in
        let succs =
          List.sort_uniq compare (List.filter_map (Hashtbl.find_opt block_of_va) succ_vas)
        in
        { start = fst code.(s); insns; succs })
  in
  let entry_blocks =
    List.sort_uniq compare (List.filter_map (Hashtbl.find_opt block_of_va) !entry_vas)
  in
  { blocks; entries = entry_blocks }

let reachable t b =
  let seen = Array.make (Array.length t.blocks) false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go t.blocks.(i).succs
    end
  in
  if Array.length seen > 0 then go b;
  seen
