open Aarch64

type scheme = Generic | Sp_only | Parts | Camouflage | Chained

let scheme_name = function
  | Generic -> "generic"
  | Sp_only -> "sp-only"
  | Parts -> "parts"
  | Camouflage -> "camouflage"
  | Chained -> "chained"

let scheme_of_string = function
  | "generic" -> Some Generic
  | "sp-only" | "sp_only" -> Some Sp_only
  | "parts" -> Some Parts
  | "camouflage" -> Some Camouflage
  | "chained" -> Some Chained
  | _ -> None

type ctx = { scheme : scheme; summary : Summary.report; census : Census.t }

type rule = { name : string; describes : string; check : ctx -> Diag.t list }

let collision_rule =
  {
    name = "modifier-collision";
    describes =
      "cross-function (key, modifier-class) collisions are substitution gadgets";
    check = (fun ctx -> Census.to_diags ctx.census);
  }

(* Return-key (IA/IB) sign sites, the sites return-protection disciplines
   constrain. Data keys (DA/DB) belong to the pointer-integrity getters
   and are judged by the collision rule alone. *)
let return_sign_sites ctx =
  List.filter
    (fun s ->
      s.Census.dir = Census.Sign
      && (s.Census.skey = Sysreg.IA || s.Census.skey = Sysreg.IB))
    ctx.census.Census.sites

let violation va insn msg = { Diag.va; insn; kind = Diag.Scheme_violation msg }

let rec mentions_addr = function
  | Census.Addr _ -> true
  | Census.Bfi_of (b, s, _, _) -> mentions_addr b || mentions_addr s
  | _ -> false

let rec mentions_sp = function
  | Census.Sp -> true
  | Census.Bfi_of (b, s, _, _) -> mentions_sp b || mentions_sp s
  | _ -> false

(* Camouflage's Listing-3 discipline applies to frame-bound (SP-bearing)
   modifiers: those must also embed the function address, or frames at
   congruent stack depths collide across functions. Object-bound
   modifiers (pointer-integrity getters) are diversified by the object
   address instead and are judged by the collision rule. *)
let address_diversity_rule =
  {
    name = "address-diversity";
    describes =
      "camouflage frame-bound modifiers must embed the function address (Listing 3)";
    check =
      (fun ctx ->
        List.filter_map
          (fun s ->
            if mentions_sp s.Census.modifier && not (mentions_addr s.Census.modifier)
            then
              Some
                (violation s.Census.va s.Census.insn
                   (Printf.sprintf
                      "return-key sign site uses frame-bound modifier class %s without \
                       a function address; camouflage requires address diversity"
                      s.Census.cls))
            else None)
          (return_sign_sites ctx));
  }

let parts_shape_rule =
  {
    name = "parts-shape";
    describes = "PARTS return modifiers are bfi(function-id, sp, 48, 16)";
    check =
      (fun ctx ->
        List.filter_map
          (fun s ->
            match s.Census.modifier with
            | Census.Bfi_of (Census.Imm _, Census.Sp, 48, 16) -> None
            | _ ->
                Some
                  (violation s.Census.va s.Census.insn
                     (Printf.sprintf
                        "return-key sign site uses modifier class %s; PARTS expects the \
                         48-bit function id with SP's low 16 bits inserted"
                        s.Census.cls)))
          (return_sign_sites ctx));
  }

let sp_shape_rule =
  {
    name = "sp-shape";
    describes = "sp-only return modifiers are exactly SP";
    check =
      (fun ctx ->
        List.filter_map
          (fun s ->
            match s.Census.modifier with
            | Census.Sp -> None
            | _ ->
                Some
                  (violation s.Census.va s.Census.insn
                     (Printf.sprintf
                        "return-key sign site uses modifier class %s; the sp-only scheme \
                         signs against SP alone"
                        s.Census.cls)))
          (return_sign_sites ctx));
  }

let chain_integrity_rule =
  {
    name = "chain-register-integrity";
    describes = "only functions participating in the chain may write x27";
    check =
      (fun ctx ->
        let has_return_sign fn_entry =
          List.exists
            (fun s -> s.Census.fn = fn_entry && s.Census.dir = Census.Sign)
            ctx.census.Census.sites
        in
        Array.to_list ctx.summary.Summary.summaries
        |> List.filter_map (fun (s : Summary.fn_summary) ->
               if s.Summary.writes.(27) && not (has_return_sign s.Summary.entry) then
                 let cg = ctx.summary.Summary.cg in
                 match Callgraph.fn_index cg s.Summary.entry with
                 | Some i ->
                     let _, insn = cg.Callgraph.code.(cg.Callgraph.fns.(i).Callgraph.lo) in
                     Some
                       (violation s.Summary.entry insn
                          (Printf.sprintf
                             "function %s may write the chain register x27 without \
                              signing a return"
                             (match s.Summary.name with
                             | Some n -> n
                             | None -> Printf.sprintf "0x%Lx" s.Summary.entry)))
                 | None -> None
               else None));
  }

let pack = function
  | Generic -> [ collision_rule ]
  | Sp_only -> [ collision_rule; sp_shape_rule ]
  | Parts -> [ collision_rule; parts_shape_rule ]
  | Camouflage -> [ collision_rule; address_diversity_rule ]
  | Chained -> [ collision_rule; chain_integrity_rule ]

let run ctx =
  Diag.normalize (List.concat_map (fun r -> r.check ctx) (pack ctx.scheme))
