open Aarch64

type fn_summary = {
  entry : int64;
  name : string option;
  entry_in : Lint.state option;
  exit : Lint.state option;
  writes : bool array;
  sp_net : int option;
}

type report = {
  cg : Callgraph.t;
  summaries : fn_summary array;
  diags : Diag.t list;
  rounds : int;
}

let signed_regs (st : Lint.state) =
  let acc = ref [] in
  for i = 30 downto 0 do
    match st.Lint.regs.(i) with
    | Lint.Signed k -> acc := (i, k) :: !acc
    | _ -> ()
  done;
  !acc

let clobbered_reserved s =
  List.filter
    (fun r -> match r with Insn.R n -> s.writes.(n) | _ -> false)
    Lint.reserved_registers

(* ----- frame translation at call boundaries ----- *)

(* Caller-frame value -> callee frame: the callee's entry SP is the
   caller's SP at the call (delta [dc]), so a caller snapshot
   [SP_entry + x] reads [SP_callee_entry + (x - dc)] in the callee. *)
let to_callee_frame dc (st : Lint.state) =
  let tr v =
    match v with
    | Lint.Sp_snap x -> (
        match dc with Some dc -> Lint.Sp_snap (x - dc) | None -> Lint.Top)
    | v -> v
  in
  let regs = Array.map tr st.Lint.regs in
  regs.(30) <- Lint.Top;
  { Lint.regs; delta = Some 0 }

(* Apply a callee summary at a call site: registers the callee may
   write take the callee's exit provenance translated back into the
   caller's frame; everything else keeps the caller's value. *)
let apply_summary (s : fn_summary) (st : Lint.state) =
  match s.exit with
  | None -> false
  | Some exit ->
      let dc = st.Lint.delta in
      let tr v =
        match v with
        | Lint.Sp_snap x -> (
            match dc with Some dc -> Lint.Sp_snap (dc + x) | None -> Lint.Top)
        | v -> v
      in
      for i = 0 to 30 do
        if s.writes.(i) then st.Lint.regs.(i) <- tr exit.Lint.regs.(i)
      done;
      st.Lint.regs.(30) <- Lint.Top;
      (st.Lint.delta <-
         (match (dc, s.sp_net) with
         | Some dc, Some net -> Some (dc + net)
         | _ -> None));
      true

(* ----- per-function analysis ----- *)

(* May-write set: local defs plus callee writes (caller-saved set and LR
   for calls without a usable summary). Flow-insensitive by design. *)
let compute_writes cg lookup fidx =
  let writes = Array.make 31 false in
  let clobber_callersaved () =
    for i = 0 to 18 do
      writes.(i) <- true
    done;
    writes.(30) <- true
  in
  let fn = cg.Callgraph.fns.(fidx) in
  for i = fn.Callgraph.lo to fn.Callgraph.hi - 1 do
    let _, insn = cg.Callgraph.code.(i) in
    let defs, _ = Insn.defs_uses insn in
    List.iter (function Insn.R n -> writes.(n) <- true | _ -> ()) defs;
    match insn with
    | Insn.Bl _ | Insn.Blr _ | Insn.Blra _ | Insn.Svc _ -> (
        let site = fst cg.Callgraph.code.(i) in
        let target =
          List.fold_left
            (fun acc c ->
              if c.Callgraph.site = site then c.Callgraph.target else acc)
            None fn.Callgraph.calls
        in
        match Option.bind target lookup with
        | Some (callee : fn_summary) when callee.exit <> None ->
            Array.iteri (fun n w -> if w then writes.(n) <- true) callee.writes
        | _ -> clobber_callersaved ())
    | _ -> ()
  done;
  writes

type fn_result = {
  r_exit : Lint.state option;
  r_flows : (int64 * Lint.state) list;  (** callee entry, contributed state *)
  r_diags : Diag.t list;
}

(* One round of analysis for function [fidx] from entry state [entry_st]
   against frozen [summaries]. [collect] adds the diagnostic pass. *)
let analyze_fn ~policy ~cg ~summaries ~collect fidx entry_st =
  let fn = cg.Callgraph.fns.(fidx) in
  let code = Callgraph.code_of cg fidx in
  let lookup va =
    match Callgraph.fn_index cg va with
    | Some i -> Some summaries.(i)
    | None -> None
  in
  let target_of site =
    List.fold_left
      (fun acc c -> if c.Callgraph.site = site then c.Callgraph.target else acc)
      None fn.Callgraph.calls
  in
  let flows = ref [] in
  let record_flow va st =
    match Option.bind (target_of va) (Callgraph.fn_index cg) with
    | Some i ->
        flows := (cg.Callgraph.fns.(i).Callgraph.entry, to_callee_frame st.Lint.delta st) :: !flows
    | None -> ()
  in
  let call va _insn st =
    record_flow va st;
    match Option.bind (target_of va) lookup with
    | Some s -> apply_summary s st
    | None -> false
  in
  let indirect_resolved va = Callgraph.hints cg va <> [] in
  let hints va =
    (* keep only hints that land inside this function: cross-function
       targets are call/tail edges, not CFG edges *)
    List.filter
      (fun t ->
        Int64.compare t fn.Callgraph.entry >= 0
        && Int64.compare t (fst cg.Callgraph.code.(fn.Callgraph.hi - 1)) <= 0)
      (Callgraph.hints cg va)
  in
  let cfg = Cfg.build ~entries:[ fn.Callgraph.entry ] ~hints code in
  let nb = Array.length cfg.Cfg.blocks in
  let instate = Array.make nb None in
  let quiet = { Lint.no_hooks with call; indirect_resolved } in
  let work = Queue.create () in
  List.iter
    (fun e ->
      instate.(e) <- Some (Lint.copy entry_st);
      Queue.add e work)
    cfg.Cfg.entries;
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    match instate.(b) with
    | None -> ()
    | Some st0 ->
        let st = Lint.copy st0 in
        Array.iter (Lint.step policy quiet st) cfg.Cfg.blocks.(b).Cfg.insns;
        List.iter
          (fun s ->
            let joined =
              match instate.(s) with
              | None -> Lint.copy st
              | Some cur -> Lint.join_state cur st
            in
            match instate.(s) with
            | Some cur when Lint.equal_state cur joined -> ()
            | _ ->
                instate.(s) <- Some joined;
                Queue.add s work)
          cfg.Cfg.blocks.(b).Cfg.succs
  done;
  (* Collection pass over the fixed point: exit states, caller->callee
     flows (including tail calls), and — on the final round —
     diagnostics and SP-modifier pairing scoped to this function. *)
  flows := [];
  let exit = ref None in
  let join_exit st =
    exit := Some (match !exit with None -> Lint.copy st | Some e -> Lint.join_state e st)
  in
  let diags = ref [] in
  let signs = ref [] and auths = ref [] in
  let hooks =
    {
      Lint.emit = (fun d -> if collect then diags := d :: !diags);
      sign_site = (fun va insn d -> signs := (va, insn, d) :: !signs);
      auth_site = (fun va insn d -> auths := (va, insn, d) :: !auths);
      call;
      indirect_resolved;
    }
  in
  Array.iteri
    (fun b blk ->
      match instate.(b) with
      | Some st0 ->
          let st = Lint.copy st0 in
          Array.iter
            (fun (va, insn) ->
              (match insn with
              | Insn.Ret | Insn.Reta _ -> join_exit st
              | Insn.Br _ | Insn.Bra _ | Insn.B _ -> (
                  (* resolved tail call: state flows to the target *)
                  match target_of va with Some _ -> record_flow va st | None -> ())
              | _ -> ());
              Lint.step policy hooks st (va, insn))
            blk.Cfg.insns
      | None ->
          if collect then
            Array.iter
              (fun (va, insn) ->
                match Lint.key_access ~allowed:policy.Lint.allowed_key_writer va insn with
                | Some d -> diags := d :: !diags
                | None -> ())
              blk.Cfg.insns)
    cfg.Cfg.blocks;
  if collect && policy.Lint.sp_modifier then begin
    let sign_deltas = List.filter_map (fun (_, _, d) -> d) !signs in
    if !signs <> [] && List.length sign_deltas = List.length !signs then
      List.iter
        (fun (va, insn, d) ->
          match d with
          | Some d when not (List.mem d sign_deltas) ->
              diags := { Diag.va; insn; kind = Diag.Modifier_sp_mismatch d } :: !diags
          | _ -> ())
        !auths
  end;
  { r_exit = !exit; r_flows = !flows; r_diags = !diags }

(* ----- whole-image driver ----- *)

let max_rounds = 32

let analyze_image ?(par = Lint.seq_par) ?(symbols = []) ~policy code =
  let cg = Callgraph.build ~symbols code in
  let nf = Array.length cg.Callgraph.fns in
  let sym_vas = List.map snd symbols in
  let is_root = Array.make nf false in
  Array.iteri
    (fun i fn ->
      if List.mem fn.Callgraph.entry sym_vas || Callgraph.callers cg i = [] then
        is_root.(i) <- true)
    cg.Callgraph.fns;
  let entry_in = Array.make nf None in
  Array.iteri (fun i r -> if r then entry_in.(i) <- Some (Lint.entry_state ())) is_root;
  let summaries =
    Array.map
      (fun fn ->
        {
          entry = fn.Callgraph.entry;
          name = fn.Callgraph.name;
          entry_in = None;
          exit = None;
          writes = Array.make 31 false;
          sp_net = None;
        })
      cg.Callgraph.fns
  in
  let rounds = ref 0 in
  let run_round ~collect =
    incr rounds;
    par.Lint.pmap ~jobs:nf (fun i ->
        match entry_in.(i) with
        | None -> None
        | Some st -> Some (analyze_fn ~policy ~cg ~summaries ~collect i st))
  in
  let merge results =
    let changed = ref false in
    (* summaries first (frozen lookup -> next round sees all of them) *)
    Array.iteri
      (fun i res ->
        match res with
        | None -> ()
        | Some r ->
            let writes =
              compute_writes cg
                (fun va ->
                  Option.map (fun j -> summaries.(j)) (Callgraph.fn_index cg va))
                i
            in
            let sp_net =
              Option.bind r.r_exit (fun (e : Lint.state) -> e.Lint.delta)
            in
            let old = summaries.(i) in
            let fresh =
              { old with entry_in = entry_in.(i); exit = r.r_exit; writes; sp_net }
            in
            let same =
              old.writes = fresh.writes && old.sp_net = fresh.sp_net
              && (match (old.exit, fresh.exit) with
                 | None, None -> true
                 | Some a, Some b -> Lint.equal_state a b
                 | _ -> false)
            in
            if not same then changed := true;
            summaries.(i) <- fresh)
      results;
    (* then entry-state contributions, joined in index order *)
    Array.iter
      (fun res ->
        match res with
        | None -> ()
        | Some r ->
            List.iter
              (fun (callee, st) ->
                match Callgraph.fn_index cg callee with
                | None -> ()
                | Some j ->
                    let joined =
                      match entry_in.(j) with
                      | None -> st
                      | Some cur -> Lint.join_state cur st
                    in
                    (match entry_in.(j) with
                    | Some cur when Lint.equal_state cur joined -> ()
                    | _ ->
                        entry_in.(j) <- Some joined;
                        changed := true))
              (List.rev r.r_flows))
      results;
    !changed
  in
  let rec iterate () =
    if !rounds >= max_rounds then ()
    else if merge (run_round ~collect:false) then iterate ()
  in
  iterate ();
  let final = run_round ~collect:true in
  ignore (merge final);
  let diags = ref [] in
  Array.iter
    (fun res ->
      match res with None -> () | Some r -> diags := List.rev_append r.r_diags !diags)
    final;
  { cg; summaries; diags = Diag.normalize !diags; rounds = !rounds }

(* ----- JSON ----- *)

let state_signed_json st =
  "["
  ^ String.concat ","
      (List.map
         (fun (i, k) -> Printf.sprintf {|{"reg":"x%d","key":"%s"}|} i (Diag.key_name k))
         (signed_regs st))
  ^ "]"

let summary_to_json (s : fn_summary) =
  let writes =
    let acc = ref [] in
    for i = 30 downto 0 do
      if s.writes.(i) then acc := Printf.sprintf {|"x%d"|} i :: !acc
    done;
    String.concat "," !acc
  in
  Printf.sprintf
    {|{"entry":"0x%Lx","name":%s,"returns":%b,"sp_net":%s,"writes":[%s],"signed_in":%s,"signed_out":%s,"reserved_clobbered":[%s]}|}
    s.entry
    (match s.name with
    | Some n -> Printf.sprintf {|"%s"|} (Diag.json_escape n)
    | None -> "null")
    (s.exit <> None)
    (match s.sp_net with Some d -> string_of_int d | None -> "null")
    writes
    (match s.entry_in with Some st -> state_signed_json st | None -> "[]")
    (match s.exit with Some st -> state_signed_json st | None -> "[]")
    (String.concat ","
       (List.map
          (fun r -> Printf.sprintf {|"%s"|} (Insn.reg_name r))
          (clobbered_reserved s)))

let summaries_to_json r =
  Printf.sprintf {|{"rounds":%d,"functions":[%s]}|} r.rounds
    (String.concat "," (Array.to_list (Array.map summary_to_json r.summaries)))
