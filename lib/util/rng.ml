type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64, Vigna 2015; passes BigCrush and is the canonical seeding
   generator for the xoshiro family. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_in t bound =
  if bound <= 0 then invalid_arg "Rng.next_in";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int bound))

let key128 t =
  let hi = next t in
  let lo = next t in
  (hi, lo)

let split t = create (Int64.logxor (next t) 0xD1B54A32D192ED03L)
let state t = t.state
let set_state t s = t.state <- s
