(** Deterministic pseudo-random number generation.

    The bootloader of the paper generates kernel PAuth keys from a PRNG
    seeded by firmware entropy (much like the kernel-ASLR seed passed via
    the flattened device tree). We model this with splitmix64: a small,
    well-distributed generator that keeps the whole simulation
    reproducible from a single seed. *)

type t

(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)
val create : int64 -> t

(** [next t] draws the next 64-bit value. *)
val next : t -> int64

(** [next_in t bound] draws a uniform value in [0, bound) for
    [bound > 0]. *)
val next_in : t -> int -> int

(** [key128 t] draws a 128-bit PAuth key as a (hi, lo) register pair. *)
val key128 : t -> int64 * int64

(** [split t] derives an independent generator, useful for giving each
    subsystem its own stream without cross-coupling. *)
val split : t -> t

(** [state t] reads the internal state, for snapshotting. Restoring the
    same state with {!set_state} resumes the identical stream. *)
val state : t -> int64

(** [set_state t s] overwrites the internal state with a value obtained
    from {!state}. *)
val set_state : t -> int64 -> unit
