open Aarch64

type role = Backward | Forward | Data

type mode = Armv83 | Compat

(* Listing 3 signs return addresses with PACIB and Listing 4
   authenticates operations pointers with AUTDB; the remaining
   instruction key IA serves forward-edge CFI. *)
let key_for mode role =
  match (mode, role) with
  | Armv83, Backward -> Sysreg.IB
  | Armv83, Forward -> Sysreg.IA
  | Armv83, Data -> Sysreg.DB
  | Compat, (Backward | Forward | Data) -> Sysreg.IB

let keys_in_use = function
  | Armv83 -> [ Sysreg.IB; Sysreg.IA; Sysreg.DB ]
  | Compat -> [ Sysreg.IB ]

let role_name = function Backward -> "backward" | Forward -> "forward" | Data -> "data"

(* SMP key-install verification: the keys live in per-CPU registers, so
   every core must have executed the XOM setter itself. [read] is the
   probed core's key-register accessor; the result lists the keys whose
   registers do not hold the expected material (empty = fully
   installed). *)
let missing_keys ~expected ~read =
  List.filter_map
    (fun (key, (v : Pac.key)) ->
      let got : Pac.key = read key in
      if got.Pac.hi = v.Pac.hi && got.Pac.lo = v.Pac.lo then None else Some key)
    expected
