(** Static code verification (Sections 4.1 and 6.2.2).

    The kernel never needs to read its PAuth keys, only to set them from
    one audited function. The key-access rule itself now lives in
    {!Paclint.Lint.key_access}, of which [check]/[scan]/[scan_insns] are
    thin compatibility wrappers keeping the historical [violation]
    surface; [policy] derives the full lint policy from a {!Config.t} so
    the loader and kernel build can run every paclint rule, not just
    this one. *)

open Aarch64

type reason =
  | Reads_key_register of Sysreg.t
  | Writes_key_register of Sysreg.t  (** outside the audited setter *)
  | Writes_sctlr  (** could clear the PAuth enable flags *)

type violation = { va : int64; insn : Insn.t; reason : reason }

(** [policy ?allowed config] — the {!Paclint.Lint.policy} a code region
    built under [config] must satisfy: return protection for any scheme
    but [No_cfi], pointer rules iff [config.protect_pointers], SP
    modifier pairing for the SP-embedding schemes ([Sp_only], [Parts],
    [Camouflage]). [allowed] marks the audited key setter (default:
    nothing is allowed). *)
val policy : ?allowed:(int64 -> bool) -> Config.t -> Paclint.Lint.policy

(** [rules_scheme config] — the {!Paclint.Rules.scheme} whose rule pack
    the configured modifier scheme promises to satisfy. *)
val rules_scheme : Config.t -> Paclint.Rules.scheme

(** [scan ~read32 ~base ~size ~allowed] decodes every word of
    [base, base+size) and reports violations. [allowed va] marks
    addresses belonging to the audited key-setter, where MSRs to key
    registers are legitimate. Data words that do not decode are ignored:
    they cannot be executed as key accesses. *)
val scan :
  read32:(int64 -> int32) ->
  base:int64 ->
  size:int ->
  allowed:(int64 -> bool) ->
  violation list

(** [scan_insns ~base insns ~allowed] — same policy over an instruction
    listing (used for pre-assembly checks in tests). *)
val scan_insns :
  base:int64 -> (int64 * Insn.t) list -> allowed:(int64 -> bool) -> violation list

val reason_to_string : reason -> string
val violation_to_string : violation -> string
