(** Brute-force mitigation (Section 5.4).

    With the typical configuration only 15 PAC bits remain for kernel
    pointers, well within reach of a local brute-force attack. Every
    PAC authentication failure therefore kills the offending process
    and is logged; once the system-wide failure count crosses the
    configured threshold, the kernel halts, treating the stream of
    failures as a strong signal of attempted exploitation.

    Failures are accounted per originating CPU as well, but the kill
    decision always uses the global count: distributing guesses over
    the cores of an SMP system must not enlarge the attack budget. *)

type verdict =
  | Kill_process  (** SIGKILL the faulting process; system continues *)
  | Panic  (** threshold exceeded: halt the system *)

type event = { pid : int; cpu : int; faulting_va : int64; at_failure : int }

type t

val create : threshold:int -> t

(** [record_failure ?cpu t ~pid ~faulting_va] accounts one PAC failure
    observed on core [cpu] (default 0). *)
val record_failure : ?cpu:int -> t -> pid:int -> faulting_va:int64 -> verdict

val failures : t -> int

(** [failures_on t ~cpu] — failures recorded against one core. *)
val failures_on : t -> cpu:int -> int

val log : t -> event list
val threshold : t -> int

(** Accounting-state capture for system snapshots (threshold is fixed
    at creation and not part of the capture). *)
type captured

val capture : t -> captured
val restore : t -> captured -> unit

(** [audit t] checks the SMP accounting invariant: the global counter
    equals the sum of the per-CPU tallies, equals the event-log length,
    and the event ordinals are the contiguous sequence 1..count — i.e.
    every failure was aggregated into the global counter exactly once,
    whichever core recorded it. *)
val audit : t -> bool
