open Aarch64

type reason =
  | Reads_key_register of Sysreg.t
  | Writes_key_register of Sysreg.t
  | Writes_sctlr

type violation = { va : int64; insn : Insn.t; reason : reason }

let policy ?(allowed = fun _ -> false) (config : Config.t) =
  {
    Paclint.Lint.protect_return = config.scheme <> Modifier.No_cfi;
    protect_pointers = config.protect_pointers;
    sp_modifier =
      (match config.scheme with
      | Modifier.Sp_only | Modifier.Parts _ | Modifier.Camouflage -> true
      | Modifier.No_cfi | Modifier.Chained -> false);
    allowed_key_writer = allowed;
  }

let rules_scheme (config : Config.t) =
  match config.scheme with
  | Modifier.No_cfi -> Paclint.Rules.Generic
  | Modifier.Sp_only -> Paclint.Rules.Sp_only
  | Modifier.Parts _ -> Paclint.Rules.Parts
  | Modifier.Camouflage -> Paclint.Rules.Camouflage
  | Modifier.Chained -> Paclint.Rules.Chained

let of_diag (d : Paclint.Diag.t) =
  match d.kind with
  | Paclint.Diag.Key_register_read sr ->
      Some { va = d.va; insn = d.insn; reason = Reads_key_register sr }
  | Paclint.Diag.Key_register_write sr ->
      Some { va = d.va; insn = d.insn; reason = Writes_key_register sr }
  | Paclint.Diag.Sctlr_write -> Some { va = d.va; insn = d.insn; reason = Writes_sctlr }
  | _ -> None

let check ~allowed va insn =
  match Paclint.Lint.key_access ~allowed va insn with
  | Some d -> of_diag d
  | None -> None

let scan_insns ~base:_ insns ~allowed =
  List.filter_map (fun (va, insn) -> check ~allowed va insn) insns

let scan ~read32 ~base ~size ~allowed =
  Paclint.Lint.decode_region ~read32 ~base ~size
  |> Array.to_list
  |> List.filter_map (fun (va, insn) -> check ~allowed va insn)

let reason_to_string = function
  | Reads_key_register sr -> Printf.sprintf "reads key register %s" (Sysreg.name sr)
  | Writes_key_register sr ->
      Printf.sprintf "writes key register %s outside the key setter" (Sysreg.name sr)
  | Writes_sctlr -> "writes SCTLR_EL1 outside the key setter"

let violation_to_string v =
  Printf.sprintf "0x%Lx: %s (%s)" v.va (Insn.to_string v.insn) (reason_to_string v.reason)
