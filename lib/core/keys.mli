(** Kernel PAuth key allocation (Sections 4.5 and 5.5 of the paper).

    The full implementation uses three of the five keys: one instruction
    key for backward-edge CFI, the other instruction key for
    forward-edge CFI, and one data key for DFI. The
    backwards-compatible build can only use the B instruction key (the
    PACIB1716/AUTIB1716 hint instructions are NOPs on pre-8.3 parts and
    no such forms exist for data keys), so there the same key protects
    instruction and data pointers. *)

open Aarch64

type role = Backward | Forward | Data

(** [Armv83] emits v8.3-only machine code; [Compat] restricts itself to
    encodings that are NOPs on older processors. *)
type mode = Armv83 | Compat

(** [key_for mode role] — the architectural key used for [role]. *)
val key_for : mode -> role -> Sysreg.pauth_key

(** [keys_in_use mode] — the distinct keys the kernel must provision and
    switch on kernel entry/exit (3 for [Armv83], 1 for [Compat]). *)
val keys_in_use : mode -> Sysreg.pauth_key list

val role_name : role -> string

(** [missing_keys ~expected ~read] — per-CPU install check: probe one
    core's key registers through [read] and report the keys whose
    registers do not hold the [expected] material. An SMP kernel runs
    this per core after bring-up; a non-empty result means the core
    skipped the XOM setter and its first authenticated return will
    fault. *)
val missing_keys :
  expected:(Sysreg.pauth_key * Pac.key) list ->
  read:(Sysreg.pauth_key -> Pac.key) ->
  Sysreg.pauth_key list
