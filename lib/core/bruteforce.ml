type verdict = Kill_process | Panic

type event = { pid : int; cpu : int; faulting_va : int64; at_failure : int }

type t = {
  threshold : int;
  mutable count : int;
  mutable events : event list;
  per_cpu : (int, int) Hashtbl.t;
}

let create ~threshold =
  if threshold <= 0 then invalid_arg "Bruteforce.create: threshold";
  { threshold; count = 0; events = []; per_cpu = Hashtbl.create 8 }

(* The counter and the threshold are system-wide on purpose: an SMP
   attacker spreading forgery attempts over the cores must not multiply
   the budget (Section 5.4). The per-CPU tally is for reporting only. *)
let record_failure ?(cpu = 0) t ~pid ~faulting_va =
  t.count <- t.count + 1;
  t.events <- { pid; cpu; faulting_va; at_failure = t.count } :: t.events;
  Hashtbl.replace t.per_cpu cpu
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_cpu cpu));
  if t.count >= t.threshold then Panic else Kill_process

let failures t = t.count

let failures_on t ~cpu = Option.value ~default:0 (Hashtbl.find_opt t.per_cpu cpu)

let log t = List.rev t.events
let threshold t = t.threshold

type captured = {
  c_count : int;
  c_events : event list;
  c_per_cpu : (int, int) Hashtbl.t;
}

let capture t =
  { c_count = t.count; c_events = t.events; c_per_cpu = Hashtbl.copy t.per_cpu }

let restore t c =
  t.count <- c.c_count;
  t.events <- c.c_events;
  Hashtbl.reset t.per_cpu;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.per_cpu k v) c.c_per_cpu

(* SMP invariant: every failure is accounted exactly once, whichever
   core observed it. The global counter, the event log and the per-CPU
   tallies are all bumped in the single [record_failure] above, so they
   can only disagree if a caller bypasses it. *)
let audit t =
  let per_cpu_sum = Hashtbl.fold (fun _ n acc -> acc + n) t.per_cpu 0 in
  (* events are prepended, so ordinals must descend count..1 *)
  let rec descending expected = function
    | [] -> expected = 0
    | e :: rest -> e.at_failure = expected && descending (expected - 1) rest
  in
  t.count = per_cpu_sum
  && t.count = List.length t.events
  && descending t.count t.events
