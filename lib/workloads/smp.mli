(** E9: syscall-throughput scaling on the SMP machine.

    A population of syscall-bound user tasks (getpid in a loop with a
    short compute burst between calls) is scheduled with
    {!Kernel.System.run_smp} on 1, 2, 4 and 8 simulated cores. The
    figure of merit is simulated parallel time — the busiest core's
    cycle counter — so the scaling captures what the paper's per-CPU key
    management costs when every core pays its own XOM key install on
    every kernel entry. *)

type point = {
  cpus : int;
  tasks : int;
  makespan : int64;  (** busiest core's cycles: parallel simulated time *)
  aggregate : int64;  (** summed cycles across cores *)
  syscalls : int;  (** kernel entries made by the task population *)
  throughput : float;  (** syscalls per 1000 cycles of makespan *)
  speedup : float;  (** single-core makespan / this makespan *)
  migrations : int;
  ipis : int;
  all_exited : bool;  (** every task reached a clean exit *)
}

val throughput_program : rounds:int -> Aarch64.Asm.program

(** [run_point ~cpus ~tasks ~rounds ()] — boot, spawn, schedule, score
    one configuration. *)
val run_point :
  ?config:Camouflage.Config.t ->
  ?seed:int64 ->
  ?quantum:int ->
  cpus:int ->
  tasks:int ->
  rounds:int ->
  unit ->
  point

(** [run_scaling ()] — the same population across [cpu_counts]
    (default [1; 2; 4; 8]); [speedup] is relative to the first point. *)
val run_scaling :
  ?config:Camouflage.Config.t ->
  ?seed:int64 ->
  ?cpu_counts:int list ->
  ?tasks:int ->
  ?rounds:int ->
  unit ->
  point list
