(** Function-call overhead micro-benchmark (Figure 2).

    Measures the per-call cost, in cycles and nanoseconds, of an empty
    non-leaf function instrumented with each backward-edge scheme:
    baseline (no CFI), the Clang/Qualcomm SP-only modifier, PARTS, and
    the Camouflage modifier — reproducing the comparison of Section
    6.1.2 on the model machine. *)

type measurement = {
  scheme_label : string;
  cycles_per_call : float;
  ns_per_call : float;
  overhead_cycles : float;  (** vs the baseline in the same run *)
}

(** [measure ?calls ()] — per-scheme cost of one call+return. *)
val measure : ?calls:int -> unit -> measurement list

(** [calls_object config ~calls] — the kernel object behind every
    variant of this probe: an instrumented empty victim plus a caller
    that invokes it [calls] times. Exposed so the host-throughput
    benchmark ([bench sim]) can run the exact E2 workload on a bare
    machine with the decoded-instruction cache on or off. *)
val calls_object : Camouflage.Config.t -> calls:int -> Kelf.Object_file.t

(** [measure_one config ~calls] — raw cycles for [calls] calls of the
    empty victim under [config], measured inside a booted kernel. *)
val measure_one : Camouflage.Config.t -> calls:int -> int64

(** [measure_bare config ~calls] — same probe on a bare machine; the
    only way to measure the chained scheme, which cannot boot the
    kernel. *)
val measure_bare : ?cost:Aarch64.Cost.profile -> Camouflage.Config.t -> calls:int -> int64

(** Per-scheme cycle attribution of the same probe, from the telemetry
    profiler: where the added cycles land (signing, authentication,
    modifier arithmetic, key switches) rather than just how many. *)
type attribution = {
  attr_label : string;
  attr_cycles_per_call : float;
  attr_added_per_call : float;  (** vs the baseline in the same run *)
  attr_by_origin : (Telemetry.Profile.origin * int64) list;
      (** window totals per origin *)
  attr_cfi_cycles : int64;  (** non-baseline-origin cycles in the window *)
  attr_added_cycles : int64;  (** window total minus the baseline's *)
  attr_fraction : float;
      (** cfi / added — the share of added cycles attributed to a named
          instrumentation origin (1.0 when nothing was added) *)
  attr_flat : Telemetry.Profile.line list;
  attr_folded : string;  (** flamegraph.pl-compatible folded stacks *)
}

(** [attribute ?calls ()] — one entry per scheme of {!measure}'s list,
    first entry the baseline. *)
val attribute : ?calls:int -> unit -> attribution list
