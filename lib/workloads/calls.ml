open Aarch64
module C = Camouflage
module K = Kernel

type measurement = {
  scheme_label : string;
  cycles_per_call : float;
  ns_per_call : float;
  overhead_cycles : float;
}

(* A caller that invokes the empty victim [calls] times, so the loop
   bookkeeping is measured once and subtracted via the baseline. *)
let bench_module config ~calls =
  let obj = Kelf.Object_file.empty "callbench" in
  let victim = C.Instrument.wrap config ~name:"victim" [] in
  let caller =
    C.Instrument.wrap config ~name:"caller"
      [
        Asm.ins (Insn.Movz (Insn.R 20, calls land 0xffff, 0));
        Asm.ins (Insn.Movk (Insn.R 20, (calls lsr 16) land 0xffff, 16));
        Asm.label "loop";
        Asm.ins (Insn.Stp (Insn.R 20, Insn.XZR, Insn.Pre (Insn.SP, -16)));
        Asm.bl_to "victim";
        Asm.ins (Insn.Ldp (Insn.R 20, Insn.XZR, Insn.Post (Insn.SP, 16)));
        Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
        Asm.cbnz_to (Insn.R 20) "loop";
      ]
  in
  let obj =
    Kelf.Object_file.add_function obj ~name:"victim" victim.C.Instrument.items
  in
  Kelf.Object_file.add_function obj ~name:"caller" caller.C.Instrument.items

let calls_object = bench_module

(* Bare-machine variant for schemes that cannot boot the kernel (the
   chained scheme's live chain register precludes prefabricated frames). *)
let measure_bare ?cost config ~calls =
  let cpu = Bare.machine ?cost () in
  let obj = bench_module config ~calls in
  let prog = Asm.create () in
  List.iter
    (fun (name, items) -> Asm.add_function prog ~name items)
    obj.Kelf.Object_file.functions;
  let layout = Bare.load cpu prog in
  let before = Cpu.cycles cpu in
  (match Bare.call ~max_insns:100_000_000 cpu layout "caller" with
  | Cpu.Sentinel_return -> ()
  | other -> failwith ("bare call bench: " ^ Cpu.stop_to_string other));
  Int64.sub (Cpu.cycles cpu) before

let measure_one config ~calls =
  let sys = K.System.boot ~config ~seed:11L () in
  match K.System.load_module sys (bench_module config ~calls) with
  | Result.Error e -> failwith (Kelf.Loader.error_to_string e)
  | Result.Ok placed ->
      let cpu = K.System.cpu sys in
      Cpu.set_el cpu El.El1;
      Cpu.set_sp_of cpu El.El1
        (K.Layout.task_stack_top ~slot:(K.System.current sys).K.System.slot);
      let before = Cpu.cycles cpu in
      (match Cpu.call ~max_insns:100_000_000 cpu (Kelf.Loader.symbol placed "caller") with
      | Cpu.Sentinel_return -> ()
      | other -> failwith ("call bench: " ^ Cpu.stop_to_string other));
      Int64.sub (Cpu.cycles cpu) before

let schemes =
  [
    ("no CFI (baseline)", C.Config.none);
    ("SP only (Clang)", { C.Config.backward_only with scheme = C.Modifier.Sp_only });
    ( "PARTS (16b SP + 48b LTO id)",
      { C.Config.backward_only with scheme = C.Modifier.Parts 0x4213_8723_0042L } );
    ("Camouflage (32b SP + 32b fn addr)", C.Config.backward_only);
  ]

(* Attribution variant of the same probe (PR 4): boot with telemetry,
   reset the profiler before the measured window, and bucket every
   retired cycle by symbol and instrumentation origin. The measured
   window runs only module code, so the profiler accounts for 100% of
   the cycle delta. *)

type attribution = {
  attr_label : string;
  attr_cycles_per_call : float;
  attr_added_per_call : float;  (** vs the baseline in the same run *)
  attr_by_origin : (Telemetry.Profile.origin * int64) list;
      (** window totals per origin *)
  attr_cfi_cycles : int64;  (** non-baseline-origin cycles in the window *)
  attr_added_cycles : int64;  (** window total minus the baseline's *)
  attr_fraction : float;
      (** cfi / added — the share of added cycles attributed to a named
          instrumentation origin (1.0 when nothing was added) *)
  attr_flat : Telemetry.Profile.line list;
  attr_folded : string;
}

let attribute_one config ~calls =
  let sys = K.System.boot ~config ~seed:11L ~telemetry:true () in
  match K.System.load_module sys (bench_module config ~calls) with
  | Result.Error e -> failwith (Kelf.Loader.error_to_string e)
  | Result.Ok placed ->
      let cpu = K.System.cpu sys in
      Cpu.set_el cpu El.El1;
      Cpu.set_sp_of cpu El.El1
        (K.Layout.task_stack_top ~slot:(K.System.current sys).K.System.slot);
      let s =
        match Cpu.telemetry cpu with Some s -> s | None -> assert false
      in
      let prof = Telemetry.Sink.profile s in
      Telemetry.Profile.reset prof;
      let before = Cpu.cycles cpu in
      (match Cpu.call ~max_insns:100_000_000 cpu (Kelf.Loader.symbol placed "caller") with
      | Cpu.Sentinel_return -> ()
      | other -> failwith ("call bench: " ^ Cpu.stop_to_string other));
      let total = Int64.sub (Cpu.cycles cpu) before in
      let symbols =
        K.System.layout_ranges placed.Kelf.Loader.text_layout
        @ K.System.symbol_ranges sys
      in
      ( total,
        Telemetry.Profile.by_origin prof,
        Telemetry.Profile.flat prof ~symbols,
        Telemetry.Profile.folded prof ~symbols )

let attribute ?(calls = 10_000) () =
  let runs =
    List.map
      (fun (label, config) -> (label, attribute_one config ~calls))
      schemes
  in
  let baseline_total =
    match runs with (_, (total, _, _, _)) :: _ -> total | [] -> assert false
  in
  List.map
    (fun (attr_label, (total, by_origin, flat, folded)) ->
      let cfi =
        List.fold_left
          (fun acc (o, c) ->
            if Telemetry.Profile.is_cfi o then Int64.add acc c else acc)
          0L by_origin
      in
      let added = Int64.sub total baseline_total in
      {
        attr_label;
        attr_cycles_per_call = Int64.to_float total /. float_of_int calls;
        attr_added_per_call = Int64.to_float added /. float_of_int calls;
        attr_by_origin = by_origin;
        attr_cfi_cycles = cfi;
        attr_added_cycles = added;
        attr_fraction =
          (if Int64.compare added 0L <= 0 then 1.0
           else Int64.to_float cfi /. Int64.to_float added);
        attr_flat = flat;
        attr_folded = folded;
      })
    runs

let measure ?(calls = 10_000) () =
  let profile = Cost.cortex_a53 in
  let results =
    List.map
      (fun (scheme_label, config) ->
        let total = measure_one config ~calls in
        let cycles_per_call = Int64.to_float total /. float_of_int calls in
        (scheme_label, cycles_per_call))
      schemes
  in
  let baseline =
    match results with
    | (_, c) :: _ -> c
    | [] -> assert false
  in
  List.map
    (fun (scheme_label, cycles_per_call) ->
      {
        scheme_label;
        cycles_per_call;
        ns_per_call = cycles_per_call /. profile.Cost.clock_hz *. 1e9;
        overhead_cycles = cycles_per_call -. baseline;
      })
    results
