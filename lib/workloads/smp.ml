open Aarch64
module K = Kernel

type point = {
  cpus : int;
  tasks : int;
  makespan : int64;
  aggregate : int64;
  syscalls : int;
  throughput : float;
  speedup : float;
  migrations : int;
  ipis : int;
  all_exited : bool;
}

(* Syscall-bound worker: [rounds] getpid calls separated by a short EL0
   compute burst, so every round crosses the kernel boundary and pays
   the per-CPU key install on its own core. *)
let throughput_program ~rounds =
  let prog = Asm.create () in
  Asm.add_function prog ~name:"throughput"
    [
      Asm.ins (Insn.Movz (Insn.R 20, rounds, 0));
      Asm.ins (Insn.Movz (Insn.R 21, 0, 0));
      Asm.label "round";
      Asm.ins (Insn.Svc K.Kbuild.sys_getpid);
      Asm.ins (Insn.Add_reg (Insn.R 21, Insn.R 21, Insn.R 0));
      Asm.ins (Insn.Movz (Insn.R 9, 50, 0));
      Asm.label "spin";
      Asm.ins (Insn.Sub_imm (Insn.R 9, Insn.R 9, 1));
      Asm.cbnz_to (Insn.R 9) "spin";
      Asm.ins (Insn.Sub_imm (Insn.R 20, Insn.R 20, 1));
      Asm.cbnz_to (Insn.R 20) "round";
      Asm.ins (Insn.Mov (Insn.R 0, Insn.R 21));
      Asm.ins (Insn.Svc K.Kbuild.sys_exit);
    ];
  prog

let boot_and_run ?(config = Camouflage.Config.full) ?(seed = 42L) ?(quantum = 800)
    ~cpus ~tasks ~rounds () =
  let sys = K.System.boot ~config ~seed ~cpus () in
  let layout = K.System.map_user_program sys (throughput_program ~rounds) in
  let entry = Asm.symbol layout "throughput" in
  let spawned = List.init tasks (fun _ -> K.System.spawn_user_task sys ~entry) in
  let stats = K.System.run_smp ~quantum sys ~tasks:spawned in
  (sys, stats)

let point_of_stats ~cpus ~tasks ~rounds (stats : K.System.smp_stats) =
  let aggregate = Array.fold_left Int64.add 0L stats.K.System.per_cpu_cycles in
  (* one getpid per round, plus the final exit trap, per task *)
  let syscalls = tasks * (rounds + 1) in
  let makespan = stats.K.System.makespan in
  let throughput =
    if makespan = 0L then 0.0
    else 1000.0 *. float_of_int syscalls /. Int64.to_float makespan
  in
  let all_exited =
    List.length stats.K.System.smp_exits = tasks
    && List.for_all
         (fun (_, _, e) -> match e with K.System.Exited _ -> true | _ -> false)
         stats.K.System.smp_exits
  in
  {
    cpus;
    tasks;
    makespan;
    aggregate;
    syscalls;
    throughput;
    speedup = 1.0;
    migrations = stats.K.System.smp_migrations;
    ipis = stats.K.System.smp_ipis;
    all_exited;
  }

let run_point ?config ?seed ?quantum ~cpus ~tasks ~rounds () =
  let _sys, stats = boot_and_run ?config ?seed ?quantum ~cpus ~tasks ~rounds () in
  point_of_stats ~cpus ~tasks ~rounds stats

(* E9: the same task population on 1, 2, 4 and 8 cores. Speedups are in
   simulated parallel time (makespan); they are sub-linear because the
   boot core's clock also carries boot and bring-up work, and because
   kernel entries serialize per core. *)
let run_scaling ?config ?(seed = 42L) ?(cpu_counts = [ 1; 2; 4; 8 ]) ?(tasks = 8)
    ?(rounds = 40) () =
  let points =
    List.map (fun cpus -> run_point ?config ~seed ~cpus ~tasks ~rounds ()) cpu_counts
  in
  match points with
  | [] -> []
  | base :: _ ->
      List.map
        (fun p ->
          let speedup =
            if p.makespan = 0L then 0.0
            else Int64.to_float base.makespan /. Int64.to_float p.makespan
          in
          { p with speedup })
        points
