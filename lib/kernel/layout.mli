(** Kernel virtual-memory map.

    Mirrors the shape of the Linux arm64 map the paper assumes: all
    kernel addresses have bit 55 set (TTBR1), task stacks are 16 KiB and
    4 KiB-aligned (the stack-shallowness that motivates the hardened
    backward-edge modifier), and physical frames are the virtual page
    with the kernel prefix cleared, so host-side accessors can reach any
    kernel VA without a page-table walk. *)

val kernel_prefix : int64

(** Physical address backing a kernel or user VA (identity map with the
    sign-extension prefix cleared). *)
val pa_of_va : int64 -> int64

val xom_base : int64  (** the bootloader's key-setter page *)

val text_base : int64

val rodata_base : int64

(** Kernel static data. *)
val data_base : int64

(** Object slab region, bump-allocated. *)
val heap_base : int64

val heap_bytes : int

(** Per-task kernel stacks. *)
val stack_area_base : int64

(** Loadable module text/rodata/data. *)
val module_area_base : int64

(** 16 KiB, as in the paper. *)
val task_stack_bytes : int

(** Stack slots mapped at boot (bounds tasks + per-CPU idle tasks). *)
val max_task_slots : int

(** Per-CPU data segment: one page per core. *)
val percpu_base : int64

val percpu_stride : int

(** [percpu_area ~cpu] — base of core [cpu]'s per-CPU page. *)
val percpu_area : cpu:int -> int64

(** [task_stack_top ~slot] — top of the kernel stack of task slot [slot]
    (stacks grow down). *)
val task_stack_top : slot:int -> int64

val user_text_base : int64
val user_stack_top : int64
val user_data_base : int64

(** [round_pages bytes] — byte size rounded up to whole pages. *)
val round_pages : int -> int
