(** The EL2 hypervisor (Sections 3.1 and 5.1; Appendix A.2).

    Not modeled as machine code: its observable guarantees are (1) the
    stage-2 translation entries it installs — execute-only for the key
    setter page, write-protection for kernel text and rodata — and
    (2) the lockdown of MMU control registers against EL1 writes. Both
    are enforced by the machine model on every access. *)

open Aarch64

type t

(** [install cpu] activates the lockdown of TTBR0/TTBR1/SCTLR writes
    from EL1 and returns the hypervisor handle. *)
val install : Cpu.t -> t

(** [protect_xom t ~base ~bytes] — stage-2 execute-only: EL0/EL1 can
    neither read nor write the frames; only instruction fetch works. *)
val protect_xom : t -> base:int64 -> bytes:int -> unit

(** [protect_text t ~base ~bytes] — executable but immutable. *)
val protect_text : t -> base:int64 -> bytes:int -> unit

(** [protect_rodata t ~base ~bytes] — readable only. *)
val protect_rodata : t -> base:int64 -> bytes:int -> unit

(** [release t ~base ~bytes] — drop the stage-2 restriction on a range
    whose stage-1 mapping was removed (module unload), so the frames can
    be reused by a later load. *)
val release : t -> base:int64 -> bytes:int -> unit

(** [is_locked_register t sr] — the lockdown predicate installed in the
    machine. *)
val is_locked_register : t -> Sysreg.t -> bool
