open Aarch64

let read64 cpu va = Mem.read64 (Cpu.mem cpu) (Layout.pa_of_va va)
let write64 cpu va v = Mem.write64 (Cpu.mem cpu) (Layout.pa_of_va va) v
let read32 cpu va = Mem.read32 (Cpu.mem cpu) (Layout.pa_of_va va)
let write32 cpu va v = Mem.write32 (Cpu.mem cpu) (Layout.pa_of_va va) v
let read_string cpu va len = Mem.read_string (Cpu.mem cpu) (Layout.pa_of_va va) len
let blit_string cpu va s = Mem.blit_string (Cpu.mem cpu) (Layout.pa_of_va va) s

let map_pages cpu ~base ~bytes ~el0 ~el1 =
  let pages = Layout.round_pages bytes / 4096 in
  for i = 0 to pages - 1 do
    let va = Int64.add base (Int64.of_int (i * 4096)) in
    Mmu.map (Cpu.mmu cpu) ~va_page:(Vaddr.page_of va)
      ~pa_page:(Vaddr.page_of (Layout.pa_of_va va))
      ~el0 ~el1
  done

let unmap_region cpu ~base ~bytes =
  let pages = Layout.round_pages bytes / 4096 in
  for i = 0 to pages - 1 do
    let va = Int64.add base (Int64.of_int (i * 4096)) in
    Mmu.unmap (Cpu.mmu cpu) ~va_page:(Vaddr.page_of va)
  done

let map_kernel_region cpu ~base ~bytes perm =
  map_pages cpu ~base ~bytes ~el0:Mmu.no_access ~el1:perm

let map_user_region cpu ~base ~bytes perm =
  map_pages cpu ~base ~bytes ~el0:perm ~el1:Mmu.rw
