(** The kernel image, built per protection configuration.

    Produces a {!Kelf.Object_file.t} containing every kernel text
    function (syscall handlers, VFS ops, the context switch, workqueue
    dispatch and helpers), the read-only operations structures and the
    syscall table, the static data (object slabs, pipe, ramfs backing
    store, a [DECLARE_WORK] instance), and the [.pauth_static] entries
    for the statically initialized protected pointers.

    The same builder serves all evaluation variants: full protection,
    backward-edge only, compat, and the uninstrumented baseline —
    the kernel text differs exactly as the paper's compiler flag
    would make it differ. *)

(** Syscall numbers (index into [sys_call_table]). *)
val sys_exit : int

val sys_getpid : int
val sys_read : int
val sys_write : int
val sys_open : int
val sys_close : int
val sys_stat : int
val sys_fstat : int
val sys_notifier_register : int
val sys_notifier_call : int
val sys_pipe_write : int
val sys_pipe_read : int
val sys_fork : int
val sys_vuln_read : int
val sys_vuln_write : int
val sys_getuid : int

(** Hardened-ABI read (Section 8 future work): the buffer pointer must
    be signed by the caller under its DA key. *)
val sys_read_secure : int

val sys_socketpair : int
val sys_poll : int
val sys_timer_set : int
val syscall_count : int

(** [syscall_name nr] — the handler's symbol name (["sys_7"]-style for
    out-of-range numbers); labels syscall spans in the telemetry
    timeline. *)
val syscall_name : int -> string

(** [build config registry] — the kernel object. [registry] must already
    contain the protected members ({!Kobject.register_protected_members}). *)
val build : Camouflage.Config.t -> Camouflage.Pointer_integrity.registry -> Kelf.Object_file.t

(** Kernel symbols exported to loadable modules. *)
val exported_symbols : string list

(** [lint config] — build the kernel image, assemble it at its boot
    addresses, and run the full PAC-state lint ({!Paclint.Lint}) under
    the policy [config] promises ({!Camouflage.Verifier.policy}), plus
    the reserved-register check over every raw function body. This is
    the same gate {!Kelf.Loader} applies when {!System.boot} loads the
    image; the CLI's [lint] subcommand and CI run it without booting. *)
val lint : Camouflage.Config.t -> Paclint.Diag.t list
