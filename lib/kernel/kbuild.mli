(** The kernel image, built per protection configuration.

    Produces a {!Kelf.Object_file.t} containing every kernel text
    function (syscall handlers, VFS ops, the context switch, workqueue
    dispatch and helpers), the read-only operations structures and the
    syscall table, the static data (object slabs, pipe, ramfs backing
    store, a [DECLARE_WORK] instance), and the [.pauth_static] entries
    for the statically initialized protected pointers.

    The same builder serves all evaluation variants: full protection,
    backward-edge only, compat, and the uninstrumented baseline —
    the kernel text differs exactly as the paper's compiler flag
    would make it differ. *)

(** Syscall numbers (index into [sys_call_table]). *)
val sys_exit : int

val sys_getpid : int
val sys_read : int
val sys_write : int
val sys_open : int
val sys_close : int
val sys_stat : int
val sys_fstat : int
val sys_notifier_register : int
val sys_notifier_call : int
val sys_pipe_write : int
val sys_pipe_read : int
val sys_fork : int
val sys_vuln_read : int
val sys_vuln_write : int
val sys_getuid : int

(** Hardened-ABI read (Section 8 future work): the buffer pointer must
    be signed by the caller under its DA key. *)
val sys_read_secure : int

val sys_socketpair : int
val sys_poll : int
val sys_timer_set : int
val syscall_count : int

(** [syscall_name nr] — the handler's symbol name (["sys_7"]-style for
    out-of-range numbers); labels syscall spans in the telemetry
    timeline. *)
val syscall_name : int -> string

(** [build config registry] — the kernel object. [registry] must already
    contain the protected members ({!Kobject.register_protected_members}). *)
val build : Camouflage.Config.t -> Camouflage.Pointer_integrity.registry -> Kelf.Object_file.t

(** Kernel symbols exported to loadable modules. *)
val exported_symbols : string list

(** Everything the whole-image static pass produces: normalized
    diagnostics (interprocedural lint + scheme rule pack + raw-body
    reserved-register check), the per-function summaries with the call
    graph, and the modifier-collision gadget census. *)
type lint_report = {
  diags : Paclint.Diag.t list;
  summary : Paclint.Summary.report;
  census : Paclint.Census.t;
}

(** [lint_report ?par ?scheme config] — build the kernel image, assemble
    it at its boot addresses, and run the whole-image interprocedural
    analysis under the policy [config] promises
    ({!Camouflage.Verifier.policy}) and the scheme's rule pack
    ([scheme], default {!Camouflage.Verifier.rules_scheme}). [par]
    (e.g. [Fleet.Pool.map] wrapped in a {!Paclint.Lint.par})
    parallelizes the per-function summary rounds and the census; output
    is byte-identical for any worker count. *)
val lint_report :
  ?par:Paclint.Lint.par ->
  ?scheme:Paclint.Rules.scheme ->
  Camouflage.Config.t ->
  lint_report

(** [lint config] — just the diagnostics of {!lint_report}. This is the
    same gate {!Kelf.Loader} applies when {!System.boot} loads the
    image; the CLI's [lint] subcommand and CI run it without booting. *)
val lint :
  ?par:Paclint.Lint.par ->
  ?scheme:Paclint.Rules.scheme ->
  Camouflage.Config.t ->
  Paclint.Diag.t list

(** [lint_module ?par ?scheme config obj] — the whole-image analysis
    over a standalone module object ([camouflage lint --module]): text
    assembled at the module area base, blobs placed after it, kernel
    exports resolved to out-of-module addresses (so calls into the
    kernel take the conservative clobber, as in {!Kelf.Loader}). *)
val lint_module :
  ?par:Paclint.Lint.par ->
  ?scheme:Paclint.Rules.scheme ->
  Camouflage.Config.t ->
  Kelf.Object_file.t ->
  lint_report
