open Aarch64

(* Field offsets inside a core's per-CPU page. *)
let off_cpu_id = 0
let off_current = 8
let off_idle = 16
let off_rq_len = 24
let off_key_installs = 32
let off_ipi_count = 40
let off_resched_count = 48

type t = { cid : int; base : int64 }

let area_bytes = Layout.percpu_stride

let field t off = Int64.add t.base (Int64.of_int off)

let init cpu ~cid =
  let base = Layout.percpu_area ~cpu:cid in
  Kmem.map_kernel_region cpu ~base ~bytes:area_bytes Mmu.rw;
  let t = { cid; base } in
  Kmem.write64 cpu (field t off_cpu_id) (Int64.of_int cid);
  (* TPIDR_EL1 is how the real arm64 kernel finds its per-CPU segment;
     mirror that so machine code could reach it the same way. *)
  Cpu.set_sysreg cpu Sysreg.TPIDR_EL1 base;
  t

let cid t = t.cid
let base t = t.base

let read cpu t off = Kmem.read64 cpu (field t off)
let write cpu t off v = Kmem.write64 cpu (field t off) v

let set_current cpu t task_va = write cpu t off_current task_va
let current cpu t = read cpu t off_current
let set_idle cpu t task_va = write cpu t off_idle task_va
let idle cpu t = read cpu t off_idle
let set_rq_len cpu t n = write cpu t off_rq_len (Int64.of_int n)
let rq_len cpu t = Int64.to_int (read cpu t off_rq_len)

let bump cpu t off = write cpu t off (Int64.add (read cpu t off) 1L)

let count_key_install cpu t = bump cpu t off_key_installs
let key_installs cpu t = Int64.to_int (read cpu t off_key_installs)
let count_ipi cpu t = bump cpu t off_ipi_count
let ipi_count cpu t = Int64.to_int (read cpu t off_ipi_count)
let count_resched cpu t = bump cpu t off_resched_count
let resched_count cpu t = Int64.to_int (read cpu t off_resched_count)
