(** Per-CPU data areas (Linux's percpu segment in miniature).

    Each core owns one page at {!Layout.percpu_area} holding its id,
    current and idle task pointers, run-queue length and counters (key
    installs, IPIs received, reschedules). The page base is published in
    the core's TPIDR_EL1, the register the real arm64 kernel uses to
    locate its per-CPU segment.

    Accessors take any [Cpu.t] of the machine (cores share memory); the
    conventional argument is the owning core. *)

open Aarch64

type t

(** [init cpu ~cid] — map core [cid]'s page, stamp the id, point the
    core's TPIDR_EL1 at it. Call once per core at bring-up, on that
    core. *)
val init : Cpu.t -> cid:int -> t

val cid : t -> int
val base : t -> int64

val set_current : Cpu.t -> t -> int64 -> unit
val current : Cpu.t -> t -> int64
val set_idle : Cpu.t -> t -> int64 -> unit
val idle : Cpu.t -> t -> int64
val set_rq_len : Cpu.t -> t -> int -> unit
val rq_len : Cpu.t -> t -> int

val count_key_install : Cpu.t -> t -> unit
val key_installs : Cpu.t -> t -> int
val count_ipi : Cpu.t -> t -> unit
val ipi_count : Cpu.t -> t -> int
val count_resched : Cpu.t -> t -> unit
val resched_count : Cpu.t -> t -> int
