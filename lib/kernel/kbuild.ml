open Aarch64
module C = Camouflage
module O = Kelf.Object_file

let sys_exit = 0
let sys_getpid = 1
let sys_read = 2
let sys_write = 3
let sys_open = 4
let sys_close = 5
let sys_stat = 6
let sys_fstat = 7
let sys_notifier_register = 8
let sys_notifier_call = 9
let sys_pipe_write = 10
let sys_pipe_read = 11
let sys_fork = 12
let sys_vuln_read = 13
let sys_vuln_write = 14
let sys_getuid = 15
let sys_read_secure = 16
let sys_socketpair = 17
let sys_poll = 18
let sys_timer_set = 19
let syscall_count = 20

let syscall_name nr =
  match nr with
  | 0 -> "sys_exit"
  | 1 -> "sys_getpid"
  | 2 -> "sys_read"
  | 3 -> "sys_write"
  | 4 -> "sys_open"
  | 5 -> "sys_close"
  | 6 -> "sys_stat"
  | 7 -> "sys_fstat"
  | 8 -> "sys_notifier_register"
  | 9 -> "sys_notifier_call"
  | 10 -> "sys_pipe_write"
  | 11 -> "sys_pipe_read"
  | 12 -> "sys_fork"
  | 13 -> "sys_vuln_read"
  | 14 -> "sys_vuln_write"
  | 15 -> "sys_getuid"
  | 16 -> "sys_read_secure"
  | 17 -> "sys_socketpair"
  | 18 -> "sys_poll"
  | 19 -> "sys_timer_set"
  | _ -> Printf.sprintf "sys_%d" nr

let i x = Asm.ins x
let r n = Insn.R n

(* Return -1 convention: x0 := 0 - 1. *)
let ret_minus_one = [ i (Insn.Movz (r 0, 0, 0)); i (Insn.Sub_imm (r 0, r 0, 1)) ]

let bounds_check reg ~lo ~hi ~bad =
  [
    i (Insn.Subs_imm (Insn.XZR, reg, lo));
    Asm.bcond_to Insn.Lt bad;
    i (Insn.Subs_imm (Insn.XZR, reg, hi));
    Asm.bcond_to Insn.Ge bad;
  ]

(* Leaf helpers (frameless; exempt from backward-edge CFI, as the paper
   notes for functions optimized to omit their stack frame). *)

let fd_to_file_body =
  bounds_check (r 0) ~lo:0 ~hi:Kobject.Task.fd_table_entries ~bad:"bad"
  @ [
      i (Insn.Lsl_imm (r 9, r 0, 3));
      i (Insn.Add_reg (r 9, r 9, r 28));
      i (Insn.Ldr (r 0, Insn.Off (r 9, Kobject.Task.off_fd_table)));
      Asm.b_to "out";
      Asm.label "bad";
      i (Insn.Movz (r 0, 0, 0));
      Asm.label "out";
    ]

let memcpy_bytes_body =
  [
    Asm.label "loop";
    Asm.cbz_to (r 2) "done";
    i (Insn.Ldrb (r 9, Insn.Post (r 1, 1)));
    i (Insn.Strb (r 9, Insn.Post (r 0, 1)));
    i (Insn.Sub_imm (r 2, r 2, 1));
    Asm.b_to "loop";
    Asm.label "done";
  ]

let vuln_read_body = [ i (Insn.Ldr (r 0, Insn.Off (r 0, 0))) ]

let vuln_write_body =
  [ i (Insn.Str (r 1, Insn.Off (r 0, 0))); i (Insn.Movz (r 0, 0, 0)) ]

(* Instrumented bodies. *)

let getpid_body = [ i (Insn.Ldr (r 0, Insn.Off (r 28, Kobject.Task.off_pid))) ]

let fops_noop_body = [ i (Insn.Movz (r 0, 0, 0)) ]

let ramfs_copy_setup ~user_is_dst =
  (* shared head of ramfs_read/ramfs_write: x9 = buf+pos, clamp x2,
     advance pos, then copy with memcpy_bytes. *)
  [
    i (Insn.Ldr (r 9, Insn.Off (r 0, Kobject.File.off_buf)));
    i (Insn.Ldr (r 10, Insn.Off (r 0, Kobject.File.off_pos)));
    i (Insn.Add_reg (r 9, r 9, r 10));
    i (Insn.Ldr (r 11, Insn.Off (r 0, Kobject.File.off_buf_len)));
    i (Insn.Sub_reg (r 11, r 11, r 10));
    i (Insn.Subs_reg (Insn.XZR, r 2, r 11));
    Asm.bcond_to Insn.Le "lenok";
    i (Insn.Mov (r 2, r 11));
    Asm.label "lenok";
    i (Insn.Add_reg (r 10, r 10, r 2));
    i (Insn.Str (r 10, Insn.Off (r 0, Kobject.File.off_pos)));
    i (Insn.Stp (r 2, Insn.XZR, Insn.Pre (Insn.SP, -16)));
  ]
  @ (if user_is_dst then
       [ i (Insn.Mov (r 0, r 1)); i (Insn.Mov (r 1, r 9)) ]
     else [ i (Insn.Mov (r 0, r 9)) ])
  @ [ Asm.bl_to "memcpy_bytes"; i (Insn.Ldp (r 0, r 9, Insn.Post (Insn.SP, 16))) ]

let ramfs_read_body = ramfs_copy_setup ~user_is_dst:true
let ramfs_write_body = ramfs_copy_setup ~user_is_dst:false

let fops_call config registry ~op_offset =
  (* Listing 4: authenticate f_ops, load the op, indirect call. *)
  C.Pointer_integrity.emit_getter config registry ~type_name:"file" ~member_name:"f_ops"
    ~obj:(r 0) ~dst:(r 8) ~scratch:(r 9)
  @ [ i (Insn.Ldr (r 8, Insn.Off (r 8, op_offset))); i (Insn.Blr (r 8)) ]

let sys_read_body config registry =
  [
    i (Insn.Stp (r 1, r 2, Insn.Pre (Insn.SP, -16)));
    Asm.bl_to "fd_to_file";
    i (Insn.Ldp (r 1, r 2, Insn.Post (Insn.SP, 16)));
    Asm.cbz_to (r 0) "bad";
  ]
  @ fops_call config registry ~op_offset:Kobject.Fops.off_read
  @ [ Asm.b_to "out"; Asm.label "bad" ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

let sys_write_body config registry =
  [
    i (Insn.Stp (r 1, r 2, Insn.Pre (Insn.SP, -16)));
    Asm.bl_to "fd_to_file";
    i (Insn.Ldp (r 1, r 2, Insn.Post (Insn.SP, 16)));
    Asm.cbz_to (r 0) "bad";
  ]
  @ fops_call config registry ~op_offset:Kobject.Fops.off_write
  @ [ Asm.b_to "out"; Asm.label "bad" ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

(* Allocate a free descriptor and a file object from the slab; returns
   fd in x0 and the file in x1 (or x0 = -1). Shared by open and
   socketpair. *)
let alloc_fd_file_body =
  [
    i (Insn.Movz (r 9, 3, 0));
    Asm.label "fdloop";
    i (Insn.Subs_imm (Insn.XZR, r 9, Kobject.Task.fd_table_entries));
    Asm.bcond_to Insn.Ge "nofd";
    i (Insn.Lsl_imm (r 10, r 9, 3));
    i (Insn.Add_reg (r 10, r 10, r 28));
    i (Insn.Ldr (r 11, Insn.Off (r 10, Kobject.Task.off_fd_table)));
    Asm.cbz_to (r 11) "gotfd";
    i (Insn.Add_imm (r 9, r 9, 1));
    Asm.b_to "fdloop";
    Asm.label "gotfd";
  ]
  @ Asm.mov_addr (r 10) "file_slab_next"
  @ [
      i (Insn.Ldr (r 11, Insn.Off (r 10, 0)));
      i (Insn.Add_imm (r 12, r 11, Kobject.File.size));
      i (Insn.Str (r 12, Insn.Off (r 10, 0)));
      i (Insn.Lsl_imm (r 12, r 9, 3));
      i (Insn.Add_reg (r 12, r 12, r 28));
      i (Insn.Str (r 11, Insn.Off (r 12, Kobject.Task.off_fd_table)));
      i (Insn.Str (Insn.XZR, Insn.Off (r 11, Kobject.File.off_pos)));
      i (Insn.Mov (r 0, r 9));
      i (Insn.Mov (r 1, r 11));
      Asm.b_to "out";
      Asm.label "nofd";
    ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

(* Sign and store the ops-table and credential pointers of a fresh file:
   x0 = file, x13 = ops table. Used for both ramfs files and sockets. *)
let init_file_protection config registry =
  C.Pointer_integrity.emit_setter config registry ~type_name:"file" ~member_name:"f_ops"
    ~obj:(r 0) ~value:(r 13) ~scratch:(r 14)
  @ Asm.mov_addr (r 13) "root_cred"
  @ C.Pointer_integrity.emit_setter config registry ~type_name:"file"
      ~member_name:"f_cred" ~obj:(r 0) ~value:(r 13) ~scratch:(r 14)

let sys_open_body config registry =
  [
    Asm.bl_to "alloc_fd_file";
    i (Insn.Subs_imm (Insn.XZR, r 0, 0));
    Asm.bcond_to Insn.Lt "out";
    (* x0 = fd, x1 = file; keep fd on the stack during setup *)
    i (Insn.Stp (r 0, r 1, Insn.Pre (Insn.SP, -16)));
    i (Insn.Mov (r 0, r 1));
  ]
  @ Asm.mov_addr (r 12) "ramfs_backing"
  @ [
      i (Insn.Str (r 12, Insn.Off (r 0, Kobject.File.off_buf)));
      i (Insn.Movz (r 13, 4096, 0));
      i (Insn.Str (r 13, Insn.Off (r 0, Kobject.File.off_buf_len)));
    ]
  @ Asm.mov_addr (r 13) "ramfs_fops"
  @ init_file_protection config registry
  @ [ i (Insn.Ldp (r 0, r 9, Insn.Post (Insn.SP, 16))); Asm.label "out" ]

(* socketpair(): two connected sockets as files with the socket ops
   table, each with a private rx buffer; returns the first descriptor
   and guarantees the second is fd+1. *)
let sys_socketpair_body config registry =
  [
    Asm.bl_to "alloc_fd_file";
    i (Insn.Subs_imm (Insn.XZR, r 0, 0));
    Asm.bcond_to Insn.Lt "fail";
    i (Insn.Stp (r 0, r 1, Insn.Pre (Insn.SP, -16)));
    Asm.bl_to "alloc_fd_file";
    i (Insn.Subs_imm (Insn.XZR, r 0, 0));
    Asm.bcond_to Insn.Lt "fail_pop";
    (* stack: fd1, file1; regs: x0 = fd2, x1 = file2 *)
    i (Insn.Stp (r 0, r 1, Insn.Pre (Insn.SP, -16)));
    (* carve two rx buffers *)
  ]
  @ Asm.mov_addr (r 10) "sock_buf_slab_next"
  @ [
      i (Insn.Ldr (r 9, Insn.Off (r 10, 0)));
      i (Insn.Movz (r 11, 4096, 0));
      i (Insn.Add_reg (r 12, r 9, r 11));
      i (Insn.Add_reg (r 13, r 12, r 11));
      i (Insn.Str (r 13, Insn.Off (r 10, 0)));
      (* x9 = buf1, x12 = buf2; frames: [sp]=fd2,file2 [sp+16]=fd1,file1 *)
      i (Insn.Ldr (r 2, Insn.Off (Insn.SP, 24)));
      (* x2 = file1 *)
      i (Insn.Ldr (r 3, Insn.Off (Insn.SP, 8)));
      (* x3 = file2 *)
      i (Insn.Str (r 9, Insn.Off (r 2, Kobject.File.off_buf)));
      i (Insn.Str (r 12, Insn.Off (r 3, Kobject.File.off_buf)));
      i (Insn.Str (r 11, Insn.Off (r 2, Kobject.File.off_buf_len)));
      i (Insn.Str (r 11, Insn.Off (r 3, Kobject.File.off_buf_len)));
      i (Insn.Str (r 3, Insn.Off (r 2, Kobject.File.off_private)));
      i (Insn.Str (r 2, Insn.Off (r 3, Kobject.File.off_private)));
      (* sign ops for file1 then file2 *)
      i (Insn.Mov (r 0, r 2));
    ]
  @ Asm.mov_addr (r 13) "socket_fops"
  @ init_file_protection config registry
  @ [ i (Insn.Ldr (r 0, Insn.Off (Insn.SP, 8))) ]
  @ Asm.mov_addr (r 13) "socket_fops"
  @ init_file_protection config registry
  @ [
      (* return fd1 *)
      i (Insn.Ldp (r 9, r 10, Insn.Post (Insn.SP, 16)));
      i (Insn.Ldp (r 0, r 10, Insn.Post (Insn.SP, 16)));
      Asm.b_to "out";
      Asm.label "fail_pop";
      i (Insn.Ldp (r 9, r 10, Insn.Post (Insn.SP, 16)));
      Asm.label "fail";
    ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

(* Socket data path: send appends to the peer's rx buffer, recv drains
   the own buffer front (no ring wrap in the model). *)
let sock_write_body =
  [
    i (Insn.Ldr (r 9, Insn.Off (r 0, Kobject.File.off_private)));
    i (Insn.Ldr (r 10, Insn.Off (r 9, Kobject.File.off_buf)));
    i (Insn.Ldr (r 11, Insn.Off (r 9, Kobject.File.off_pos)));
    i (Insn.Add_reg (r 10, r 10, r 11));
    i (Insn.Add_reg (r 11, r 11, r 2));
    i (Insn.Str (r 11, Insn.Off (r 9, Kobject.File.off_pos)));
    i (Insn.Stp (r 2, Insn.XZR, Insn.Pre (Insn.SP, -16)));
    i (Insn.Mov (r 0, r 10));
    Asm.bl_to "memcpy_bytes";
    i (Insn.Ldp (r 0, r 9, Insn.Post (Insn.SP, 16)));
  ]

let sock_read_body =
  [
    i (Insn.Ldr (r 11, Insn.Off (r 0, Kobject.File.off_pos)));
    i (Insn.Subs_reg (Insn.XZR, r 2, r 11));
    Asm.bcond_to Insn.Le "lenok";
    i (Insn.Mov (r 2, r 11));
    Asm.label "lenok";
    i (Insn.Ldr (r 9, Insn.Off (r 0, Kobject.File.off_buf)));
    i (Insn.Sub_reg (r 11, r 11, r 2));
    i (Insn.Str (r 11, Insn.Off (r 0, Kobject.File.off_pos)));
    i (Insn.Stp (r 2, Insn.XZR, Insn.Pre (Insn.SP, -16)));
    i (Insn.Mov (r 0, r 1));
    i (Insn.Mov (r 1, r 9));
    Asm.bl_to "memcpy_bytes";
    i (Insn.Ldp (r 0, r 9, Insn.Post (Insn.SP, 16)));
  ]

(* Console device: writes append to a ring in kernel data that the host
   (playing the UART) drains; reads return 0 (EOF). *)
let console_write_body =
  Asm.mov_addr (r 9) "console_state"
  @ [
      i (Insn.Ldr (r 10, Insn.Off (r 9, 0)));
      i (Insn.Movz (r 12, 8191, 0));
      i (Insn.And_reg (r 11, r 10, r 12));
      i (Insn.Add_reg (r 10, r 10, r 2));
      i (Insn.Str (r 10, Insn.Off (r 9, 0)));
    ]
  @ Asm.mov_addr (r 10) "console_ring"
  @ [
      i (Insn.Add_reg (r 10, r 10, r 11));
      i (Insn.Stp (r 2, Insn.XZR, Insn.Pre (Insn.SP, -16)));
      i (Insn.Mov (r 0, r 10));
      Asm.bl_to "memcpy_bytes";
      i (Insn.Ldp (r 0, r 9, Insn.Post (Insn.SP, 16)));
    ]

let console_read_body = [ i (Insn.Movz (r 0, 0, 0)) ]

(* poll: authenticate the ops pointer of every polled file (the kernel
   consults ops->poll), count those with data available. x0 = user
   array of descriptors, x1 = count. *)
let sys_poll_body config registry =
  [
    i (Insn.Mov (r 12, r 0));
    i (Insn.Mov (r 13, r 1));
    i (Insn.Movz (r 14, 0, 0));
    Asm.label "loop";
    Asm.cbz_to (r 13) "done";
    i (Insn.Ldr (r 0, Insn.Off (r 12, 0)));
    Asm.bl_to "fd_to_file";
    Asm.cbz_to (r 0) "next";
  ]
  @ C.Pointer_integrity.emit_getter config registry ~type_name:"file" ~member_name:"f_ops"
      ~obj:(r 0) ~dst:(r 8) ~scratch:(r 9)
  @ [
      i (Insn.Ldr (r 8, Insn.Off (r 8, Kobject.Fops.off_open)));
      (* stands in for ops->poll *)
      i (Insn.Ldr (r 10, Insn.Off (r 0, Kobject.File.off_pos)));
      Asm.cbz_to (r 10) "next";
      i (Insn.Add_imm (r 14, r 14, 1));
      Asm.label "next";
      i (Insn.Add_imm (r 12, r 12, 8));
      i (Insn.Sub_imm (r 13, r 13, 1));
      Asm.b_to "loop";
      Asm.label "done";
      i (Insn.Mov (r 0, r 14));
    ]

(* timer_set: arm a slot with a notifier handler, expiry bound to the
   virtual counter. x0 = slot, x1 = delay (cycles), x2 = handler id. *)
let sys_timer_set_body config registry =
  bounds_check (r 0) ~lo:0 ~hi:Kobject.Timer.slots ~bad:"bad"
  @ bounds_check (r 2) ~lo:0 ~hi:4 ~bad:"bad"
  @ Asm.mov_addr (r 9) "timer_slab"
  @ [
      i (Insn.Lsl_imm (r 10, r 0, 5));
      i (Insn.Add_reg (r 9, r 9, r 10));
      i (Insn.Mrs (r 10, Sysreg.CNTVCT_EL0));
      i (Insn.Add_reg (r 10, r 10, r 1));
      i (Insn.Str (r 10, Insn.Off (r 9, Kobject.Timer.off_expires)));
      i (Insn.Str (r 0, Insn.Off (r 9, Kobject.Timer.off_data)));
    ]
  @ Asm.mov_addr (r 10) "notifier_handlers"
  @ [
      i (Insn.Lsl_imm (r 11, r 2, 3));
      i (Insn.Add_reg (r 10, r 10, r 11));
      i (Insn.Ldr (r 1, Insn.Off (r 10, 0)));
    ]
  @ C.Pointer_integrity.emit_setter config registry ~type_name:"timer" ~member_name:"func"
      ~obj:(r 9) ~value:(r 1) ~scratch:(r 10)
  @ [ i (Insn.Movz (r 0, 0, 0)); Asm.b_to "out"; Asm.label "bad" ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

(* run_timers: fire every armed slot whose expiry has passed; each
   callback pointer is authenticated before the indirect call. x0 = now. *)
let run_timers_body config registry =
  [
    i (Insn.Mov (r 13, r 0));
    i (Insn.Movz (r 12, 0, 0));
    Asm.label "loop";
    i (Insn.Subs_imm (Insn.XZR, r 12, Kobject.Timer.slots));
    Asm.bcond_to Insn.Ge "done";
  ]
  @ Asm.mov_addr (r 9) "timer_slab"
  @ [
      i (Insn.Lsl_imm (r 10, r 12, 5));
      i (Insn.Add_reg (r 9, r 9, r 10));
      i (Insn.Ldr (r 10, Insn.Off (r 9, Kobject.Timer.off_expires)));
      Asm.cbz_to (r 10) "next";
      i (Insn.Subs_reg (Insn.XZR, r 10, r 13));
      Asm.bcond_to Insn.Gt "next";
      i (Insn.Str (Insn.XZR, Insn.Off (r 9, Kobject.Timer.off_expires)));
      i (Insn.Ldr (r 8, Insn.Off (r 9, Kobject.Timer.off_func)));
      Asm.cbz_to (r 8) "next";
      i (Insn.Stp (r 12, r 13, Insn.Pre (Insn.SP, -16)));
    ]
  @ C.Pointer_integrity.emit_getter config registry ~type_name:"timer" ~member_name:"func"
      ~obj:(r 9) ~dst:(r 8) ~scratch:(r 10)
  @ [
      i (Insn.Ldr (r 0, Insn.Off (r 9, Kobject.Timer.off_data)));
      i (Insn.Blr (r 8));
      i (Insn.Ldp (r 12, r 13, Insn.Post (Insn.SP, 16)));
      Asm.label "next";
      i (Insn.Add_imm (r 12, r 12, 1));
      Asm.b_to "loop";
      Asm.label "done";
      i (Insn.Movz (r 0, 0, 0));
    ]

let sys_close_body =
  bounds_check (r 0) ~lo:0 ~hi:Kobject.Task.fd_table_entries ~bad:"bad"
  @ [
      i (Insn.Lsl_imm (r 9, r 0, 3));
      i (Insn.Add_reg (r 9, r 9, r 28));
      i (Insn.Str (Insn.XZR, Insn.Off (r 9, Kobject.Task.off_fd_table)));
      i (Insn.Movz (r 0, 0, 0));
      Asm.b_to "out";
      Asm.label "bad";
    ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

let sys_stat_body =
  [
    i (Insn.Movz (r 9, 0, 0));
    i (Insn.Movz (r 10, 32, 0));
    Asm.label "hloop";
    i (Insn.Lsl_imm (r 11, r 9, 5));
    i (Insn.Add_reg (r 9, r 11, r 9));
    i (Insn.Add_reg (r 9, r 9, r 0));
    i (Insn.Sub_imm (r 10, r 10, 1));
    Asm.cbnz_to (r 10) "hloop";
    i (Insn.Str (r 9, Insn.Off (r 1, 0)));
    i (Insn.Movz (r 11, 4096, 0));
    i (Insn.Str (r 11, Insn.Off (r 1, 8)));
    i (Insn.Movz (r 11, 0x1a4, 0));
    i (Insn.Str (r 11, Insn.Off (r 1, 16)));
    i (Insn.Movz (r 0, 0, 0));
  ]

let sys_fstat_body =
  [
    i (Insn.Stp (r 1, Insn.XZR, Insn.Pre (Insn.SP, -16)));
    Asm.bl_to "fd_to_file";
    i (Insn.Ldp (r 1, r 9, Insn.Post (Insn.SP, 16)));
    Asm.cbz_to (r 0) "bad";
    i (Insn.Ldr (r 10, Insn.Off (r 0, Kobject.File.off_pos)));
    i (Insn.Str (r 10, Insn.Off (r 1, 0)));
    i (Insn.Ldr (r 10, Insn.Off (r 0, Kobject.File.off_buf_len)));
    i (Insn.Str (r 10, Insn.Off (r 1, 8)));
    i (Insn.Movz (r 0, 0, 0));
    Asm.b_to "out";
    Asm.label "bad";
  ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

let notifier_slot_addr =
  (* x9 := &current->notifiers[x0] *)
  [
    i (Insn.Lsl_imm (r 9, r 0, 3));
    i (Insn.Add_reg (r 9, r 9, r 28));
    i (Insn.Add_imm (r 9, r 9, Kobject.Task.off_notifiers));
  ]

let sys_notifier_register_body config registry =
  bounds_check (r 0) ~lo:0 ~hi:Kobject.Task.notifier_slots ~bad:"bad"
  @ bounds_check (r 1) ~lo:0 ~hi:4 ~bad:"bad"
  @ Asm.mov_addr (r 10) "notifier_handlers"
  @ [
      i (Insn.Lsl_imm (r 11, r 1, 3));
      i (Insn.Add_reg (r 10, r 10, r 11));
      i (Insn.Ldr (r 1, Insn.Off (r 10, 0)));
    ]
  @ notifier_slot_addr
  @ C.Pointer_integrity.emit_setter config registry ~type_name:"notifier"
      ~member_name:"handler" ~obj:(r 9) ~value:(r 1) ~scratch:(r 10)
  @ [ i (Insn.Movz (r 0, 0, 0)); Asm.b_to "out"; Asm.label "bad" ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

let sys_notifier_call_body config registry =
  bounds_check (r 0) ~lo:0 ~hi:Kobject.Task.notifier_slots ~bad:"bad"
  @ notifier_slot_addr
  @ [ i (Insn.Ldr (r 8, Insn.Off (r 9, 0))); Asm.cbz_to (r 8) "bad" ]
  @ C.Pointer_integrity.emit_getter config registry ~type_name:"notifier"
      ~member_name:"handler" ~obj:(r 9) ~dst:(r 8) ~scratch:(r 10)
  @ [ i (Insn.Blr (r 8)); Asm.b_to "out"; Asm.label "bad" ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

let notifier_noop_body = [ i (Insn.Movz (r 0, 1, 0)) ]

let bump_cell_body cell ~delta ~ret_cell =
  Asm.mov_addr (r 9) cell
  @ [
      i (Insn.Ldr (r 10, Insn.Off (r 9, 0)));
      i (Insn.Add_imm (r 10, r 10, delta));
      i (Insn.Str (r 10, Insn.Off (r 9, 0)));
    ]
  @ if ret_cell then [ i (Insn.Mov (r 0, r 10)) ] else []

let notifier_count_body = bump_cell_body "notifier_count_cell" ~delta:1 ~ret_cell:true

let pipe_copy ~write =
  let cursor_off = if write then 0 else 16 in
  Asm.mov_addr (r 9) "pipe_state"
  @ [
      i (Insn.Ldr (r 10, Insn.Off (r 9, cursor_off)));
      i (Insn.Movz (r 12, 4095, 0));
      i (Insn.And_reg (r 10, r 10, r 12));
    ]
  @ Asm.mov_addr (r 11) "pipe_buf"
  @ [ i (Insn.Add_reg (r 11, r 11, r 10)) ]
  @ [ i (Insn.Stp (r 1, r 9, Insn.Pre (Insn.SP, -16))) ]
  @ (if write then
       [ i (Insn.Mov (r 2, r 1)); i (Insn.Mov (r 1, r 0)); i (Insn.Mov (r 0, r 11)) ]
     else [ i (Insn.Mov (r 2, r 1)); i (Insn.Mov (r 1, r 11)) ])
  @ [
      Asm.bl_to "memcpy_bytes";
      i (Insn.Ldp (r 1, r 9, Insn.Post (Insn.SP, 16)));
      i (Insn.Ldr (r 10, Insn.Off (r 9, cursor_off)));
      i (Insn.Add_reg (r 10, r 10, r 1));
      i (Insn.Str (r 10, Insn.Off (r 9, cursor_off)));
      i (Insn.Ldr (r 10, Insn.Off (r 9, 8)));
      i
        (if write then Insn.Add_reg (r 10, r 10, r 1)
         else Insn.Sub_reg (r 10, r 10, r 1));
      i (Insn.Str (r 10, Insn.Off (r 9, 8)));
      i (Insn.Mov (r 0, r 1));
    ]

let sys_fork_body =
  Asm.mov_addr (r 9) "task_slab_next"
  @ [
      i (Insn.Ldr (r 10, Insn.Off (r 9, 0)));
      i (Insn.Add_imm (r 11, r 10, Kobject.Task.size));
      i (Insn.Str (r 11, Insn.Off (r 9, 0)));
      i (Insn.Stp (r 10, Insn.XZR, Insn.Pre (Insn.SP, -16)));
      i (Insn.Mov (r 0, r 10));
      i (Insn.Mov (r 1, r 28));
      i (Insn.Movz (r 2, Kobject.Task.size, 0));
      Asm.bl_to "memcpy_bytes";
      i (Insn.Ldp (r 0, r 9, Insn.Post (Insn.SP, 16)));
    ]

let cpu_switch_to_body config registry =
  [ i (Insn.Mov (r 9, Insn.SP)) ]
  @ C.Pointer_integrity.emit_setter config registry ~type_name:"task"
      ~member_name:"kernel_sp" ~obj:(r 0) ~value:(r 9) ~scratch:(r 10)
  @ C.Pointer_integrity.emit_getter config registry ~type_name:"task"
      ~member_name:"kernel_sp" ~obj:(r 1) ~dst:(r 9) ~scratch:(r 10)
  @ [ i (Insn.Mov (Insn.SP, r 9)) ]

let run_work_body config registry =
  [ i (Insn.Ldr (r 8, Insn.Off (r 0, Kobject.Work.off_func))); Asm.cbz_to (r 8) "bad" ]
  @ C.Pointer_integrity.emit_getter config registry ~type_name:"work_struct"
      ~member_name:"func" ~obj:(r 0) ~dst:(r 8) ~scratch:(r 9)
  @ [
      i (Insn.Ldr (r 0, Insn.Off (r 0, Kobject.Work.off_data)));
      i (Insn.Blr (r 8));
      Asm.b_to "out";
      Asm.label "bad";
    ]
  @ ret_minus_one
  @ [ Asm.label "out" ]

(* The hardened-ABI read (Section 8 future work): the buffer pointer
   arrives signed under the caller's DA key and is authenticated through
   the audited uaccess helper before the ordinary read path runs. *)
let sys_read_secure_body =
  [
    i (Insn.Stp (r 0, r 2, Insn.Pre (Insn.SP, -16)));
    i (Insn.Mov (r 0, r 1));
    i (Insn.Mov (r 1, r 28));
    i (Insn.Movz (r 2, 0, 0));
    (* ABI modifier: zero in this prototype *)
    Asm.bl_to "uaccess_authda";
    i (Insn.Mov (r 1, r 0));
    i (Insn.Ldp (r 0, r 2, Insn.Post (Insn.SP, 16)));
    Asm.bl_to "sys_read";
  ]

(* getuid: authenticate current->cred (the f_cred pattern of Section 4.5
   applied to the task credentials), then read the uid. *)
let sys_getuid_body config registry =
  C.Pointer_integrity.emit_getter config registry ~type_name:"task" ~member_name:"cred"
    ~obj:(r 28) ~dst:(r 8) ~scratch:(r 9)
  @ [ i (Insn.Ldr (r 0, Insn.Off (r 8, 0))) ]

(* Chained PACGA over a word range: the generic-data key (GA) MACs each
   word into an accumulator. Used by the boot-time integrity monitor to
   attest the syscall table (defense in depth on top of the stage-2
   write protection). x0 = base, x1 = word count; returns the MAC. *)
let table_mac_body =
  [
    i (Insn.Movz (r 9, 0, 0));
    Asm.label "loop";
    Asm.cbz_to (r 1) "done";
    i (Insn.Ldr (r 10, Insn.Post (r 0, 8)));
    i (Insn.Eor_reg (r 10, r 10, r 9));
    i (Insn.Pacga (r 9, r 10, r 9));
    i (Insn.Sub_imm (r 1, r 1, 1));
    Asm.b_to "loop";
    Asm.label "done";
    i (Insn.Mov (r 0, r 9));
  ]

let work_noop_body = [ i (Insn.Movz (r 0, 7, 0)) ]
let work_counter_body = bump_cell_body "work_counter_cell" ~delta:1 ~ret_cell:true

(* Data section helpers. *)

let zeros n = List.init n (fun _ -> O.Lit 0L)

(* Every kernel text function as a raw body plus its instrumentation
   style. One list serves [build] (which wraps) and [lint] (which also
   checks the raw bodies against the reserved-register convention). *)
let kernel_bodies config registry =
  [
    (`Leaf, "fd_to_file", fd_to_file_body);
    (`Leaf, "memcpy_bytes", memcpy_bytes_body);
    (`Leaf, "sys_vuln_read", vuln_read_body);
    (`Leaf, "sys_vuln_write", vuln_write_body);
    (`Wrap, "sys_getpid", getpid_body);
    (`Wrap, "fops_noop", fops_noop_body);
    (`Wrap, "ramfs_read", ramfs_read_body);
    (`Wrap, "ramfs_write", ramfs_write_body);
    (`Wrap, "alloc_fd_file", alloc_fd_file_body);
    (`Wrap, "sys_read", sys_read_body config registry);
    (`Wrap, "sys_write", sys_write_body config registry);
    (`Wrap, "sys_open", sys_open_body config registry);
    (`Wrap, "sys_close", sys_close_body);
    (`Wrap, "sys_stat", sys_stat_body);
    (`Wrap, "sys_fstat", sys_fstat_body);
    (`Wrap, "sys_notifier_register", sys_notifier_register_body config registry);
    (`Wrap, "sys_notifier_call", sys_notifier_call_body config registry);
    (`Wrap, "notifier_noop", notifier_noop_body);
    (`Wrap, "notifier_count", notifier_count_body);
    (`Wrap, "sys_pipe_write", pipe_copy ~write:true);
    (`Wrap, "sys_pipe_read", pipe_copy ~write:false);
    (`Wrap, "sys_fork", sys_fork_body);
    (`Wrap, "sys_getuid", sys_getuid_body config registry);
    (`Wrap, "sys_socketpair", sys_socketpair_body config registry);
    (`Wrap, "sock_read_op", sock_read_body);
    (`Wrap, "sock_write_op", sock_write_body);
    (`Wrap, "console_write_op", console_write_body);
    (`Wrap, "console_read_op", console_read_body);
    (`Wrap, "sys_poll", sys_poll_body config registry);
    (`Wrap, "sys_timer_set", sys_timer_set_body config registry);
    (`Wrap, "run_timers", run_timers_body config registry);
    (`Wrap, "table_mac", table_mac_body);
    (`Wrap, "sys_read_secure", sys_read_secure_body);
    (`Wrap, "cpu_switch_to", cpu_switch_to_body config registry);
    (`Wrap, "run_work", run_work_body config registry);
    (`Wrap, "work_noop", work_noop_body);
    (`Wrap, "work_counter", work_counter_body);
  ]

let build config registry =
  let instrument (style, name, body) =
    match style with
    | `Wrap ->
        let f = C.Instrument.wrap config ~name body in
        (name, f.C.Instrument.items)
    | `Leaf ->
        let f = C.Instrument.wrap_leaf ~name body in
        (name, f.C.Instrument.items)
  in
  let functions = List.map instrument (kernel_bodies config registry) in
  let table_entry = function
    | 0 -> O.Lit 0L (* exit: handled by the dispatcher *)
    | 1 -> O.Sym "sys_getpid"
    | 2 -> O.Sym "sys_read"
    | 3 -> O.Sym "sys_write"
    | 4 -> O.Sym "sys_open"
    | 5 -> O.Sym "sys_close"
    | 6 -> O.Sym "sys_stat"
    | 7 -> O.Sym "sys_fstat"
    | 8 -> O.Sym "sys_notifier_register"
    | 9 -> O.Sym "sys_notifier_call"
    | 10 -> O.Sym "sys_pipe_write"
    | 11 -> O.Sym "sys_pipe_read"
    | 12 -> O.Sym "sys_fork"
    | 13 -> O.Sym "sys_vuln_read"
    | 14 -> O.Sym "sys_vuln_write"
    | 15 -> O.Sym "sys_getuid"
    | 16 -> O.Sym "sys_read_secure"
    | 17 -> O.Sym "sys_socketpair"
    | 18 -> O.Sym "sys_poll"
    | 19 -> O.Sym "sys_timer_set"
    | _ -> O.Lit 0L
  in
  let rodata =
    [
      { O.blob_name = "sys_call_table"; words = List.init syscall_count table_entry };
      {
        O.blob_name = "ramfs_fops";
        words = [ O.Sym "fops_noop"; O.Sym "fops_noop"; O.Sym "ramfs_read"; O.Sym "ramfs_write" ];
      };
      {
        O.blob_name = "console_fops";
        words =
          [
            O.Sym "fops_noop"; O.Sym "fops_noop"; O.Sym "console_read_op";
            O.Sym "console_write_op";
          ];
      };
      {
        O.blob_name = "socket_fops";
        words =
          [ O.Sym "fops_noop"; O.Sym "fops_noop"; O.Sym "sock_read_op"; O.Sym "sock_write_op" ];
      };
      {
        O.blob_name = "notifier_handlers";
        words =
          [ O.Sym "notifier_noop"; O.Sym "notifier_count"; O.Sym "work_noop"; O.Sym "work_counter" ];
      };
      { O.blob_name = "root_cred"; words = [ O.Lit 0L; O.Lit 0L ] };
      { O.blob_name = "user_cred"; words = [ O.Lit 1000L; O.Lit 1000L ] };
    ]
  in
  let data =
    [
      { O.blob_name = "file_slab_next"; words = [ O.Sym "file_slab" ] };
      { O.blob_name = "file_slab"; words = zeros (128 * (Kobject.File.size / 8)) };
      { O.blob_name = "task_slab_next"; words = [ O.Sym "task_slab" ] };
      { O.blob_name = "task_slab"; words = zeros (16 * (Kobject.Task.size / 8)) };
      { O.blob_name = "pipe_state"; words = zeros 3 };
      { O.blob_name = "pipe_buf"; words = zeros 512 };
      { O.blob_name = "ramfs_backing"; words = zeros 512 };
      { O.blob_name = "console_state"; words = [ O.Lit 0L ] };
      { O.blob_name = "console_ring"; words = zeros 1024 };
      { O.blob_name = "sock_buf_slab_next"; words = [ O.Sym "sock_buf_slab" ] };
      { O.blob_name = "sock_buf_slab"; words = zeros (16 * 512) };
      { O.blob_name = "timer_slab"; words = zeros (Kobject.Timer.slots * (Kobject.Timer.size / 8)) };
      { O.blob_name = "notifier_count_cell"; words = [ O.Lit 0L ] };
      { O.blob_name = "work_counter_cell"; words = [ O.Lit 0L ] };
      (* DECLARE_WORK(static_work, work_counter): statically initialized
         protected pointer, signed at boot via .pauth_static. *)
      { O.blob_name = "static_work"; words = [ O.Lit 5L; O.Sym "work_counter" ] };
    ]
  in
  let obj =
    List.fold_left
      (fun obj (name, items) -> O.add_function obj ~name items)
      (O.empty "vmlinux") functions
  in
  let obj = List.fold_left O.add_rodata obj rodata in
  let obj = List.fold_left O.add_data obj data in
  O.add_static_sign obj
    {
      O.sign_blob = "static_work";
      word_index = 1;
      type_name = "work_struct";
      member_name = "func";
    }

let exported_symbols =
  [
    "memcpy_bytes";
    "fd_to_file";
    "run_work";
    "ramfs_fops";
    "notifier_handlers";
    "sys_call_table";
    "work_counter_cell";
    "root_cred";
    "user_cred";
    "table_mac";
  ]

type lint_report = {
  diags : Paclint.Diag.t list;
  summary : Paclint.Summary.report;
  census : Paclint.Census.t;
}

let lint_report ?(par = Paclint.Lint.seq_par) ?scheme config =
  let registry = C.Pointer_integrity.create_registry () in
  Kobject.register_protected_members registry;
  let obj = build config registry in
  (* Mirror the boot-time placement: blobs sequential from the rodata
     and data bases, the audited bootloader routines linked like
     firmware calls from the XOM page. *)
  let place base blobs =
    let addr = ref base in
    List.map
      (fun b ->
        let this = !addr in
        addr := Int64.add !addr (Int64.of_int (8 * List.length b.O.words));
        (b.O.blob_name, this))
      blobs
  in
  let blob_symbols =
    place Layout.rodata_base obj.O.rodata @ place Layout.data_base obj.O.data
  in
  let xom_symbols =
    [
      ("kernel_key_setter", Layout.xom_base);
      ("user_key_restore", Int64.add Layout.xom_base 0x100L);
      ("uaccess_authda", Int64.add Layout.xom_base 0x200L);
    ]
  in
  let prog = Asm.create () in
  List.iter (fun (name, items) -> Asm.add_function prog ~name items) obj.O.functions;
  let layout =
    Asm.assemble prog ~base:Layout.text_base ~extra_symbols:(blob_symbols @ xom_symbols)
  in
  (* Whole-image interprocedural pass: call graph, per-function
     summaries to fixpoint, gadget census, then the scheme's rule pack.
     Only text-resident symbols partition functions; blob and XOM
     symbols lie outside the code array and are ignored by Callgraph. *)
  let policy = C.Verifier.policy config in
  let summary =
    Paclint.Summary.analyze_image ~par ~symbols:layout.Asm.symbols ~policy
      layout.Asm.code
  in
  let census = Paclint.Census.run ~par summary.Paclint.Summary.cg in
  let scheme =
    match scheme with Some s -> s | None -> C.Verifier.rules_scheme config
  in
  let rules = Paclint.Rules.run { Paclint.Rules.scheme; summary; census } in
  (* Reserved-register convention over the raw bodies (the instrumented
     stream legitimately uses the scratch registers). Body diagnostics
     are re-based onto the function's image address, shifted by the
     prologue the body itself cannot see. *)
  let bodies =
    List.concat_map
      (fun (_, name, body) ->
        let rebase =
          match List.assoc_opt name layout.Asm.symbols with
          | Some addr -> fun d -> { d with Paclint.Diag.va = Int64.add addr d.Paclint.Diag.va }
          | None -> fun d -> d
        in
        List.map rebase (Paclint.Lint.check_body body))
      (kernel_bodies config registry)
  in
  {
    diags = Paclint.Diag.normalize (summary.Paclint.Summary.diags @ rules @ bodies);
    summary;
    census;
  }

let lint ?par ?scheme config = (lint_report ?par ?scheme config).diags

(* Lint a standalone module object against the kernel export surface:
   the module's text is assembled at the module area base, its own blobs
   right after, and every kernel export resolves to its conventional
   text-area slot. Export addresses lie outside the decoded module
   region, so calls into the kernel fall back to the lint's conservative
   clobber — exactly how the loader's gate treats them. No raw bodies
   exist for a serialized object, so the reserved-register body check
   does not apply here (the loader never ran it either). *)
let lint_module ?(par = Paclint.Lint.seq_par) ?scheme config (obj : O.t) =
  let text_bytes = 4 * O.text_instruction_count obj in
  let blob_base area blobs =
    let addr = ref area in
    List.map
      (fun b ->
        let this = !addr in
        addr := Int64.add !addr (Int64.of_int (8 * List.length b.O.words));
        (b.O.blob_name, this))
      blobs
  in
  let text_base = Layout.module_area_base in
  let data_area =
    Int64.add text_base (Int64.of_int (Layout.round_pages text_bytes + 4096))
  in
  let blob_symbols = blob_base data_area (obj.O.rodata @ obj.O.data) in
  let export_symbols =
    List.mapi
      (fun i s -> (s, Int64.add Layout.text_base (Int64.of_int (i * 0x40))))
      exported_symbols
  in
  let prog = Asm.create () in
  List.iter (fun (name, items) -> Asm.add_function prog ~name items) obj.O.functions;
  let layout =
    Asm.assemble prog ~base:text_base ~extra_symbols:(blob_symbols @ export_symbols)
  in
  let policy = C.Verifier.policy config in
  let summary =
    Paclint.Summary.analyze_image ~par ~symbols:layout.Asm.symbols ~policy
      layout.Asm.code
  in
  let census = Paclint.Census.run ~par summary.Paclint.Summary.cg in
  let scheme =
    match scheme with Some s -> s | None -> C.Verifier.rules_scheme config
  in
  let rules = Paclint.Rules.run { Paclint.Rules.scheme; summary; census } in
  {
    diags = Paclint.Diag.normalize (summary.Paclint.Summary.diags @ rules);
    summary;
    census;
  }
