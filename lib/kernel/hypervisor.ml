open Aarch64

type t = { cpu : Cpu.t }

let is_locked_register _t = Sysreg.is_mmu_control

let install cpu =
  let t = { cpu } in
  Cpu.set_sysreg_lock cpu (is_locked_register t);
  t

let protect_frames t ~base ~bytes perm =
  let pages = Layout.round_pages bytes / 4096 in
  for i = 0 to pages - 1 do
    let va = Int64.add base (Int64.of_int (i * 4096)) in
    Mmu.stage2_protect (Cpu.mmu t.cpu)
      ~pa_page:(Vaddr.page_of (Layout.pa_of_va va))
      perm
  done

let protect_xom t ~base ~bytes = protect_frames t ~base ~bytes Mmu.xo
let protect_text t ~base ~bytes = protect_frames t ~base ~bytes Mmu.rx
let protect_rodata t ~base ~bytes = protect_frames t ~base ~bytes Mmu.ro

(* Return frames to the unrestricted default (module unload: the
   stage-1 mapping is gone, so there is nothing left to protect and the
   frames must be reusable by the next allocation). *)
let release t ~base ~bytes = protect_frames t ~base ~bytes Mmu.rwx
