(** The running system: boot, tasks, syscall dispatch, fault policy.

    The host side plays the architectural vector table (Section 2.3):
    on every kernel entry it charges the exception cost, switches to the
    current task's 16 KiB kernel stack, installs the kernel PAuth keys
    by executing the XOM setter, dispatches the machine-code handler
    from the read-only syscall table, and on exit restores the user keys
    and charges the ERET. PAC authentication failures surface as
    translation faults on poisoned addresses and feed the brute-force
    mitigation (Section 5.4): the offending process is killed, the event
    is logged, and past the threshold the system halts. *)

open Aarch64

type task = { va : int64; slot : int; pid : int }

type syscall_outcome =
  | Ok of int64
  | Killed of string  (** the current process received SIGKILL *)
  | Panicked of string  (** the system halted *)

type user_exit =
  | Exited of int64
  | User_killed of string
  | User_panicked of string
  | Watchdog_expired of { budget : int; retries : int }
      (** the task blew its instruction budget and every watchdog retry:
          [budget] is the final (doubled) per-attempt budget, [retries]
          how many grace periods it received before the SIGKILL *)

val user_exit_to_string : user_exit -> string

(** Structured oops record, captured whenever the kernel kills a task
    (or halts) on a fault path: which core and pid, the classified
    cause, the faulting PC, and a full {!Cpu.dump_state} snapshot
    (registers + recent-trace disassembly) taken at the stop. *)
type oops = {
  oops_cpu : int;
  oops_pid : int;
  oops_cause : string;
  oops_pc : int64;
  oops_dump : string;
}

type t

(** [boot ()] brings the system up: hypervisor lockdown, bootloader key
    generation into XOM, kernel image load (with static verification and
    static-pointer signing), and creation of the init task. [seed]
    drives every PRNG (kernel keys, user keys). Raises [Failure] if the
    kernel image fails verification.

    [cpus] (default 1, max 16) boots an SMP machine: all cores share
    memory, the two-stage MMU and the cipher, but keep private register
    files — including the PAuth key registers, so every secondary core
    executes the XOM key setter itself during bring-up and on each of
    its own kernel entries. Secondaries get a per-CPU data area
    (published via their TPIDR_EL1) and an idle task; with [cpus = 1]
    nothing observable changes.

    [icache] (default [true]) enables the machine-wide
    decoded-instruction cache. Disabling it ([--no-icache] at the CLI)
    changes host speed only: execution is bit-identical either way.
    [tier] selects the execution tier explicitly ([--exec-tier] at the
    CLI) and overrides [icache]; [Cpu.Traces] adds per-core superblock
    trace compilation on top of the shared icache. *)
val boot :
  ?config:Camouflage.Config.t ->
  ?seed:int64 ->
  ?has_pauth:bool ->
  ?cost:Cost.profile ->
  ?cpus:int ->
  ?telemetry:bool ->
  ?icache:bool ->
  ?tier:Aarch64.Cpu.tier ->
  unit ->
  t

val cpu : t -> Cpu.t
(** The active core (core 0 outside {!run_smp}). *)

val machine : t -> Machine.t
val cpus : t -> int
val config : t -> Camouflage.Config.t
val registry : t -> Camouflage.Pointer_integrity.registry
val xom : t -> Xom.t
val current : t -> task
val tasks : t -> task list
val panicked : t -> bool
val log : t -> string list

(** [log_events t] — the kernel log with cycle timestamps (the active
    core's clock at emission), oldest first; lets log lines merge into
    the trace timeline. *)
val log_events : t -> (int64 * string) list

(** The machine-wide telemetry hub, when booted with
    [~telemetry:true]. *)
val telemetry : t -> Telemetry.Hub.t option

(** Symbol tables for the telemetry profiler, as half-open PC ranges:
    [symbol_ranges] covers the kernel text plus the audited XOM key
    routines; [layout_ranges] converts any placed layout (e.g. a
    loaded module's text). *)
val symbol_ranges : t -> Telemetry.Profile.sym list

val layout_ranges : Aarch64.Asm.layout -> Telemetry.Profile.sym list
val bruteforce : t -> Camouflage.Bruteforce.t

(** [oopses t] — every structured oops recorded since boot, oldest
    first. *)
val oopses : t -> oops list

(** [kernel_symbol t name] — address of a kernel text or data symbol.
    Raises [Not_found]. *)
val kernel_symbol : t -> string -> int64

(** [syscall t ~nr ~args] — enter the kernel from the host (as a user
    thread would via SVC) and run the handler to completion. *)
val syscall : t -> nr:int -> args:int64 list -> syscall_outcome

(** [create_task t] — allocate and initialize a new task (fresh user
    keys, prefabricated kernel stack frame, signed stored SP). *)
val create_task : t -> task

(** [fork t] — run the machine-side fork handler, then complete the
    child (new pid, stack, re-signed stored SP). *)
val fork : t -> (task, string) result

(** [switch_to t next] — run [cpu_switch_to] on the machine, updating
    [current]. Returns the machine outcome. *)
val switch_to : t -> task -> syscall_outcome

(** [run_work t ~work_va] — dispatch a work item through the protected
    [run_work] kernel routine. *)
val run_work : t -> work_va:int64 -> syscall_outcome

(** [run_timers t] — fire armed timers whose expiry (against the virtual
    cycle counter) has passed; every callback is authenticated before
    the indirect call. *)
val run_timers : t -> syscall_outcome

(** [load_module t obj] — verify and load a kernel object into the
    module area. *)
val load_module : t -> Kelf.Object_file.t -> (Kelf.Loader.placed, Kelf.Loader.error) result

(** [unload_module t placed] — unmap a loaded module's regions (lifting
    their stage-2 protection) and, if it was the most recent allocation,
    roll the module-area bump allocator back so the next {!load_module}
    reuses the same addresses. *)
val unload_module : t -> Kelf.Loader.placed -> unit

(** [map_user_program t prog] — assemble a user program into the current
    task's user text and return its layout. *)
val map_user_program : t -> Asm.program -> Asm.layout

(** [run_user t ~entry] — execute user code at EL0 until exit, kill or
    panic, dispatching syscalls along the way.

    A blown instruction budget ([max_insns]) is handled by the kernel
    watchdog: the run is retried with a doubled budget (charging a
    backoff) up to [watchdog_retries] times (default 2) before the task
    is killed with {!Watchdog_expired} — a recoverable transient stall
    gets a grace period, a genuine hang escalates. *)
val run_user : ?max_insns:int -> ?watchdog_retries:int -> t -> entry:int64 -> user_exit

(** [spawn_user_task t ~entry] — a new task with its own user stack and
    an initial user context starting at [entry]. *)
val spawn_user_task : t -> entry:int64 -> task

(** [user_stack_top_of task] — the task's private user stack top. *)
val user_stack_top_of : task -> int64

type sched_stats = {
  exits : (int * user_exit) list;  (** pid, exit status, in completion order *)
  preemptions : int;  (** timer-IRQ context switches *)
  slices : int;
}

(** [run_scheduled t ~tasks] — preemptive round-robin over user tasks:
    each runs for [quantum] instructions, then a timer-IRQ kernel entry
    switches to the next runnable task via [cpu_switch_to]. The user
    instructions executed before an inline syscall count against the
    quantum; the kernel-side work does not.

    [context_integrity] enables the register-spill protection the paper
    leaves as future work (Section 8): a chained PACGA MAC is taken over
    the saved user context at preemption and verified before resumption;
    a tampered context kills the task instead of resuming it. *)
val run_scheduled :
  ?quantum:int ->
  ?max_slices:int ->
  ?context_integrity:bool ->
  t ->
  tasks:task list ->
  sched_stats

type smp_stats = {
  smp_exits : (int * int * user_exit) list;
      (** cpu, pid, exit status, in completion order *)
  smp_slices : int;
  smp_preemptions : int;
  smp_migrations : int;  (** tasks pulled across cores by IPIs *)
  smp_ipis : int;  (** doorbell rings during the run *)
  smp_offlined : int list;  (** cores quarantined during the run, in order *)
  per_cpu_cycles : int64 array;  (** each core's clock at the end *)
  makespan : int64;  (** busiest core's clock: parallel simulated time *)
}

(** [run_smp t ~tasks] — preemptive round-robin over per-CPU run queues,
    cycle-interleaved across the machine's cores: every scheduling round
    visits the cores in order and runs one [quantum] on each, so each
    core's kernel entries (with their per-CPU key installs) execute on
    that core's own register file. Tasks are distributed round-robin at
    submission; every [balance_interval] rounds, a core with at least
    two more queued tasks than the idlest core sends it a Reschedule IPI
    and the receiver pulls work over. Fully deterministic: the same seed
    and cpu count give the same exit order and cycle totals.

    [quarantine_after] arms per-CPU quarantine: a core that accumulates
    that many PAC authentication failures is taken offline — it stops
    scheduling and its run queue migrates to the remaining online cores
    (the last online core is never quarantined). Offlined cores are
    reported in [smp_offlined]. Disabled by default. *)
val run_smp :
  ?quantum:int ->
  ?max_slices:int ->
  ?balance_interval:int ->
  ?quarantine_after:int ->
  t ->
  tasks:task list ->
  smp_stats

(** [unkeyed_cpus t] — per-CPU key-install audit: every core whose key
    registers do not hold the XOM setter's material, with the missing
    keys. A healthy SMP boot returns [[]]; a core that skipped the
    setter shows up here and faults on its first authenticated return. *)
val unkeyed_cpus : t -> (int * Sysreg.pauth_key list) list

(** [key_installs_on t ~cpu] — how many times core [cpu] has executed
    the XOM key setter since bring-up (its per-CPU counter). *)
val key_installs_on : t -> cpu:int -> int

(** [install_kernel_keys t] — execute the XOM key setter; exposed for
    the key-switch benchmark (E1). *)
val install_kernel_keys : t -> unit

(** [restore_user_keys t] — execute the user-key restore routine for the
    current task. *)
val restore_user_keys : t -> unit

(** [kernel_uses_pauth t] — whether this configuration switches keys on
    entry/exit. *)
val kernel_uses_pauth : t -> bool

(** [console_output t] — everything written to file descriptors 1 and 2
    (the console device) so far, in order. *)
val console_output : t -> string

(** [verify_syscall_table t] — re-measure the chained PACGA MAC of the
    syscall table (GA key) and compare with the boot-time golden value:
    the kernel integrity monitor, defense in depth over the stage-2
    write protection. Always [true] on a PAuth-less part, where the
    monitor is inactive. *)
val verify_syscall_table : t -> bool

(** Fixed host-charged costs (cycles), exposed for reporting. *)
val entry_overhead_cycles : int

val exit_overhead_cycles : int
val fork_vm_copy_cycles : int
val sched_pick_cycles : int

(** Whole-system snapshots — the boot-once / fork-many primitive.

    [snapshot t] captures the machine ({!Aarch64.Machine.snapshot}:
    copy-on-write memory, translation tables, every core's registers and
    PAuth keys, the GIC, telemetry when enabled) plus all host-side
    kernel state: scheduler mirrors, the task list and allocators, the
    console and oops logs, RNG stream position, brute-force accounting
    and the held-out attestation MACs. [restore t s] rewinds [t] to the
    captured point; one snapshot supports any number of restores, each
    proportional to what the intervening run dirtied. Restoring also
    drops step hooks installed after the capture (a fault injector armed
    for one trial does not leak into the next) and flushes the decoded-
    instruction cache. A snapshot is tied to the system it was taken
    from: restoring it into a different system is not supported. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
